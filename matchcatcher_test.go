package matchcatcher

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the package-level API end to end, the
// way the doc comment's quick start does.
func TestFacadeQuickstart(t *testing.T) {
	csvA := "name,city\nDave Smith,Altanta\nJoe Welson,New York\nCharles Williams,Chicago\n"
	csvB := "name,city\nDavid Smith,Atlanta\nJoe Wilson,NY\nCharles Williams,Chicago\n"
	a, err := ReadCSV("A", strings.NewReader(csvA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSV("B", strings.NewReader(csvB))
	if err != nil {
		t.Fatal(err)
	}
	q := AttrEquivalence("city")
	c, err := q.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 { // only Chicago agrees
		t.Fatalf("C = %d pairs", c.Len())
	}
	dbg, err := New(a, b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gold := map[Pair]bool{{A: 0, B: 0}: true, {A: 1, B: 1}: true, {A: 2, B: 2}: true}
	for !dbg.Done() {
		pairs := dbg.Next()
		if len(pairs) == 0 {
			break
		}
		labels := make([]bool, len(pairs))
		for i, p := range pairs {
			labels[i] = gold[p]
		}
		if err := dbg.Feedback(labels); err != nil {
			t.Fatal(err)
		}
	}
	found := map[Pair]bool{}
	for _, m := range dbg.Matches() {
		found[m] = true
	}
	if !found[(Pair{A: 0, B: 0})] || !found[(Pair{A: 1, B: 1})] {
		t.Errorf("matches = %v", dbg.Matches())
	}
	ex := dbg.Explain(Pair{A: 0, B: 0})
	if len(ex.Notes) == 0 {
		t.Error("no explanation notes")
	}
}

func TestFacadeRuleParsing(t *testing.T) {
	if _, err := ParseDropRule("r", "title_jac_word < 0.4"); err != nil {
		t.Errorf("ParseDropRule: %v", err)
	}
	if _, err := ParseDropRule("r", "((("); err == nil {
		t.Error("ParseDropRule should fail on junk")
	}
	k, err := ParseKeepRule("k", "attr_equal_city OR lastword(name)_ed <= 2")
	if err != nil {
		t.Fatalf("ParseKeepRule: %v", err)
	}
	if k.Name() != "k" {
		t.Errorf("name = %q", k.Name())
	}
	if _, err := ParseKeepRule("k", ")"); err == nil {
		t.Error("ParseKeepRule should fail on junk")
	}
}

func TestFacadeUnionAndPairSet(t *testing.T) {
	a, _ := NewTable("A", []string{"x"})
	b, _ := NewTable("B", []string{"x"})
	u := UnionBlocker("u", AttrEquivalence("x"))
	c, err := u.Block(a, b)
	if err != nil || c.Len() != 0 {
		t.Errorf("empty union block: %v %d", err, c.Len())
	}
	s := NewPairSet()
	s.Add(1, 2)
	if !s.Contains(1, 2) {
		t.Error("pair set")
	}
}
