# MatchCatcher developer entry points. `make lint` mirrors the CI lint
# gates: go vet + mclint (the repo's own analyzer suite, tier-1) always
# run; staticcheck runs when installed locally (CI pins it, see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet mclint lint vuln fuzz-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# mclint enforces the determinism/telemetry/concurrency invariants
# (mapiter, seededrand, metricname, spanend, floatcmp). Suppressions
# (//lint:allow <analyzer> <reason>) are counted in the summary, never
# silent. See DESIGN.md "Static Analysis & Invariants".
mclint:
	$(GO) run ./cmd/mclint -summary ./...

lint: vet mclint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs honnef.co/go/tools@2025.1.1)"; \
	fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipped (CI runs golang.org/x/vuln@v1.1.4)"; \
	fi

fuzz-smoke:
	$(GO) test ./internal/blocker -run '^$$' -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/blocker -run '^$$' -fuzz FuzzSoundex -fuzztime 10s
