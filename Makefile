# MatchCatcher developer entry points. `make lint` mirrors the CI lint
# gates: go vet + mclint (the repo's own analyzer suite, tier-1) always
# run; staticcheck runs when installed locally (CI pins it, see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet mclint lint-hotalloc lint vuln fuzz-smoke perf-baseline perf-check parallel-bench serve-smoke serve-overhead-bench serve-overhead-baseline serve-overhead-check progress-overhead-bench progress-overhead-baseline progress-overhead-check shard-skew-bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# mclint enforces the determinism/telemetry/concurrency invariants
# (mapiter, seededrand, metricname, spanend, floatcmp, lockorder,
# ctxflow, statemachine, atomicmix, hotalloc). Suppressions
# (//lint:allow <analyzer> <reason>) are counted in the summary, never
# silent. See DESIGN.md "Static Analysis & Invariants".
mclint:
	$(GO) run ./cmd/mclint -summary ./...

# lint-hotalloc is the escape-analysis half of the //mc:hotpath
# contract: it recompiles the module with -gcflags=-m and feeds the
# compiler's "escapes to heap" / "moved to heap" diagnostics to the
# hotalloc analyzer, mechanically proving the annotated hot paths
# (ssjoin heap sifts, FlightRecorder.Record) stay allocation-free.
# It is a separate target because the -gcflags=-m compile does not
# share the plain build cache.
lint-hotalloc:
	$(GO) run ./cmd/mclint -escapes -only hotalloc -summary ./...

lint: vet mclint lint-hotalloc
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs honnef.co/go/tools@2025.1.1)"; \
	fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipped (CI runs golang.org/x/vuln@v1.1.4)"; \
	fi

# End-to-end smoke for mcserve: builds the binaries, runs a gold-labeled
# CLI session, replays it over HTTP with a scripted client, byte-compares
# the two canonical reports, and SIGTERMs the server mid-join to prove
# the graceful drain (see scripts/smoke_mcserve.sh).
serve-smoke:
	bash scripts/smoke_mcserve.sh

fuzz-smoke:
	$(GO) test ./internal/blocker -run '^$$' -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/blocker -run '^$$' -fuzz FuzzSoundex -fuzztime 10s
	$(GO) test ./internal/ssjoin -run '^$$' -fuzz FuzzMergeTopK -fuzztime 10s
	$(GO) test ./internal/ssjoin -run '^$$' -fuzz FuzzPrefixFilter -fuzztime 10s

# Performance regression observability (DESIGN.md "Performance
# Regression Observability"). perf-baseline reruns the pinned perf-gate
# workload PERF_COUNT times on this machine and regenerates the
# committed baseline mechanically with `mcperf report` — never edit
# BENCH_perf_gate.json by hand. perf-check repeats the workload and
# compares against the committed baseline; it exits non-zero on a
# statistically significant regression (recall always blocks; latency
# blocks only when the baseline came from a comparable machine).
PERF_LEDGER  ?= perf-ledger.jsonl
PERF_COUNT   ?= 5
PERF_SCALE   ?= 0.1
PERF_SEED    ?= 1

perf-baseline:
	rm -f $(PERF_LEDGER)
	$(GO) run ./cmd/mcbench -exp perf-gate -scale $(PERF_SCALE) -seed $(PERF_SEED) \
		-count $(PERF_COUNT) -ledger $(PERF_LEDGER)
	$(GO) run ./cmd/mcperf report -ledger $(PERF_LEDGER) -format json \
		-desc "pinned perf-gate workload: M2 joins (HASH1/HASH2/SIM1, k=1000) + M2/HASH1 debug session + M2/HASH1 intra-join parallelism arm (probe workers 1 and 4) at scale $(PERF_SCALE), seed $(PERF_SEED)" \
		-out BENCH_perf_gate.json

perf-check:
	rm -f $(PERF_LEDGER)
	$(GO) run ./cmd/mcbench -exp perf-gate -scale $(PERF_SCALE) -seed $(PERF_SEED) \
		-count 4 -ledger $(PERF_LEDGER)
	$(GO) run ./cmd/mcperf check -baseline BENCH_perf_gate.json -ledger $(PERF_LEDGER)

# Flight-recorder overhead on the serve request envelope
# (BENCH_serve_overhead.json): the paired internal/serve benchmarks run
# the full HTTP envelope with the recorder on and off. -cpu 1 pins the
# benchmark names (no -N suffix) so ledger keys stay stable across
# hosts. scripts/serve_overhead_bench.sh runs the whole set
# SERVE_COUNT times so each invocation's On rep pairs with an Off rep
# taken seconds later under correlated load, and retries once after a
# cooldown if a load burst shifted the window; serve-overhead-check is
# the gate: the median paired on/off ratio must stay inside the 5%
# budget (scripts/serve_overhead.py — same-process ratios, so
# meaningful on any machine), and mcperf check blocks on absolute
# drift when the host matches the committed baseline's fingerprint.
SERVE_BENCH_OUT ?= serve-bench.out
SERVE_LEDGER    ?= serve-overhead-ledger.jsonl
SERVE_COUNT     ?= 6

serve-overhead-bench:
	bash scripts/serve_overhead_bench.sh $(SERVE_BENCH_OUT) $(SERVE_COUNT)
	rm -f $(SERVE_LEDGER)
	$(GO) run ./cmd/mcperf record -ledger $(SERVE_LEDGER) -from-bench \
		-exp serve-overhead -seed 1 < $(SERVE_BENCH_OUT)

serve-overhead-baseline: serve-overhead-bench
	$(GO) run ./cmd/mcperf report -ledger $(SERVE_LEDGER) -format json \
		-desc "serve request envelope with the flight recorder on vs off: full HTTP stack (mux, envelope, metrics, canonical log) via httptest on GET /healthz and GET /v1/sessions/<id>, -cpu 1, $(SERVE_COUNT) paired invocations; budget: recorder adds <5% on the median paired on/off ratio (gated by scripts/serve_overhead.py)" \
		-out BENCH_serve_overhead.json

serve-overhead-check: serve-overhead-bench
	$(GO) run ./cmd/mcperf check -baseline BENCH_serve_overhead.json \
		-ledger $(SERVE_LEDGER)

# Progress-tracker overhead on the join kernel
# (BENCH_progress_overhead.json): the paired internal/ssjoin benchmarks
# run the same JoinAll workload with and without a Progress tracker
# attached. Same methodology as the serve-overhead gate: the set runs
# PROGRESS_COUNT times so each On rep pairs with an Off rep taken
# seconds later under correlated load, the median paired on/off ratio
# must stay inside the 5% budget (scripts/serve_overhead.py, the
# generic On/Off pairing gate), and mcperf check blocks on absolute
# drift when the host matches the committed baseline's fingerprint.
PROGRESS_BENCH_OUT ?= progress-bench.out
PROGRESS_LEDGER    ?= progress-overhead-ledger.jsonl
PROGRESS_COUNT     ?= 6

progress-overhead-bench:
	bash scripts/progress_overhead_bench.sh $(PROGRESS_BENCH_OUT) $(PROGRESS_COUNT)
	rm -f $(PROGRESS_LEDGER)
	$(GO) run ./cmd/mcperf record -ledger $(PROGRESS_LEDGER) -from-bench \
		-exp progress-overhead -seed 1 < $(PROGRESS_BENCH_OUT)

progress-overhead-baseline: progress-overhead-bench
	$(GO) run ./cmd/mcperf report -ledger $(PROGRESS_LEDGER) -format json \
		-desc "JoinAll with a Progress tracker attached vs not: 900x900 synthetic corpus, city blocker, k=500, probe workers 2, -cpu 1, $(PROGRESS_COUNT) paired invocations; budget: the tracker adds <5% on the median paired on/off ratio (gated by scripts/serve_overhead.py via scripts/progress_overhead_bench.sh)" \
		-out BENCH_progress_overhead.json

progress-overhead-check: progress-overhead-bench
	$(GO) run ./cmd/mcperf check -baseline BENCH_progress_overhead.json \
		-ledger $(PROGRESS_LEDGER)

# Per-shard work distribution on the long-tail SKEW profile
# (cmd/mcbench -exp shard-skew): joins at 1/2/4/8 probe shards with the
# progress tracker attached, recording each shard's popped prefix
# events and the imbalance ratio to the ledger.
SKEW_LEDGER ?= shardskew-ledger.jsonl

shard-skew-bench:
	rm -f $(SKEW_LEDGER)
	$(GO) run ./cmd/mcbench -exp shard-skew -seed $(PERF_SEED) \
		-count 3 -ledger $(SKEW_LEDGER)

# Intra-join parallelism speedup curve (BENCH_parallel_join.json): the
# M2 join sweep at probe worker counts 1/2/4/8, each multi-worker run
# bit-compared against the 1-worker reference while it is timed. Run on
# quiet multi-core hardware to refresh the committed numbers; on a
# single-core host the curve measures sharding's total-work expansion,
# not wall-clock speedup (see the note in BENCH_parallel_join.json).
PARALLEL_LEDGER ?= parallel-ledger.jsonl

parallel-bench:
	rm -f $(PARALLEL_LEDGER)
	$(GO) run ./cmd/mcbench -exp parallel-join -scale $(PERF_SCALE) -seed $(PERF_SEED) \
		-count 3 -ledger $(PARALLEL_LEDGER)
