// Package matchcatcher is a debugger for blocking in entity matching, a
// from-scratch Go implementation of "MatchCatcher: A Debugger for Blocking
// in Entity Matching" (EDBT 2018).
//
// Given two tables A and B to be matched and the candidate set C produced
// by any blocker, MatchCatcher finds plausible matches the blocker killed
// off — without knowing the blocker and without materializing A×B−C — and
// drives an interactive loop that surfaces true matches to the user so the
// blocker's recall problems can be diagnosed and fixed.
//
// Quick start:
//
//	a, _ := matchcatcher.ReadCSVFile("a.csv")
//	b, _ := matchcatcher.ReadCSVFile("b.csv")
//	q := matchcatcher.AttrEquivalence("city")    // any Blocker works
//	c, _ := q.Block(a, b)
//	dbg, _ := matchcatcher.New(a, b, c, matchcatcher.Options{})
//	for !dbg.Done() {
//		pairs := dbg.Next()             // up to 20 suspicious pairs
//		labels := askUser(pairs)        // which are true matches?
//		dbg.Feedback(labels)
//	}
//	for _, m := range dbg.Matches() {
//		fmt.Println(dbg.Explain(m).Notes) // why blocking killed it
//	}
//
// The heavy lifting lives in the internal packages: internal/config
// (Section 3's config generator), internal/ssjoin (Section 4's top-k
// string similarity joins), internal/ranker (Section 5's match verifier),
// and internal/blocker (the blocker substrate). This package re-exports
// the surface a downstream user needs.
package matchcatcher

import (
	"io"
	"log/slog"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

// Table is an in-memory relation; see internal/table.
type Table = table.Table

// NewTable creates an empty table with a schema.
func NewTable(name string, attrs []string) (*Table, error) { return table.New(name, attrs) }

// ReadCSV reads a table from CSV (first record is the header).
func ReadCSV(name string, r io.Reader) (*Table, error) { return table.ReadCSV(name, r) }

// ReadCSVFile reads a table from a CSV file.
func ReadCSVFile(path string) (*Table, error) { return table.ReadCSVFile(path) }

// Pair identifies a candidate tuple pair by row indices into A and B.
type Pair = blocker.Pair

// PairSet is a blocker's candidate set C.
type PairSet = blocker.PairSet

// NewPairSet returns an empty candidate set, for callers that obtained C
// from an external system and need to hand it to the debugger.
func NewPairSet() *PairSet { return blocker.NewPairSet() }

// Blocker produces a candidate set for two tables. All standard types are
// available: attribute equivalence, hash, sorted neighborhood, overlap,
// similarity-based, and rule-based.
type Blocker = blocker.Blocker

// AttrEquivalence returns an attribute-equivalence blocker
// (keep pairs agreeing on attr).
func AttrEquivalence(attr string) Blocker { return blocker.NewAttrEquivalence(attr) }

// UnionBlocker combines blockers, keeping the union of their outputs.
func UnionBlocker(id string, members ...Blocker) Blocker {
	return blocker.NewUnion(id, members...)
}

// ParseDropRule parses a Magellan-style kill rule (pairs satisfying the
// expression are dropped), e.g. "title_jac_word < 0.4" or
// "price_absdiff > 20 OR title_cos_word < 0.5".
func ParseDropRule(id, src string) (Blocker, error) {
	e, err := blocker.Parse(src)
	if err != nil {
		return nil, err
	}
	return blocker.DropRule(id, e), nil
}

// ParseKeepRule parses a keep condition (pairs satisfying the expression
// survive), e.g. "attr_equal_city OR lastword(name)_ed <= 2".
func ParseKeepRule(id, src string) (Blocker, error) {
	e, err := blocker.Parse(src)
	if err != nil {
		return nil, err
	}
	return blocker.KeepRule(id, e), nil
}

// Options configures a debugging session; zero values reproduce the
// paper's settings (k=1000, n=20, 3 active-learning iterations, stop
// after 2 matchless iterations).
type Options = core.Options

// Debugger is one debugging session for a blocker's output.
type Debugger = core.Debugger

// Explanation diagnoses why blocking killed a match.
type Explanation = core.Explanation

// New builds a debugging session from tables A, B and the blocker output
// C. The debugger never sees the blocker itself.
func New(a, b *Table, c *PairSet, opt Options) (*Debugger, error) {
	return core.New(a, b, c, opt)
}

// Observability surface: tracing, per-pair provenance, structured logging.

// Tracer collects hierarchical span trees from a debugging session; set
// Options.Trace, then export with WriteChromeTrace (chrome://tracing /
// Perfetto) or WriteTree (human-readable dump).
type Tracer = telemetry.Tracer

// TraceSpan is one node of a trace tree.
type TraceSpan = telemetry.TraceSpan

// NewTracer creates a tracer; pass nil to detach it from the metric
// registry, or telemetry's default registry to bridge span durations into
// the mc_stage_seconds histograms.
func NewTracer() *Tracer { return telemetry.NewTracer(telemetry.Default()) }

// Provenance records every pipeline decision that touches a watched pair
// (blocker keep/drop, join suppression/score/rank, verifier lineage). Set
// Options.Provenance and render with Debugger.WriteExplainReport.
type Provenance = telemetry.Provenance

// NewProvenance returns a recorder watching the given (aRow, bRow) pairs.
func NewProvenance(pairs ...[2]int) *Provenance { return telemetry.NewProvenance(pairs...) }

// NewLogger returns a structured logger whose records gain
// trace_id/span_id correlation when logged with a context carrying a
// TraceSpan. Set Options.Logger to hear the debugger's progress.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return telemetry.NewLogger(w, level)
}
