// Songs exercises MatchCatcher at scale on a music-catalog deduplication
// task (the paper's Music1 dataset shape): tens of thousands of tracks per
// side, short string attributes, and a hash blocker on artist name. It
// reports the per-stage runtimes (config generation, tokenization, joint
// top-k joins, verification) that Section 6.4 measures, then the recovered
// matches.
//
// Run with: go run ./examples/songs [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"matchcatcher"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
)

// logg reports failures and debug detail as structured records on
// stderr; examples are quiet by default, -v raises them to debug level.
var logg = matchcatcher.NewLogger(os.Stderr, slog.LevelWarn)

func fatal(err error) {
	logg.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	scale := flag.Float64("scale", 1, "dataset scale (1 = 20K tracks per side)")
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()
	if *verbose {
		logg = matchcatcher.NewLogger(os.Stderr, slog.LevelDebug)
	}

	prof := datagen.Music1()
	if *scale != 1 {
		prof = prof.Scaled(*scale)
	}
	start := time.Now()
	data := datagen.MustGenerate(prof)
	logg.Debug("dataset ready", "rows_a", data.A.NumRows(), "rows_b", data.B.NumRows(), "gold", data.GoldCount())
	fmt.Printf("generated %d x %d tracks (%d gold matches) in %s\n",
		data.A.NumRows(), data.B.NumRows(), data.GoldCount(), time.Since(start).Round(time.Millisecond))

	q, err := matchcatcher.ParseKeepRule("HASH", "attr_equal_artist_name")
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	c, err := q.Block(data.A, data.B)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("blocker %s: |C| = %d, recall %.1f%%, blocked in %s\n",
		q.Name(), c.Len(), 100*metrics.Recall(data.Gold, c), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	dbg, err := matchcatcher.New(data.A, data.B, c, matchcatcher.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("top-k module: %d configs over %v, |E| = %d, in %s\n",
		len(dbg.Lists()), dbg.Configs().Promising, dbg.CandidateCount(),
		time.Since(start).Round(time.Millisecond))

	start = time.Now()
	user := oracle.New(data.Gold, 0, 11)
	res := dbg.Run(user.Label)
	fmt.Printf("verifier: %d killed-off matches in %d iterations (%s compute, ~%.0f mins of labeling)\n",
		len(res.Matches), res.Iterations, time.Since(start).Round(time.Millisecond), user.LabelTime().Minutes())

	if len(res.Matches) > 0 {
		fmt.Println("most pervasive problems:")
		for _, p := range dbg.TopProblems(res.Matches, 4) {
			fmt.Println("  -", p)
		}
	}
}
