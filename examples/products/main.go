// Products compares blocker types on an Amazon/Google-style product
// matching task — the motivation of the paper's introduction. It builds
// the four Table 2 blockers for A-G (overlap, hash, similarity, rule),
// applies each, and uses MatchCatcher to measure how many true matches
// each kills and why, producing a Table-3-style report.
//
// Run with: go run ./examples/products
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"matchcatcher"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
)

// logg reports failures and debug detail as structured records on
// stderr; examples are quiet by default, -v raises them to debug level.
var logg = matchcatcher.NewLogger(os.Stderr, slog.LevelWarn)

func fatal(err error) {
	logg.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()
	if *verbose {
		logg = matchcatcher.NewLogger(os.Stderr, slog.LevelDebug)
	}
	data := datagen.MustGenerate(datagen.AmazonGoogle())
	a, b := data.A, data.B
	logg.Debug("dataset ready", "rows_a", a.NumRows(), "rows_b", b.NumRows(), "gold", data.GoldCount())
	fmt.Printf("matching %d x %d products (%d true matches)\n\n",
		a.NumRows(), b.NumRows(), data.GoldCount())

	blockers := []struct{ label, kind, src string }{
		{"OL", "drop", "title_overlap_word<3"},
		{"HASH", "keep", "attr_equal_manuf"},
		{"SIM", "drop", "title_cos_word<0.4"},
		{"R", "drop", "title_jac_word<0.2 AND manuf_jac_3gram<0.4"},
	}

	fmt.Printf("%-6s %-10s %-8s %-10s %-14s %s\n", "Q", "|C|", "recall", "killed", "found", "top problem")
	for _, spec := range blockers {
		var q matchcatcher.Blocker
		var err error
		if spec.kind == "drop" {
			q, err = matchcatcher.ParseDropRule(spec.label, spec.src)
		} else {
			q, err = matchcatcher.ParseKeepRule(spec.label, spec.src)
		}
		if err != nil {
			fatal(err)
		}
		c, err := q.Block(a, b)
		if err != nil {
			fatal(err)
		}
		killed := data.GoldCount() - metrics.Intersection(data.Gold, c)

		dbg, err := matchcatcher.New(a, b, c, matchcatcher.Options{})
		if err != nil {
			fatal(err)
		}
		user := oracle.New(data.Gold, 0, 7)
		res := dbg.Run(user.Label)

		top := "-"
		if probs := dbg.TopProblems(res.Matches, 1); len(probs) > 0 {
			top = probs[0]
		}
		fmt.Printf("%-6s %-10d %-8s %-10d %-14s %s\n",
			spec.label, c.Len(),
			fmt.Sprintf("%.1f%%", 100*metrics.Recall(data.Gold, c)),
			killed,
			fmt.Sprintf("%d in %d iters", len(res.Matches), res.Iterations),
			top)
	}

	fmt.Println("\nsample explanations from the HASH blocker's killed matches:")
	q, _ := matchcatcher.ParseKeepRule("HASH", "attr_equal_manuf")
	c, _ := q.Block(a, b)
	dbg, err := matchcatcher.New(a, b, c, matchcatcher.Options{})
	if err != nil {
		fatal(err)
	}
	user := oracle.New(data.Gold, 0, 7)
	res := dbg.Run(user.Label)
	for i, m := range res.Matches {
		if i >= 3 {
			break
		}
		fmt.Printf("  (A#%d, B#%d): %s\n", m.A, m.B, strings.Join(dbg.Explain(m).Notes, "; "))
	}
}
