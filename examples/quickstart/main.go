// Quickstart walks through the paper's running example (Figure 1 /
// Example 1.1): a user iteratively debugs and repairs a blocker over two
// small person tables, going from Q1 (city equality, which kills two true
// matches) to Q3 (city equality OR last-name edit distance <= 2, which
// kills none).
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"matchcatcher"
)

// logg reports failures and debug detail as structured records on
// stderr; examples are quiet by default, -v raises them to debug level.
var logg = matchcatcher.NewLogger(os.Stderr, slog.LevelWarn)

func fatal(err error) {
	logg.Error("fatal", "err", err)
	os.Exit(1)
}

func mustTable(name string, attrs []string, rows [][]string) *matchcatcher.Table {
	t, err := matchcatcher.NewTable(name, attrs)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			fatal(err)
		}
	}
	return t
}

func main() {
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()
	if *verbose {
		logg = matchcatcher.NewLogger(os.Stderr, slog.LevelDebug)
	}
	attrs := []string{"Name", "City", "Age"}
	a := mustTable("A", attrs, [][]string{
		{"Dave Smith", "Altanta", "18"},
		{"Daniel Smith", "LA", "18"},
		{"Joe Welson", "New York", "25"},
		{"Charles Williams", "Chicago", "45"},
		{"Charlie William", "Atlanta", "28"},
	})
	b := mustTable("B", attrs, [][]string{
		{"David Smith", "Atlanta", "18"},
		{"Joe Wilson", "NY", "25"},
		{"Daniel W. Smith", "LA", "30"},
		{"Charles Williams", "Chicago", "45"},
	})
	logg.Debug("tables ready", "rows_a", a.NumRows(), "rows_b", b.NumRows())
	// The user knows these are the true matches; MatchCatcher does not.
	gold := map[matchcatcher.Pair]bool{
		{A: 0, B: 0}: true, // Dave Smith ~ David Smith
		{A: 1, B: 2}: true, // Daniel Smith ~ Daniel W. Smith
		{A: 2, B: 1}: true, // Joe Welson ~ Joe Wilson
		{A: 3, B: 3}: true, // Charles Williams
	}

	blockers := []matchcatcher.Blocker{
		// Q1: keep pairs agreeing on City.
		matchcatcher.AttrEquivalence("City"),
		// Q2: ... OR agreeing on the last word of Name.
		must(matchcatcher.ParseKeepRule("Q2", "attr_equal_City OR attr_equal_lastword(Name)")),
		// Q3: ... OR last names within edit distance 2.
		must(matchcatcher.ParseKeepRule("Q3", "attr_equal_City OR lastword(Name)_ed <= 2")),
	}

	for _, q := range blockers {
		c, err := q.Block(a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== blocker %s: |C| = %d pairs ===\n", q.Name(), c.Len())

		dbg, err := matchcatcher.New(a, b, c, matchcatcher.Options{})
		if err != nil {
			fatal(err)
		}
		for !dbg.Done() {
			pairs := dbg.Next()
			if len(pairs) == 0 {
				break
			}
			labels := make([]bool, len(pairs))
			for i, p := range pairs {
				labels[i] = gold[p] // the user eyeballs each pair
			}
			if err := dbg.Feedback(labels); err != nil {
				fatal(err)
			}
		}
		matches := dbg.Matches()
		if len(matches) == 0 {
			fmt.Print("no killed-off matches found — this blocker looks safe\n\n")
			continue
		}
		fmt.Printf("killed-off true matches (%d):\n", len(matches))
		for _, m := range matches {
			ex := dbg.Explain(m)
			fmt.Printf("  (a%d, b%d): %s\n", m.A+1, m.B+1, strings.Join(ex.Notes, "; "))
		}
		fmt.Println()
	}
}

func must(b matchcatcher.Blocker, err error) matchcatcher.Blocker {
	if err != nil {
		fatal(err)
	}
	return b
}
