// Restaurants demonstrates the end-to-end blocker development workflow of
// the paper's Section 6.3 on a Fodors/Zagats-style restaurant matching
// task: start with a simple blocker, use MatchCatcher to find the matches
// it kills and why, repair the blocker, and repeat until the debugger
// comes back empty.
//
// The synthetic dataset generator stands in for the restaurant feeds; a
// synthetic user backed by the generator's gold matches stands in for the
// human labeler. Everything else is exactly what a real user would run.
//
// Run with: go run ./examples/restaurants
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"matchcatcher"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
)

// logg reports failures and debug detail as structured records on
// stderr; examples are quiet by default, -v raises them to debug level.
var logg = matchcatcher.NewLogger(os.Stderr, slog.LevelWarn)

func fatal(err error) {
	logg.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()
	if *verbose {
		logg = matchcatcher.NewLogger(os.Stderr, slog.LevelDebug)
	}
	// Two restaurant feeds with the usual dirt: misspellings,
	// abbreviated street addresses, city-name variants ("ny").
	data := datagen.MustGenerate(datagen.FodorsZagats())
	a, b := data.A, data.B
	logg.Debug("dataset ready", "rows_a", a.NumRows(), "rows_b", b.NumRows(), "gold", data.GoldCount())
	user := oracle.New(data.Gold, 0, 42)

	// The blockers a user writes over the course of a session: each one
	// repairs the problems the previous debugging round surfaced.
	iterations := []struct {
		why string
		src string
	}{
		{"start simple: same city", "attr_equal_city"},
		{"city names vary ('daulmturmel' vs 'dl') -> also keep name overlap",
			"attr_equal_city OR name_overlap_word >= 1"},
		{"names get misspelt too -> also keep similar addresses",
			"attr_equal_city OR name_overlap_word >= 1 OR addr_jac_3gram >= 0.4"},
	}

	for round, step := range iterations {
		q, err := matchcatcher.ParseKeepRule(fmt.Sprintf("Q%d", round+1), step.src)
		if err != nil {
			fatal(err)
		}
		c, err := q.Block(a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s: %s ===\n", q.Name(), step.why)
		fmt.Printf("    %s\n", step.src)
		fmt.Printf("    |C| = %d (%.2f%% of AxB), recall = %.1f%%\n",
			c.Len(), 100*float64(c.Len())/float64(a.NumRows()*b.NumRows()),
			100*metrics.Recall(data.Gold, c))

		dbg, err := matchcatcher.New(a, b, c, matchcatcher.Options{})
		if err != nil {
			fatal(err)
		}
		res := dbg.Run(user.Label)
		if len(res.Matches) == 0 {
			fmt.Println("    debugger found no killed-off matches — ship it")
			break
		}
		fmt.Printf("    debugger surfaced %d killed-off matches in %d iterations (~%.0f mins of labeling)\n",
			len(res.Matches), res.Iterations, user.LabelTime().Minutes())
		fmt.Println("    most pervasive problems:")
		for _, p := range dbg.TopProblems(res.Matches, 3) {
			fmt.Println("      -", p)
		}
		fmt.Println()
		user.Reset()
	}
}
