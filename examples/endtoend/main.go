// Endtoend demonstrates why blocker recall matters — the paper's core
// motivation — by running a complete EM pipeline twice on a restaurant
// matching task:
//
//  1. block with a plausible first-cut blocker, train a learning-based
//     matcher, and measure end-to-end precision/recall: the blocker's
//     recall caps the pipeline no matter how good the matcher;
//  2. debug the blocker with MatchCatcher, union in a repair rule aimed
//     at the most pervasive problem the debugger surfaced, and rerun —
//     the same matcher now reaches the matches that used to be killed.
//
// Run with: go run ./examples/endtoend
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"matchcatcher"
	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/feature"
	"matchcatcher/internal/matcher"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/rforest"
	"matchcatcher/internal/ssjoin"
)

// logg reports failures and debug detail as structured records on
// stderr; examples are quiet by default, -v raises them to debug level.
var logg = matchcatcher.NewLogger(os.Stderr, slog.LevelWarn)

func fatal(err error) {
	logg.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()
	if *verbose {
		logg = matchcatcher.NewLogger(os.Stderr, slog.LevelDebug)
	}
	data := datagen.MustGenerate(datagen.FodorsZagats())
	a, b := data.A, data.B
	logg.Debug("dataset ready", "rows_a", a.NumRows(), "rows_b", b.NumRows(), "gold", data.GoldCount())
	fmt.Printf("matching %d x %d restaurants (%d true matches)\n\n",
		a.NumRows(), b.NumRows(), data.GoldCount())

	// A feature extractor shared by the matcher in both runs.
	res, err := config.Generate(a, b, config.Options{})
	if err != nil {
		fatal(err)
	}
	ext := feature.NewExtractor(ssjoin.NewCorpus(a, b, res))
	feats := func(x, y int) []float64 { return ext.Vector(int32(x), int32(y)) }

	runPipeline := func(q blocker.Blocker) matcher.Quality {
		c, err := q.Block(a, b)
		if err != nil {
			fatal(err)
		}
		sample := matcher.SampleTrainingPairs(c, data.Gold, 40, 80, 11)
		fm, err := matcher.TrainForestMatcher("rf", feats, sample, rforest.Options{Trees: 15, Seed: 5})
		if err != nil {
			fatal(err)
		}
		pred, err := fm.Match(a, b, c)
		if err != nil {
			fatal(err)
		}
		quality := matcher.Evaluate(pred, data.Gold)
		fmt.Printf("  blocker %-28s |C|=%-6d blocker recall %.1f%%\n",
			q.Name(), c.Len(), 100*metrics.Recall(data.Gold, c))
		fmt.Printf("  matcher on C:                  precision %.1f%%, END-TO-END recall %.1f%% (F1 %.2f)\n\n",
			100*quality.Precision, 100*quality.Recall, quality.F1)
		return quality
	}

	fmt.Println("=== run 1: first-cut blocker (same city) ===")
	q1 := matchcatcher.AttrEquivalence("city")
	before := runPipeline(q1)

	fmt.Println("=== debugging the blocker with MatchCatcher ===")
	c1, err := q1.Block(a, b)
	if err != nil {
		fatal(err)
	}
	dbg, err := matchcatcher.New(a, b, c1, matchcatcher.Options{})
	if err != nil {
		fatal(err)
	}
	user := oracle.New(data.Gold, 0, 23)
	found := dbg.Run(user.Label)
	fmt.Printf("  surfaced %d killed-off matches in %d iterations; problems:\n",
		len(found.Matches), found.Iterations)
	for _, p := range dbg.TopProblems(found.Matches, 3) {
		fmt.Println("    -", p)
	}
	fmt.Println()

	// Repair: the diagnosis points at city variants/abbreviations, so keep
	// pairs with similar names too (what the paper's user did for Q2).
	fmt.Println("=== run 2: repaired blocker ===")
	q2, err := matchcatcher.ParseKeepRule("city-eq OR name-overlap",
		"attr_equal_city OR name_overlap_word >= 1")
	if err != nil {
		fatal(err)
	}
	after := runPipeline(q2)

	fmt.Printf("end-to-end recall: %.1f%% -> %.1f%% after one debug-repair round\n",
		100*before.Recall, 100*after.Recall)
	if after.Recall <= before.Recall {
		fmt.Println("(no improvement this run — unusual; try a different seed)")
	}
}
