package matchcatcher_test

import (
	"fmt"
	"log"
	"strings"

	"matchcatcher"
)

// Example reproduces the paper's running example: debugging the blocker
// Q1: a.City = b.City on the Figure 1 tables surfaces the two true
// matches it kills.
func Example() {
	csvA := `Name,City,Age
Dave Smith,Altanta,18
Daniel Smith,LA,18
Joe Welson,New York,25
Charles Williams,Chicago,45
Charlie William,Atlanta,28`
	csvB := `Name,City,Age
David Smith,Atlanta,18
Joe Wilson,NY,25
Daniel W. Smith,LA,30
Charles Williams,Chicago,45`
	a, err := matchcatcher.ReadCSV("A", strings.NewReader(csvA))
	if err != nil {
		log.Fatal(err)
	}
	b, err := matchcatcher.ReadCSV("B", strings.NewReader(csvB))
	if err != nil {
		log.Fatal(err)
	}

	q1 := matchcatcher.AttrEquivalence("City")
	c, err := q1.Block(a, b)
	if err != nil {
		log.Fatal(err)
	}

	dbg, err := matchcatcher.New(a, b, c, matchcatcher.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// The user's knowledge of which pairs truly match.
	gold := map[matchcatcher.Pair]bool{
		{A: 0, B: 0}: true, {A: 1, B: 2}: true, {A: 2, B: 1}: true, {A: 3, B: 3}: true,
	}
	for !dbg.Done() {
		pairs := dbg.Next()
		if len(pairs) == 0 {
			break
		}
		labels := make([]bool, len(pairs))
		for i, p := range pairs {
			labels[i] = gold[p]
		}
		if err := dbg.Feedback(labels); err != nil {
			log.Fatal(err)
		}
	}
	matches := dbg.Matches()
	fmt.Printf("killed-off matches found: %d\n", len(matches))
	for _, m := range matches {
		for _, note := range dbg.Explain(m).Notes {
			if strings.HasPrefix(note, "City") {
				fmt.Println(note)
			}
		}
	}
	// Unordered output:
	// killed-off matches found: 2
	// City: misspelling ("Altanta" vs "Atlanta")
	// City: abbreviation ("New York" vs "NY")
}

// ExampleParseDropRule shows a Magellan-style kill rule: pairs whose word
// cosine on title falls below 0.4 OR whose prices differ by more than 20
// are blocked.
func ExampleParseDropRule() {
	q, err := matchcatcher.ParseDropRule("my-rule",
		"title_cos_word < 0.4 OR price_absdiff > 20")
	if err != nil {
		log.Fatal(err)
	}
	a, _ := matchcatcher.NewTable("A", []string{"title", "price"})
	a.Append([]string{"usb cable fast charger", "10"})
	b, _ := matchcatcher.NewTable("B", []string{"title", "price"})
	b.Append([]string{"usb cable charger", "12"})
	b.Append([]string{"garden hose", "11"})
	c, err := q.Block(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("surviving pairs:", c.Len())
	// Output:
	// surviving pairs: 1
}
