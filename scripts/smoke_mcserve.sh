#!/usr/bin/env bash
# End-to-end smoke for mcserve (CI-blocking; see .github/workflows/ci.yml):
#
#   1. Build mcgen, mcdebug, and mcserve; generate the F-Z dataset.
#   2. Run a gold-labeled CLI session and write its canonical report.
#   3. Start mcserve and drive the same session over HTTP with a scripted
#      client (create -> upload -> blocker -> join -> label loop ->
#      finish -> report), asserting status codes and response shapes,
#      including the 4xx contract on out-of-order operations.
#   4. Byte-compare the HTTP canonical report against the CLI's — the
#      transport-determinism acceptance check.
#   5. Start a 5x-scale join and SIGTERM the server while it is in
#      flight: the join must still answer 200 (graceful drain), the
#      process must exit 0, and the ledger must hold one runlog record
#      per completed session.
set -euo pipefail

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

PORT="${MCSERVE_SMOKE_PORT:-18642}"
BASE="http://127.0.0.1:$PORT"

echo "== build"
go build -o "$TMP" ./cmd/mcgen ./cmd/mcdebug ./cmd/mcserve

echo "== generate datasets"
"$TMP/mcgen" -dataset F-Z -out "$TMP"
mkdir -p "$TMP/big"
"$TMP/mcgen" -dataset F-Z -scale 5 -out "$TMP/big"

echo "== CLI reference session"
"$TMP/mcdebug" -a "$TMP/F-Z-A.csv" -b "$TMP/F-Z-B.csv" -gold "$TMP/F-Z-gold.csv" \
    -drop 'name_jac_word<0.4' -k 200 -n 10 -seed 1 -workers 1 -probe-workers 1 \
    -canonical -report "$TMP/cli_report.json" >/dev/null

echo "== start mcserve"
"$TMP/mcserve" -addr "127.0.0.1:$PORT" -ledger "$TMP/ledger.jsonl" \
    2>"$TMP/mcserve.log" &
SRV_PID=$!

up=0
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
done
if [ "$up" != 1 ]; then
    echo "mcserve did not come up" >&2
    cat "$TMP/mcserve.log" >&2
    exit 1
fi
curl -fsS "$BASE/readyz" >/dev/null
curl -fsS "$BASE/metrics" | grep -q '^mc_serve_sessions_live' \
    || { echo "missing mc_serve_sessions_live on /metrics" >&2; exit 1; }

echo "== scripted HTTP session + SIGTERM drain"
python3 scripts/smoke_mcserve_client.py \
    "$BASE" "$TMP" "$SRV_PID" "$TMP/http_report.json"

echo "== byte-compare HTTP report against CLI report"
cmp "$TMP/cli_report.json" "$TMP/http_report.json" \
    || { echo "HTTP canonical report differs from CLI report" >&2; exit 1; }

echo "== graceful exit"
rc=0
wait "$SRV_PID" || rc=$?
SRV_PID=""
if [ "$rc" != 0 ]; then
    echo "mcserve exited $rc after SIGTERM, want 0" >&2
    cat "$TMP/mcserve.log" >&2
    exit 1
fi

records=$(grep -c '"tool":"mcserve"' "$TMP/ledger.jsonl")
if [ "$records" != 2 ]; then
    echo "ledger has $records mcserve records, want 2 (one per completed session)" >&2
    cat "$TMP/ledger.jsonl" >&2
    exit 1
fi

echo "mcserve smoke: OK"
