#!/usr/bin/env bash
# End-to-end smoke for mcserve (CI-blocking; see .github/workflows/ci.yml):
#
#   1. Build mcgen, mcdebug, and mcserve; generate the F-Z dataset.
#   2. Run a gold-labeled CLI session and write its canonical report.
#   3. Start mcserve and drive the same session over HTTP with a scripted
#      client (create -> upload -> blocker -> join -> label loop ->
#      finish -> report), asserting status codes and response shapes,
#      including the 4xx contract on out-of-order operations.
#   4. Byte-compare the HTTP canonical report against the CLI's — the
#      transport-determinism acceptance check.
#   5. Start a 5x-scale join and, while it is in flight, read the live
#      progress surface (JSON snapshot + one SSE `event: progress`
#      frame, disconnecting mid-stream), then SIGTERM the server: the
#      join must still answer 200 (graceful drain), the process must
#      exit 0, and the ledger must hold one runlog record per completed
#      session.
#   6. Flight recorder: /debug/flightrecord must answer a parseable dump
#      while the server is up; the SIGTERM drain auto-dump must carry
#      the in-flight join's request event (checked by the client while
#      the join is running); the final close dump must survive on disk
#      with the completed join event.
#
# On failure, set MCSERVE_SMOKE_ARTIFACTS to a directory to keep the
# flight dumps, server log, and ledger for post-mortem (CI uploads them
# as a workflow artifact).
set -euo pipefail

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SRV_PID=""
cleanup() {
    rc=$?
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    if [ "$rc" != 0 ] && [ -n "${MCSERVE_SMOKE_ARTIFACTS:-}" ]; then
        mkdir -p "$MCSERVE_SMOKE_ARTIFACTS"
        for f in flight.json flight_drain.json mcserve.log ledger.jsonl; do
            [ -f "$TMP/$f" ] && cp -f "$TMP/$f" "$MCSERVE_SMOKE_ARTIFACTS/" || true
        done
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

PORT="${MCSERVE_SMOKE_PORT:-18642}"
BASE="http://127.0.0.1:$PORT"

echo "== build"
go build -o "$TMP" ./cmd/mcgen ./cmd/mcdebug ./cmd/mcserve

echo "== generate datasets"
"$TMP/mcgen" -dataset F-Z -out "$TMP"
mkdir -p "$TMP/big"
"$TMP/mcgen" -dataset F-Z -scale 5 -out "$TMP/big"

echo "== CLI reference session"
"$TMP/mcdebug" -a "$TMP/F-Z-A.csv" -b "$TMP/F-Z-B.csv" -gold "$TMP/F-Z-gold.csv" \
    -drop 'name_jac_word<0.4' -k 200 -n 10 -seed 1 -workers 1 -probe-workers 1 \
    -canonical -report "$TMP/cli_report.json" >/dev/null

echo "== start mcserve"
"$TMP/mcserve" -addr "127.0.0.1:$PORT" -ledger "$TMP/ledger.jsonl" \
    -flight-dump "$TMP/flight.json" \
    2>"$TMP/mcserve.log" &
SRV_PID=$!

up=0
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
done
if [ "$up" != 1 ]; then
    echo "mcserve did not come up" >&2
    cat "$TMP/mcserve.log" >&2
    exit 1
fi
curl -fsS "$BASE/readyz" >/dev/null
curl -fsS "$BASE/metrics" | grep -q '^mc_serve_sessions_live' \
    || { echo "missing mc_serve_sessions_live on /metrics" >&2; exit 1; }
curl -fsS "$BASE/debug/flightrecord" | grep -q '"schema": "mc.flightrecord/v1"' \
    || { echo "/debug/flightrecord did not answer a flight-record dump" >&2; exit 1; }

echo "== scripted HTTP session + SIGTERM drain"
python3 scripts/smoke_mcserve_client.py \
    "$BASE" "$TMP" "$SRV_PID" "$TMP/http_report.json"

echo "== byte-compare HTTP report against CLI report"
cmp "$TMP/cli_report.json" "$TMP/http_report.json" \
    || { echo "HTTP canonical report differs from CLI report" >&2; exit 1; }

echo "== graceful exit"
rc=0
wait "$SRV_PID" || rc=$?
SRV_PID=""
if [ "$rc" != 0 ]; then
    echo "mcserve exited $rc after SIGTERM, want 0" >&2
    cat "$TMP/mcserve.log" >&2
    exit 1
fi

echo "== flight-record auto-dumps"
# The drain-time dump was verified (and preserved) by the client while
# the join was still in flight; re-assert the preserved copy here.
if [ ! -f "$TMP/flight_drain.json" ]; then
    echo "client did not preserve the SIGTERM drain flight dump" >&2
    exit 1
fi
grep -q '"route": "join"' "$TMP/flight_drain.json" \
    || { echo "drain flight dump lacks the in-flight join's request event" >&2
         cat "$TMP/flight_drain.json" >&2; exit 1; }
# The close-time dump overwrites the drain dump on clean exit: the
# completed story, with the join as a finished request event.
if [ ! -f "$TMP/flight.json" ]; then
    echo "mcserve exited without writing the final flight dump" >&2
    exit 1
fi
grep -q '"reason": "close"' "$TMP/flight.json" \
    || { echo "final flight dump is not the close dump" >&2
         cat "$TMP/flight.json" >&2; exit 1; }
grep -q '"route": "join"' "$TMP/flight.json" \
    || { echo "final flight dump lacks the join request event" >&2
         cat "$TMP/flight.json" >&2; exit 1; }

records=$(grep -c '"tool":"mcserve"' "$TMP/ledger.jsonl")
if [ "$records" != 2 ]; then
    echo "ledger has $records mcserve records, want 2 (one per completed session)" >&2
    cat "$TMP/ledger.jsonl" >&2
    exit 1
fi

echo "mcserve smoke: OK"
