#!/usr/bin/env python3
"""Enforce an on/off overhead budget on paired benchmarks.

Reads concatenated `go test -bench` output (file argument, or stdin)
from several repeated invocations of On/Off benchmark pairs — any
benchmark whose name ends in "On" is paired with its "Off" twin:

    BenchmarkServeRequestRecorderOn / ...RecorderOff      (serve gate)
    BenchmarkJoinProgressOn / ...Off                      (progress gate)

and exits 1 if any pair's overhead exceeds the budget (default 5%,
override with SERVE_OVERHEAD_BOUND_PCT).

Methodology — what keeps a 5% gate honest on shared, noisy runners:

  * The two arms run in the same process on the same machine, so the
    on/off *ratio* is meaningful where absolute nanoseconds are not.
  * Each benchmark invocation runs an On rep and its Off twin within a
    couple of seconds of each other, so pairing the k-th On sample
    with the k-th Off sample compares timings taken under correlated
    load. (A single `go test -count N` run is NOT paired like this:
    it groups all N On reps, then all N Off reps, and slow drift in
    runner load biases every summary statistic.)
  * The gate statistic is the median of the per-invocation ratios,
    which discards invocations where a load spike landed on one arm.

Drive it with a loop, e.g.:

    for i in $(seq 6); do
        go test ./internal/serve -run '^$' -bench Recorder -cpu 1 \
            -benchtime .5s >> serve-bench.out
    done
    python3 scripts/serve_overhead.py serve-bench.out

BENCH_serve_overhead.json + `mcperf check` separately track absolute
drift on hardware comparable to the committed baseline's.
"""

import os
import re
import statistics
import sys

LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op")


def parse(stream):
    """Map benchmark name -> ns/op samples in file order."""
    samples = {}
    for line in stream:
        m = LINE.match(line)
        if m:
            samples.setdefault(m.group(1), []).append(float(m.group(2)))
    return samples


def main():
    stream = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    samples = parse(stream)
    bound = float(os.environ.get("SERVE_OVERHEAD_BOUND_PCT", "5.0"))
    pairs = sorted(n[: -len("On")] for n in samples if n.endswith("On"))
    if not pairs:
        sys.exit("serve_overhead: no paired On/Off benchmarks in input")
    failed = False
    for base in pairs:
        on, off = samples.get(base + "On", []), samples.get(base + "Off", [])
        k = min(len(on), len(off))
        if k == 0:
            sys.exit(f"serve_overhead: missing arm for {base}")
        ratios = [on[i] / off[i] for i in range(k) if off[i] > 0]
        if not ratios:
            sys.exit(f"serve_overhead: no usable samples for {base}")
        pct = (statistics.median(ratios) - 1.0) * 100.0
        verdict = "ok" if pct <= bound else "OVER BUDGET"
        print(
            f"{base}: median paired on/off ratio over {len(ratios)} "
            f"invocation(s): overhead {pct:+.1f}% "
            f"(budget {bound:.1f}%) {verdict}"
        )
        failed = failed or pct > bound
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
