"""Scripted mcserve client for scripts/smoke_mcserve.sh (stdlib only).

Phase 1 mirrors a gold-labeled mcdebug run over HTTP — same tables,
blocker rule, seed, and join options — asserting every status code and
response shape along the way, and writes the canonical report for the
byte-compare against the CLI's.

Phase 2 is the graceful-drain check: it starts a 5x-scale join, reads
the live progress surface while the join is in flight (a JSON snapshot
and one SSE `event: progress` frame, then disconnects mid-stream to
prove teardown leaves the join running), sends the server SIGTERM,
asserts the drain-time flight-record auto-dump carries the join as an
in-flight request event (preserving a copy as flight_drain.json before
the close dump overwrites it), and asserts the join still answers 200
before the process exits.
"""

import csv
import json
import os
import shutil
import signal
import sys
import threading
import time
import urllib.error
import urllib.request

BASE, TMP, SRV_PID, REPORT_OUT = (
    sys.argv[1],
    sys.argv[2],
    int(sys.argv[3]),
    sys.argv[4],
)


def req(method, path, body=None, ctype="application/json"):
    r = urllib.request.Request(BASE + path, data=body, method=method)
    if body is not None:
        r.add_header("Content-Type", ctype)
    try:
        with urllib.request.urlopen(r, timeout=120) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as e:
        return e.code, e.read()


def expect(method, path, want, body=None, ctype="application/json"):
    code, data = req(method, path, body, ctype)
    if code != want:
        sys.exit(f"{method} {path}: status {code}, want {want}: {data[:300]}")
    return data


def upload(su, side, path, name):
    with open(path, "rb") as f:
        expect("PUT", f"{su}/tables/{side}?name={name}", 200, f.read(), "text/csv")


def run_session(prefix, create_body, drive):
    data = expect("POST", "/v1/sessions", 201, create_body.encode())
    sid = json.loads(data)["id"]
    su = f"/v1/sessions/{sid}"
    upload(su, "a", f"{prefix}/F-Z-A.csv", "F-Z-A")
    upload(su, "b", f"{prefix}/F-Z-B.csv", "F-Z-B")
    expect("POST", f"{su}/blocker", 200, b'{"drops":["name_jac_word<0.4"]}')
    return sid, su, drive(su)


def load_gold(path):
    gold = set()
    with open(path, newline="") as f:
        for row in csv.reader(f):
            if row and row[0] != "a_row":
                gold.add((int(row[0]), int(row[1])))
    return gold


# ---- phase 1: deterministic session, report byte-compared to the CLI ----

gold = load_gold(f"{TMP}/F-Z-gold.csv")

# Out-of-order operations answer 4xx, never 5xx.
expect("GET", "/v1/sessions/zzz", 404)
probe = json.loads(expect("POST", "/v1/sessions", 201, b"{}"))["id"]
expect("POST", f"/v1/sessions/{probe}/join", 409)
expect("POST", f"/v1/sessions/{probe}/next", 409)
expect("GET", f"/v1/sessions/{probe}/progress", 409)  # no join yet
expect("DELETE", f"/v1/sessions/{probe}", 204)


def drive_gold(su):
    j = json.loads(expect("POST", f"{su}/join", 200))
    if j["e_size"] <= 0 or j["configs"] <= 0:
        sys.exit(f"join shape: {j}")
    # The progress surface outlives the join: a snapshot on a finished
    # join answers 200 with the terminal counters.
    snap = json.loads(expect("GET", f"{su}/progress", 200))
    if snap["joining"] or not snap["join"]["done"]:
        sys.exit(f"finished-join progress shape: {snap}")
    if snap["join"]["probes_done"] + snap["join"].get("probes_skipped", 0) <= 0:
        sys.exit(f"finished-join progress counted no probes: {snap}")
    for _ in range(200):
        n = json.loads(expect("POST", f"{su}/next", 200))
        if n["done"]:
            break
        labels = [((p["a"], p["b"]) in gold) for p in n["pairs"]]
        body = json.dumps({"labels": labels}).encode()
        json.loads(expect("POST", f"{su}/labels", 200, body))
    fin = json.loads(expect("POST", f"{su}/finish", 200))
    if fin["iterations"] <= 0:
        sys.exit(f"finish shape: {fin}")
    return expect("GET", f"{su}/report", 200)


sid, su, report = run_session(
    TMP,
    '{"seed":1,"k":200,"n":10,"workers":1,"probe_workers":1}',
    drive_gold,
)
with open(REPORT_OUT, "wb") as f:
    f.write(report)

# A second join on a joined session is refused; the explain route renders.
expect("POST", f"{su}/join", 409)
page = json.loads(expect("GET", f"{su}/candidates?offset=0&limit=5", 200))
if page["total"] <= 0 or len(page["pairs"]) > 5:
    sys.exit(f"candidates shape: {page}")
expect("DELETE", f"{su}", 204)
expect("GET", f"{su}", 404)

# ---- phase 2: SIGTERM with the 5x-scale join in flight ----

result = {}


def check_progress_live(su):
    """Read the progress surface while the 5x-scale join is running.

    First a plain JSON snapshot (joining must be true, the probe plan
    sized), then an SSE stream: read one live `event: progress` frame
    and disconnect mid-stream. The server must tear the stream down on
    client disconnect without disturbing the join — phase 2's drain
    check right after proves the join is still in flight.
    """
    snap = json.loads(expect("GET", f"{su}/progress", 200))
    if not snap["joining"] or snap["join"]["probes_total"] <= 0:
        sys.exit(f"mid-join progress snapshot shape: {snap}")
    r = urllib.request.Request(
        BASE + su + "/progress", headers={"Accept": "text/event-stream"}
    )
    with urllib.request.urlopen(r, timeout=30) as resp:
        ctype = resp.headers.get("Content-Type", "")
        if not ctype.startswith("text/event-stream"):
            sys.exit(f"SSE Content-Type: {ctype!r}")
        event, frame = None, None
        for raw in resp:
            line = raw.decode().rstrip("\n")
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                frame = json.loads(line[len("data: "):])
            elif line == "" and event is not None:
                break  # end of first frame; disconnect mid-stream
        if event != "progress" or frame is None:
            sys.exit(f"first SSE frame: event={event!r} data={frame}")
        j = frame["join"]
        if frame["session"] not in su or j["done"] or j["probes_total"] <= 0:
            sys.exit(f"SSE progress frame shape: {frame}")


def check_drain_dump():
    """Assert the SIGTERM auto-dump carries the in-flight join.

    BeginShutdown writes the "drain" dump the moment SIGTERM lands,
    while the 5x-scale join is still running, so its inflight section
    must hold the join's request event. The dump is preserved as
    flight_drain.json because the close-time dump overwrites the file
    on clean exit. If the join outraced our first read (the file already
    says "close"), the completed join event stands in as the evidence.
    """
    path = os.path.join(TMP, "flight.json")
    keep = os.path.join(TMP, "flight_drain.json")
    deadline = time.time() + 15
    while time.time() < deadline:
        try:
            with open(path) as f:
                d = json.load(f)
        except (OSError, ValueError):
            time.sleep(0.05)
            continue
        if d.get("reason") == "drain":
            joins = [e for e in d.get("inflight") or [] if e.get("route") == "join"]
            if not joins:
                sys.exit(f"drain dump lacks the in-flight join: {d.get('inflight')}")
            if not joins[0].get("inflight") or joins[0].get("kind") != "request":
                sys.exit(f"drain dump join event malformed: {joins[0]}")
            shutil.copyfile(path, keep)
            return
        if d.get("reason") == "close" and any(
            e.get("route") == "join" and e.get("kind") == "request"
            for e in d.get("events", [])
        ):
            shutil.copyfile(path, keep)
            return
        time.sleep(0.05)
    sys.exit("no flight-record auto-dump appeared after SIGTERM")


def drive_drain(su):
    def do_join():
        result["code"], _ = req("POST", f"{su}/join")

    t = threading.Thread(target=do_join)
    t.start()
    time.sleep(0.5)  # let the join get going
    check_progress_live(su)
    if not t.is_alive():
        sys.exit("5x join finished before the SSE check; scale the dataset up")
    os.kill(SRV_PID, signal.SIGTERM)
    check_drain_dump()
    t.join(timeout=120)
    if t.is_alive():
        sys.exit("join did not return after SIGTERM: drain hung")
    return result["code"]


_, _, code = run_session(f"{TMP}/big", '{"seed":1,"k":1000,"n":10}', drive_drain)
if code != 200:
    sys.exit(f"in-flight join answered {code} during drain, want 200")
print("smoke client: OK")
