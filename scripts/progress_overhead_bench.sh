#!/usr/bin/env bash
# Run the paired join progress-tracker benchmarks (tracker attached vs
# not) and enforce the 5% overhead budget via scripts/serve_overhead.py
# (the generic On/Off pairing gate).
#
#   usage: progress_overhead_bench.sh [out-file] [invocations]
#
# The whole benchmark set runs <invocations> times in separate
# processes, so each invocation's On rep pairs with an Off rep taken
# seconds later under correlated load (see serve_overhead.py for why
# that pairing is what makes a ratio gate meaningful on shared
# runners). One retry after a cooldown absorbs the remaining failure
# mode — a sustained load burst shifting an entire bench window; a
# genuine overhead regression fails both attempts.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-progress-bench.out}"
N="${2:-6}"

run() {
    : > "$OUT"
    for _ in $(seq "$N"); do
        go test ./internal/ssjoin -run '^$' -bench JoinProgress -cpu 1 \
            -benchtime .5s >> "$OUT"
    done
    python3 scripts/serve_overhead.py "$OUT"
}

if ! run; then
    echo "progress-overhead: over budget; cooling down 30s and retrying once" >&2
    sleep 30
    run
fi
