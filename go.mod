module matchcatcher

go 1.22
