package matchcatcher

// One benchmark per table and figure of the paper's evaluation (Section
// 6), plus micro-benchmarks for the core algorithmic contributions. The
// benchmarks run the same code paths as cmd/mcbench but at reduced scale
// so `go test -bench=.` completes in minutes; mcbench regenerates the
// full-size reports.

import (
	"os"
	"sync"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/experiments"
	"matchcatcher/internal/feature"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/rforest"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/telemetry"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns a shared quarter-ish-scale experiment environment so
// datasets and blocker outputs are generated once across benchmarks.
func env() *experiments.Env {
	benchEnvOnce.Do(func() { benchEnv = experiments.NewEnv(0.15) })
	return benchEnv
}

func benchOpts() experiments.DebugOptions {
	return experiments.DebugOptions{K: 300, Seed: 1}
}

// BenchmarkTable1Datasets regenerates Table 1's dataset statistics.
func BenchmarkTable1Datasets(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunTable1([]string{"A-G", "A-D", "F-Z"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Row runs one full Table 3 row (block, joint top-k,
// verifier to natural stop) on the F-Z HASH blocker.
func BenchmarkTable3Row(b *testing.B) {
	e := env()
	spec := experiments.SpecsFor("F-Z")[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunTable3Row(spec, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4FirstIterations runs the Table 4 protocol: the first
// three verifier iterations plus problem summarization.
func BenchmarkTable4FirstIterations(b *testing.B) {
	e := env()
	spec := experiments.Table4Specs()[3] // F-Z R
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunTable4Row(spec, 3, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashBlockerDebugging runs the §6.2 repair loop on the best
// F-Z hash blocker.
func BenchmarkHashBlockerDebugging(b *testing.B) {
	e := env()
	var spec experiments.Spec
	for _, s := range experiments.BestHashBlockers() {
		if s.Dataset == "F-Z" {
			spec = s
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunHashDebug(spec, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearnedBlockerDebugging runs the §6.2 learned-blocker study:
// learn a blocker on a sample of Papers, then debug it for 5 iterations.
func BenchmarkLearnedBlockerDebugging(b *testing.B) {
	e := experiments.NewEnv(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunLearned(1, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Scaling runs a reduced Figure 9 sweep: the M2 HASH1
// blocker's top-k runtime at two dataset fractions and two k values.
func BenchmarkFig9Scaling(b *testing.B) {
	e := experiments.NewEnv(0.04)
	specs := experiments.SpecsFor("M2")[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunFig9("M2", specs, []int{100, 1000}, []int{40, 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMultiConfig measures multi-config vs single-config
// match retrieval (§6.5).
func BenchmarkAblationMultiConfig(b *testing.B) {
	e := env()
	specs := experiments.SpecsFor("F-Z")[1:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunMultiConfigAblation(specs, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLongAttr measures long-attribute handling on the
// long-description A-G profile (§6.5).
func BenchmarkAblationLongAttr(b *testing.B) {
	e := env()
	specs := experiments.SpecsFor("A-G")[1:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunLongAttrAblation(specs, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationJointTopK measures joint vs individual config
// execution (§6.5).
func BenchmarkAblationJointTopK(b *testing.B) {
	e := env()
	specs := experiments.SpecsFor("A-G")[1:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunJointAblation(specs, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVerifier compares the learning verifier against WMR
// (§6.5).
func BenchmarkAblationVerifier(b *testing.B) {
	e := env()
	specs := experiments.SpecsFor("F-Z")[1:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunVerifierAblation(specs, 5, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityK sweeps k (§6.5 sensitivity analysis).
func BenchmarkSensitivityK(b *testing.B) {
	e := env()
	spec := experiments.SpecsFor("F-Z")[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunSensitivityK(spec, []int{100, 300}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks for the core algorithms ---

func benchCorpus(b *testing.B, prof datagen.Profile, blockAttr string) (*ssjoin.Corpus, *config.Result, *blocker.PairSet) {
	b.Helper()
	d := datagen.MustGenerate(prof)
	res, err := config.Generate(d.A, d.B, config.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q := blocker.NewAttrEquivalence(blockAttr)
	c, err := q.Block(d.A, d.B)
	if err != nil {
		b.Fatal(err)
	}
	return ssjoin.NewCorpus(d.A, d.B, res), res, c
}

// BenchmarkQJoin measures the improved top-k join (q = 2, the default) on
// one long-string config — the paper's §4.1 contribution. Deferring score
// computation pays off exactly when strings are long (A-G descriptions);
// on short strings the q-selection race picks q = 1.
func BenchmarkQJoin(b *testing.B) {
	cor, res, c := benchCorpus(b, datagen.AmazonGoogle().Scaled(0.5), "manuf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ssjoin.JoinOne(cor, res.Root.Mask, c, ssjoin.Options{K: 1000, Q: 2})
	}
}

// BenchmarkTopKJoinBaseline measures the TopKJoin baseline [34] (q = 1,
// eager scoring) on the same workload, the comparison QJoin improves on.
func BenchmarkTopKJoinBaseline(b *testing.B) {
	cor, res, c := benchCorpus(b, datagen.AmazonGoogle().Scaled(0.5), "manuf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ssjoin.JoinOne(cor, res.Root.Mask, c, ssjoin.Options{K: 1000, Q: 1})
	}
}

// BenchmarkJointAllConfigs measures the full joint executor over the
// config tree.
func BenchmarkJointAllConfigs(b *testing.B) {
	cor, _, c := benchCorpus(b, datagen.Music1().Scaled(0.1), "artist_name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ssjoin.JoinAll(cor, c, ssjoin.Options{K: 500})
	}
}

// BenchmarkBlockerRule measures index-driven rule-blocker execution.
func BenchmarkBlockerRule(b *testing.B) {
	d := datagen.MustGenerate(datagen.AmazonGoogle().Scaled(0.5))
	q := blocker.MustParseDropRule("sim", "title_cos_word<0.4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Block(d.A, d.B); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMedRank measures rank aggregation over realistic top-k lists.
func BenchmarkMedRank(b *testing.B) {
	cor, _, c := benchCorpus(b, datagen.Music1().Scaled(0.1), "artist_name")
	jr := ssjoin.JoinAll(cor, c, ssjoin.Options{K: 500})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranker.MedRank(jr.Lists, 1)
	}
}

// BenchmarkJoinOneM2Instrumented and BenchmarkJoinOneM2Uninstrumented
// bound the telemetry subsystem's overhead on the Figure-9 M2 workload
// (Music2 profile, the HASH1 artist_name blocker, root config): the same
// JoinOne with a live registry vs. telemetry.Disabled(). The hot path
// keeps plain per-goroutine counters and flushes to shared instruments
// once per config join, so the two must stay within 5% of each other
// (recorded in BENCH_telemetry_overhead.json).
func BenchmarkJoinOneM2Instrumented(b *testing.B) {
	cor, res, c := benchCorpus(b, datagen.Music2().Scaled(0.1), "artist_name")
	reg := telemetry.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ssjoin.JoinOne(cor, res.Root.Mask, c, ssjoin.Options{K: 1000, Q: 2, Metrics: reg})
	}
}

func BenchmarkJoinOneM2Uninstrumented(b *testing.B) {
	cor, res, c := benchCorpus(b, datagen.Music2().Scaled(0.1), "artist_name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ssjoin.JoinOne(cor, res.Root.Mask, c, ssjoin.Options{K: 1000, Q: 2, Metrics: telemetry.Disabled()})
	}
}

// BenchmarkJoinOneM2Traced is the third arm of the overhead study: the
// same M2 workload with hierarchical tracing enabled on top of metrics —
// each iteration opens a root span and JoinOne hangs its config /
// tokenize / index / probe / topk spans under it. Span starts are
// per-config (not per-candidate), so this too must stay within 5% of the
// uninstrumented arm (recorded in BENCH_trace_overhead.json). Set
// MC_TRACE_OUT=<path> to also write the final iteration's Chrome trace —
// CI uploads it as an artifact for loading into about:tracing / Perfetto.
func BenchmarkJoinOneM2Traced(b *testing.B) {
	cor, res, c := benchCorpus(b, datagen.Music2().Scaled(0.1), "artist_name")
	reg := telemetry.New()
	var tr *telemetry.Tracer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr = telemetry.NewTracer(reg)
		root := tr.Start("debug.session")
		ssjoin.JoinOne(cor, res.Root.Mask, c, ssjoin.Options{K: 1000, Q: 2, Metrics: reg, Trace: root})
		root.End()
	}
	b.StopTimer()
	if path := os.Getenv("MC_TRACE_OUT"); path != "" && tr != nil {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomForestTrain measures one verifier retraining step.
func BenchmarkRandomForestTrain(b *testing.B) {
	var exs []rforest.Example
	for i := 0; i < 400; i++ {
		x := []float64{float64(i%7) / 7, float64(i%13) / 13, float64(i%3) / 3}
		exs = append(exs, rforest.Example{X: x, Y: i%7 < 3})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rforest.Train(exs, rforest.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifierFeedback measures one verifier iteration (rank, label,
// retrain, rerank) — §6.4 reports 0.14-0.18s per feedback round.
func BenchmarkVerifierFeedback(b *testing.B) {
	cor, _, c := benchCorpus(b, datagen.Music1().Scaled(0.1), "artist_name")
	jr := ssjoin.JoinAll(cor, c, ssjoin.Options{K: 500})
	ext := feature.NewExtractor(cor)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := ranker.NewVerifier(jr.Lists, ext.Vector, ranker.Options{Seed: int64(i)})
		for iter := 0; iter < 3 && !v.Done(); iter++ {
			pairs := v.Next()
			if len(pairs) == 0 {
				break
			}
			labels := make([]bool, len(pairs))
			for j := range labels {
				labels[j] = j%5 == 0
			}
			if err := v.Feedback(labels); err != nil {
				b.Fatal(err)
			}
		}
	}
}
