// Command mcgen generates the synthetic Table-1-shaped datasets to CSV so
// they can be inspected or fed to mcdebug:
//
//	mcgen -dataset F-Z -out ./data
//
// writes data/F-Z-A.csv, data/F-Z-B.csv, and data/F-Z-gold.csv (gold as
// aRow,bRow index pairs).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"

	"matchcatcher/internal/datagen"
	"matchcatcher/internal/telemetry"
)

func main() {
	dataset := flag.String("dataset", "F-Z", "dataset profile: A-G, W-A, A-D, F-Z, M1, M2, Papers")
	scale := flag.Float64("scale", 1, "scale factor applied to rows and matches")
	out := flag.String("out", ".", "output directory")
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()
	level := slog.LevelWarn // quiet by default: the summary line is the output
	if *verbose {
		level = slog.LevelDebug
	}
	logg := telemetry.NewLogger(os.Stderr, level)
	if err := run(*dataset, *scale, *out, logg); err != nil {
		logg.Error("generation failed", "dataset", *dataset, "err", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, out string, logg *slog.Logger) error {
	logg = telemetry.LoggerOr(logg)
	var prof datagen.Profile
	found := false
	for _, p := range datagen.AllProfiles() {
		if p.Name == dataset {
			prof, found = p, true
		}
	}
	if !found {
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if scale != 1 {
		prof = prof.Scaled(scale)
	}
	logg.Debug("generating", "dataset", dataset, "scale", scale,
		"rows_a", prof.RowsA, "rows_b", prof.RowsB)
	d, err := datagen.Generate(prof)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if err := d.A.WriteCSVFile(filepath.Join(out, dataset+"-A.csv")); err != nil {
		return err
	}
	logg.Debug("wrote table", "path", filepath.Join(out, dataset+"-A.csv"), "rows", d.A.NumRows())
	if err := d.B.WriteCSVFile(filepath.Join(out, dataset+"-B.csv")); err != nil {
		return err
	}
	logg.Debug("wrote table", "path", filepath.Join(out, dataset+"-B.csv"), "rows", d.B.NumRows())
	goldPath := filepath.Join(out, dataset+"-gold.csv")
	f, err := os.Create(goldPath)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"a_row", "b_row"}); err != nil {
		f.Close()
		return err
	}
	for _, p := range d.Gold.SortedPairs() {
		if err := w.Write([]string{strconv.Itoa(p.A), strconv.Itoa(p.B)}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows), %s (%d rows), %s (%d matches)\n",
		dataset+"-A.csv", d.A.NumRows(), dataset+"-B.csv", d.B.NumRows(), dataset+"-gold.csv", d.GoldCount())
	return nil
}
