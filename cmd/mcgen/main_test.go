package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesDatasetFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("F-Z", 0.3, dir, nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"F-Z-A.csv", "F-Z-B.csv", "F-Z-gold.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Errorf("%s has no data rows", name)
		}
	}
	gold, _ := os.ReadFile(filepath.Join(dir, "F-Z-gold.csv"))
	if !strings.HasPrefix(string(gold), "a_row,b_row\n") {
		t.Errorf("gold header missing: %q", string(gold[:20]))
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 1, t.TempDir(), nil); err == nil {
		t.Error("want error for unknown dataset")
	}
}
