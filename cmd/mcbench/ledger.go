// Ledger wiring: -ledger appends one runlog record per repetition (with
// the run's telemetry snapshot attached), and -count N repeats the
// experiment over fresh environments so mcperf gets N samples per
// metric. Metric keys follow the "<workload...>:<quantity>" convention
// that internal/perfstat uses to infer regression direction.
package main

import (
	"fmt"
	"sort"

	"matchcatcher/internal/experiments"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/perfstat"
	"matchcatcher/internal/runlog"
)

// collect folds an experiment's rows into the current repetition's
// metric map (a no-op outside ledger/count mode).
func (c *bench) collect(rows interface{}) {
	if c.collected == nil {
		return
	}
	for k, v := range metricsOf(rows) {
		c.collected[k] = v
	}
}

// metricsOf extracts ledger metrics from experiment rows. Only the
// perf-sensitive row types participate; other experiments record just
// their wall time.
func metricsOf(rows interface{}) map[string]float64 {
	m := map[string]float64{}
	switch rs := rows.(type) {
	case []experiments.Fig9Point:
		for _, p := range rs {
			m[fmt.Sprintf("fig9/%s/%s/k%d/pct%d:join_seconds", p.Dataset, p.Blocker, p.K, p.Pct)] = p.Seconds
		}
	case []experiments.Table3Row:
		for _, r := range rs {
			table3Metrics(m, "table3", r)
		}
	case []experiments.ParallelJoinPoint:
		parallelJoinMetrics(m, "paralleljoin", rs)
	case []experiments.ShardSkewPoint:
		// The imbalance ratio is a distribution property, not a speed:
		// no perfstat direction suffix, so mcperf tracks it without
		// calling drift a regression.
		for _, p := range rs {
			key := fmt.Sprintf("shardskew/%s/%s/k%d/sh%d", p.Dataset, p.Blocker, p.K, p.Shards)
			m[key+":join_seconds"] = p.Seconds
			m[key+":shard_imbalance"] = p.Imbalance
		}
	case experiments.PerfGateResult:
		for _, p := range rs.Fig9 {
			m[fmt.Sprintf("perfgate/%s/%s/k%d:join_seconds", p.Dataset, p.Blocker, p.K)] = p.Seconds
		}
		table3Metrics(m, "perfgate", rs.Recall)
		parallelJoinMetrics(m, "perfgate", rs.Parallel)
	}
	return m
}

// table3Metrics records one debug session's latency and (deterministic,
// scale-free) accuracy quantities under the given workload prefix.
func table3Metrics(m map[string]float64, prefix string, r experiments.Table3Row) {
	key := prefix + "/" + r.Dataset + "/" + r.Blocker
	m[key+":topk_seconds"] = r.TopKTime.Seconds()
	m[key+":recall_f"] = float64(r.F)
	m[key+":recall_me"] = float64(r.ME)
	m[key+":iterations"] = float64(r.I)
}

// parallelJoinMetrics records the intra-join parallelism sweep under the
// given workload prefix. The key carries the probe worker count, so
// mcperf tracks each point of the speedup curve as its own series (the
// "_seconds" suffix makes lower better, per perfstat.DirectionFor).
func parallelJoinMetrics(m map[string]float64, prefix string, points []experiments.ParallelJoinPoint) {
	for _, p := range points {
		m[fmt.Sprintf("%s/%s/%s/k%d/pw%d:join_parallel_seconds",
			prefix, p.Dataset, p.Blocker, p.K, p.Workers)] = p.Seconds
	}
}

// medianTable summarizes the repetitions' pooled samples, the -count N
// variance-mode output.
func medianTable(recs []runlog.Record) string {
	s := runlog.Samples(recs)
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &metrics.Table{Headers: []string{"metric", "median", "spread", "n"}}
	for _, k := range keys {
		sum := perfstat.Summarize(s[k])
		t.Add(k, fmt.Sprintf("%.4g", sum.Median), fmt.Sprintf("±%.0f%%", sum.SpreadPct()), sum.N)
	}
	return t.String()
}
