// Command mcbench regenerates the paper's evaluation tables and figures
// on the synthetic datasets:
//
//	mcbench -exp table3 -scale 0.25     # quick pass at quarter scale
//	mcbench -exp all                    # the full Section 6 sweep
//
// Experiments: table1, table3, table4, hashdebug, learned, fig9,
// ablate-config, ablate-long, ablate-joint, ablate-verifier, sensitivity,
// parallel-join, shard-skew, perf-gate, all. -datasets filters table3 to
// a comma-separated dataset list.
//
// -probe-workers sets the goroutine budget inside each single-config join
// (intra-join probe sharding); results are bit-identical at every value,
// so the flag affects only wall time. parallel-join sweeps that budget
// over 1/2/4/8 and prints the speedup curve (BENCH_parallel_join.json).
//
// Regression observability: -ledger appends one runlog record per run
// (metrics + env fingerprint + telemetry snapshot) to a JSONL ledger,
// and -count N repeats the experiment over fresh environments so mcperf
// gets N samples per metric (a per-metric median table is printed for
// N > 1). Under -json, each repetition emits its own JSON document.
//
// With -json the experiment's rows are emitted to stdout as one JSON
// document {"exp", "scale", "rows", "telemetry"} — the telemetry field is
// the run's full metrics snapshot (prune rates, reuse hit rates, stage
// latencies) — and progress lines move to stderr so stdout stays valid
// JSON. -metrics-addr additionally serves live Prometheus /metrics.
//
// Profiling and tracing: -profile-dir captures pprof profiles of the run
// (<exp>_cpu.pprof and <exp>_heap.pprof; inspect with go tool pprof);
// -trace-out writes every debug session's hierarchical span tree as one
// Chrome trace_event file for chrome://tracing / Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"matchcatcher/internal/experiments"
	"matchcatcher/internal/runlog"
	"matchcatcher/internal/telemetry"
)

// cliOptions are mcbench's parsed flags.
type cliOptions struct {
	Exp          string
	Scale        float64
	K            int
	ProbeWorkers int
	Seed         int64
	Count        int
	Datasets     string
	JSON         bool
	Ledger       string
	MetricsAddr  string
	ProfileDir   string
	TraceOut     string
}

// parseFlags parses argv (without the program name) into options.
func parseFlags(args []string) (cliOptions, error) {
	var o cliOptions
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	fs.StringVar(&o.Exp, "exp", "table3", "experiment to run")
	fs.Float64Var(&o.Scale, "scale", 1, "dataset scale factor")
	fs.IntVar(&o.K, "k", 1000, "top-k per config")
	fs.IntVar(&o.ProbeWorkers, "probe-workers", 1, "goroutines inside each single-config join (bit-identical results at any value)")
	fs.Int64Var(&o.Seed, "seed", 1, "random seed")
	fs.IntVar(&o.Count, "count", 1, "repetitions over fresh environments (variance mode; N samples per metric)")
	fs.StringVar(&o.Datasets, "datasets", "", "comma-separated dataset filter (table3, fig9)")
	fs.BoolVar(&o.JSON, "json", false, "emit JSON (rows + telemetry snapshot) instead of text tables")
	fs.StringVar(&o.Ledger, "ledger", "", "append one runlog record per repetition to this JSONL ledger (mcperf input)")
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve Prometheus /metrics (plus expvar and pprof) on this address, e.g. :8080")
	fs.StringVar(&o.ProfileDir, "profile-dir", "", "write pprof CPU and heap profiles of the run into this directory")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write the run's span trees as Chrome trace_event JSON to this path")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.Count < 1 {
		return o, fmt.Errorf("-count must be >= 1, got %d", o.Count)
	}
	return o, nil
}

// bench is one mcbench invocation with its output streams, so tests can
// capture stdout/stderr separately.
type bench struct {
	opts   cliOptions
	stdout io.Writer
	stderr io.Writer
	// collected, when non-nil, accumulates the current repetition's
	// ledger metrics (filled by emit via collect).
	collected map[string]float64
}

// progress prints human chatter: stdout normally, stderr under -json so
// stdout remains a single valid JSON document.
func (c *bench) progress(format string, args ...interface{}) {
	w := c.stdout
	if c.opts.JSON {
		w = c.stderr
	}
	fmt.Fprintf(w, format, args...)
}

// jsonReport is the -json output envelope.
type jsonReport struct {
	Exp       string              `json:"exp"`
	Scale     float64             `json:"scale"`
	Rows      interface{}         `json:"rows"`
	Telemetry *telemetry.Snapshot `json:"telemetry"`
}

// emit prints rows as JSON (with the run's telemetry snapshot) when
// -json is set, else the formatted text table.
func (c *bench) emit(rows interface{}, text string) error {
	c.collect(rows)
	if c.opts.JSON {
		enc := json.NewEncoder(c.stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonReport{
			Exp:       c.opts.Exp,
			Scale:     c.opts.Scale,
			Rows:      rows,
			Telemetry: telemetry.Default().Snapshot(),
		})
	}
	fmt.Fprint(c.stdout, text)
	return nil
}

// startProfiles begins a CPU profile and returns a stop function that
// finishes it and writes a heap profile; profile files are named after
// the experiment (<exp>_cpu.pprof, <exp>_heap.pprof).
func startProfiles(dir, exp string) (func() error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpuPath := filepath.Join(dir, exp+"_cpu.pprof")
	cpuF, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpuF.Close(); err != nil {
			return err
		}
		heapF, err := os.Create(filepath.Join(dir, exp+"_heap.pprof"))
		if err != nil {
			return err
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(heapF); err != nil {
			heapF.Close()
			return err
		}
		return heapF.Close()
	}, nil
}

// writeChromeTrace dumps the tracer's span trees to path.
func writeChromeTrace(tr *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	logg := telemetry.NewLogger(os.Stderr, slog.LevelInfo)
	c := &bench{opts: opts, stdout: os.Stdout, stderr: os.Stderr}
	if opts.MetricsAddr != "" {
		srv, addr, err := telemetry.Default().Serve(opts.MetricsAddr)
		if err != nil {
			logg.Error("metrics server failed", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		c.progress("metrics: http://%s/metrics\n", addr)
	}

	env := experiments.NewEnv(opts.Scale)
	opt := experiments.DebugOptions{K: opts.K, Seed: opts.Seed, ProbeWorkers: opts.ProbeWorkers}

	var tracer *telemetry.Tracer
	if opts.TraceOut != "" {
		tracer = telemetry.NewTracer(telemetry.Default())
		opt.Trace = tracer
	}
	var stopProfiles func() error
	if opts.ProfileDir != "" {
		stopProfiles, err = startProfiles(opts.ProfileDir, opts.Exp)
		if err != nil {
			logg.Error("profile capture failed to start", "err", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	var runErr error
	var recs []runlog.Record
	for rep := 1; rep <= opts.Count; rep++ {
		if opts.Count > 1 {
			c.progress("\n===== rep %d/%d =====\n", rep, opts.Count)
			// Fresh caches each repetition so later reps re-measure the
			// full pipeline instead of hitting the dataset/blocker caches.
			env = experiments.NewEnv(opts.Scale)
		}
		c.collected = map[string]float64{}
		repStart := time.Now()
		runErr = c.run(env, opts.Exp, opts.Datasets, opt)
		wall := time.Since(repStart).Seconds()
		if runErr != nil {
			break
		}
		if opts.Ledger == "" && opts.Count == 1 {
			continue
		}
		c.collected[opts.Exp+":wall_seconds"] = wall
		rec := runlog.New("mcbench", opts.Exp, opts.Seed, map[string]any{
			"exp": opts.Exp, "scale": opts.Scale, "k": opts.K, "datasets": opts.Datasets,
		})
		rec.Metrics = c.collected
		rec.AttachTelemetry(telemetry.Default())
		recs = append(recs, rec)
		// The append happens after the repetition's timings are taken, so
		// ledger I/O never lands inside a measured section.
		if opts.Ledger != "" {
			if err := runlog.Append(opts.Ledger, rec); err != nil {
				logg.Error("ledger append failed", "path", opts.Ledger, "err", err)
				os.Exit(1)
			}
		}
	}
	if runErr == nil && opts.Count > 1 {
		c.progress("\n===== medians over %d reps =====\n%s", opts.Count, medianTable(recs))
	}
	if stopProfiles != nil {
		if err := stopProfiles(); err != nil {
			logg.Error("profile capture failed", "err", err)
		} else {
			logg.Info("wrote pprof profiles", "dir", opts.ProfileDir, "exp", opts.Exp)
		}
	}
	if tracer != nil {
		if err := writeChromeTrace(tracer, opts.TraceOut); err != nil {
			logg.Error("trace export failed", "err", err)
		} else {
			logg.Info("wrote chrome trace", "path", opts.TraceOut,
				"spans", tracer.Len(), "dropped", tracer.Dropped())
		}
	}
	if runErr != nil {
		logg.Error("experiment failed", "exp", opts.Exp, "err", runErr)
		os.Exit(1)
	}
	c.progress("\n[%s done in %s at scale %g]\n", opts.Exp, time.Since(start).Round(time.Millisecond), opts.Scale)
}

func (c *bench) run(env *experiments.Env, exp, datasets string, opt experiments.DebugOptions) error {
	switch exp {
	case "all":
		for _, e := range []string{"table1", "table3", "table4", "hashdebug", "learned",
			"fig9", "ablate-config", "ablate-long", "ablate-joint", "ablate-verifier", "sensitivity"} {
			c.progress("\n===== %s =====\n", e)
			if err := c.run(env, e, datasets, opt); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil

	case "parallel-join":
		// The intra-join parallelism speedup curve: the M2 join sweep at
		// k=1000 over probe worker counts 1/2/4/8, with each multi-worker
		// run bit-compared against the 1-worker reference as it is timed.
		// BENCH_parallel_join.json records a run of this experiment.
		specs := experiments.SpecsFor("M2")[:3] // HASH1, HASH2, SIM1
		points, err := env.RunParallelJoin("M2", specs, c.opts.K, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		for _, p := range points {
			c.progress("join %s/%s k=%d pw=%d %.2fs (%.2fx)\n",
				p.Dataset, p.Blocker, p.K, p.Workers, p.Seconds, p.SpeedupX)
		}
		return c.emit(points, experiments.FormatParallelJoin(points))

	case "shard-skew":
		// Per-shard probe-work distribution on the long-tail SKEW profile:
		// one join per shard count with the progress tracker attached,
		// reading back its per-shard pop counts and skew summary. Results
		// are bit-compared across shard counts as they are timed — only
		// the work split moves, never the output.
		points, err := env.RunShardSkew(experiments.ShardSkewSpec(), c.opts.K, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		for _, p := range points {
			c.progress("join %s/%s k=%d shards=%d %.2fs imb %.2f work %v\n",
				p.Dataset, p.Blocker, p.K, p.Shards, p.Seconds, p.Imbalance, p.ShardWork)
		}
		return c.emit(points, experiments.FormatShardSkew(points))

	case "perf-gate":
		// The pinned CI regression workload: three M2 joins plus one
		// M2/HASH1 debug session. Frozen — changing it invalidates the
		// committed BENCH_perf_gate.json baseline (make perf-baseline).
		res, err := env.RunPerfGate(opt)
		if err != nil {
			return err
		}
		for _, p := range res.Fig9 {
			c.progress("join %s/%s k=%d %.2fs\n", p.Dataset, p.Blocker, p.K, p.Seconds)
		}
		return c.emit(res, experiments.FormatPerfGate(res))

	case "table1":
		rows, err := env.RunTable1([]string{"A-G", "W-A", "A-D", "F-Z", "M1", "M2", "Papers"})
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatTable1(rows))

	case "table3":
		specs := experiments.Table2Blockers()
		if datasets != "" {
			want := map[string]bool{}
			for _, d := range strings.Split(datasets, ",") {
				want[strings.TrimSpace(d)] = true
			}
			var filtered []experiments.Spec
			for _, s := range specs {
				if want[s.Dataset] {
					filtered = append(filtered, s)
				}
			}
			specs = filtered
		}
		var rows []experiments.Table3Row
		for _, s := range specs {
			row, err := env.RunTable3Row(s, opt)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			c.progress("done %s/%s: C=%d M_D=%d E=%d M_E=%d F=%d I=%d (topk %.1fs)\n",
				row.Dataset, row.Blocker, row.C, row.MD, row.E, row.ME, row.F, row.I, row.TopKTime.Seconds())
		}
		c.progress("\n")
		return c.emit(rows, experiments.FormatTable3(rows))

	case "table4":
		rows, err := env.RunTable4(opt)
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatTable4(rows))

	case "hashdebug":
		rows, err := env.RunHashDebugAll(opt)
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatHashDebug(rows))

	case "learned":
		rows, err := env.RunLearned(3, opt)
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatLearned(rows))

	case "fig9":
		// Sweep one dataset fraction at a time and print points as they
		// land, so an interrupted sweep still records its prefix.
		// -datasets restricts to M2 or Papers (both by default), letting
		// the two sweeps run at different -scale settings.
		wantDS := map[string]bool{"M2": true, "Papers": true}
		if datasets != "" {
			wantDS = map[string]bool{}
			for _, d := range strings.Split(datasets, ",") {
				wantDS[strings.TrimSpace(d)] = true
			}
		}
		m2 := experiments.SpecsFor("M2")[:3] // HASH1, HASH2, SIM1, as in the figure
		var learned []experiments.Spec
		if wantDS["Papers"] {
			var err error
			learned, err = env.LearnedBlockers(3, opt.Seed)
			if err != nil {
				return err
			}
		}
		var all []experiments.Fig9Point
		for _, pct := range []int{10, 40, 70, 100} {
			var points []experiments.Fig9Point
			if wantDS["M2"] {
				ps, err := env.RunFig9("M2", m2, []int{100, 1000}, []int{pct})
				if err != nil {
					return err
				}
				points = append(points, ps...)
			}
			if wantDS["Papers"] {
				// k=1000 only: the paper's k=100 series has the same
				// shape, and each 95K-tuple join runs minutes on one core.
				ps, err := env.RunFig9("Papers", learned, []int{1000}, []int{pct})
				if err != nil {
					return err
				}
				points = append(points, ps...)
			}
			for _, p := range points {
				c.progress("point %s/%s k=%d pct=%d%% %.2fs\n", p.Dataset, p.Blocker, p.K, p.Pct, p.Seconds)
			}
			all = append(all, points...)
		}
		c.progress("\n")
		return c.emit(all, experiments.FormatFig9(all))

	case "ablate-config":
		// One representative blocker per dataset (W-A's joins run for
		// minutes each; its blockers are covered by table3).
		specs := []experiments.Spec{
			experiments.SpecsFor("A-G")[0],
			experiments.SpecsFor("A-G")[1],
			experiments.SpecsFor("A-D")[0],
			experiments.SpecsFor("F-Z")[1],
			experiments.SpecsFor("F-Z")[3],
			experiments.SpecsFor("M1")[1],
		}
		rows, err := env.RunMultiConfigAblation(specs, opt)
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatMultiConfig(rows))

	case "ablate-long":
		// A-G is the long-attribute dataset (its descriptions dominate
		// tuple length); W-A behaves the same but each of its joins runs
		// for minutes, so the recorded ablation uses A-G.
		specs := experiments.SpecsFor("A-G")
		rows, err := env.RunLongAttrAblation(specs, opt)
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatLongAttr(rows))

	case "ablate-joint":
		specs := []experiments.Spec{
			experiments.SpecsFor("A-G")[1],
			experiments.SpecsFor("A-D")[0],
			experiments.SpecsFor("F-Z")[1],
			experiments.SpecsFor("M1")[1],
		}
		rows, err := env.RunJointAblation(specs, opt)
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatJoint(rows))

	case "ablate-verifier":
		specs := []experiments.Spec{
			experiments.SpecsFor("A-G")[1],
			experiments.SpecsFor("F-Z")[3],
			experiments.SpecsFor("A-D")[3],
		}
		rows, err := env.RunVerifierAblation(specs, 10, opt)
		if err != nil {
			return err
		}
		return c.emit(rows, experiments.FormatVerifierAblation(rows))

	case "sensitivity":
		spec := experiments.SpecsFor("A-G")[1] // HASH, the richest M_D
		points, err := env.RunSensitivityK(spec, []int{100, 250, 500, 1000, 2000})
		if err != nil {
			return err
		}
		al, err := env.RunSensitivityAL(spec, []int{0, 1, 3, 6}, 12, opt)
		if err != nil {
			return err
		}
		combined := struct {
			K  []experiments.SensitivityPoint
			AL []experiments.ALSensitivityPoint
		}{points, al}
		return c.emit(combined,
			experiments.FormatSensitivityK(points)+"\n"+experiments.FormatSensitivityAL(al))
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
