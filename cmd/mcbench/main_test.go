package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"matchcatcher/internal/experiments"
	"matchcatcher/internal/runlog"
	"matchcatcher/internal/telemetry"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Exp != "table3" || o.Scale != 1 || o.K != 1000 || o.Seed != 1 || o.JSON || o.Datasets != "" || o.MetricsAddr != "" {
		t.Errorf("defaults = %+v", o)
	}
}

func TestParseFlagsValues(t *testing.T) {
	o, err := parseFlags([]string{"-exp", "fig9", "-scale", "0.25", "-k", "100",
		"-seed", "7", "-datasets", "M2", "-json", "-metrics-addr", ":0"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Exp != "fig9" || o.Scale != 0.25 || o.K != 100 || o.Seed != 7 ||
		o.Datasets != "M2" || !o.JSON || o.MetricsAddr != ":0" {
		t.Errorf("parsed = %+v", o)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Error("want error for unknown flag")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("want error for stray positional argument")
	}
	if _, err := parseFlags([]string{"-count", "0"}); err == nil {
		t.Error("want error for -count 0")
	}
}

func TestParseFlagsLedgerMode(t *testing.T) {
	o, err := parseFlags([]string{"-exp", "perf-gate", "-count", "5", "-ledger", "runs.jsonl"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Exp != "perf-gate" || o.Count != 5 || o.Ledger != "runs.jsonl" {
		t.Errorf("parsed = %+v", o)
	}
	if o, _ := parseFlags(nil); o.Count != 1 || o.Ledger != "" {
		t.Errorf("defaults = %+v, want count=1 no ledger", o)
	}
}

// TestMetricsOf checks the ledger key shapes for every perf-sensitive
// row type (the perfstat direction inference hangs off these suffixes).
func TestMetricsOf(t *testing.T) {
	fig9 := []experiments.Fig9Point{{Dataset: "M2", Blocker: "HASH1", K: 1000, Pct: 40, Seconds: 1.5}}
	m := metricsOf(fig9)
	if m["fig9/M2/HASH1/k1000/pct40:join_seconds"] != 1.5 {
		t.Errorf("fig9 metrics = %v", m)
	}

	row := experiments.Table3Row{Dataset: "M2", Blocker: "HASH1", F: 42, ME: 50, I: 3, TopKTime: 2 * time.Second}
	m = metricsOf([]experiments.Table3Row{row})
	if m["table3/M2/HASH1:recall_f"] != 42 || m["table3/M2/HASH1:topk_seconds"] != 2 ||
		m["table3/M2/HASH1:recall_me"] != 50 || m["table3/M2/HASH1:iterations"] != 3 {
		t.Errorf("table3 metrics = %v", m)
	}

	m = metricsOf(experiments.PerfGateResult{Fig9: fig9, Recall: row})
	if m["perfgate/M2/HASH1/k1000:join_seconds"] != 1.5 || m["perfgate/M2/HASH1:recall_f"] != 42 {
		t.Errorf("perf-gate metrics = %v", m)
	}

	// Non-perf rows contribute nothing (the wall clock still lands via
	// the per-rep record).
	if m := metricsOf(struct{}{}); len(m) != 0 {
		t.Errorf("unknown rows produced metrics: %v", m)
	}
}

// TestCollectAndMedianTable exercises the variance-mode summary path.
func TestCollectAndMedianTable(t *testing.T) {
	c := &bench{opts: cliOptions{}, stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{}}
	c.collect(nil) // nil collected map: no-op, no panic

	var recs []runlog.Record
	for _, s := range []float64{1.0, 1.2, 1.1} {
		c.collected = map[string]float64{}
		c.collect([]experiments.Fig9Point{{Dataset: "M2", Blocker: "HASH1", K: 1000, Pct: 100, Seconds: s}})
		rec := runlog.New("mcbench", "fig9", 1, map[string]any{"scale": 0.1})
		rec.Metrics = c.collected
		recs = append(recs, rec)
	}
	table := medianTable(recs)
	if !strings.Contains(table, "fig9/M2/HASH1/k1000/pct100:join_seconds") ||
		!strings.Contains(table, "1.1") {
		t.Errorf("median table:\n%s", table)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	c := &bench{opts: cliOptions{Exp: "nope"}, stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{}}
	err := c.run(experiments.NewEnv(1), "nope", "", experiments.DebugOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown experiment", err)
	}
}

// TestJSONOutputIsValid runs a real (tiny) experiment with -json and
// checks that stdout is one valid JSON document carrying both the rows
// and the run's telemetry snapshot, with progress chatter on stderr.
func TestJSONOutputIsValid(t *testing.T) {
	var stdout, stderr bytes.Buffer
	opts := cliOptions{Exp: "table3", Scale: 1, K: 100, Seed: 1, Datasets: "F-Z", JSON: true}
	c := &bench{opts: opts, stdout: &stdout, stderr: &stderr}
	env := experiments.NewEnv(opts.Scale) // F-Z is tiny even at full scale
	if err := c.run(env, opts.Exp, opts.Datasets, experiments.DebugOptions{K: opts.K, Seed: opts.Seed}); err != nil {
		t.Fatal(err)
	}

	if !json.Valid(stdout.Bytes()) {
		t.Fatalf("-json stdout is not valid JSON:\n%s", stdout.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Exp != "table3" {
		t.Errorf("exp = %q", rep.Exp)
	}
	rows, ok := rep.Rows.([]interface{})
	if !ok || len(rows) == 0 {
		t.Errorf("rows = %#v, want non-empty array", rep.Rows)
	}
	if rep.Telemetry == nil || rep.Telemetry.NumSeries() == 0 {
		t.Fatal("telemetry snapshot missing from -json output")
	}
	found := 0
	for k := range rep.Telemetry.Counters {
		if strings.HasPrefix(k, "mc_") {
			found++
		}
	}
	if found == 0 {
		t.Errorf("no mc_* counters in snapshot: %v", rep.Telemetry.Counters)
	}
	// Progress chatter must not leak into the JSON stream.
	if !strings.Contains(stderr.String(), "done F-Z/") {
		t.Errorf("progress lines missing from stderr: %q", stderr.String())
	}
}

// TestProfileAndTraceCapture exercises the -profile-dir and -trace-out
// wiring on a real tiny experiment: valid pprof files appear, and the
// Chrome trace holds the session's span trees.
func TestProfileAndTraceCapture(t *testing.T) {
	dir := t.TempDir()
	stop, err := startProfiles(dir, "table3")
	if err != nil {
		t.Fatal(err)
	}

	tracer := telemetry.NewTracer(nil)
	var stdout, stderr bytes.Buffer
	c := &bench{opts: cliOptions{Exp: "table3"}, stdout: &stdout, stderr: &stderr}
	opt := experiments.DebugOptions{K: 100, Seed: 1, Trace: tracer}
	if err := c.run(experiments.NewEnv(1), "table3", "F-Z", opt); err != nil {
		t.Fatal(err)
	}

	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table3_cpu.pprof", "table3_heap.pprof"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing profile %s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}

	if tracer.Len() == 0 {
		t.Fatal("tracer collected no spans from the experiment run")
	}
	tracePath := filepath.Join(dir, "trace.json")
	if err := writeChromeTrace(tracer, tracePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) || !strings.Contains(string(data), "debug.session") {
		t.Errorf("chrome trace invalid or missing debug.session spans:\n%.400s", data)
	}
}
