// Command mcperf is the statistical gatekeeper over the runlog ledger:
// benchstat-style comparison and regression checking of repeated
// mcbench/mcdebug runs.
//
//	mcperf record -ledger runs.jsonl -exp myexp -metric my/key:wall_seconds=1.23
//	go test -bench . | mcperf record -ledger runs.jsonl -from-bench
//	mcperf diff old.jsonl new.jsonl
//	mcperf check -baseline BENCH_perf_gate.json -ledger runs.jsonl
//	mcperf report -ledger runs.jsonl -format json -out BENCH_perf_gate.json
//
// diff compares two ledgers arm-by-arm (median, ~95% CI, Mann–Whitney
// p) and is purely informational. check compares a ledger against a
// committed baseline file and exits 1 on any blocking regression:
// scale-free metrics (recall, counts) always block; latency metrics
// block only when the baseline was recorded on a comparable machine
// (same GOOS/GOARCH/CPU model — cross-machine nanosecond comparisons
// are statistically meaningless), or always under -strict-env. report
// regenerates the committed BENCH_*.json baseline format (or a
// markdown trend table) mechanically from the ledger.
//
// Exit codes: 0 ok, 1 regression found (check), 2 usage or I/O error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"matchcatcher/internal/perfstat"
	"matchcatcher/internal/runlog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: mcperf <command> [flags]

commands:
  record   append a measurement record to a ledger (explicit -metric
           flags, or -from-bench to parse 'go test -bench' output on stdin)
  diff     compare two ledgers, benchstat-style
  check    compare a ledger against a committed baseline; exit 1 on
           significant regression
  report   regenerate the baseline JSON (BENCH_*.json) or a markdown
           trend table from a ledger

run 'mcperf <command> -h' for the command's flags.
`)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "record":
		return cmdRecord(args[1:], stdin, stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	case "check":
		return cmdCheck(args[1:], stdout, stderr)
	case "report":
		return cmdReport(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "mcperf: unknown command %q\n", args[0])
	usage(stderr)
	return 2
}

// repeatable is a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

// statFlags are the shared statistical knobs of diff and check.
func statFlags(fs *flag.FlagSet) *perfstat.Thresholds {
	th := &perfstat.Thresholds{}
	fs.Float64Var(&th.Alpha, "alpha", 0.05, "significance level for the Mann–Whitney test")
	fs.Float64Var(&th.MinDeltaPct, "min-delta", 0.05, "practical-significance floor on |median delta| (fraction, 0.05 = 5%)")
	fs.IntVar(&th.MinSamples, "min-samples", 2, "per-arm sample floor below which verdicts are indeterminate")
	return th
}

func cmdRecord(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcperf record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledger := fs.String("ledger", "", "ledger path to append to (required)")
	tool := fs.String("tool", "mcperf", "producing tool name for the record")
	exp := fs.String("exp", "", "workload label")
	seed := fs.Int64("seed", 0, "seed the measurement ran with")
	notes := fs.String("notes", "", "free-form note stored on the record")
	fromBench := fs.Bool("from-bench", false, "parse 'go test -bench' output from stdin (one record per benchmark line)")
	var metricFlags, seriesFlags repeatable
	fs.Var(&metricFlags, "metric", "scalar sample as key=value (repeatable)")
	fs.Var(&seriesFlags, "series", "per-iteration series as key=v1,v2,... (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ledger == "" {
		fmt.Fprintln(stderr, "mcperf record: -ledger is required")
		return 2
	}

	var recs []runlog.Record
	if len(metricFlags)+len(seriesFlags) > 0 {
		rec := runlog.New(*tool, *exp, *seed, map[string]any{"source": "mcperf record"})
		rec.Notes = *notes
		rec.Metrics = map[string]float64{}
		for _, m := range metricFlags {
			k, v, err := splitKV(m)
			if err != nil {
				fmt.Fprintf(stderr, "mcperf record: -metric %q: %v\n", m, err)
				return 2
			}
			rec.Metrics[k] = v
		}
		for _, s := range seriesFlags {
			k, vs, err := splitSeries(s)
			if err != nil {
				fmt.Fprintf(stderr, "mcperf record: -series %q: %v\n", s, err)
				return 2
			}
			if rec.Series == nil {
				rec.Series = map[string][]float64{}
			}
			rec.Series[k] = vs
		}
		recs = append(recs, rec)
	}
	if *fromBench {
		parsed, err := parseBenchOutput(stdin, *tool, *exp, *seed, *notes)
		if err != nil {
			fmt.Fprintf(stderr, "mcperf record: %v\n", err)
			return 2
		}
		recs = append(recs, parsed...)
	}
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "mcperf record: nothing to record (give -metric/-series or -from-bench)")
		return 2
	}
	if err := runlog.Append(*ledger, recs...); err != nil {
		fmt.Fprintf(stderr, "mcperf record: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "recorded %d record(s) to %s\n", len(recs), *ledger)
	return 0
}

func splitKV(s string) (string, float64, error) {
	k, vs, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return "", 0, fmt.Errorf("want key=value")
	}
	v, err := strconv.ParseFloat(vs, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value: %w", err)
	}
	return k, v, nil
}

func splitSeries(s string) (string, []float64, error) {
	k, vs, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return "", nil, fmt.Errorf("want key=v1,v2,...")
	}
	var out []float64
	for _, f := range strings.Split(vs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad series value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return k, out, nil
}

// parseBenchOutput converts `go test -bench` lines into ledger records:
// one record per benchmark result line, so -count N repetitions pool
// into N samples per metric. "BenchmarkX-8  10  123 ns/op  45 B/op"
// becomes bench/BenchmarkX-8:time_ns and bench/BenchmarkX-8:alloc_bytes.
func parseBenchOutput(r io.Reader, tool, exp string, seed int64, notes string) ([]runlog.Record, error) {
	var recs []runlog.Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			var key string
			switch fields[i+1] {
			case "ns/op":
				key = "bench/" + fields[0] + ":time_ns"
			case "B/op":
				key = "bench/" + fields[0] + ":alloc_bytes"
			case "allocs/op":
				key = "bench/" + fields[0] + ":allocs"
			default:
				continue
			}
			metrics[key] = v
		}
		if len(metrics) == 0 {
			continue
		}
		rec := runlog.New(tool, exp, seed, map[string]any{"source": "go test -bench", "benchmark": fields[0]})
		rec.Notes = notes
		rec.Metrics = metrics
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return recs, nil
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcperf diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	th := statFlags(fs)
	jsonOut := fs.Bool("json", false, "emit comparisons as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: mcperf diff [flags] <old.jsonl> <new.jsonl>")
		return 2
	}
	oldRecs, err := runlog.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "mcperf diff: %v\n", err)
		return 2
	}
	newRecs, err := runlog.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "mcperf diff: %v\n", err)
		return 2
	}
	cs := perfstat.CompareAll(runlog.Samples(oldRecs), runlog.Samples(newRecs), *th)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cs); err != nil {
			fmt.Fprintf(stderr, "mcperf diff: %v\n", err)
			return 2
		}
		return 0
	}
	fmt.Fprint(stdout, perfstat.FormatTable(cs))
	if envA, envB := firstEnv(oldRecs), firstEnv(newRecs); !envA.Comparable(envB) {
		fmt.Fprintf(stdout, "\nnote: ledgers were measured on different machines (%s/%s %q vs %s/%s %q); latency deltas are not meaningful\n",
			envA.GOOS, envA.GOARCH, envA.CPU, envB.GOOS, envB.GOARCH, envB.CPU)
	}
	return 0
}

func firstEnv(recs []runlog.Record) runlog.Fingerprint {
	if len(recs) == 0 {
		return runlog.Fingerprint{}
	}
	return recs[0].Env
}

// checkReport is the -json envelope of mcperf check.
type checkReport struct {
	Baseline      string                `json:"baseline"`
	Ledger        string                `json:"ledger"`
	EnvComparable bool                  `json:"env_comparable"`
	Comparisons   []perfstat.Comparison `json:"comparisons"`
	Blocking      []string              `json:"blocking_regressions"`
	Advisory      []string              `json:"advisory_regressions"`
	Pass          bool                  `json:"pass"`
}

func cmdCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcperf check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	th := statFlags(fs)
	baselinePath := fs.String("baseline", "", "committed baseline file (required)")
	ledgerPath := fs.String("ledger", "", "ledger with the current samples (required)")
	strictEnv := fs.Bool("strict-env", false, "block on latency regressions even when the baseline was measured on a different machine")
	jsonOut := fs.Bool("json", false, "emit the check result as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath == "" || *ledgerPath == "" {
		fmt.Fprintln(stderr, "mcperf check: -baseline and -ledger are required")
		return 2
	}
	base, err := perfstat.ReadBaselineFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "mcperf check: %v\n", err)
		return 2
	}
	recs, err := runlog.ReadFile(*ledgerPath)
	if err != nil {
		fmt.Fprintf(stderr, "mcperf check: %v\n", err)
		return 2
	}
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "mcperf check: ledger is empty")
		return 2
	}

	comparable := firstEnv(recs).Comparable(base.Environment)
	cs := perfstat.CompareAll(base.SampleMap(), runlog.Samples(recs), *th)

	rep := checkReport{
		Baseline:      *baselinePath,
		Ledger:        *ledgerPath,
		EnvComparable: comparable,
	}
	for _, c := range cs {
		rep.Comparisons = append(rep.Comparisons, c)
		if !c.Regression {
			continue
		}
		// Latency across machines is advisory: nanoseconds measured on
		// different CPUs do not compare (benchstat methodology).
		// Scale-free quantities (recall, counts) always block.
		if c.Direction == perfstat.LowerIsBetter && !comparable && !*strictEnv {
			rep.Advisory = append(rep.Advisory, c.Metric)
		} else {
			rep.Blocking = append(rep.Blocking, c.Metric)
		}
	}
	rep.Pass = len(rep.Blocking) == 0

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "mcperf check: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, perfstat.FormatTable(cs))
		if !comparable {
			fmt.Fprintf(stdout, "\nenv mismatch: baseline %s/%s %q vs current %s/%s %q — latency regressions are advisory (use -strict-env to block)\n",
				base.Environment.GOOS, base.Environment.GOARCH, base.Environment.CPU,
				firstEnv(recs).GOOS, firstEnv(recs).GOARCH, firstEnv(recs).CPU)
		}
		for _, m := range rep.Advisory {
			fmt.Fprintf(stdout, "advisory regression: %s\n", m)
		}
		for _, m := range rep.Blocking {
			fmt.Fprintf(stdout, "BLOCKING regression: %s\n", m)
		}
		if rep.Pass {
			fmt.Fprintln(stdout, "mcperf check: PASS")
		} else {
			fmt.Fprintln(stdout, "mcperf check: FAIL")
		}
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

func cmdReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcperf report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledgerPath := fs.String("ledger", "", "ledger to aggregate (required)")
	format := fs.String("format", "json", "output format: json (baseline file) or markdown (trend table)")
	desc := fs.String("desc", "", "description embedded in the baseline")
	out := fs.String("out", "", "write to this path instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ledgerPath == "" {
		fmt.Fprintln(stderr, "mcperf report: -ledger is required")
		return 2
	}
	recs, err := runlog.ReadFile(*ledgerPath)
	if err != nil {
		fmt.Fprintf(stderr, "mcperf report: %v\n", err)
		return 2
	}

	var data []byte
	switch *format {
	case "json":
		base, err := perfstat.BuildBaseline(recs, *desc)
		if err != nil {
			fmt.Fprintf(stderr, "mcperf report: %v\n", err)
			return 2
		}
		data, err = base.MarshalIndent()
		if err != nil {
			fmt.Fprintf(stderr, "mcperf report: %v\n", err)
			return 2
		}
	case "markdown":
		data = []byte(markdownTrend(recs))
	default:
		fmt.Fprintf(stderr, "mcperf report: unknown -format %q (want json or markdown)\n", *format)
		return 2
	}
	if *out == "" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "mcperf report: %v\n", err)
		return 2
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %s (%d metrics from %d records)\n", *out, countMetrics(recs), len(recs))
	}
	return 0
}

func countMetrics(recs []runlog.Record) int {
	return len(runlog.Samples(recs))
}

// markdownTrend renders per-metric medians, one column per build
// revision (in order of first appearance in the ledger), so a ledger
// spanning commits reads as a trend table.
func markdownTrend(recs []runlog.Record) string {
	type group struct {
		label   string
		samples map[string][]float64
	}
	var groups []group
	idx := map[string]int{}
	for _, r := range recs {
		label := r.Build.Revision
		if len(label) > 10 {
			label = label[:10]
		}
		if label == "" || label == "unknown" {
			label = "rev?"
		}
		if r.Build.Dirty {
			label += "+dirty"
		}
		gi, ok := idx[label]
		if !ok {
			gi = len(groups)
			idx[label] = gi
			groups = append(groups, group{label: label, samples: map[string][]float64{}})
		}
		for metric, v := range r.Metrics {
			groups[gi].samples[metric] = append(groups[gi].samples[metric], v)
		}
	}

	metricSet := map[string]bool{}
	for _, g := range groups {
		for m := range g.samples {
			metricSet[m] = true
		}
	}
	metricsSorted := make([]string, 0, len(metricSet))
	for m := range metricSet {
		metricsSorted = append(metricsSorted, m)
	}
	sort.Strings(metricsSorted)

	var sb strings.Builder
	sb.WriteString("# Performance trend\n\n")
	if len(recs) > 0 {
		env := recs[0].Env
		fmt.Fprintf(&sb, "Environment: %s/%s, %d CPUs, %s", env.GOOS, env.GOARCH, env.NumCPU, env.GoVersion)
		if env.CPU != "" {
			fmt.Fprintf(&sb, ", %s", env.CPU)
		}
		fmt.Fprintf(&sb, ". Records: %d.\n\n", len(recs))
	}
	sb.WriteString("| metric | dir |")
	for _, g := range groups {
		fmt.Fprintf(&sb, " %s |", g.label)
	}
	sb.WriteString("\n|---|---|")
	for range groups {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, m := range metricsSorted {
		fmt.Fprintf(&sb, "| %s | %s |", m, perfstat.DirectionFor(m).String())
		for _, g := range groups {
			s := perfstat.Summarize(g.samples[m])
			if s.N == 0 {
				sb.WriteString(" — |")
			} else {
				fmt.Fprintf(&sb, " %.4g ±%.0f%% (n=%d) |", s.Median, s.SpreadPct(), s.N)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
