package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"matchcatcher/internal/perfstat"
	"matchcatcher/internal/runlog"
)

// writeLedger builds a synthetic ledger where each metric key maps to
// one sample per record (len of every slice must match).
func writeLedger(t *testing.T, path string, samples map[string][]float64) {
	t.Helper()
	n := 0
	for _, vs := range samples {
		n = len(vs)
		break
	}
	var recs []runlog.Record
	for i := 0; i < n; i++ {
		r := runlog.New("mcbench", "perf-gate", 1, map[string]any{"scale": 0.1})
		r.Metrics = map[string]float64{}
		for k, vs := range samples {
			r.Metrics[k] = vs[i]
		}
		recs = append(recs, r)
	}
	if err := runlog.Append(path, recs...); err != nil {
		t.Fatal(err)
	}
}

// runCmd invokes run() capturing stdout/stderr.
func runCmd(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

// TestCheckFlagsInjectedSlowdown is the ISSUE.md acceptance criterion:
// build a baseline from a tight ledger, inject a ~10% join slowdown,
// and require `mcperf check` to exit 1; a same-distribution rerun must
// exit 0.
func TestCheckFlagsInjectedSlowdown(t *testing.T) {
	dir := t.TempDir()
	baseLedger := filepath.Join(dir, "base.jsonl")
	writeLedger(t, baseLedger, map[string][]float64{
		"perfgate/m2/HASH1/k1000:join_seconds": {1.00, 1.01, 0.99, 1.02, 0.98},
		"perfgate/m2/HASH1:recall_f":           {12, 12, 12, 12, 12},
	})

	baseline := filepath.Join(dir, "BENCH_perf_gate.json")
	code, _, errb := runCmd(t, "", "report", "-ledger", baseLedger, "-format", "json", "-out", baseline)
	if code != 0 {
		t.Fatalf("report exit = %d, stderr: %s", code, errb)
	}

	// Injected ~10% slowdown: blocking regression, exit 1.
	slowLedger := filepath.Join(dir, "slow.jsonl")
	writeLedger(t, slowLedger, map[string][]float64{
		"perfgate/m2/HASH1/k1000:join_seconds": {1.10, 1.11, 1.09, 1.12, 1.08},
		"perfgate/m2/HASH1:recall_f":           {12, 12, 12, 12, 12},
	})
	code, out, _ := runCmd(t, "", "check", "-baseline", baseline, "-ledger", slowLedger)
	if code != 1 {
		t.Fatalf("check exit = %d, want 1 for injected slowdown\n%s", code, out)
	}
	if !strings.Contains(out, "BLOCKING regression: perfgate/m2/HASH1/k1000:join_seconds") {
		t.Errorf("missing blocking regression line:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("missing FAIL verdict:\n%s", out)
	}

	// Same-seed repeat (same distribution): exit 0.
	okLedger := filepath.Join(dir, "ok.jsonl")
	writeLedger(t, okLedger, map[string][]float64{
		"perfgate/m2/HASH1/k1000:join_seconds": {1.01, 0.99, 1.00, 1.02, 0.97},
		"perfgate/m2/HASH1:recall_f":           {12, 12, 12, 12, 12},
	})
	code, out, _ = runCmd(t, "", "check", "-baseline", baseline, "-ledger", okLedger)
	if code != 0 {
		t.Fatalf("check exit = %d, want 0 for same distribution\n%s", code, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("missing PASS verdict:\n%s", out)
	}

	// A recall drop always blocks, even with fast joins.
	recallLedger := filepath.Join(dir, "recall.jsonl")
	writeLedger(t, recallLedger, map[string][]float64{
		"perfgate/m2/HASH1/k1000:join_seconds": {1.00, 1.01, 0.99, 1.00, 1.01},
		"perfgate/m2/HASH1:recall_f":           {11, 11, 11, 11, 11},
	})
	code, out, _ = runCmd(t, "", "check", "-baseline", baseline, "-ledger", recallLedger, "-json")
	if code != 1 {
		t.Fatalf("check exit = %d, want 1 for recall drop\n%s", code, out)
	}
	var rep checkReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("check -json output is not JSON: %v\n%s", err, out)
	}
	if rep.Pass || len(rep.Blocking) != 1 || rep.Blocking[0] != "perfgate/m2/HASH1:recall_f" {
		t.Errorf("recall-drop report = %+v", rep)
	}
}

// TestCheckEnvMismatchAdvisory: latency regressions against a baseline
// from a different machine are advisory (exit 0) unless -strict-env.
func TestCheckEnvMismatchAdvisory(t *testing.T) {
	dir := t.TempDir()
	baseLedger := filepath.Join(dir, "base.jsonl")
	writeLedger(t, baseLedger, map[string][]float64{
		"x:join_seconds": {1.00, 1.01, 0.99, 1.02, 0.98},
	})
	base := filepath.Join(dir, "base.json")
	if code, _, errb := runCmd(t, "", "report", "-ledger", baseLedger, "-out", base); code != 0 {
		t.Fatalf("report failed: %s", errb)
	}
	// Rewrite the baseline's environment to a foreign machine.
	b, err := perfstat.ReadBaselineFile(base)
	if err != nil {
		t.Fatal(err)
	}
	b.Environment.CPU = "Imaginary Quantum CPU @ 9.9THz"
	data, err := b.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}

	slow := filepath.Join(dir, "slow.jsonl")
	writeLedger(t, slow, map[string][]float64{
		"x:join_seconds": {1.10, 1.11, 1.09, 1.12, 1.08},
	})
	code, out, _ := runCmd(t, "", "check", "-baseline", base, "-ledger", slow)
	if code != 0 {
		t.Fatalf("cross-machine latency regression should be advisory, exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "advisory regression: x:join_seconds") {
		t.Errorf("missing advisory line:\n%s", out)
	}
	// -strict-env turns it back into a blocker.
	code, _, _ = runCmd(t, "", "check", "-baseline", base, "-ledger", slow, "-strict-env")
	if code != 1 {
		t.Errorf("-strict-env exit = %d, want 1", code)
	}
}

func TestRecordAndDiff(t *testing.T) {
	dir := t.TempDir()
	oldL := filepath.Join(dir, "old.jsonl")
	newL := filepath.Join(dir, "new.jsonl")
	// 5 samples per arm: a 3v3 rank test structurally cannot reach
	// p < 0.05 (min two-sided p = 2/C(6,3) = 0.1), 5v5 can (2/252).
	for _, v := range []string{"1.00", "1.01", "0.99", "1.02", "0.98"} {
		code, _, errb := runCmd(t, "", "record", "-ledger", oldL, "-exp", "t",
			"-metric", "a:wall_seconds="+v, "-series", "recall_by_iteration=0.2,0.5,0.9")
		if code != 0 {
			t.Fatalf("record exit = %d: %s", code, errb)
		}
	}
	for _, v := range []string{"1.30", "1.31", "1.29", "1.32", "1.28"} {
		if code, _, errb := runCmd(t, "", "record", "-ledger", newL, "-exp", "t",
			"-metric", "a:wall_seconds="+v); code != 0 {
			t.Fatalf("record exit = %d: %s", code, errb)
		}
	}
	recs, err := runlog.ReadFile(oldL)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Tool != "mcperf" || len(recs[0].Series["recall_by_iteration"]) != 3 {
		t.Fatalf("recorded ledger = %+v", recs)
	}

	code, out, _ := runCmd(t, "", "diff", oldL, newL)
	if code != 0 {
		t.Fatalf("diff exit = %d", code)
	}
	if !strings.Contains(out, "a:wall_seconds") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("diff output:\n%s", out)
	}

	// JSON mode parses and carries the delta.
	code, out, _ = runCmd(t, "", "diff", "-json", oldL, newL)
	if code != 0 {
		t.Fatalf("diff -json exit = %d", code)
	}
	var cs []perfstat.Comparison
	if err := json.Unmarshal([]byte(out), &cs); err != nil {
		t.Fatalf("diff -json: %v\n%s", err, out)
	}
	if len(cs) != 1 || !cs[0].Regression || cs[0].DeltaPct < 20 {
		t.Errorf("diff -json comparisons = %+v", cs)
	}
}

func TestRecordFromBench(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "bench.jsonl")
	benchOut := `goos: linux
goarch: amd64
BenchmarkJoin/M2-8     	      10	 123456789 ns/op	 4096 B/op	      12 allocs/op
BenchmarkJoin/M2-8     	      10	 124000000 ns/op	 4100 B/op	      12 allocs/op
BenchmarkTopK-8        	     100	   9876543 ns/op
PASS
`
	code, out, errb := runCmd(t, benchOut, "record", "-ledger", ledger, "-from-bench", "-exp", "microbench")
	if code != 0 {
		t.Fatalf("record -from-bench exit = %d: %s", code, errb)
	}
	if !strings.Contains(out, "recorded 3 record(s)") {
		t.Errorf("output: %s", out)
	}
	recs, err := runlog.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	s := runlog.Samples(recs)
	if len(s["bench/BenchmarkJoin/M2-8:time_ns"]) != 2 {
		t.Errorf("pooled bench samples = %v", s)
	}
	if vs := s["bench/BenchmarkJoin/M2-8:alloc_bytes"]; len(vs) != 2 || vs[0] < 4095 {
		t.Errorf("alloc samples = %v", vs)
	}
	if len(s["bench/BenchmarkTopK-8:time_ns"]) != 1 {
		t.Errorf("TopK samples = %v", s)
	}

	// Empty stdin is a usage error.
	if code, _, _ := runCmd(t, "PASS\n", "record", "-ledger", ledger, "-from-bench"); code != 2 {
		t.Errorf("empty bench input exit = %d, want 2", code)
	}
}

func TestReportFormatsAndUsage(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "runs.jsonl")
	writeLedger(t, ledger, map[string][]float64{
		"a:join_seconds": {1.0, 1.1, 0.9},
		"a:recall_f":     {12, 12, 12},
	})

	// JSON report is a valid, schema-tagged baseline with both metrics.
	code, out, _ := runCmd(t, "", "report", "-ledger", ledger, "-desc", "test baseline")
	if code != 0 {
		t.Fatalf("report exit = %d", code)
	}
	var base perfstat.Baseline
	if err := json.Unmarshal([]byte(out), &base); err != nil {
		t.Fatalf("report output is not a baseline: %v", err)
	}
	if base.Schema != perfstat.BaselineSchema || len(base.Metrics) != 2 || base.Description != "test baseline" {
		t.Errorf("baseline = %+v", base)
	}
	if base.Metrics["a:recall_f"].Direction != perfstat.HigherIsBetter.String() {
		t.Errorf("recall direction = %q", base.Metrics["a:recall_f"].Direction)
	}

	// Regeneration from the same ledger is byte-identical.
	_, out2, _ := runCmd(t, "", "report", "-ledger", ledger, "-desc", "test baseline")
	if out != out2 {
		t.Error("report is not deterministic over the same ledger")
	}

	// Markdown trend table.
	code, out, _ = runCmd(t, "", "report", "-ledger", ledger, "-format", "markdown")
	if code != 0 {
		t.Fatalf("markdown exit = %d", code)
	}
	for _, want := range []string{"# Performance trend", "a:join_seconds", "| metric | dir |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	// Usage errors all exit 2.
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"record", "-ledger", filepath.Join(dir, "x.jsonl")}, // nothing to record
		{"record"}, // no ledger
		{"diff", "only-one.jsonl"},
		{"check", "-ledger", ledger}, // no baseline
		{"report"},                   // no ledger
		{"report", "-ledger", ledger, "-format", "yaml"},
	} {
		if code, _, _ := runCmd(t, "", args...); code != 2 {
			t.Errorf("args %v exit = %d, want 2", args, code)
		}
	}
	if code, _, _ := runCmd(t, "", "help"); code != 0 {
		t.Error("help should exit 0")
	}
}
