// Command mctop is a terminal dashboard for a running mcserve: it polls
// /metrics and /debug/flightrecord and renders the server's operational
// state in place — live sessions, admission/eviction counters, per-route
// request rates and latency quantiles, current runtime health, and the
// most recent slow or errored requests from the flight ring.
//
//	mctop -addr http://localhost:8642
//
// The dashboard redraws every -interval. -once renders a single frame
// to stdout and exits (scripts, tests). Everything is computed from the
// two public endpoints — mctop needs no access to the server process.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"matchcatcher/internal/telemetry"
)

func main() {
	os.Exit(mainE(os.Stdout, os.Args[1:]))
}

func mainE(stdout io.Writer, args []string) int {
	fs := flag.NewFlagSet("mctop", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8642", "mcserve base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll and redraw interval")
	once := fs.Bool("once", false, "render one frame and exit")
	events := fs.Int("n", 8, "recent slow/errored requests to show")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		// Accept the bare host:port people paste from mcserve -addr.
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	var prev *frame
	for {
		f, err := gather(client, base, *events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mctop: %v\n", err)
			if *once {
				return 1
			}
		} else {
			if !*once {
				fmt.Fprint(stdout, "\x1b[2J\x1b[H") // clear + home
			}
			f.render(stdout, prev)
			prev = f
		}
		if *once {
			return 0
		}
		time.Sleep(*interval)
	}
}

// sample is one parsed exposition sample.
type sample struct {
	labels map[string]string
	value  float64
}

// promText is a parsed /metrics payload: samples grouped by metric name
// (histogram component suffixes _bucket/_sum/_count keep their full
// name, matching the text format).
type promText map[string][]sample

// parseProm parses the Prometheus text exposition format (the subset
// the telemetry registry emits: counters, gauges, histograms).
func parseProm(r io.Reader) (promText, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := promText{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("mctop: parse %q: %w", line, err)
		}
		out[name] = append(out[name], sample{labels: labels, value: value})
	}
	return out, nil
}

// parseSample splits `name{k="v",...} value` (labels optional).
func parseSample(line string) (string, map[string]string, float64, error) {
	var name, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		rest = line[i:]
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("no value")
		}
		name = line[:sp]
		rest = line[sp:]
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		body, tail, err := splitLabelBlock(rest)
		if err != nil {
			return "", nil, 0, err
		}
		labels, err = parseLabels(body)
		if err != nil {
			return "", nil, 0, err
		}
		rest = tail
	}
	var v float64
	if _, err := fmt.Sscanf(strings.TrimSpace(rest), "%g", &v); err != nil {
		if strings.TrimSpace(rest) == "+Inf" {
			v = math.Inf(1)
		} else {
			return "", nil, 0, fmt.Errorf("bad value %q", rest)
		}
	}
	return name, labels, v, nil
}

// splitLabelBlock returns the {...} body and the remainder, respecting
// quoted label values (which may contain escaped quotes and braces).
func splitLabelBlock(s string) (string, string, error) {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return s[1:i], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block")
}

// parseLabels parses `k="v",k2="v2"`.
func parseLabels(body string) (map[string]string, error) {
	out := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return nil, fmt.Errorf("bad label pair in %q", body)
		}
		key := body[:eq]
		var sb strings.Builder
		i := eq + 2
		for ; i < len(body); i++ {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(body[i])
				}
				continue
			}
			if body[i] == '"' {
				break
			}
			sb.WriteByte(body[i])
		}
		if i >= len(body) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		out[key] = sb.String()
		body = body[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return out, nil
}

// bucket is one cumulative histogram bucket.
type bucket struct {
	le  float64
	cum float64
}

// quantileFromBuckets estimates quantile q as the upper bound of the
// bucket where the cumulative count crosses q*total — the same
// bucket-bound estimate the server's own snapshots use. A +Inf crossing
// reports the highest finite bound.
func quantileFromBuckets(buckets []bucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	target := math.Ceil(q * total)
	if target < 1 {
		target = 1
	}
	lastFinite := 0.0
	for _, b := range buckets {
		if !math.IsInf(b.le, 1) {
			lastFinite = b.le
		}
		if b.cum >= target {
			if math.IsInf(b.le, 1) {
				return lastFinite
			}
			return b.le
		}
	}
	return lastFinite
}

// joinProgress is the subset of the progress endpoint's wire shape the
// running-joins pane renders. mctop decodes it structurally (no import
// of internal/serve or internal/ssjoin) because it talks only to the
// public API, like any other client.
type joinProgress struct {
	Session string `json:"session"`
	State   string `json:"state"`
	Joining bool   `json:"joining"`
	Join    struct {
		ElapsedSeconds float64 `json:"elapsed_seconds"`
		ConfigsTotal   int64   `json:"configs_total"`
		ConfigsDone    int64   `json:"configs_done"`
		ProbesDone     int64   `json:"probes_done"`
		ProbesSkipped  int64   `json:"probes_skipped"`
		ProbesTotal    int64   `json:"probes_total"`
		PushCap        int64   `json:"prune_kill_push_cap"`
		LoopBreak      int64   `json:"prune_kill_loop_break"`
		FlushBound     int64   `json:"prune_kill_flush_bound"`
		Fraction       float64 `json:"fraction"`
		ETASeconds     float64 `json:"eta_seconds"`
		Done           bool    `json:"done"`
		Cancelled      bool    `json:"cancelled"`
		Skew           struct {
			Shards         int     `json:"shards"`
			ImbalanceRatio float64 `json:"imbalance_ratio"`
		} `json:"skew"`
	} `json:"join"`
}

// gatherJoins polls the progress endpoint for every session with a join
// request currently in flight (per the flight dump's in-flight table)
// and returns the live snapshots, session order. Endpoint errors drop
// the entry — the pane is best-effort decoration over the dump.
func gatherJoins(client *http.Client, base string, inflight []telemetry.FlightEvent) []joinProgress {
	seen := map[string]bool{}
	var out []joinProgress
	for _, ev := range inflight {
		if ev.Route != "join" || ev.Session == "" || seen[ev.Session] {
			continue
		}
		seen[ev.Session] = true
		resp, err := client.Get(base + "/v1/sessions/" + ev.Session + "/progress")
		if err != nil {
			continue
		}
		var jp joinProgress
		derr := json.NewDecoder(resp.Body).Decode(&jp)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		out = append(out, jp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}

// routeStat aggregates one route's request series across status codes.
type routeStat struct {
	route    string
	requests float64
	errors   float64 // status >= 400
	p50, p99 float64
}

// frame is one gathered dashboard state.
type frame struct {
	at       time.Time
	metrics  promText
	routes   []routeStat
	recent   []telemetry.FlightEvent // most recent slow/errored events, newest first
	inflight []telemetry.FlightEvent
	joins    []joinProgress // live snapshots of in-flight joins
	dump     *telemetry.FlightDump
}

// gauge returns the (first) sample value of an unlabeled series.
func (f *frame) gauge(name string) float64 {
	for _, s := range f.metrics[name] {
		if len(s.labels) == 0 {
			return s.value
		}
	}
	return 0
}

// counterSum sums a counter's samples, optionally filtered by label.
func (f *frame) counterSum(name string, filter func(map[string]string) bool) float64 {
	var sum float64
	for _, s := range f.metrics[name] {
		if filter == nil || filter(s.labels) {
			sum += s.value
		}
	}
	return sum
}

func gather(client *http.Client, base string, recentN int) (*frame, error) {
	mresp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", mresp.Status)
	}
	metrics, err := parseProm(mresp.Body)
	if err != nil {
		return nil, err
	}

	f := &frame{at: time.Now(), metrics: metrics}

	fresp, err := client.Get(base + "/debug/flightrecord")
	if err != nil {
		return nil, err
	}
	defer fresp.Body.Close()
	if fresp.StatusCode == http.StatusOK {
		if d, derr := telemetry.ReadFlightDump(fresp.Body); derr == nil {
			f.dump = d
			f.inflight = d.Inflight
			for i := len(d.Events) - 1; i >= 0 && len(f.recent) < recentN; i-- {
				ev := d.Events[i]
				if ev.Kind == "request" && (ev.Slow || ev.Status >= 400) {
					f.recent = append(f.recent, ev)
				}
			}
		}
	}

	f.joins = gatherJoins(client, base, f.inflight)
	f.routes = routeStats(metrics)
	return f, nil
}

// routeStats builds per-route request counts and latency quantiles from
// the mc_serve_requests_total and mc_serve_request_seconds series,
// aggregating across status codes.
func routeStats(metrics promText) []routeStat {
	byRoute := map[string]*routeStat{}
	get := func(route string) *routeStat {
		st, ok := byRoute[route]
		if !ok {
			st = &routeStat{route: route}
			byRoute[route] = st
		}
		return st
	}
	for _, s := range metrics["mc_serve_requests_total"] {
		st := get(s.labels["route"])
		st.requests += s.value
		if c := s.labels["code"]; len(c) > 0 && c[0] >= '4' {
			st.errors += s.value
		}
	}
	// Merge buckets across code labels per route.
	routeBuckets := map[string]map[float64]float64{}
	for _, s := range metrics["mc_serve_request_seconds_bucket"] {
		route := s.labels["route"]
		le := math.Inf(1)
		if s.labels["le"] != "+Inf" {
			if _, err := fmt.Sscanf(s.labels["le"], "%g", &le); err != nil {
				continue
			}
		}
		if routeBuckets[route] == nil {
			routeBuckets[route] = map[float64]float64{}
		}
		routeBuckets[route][le] += s.value
	}
	for route, bm := range routeBuckets {
		les := make([]float64, 0, len(bm))
		for le := range bm {
			les = append(les, le)
		}
		sort.Float64s(les)
		buckets := make([]bucket, 0, len(les))
		for _, le := range les {
			buckets = append(buckets, bucket{le: le, cum: bm[le]})
		}
		st := get(route)
		st.p50 = quantileFromBuckets(buckets, 0.50)
		st.p99 = quantileFromBuckets(buckets, 0.99)
	}
	routes := make([]string, 0, len(byRoute))
	for route := range byRoute {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	out := make([]routeStat, 0, len(routes))
	for _, route := range routes {
		out = append(out, *byRoute[route])
	}
	return out
}

func fmtDur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	}
	return fmt.Sprintf("%.0fB", v)
}

// render writes one dashboard frame. prev, when non-nil, supplies the
// previous poll's counters so rates render as deltas per second.
func (f *frame) render(w io.Writer, prev *frame) {
	fmt.Fprintf(w, "mcserve @ %s\n\n", f.at.Format(time.TimeOnly))

	rate := func(name string) string {
		cur := f.counterSum(name, nil)
		if prev == nil {
			return fmt.Sprintf("%.0f total", cur)
		}
		dt := f.at.Sub(prev.at).Seconds()
		if dt <= 0 {
			return fmt.Sprintf("%.0f total", cur)
		}
		return fmt.Sprintf("%.1f/s", (cur-prev.counterSum(name, nil))/dt)
	}

	fmt.Fprintf(w, "sessions  live %.0f  created %s  evicted %s  429 %s  413 %s\n",
		f.gauge("mc_serve_sessions_live"),
		rate("mc_serve_sessions_created_total"),
		rate("mc_serve_sessions_evicted_total"),
		rate("mc_serve_admission_rejected_total"),
		rate("mc_serve_budget_rejected_total"))
	fmt.Fprintf(w, "runtime   goroutines %.0f  heap %s  gc_p99 %s  sched_p99 %s\n\n",
		f.gauge("mc_runtime_goroutines"),
		fmtBytes(f.gauge("mc_runtime_heap_live_bytes")),
		fmtDur(f.gauge("mc_runtime_gc_pause_p99_seconds")),
		fmtDur(f.gauge("mc_runtime_sched_latency_p99_seconds")))

	fmt.Fprintf(w, "%-16s %10s %8s %12s %12s\n", "route", "requests", "errors", "p50", "p99")
	for _, st := range f.routes {
		fmt.Fprintf(w, "%-16s %10.0f %8.0f %12s %12s\n",
			st.route, st.requests, st.errors, fmtDur(st.p50), fmtDur(st.p99))
	}

	if len(f.inflight) > 0 {
		fmt.Fprintf(w, "\nin flight (%d):\n", len(f.inflight))
		for _, ev := range f.inflight {
			fmt.Fprintf(w, "  %-16s %-8s session=%s\n", ev.Route, ev.Method, ev.Session)
		}
	}
	if len(f.joins) > 0 {
		fmt.Fprintf(w, "\nrunning joins (%d):\n", len(f.joins))
		for _, jp := range f.joins {
			j := jp.Join
			line := fmt.Sprintf("  %-8s %5.1f%%  configs %d/%d  probes %.2g/%.2g  pruned %.2g",
				jp.Session, j.Fraction*100, j.ConfigsDone, j.ConfigsTotal,
				float64(j.ProbesDone+j.ProbesSkipped), float64(j.ProbesTotal),
				float64(j.PushCap+j.LoopBreak+j.FlushBound))
			if j.Skew.Shards > 1 {
				line += fmt.Sprintf("  shards %d imb %.2f", j.Skew.Shards, j.Skew.ImbalanceRatio)
			}
			if !j.Done && j.ETASeconds >= 0 {
				line += fmt.Sprintf("  eta %s", fmtDur(j.ETASeconds))
			}
			fmt.Fprintln(w, line)
		}
	}
	if len(f.recent) > 0 {
		fmt.Fprintf(w, "\nrecent slow/errored requests:\n")
		for _, ev := range f.recent {
			mark := ""
			if ev.Slow {
				mark = " SLOW"
			}
			line := fmt.Sprintf("  %s %-16s %3d  %10s%s",
				time.Unix(0, ev.Time).Format(time.TimeOnly), ev.Route, ev.Status,
				time.Duration(ev.DurMicros)*time.Microsecond, mark)
			if ev.Session != "" {
				line += "  session=" + ev.Session
			}
			if ev.Err != "" {
				line += "  error=" + ev.Err
			}
			fmt.Fprintln(w, line)
		}
	}
	if f.dump != nil && f.dump.Dropped > 0 {
		fmt.Fprintf(w, "\n(flight ring dropped %d older events)\n", f.dump.Dropped)
	}
}
