package main

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"matchcatcher/internal/serve"
	"matchcatcher/internal/telemetry"
)

func TestParseProm(t *testing.T) {
	const text = `# HELP mc_serve_requests_total HTTP requests served.
# TYPE mc_serve_requests_total counter
mc_serve_requests_total{code="200",route="join"} 3
mc_serve_requests_total{code="404",route="session_get"} 1
# TYPE mc_serve_sessions_live gauge
mc_serve_sessions_live 2
# TYPE mc_serve_request_seconds histogram
mc_serve_request_seconds_bucket{code="200",route="join",le="0.001"} 2
mc_serve_request_seconds_bucket{code="200",route="join",le="+Inf"} 3
mc_serve_request_seconds_sum{code="200",route="join"} 0.5
mc_serve_request_seconds_count{code="200",route="join"} 3
mc_y_queue_depth{path="a\"b\\c\nd"} 4
`
	m, err := parseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(m["mc_serve_requests_total"]) != 2 {
		t.Errorf("requests_total samples = %d, want 2", len(m["mc_serve_requests_total"]))
	}
	if got := m["mc_serve_sessions_live"][0].value; got != 2 {
		t.Errorf("sessions_live = %v", got)
	}
	var sawInf bool
	for _, s := range m["mc_serve_request_seconds_bucket"] {
		if s.labels["le"] == "+Inf" {
			sawInf = true
		}
	}
	if !sawInf {
		t.Error("+Inf bucket lost")
	}
	// Escaped label values round-trip.
	if got := m["mc_y_queue_depth"][0].labels["path"]; got != "a\"b\\c\nd" {
		t.Errorf("escaped label = %q", got)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	buckets := []bucket{
		{le: 0.001, cum: 50},
		{le: 0.01, cum: 90},
		{le: 0.1, cum: 99},
		{le: math.Inf(1), cum: 100},
	}
	if got := quantileFromBuckets(buckets, 0.50); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := quantileFromBuckets(buckets, 0.99); got != 0.1 {
		t.Errorf("p99 = %v, want 0.1", got)
	}
	// The +Inf crossing reports the highest finite bound.
	if got := quantileFromBuckets(buckets, 1.0); got != 0.1 {
		t.Errorf("p100 = %v, want 0.1", got)
	}
	if got := quantileFromBuckets(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestRouteStatsAggregatesCodes(t *testing.T) {
	m := promText{
		"mc_serve_requests_total": {
			{labels: map[string]string{"route": "join", "code": "200"}, value: 3},
			{labels: map[string]string{"route": "join", "code": "409"}, value: 2},
		},
		"mc_serve_request_seconds_bucket": {
			{labels: map[string]string{"route": "join", "code": "200", "le": "0.001"}, value: 3},
			{labels: map[string]string{"route": "join", "code": "200", "le": "+Inf"}, value: 3},
			{labels: map[string]string{"route": "join", "code": "409", "le": "0.001"}, value: 1},
			{labels: map[string]string{"route": "join", "code": "409", "le": "+Inf"}, value: 2},
		},
	}
	stats := routeStats(m)
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	st := stats[0]
	if st.route != "join" || st.requests != 5 || st.errors != 2 {
		t.Errorf("aggregate = %+v", st)
	}
	if st.p50 != 0.001 {
		t.Errorf("merged p50 = %v", st.p50)
	}
}

// TestOnceAgainstLiveServer drives mctop -once against a real serve
// instance: the end-to-end check that the dashboard can parse what the
// server actually emits.
func TestOnceAgainstLiveServer(t *testing.T) {
	s := serve.New(serve.Options{
		Metrics:     telemetry.New(),
		SlowRequest: time.Nanosecond, // every request trips the watchdog
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Create a session and provoke a 404 so every dashboard section has
	// content.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var out bytes.Buffer
	if rc := mainE(&out, []string{"-once", "-addr", ts.URL}); rc != 0 {
		t.Fatalf("mctop -once rc = %d\n%s", rc, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"sessions  live 1",
		"sessions_create",
		"runtime",
		"p99",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("frame lacks %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "recent slow/errored requests") {
		t.Errorf("frame lacks the recent-events section:\n%s", text)
	}
	if !strings.Contains(text, "error=") {
		t.Errorf("frame lacks the 404's error message:\n%s", text)
	}
}

// TestRunningJoinsPane feeds gatherJoins a fake in-flight table and a
// stub progress endpoint, and checks the pane renders one line per
// distinct joining session.
func TestRunningJoinsPane(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sessions/s000001/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{
			"session": "s000001", "state": "blocked", "joining": true,
			"join": {
				"elapsed_seconds": 1.5, "configs_total": 7, "configs_done": 3,
				"probes_done": 600, "probes_skipped": 150, "probes_total": 1500,
				"prune_kill_push_cap": 40, "prune_kill_loop_break": 9, "prune_kill_flush_bound": 3,
				"fraction": 0.5, "eta_seconds": 1.5, "done": false, "cancelled": false,
				"skew": {"shards": 4, "work_min": 100, "work_max": 250, "work_p50": 160, "imbalance_ratio": 1.67}
			}
		}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	inflight := []telemetry.FlightEvent{
		{Route: "join", Session: "s000001"},
		{Route: "join", Session: "s000001"}, // duplicate folds away
		{Route: "next", Session: "s000002"}, // not a join
		{Route: "join", Session: "s000404"}, // endpoint errors drop the entry
	}
	joins := gatherJoins(http.DefaultClient, ts.URL, inflight)
	if len(joins) != 1 || joins[0].Session != "s000001" {
		t.Fatalf("gatherJoins = %+v", joins)
	}
	if j := joins[0].Join; j.Fraction != 0.5 || j.Skew.Shards != 4 || j.PushCap != 40 {
		t.Errorf("decoded join = %+v", j)
	}

	var out bytes.Buffer
	f := &frame{at: time.Now(), joins: joins}
	f.render(&out, nil)
	text := out.String()
	for _, want := range []string{"running joins (1)", "s000001", "50.0%", "configs 3/7", "shards 4 imb 1.67", "eta"} {
		if !strings.Contains(text, want) {
			t.Errorf("pane lacks %q:\n%s", want, text)
		}
	}
}

func TestOnceAgainstDeadServer(t *testing.T) {
	var out bytes.Buffer
	if rc := mainE(&out, []string{"-once", "-addr", "http://127.0.0.1:1"}); rc != 1 {
		t.Errorf("dead server rc = %d, want 1", rc)
	}
}
