// Command mclint runs MatchCatcher's custom static-analysis suite
// (internal/lint) over the given package patterns. It is the CI gate
// for the repo's determinism, telemetry, and concurrency invariants.
//
// Usage:
//
//	mclint [flags] [packages]
//
//	mclint ./...
//	mclint -summary ./internal/... ./cmd/...
//	mclint -only mapiter,floatcmp ./internal/ssjoin
//	mclint -escapes ./...   (compile with -gcflags=-m so hotalloc sees heap escapes)
//
// Exit status: 0 when no active diagnostics were found, 1 when at
// least one diagnostic was reported, 2 on usage or load errors.
//
// Findings can be silenced at a call site with
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line directly above. Suppressions are
// never silent: `-summary` counts and lists them, and unused
// suppressions are themselves diagnostics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"matchcatcher/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

type options struct {
	summary  bool
	jsonOut  bool
	only     string
	listOnly bool
	escapes  bool
}

func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.BoolVar(&o.summary, "summary", false, "print per-analyzer totals, including suppressed findings")
	fs.BoolVar(&o.jsonOut, "json", false, "emit findings as JSON")
	fs.StringVar(&o.only, "only", "", "comma-separated analyzer names to run (default: all)")
	fs.BoolVar(&o.listOnly, "list", false, "list available analyzers and exit")
	fs.BoolVar(&o.escapes, "escapes", false, "compile with -gcflags=-m and feed escape diagnostics to hotalloc")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mclint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if o.listOnly {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if o.only != "" {
		var sel []*lint.Analyzer
		for _, name := range strings.Split(o.only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "mclint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mclint: %v\n", err)
		return 2
	}
	if o.escapes {
		diags, err := lint.LoadEscapes(dir, patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "mclint: %v\n", err)
			return 2
		}
		lint.AttachEscapes(pkgs, diags)
	}
	res, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "mclint: %v\n", err)
		return 2
	}

	active := res.Active()
	suppressed := res.Suppressed()

	if o.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		type jsonFinding struct {
			Analyzer   string `json:"analyzer"`
			File       string `json:"file"`
			Line       int    `json:"line"`
			Column     int    `json:"column"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed,omitempty"`
			Reason     string `json:"reason,omitempty"`
		}
		out := make([]jsonFinding, 0, len(res.Findings))
		for _, f := range res.Findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer, File: f.Pos.Filename, Line: f.Pos.Line,
				Column: f.Pos.Column, Message: f.Message,
				Suppressed: f.Suppressed, Reason: f.Reason,
			})
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mclint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range active {
			fmt.Fprintf(stdout, "%s\n", f)
		}
	}

	if o.summary {
		act, sup := res.CountByAnalyzer(analyzers)
		names := make([]string, 0, len(act))
		for name := range act {
			names = append(names, name)
		}
		for name := range sup {
			if _, ok := act[name]; !ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "mclint: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), len(active), len(suppressed))
		for _, name := range names {
			if name == "lint" && act[name] == 0 && sup[name] == 0 {
				continue
			}
			fmt.Fprintf(stdout, "  %-12s %d finding(s), %d suppressed\n", name, act[name], sup[name])
		}
		for _, f := range suppressed {
			fmt.Fprintf(stdout, "  suppressed: %s: %s: %s (%s)\n", f.Pos, f.Analyzer, f.Message, f.Reason)
		}
	}

	if len(active) > 0 {
		return 1
	}
	return 0
}
