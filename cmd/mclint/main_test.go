package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The end-to-end fixture: testdata/fixturemod is a real module (with a
// replace directive back to this repo, so it can import the real
// telemetry package) holding one seeded violation per analyzer in
// ./dirty and only approved idioms in ./clean. Because it lives under
// testdata/ the go tool never builds it as part of ./..., so the
// violations cannot leak into the repo's own lint gate.
const fixtureDir = "testdata/fixturemod"

func runMclint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, fixtureDir, &out, &errb)
	return code, out.String(), errb.String()
}

// TestDirtyModuleFiresEveryAnalyzer asserts exit code 1 and one
// diagnostic per analyzer, each with its distinctive message, at the
// expected file.
func TestDirtyModuleFiresEveryAnalyzer(t *testing.T) {
	code, out, errb := runMclint(t, "-summary", "./dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{
		"mapiter: output written inside a map range",
		"seededrand: rand.Intn uses the process-global math/rand state",
		`metricname: metric name "mc_clean_items_total" claims package segment "clean" but is registered from package "dirty"`,
		`spanend: span "s" from Tracer.Start is never ended in this function`,
		"floatcmp: exact == between computed floats",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q\ngot:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "dirty.go:"); n != 6 {
		// 5 active + 1 suppressed (listed by -summary).
		t.Errorf("found %d dirty.go diagnostics, want 6 (5 active + 1 suppressed)\n%s", n, out)
	}
	if !strings.Contains(out, "5 finding(s), 1 suppressed") {
		t.Errorf("summary totals missing from:\n%s", out)
	}
	if !strings.Contains(out, "end-to-end suppression accounting") {
		t.Errorf("-summary must list the suppression reason; got:\n%s", out)
	}
}

// TestCleanModuleExitsZero asserts the approved idioms produce no
// findings.
func TestCleanModuleExitsZero(t *testing.T) {
	code, out, errb := runMclint(t, "./clean")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean run printed findings:\n%s", out)
	}
}

// TestOnlyRestrictsAnalyzers runs a single analyzer over the dirty
// package and expects only its finding.
func TestOnlyRestrictsAnalyzers(t *testing.T) {
	code, out, _ := runMclint(t, "-only", "seededrand", "./dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "seededrand:") {
		t.Errorf("missing seededrand finding:\n%s", out)
	}
	for _, other := range []string{"mapiter:", "metricname:", "spanend:", "floatcmp:"} {
		if strings.Contains(out, other) {
			t.Errorf("-only seededrand leaked %s finding:\n%s", other, out)
		}
	}
}

// TestJSONOutput checks the machine-readable form round-trips and
// carries the suppression flag.
func TestJSONOutput(t *testing.T) {
	code, out, _ := runMclint(t, "-json", "./dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	var findings []struct {
		Analyzer   string `json:"analyzer"`
		File       string `json:"file"`
		Line       int    `json:"line"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(findings) != 6 {
		t.Fatalf("JSON findings = %d, want 6 (5 active + 1 suppressed)", len(findings))
	}
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		}
		if f.Line == 0 || f.File == "" {
			t.Errorf("finding missing position: %+v", f)
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings in JSON = %d, want 1", suppressed)
	}
}

// TestListAnalyzers asserts -list names the full suite and exits 0.
func TestListAnalyzers(t *testing.T) {
	code, out, _ := runMclint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	for _, name := range []string{"floatcmp", "mapiter", "metricname", "seededrand", "spanend"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, out)
		}
	}
}

// TestUsageErrorsExitTwo covers bad flags and unknown analyzers.
func TestUsageErrorsExitTwo(t *testing.T) {
	if code, _, _ := runMclint(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	if code, _, errb := runMclint(t, "-only", "nosuch", "./dirty"); code != 2 || !strings.Contains(errb, "unknown analyzer") {
		t.Errorf("unknown analyzer: exit code = %d, stderr = %q; want 2 + mention", code, errb)
	}
	if code, _, errb := runMclint(t, "./does/not/exist"); code != 2 {
		t.Errorf("bad pattern: exit code = %d, want 2 (stderr %q)", code, errb)
	}
}
