package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The end-to-end fixture: testdata/fixturemod is a real module (with a
// replace directive back to this repo, so it can import the real
// telemetry package) holding one seeded violation per analyzer in
// ./dirty and only approved idioms in ./clean. Because it lives under
// testdata/ the go tool never builds it as part of ./..., so the
// violations cannot leak into the repo's own lint gate.
const fixtureDir = "testdata/fixturemod"

func runMclint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, fixtureDir, &out, &errb)
	return code, out.String(), errb.String()
}

// TestDirtyModuleFiresEveryAnalyzer asserts exit code 1 and one
// diagnostic per analyzer, each with its distinctive message, at the
// expected file.
func TestDirtyModuleFiresEveryAnalyzer(t *testing.T) {
	code, out, errb := runMclint(t, "-summary", "./dirty", "./serve")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{
		"mapiter: output written inside a map range",
		"seededrand: rand.Intn uses the process-global math/rand state",
		`metricname: metric name "mc_clean_items_total" claims package segment "clean" but is registered from package "dirty"`,
		`spanend: span "s" from Tracer.Start is never ended in this function`,
		"floatcmp: exact == between computed floats",
		"lockorder: acquiring srv.mu (lock rank 1) while holding sess.mu (rank 2) inverts the lock hierarchy",
		"statemachine: phase field written outside a //mc:statetransition function",
		"atomicmix: plain access to matchcatcher/fixturemod/dirty.counters.hits",
		"hotalloc: map iteration in hot path sumHot",
		"ctxflow: context.Background() in the serve layer severs request cancellation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q\ngot:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "dirty.go:"); n != 11 {
		// 9 active + 1 suppressed (listed by -summary) + the atomic-site
		// position embedded in the atomicmix message.
		t.Errorf("found %d dirty.go mentions, want 11 (9 active + 1 suppressed + 1 embedded site)\n%s", n, out)
	}
	if n := strings.Count(out, "serve.go:"); n != 1 {
		t.Errorf("found %d serve.go diagnostics, want 1 (the ctxflow seed)\n%s", n, out)
	}
	if !strings.Contains(out, "10 finding(s), 1 suppressed") {
		t.Errorf("summary totals missing from:\n%s", out)
	}
	if !strings.Contains(out, "end-to-end suppression accounting") {
		t.Errorf("-summary must list the suppression reason; got:\n%s", out)
	}
}

// TestCleanModuleExitsZero asserts the approved idioms produce no
// findings, even with compiler escape data feeding hotalloc.
func TestCleanModuleExitsZero(t *testing.T) {
	code, out, errb := runMclint(t, "-escapes", "./clean")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean run printed findings:\n%s", out)
	}
}

// TestOnlyRestrictsAnalyzers runs a single analyzer over the dirty
// package and expects only its finding.
func TestOnlyRestrictsAnalyzers(t *testing.T) {
	code, out, _ := runMclint(t, "-only", "seededrand", "./dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "seededrand:") {
		t.Errorf("missing seededrand finding:\n%s", out)
	}
	for _, other := range []string{"mapiter:", "metricname:", "spanend:", "floatcmp:", "lockorder:", "ctxflow:", "statemachine:", "atomicmix:", "hotalloc:"} {
		if strings.Contains(out, other) {
			t.Errorf("-only seededrand leaked %s finding:\n%s", other, out)
		}
	}
}

// TestOnlyAcceptsAnalyzerList runs a comma-separated analyzer pair over
// both fixture packages and expects exactly their findings.
func TestOnlyAcceptsAnalyzerList(t *testing.T) {
	code, out, _ := runMclint(t, "-only", "lockorder,ctxflow", "./dirty", "./serve")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"lockorder:", "ctxflow:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s finding:\n%s", want, out)
		}
	}
	for _, other := range []string{"mapiter:", "seededrand:", "metricname:", "spanend:", "statemachine:", "atomicmix:", "hotalloc:"} {
		if strings.Contains(out, other) {
			t.Errorf("-only lockorder,ctxflow leaked %s finding:\n%s", other, out)
		}
	}
}

// TestEscapesFeedsHotalloc proves the -escapes flag changes hotalloc's
// verdict: the seeded pointer-escape is invisible to the syntactic
// checks and appears only when compiler escape data is loaded.
func TestEscapesFeedsHotalloc(t *testing.T) {
	code, out, _ := runMclint(t, "-only", "hotalloc", "./dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if strings.Contains(out, "moved to heap") {
		t.Errorf("escape finding reported without -escapes:\n%s", out)
	}
	// The dirty fixture's floatcmp suppression must not be called stale
	// here: floatcmp did not run, so the directive is unverifiable.
	if strings.Contains(out, "unused //lint:allow") {
		t.Errorf("-only run flagged a directive for an analyzer that did not run:\n%s", out)
	}
	code, out, _ = runMclint(t, "-escapes", "-only", "hotalloc", "./dirty")
	if code != 1 {
		t.Fatalf("-escapes exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "hot path escapes allocates: moved to heap: x") {
		t.Errorf("-escapes missing the compiler escape finding:\n%s", out)
	}
}

// TestJSONOutput checks the machine-readable form round-trips and
// carries the suppression flag.
func TestJSONOutput(t *testing.T) {
	code, out, _ := runMclint(t, "-json", "./dirty", "./serve")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	var findings []struct {
		Analyzer   string `json:"analyzer"`
		File       string `json:"file"`
		Line       int    `json:"line"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(findings) != 11 {
		t.Fatalf("JSON findings = %d, want 11 (10 active + 1 suppressed)", len(findings))
	}
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		}
		if f.Line == 0 || f.File == "" {
			t.Errorf("finding missing position: %+v", f)
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings in JSON = %d, want 1", suppressed)
	}
}

// TestListAnalyzers asserts -list names the full suite and exits 0.
func TestListAnalyzers(t *testing.T) {
	code, out, _ := runMclint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	for _, name := range []string{
		"atomicmix", "ctxflow", "floatcmp", "hotalloc", "lockorder",
		"mapiter", "metricname", "seededrand", "spanend", "statemachine",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, out)
		}
	}
}

// TestUsageErrorsExitTwo covers bad flags and unknown analyzers.
func TestUsageErrorsExitTwo(t *testing.T) {
	if code, _, _ := runMclint(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	if code, _, errb := runMclint(t, "-only", "nosuch", "./dirty"); code != 2 || !strings.Contains(errb, "unknown analyzer") {
		t.Errorf("unknown analyzer: exit code = %d, stderr = %q; want 2 + mention", code, errb)
	}
	if code, _, errb := runMclint(t, "./does/not/exist"); code != 2 {
		t.Errorf("bad pattern: exit code = %d, want 2 (stderr %q)", code, errb)
	}
}
