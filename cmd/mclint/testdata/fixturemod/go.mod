module matchcatcher/fixturemod

go 1.22

require matchcatcher v0.0.0

replace matchcatcher => ../../../..
