// Package dirty seeds exactly one violation per mclint analyzer, so
// the end-to-end test can assert that every analyzer fires through the
// real binary path: go list loading, export-data type-checking,
// suppression resolution, exit codes, and -summary output.
package dirty

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"matchcatcher/internal/telemetry"
)

// mapiter: output order follows randomized map order.
func dumpAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// seededrand: process-global generator state.
func pick(n int) int {
	return rand.Intn(n)
}

// metricname: wrong package segment (registered from "dirty").
func register(r *telemetry.Registry) *telemetry.Counter {
	return r.Counter("mc_clean_items_total")
}

// spanend: span minted and leaked.
func leak(tr *telemetry.Tracer) {
	s := tr.Start("leaky")
	s.Event("begin")
}

// floatcmp: exact equality between computed scores.
func tie(a, b float64) bool {
	return a == b
}

// suppressed: one silenced finding so -summary accounting is exercised
// end to end as well.
func allowedTie(a, b float64) bool {
	return a == b //lint:allow floatcmp fixture exercises end-to-end suppression accounting
}

// lockorder: rank 2 acquired first, then rank 1 — inverted.
type gadgetServer struct {
	mu sync.Mutex //mc:lockrank 1
}

type gadgetSession struct {
	mu sync.Mutex //mc:lockrank 2
}

func invert(srv *gadgetServer, sess *gadgetSession) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	srv.mu.Lock()
	defer srv.mu.Unlock()
}

// statemachine: the lifecycle field is poked outside the transition
// function.
//
//mc:statemachine
type phase int

const (
	phaseIdle phase = iota
	phaseRun
)

type job struct{ st phase }

//mc:statetransition
func (j *job) advance(to phase) { j.st = to }

func poke(j *job) {
	j.st = phaseRun
}

// atomicmix: hits is bumped atomically and peeked plainly.
type counters struct{ hits int64 }

func (c *counters) bump() { atomic.AddInt64(&c.hits, 1) }

func (c *counters) peek() int64 { return c.hits }

// hotalloc: map iteration on an annotated hot path (the syntactic
// check; the escape layer is exercised with -escapes).
//
//mc:hotpath
func sumHot(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// hotalloc (escape layer): returning the address moves x to the heap.
// The syntactic checks cannot see this; it surfaces only when mclint
// runs with -escapes and feeds compiler diagnostics to hotalloc.
//
//mc:hotpath
func escapes() *int {
	x := 42
	return &x
}
