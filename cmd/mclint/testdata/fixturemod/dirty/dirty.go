// Package dirty seeds exactly one violation per mclint analyzer, so
// the end-to-end test can assert that every analyzer fires through the
// real binary path: go list loading, export-data type-checking,
// suppression resolution, exit codes, and -summary output.
package dirty

import (
	"fmt"
	"math/rand"

	"matchcatcher/internal/telemetry"
)

// mapiter: output order follows randomized map order.
func dumpAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// seededrand: process-global generator state.
func pick(n int) int {
	return rand.Intn(n)
}

// metricname: wrong package segment (registered from "dirty").
func register(r *telemetry.Registry) *telemetry.Counter {
	return r.Counter("mc_clean_items_total")
}

// spanend: span minted and leaked.
func leak(tr *telemetry.Tracer) {
	s := tr.Start("leaky")
	s.Event("begin")
}

// floatcmp: exact equality between computed scores.
func tie(a, b float64) bool {
	return a == b
}

// suppressed: one silenced finding so -summary accounting is exercised
// end to end as well.
func allowedTie(a, b float64) bool {
	return a == b //lint:allow floatcmp fixture exercises end-to-end suppression accounting
}
