// Package clean holds only approved idioms; mclint must exit 0 when
// pointed at it.
package clean

import (
	"math/rand"
	"sort"

	"matchcatcher/internal/floats"
	"matchcatcher/internal/telemetry"
)

// SortedKeys is the approved map-iteration idiom.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Shuffled threads an explicitly seeded generator.
func Shuffled(xs []int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Register follows the mc_<pkg>_<name> convention.
func Register(r *telemetry.Registry) *telemetry.Counter {
	return r.Counter("mc_clean_items_total")
}

// Traced follows the defer-End discipline.
func Traced(tr *telemetry.Tracer) {
	s := tr.Start("work")
	defer s.End()
	s.Event("begin")
}

// Close compares through the approved helpers.
func Close(a, b float64) bool {
	return floats.EqualWithin(a, b, 1e-9)
}
