// Package clean holds only approved idioms; mclint must exit 0 when
// pointed at it.
package clean

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"matchcatcher/internal/floats"
	"matchcatcher/internal/telemetry"
)

// SortedKeys is the approved map-iteration idiom.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Shuffled threads an explicitly seeded generator.
func Shuffled(xs []int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Register follows the mc_<pkg>_<name> convention.
func Register(r *telemetry.Registry) *telemetry.Counter {
	return r.Counter("mc_clean_items_total")
}

// Traced follows the defer-End discipline.
func Traced(tr *telemetry.Tracer) {
	s := tr.Start("work")
	defer s.End()
	s.Event("begin")
}

// Close compares through the approved helpers.
func Close(a, b float64) bool {
	return floats.EqualWithin(a, b, 1e-9)
}

// Ordered acquires the //mc:lockrank hierarchy in rank order and
// releases on every path.
type cleanServer struct {
	mu sync.Mutex //mc:lockrank 1
}

type cleanSession struct {
	mu sync.Mutex //mc:lockrank 2
}

func Ordered(srv *cleanServer, sess *cleanSession) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	sess.mu.Lock()
	defer sess.mu.Unlock()
}

// Lifecycle state advances only through the transition function, and
// switches over it are exhaustive.
//
//mc:statemachine
type mode int

const (
	modeIdle mode = iota
	modeRun
)

type task struct{ st mode }

//mc:statetransition
func (t *task) Advance(to mode) { t.st = to }

// Describe covers every mode constant.
func Describe(m mode) string {
	switch m {
	case modeIdle:
		return "idle"
	case modeRun:
		return "run"
	}
	return ""
}

// Tally keeps every access to its counter atomic.
type tally struct{ n int64 }

func (t *tally) Bump() { atomic.AddInt64(&t.n, 1) }

func (t *tally) Read() int64 { return atomic.LoadInt64(&t.n) }

// SumSlice is the allocation-free hot-path shape: slice iteration, no
// closures, no boxing.
//
//mc:hotpath
func SumSlice(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// WithCtx threads the incoming context into the Options literal.
type runOptions struct {
	Ctx  context.Context
	Name string
}

func start(o runOptions) {}

func WithCtx(ctx context.Context) {
	start(runOptions{Ctx: ctx, Name: "clean"})
}
