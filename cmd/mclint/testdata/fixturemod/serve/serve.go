// Package serve seeds the ctxflow analyzer's serve-layer violation: the
// import path ends in /serve, where fresh root contexts are banned.
package serve

import "context"

// Detach manufactures a root context instead of threading one.
func Detach() context.Context {
	return context.Background()
}
