// Command mcserve hosts MatchCatcher debugging sessions as a long-lived
// HTTP/JSON service — the multi-tenant counterpart to mcdebug's one-shot
// CLI loop. A scripted session walks the same pipeline the CLI walks
// (upload tables, set a blocker, run the joint top-k joins, page and
// label candidates, fetch the report) and, for the same seed and
// options, produces a byte-identical canonical report.
//
//	mcserve -addr :8642
//
//	curl -s -XPOST localhost:8642/v1/sessions -d '{"seed":1,"k":100,"n":3}'
//	curl -s -XPUT  --data-binary @A.csv 'localhost:8642/v1/sessions/s000001/tables/a?name=A'
//	curl -s -XPUT  --data-binary @B.csv 'localhost:8642/v1/sessions/s000001/tables/b?name=B'
//	curl -s -XPOST localhost:8642/v1/sessions/s000001/blocker -d '{"attr_equals":["City"]}'
//	curl -s -XPOST localhost:8642/v1/sessions/s000001/join
//	curl -s       localhost:8642/v1/sessions/s000001/progress   # live join progress (SSE with Accept: text/event-stream)
//	curl -s -XPOST localhost:8642/v1/sessions/s000001/next
//	curl -s -XPOST localhost:8642/v1/sessions/s000001/labels -d '{"labels":[true,false,false]}'
//	curl -s       'localhost:8642/v1/sessions/s000001/report'
//
// Operations: /healthz (liveness), /readyz (flips to 503 when draining),
// /metrics (Prometheus exposition of the server's mc_serve_* series),
// /debug/flightrecord (JSON dump of the flight ring: the most recent
// wide events — one per request and session transition — plus every
// request still in flight). SIGQUIT dumps the flight record to
// -flight-dump without stopping the server. SIGINT/SIGTERM triggers a
// graceful shutdown: the flight record is dumped as the drain begins
// (and again once it completes), new sessions are refused, in-flight
// requests — running joins included — drain within -drain-timeout,
// surviving sessions are finished and (with -ledger) appended to the
// runlog ledger.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"matchcatcher/internal/serve"
	"matchcatcher/internal/telemetry"
)

func main() {
	os.Exit(mainE())
}

func mainE() int {
	addr := flag.String("addr", ":8642", "listen address")
	maxSessions := flag.Int("max-sessions", 16, "bound on live sessions; at the bound, creates evict the LRU idle session or get 429")
	memBudgetMB := flag.Int64("session-mem-mb", 64, "per-session table upload budget in MiB; uploads beyond it get 413")
	idleTimeout := flag.Duration("idle-timeout", 15*time.Minute, "evict sessions idle this long (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 60*time.Second, "per-request deadline; cancels in-flight joins")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for draining in-flight requests")
	ledgerPath := flag.String("ledger", "", "append one runlog record per completed session to this JSONL ledger")
	flightCap := flag.Int("flight-cap", 0, "flight-recorder ring capacity in events (0 selects the default, negative disables)")
	flightDump := flag.String("flight-dump", "mcserve-flightrecord.json", "path for automatic flight-record dumps (SIGQUIT and shutdown drain; empty disables)")
	slowRequest := flag.Duration("slow-request", time.Second, "watchdog threshold: slower requests enter the flight ring with their span tree (negative disables)")
	progressInterval := flag.Duration("progress-interval", 250*time.Millisecond, "frame cadence of the SSE join-progress stream (GET /v1/sessions/{id}/progress with Accept: text/event-stream)")
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := telemetry.NewLogger(os.Stderr, level)

	srv := serve.New(serve.Options{
		MaxSessions:       *maxSessions,
		SessionMemBudget:  *memBudgetMB << 20,
		IdleTimeout:       *idleTimeout,
		RequestTimeout:    *requestTimeout,
		LedgerPath:        *ledgerPath,
		Logger:            log,
		FlightRecorderCap: *flightCap,
		SlowRequest:       *slowRequest,
		FlightDumpPath:    *flightDump,
		ProgressInterval:  *progressInterval,
	})

	// SIGQUIT: dump the flight record and keep serving — the live
	// counterpart of reading /debug/flightrecord, for when the HTTP
	// surface is the thing misbehaving.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			if err := srv.DumpFlightRecord("sigquit"); err != nil {
				log.Error("flight dump failed", "err", err)
			} else {
				log.Info("flight record dumped", "path", *flightDump, "reason", "sigquit")
			}
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Info("mcserve up",
		"url", fmt.Sprintf("http://%s", ln.Addr()),
		"max_sessions", *maxSessions, "session_mem_mb", *memBudgetMB)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Info("shutdown signal received; draining")
	case err := <-errc:
		log.Error("server failed", "err", err)
		srv.Close()
		return 1
	}

	// Graceful shutdown: stop admitting (readyz -> 503), drain in-flight
	// requests — a running join is cancelled only if the drain budget
	// expires — then finish surviving sessions and flush the ledger.
	srv.BeginShutdown()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("drain incomplete; closing", "err", err)
		httpSrv.Close()
	}
	srv.Close()
	log.Info("mcserve stopped")
	return 0
}
