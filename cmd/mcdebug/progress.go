package main

// The -progress stderr meter: a goroutine samples the join tracker's
// lock-free snapshots on a ticker and redraws one carriage-return line,
// so the hot join loop never does terminal I/O. The meter attaches only
// when -progress is given — mcdebug's default output stays script-safe.

import (
	"fmt"
	"io"
	"time"

	"matchcatcher/internal/ssjoin"
)

// progressMeter redraws the join meter on w until stop is closed, then
// prints the final state on its own line. Call the returned function
// after the join to stop the meter and wait for that last line.
func progressMeter(w io.Writer, prog *ssjoin.Progress, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(w, "\r%s\n", meterLine(prog.Snapshot()))
				return
			case <-t.C:
				fmt.Fprintf(w, "\r%-100s", meterLine(prog.Snapshot()))
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// meterLine renders one snapshot as a single meter line.
func meterLine(s ssjoin.ProgressSnapshot) string {
	line := fmt.Sprintf("join %5.1f%% | configs %d/%d | probes %s/%s | pruned %s (push %s loop %s flush %s len %s pos %s)",
		s.Fraction*100, s.ConfigsDone, s.ConfigsTotal,
		countShort(s.ProbesDone+s.ProbesSkipped), countShort(s.ProbesTotal),
		countShort(s.PruneKillPushCap+s.PruneKillLoopBreak+s.PruneKillFlushBound+
			s.PruneKillLengthFilter+s.PruneKillPrefixPos),
		countShort(s.PruneKillPushCap), countShort(s.PruneKillLoopBreak), countShort(s.PruneKillFlushBound),
		countShort(s.PruneKillLengthFilter), countShort(s.PruneKillPrefixPos))
	if s.Skew.Shards > 1 {
		line += fmt.Sprintf(" | shards %d imb %.2f", s.Skew.Shards, s.Skew.ImbalanceRatio)
	}
	switch {
	case s.Done && s.Cancelled:
		line += " | cancelled"
	case s.Done:
		line += fmt.Sprintf(" | done in %s", durShort(s.ElapsedSeconds))
	case s.ETASeconds >= 0:
		line += fmt.Sprintf(" | eta %s", durShort(s.ETASeconds))
	}
	return line
}

// countShort renders a counter compactly (1234567 -> "1.2M").
func countShort(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// durShort renders seconds compactly ("850ms", "12s", "3m05s").
func durShort(sec float64) string {
	switch {
	case sec < 1:
		return fmt.Sprintf("%.0fms", sec*1000)
	case sec < 60:
		return fmt.Sprintf("%.0fs", sec)
	default:
		return fmt.Sprintf("%dm%02ds", int(sec)/60, int(sec)%60)
	}
}
