// Command mcdebug debugs a blocker's recall on two CSV tables, the way
// the paper's users drive MatchCatcher.
//
// Interactive session (you are the labeler):
//
//	mcdebug -a A.csv -b B.csv -drop "title_cos_word<0.4"
//
// Each iteration prints up to n suspicious killed-off pairs; answer with
// the numbers of the true matches (e.g. "1 3"), or press enter for none;
// "q" stops. With -gold gold.csv the synthetic user labels automatically.
//
// Blockers: -drop parses a Magellan-style kill rule, -keep a keep rule,
// -attr-equal names an attribute-equivalence blocker; several flags
// combine as a union.
//
// Observability: -explain a_row,b_row (repeatable) watches specific pairs
// and prints their full decision lineage (blocker keep/drop, join score
// and rank, verifier position and label) when the session ends;
// -explain-gold watches every gold pair. -trace-out writes the session's
// hierarchical trace as Chrome trace_event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev); -trace-tree dumps the
// span tree to stderr. Progress goes to stderr as structured logs
// correlated with the trace id; -v raises verbosity to debug.
//
// -ledger appends the finished session to a runlog JSONL ledger: the
// cumulative recall-vs-iterations series (fractions of M_D when -gold
// is given, raw match counts otherwise), iteration/match/wall-time
// scalars, and the full telemetry snapshot — mcperf's input for
// tracking debugging-session quality across commits.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/runlog"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// cliOpts carries the parsed command line into run.
type cliOpts struct {
	aPath, bPath, goldPath string
	reportPath             string
	canonical              bool
	ledgerPath             string
	traceOut               string
	traceTree              bool
	explain                [][2]int
	explainGold            bool
	n, k                   int
	workers                int
	probeWorkers           int
	progress               bool
	seed                   int64
	drops, keeps, equals   []string
	log                    *slog.Logger
}

func main() {
	os.Exit(mainE())
}

// mainE is main's body returning an exit code, so every path — error
// exits included — runs the deferred cleanup (in particular the
// graceful -metrics-addr listener shutdown; a bare os.Exit would leak
// the socket past the process's accounting and cut scrapes mid-write).
func mainE() int {
	var o cliOpts
	flag.StringVar(&o.aPath, "a", "", "table A CSV path")
	flag.StringVar(&o.bPath, "b", "", "table B CSV path")
	flag.StringVar(&o.goldPath, "gold", "", "optional gold CSV (a_row,b_row); labels automatically")
	flag.IntVar(&o.n, "n", 20, "pairs per iteration")
	flag.IntVar(&o.k, "k", 1000, "top-k per config")
	flag.IntVar(&o.workers, "workers", 0, "concurrent config joins (0 = GOMAXPROCS); results are bit-identical at any value")
	flag.IntVar(&o.probeWorkers, "probe-workers", 1, "goroutines inside each single-config join; results are bit-identical at any value")
	flag.BoolVar(&o.progress, "progress", false, "draw a live join progress meter on stderr (fraction, prune tiers, shard skew, ETA)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.StringVar(&o.reportPath, "report", "", "write a JSON session report to this path")
	flag.BoolVar(&o.canonical, "canonical", false, "omit the telemetry snapshot from -report so same-seed runs write byte-identical reports")
	flag.StringVar(&o.ledgerPath, "ledger", "", "append the session's metrics (recall-vs-iteration series, wall time) to this runlog JSONL ledger")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the session trace as Chrome trace_event JSON to this path")
	flag.BoolVar(&o.traceTree, "trace-tree", false, "dump the session's span tree to stderr when done")
	flag.BoolVar(&o.explainGold, "explain-gold", false, "watch every gold pair (-gold) for provenance")
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics (plus expvar and pprof) on this address, e.g. :8080")
	var drops, keeps, equals, explains listFlag
	flag.Var(&drops, "drop", "kill-rule expression (repeatable)")
	flag.Var(&keeps, "keep", "keep-rule expression (repeatable)")
	flag.Var(&equals, "attr-equal", "attribute-equivalence blocker on this attribute (repeatable)")
	flag.Var(&explains, "explain", "watch this a_row,b_row pair and print its decision lineage (repeatable)")
	flag.Parse()
	o.drops, o.keeps, o.equals = drops, keeps, equals

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	o.log = telemetry.NewLogger(os.Stderr, level)

	for _, src := range explains {
		p, err := parseExplain(src)
		if err != nil {
			o.log.Error("bad -explain flag", "value", src, "err", err)
			return 1
		}
		o.explain = append(o.explain, p)
	}

	if *metricsAddr != "" {
		srv, addr, err := telemetry.Default().Serve(*metricsAddr)
		if err != nil {
			o.log.Error("metrics server failed", "err", err)
			return 1
		}
		// Graceful shutdown on every exit path: finish in-flight scrapes,
		// then close the listener, instead of leaking the socket to
		// process teardown.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				srv.Close()
			}
		}()
		o.log.Info("metrics server up", "url", fmt.Sprintf("http://%s/metrics", addr))
	}

	if err := run(o); err != nil {
		o.log.Error("session failed", "err", err)
		return 1
	}
	return 0
}

// parseExplain parses an -explain flag value of the form "a_row,b_row".
func parseExplain(src string) ([2]int, error) {
	parts := strings.Split(src, ",")
	if len(parts) != 2 {
		return [2]int{}, fmt.Errorf("want a_row,b_row")
	}
	a, errA := strconv.Atoi(strings.TrimSpace(parts[0]))
	b, errB := strconv.Atoi(strings.TrimSpace(parts[1]))
	if errA != nil || errB != nil || a < 0 || b < 0 {
		return [2]int{}, fmt.Errorf("want two non-negative row ids")
	}
	return [2]int{a, b}, nil
}

func run(o cliOpts) error {
	o.log = telemetry.LoggerOr(o.log)
	if o.aPath == "" || o.bPath == "" {
		return fmt.Errorf("-a and -b are required")
	}
	a, err := table.ReadCSVFile(o.aPath)
	if err != nil {
		return err
	}
	b, err := table.ReadCSVFile(o.bPath)
	if err != nil {
		return err
	}
	q, err := blocker.BuildFromRules(o.drops, o.keeps, o.equals)
	if err != nil {
		return err
	}

	var gold *blocker.PairSet
	if o.goldPath != "" {
		if gold, err = readGold(o.goldPath); err != nil {
			return err
		}
	}

	// Provenance watch list: explicit -explain pairs plus, under
	// -explain-gold, every gold pair.
	prov := telemetry.NewProvenance(o.explain...)
	if o.explainGold {
		if gold == nil {
			return fmt.Errorf("-explain-gold requires -gold")
		}
		for _, p := range gold.SortedPairs() {
			prov.Watch(p.A, p.B)
		}
	}

	tracer := telemetry.NewTracer(telemetry.Default())

	// The blocker package predates options structs, so its trace and
	// provenance hooks install process-wide; BlockScoped confines them to
	// this one Block call (and serializes against any other scoped call).
	bsp := tracer.Start("blocker.run", telemetry.L("blocker", q.Name()))
	o.log.Info("blocking", "rows_a", a.NumRows(), "rows_b", b.NumRows(), "blocker", q.Name())
	c, err := blocker.BlockScoped(q, a, b, bsp, prov)
	bsp.End()
	if err != nil {
		return err
	}
	o.log.Info("blocking done", "c_size", c.Len())

	// M_D: how many gold matches the blocker killed — the denominator of
	// the session's recall series (gold runs only).
	md := 0
	if gold != nil {
		md = gold.Len() - metrics.Intersection(gold, c)
	}

	sessionStart := time.Now()
	opt := core.Options{Trace: tracer, Logger: o.log, Provenance: prov}
	opt.Join.K = o.k
	opt.Join.Workers = o.workers
	opt.Join.ProbeWorkers = o.probeWorkers
	opt.Verifier.N = o.n
	opt.Verifier.Seed = o.seed
	// The meter stops as soon as core.New returns: the join is the only
	// long phase, and a meter left running would redraw over the
	// interactive labeling prompt.
	var stopMeter func()
	if o.progress {
		prog := ssjoin.NewProgress()
		opt.Join.Progress = prog
		stopMeter = progressMeter(os.Stderr, prog, 200*time.Millisecond)
	}
	dbg, err := core.New(a, b, c, opt)
	if stopMeter != nil {
		stopMeter()
	}
	if err != nil {
		return err
	}
	fmt.Printf("configs over %v; |E| = %d candidates\n", dbg.Configs().Promising, dbg.CandidateCount())

	var label func(x, y int) bool
	if gold != nil {
		u := oracle.New(gold, 0, o.seed)
		label = u.Label
	}

	// matchesByIter tracks the cumulative killed-off matches found after
	// each verifier iteration — the paper's recall-vs-iterations curve.
	var matchesByIter []float64
	in := bufio.NewScanner(os.Stdin)
	for !dbg.Done() {
		pairs := dbg.Next()
		if len(pairs) == 0 {
			break
		}
		labels := make([]bool, len(pairs))
		if label != nil {
			for i, p := range pairs {
				labels[i] = label(p.A, p.B)
			}
		} else {
			fmt.Printf("\niteration %d — are any of these matches?\n", dbg.Iterations()+1)
			for i, p := range pairs {
				fmt.Printf("  [%d] A#%d  %s\n       B#%d  %s\n", i+1,
					p.A, strings.Join(dbg.RowA(p.A), " | "),
					p.B, strings.Join(dbg.RowB(p.B), " | "))
			}
			fmt.Print("match numbers (e.g. \"1 3\"), enter for none, q to stop: ")
			if !in.Scan() {
				break
			}
			line := strings.TrimSpace(in.Text())
			if line == "q" {
				break
			}
			for _, f := range strings.Fields(line) {
				if idx, err := strconv.Atoi(f); err == nil && idx >= 1 && idx <= len(labels) {
					labels[idx-1] = true
				}
			}
		}
		if err := dbg.Feedback(labels); err != nil {
			return err
		}
		matchesByIter = append(matchesByIter, float64(len(dbg.Matches())))
	}
	dbg.Finish()
	sessionWall := time.Since(sessionStart)

	matches := dbg.Matches()
	fmt.Printf("\nfound %d killed-off matches in %d iterations\n", len(matches), dbg.Iterations())
	for i, m := range matches {
		if i >= 25 {
			fmt.Printf("  ... and %d more\n", len(matches)-25)
			break
		}
		ex := dbg.Explain(m)
		fmt.Printf("  (A#%d, B#%d): %s\n", m.A, m.B, strings.Join(ex.Notes, "; "))
	}
	if len(matches) > 0 {
		fmt.Println("\nmost pervasive blocker problems:")
		for _, p := range dbg.TopProblems(matches, 5) {
			fmt.Println("  -", p)
		}
	}

	if prov.Active() {
		fmt.Println()
		if err := dbg.WriteExplainReport(os.Stdout); err != nil {
			return err
		}
	}

	if o.traceTree {
		if err := tracer.WriteTree(os.Stderr); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		o.log.Info("wrote chrome trace", "path", o.traceOut, "spans", tracer.Len(), "dropped", tracer.Dropped())
	}

	if o.reportPath != "" {
		f, err := os.Create(o.reportPath)
		if err != nil {
			return err
		}
		write := dbg.WriteReport
		if o.canonical {
			write = dbg.WriteCanonicalReport
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		o.log.Info("wrote session report", "path", o.reportPath)
	}

	if o.ledgerPath != "" {
		rec := sessionRecord(o, q.Name(), matches, dbg.Iterations(), md, matchesByIter, sessionWall)
		if err := runlog.Append(o.ledgerPath, rec); err != nil {
			return err
		}
		o.log.Info("appended session to ledger", "path", o.ledgerPath, "iterations", dbg.Iterations())
	}
	return nil
}

// sessionRecord builds the runlog record of one debug session: scalar
// outcome metrics plus the per-iteration cumulative recall series. With
// gold, the series is the recall fraction found/M_D (the paper's
// recall-vs-iterations curve); without, raw cumulative match counts.
func sessionRecord(o cliOpts, blockerName string, matches []blocker.Pair, iterations, md int,
	matchesByIter []float64, wall time.Duration) runlog.Record {
	rec := runlog.New("mcdebug", "session", o.seed, map[string]any{
		"a": o.aPath, "b": o.bPath, "blocker": blockerName, "n": o.n, "k": o.k,
	})
	rec.Metrics = map[string]float64{
		"mcdebug:iterations":    float64(iterations),
		"mcdebug:matches_found": float64(len(matches)),
		"mcdebug:wall_seconds":  wall.Seconds(),
	}
	series := matchesByIter
	if md > 0 {
		rec.Metrics["mcdebug:recall_f"] = float64(len(matches)) / float64(md)
		series = make([]float64, len(matchesByIter))
		for i, m := range matchesByIter {
			series[i] = m / float64(md)
		}
	}
	rec.Series = map[string][]float64{"recall_by_iteration": series}
	rec.AttachTelemetry(telemetry.Default())
	return rec
}

func readGold(path string) (*blocker.PairSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	gold := blocker.NewPairSet()
	first := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return gold, nil
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			if len(rec) >= 1 && rec[0] == "a_row" {
				continue
			}
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("gold file %s: want a_row,b_row records", path)
		}
		a, errA := strconv.Atoi(rec[0])
		b, errB := strconv.Atoi(rec[1])
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("gold file %s: bad record %v", path, rec)
		}
		gold.Add(a, b)
	}
}
