// Command mcdebug debugs a blocker's recall on two CSV tables, the way
// the paper's users drive MatchCatcher.
//
// Interactive session (you are the labeler):
//
//	mcdebug -a A.csv -b B.csv -drop "title_cos_word<0.4"
//
// Each iteration prints up to n suspicious killed-off pairs; answer with
// the numbers of the true matches (e.g. "1 3"), or press enter for none;
// "q" stops. With -gold gold.csv the synthetic user labels automatically.
//
// Blockers: -drop parses a Magellan-style kill rule, -keep a keep rule,
// -attr-equal names an attribute-equivalence blocker; several flags
// combine as a union.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	aPath := flag.String("a", "", "table A CSV path")
	bPath := flag.String("b", "", "table B CSV path")
	goldPath := flag.String("gold", "", "optional gold CSV (a_row,b_row); labels automatically")
	n := flag.Int("n", 20, "pairs per iteration")
	k := flag.Int("k", 1000, "top-k per config")
	seed := flag.Int64("seed", 1, "random seed")
	report := flag.String("report", "", "write a JSON session report to this path")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics (plus expvar and pprof) on this address, e.g. :8080")
	var drops, keeps, equals listFlag
	flag.Var(&drops, "drop", "kill-rule expression (repeatable)")
	flag.Var(&keeps, "keep", "keep-rule expression (repeatable)")
	flag.Var(&equals, "attr-equal", "attribute-equivalence blocker on this attribute (repeatable)")
	flag.Parse()

	if *metricsAddr != "" {
		srv, addr, err := telemetry.Default().Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcdebug:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof)\n", addr)
	}

	if err := run(*aPath, *bPath, *goldPath, *report, *n, *k, *seed, drops, keeps, equals); err != nil {
		fmt.Fprintln(os.Stderr, "mcdebug:", err)
		os.Exit(1)
	}
}

func buildBlocker(drops, keeps, equals []string) (blocker.Blocker, error) {
	var members []blocker.Blocker
	for i, src := range drops {
		e, err := blocker.Parse(src)
		if err != nil {
			return nil, err
		}
		members = append(members, blocker.DropRule(fmt.Sprintf("drop%d", i), e))
	}
	for i, src := range keeps {
		e, err := blocker.Parse(src)
		if err != nil {
			return nil, err
		}
		members = append(members, blocker.KeepRule(fmt.Sprintf("keep%d", i), e))
	}
	for _, attr := range equals {
		members = append(members, blocker.NewAttrEquivalence(attr))
	}
	switch len(members) {
	case 0:
		return nil, fmt.Errorf("no blocker given; use -drop, -keep, or -attr-equal")
	case 1:
		return members[0], nil
	default:
		return blocker.NewUnion("union", members...), nil
	}
}

func run(aPath, bPath, goldPath, reportPath string, n, k int, seed int64, drops, keeps, equals []string) error {
	if aPath == "" || bPath == "" {
		return fmt.Errorf("-a and -b are required")
	}
	a, err := table.ReadCSVFile(aPath)
	if err != nil {
		return err
	}
	b, err := table.ReadCSVFile(bPath)
	if err != nil {
		return err
	}
	q, err := buildBlocker(drops, keeps, equals)
	if err != nil {
		return err
	}
	fmt.Printf("blocking %d x %d tuples with %s...\n", a.NumRows(), b.NumRows(), q.Name())
	c, err := q.Block(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("|C| = %d pairs; searching D = AxB - C for killed-off matches...\n", c.Len())

	opt := core.Options{}
	opt.Join.K = k
	opt.Verifier.N = n
	opt.Verifier.Seed = seed
	dbg, err := core.New(a, b, c, opt)
	if err != nil {
		return err
	}
	fmt.Printf("configs over %v; |E| = %d candidates\n", dbg.Configs().Promising, dbg.CandidateCount())

	var label func(x, y int) bool
	if goldPath != "" {
		gold, err := readGold(goldPath)
		if err != nil {
			return err
		}
		u := oracle.New(gold, 0, seed)
		label = u.Label
	}

	in := bufio.NewScanner(os.Stdin)
	for !dbg.Done() {
		pairs := dbg.Next()
		if len(pairs) == 0 {
			break
		}
		labels := make([]bool, len(pairs))
		if label != nil {
			for i, p := range pairs {
				labels[i] = label(p.A, p.B)
			}
		} else {
			fmt.Printf("\niteration %d — are any of these matches?\n", dbg.Iterations()+1)
			for i, p := range pairs {
				fmt.Printf("  [%d] A#%d  %s\n       B#%d  %s\n", i+1,
					p.A, strings.Join(dbg.RowA(p.A), " | "),
					p.B, strings.Join(dbg.RowB(p.B), " | "))
			}
			fmt.Print("match numbers (e.g. \"1 3\"), enter for none, q to stop: ")
			if !in.Scan() {
				break
			}
			line := strings.TrimSpace(in.Text())
			if line == "q" {
				break
			}
			for _, f := range strings.Fields(line) {
				if idx, err := strconv.Atoi(f); err == nil && idx >= 1 && idx <= len(labels) {
					labels[idx-1] = true
				}
			}
		}
		if err := dbg.Feedback(labels); err != nil {
			return err
		}
	}

	matches := dbg.Matches()
	fmt.Printf("\nfound %d killed-off matches in %d iterations\n", len(matches), dbg.Iterations())
	for i, m := range matches {
		if i >= 25 {
			fmt.Printf("  ... and %d more\n", len(matches)-25)
			break
		}
		ex := dbg.Explain(m)
		fmt.Printf("  (A#%d, B#%d): %s\n", m.A, m.B, strings.Join(ex.Notes, "; "))
	}
	if len(matches) > 0 {
		fmt.Println("\nmost pervasive blocker problems:")
		for _, p := range dbg.TopProblems(matches, 5) {
			fmt.Println("  -", p)
		}
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		if err := dbg.WriteReport(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote session report to %s\n", reportPath)
	}
	return nil
}

func readGold(path string) (*blocker.PairSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	gold := blocker.NewPairSet()
	first := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return gold, nil
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			if len(rec) >= 1 && rec[0] == "a_row" {
				continue
			}
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("gold file %s: want a_row,b_row records", path)
		}
		a, errA := strconv.Atoi(rec[0])
		b, errB := strconv.Atoi(rec[1])
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("gold file %s: bad record %v", path, rec)
		}
		gold.Add(a, b)
	}
}
