package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildBlocker(t *testing.T) {
	if _, err := buildBlocker(nil, nil, nil); err == nil {
		t.Error("want error with no blocker flags")
	}
	b, err := buildBlocker([]string{"title_jac_word<0.4"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "drop0" {
		t.Errorf("name = %q", b.Name())
	}
	u, err := buildBlocker([]string{"title_jac_word<0.4"}, []string{"attr_equal_brand"}, []string{"city"})
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "union" {
		t.Errorf("union name = %q", u.Name())
	}
	if _, err := buildBlocker([]string{"((("}, nil, nil); err == nil {
		t.Error("want parse error")
	}
}

func TestReadGold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gold.csv")
	if err := os.WriteFile(path, []byte("a_row,b_row\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gold, err := readGold(path)
	if err != nil {
		t.Fatal(err)
	}
	if gold.Len() != 2 || !gold.Contains(1, 2) || !gold.Contains(3, 4) {
		t.Errorf("gold = %v", gold.SortedPairs())
	}
	// Headerless files work too.
	path2 := filepath.Join(dir, "gold2.csv")
	os.WriteFile(path2, []byte("5,6\n"), 0o644)
	gold2, err := readGold(path2)
	if err != nil || !gold2.Contains(5, 6) {
		t.Errorf("headerless gold: %v %v", err, gold2)
	}
	// Bad records fail.
	path3 := filepath.Join(dir, "gold3.csv")
	os.WriteFile(path3, []byte("x,y\nnope,1\n"), 0o644)
	if _, err := readGold(path3); err == nil {
		t.Error("want error for non-numeric gold record")
	}
	if _, err := readGold(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestListFlag(t *testing.T) {
	var l listFlag
	l.Set("a")
	l.Set("b")
	if l.String() != "a,b" || len(l) != 2 {
		t.Errorf("listFlag = %v", l)
	}
}
