package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/runlog"
	"matchcatcher/internal/telemetry"
)

func TestBuildFromRules(t *testing.T) {
	if _, err := blocker.BuildFromRules(nil, nil, nil); err == nil {
		t.Error("want error with no blocker flags")
	}
	b, err := blocker.BuildFromRules([]string{"title_jac_word<0.4"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "drop0" {
		t.Errorf("name = %q", b.Name())
	}
	u, err := blocker.BuildFromRules([]string{"title_jac_word<0.4"}, []string{"attr_equal_brand"}, []string{"city"})
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "union" {
		t.Errorf("union name = %q", u.Name())
	}
	if _, err := blocker.BuildFromRules([]string{"((("}, nil, nil); err == nil {
		t.Error("want parse error")
	}
}

func TestReadGold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gold.csv")
	if err := os.WriteFile(path, []byte("a_row,b_row\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gold, err := readGold(path)
	if err != nil {
		t.Fatal(err)
	}
	if gold.Len() != 2 || !gold.Contains(1, 2) || !gold.Contains(3, 4) {
		t.Errorf("gold = %v", gold.SortedPairs())
	}
	// Headerless files work too.
	path2 := filepath.Join(dir, "gold2.csv")
	os.WriteFile(path2, []byte("5,6\n"), 0o644)
	gold2, err := readGold(path2)
	if err != nil || !gold2.Contains(5, 6) {
		t.Errorf("headerless gold: %v %v", err, gold2)
	}
	// Bad records fail.
	path3 := filepath.Join(dir, "gold3.csv")
	os.WriteFile(path3, []byte("x,y\nnope,1\n"), 0o644)
	if _, err := readGold(path3); err == nil {
		t.Error("want error for non-numeric gold record")
	}
	if _, err := readGold(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("want error for missing file")
	}
}

// TestMetricsEndpointAfterDebugSession runs a full (tiny) auto-labeled
// debug session with the metrics listener up — the -metrics-addr wiring —
// and checks that /metrics then serves a healthy number of distinct mc_*
// series covering every pipeline layer.
func TestMetricsEndpointAfterDebugSession(t *testing.T) {
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.csv")
	bPath := filepath.Join(dir, "b.csv")
	goldPath := filepath.Join(dir, "gold.csv")
	// The paper's Figure 1 running example.
	os.WriteFile(aPath, []byte("Name,City,Age\n"+
		"Dave Smith,Altanta,18\n"+
		"Daniel Smith,LA,18\n"+
		"Joe Welson,New York,25\n"+
		"Charles Williams,Chicago,45\n"+
		"Charlie William,Atlanta,28\n"), 0o644)
	os.WriteFile(bPath, []byte("Name,City,Age\n"+
		"David Smith,Atlanta,18\n"+
		"Joe Wilson,NY,25\n"+
		"Daniel W. Smith,LA,30\n"+
		"Charles Williams,Chicago,45\n"), 0o644)
	os.WriteFile(goldPath, []byte("a_row,b_row\n0,0\n1,2\n2,1\n3,3\n"), 0o644)

	srv, addr, err := telemetry.Default().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reportPath := filepath.Join(dir, "report.json")
	tracePath := filepath.Join(dir, "trace.json")
	ledgerPath := filepath.Join(dir, "runs.jsonl")
	err = run(cliOpts{
		aPath: aPath, bPath: bPath, goldPath: goldPath,
		reportPath: reportPath, traceOut: tracePath, ledgerPath: ledgerPath,
		explain: [][2]int{{1, 2}}, explainGold: true,
		n: 3, k: 100, seed: 1,
		equals: []string{"City"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The session appended one runlog record: a recall-vs-iterations
	// series (fractions of M_D, so values in [0,1]), outcome scalars, and
	// the telemetry snapshot with runtime gauges.
	recs, err := runlog.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Tool != "mcdebug" || recs[0].Exp != "session" {
		t.Fatalf("ledger records = %+v", recs)
	}
	rec := recs[0]
	curve := rec.Series["recall_by_iteration"]
	if len(curve) == 0 {
		t.Fatal("ledger record lacks recall_by_iteration series")
	}
	for i, v := range curve {
		if v < 0 || v > 1 {
			t.Errorf("curve[%d] = %g, want a recall fraction", i, v)
		}
		if i > 0 && v < curve[i-1] {
			t.Errorf("recall series not cumulative: %v", curve)
		}
	}
	if rec.Metrics["mcdebug:iterations"] < 1 || rec.Metrics["mcdebug:wall_seconds"] <= 0 {
		t.Errorf("ledger metrics = %v", rec.Metrics)
	}
	if f, ok := rec.Metrics["mcdebug:recall_f"]; !ok || f < 0 || f > 1 {
		t.Errorf("recall_f = %g (ok=%v), want a fraction", f, ok)
	}
	if rec.Telemetry == nil {
		t.Error("ledger record lacks the telemetry snapshot")
	} else if _, ok := rec.Telemetry.Gauges["mc_runtime_goroutines"]; !ok {
		t.Error("snapshot missing mc_runtime_goroutines")
	}
	if data, err := os.ReadFile(tracePath); err != nil || !strings.Contains(string(data), `"traceEvents"`) {
		t.Errorf("chrome trace missing or malformed (err=%v)", err)
	}

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	series := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "mc_") {
			continue
		}
		key := line[:strings.IndexAny(line, " {")]
		series[key] = true
	}
	if len(series) < 10 {
		t.Errorf("got %d distinct mc_* series, want >= 10:\n%s", len(series), body)
	}
	for _, want := range []string{
		"mc_blocker_pairs_total",   // blocking layer
		"mc_ssjoin_prefix_events",  // join layer
		"mc_ranker_iterations",     // verifier layer
		"mc_core_e_size",           // pipeline gauges
		"mc_core_iteration_second", // iteration latency
		"mc_stage_seconds",         // stage spans
	} {
		found := false
		for s := range series {
			if strings.HasPrefix(s, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* series exported", want)
		}
	}
	if data, err := os.ReadFile(reportPath); err != nil || !strings.Contains(string(data), `"telemetry"`) {
		t.Errorf("session report missing telemetry snapshot (err=%v)", err)
	} else if !strings.Contains(string(data), `"provenance"`) {
		t.Errorf("session report missing provenance lineage for watched pairs")
	}
}

func TestParseExplain(t *testing.T) {
	good := map[string][2]int{
		"12,87":   {12, 87},
		"0,0":     {0, 0},
		" 3 , 9 ": {3, 9},
	}
	for src, want := range good {
		got, err := parseExplain(src)
		if err != nil {
			t.Errorf("parseExplain(%q): unexpected error %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("parseExplain(%q) = %v, want %v", src, got, want)
		}
	}
	bad := []string{"", "12", "a,b", "1,2,3", "-1,4", "4,-1", "1;2"}
	for _, src := range bad {
		if _, err := parseExplain(src); err == nil {
			t.Errorf("parseExplain(%q): want error, got none", src)
		}
	}
}

func TestListFlag(t *testing.T) {
	var l listFlag
	l.Set("a")
	l.Set("b")
	if l.String() != "a,b" || len(l) != 2 {
		t.Errorf("listFlag = %v", l)
	}
}
