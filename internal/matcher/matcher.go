// Package matcher implements the matching step that consumes a blocker's
// candidate set — the stage the paper's introduction motivates blocking
// with ("the next step, called matching, matches the remaining pairs,
// using rule- or learning-based techniques"). MatchCatcher itself never
// matches; this substrate exists so the end-to-end examples and
// experiments can show how blocker recall bounds final EM recall: a match
// killed at blocking time is unrecoverable no matter how good the matcher.
package matcher

import (
	"fmt"
	"math/rand"
	"sort"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/rforest"
	"matchcatcher/internal/table"
)

// Matcher decides match/no-match for candidate pairs.
type Matcher interface {
	// Name identifies the matcher in reports.
	Name() string
	// Match filters the candidate set down to predicted matches.
	Match(a, b *table.Table, c *blocker.PairSet) (*blocker.PairSet, error)
}

// RuleMatcher predicts a match when the expression holds — the rule-based
// matching of the paper's introduction, sharing the blocker rule language
// (e.g. "name_jw >= 0.9 AND attr_equal_city").
type RuleMatcher struct {
	ID   string
	Expr blocker.Expr
}

// NewRuleMatcher parses src as a match condition.
func NewRuleMatcher(id, src string) (*RuleMatcher, error) {
	e, err := blocker.Parse(src)
	if err != nil {
		return nil, err
	}
	return &RuleMatcher{ID: id, Expr: e}, nil
}

// Name implements Matcher.
func (m *RuleMatcher) Name() string { return m.ID }

// Match implements Matcher.
func (m *RuleMatcher) Match(a, b *table.Table, c *blocker.PairSet) (*blocker.PairSet, error) {
	if m.Expr == nil {
		return nil, fmt.Errorf("matcher %s: nil expression", m.ID)
	}
	out := blocker.NewPairSet()
	var err error
	c.ForEach(func(ra, rb int) {
		if m.Expr.Holds(a, ra, b, rb) {
			out.Add(ra, rb)
		}
	})
	return out, err
}

// FeatureFunc computes a pair's feature vector (feature.Extractor.Vector
// adapted to plain ints).
type FeatureFunc func(a, b int) []float64

// ForestMatcher is a learning-based matcher: a random forest trained on
// labeled pairs over the same feature space the verifier uses.
type ForestMatcher struct {
	ID        string
	Feats     FeatureFunc
	Threshold float64 // positive-vote fraction to predict match (default 0.5)
	forest    *rforest.Forest
}

// TrainForestMatcher fits a forest matcher on labeled sample pairs.
func TrainForestMatcher(id string, feats FeatureFunc, sample []blocker.LabeledPair, opt rforest.Options) (*ForestMatcher, error) {
	if feats == nil {
		return nil, fmt.Errorf("matcher %s: nil feature function", id)
	}
	exs := make([]rforest.Example, 0, len(sample))
	for _, p := range sample {
		exs = append(exs, rforest.Example{X: feats(p.A, p.B), Y: p.Match})
	}
	f, err := rforest.Train(exs, opt)
	if err != nil {
		return nil, fmt.Errorf("matcher %s: %w", id, err)
	}
	return &ForestMatcher{ID: id, Feats: feats, Threshold: 0.5, forest: f}, nil
}

// Name implements Matcher.
func (m *ForestMatcher) Name() string { return m.ID }

// Match implements Matcher.
func (m *ForestMatcher) Match(a, b *table.Table, c *blocker.PairSet) (*blocker.PairSet, error) {
	if m.forest == nil {
		return nil, fmt.Errorf("matcher %s: not trained", m.ID)
	}
	out := blocker.NewPairSet()
	c.ForEach(func(ra, rb int) {
		if m.forest.Confidence(m.Feats(ra, rb)) >= m.Threshold {
			out.Add(ra, rb)
		}
	})
	return out, nil
}

// Quality reports matcher output against gold.
type Quality struct {
	Predicted int
	TruePos   int
	Precision float64
	// Recall is measured against ALL gold matches, not just those
	// surviving blocking — so it exposes the recall ceiling the blocker
	// imposes (the paper's core motivation).
	Recall float64
	F1     float64
}

// Evaluate computes precision/recall/F1 of predicted matches against gold.
func Evaluate(pred, gold *blocker.PairSet) Quality {
	q := Quality{Predicted: pred.Len()}
	pred.ForEach(func(a, b int) {
		if gold.Contains(a, b) {
			q.TruePos++
		}
	})
	if q.Predicted > 0 {
		q.Precision = float64(q.TruePos) / float64(q.Predicted)
	}
	if g := gold.Len(); g > 0 {
		q.Recall = float64(q.TruePos) / float64(g)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// SampleTrainingPairs draws a balanced labeled sample from the candidate
// set (positives from gold ∩ c, negatives from c − gold), simulating the
// labeled data an EM team would have for matcher training.
func SampleTrainingPairs(c, gold *blocker.PairSet, nPos, nNeg int, seed int64) []blocker.LabeledPair {
	var pos, neg []blocker.Pair
	c.ForEach(func(a, b int) {
		p := blocker.Pair{A: a, B: b}
		if gold.Contains(a, b) {
			pos = append(pos, p)
		} else {
			neg = append(neg, p)
		}
	})
	rng := rand.New(rand.NewSource(seed))
	// Sort for determinism before shuffling (ForEach order is random).
	sortPairs(pos)
	sortPairs(neg)
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	var out []blocker.LabeledPair
	for i := 0; i < nPos && i < len(pos); i++ {
		out = append(out, blocker.LabeledPair{A: pos[i].A, B: pos[i].B, Match: true})
	}
	for i := 0; i < nNeg && i < len(neg); i++ {
		out = append(out, blocker.LabeledPair{A: neg[i].A, B: neg[i].B, Match: false})
	}
	return out
}

func sortPairs(ps []blocker.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}
