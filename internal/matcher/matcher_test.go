package matcher

import (
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/feature"
	"matchcatcher/internal/rforest"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/table"
)

func smallDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	p := datagen.FodorsZagats()
	return datagen.MustGenerate(p)
}

func allPairs(a, b *table.Table) *blocker.PairSet {
	c := blocker.NewPairSet()
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < b.NumRows(); j++ {
			c.Add(i, j)
		}
	}
	return c
}

func TestRuleMatcher(t *testing.T) {
	d := smallDataset(t)
	m, err := NewRuleMatcher("rm", "name_jac_word >= 0.5 AND addr_jac_3gram >= 0.3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := blocker.NewAttrEquivalence("city").Block(d.A, d.B)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Match(d.A, d.B, c)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(pred, d.Gold)
	if q.Precision < 0.8 {
		t.Errorf("rule matcher precision = %.2f", q.Precision)
	}
	// Predictions are a subset of the candidate set.
	pred.ForEach(func(a, b int) {
		if !c.Contains(a, b) {
			t.Errorf("matcher invented pair (%d,%d) outside C", a, b)
		}
	})
	if _, err := NewRuleMatcher("bad", "((("); err == nil {
		t.Error("want parse error")
	}
	if m.Name() != "rm" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestForestMatcher(t *testing.T) {
	d := smallDataset(t)
	res, err := config.Generate(d.A, d.B, config.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ext := feature.NewExtractor(ssjoin.NewCorpus(d.A, d.B, res))
	feats := func(a, b int) []float64 { return ext.Vector(int32(a), int32(b)) }

	c := allPairs(d.A, d.B)
	sample := SampleTrainingPairs(c, d.Gold, 60, 120, 7)
	if len(sample) < 150 {
		t.Fatalf("sample = %d", len(sample))
	}
	fm, err := TrainForestMatcher("fm", feats, sample, rforest.Options{Trees: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := fm.Match(d.A, d.B, c)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(pred, d.Gold)
	if q.F1 < 0.5 {
		t.Errorf("forest matcher F1 = %.2f (p=%.2f r=%.2f)", q.F1, q.Precision, q.Recall)
	}
}

// TestBlockingBoundsMatcherRecall is the paper's core motivation as an
// executable assertion: with a low-recall blocker, even a perfect matcher
// cannot exceed the blocker's recall.
func TestBlockingBoundsMatcherRecall(t *testing.T) {
	d := smallDataset(t)
	c, err := blocker.NewAttrEquivalence("city").Block(d.A, d.B)
	if err != nil {
		t.Fatal(err)
	}
	// A perfect matcher: predicts exactly gold ∩ C.
	perfect := blocker.NewPairSet()
	c.ForEach(func(a, b int) {
		if d.Gold.Contains(a, b) {
			perfect.Add(a, b)
		}
	})
	q := Evaluate(perfect, d.Gold)
	blockerRecall := d.Recall(c)
	if q.Recall > blockerRecall+1e-9 {
		t.Errorf("matcher recall %.3f exceeds blocker recall %.3f", q.Recall, blockerRecall)
	}
	if blockerRecall > 0.99 {
		t.Skip("blocker recall unexpectedly perfect; bound not exercised")
	}
	if q.Recall > 0.99 {
		t.Error("recall ceiling not binding")
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	empty := blocker.NewPairSet()
	q := Evaluate(empty, empty)
	if q.Precision != 0 || q.Recall != 0 || q.F1 != 0 {
		t.Errorf("empty eval = %+v", q)
	}
	gold := blocker.NewPairSet()
	gold.Add(1, 1)
	pred := blocker.NewPairSet()
	pred.Add(1, 1)
	pred.Add(2, 2)
	q = Evaluate(pred, gold)
	if q.TruePos != 1 || q.Precision != 0.5 || q.Recall != 1 {
		t.Errorf("eval = %+v", q)
	}
}

func TestTrainForestMatcherValidation(t *testing.T) {
	if _, err := TrainForestMatcher("x", nil, nil, rforest.Options{}); err == nil {
		t.Error("want error for nil features")
	}
	feats := func(a, b int) []float64 { return []float64{0} }
	if _, err := TrainForestMatcher("x", feats, nil, rforest.Options{}); err == nil {
		t.Error("want error for empty sample")
	}
	fm := &ForestMatcher{ID: "untrained", Feats: feats}
	if _, err := fm.Match(nil, nil, blocker.NewPairSet()); err == nil {
		t.Error("want error for untrained matcher")
	}
}

func TestSampleTrainingPairsDeterministic(t *testing.T) {
	c := blocker.NewPairSet()
	gold := blocker.NewPairSet()
	for i := 0; i < 50; i++ {
		c.Add(i, i)
		c.Add(i, i+1)
		if i%2 == 0 {
			gold.Add(i, i)
		}
	}
	s1 := SampleTrainingPairs(c, gold, 10, 10, 5)
	s2 := SampleTrainingPairs(c, gold, 10, 10, 5)
	if len(s1) != 20 || len(s2) != 20 {
		t.Fatalf("sample sizes %d, %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("sampling not deterministic for fixed seed")
		}
	}
}
