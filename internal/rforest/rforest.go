// Package rforest is a from-scratch random forest classifier (CART
// decision trees with Gini splits, bootstrap bagging, and √d feature
// subsampling) — the learner behind the Match Verifier's active/online
// learning (Section 5 of the paper). The Go ecosystem offers no stdlib
// learner, so the paper's scikit-style forest is implemented manually;
// the verifier needs only Train and per-item positive-vote confidence.
package rforest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"matchcatcher/internal/floats"
)

// Example is one labeled training instance.
type Example struct {
	X []float64
	Y bool
}

// Options tunes training. Zero values select defaults.
type Options struct {
	Trees            int   // number of trees (default 10)
	MaxDepth         int   // maximum tree depth (default 10)
	MinLeaf          int   // minimum examples per leaf (default 1)
	FeaturesPerSplit int   // features sampled per split (default ceil(sqrt(d)))
	Seed             int64 // RNG seed for bagging and feature sampling
}

func (o Options) withDefaults(d int) Options {
	if o.Trees == 0 {
		o.Trees = 10
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 10
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 1
	}
	if o.FeaturesPerSplit == 0 {
		o.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(d))))
	}
	return o
}

// node is one tree node; leaves have feat == -1.
type node struct {
	feat        int // split feature, or -1 for a leaf
	thresh      float64
	left, right *node
	vote        bool // leaf majority
}

// Forest is a trained random forest.
type Forest struct {
	trees []*node
	d     int
}

// Train fits a forest on the examples. It returns an error when there are
// no examples or inconsistent feature dimensions.
func Train(examples []Example, opt Options) (*Forest, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("rforest: no training examples")
	}
	d := len(examples[0].X)
	if d == 0 {
		return nil, fmt.Errorf("rforest: zero-dimensional features")
	}
	for i, ex := range examples {
		if len(ex.X) != d {
			return nil, fmt.Errorf("rforest: example %d has %d features, want %d", i, len(ex.X), d)
		}
	}
	opt = opt.withDefaults(d)
	rng := rand.New(rand.NewSource(opt.Seed))
	f := &Forest{d: d}
	for t := 0; t < opt.Trees; t++ {
		// Bootstrap sample.
		sample := make([]int, len(examples))
		for i := range sample {
			sample[i] = rng.Intn(len(examples))
		}
		f.trees = append(f.trees, grow(examples, sample, opt, rng, 0))
	}
	return f, nil
}

// gini returns the Gini impurity of a split count.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

func majority(examples []Example, idx []int) bool {
	pos := 0
	for _, i := range idx {
		if examples[i].Y {
			pos++
		}
	}
	return pos*2 >= len(idx)
}

func grow(examples []Example, idx []int, opt Options, rng *rand.Rand, depth int) *node {
	pos := 0
	for _, i := range idx {
		if examples[i].Y {
			pos++
		}
	}
	if depth >= opt.MaxDepth || len(idx) < 2*opt.MinLeaf || pos == 0 || pos == len(idx) {
		return &node{feat: -1, vote: pos*2 >= len(idx)}
	}
	d := len(examples[0].X)
	feats := rng.Perm(d)[:min(opt.FeaturesPerSplit, d)]

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for _, feat := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, examples[i].X[feat])
		}
		sort.Float64s(vals)
		for v := 1; v < len(vals); v++ {
			// Exact on purpose: adjacent equal values in the sorted
			// column produce no usable split point between them.
			if floats.Equal(vals[v], vals[v-1]) {
				continue
			}
			thresh := (vals[v] + vals[v-1]) / 2
			lp, ln, rp, rn := 0, 0, 0, 0
			for _, i := range idx {
				if examples[i].X[feat] <= thresh {
					ln++
					if examples[i].Y {
						lp++
					}
				} else {
					rn++
					if examples[i].Y {
						rp++
					}
				}
			}
			if ln < opt.MinLeaf || rn < opt.MinLeaf {
				continue
			}
			score := (float64(ln)*gini(lp, ln) + float64(rn)*gini(rp, rn)) / float64(ln+rn)
			if score < bestScore {
				bestFeat, bestThresh, bestScore = feat, thresh, score
			}
		}
	}
	if bestFeat < 0 {
		return &node{feat: -1, vote: pos*2 >= len(idx)}
	}
	var left, right []int
	for _, i := range idx {
		if examples[i].X[bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &node{
		feat:   bestFeat,
		thresh: bestThresh,
		left:   grow(examples, left, opt, rng, depth+1),
		right:  grow(examples, right, opt, rng, depth+1),
	}
}

func (n *node) predict(x []float64) bool {
	for n.feat >= 0 {
		if x[n.feat] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.vote
}

// Confidence returns the fraction of trees voting "match" — the positive
// prediction confidence of Section 5.
func (f *Forest) Confidence(x []float64) float64 {
	if len(x) != f.d {
		return 0
	}
	pos := 0
	for _, t := range f.trees {
		if t.predict(x) {
			pos++
		}
	}
	return float64(pos) / float64(len(f.trees))
}

// Predict returns the majority vote.
func (f *Forest) Predict(x []float64) bool { return f.Confidence(x) >= 0.5 }

// NumTrees returns the forest size.
func (f *Forest) NumTrees() int { return len(f.trees) }
