package rforest

import (
	"math/rand"
	"testing"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Error("want error for empty training set")
	}
	if _, err := Train([]Example{{X: nil, Y: true}}, Options{}); err == nil {
		t.Error("want error for zero-dim features")
	}
	if _, err := Train([]Example{{X: []float64{1}, Y: true}, {X: []float64{1, 2}, Y: false}}, Options{}); err == nil {
		t.Error("want error for ragged features")
	}
}

func TestSingleClassPredictsThatClass(t *testing.T) {
	var exs []Example
	for i := 0; i < 10; i++ {
		exs = append(exs, Example{X: []float64{float64(i)}, Y: true})
	}
	f, err := Train(exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Predict([]float64{3}) || f.Confidence([]float64{3}) != 1 {
		t.Error("all-positive training set should predict positive everywhere")
	}
}

func TestLearnsThresholdSplit(t *testing.T) {
	// y = x0 > 0.5, perfectly separable.
	var exs []Example
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		exs = append(exs, Example{X: []float64{x, rng.Float64()}, Y: x > 0.5})
	}
	f, err := Train(exs, Options{Trees: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		if f.Predict([]float64{x, rng.Float64()}) == (x > 0.5) {
			correct++
		}
	}
	if correct < 190 {
		t.Errorf("accuracy %d/200 on separable data", correct)
	}
	if f.NumTrees() != 15 {
		t.Errorf("trees = %d", f.NumTrees())
	}
}

func TestLearnsConjunction(t *testing.T) {
	// y = x0 > 0.5 AND x1 > 0.5 needs depth >= 2.
	var exs []Example
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		exs = append(exs, Example{X: []float64{a, b}, Y: a > 0.5 && b > 0.5})
	}
	f, err := Train(exs, Options{Trees: 20, Seed: 3, FeaturesPerSplit: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	const n = 400
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		if f.Predict([]float64{a, b}) == (a > 0.5 && b > 0.5) {
			correct++
		}
	}
	if correct < n*90/100 {
		t.Errorf("accuracy %d/%d on conjunction", correct, n)
	}
}

func TestConfidenceIsGraded(t *testing.T) {
	// Noisy labels around the boundary should give intermediate
	// confidence somewhere.
	var exs []Example
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		y := x+0.3*(rng.Float64()-0.5) > 0.5
		exs = append(exs, Example{X: []float64{x}, Y: y})
	}
	f, err := Train(exs, Options{Trees: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sawIntermediate := false
	for x := 0.0; x <= 1.0; x += 0.02 {
		c := f.Confidence([]float64{x})
		if c > 0.1 && c < 0.9 {
			sawIntermediate = true
		}
		if c < 0 || c > 1 {
			t.Fatalf("confidence out of range: %g", c)
		}
	}
	if !sawIntermediate {
		t.Error("confidence never intermediate on noisy data")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	var exs []Example
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		exs = append(exs, Example{X: x, Y: x[0] > x[1]})
	}
	f1, _ := Train(exs, Options{Seed: 42})
	f2, _ := Train(exs, Options{Seed: 42})
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if f1.Confidence(x) != f2.Confidence(x) {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

func TestConfidenceDimensionMismatch(t *testing.T) {
	f, err := Train([]Example{{X: []float64{1, 2}, Y: true}, {X: []float64{0, 1}, Y: false}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Confidence([]float64{1}); got != 0 {
		t.Errorf("mismatched dims should yield 0, got %g", got)
	}
}

func TestMinLeafRespected(t *testing.T) {
	var exs []Example
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		x := rng.Float64()
		exs = append(exs, Example{X: []float64{x}, Y: x > 0.5})
	}
	// Huge MinLeaf forces single-leaf trees: everything predicts the
	// majority class.
	f, err := Train(exs, Options{MinLeaf: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c0 := f.Confidence([]float64{0.0})
	c1 := f.Confidence([]float64{1.0})
	if c0 != c1 {
		t.Errorf("single-leaf forest should be constant: %g vs %g", c0, c1)
	}
}
