package lint_test

import (
	"path/filepath"
	"testing"

	"matchcatcher/internal/lint"
)

// TestRepoClean is the acceptance gate run as a test: the full analyzer
// suite over the whole module, with compiler escape data feeding
// hotalloc, must report zero active findings — and zero stale
// suppressions, since unused //lint:allow directives surface as active
// findings of the "lint" pseudo-analyzer. The suppressed set is pinned
// exactly, so adding a suppression is a reviewed decision, not drift.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := lint.LoadEscapes(root, "./...")
	if err != nil {
		t.Fatalf("LoadEscapes: %v", err)
	}
	lint.AttachEscapes(pkgs, diags)

	res, err := lint.Run(lint.All(), pkgs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range res.Active() {
		t.Errorf("active finding: %s", f)
	}

	// The repo's deliberate suppressions, by analyzer. Update this map
	// when a new suppression is added with a reviewed reason.
	wantSuppressed := map[string]int{
		"metricname": 2, // mc_stage_seconds cross-package rollup (telemetry)
		"atomicmix":  4, // quiescent ssjoin.Stats reads after JoinAll (core, experiments)
	}
	gotSuppressed := map[string]int{}
	for _, f := range res.Suppressed() {
		gotSuppressed[f.Analyzer]++
		if f.Reason == "" {
			t.Errorf("suppressed finding without a reason: %s", f)
		}
	}
	for name, want := range wantSuppressed {
		if gotSuppressed[name] != want {
			t.Errorf("suppressed[%s] = %d, want %d", name, gotSuppressed[name], want)
		}
	}
	for name, got := range gotSuppressed {
		if _, ok := wantSuppressed[name]; !ok {
			t.Errorf("unexpected suppressed findings for %s (%d); extend the reviewed set if deliberate", name, got)
		}
	}
}
