package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseAllows runs collectAllows over one source string, returning the
// parsed directives and the malformed-directive diagnostics.
func parseAllows(t *testing.T, src string) ([]*allowDirective, []string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var msgs []string
	allows := collectAllows(fset, []*ast.File{f}, func(d Diagnostic) {
		msgs = append(msgs, d.Message)
	})
	return allows, msgs
}

func TestCollectAllowsParsesDirective(t *testing.T) {
	src := `package p

func f(a, b float64) bool {
	return a == b //lint:allow floatcmp documented exact tie
}
`
	allows, msgs := parseAllows(t, src)
	if len(msgs) != 0 {
		t.Fatalf("unexpected malformed-directive reports: %v", msgs)
	}
	if len(allows) != 1 {
		t.Fatalf("directives = %d, want 1", len(allows))
	}
	d := allows[0]
	if d.Analyzer != "floatcmp" || d.Reason != "documented exact tie" {
		t.Errorf("directive = %+v, want analyzer floatcmp, reason %q", d, "documented exact tie")
	}
	if d.Line != 4 || d.EndLine != 4 {
		t.Errorf("directive lines = %d..%d, want 4..4", d.Line, d.EndLine)
	}
}

func TestCollectAllowsMalformed(t *testing.T) {
	src := `package p

//lint:allow
var a int

//lint:allow nosuchanalyzer some reason
var b int

//lint:allow floatcmp
var c int

//lint:allowed floatcmp not ours at all
var d int
`
	allows, msgs := parseAllows(t, src)
	if len(allows) != 0 {
		t.Fatalf("malformed directives must not parse; got %+v", allows)
	}
	if len(msgs) != 3 {
		t.Fatalf("malformed reports = %d, want 3: %v", len(msgs), msgs)
	}
	for i, want := range []string{
		"missing analyzer name",
		`unknown analyzer "nosuchanalyzer"`,
		"missing a reason",
	} {
		if !strings.Contains(msgs[i], want) {
			t.Errorf("msgs[%d] = %q, want substring %q", i, msgs[i], want)
		}
	}
}

func TestAllowDirectiveMatching(t *testing.T) {
	d := &allowDirective{Analyzer: "floatcmp", File: "x.go", Line: 10, EndLine: 10}
	pos := func(file string, line int) token.Position { return token.Position{Filename: file, Line: line} }

	if !d.matches("floatcmp", pos("x.go", 10)) {
		t.Error("same line must match")
	}
	if !d.matches("floatcmp", pos("x.go", 11)) {
		t.Error("line directly below must match (standalone comment form)")
	}
	if d.matches("floatcmp", pos("x.go", 12)) {
		t.Error("two lines below must not match")
	}
	if d.matches("floatcmp", pos("x.go", 9)) {
		t.Error("line above must not match")
	}
	if d.matches("floatcmp", pos("y.go", 10)) {
		t.Error("other file must not match")
	}
	if d.matches("mapiter", pos("x.go", 10)) {
		t.Error("other analyzer must not match")
	}

	all := &allowDirective{Analyzer: "all", File: "x.go", Line: 10, EndLine: 10}
	if !all.matches("mapiter", pos("x.go", 10)) || !all.matches("spanend", pos("x.go", 11)) {
		t.Error(`"all" directive must match every analyzer in range`)
	}
}
