package lint

import (
	"go/ast"
	"go/token"
)

// FloatCmpAnalyzer flags == and != between two computed floating-point
// values. Similarity scores are float64s produced by different code
// paths (scratch vs. reused score caches, SIMD-width-dependent
// summation, ...), so exact equality silently turns into
// platform-dependent tie-breaking — the bug class PR 1's total-order
// top-k tie-break exists to prevent. Route score ties through the
// approved helpers in internal/floats (floats.Equal for deliberate
// exact ties in a documented total order, floats.EqualWithin for
// tolerance checks).
//
// Comparisons against compile-time constants (sentinels like 0 or 1)
// are allowed: they are exact by construction. The floats package
// itself is exempt — it is where the approved comparisons live.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= between two computed floats; route ties through " +
		"internal/floats (Equal/EqualWithin) so tie-breaking stays deliberate",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if isFloatsPkg(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, okx := info.Types[be.X]
			yt, oky := info.Types[be.Y]
			if !okx || !oky || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if isConstExpr(info, be.X) || isConstExpr(info, be.Y) {
				return true // sentinel comparison against an exact constant
			}
			pass.Reportf(be.OpPos,
				"exact %s between computed floats; use floats.Equal (documented exact tie) or floats.EqualWithin (tolerance) from internal/floats", be.Op)
			return true
		})
	}
	return nil
}
