package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason>
//
// The comment suppresses diagnostics from <analyzer> (or from every
// analyzer, when <analyzer> is "all") reported on the comment's own
// line or on the line immediately below it — so it works both as a
// trailing comment on the offending line and as a standalone comment
// directly above it. A reason is mandatory: a suppression without a
// justification is itself reported as a diagnostic, as is one naming
// an unknown analyzer. Suppressed findings are not dropped silently;
// they are counted and listed by `mclint -summary`.
const allowPrefix = "//lint:allow"

// An allowDirective is one parsed suppression comment.
type allowDirective struct {
	Analyzer string // analyzer name, or "all"
	Reason   string
	Pos      token.Pos
	File     string
	Line     int // line the comment starts on
	EndLine  int // last line of the comment's extent
	used     bool
}

// collectAllows parses every //lint:allow directive in the package.
// Malformed directives (missing analyzer, unknown analyzer, missing
// reason) are reported through report.
func collectAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(Diagnostic{Pos: c.Pos(), Message: "malformed //lint:allow: missing analyzer name"})
					continue
				}
				name := fields[0]
				if name != "all" && ByName(name) == nil {
					report(Diagnostic{Pos: c.Pos(), Message: "//lint:allow names unknown analyzer " + strconv.Quote(name)})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					report(Diagnostic{Pos: c.Pos(), Message: "//lint:allow " + name + " is missing a reason"})
					continue
				}
				pos := fset.Position(c.Pos())
				end := fset.Position(c.End())
				out = append(out, &allowDirective{
					Analyzer: name,
					Reason:   reason,
					Pos:      c.Pos(),
					File:     pos.Filename,
					Line:     pos.Line,
					EndLine:  end.Line,
				})
			}
		}
	}
	return out
}

// matches reports whether the directive suppresses a diagnostic from
// analyzer at position p: same file, and either the comment's own
// line(s) or the line immediately below its extent.
func (d *allowDirective) matches(analyzer string, p token.Position) bool {
	if d.Analyzer != "all" && d.Analyzer != analyzer {
		return false
	}
	if p.Filename != d.File {
		return false
	}
	return (p.Line >= d.Line && p.Line <= d.EndLine) || p.Line == d.EndLine+1
}
