package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer keeps `//mc:hotpath` functions allocation-free. The
// probe/offer inner loops and the flight recorder run millions of times
// per join; a single heap allocation there turns into GC pressure that
// dwarfs the actual work. Two layers of evidence feed the check:
//
//   - Syntactic: map iteration (runtime map-iterator allocation and
//     nondeterministic order), function literals that capture enclosing
//     variables (the closure header allocates), and interface boxing at
//     call sites and conversions (a non-interface value passed where an
//     interface is expected allocates unless the compiler can prove
//     otherwise).
//   - Compiler escape analysis: when the run was given `-gcflags=-m`
//     output (see LoadEscapes, `mclint -escapes`), every "escapes to
//     heap" / "moved to heap" diagnostic inside an annotated function
//     body is reported verbatim. This is the ground truth the syntactic
//     layer approximates; the paired testing.AllocsPerRun regression
//     tests cross-check both.
//
// Without escape data the analyzer still runs its syntactic checks, so
// fixture tests and plain `mclint` stay meaningful offline.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "//mc:hotpath functions must not allocate: no map iteration, capturing closures, interface boxing, or compiler-reported heap escapes",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := mcDirective(fd.Doc, "hotpath"); !ok {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isMap(tv.Type) {
				pass.Reportf(n.Pos(),
					"map iteration in hot path %s allocates a runtime iterator (and is order-nondeterministic)",
					fd.Name.Name)
			}
		case *ast.FuncLit:
			if capturesEnclosing(info, fd, n) {
				pass.Reportf(n.Pos(),
					"capturing closure in hot path %s allocates its environment on the heap",
					fd.Name.Name)
			}
		case *ast.CallExpr:
			checkBoxing(pass, fd, n)
		}
		return true
	})
	checkEscapes(pass, fd)
}

// capturesEnclosing reports whether the literal references a variable
// declared in the enclosing function before the literal itself — the
// capture that forces a heap-allocated closure. Non-capturing literals
// compile to static functions and cost nothing.
func capturesEnclosing(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return !captured
	})
	return captured
}

// checkBoxing reports non-interface values passed to interface
// parameters (calls) or converted to interface types — each boxes the
// value onto the heap unless escape analysis happens to save it, which
// a hot path must not gamble on.
func checkBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x).
		if isBoxing(tv.Type, argType(info, call.Args)) {
			pass.Reportf(call.Pos(),
				"conversion to interface type in hot path %s boxes the value", fd.Name.Name)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin or untypable
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at, ok := info.Types[arg]
		if !ok {
			continue
		}
		if isBoxing(pt, at.Type) {
			pass.Reportf(arg.Pos(),
				"argument boxes a concrete value into an interface in hot path %s", fd.Name.Name)
		}
	}
}

// argType returns the type of a single-argument expression list, or nil.
func argType(info *types.Info, args []ast.Expr) types.Type {
	if len(args) != 1 {
		return nil
	}
	tv, ok := info.Types[args[0]]
	if !ok {
		return nil
	}
	return tv.Type
}

// isBoxing reports whether assigning a value of type from to a location
// of type to allocates an interface box: to is an interface, from is a
// concrete type (not nil, not an interface, not a type parameter —
// generic instantiation decides those).
func isBoxing(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false
	}
	if _, ok := from.(*types.TypeParam); ok {
		return false
	}
	return true
}

// checkEscapes reports compiler escape diagnostics that land inside the
// annotated function's body. pass.Escapes is nil when the run has no
// escape data (plain mclint, fixture tests); then this layer is off.
func checkEscapes(pass *Pass, fd *ast.FuncDecl) {
	if pass.Escapes == nil {
		return
	}
	tf := pass.Fset.File(fd.Pos())
	if tf == nil {
		return
	}
	start := pass.Fset.Position(fd.Pos())
	end := pass.Fset.Position(fd.End())
	for _, d := range pass.Escapes {
		if d.File != start.Filename || d.Line < start.Line || d.Line > end.Line {
			continue
		}
		pos := fd.Pos()
		if d.Line <= tf.LineCount() {
			p := tf.LineStart(d.Line) + token.Pos(d.Col-1)
			if p >= tf.Pos(0) && p < tf.Pos(tf.Size()) {
				pos = p
			}
		}
		pass.Reportf(pos,
			"hot path %s allocates: %s (compiler escape analysis)", fd.Name.Name, d.Message)
	}
}
