package lint

import "go/token"

// Facts carries cross-package analysis facts through one Run. A fact is
// published by the pass that discovers it and consumed by the passes of
// every package analyzed later; Run analyzes packages in dependency
// order (go list -deps lists dependencies before dependents), so the
// only requirement for a fact to travel is that producer and consumer
// are both in the run's target set. A single-package run (or a fixture
// run under linttest) simply sees an empty store, which degrades every
// fact-driven check to package-local scope rather than misfiring.
//
// Fact keys are strings, not *types.Object: targets are type-checked
// from source while their importers see them through compiler export
// data, so the same field has two distinct object identities across
// packages. "pkgpath.Type.Field" is stable across both views.
type Facts struct {
	// AtomicFields records struct fields accessed through sync/atomic
	// functions, keyed "pkgpath.Type.Field", with one representative
	// atomic call site per field (used in diagnostics).
	AtomicFields map[string]token.Position
}

// NewFacts allocates an empty fact store.
func NewFacts() *Facts {
	return &Facts{AtomicFields: make(map[string]token.Position)}
}

// atomicFieldSite returns the recorded atomic call site for key, if any.
func (f *Facts) atomicFieldSite(key string) (token.Position, bool) {
	if f == nil {
		return token.Position{}, false
	}
	pos, ok := f.AtomicFields[key]
	return pos, ok
}

// addAtomicField records that key is accessed through sync/atomic at
// pos (first writer wins, keeping the representative site stable).
func (f *Facts) addAtomicField(key string, pos token.Position) {
	if f == nil {
		return
	}
	if _, ok := f.AtomicFields[key]; !ok {
		f.AtomicFields[key] = pos
	}
}
