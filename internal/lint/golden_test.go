package lint_test

import (
	"strings"
	"testing"

	"matchcatcher/internal/lint"
	"matchcatcher/internal/lint/linttest"
)

// The golden suite: each analyzer runs over its fixture package in
// testdata/src/<dir>, and the harness matches findings against the
// fixture's inline `// want "substr"` comments. Every fixture mixes
// want-annotated violations with clean counterexamples, so both missed
// and surplus diagnostics fail the test.

func TestMapIterGolden(t *testing.T) {
	linttest.Run(t, lint.MapIterAnalyzer, "testdata/src/mapiter")
}

func TestSeededRandGolden(t *testing.T) {
	linttest.Run(t, lint.SeededRandAnalyzer, "testdata/src/seededrand")
}

func TestMetricNameGolden(t *testing.T) {
	linttest.Run(t, lint.MetricNameAnalyzer, "testdata/src/metricname")
}

// TestMetricNameReservedGolden runs the analyzer over a fixture whose
// import path ends in "/telemetry": the reserved mc_runtime_* and
// mc_build_* registrations must be accepted there (and only there),
// while the ordinary package-segment rule keeps firing.
func TestMetricNameReservedGolden(t *testing.T) {
	linttest.Run(t, lint.MetricNameAnalyzer, "testdata/src/telemetry")
}

// TestMetricNameServeScopedGolden runs the analyzer over a fixture
// whose import path ends in "/serve": the path-scoped mc_serve_*
// namespace must be accepted there (and only there — the metricname
// fixture above proves the rejection side), with the package-segment
// and reserved-namespace rules still enforced.
func TestMetricNameServeScopedGolden(t *testing.T) {
	linttest.Run(t, lint.MetricNameAnalyzer, "testdata/src/serve")
}

func TestSpanEndGolden(t *testing.T) {
	linttest.Run(t, lint.SpanEndAnalyzer, "testdata/src/spanend")
}

func TestFloatCmpGolden(t *testing.T) {
	linttest.Run(t, lint.FloatCmpAnalyzer, "testdata/src/floatcmp")
}

// TestLockOrderGolden also asserts the fixture's //lint:allow directive
// suppresses (not deletes) its inversion finding.
func TestLockOrderGolden(t *testing.T) {
	res := linttest.Run(t, lint.LockOrderAnalyzer, "testdata/src/lockorder")
	assertOneSuppressed(t, res, "lockorder")
}

func TestStateMachineGolden(t *testing.T) {
	res := linttest.Run(t, lint.StateMachineAnalyzer, "testdata/src/statemachine")
	assertOneSuppressed(t, res, "statemachine")
}

func TestAtomicMixGolden(t *testing.T) {
	res := linttest.Run(t, lint.AtomicMixAnalyzer, "testdata/src/atomicmix")
	assertOneSuppressed(t, res, "atomicmix")
}

// TestHotAllocGolden exercises the syntactic layer only: fixture runs
// carry no compiler escape data (Pass.Escapes == nil), mirroring plain
// `mclint` without -escapes. The escape layer is covered by the parser
// unit tests and the cmd/mclint e2e run.
func TestHotAllocGolden(t *testing.T) {
	res := linttest.Run(t, lint.HotAllocAnalyzer, "testdata/src/hotalloc")
	assertOneSuppressed(t, res, "hotalloc")
}

// TestCtxFlowGolden covers the Options rule in a neutral package; the
// serve-suffixed subfixture below covers the root-context ban.
func TestCtxFlowGolden(t *testing.T) {
	res := linttest.Run(t, lint.CtxFlowAnalyzer, "testdata/src/ctxflow")
	assertOneSuppressed(t, res, "ctxflow")
}

func TestCtxFlowServeGolden(t *testing.T) {
	res := linttest.Run(t, lint.CtxFlowAnalyzer, "testdata/src/ctxflow/serve")
	assertOneSuppressed(t, res, "ctxflow")
}

// assertOneSuppressed checks the fixture's negative allow-directive
// case: exactly one suppressed finding for the analyzer, with a reason.
func assertOneSuppressed(t *testing.T, res *lint.Result, analyzer string) {
	t.Helper()
	sup := res.Suppressed()
	if len(sup) != 1 {
		t.Fatalf("suppressed findings = %d, want 1:\n%v", len(sup), sup)
	}
	if sup[0].Analyzer != analyzer || sup[0].Reason == "" {
		t.Errorf("suppressed finding = %v, want one %s finding with a reason", sup[0], analyzer)
	}
}

// TestSuppressionAccounting proves //lint:allow directives silence
// findings without deleting them: the two suppressed findings stay
// countable (with their reasons), and the stale directive surfaces as
// an active finding of the pseudo-analyzer "lint".
func TestSuppressionAccounting(t *testing.T) {
	res := linttest.RunAll(t, "testdata/src/suppress")

	sup := res.Suppressed()
	if len(sup) != 2 {
		t.Fatalf("suppressed findings = %d, want 2:\n%v", len(sup), sup)
	}
	byAnalyzer := map[string]lint.Finding{}
	for _, f := range sup {
		if f.Reason == "" {
			t.Errorf("suppressed finding %v has an empty reason", f)
		}
		byAnalyzer[f.Analyzer] = f
	}
	if _, ok := byAnalyzer["mapiter"]; !ok {
		t.Errorf("missing suppressed mapiter finding; got %v", sup)
	}
	if f, ok := byAnalyzer["floatcmp"]; !ok {
		t.Errorf("missing suppressed floatcmp finding; got %v", sup)
	} else if !strings.Contains(f.Reason, "standalone-comment") {
		t.Errorf("floatcmp suppression reason = %q, want the fixture's reason text", f.Reason)
	}

	act := res.Active()
	if len(act) != 1 {
		t.Fatalf("active findings = %d, want exactly the stale directive:\n%v", len(act), act)
	}
	if act[0].Analyzer != "lint" || !strings.Contains(act[0].Message, "unused //lint:allow floatcmp") {
		t.Errorf("active finding = %v, want an unused-directive report from analyzer \"lint\"", act[0])
	}

	// CountByAnalyzer powers `mclint -summary`; the totals must agree.
	active, suppressed := res.CountByAnalyzer(lint.All())
	if suppressed["mapiter"] != 1 || suppressed["floatcmp"] != 1 {
		t.Errorf("suppressed counts = %v, want mapiter:1 floatcmp:1", suppressed)
	}
	if active["lint"] != 1 {
		t.Errorf("active[lint] = %d, want 1 (the stale directive)", active["lint"])
	}
	for _, a := range lint.All() {
		if n := active[a.Name]; n != 0 {
			t.Errorf("active[%s] = %d, want 0 (only the lint pseudo-analyzer may fire)", a.Name, n)
		}
	}
}
