package lint

import (
	"path/filepath"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	out := `# matchcatcher/internal/ssjoin
internal/ssjoin/topk.go:97:13: make([]ScoredPair, len(h.items)) escapes to heap
internal/ssjoin/topk.go:42:6: can inline (*topkHeap).Len
internal/ssjoin/join.go:390:28: &postings{} escapes to heap
internal/serve/session.go:12:9: moved to heap: rec
internal/serve/session.go:14:2: leaking param: sess
garbage line without colons escapes to heap
/abs/gen.go:3:4: x escapes to heap
notgo.txt:1:2: escapes to heap
internal/bad.go:x:2: escapes to heap
`
	diags := parseEscapes(out, "/root/mod")
	want := []EscapeDiag{
		{File: filepath.FromSlash("/root/mod/internal/ssjoin/topk.go"), Line: 97, Col: 13, Message: "make([]ScoredPair, len(h.items)) escapes to heap"},
		{File: filepath.FromSlash("/root/mod/internal/ssjoin/join.go"), Line: 390, Col: 28, Message: "&postings{} escapes to heap"},
		{File: filepath.FromSlash("/root/mod/internal/serve/session.go"), Line: 12, Col: 9, Message: "moved to heap: rec"},
		{File: filepath.FromSlash("/abs/gen.go"), Line: 3, Col: 4, Message: "x escapes to heap"},
	}
	if len(diags) != len(want) {
		t.Fatalf("parseEscapes returned %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, d := range diags {
		if d != want[i] {
			t.Errorf("diag[%d] = %+v, want %+v", i, d, want[i])
		}
	}
}

func TestAttachEscapes(t *testing.T) {
	pkgA := &Package{Dir: "/m/a", GoFiles: []string{"a.go"}}
	pkgB := &Package{Dir: "/m/b", GoFiles: []string{"b.go"}}
	diags := []EscapeDiag{
		{File: filepath.FromSlash("/m/a/a.go"), Line: 1, Col: 1, Message: "x escapes to heap"},
		{File: filepath.FromSlash("/m/b/b.go"), Line: 2, Col: 2, Message: "y escapes to heap"},
		{File: filepath.FromSlash("/m/c/c.go"), Line: 3, Col: 3, Message: "z escapes to heap"},
	}
	AttachEscapes([]*Package{pkgA, pkgB}, diags)
	if len(pkgA.Escapes) != 1 || pkgA.Escapes[0].Message != "x escapes to heap" {
		t.Errorf("pkgA.Escapes = %v, want the a.go diagnostic", pkgA.Escapes)
	}
	if len(pkgB.Escapes) != 1 || pkgB.Escapes[0].Line != 2 {
		t.Errorf("pkgB.Escapes = %v, want the b.go diagnostic", pkgB.Escapes)
	}
}

// TestLoadEscapesRepo compiles the real module with -gcflags=-m and
// checks the loader produces plausible, file-anchored diagnostics. The
// compiler replays cached diagnostics, so this is warm-cache fast.
func TestLoadEscapesRepo(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := LoadEscapes(root, "./...")
	if err != nil {
		t.Fatalf("LoadEscapes: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("LoadEscapes returned no diagnostics; a real module always has some heap allocations")
	}
	for _, d := range diags {
		if !filepath.IsAbs(d.File) {
			t.Errorf("diagnostic file %q is not absolute", d.File)
		}
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("diagnostic %+v has a non-positive position", d)
		}
	}
}
