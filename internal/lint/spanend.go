package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEndAnalyzer guards the tracing lifecycle discipline from PR 2:
//
//  1. a span obtained from Tracer.Start / TraceSpan.Child /
//     Registry.Start / telemetry.Start and held in a local variable
//     must have End() called in the same function (prefer
//     `defer s.End()`), and a span result must not be discarded;
//  2. nil-guards whose body only invokes span/instrument methods are
//     redundant — every telemetry method is documented as a nil-safe
//     no-op, and the guard pattern re-introduces the boilerplate the
//     nil-receiver design exists to delete.
//
// Spans that escape the function (stored in a struct field, returned,
// passed to another function, or captured) are skipped: their lifetime
// is managed elsewhere and a local check would only produce noise.
var SpanEndAnalyzer = &Analyzer{
	Name: "spanend",
	Doc: "span results must reach End() (prefer defer) and must not be discarded; " +
		"nil-guards around nil-safe telemetry methods are redundant",
	Run: runSpanEnd,
}

// spanStarters maps telemetry method/function names that mint spans.
var spanStarters = map[string]bool{
	"Start": true, // (*Tracer).Start, (*Registry).Start, telemetry.Start
	"Child": true, // (*TraceSpan).Child
}

// nilSafeTelemetryTypes are the telemetry types whose entire method
// sets are nil-safe no-ops (documented on each type).
var nilSafeTelemetryTypes = map[string]bool{
	"TraceSpan": true,
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runSpanEnd(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkSpanLifecycles(pass, fn.Body)
			checkRedundantNilGuards(pass, fn.Body)
			return true
		})
	}
	return nil
}

// isSpanStart reports whether call mints a telemetry span, returning
// the callee for diagnostics.
func isSpanStart(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	f := calleeOf(info, call)
	if f == nil || !spanStarters[f.Name()] {
		return nil, false
	}
	if n := recvNamed(f); n != nil {
		return f, isTelemetryPkg(pkgPathOf(n.Obj()))
	}
	return f, isTelemetryPkg(pkgPathOf(f))
}

func starterName(f *types.Func) string {
	if n := recvNamed(f); n != nil {
		return n.Obj().Name() + "." + f.Name()
	}
	return "telemetry." + f.Name()
}

// checkSpanLifecycles finds span-minting calls in the function body and
// verifies each local, non-escaping span variable reaches End().
func checkSpanLifecycles(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// Bare statement: `tracer.Start("x")` — span discarded.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if f, ok := isSpanStart(info, call); ok {
					pass.Reportf(call.Pos(),
						"result of %s is discarded: the span can never be ended (assign it and defer End())", starterName(f))
				}
			}
			return true
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			f, ok := isSpanStart(info, call)
			if !ok {
				return true
			}
			lhs, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // field or index target: escapes, lifetime managed elsewhere
			}
			if lhs.Name == "_" {
				pass.Reportf(call.Pos(),
					"result of %s is assigned to _: the span can never be ended", starterName(f))
				return true
			}
			obj := info.Defs[lhs]
			if obj == nil {
				obj = info.Uses[lhs]
			}
			if obj == nil {
				return true
			}
			escapes, ended := spanUsage(info, body, obj)
			if !escapes && !ended {
				pass.Reportf(n.Pos(),
					"span %q from %s is never ended in this function; add `defer %s.End()`", lhs.Name, starterName(f), lhs.Name)
			}
			return true
		}
		return true
	})
}

// spanUsage classifies every use of obj inside body: ended is true if
// obj.End() is called; escapes is true if obj is used in any way other
// than as a method-call receiver or as an assignment target (returned,
// passed as an argument, stored in a field/composite, compared, ...).
func spanUsage(info *types.Info, body *ast.BlockStmt, obj types.Object) (escapes, ended bool) {
	// parent links for classification.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if info.Uses[id] != obj {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SelectorExpr:
			if p.X != id {
				return true // obj is the field name, not the receiver
			}
			// Receiver position: method call is fine, anything else
			// (e.g. field read) counts as an escape-ish use we allow.
			if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
				if p.Sel.Name == "End" {
					ended = true
				}
				return true
			}
			escapes = true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == ast.Expr(id) {
					return true // reassignment target (e.g. s = nil)
				}
			}
			escapes = true // obj on the RHS: copied somewhere else
		default:
			escapes = true
		}
		return true
	})
	return escapes, ended
}

// checkRedundantNilGuards flags `if s != nil { s.M(); ... }` blocks
// whose guarded expression is a nil-safe telemetry type and whose body
// consists solely of method calls on s (and `s = nil` resets): the
// guard duplicates the nil check every telemetry method already
// performs.
func checkRedundantNilGuards(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || ifStmt.Init != nil || ifStmt.Else != nil {
			return true
		}
		guarded := nilGuardTarget(info, ifStmt.Cond)
		if guarded == "" {
			return true
		}
		for _, stmt := range ifStmt.Body.List {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || exprPath(sel.X) != guarded {
					return true
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return true
				}
				if exprPath(s.Lhs[0]) != guarded {
					return true
				}
				if id, ok := ast.Unparen(s.Rhs[0]).(*ast.Ident); !ok || id.Name != "nil" {
					return true
				}
			default:
				return true
			}
		}
		pass.Reportf(ifStmt.Pos(),
			"redundant nil guard: telemetry methods on %q are nil-safe no-ops; call them directly", guarded)
		return true
	})
}

// nilGuardTarget returns the printable path of X when cond is
// `X != nil` and X's type is a pointer to a nil-safe telemetry type,
// else "".
func nilGuardTarget(info *types.Info, cond ast.Expr) string {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return ""
	}
	x, y := be.X, be.Y
	if id, ok := ast.Unparen(x).(*ast.Ident); ok && id.Name == "nil" {
		x, y = y, x
	}
	if id, ok := ast.Unparen(y).(*ast.Ident); !ok || id.Name != "nil" {
		return ""
	}
	tv, ok := info.Types[x]
	if !ok {
		return ""
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || !isTelemetryPkg(pkgPathOf(named.Obj())) {
		return ""
	}
	if !nilSafeTelemetryTypes[named.Obj().Name()] {
		return ""
	}
	path := exprPath(x)
	if path == "" {
		return ""
	}
	return path
}

// exprPath renders a simple ident/selector chain ("s", "d.iterSpan")
// or "" for anything more complex.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return fmt.Sprintf("%s.%s", base, e.Sel.Name)
	}
	return ""
}
