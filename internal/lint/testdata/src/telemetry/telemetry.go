// Package telemetry is the reserved-namespace fixture for the
// metricname analyzer: the fixture's import path ends in "/telemetry",
// so isTelemetryPkg treats it as the telemetry package and the reserved
// mc_runtime_* / mc_build_* registrations must be accepted — while the
// ordinary mc_<pkg>_<name> rule still applies to everything else.
package telemetry

import real "matchcatcher/internal/telemetry"

func register(r *real.Registry) {
	// Reserved namespaces: allowed here, and only here.
	r.Gauge("mc_runtime_goroutines")
	r.Gauge("mc_runtime_heap_bytes")
	r.Gauge("mc_build_info")

	// The package's own series follow the normal convention.
	r.Counter("mc_telemetry_snapshots_total")

	r.Gauge("mc_other_thing") // want "claims package segment \"other\""
}
