// Package mfix is the golden fixture for the metricname analyzer. Its
// package name is deliberately different from its directory: the
// analyzer must key the mc_<pkg>_<name> check on the package name
// ("mfix"), not on any path component.
package mfix

import "matchcatcher/internal/telemetry"

// prefix participates in constant folding: concatenations of declared
// constants are still compile-time constants and must be accepted.
const prefix = "mc_mfix_"

func register(r *telemetry.Registry, dyn string) {
	r.Counter("mc_mfix_items_total")
	r.Gauge(prefix + "queue_depth")
	r.Histogram("mc_mfix_latency_seconds", telemetry.L("stage", "join"))

	r.Histogram("mc_other_latency_seconds") // want "claims package segment \"other\""
	r.Counter("MCItemsTotal")               // want "does not match"
	r.Gauge("mc_mfix_BadCase")              // want "does not match"
	r.Counter(dyn)                          // want "compile-time constant"

	// The process-wide namespaces are reserved for the telemetry package
	// itself; registering them from anywhere else shadows its series.
	r.Gauge("mc_runtime_goroutines") // want "reserved"
	r.Gauge("mc_build_info")         // want "reserved"
	r.Counter("mc_build_cache_hits") // want "reserved"

	// mc_serve_* is scoped to internal/serve by import path, a stronger
	// rule than package-name equality: this fires on the path, so even a
	// package named "serve" living elsewhere could not claim it.
	r.Counter("mc_serve_requests_total") // want "scoped to internal/serve"
}
