// Package suppress is the fixture for //lint:allow accounting: two
// real findings silenced with reasons (one trailing, one standalone
// above) plus one deliberately stale directive, which must surface as
// an active "lint" finding rather than vanish.
package suppress

// firstWitness suppresses on the offending line itself.
func firstWitness(m map[string]int) string {
	for k := range m {
		return k //lint:allow mapiter any witness key is acceptable for this membership probe
	}
	return ""
}

// exactTie suppresses from the line directly above.
func exactTie(a, b float64) bool {
	//lint:allow floatcmp deliberate exact tie; fixture exercises the standalone-comment form
	return a == b
}

// stale carries a directive with nothing to suppress: ints compare
// exactly, so floatcmp never fires and the directive must be reported
// as unused.
func stale(a, b int) bool {
	return a == b //lint:allow floatcmp deliberately stale directive for the accounting test
}
