// Package mapiter is the golden fixture for the mapiter analyzer: map
// ranges whose body leaks the randomized iteration order (bad) next to
// the sorted-slice and order-insensitive idioms the analyzer must
// leave alone (clean).
package mapiter

import (
	"fmt"
	"sort"

	"matchcatcher/internal/telemetry"
)

// appendNoSort grows an output slice inside a map range and never
// sorts it: the caller observes randomized order.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside a map range"
	}
	return keys
}

// appendThenSort is the approved idiom: the later sort launders the
// nondeterministic append order.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printInRange writes user-visible output in randomized order.
func printInRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output written inside a map range"
	}
}

// feedInRange records metric samples in randomized order.
func feedInRange(m map[string]int, c *telemetry.Counter) {
	for range m {
		c.Inc() // want "telemetry fed inside a map range"
	}
}

// firstMatch returns whichever matching key the randomized iteration
// reaches first.
func firstMatch(m map[string]int, want int) string {
	for k, v := range m {
		if v == want {
			return k // want "first-match-wins return"
		}
	}
	return ""
}

// membership returns a constant, so the randomized order is
// unobservable; the analyzer must stay quiet.
func membership(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// localScratch appends to a slice declared inside the loop body; it
// cannot outlive one iteration, so order never leaks.
func localScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}
