// Package statemachine is the golden fixture for the statemachine
// analyzer: an //mc:statemachine phase type whose field writes must go
// through the //mc:statetransition function, and whose switches must be
// exhaustive.
package statemachine

//mc:statemachine
type phase int

const (
	phaseIdle phase = iota
	phaseRun
	phaseDone
)

type job struct {
	st phase
}

// advance is the one sanctioned mutation point.
//
//mc:statetransition
func (j *job) advance(to phase) {
	j.st = to
}

// poke writes the state field directly.
func poke(j *job) {
	j.st = phaseRun // want "outside a //mc:statetransition function"
}

// mk initializes the field to a non-zero state in a literal.
func mk() job {
	return job{st: phaseRun} // want "non-zero state in a composite literal"
}

// mkZero spells out the zero state, indistinguishable from the implicit
// zero value; allowed.
func mkZero() job {
	return job{st: phaseIdle}
}

// localVar mutates a local of the type; only durable field writes are
// the machine's state.
func localVar() phase {
	var p phase
	p = phaseDone
	return p
}

// partial misses phaseDone and has no default.
func partial(p phase) string {
	switch p { // want "not exhaustive: missing phaseDone"
	case phaseIdle:
		return "idle"
	case phaseRun:
		return "run"
	}
	return ""
}

// exhaustive covers every constant.
func exhaustive(p phase) string {
	switch p {
	case phaseIdle:
		return "idle"
	case phaseRun:
		return "run"
	case phaseDone:
		return "done"
	}
	return ""
}

// defaulted is exhaustive by construction.
func defaulted(p phase) string {
	switch p {
	case phaseIdle:
		return "idle"
	default:
		return "other"
	}
}

// allowedPoke carries a reasoned suppression: suppressed, not active.
func allowedPoke(j *job) {
	//lint:allow statemachine fixture: proves directives silence statemachine findings
	j.st = phaseDone
}

// untracked types are out of scope.
type mode int

const modeA mode = iota

type box struct{ m mode }

func pokeUntracked(b *box) {
	b.m = modeA
}

func switchUntracked(m mode) string {
	switch m {
	case modeA:
		return "a"
	}
	return ""
}
