// Package ctxflow is the golden fixture for the ctxflow analyzer's
// Options rule: composite literals with a Ctx context.Context field
// built inside context-bearing functions must set it (or set it on the
// variable before use). Root-context calls are legal here — this
// package is not serve-suffixed; the serve/ subfixture covers rule 1.
package ctxflow

import (
	"context"
	"net/http"
)

type Options struct {
	Ctx  context.Context
	Name string
}

func run(o Options) {}

// dropsCtx has ctx in hand and builds Options without it.
func dropsCtx(ctx context.Context) {
	run(Options{Name: "x"}) // want "Options literal omits Ctx"
}

// fromRequest has r.Context() one call away; same drop.
func fromRequest(w http.ResponseWriter, r *http.Request) {
	run(Options{Name: "x"}) // want "Options literal omits Ctx"
}

// threadsCtx sets the field in the literal.
func threadsCtx(ctx context.Context) {
	run(Options{Ctx: ctx, Name: "x"})
}

// twoStep sets the field on the variable afterwards; also fine.
func twoStep(ctx context.Context) {
	o := Options{Name: "x"}
	o.Ctx = ctx
	run(o)
}

// noCtxAvailable has nothing to thread; the zero Ctx is the only option.
func noCtxAvailable() {
	run(Options{Name: "x"})
}

// backgroundOK: root contexts are only banned in the serve layer.
func backgroundOK() context.Context {
	return context.Background()
}

type plain struct{ Name string }

// noCtxField: structs without a Ctx field are out of scope.
func noCtxField(ctx context.Context) {
	_ = plain{Name: "x"}
}

// allowedDrop documents a deliberate detachment; suppressed, not active.
func allowedDrop(ctx context.Context) {
	//lint:allow ctxflow fixture: audit write must outlive the request
	run(Options{Name: "x"})
}
