// Package serve is the serve-suffixed golden fixture for the ctxflow
// analyzer's root-context rule: the import path ends in "/serve", so
// context.Background() and context.TODO() are banned outright.
package serve

import "context"

// handle manufactures a root context with the real one in hand.
func handle(ctx context.Context) context.Context {
	return context.Background() // want "severs request cancellation"
}

// todo is the placeholder variant of the same mistake.
func todo() context.Context {
	return context.TODO() // want "severs request cancellation"
}

// threads passes the incoming context along.
func threads(ctx context.Context) context.Context {
	return ctx
}

// allowedRoot is a server-lifetime context, deliberately detached.
func allowedRoot() context.Context {
	//lint:allow ctxflow fixture: server-lifetime context, intentionally detached
	return context.Background()
}
