// Package serve is the path-scoped-namespace fixture for the
// metricname analyzer: the fixture's import path ends in "/serve", so
// isServePkg treats it as the HTTP service package and the mc_serve_*
// registrations must be accepted — while the ordinary mc_<pkg>_<name>
// rule and the reserved process-wide namespaces still apply.
package serve

import real "matchcatcher/internal/telemetry"

func register(r *real.Registry) {
	// The path-scoped namespace: allowed here, and only here.
	r.Counter("mc_serve_requests_total", real.L("route", "join"))
	r.Histogram("mc_serve_request_seconds")
	r.Gauge("mc_serve_sessions_live")

	r.Gauge("mc_other_thing")        // want "claims package segment \"other\""
	r.Gauge("mc_runtime_goroutines") // want "reserved"
}
