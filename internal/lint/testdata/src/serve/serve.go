// Package serve is the path-scoped-namespace fixture for the
// metricname analyzer: the fixture's import path ends in "/serve", so
// isServePkg treats it as the HTTP service package and the mc_serve_*
// registrations must be accepted — while the ordinary mc_<pkg>_<name>
// rule and the reserved process-wide namespaces still apply.
package serve

import real "matchcatcher/internal/telemetry"

func register(r *real.Registry) {
	// The path-scoped namespace: allowed here, and only here.
	r.Counter("mc_serve_requests_total", real.L("route", "join"))
	r.Histogram("mc_serve_request_seconds")
	r.Gauge("mc_serve_sessions_live")

	r.Gauge("mc_other_thing")        // want "claims package segment \"other\""
	r.Gauge("mc_runtime_goroutines") // want "reserved"
}

// labels exercises the cardinality guard: labels on mc_serve_* series
// must be inline telemetry.L calls with constant keys from the bounded
// vocabulary {route, code, reason}.
func labels(r *real.Registry, status string, tenant string) {
	// The full bounded vocabulary, with computed *values* (fine: only
	// keys must be constant — values are bounded by construction and
	// checked at runtime).
	r.Counter("mc_serve_requests_total", real.L("route", "join"), real.L("code", status))
	r.Counter("mc_serve_sessions_evicted_total", real.L("reason", "idle"))

	r.Counter("mc_serve_requests_total", real.L("tenant", tenant)) // want "outside the bounded"

	key := "route"
	r.Counter("mc_serve_requests_total", real.L(key, "join")) // want "compile-time constant"

	r.Counter("mc_serve_requests_total", real.Label{Key: "route", Value: "join"}) // want "inline telemetry.L"

	extra := []real.Label{real.L("route", "join")}
	r.Counter("mc_serve_requests_total", extra...) // want "cannot be audited"

	// Ordinary-namespace series are untouched by the guard: any label
	// goes (their cardinality is a per-package concern, not a dashboard
	// contract).
	r.Counter("mc_serve2_ignored_total", real.L("whatever", tenant)) // want "claims package segment \"serve2\""
}
