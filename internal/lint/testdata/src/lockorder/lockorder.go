// Package lockorder is the golden fixture for the lockorder analyzer:
// a two-level //mc:lockrank hierarchy with inverted acquisitions,
// blocking calls under a ranked lock, and leaked lock paths (bad) next
// to correctly ordered, correctly released critical sections (clean).
package lockorder

import (
	"errors"
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu       sync.Mutex //mc:lockrank 1
	sessions map[int]*session
}

type session struct {
	mu sync.Mutex //mc:lockrank 2
	n  int
}

// ordered acquires rank 1 before rank 2 and defers both releases.
func ordered(s *server, sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.n++
}

// inverted acquires rank 1 while already holding rank 2.
func inverted(s *server, sess *session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	s.mu.Lock() // want "inverts the lock hierarchy"
	s.mu.Unlock()
}

// reentrant re-acquires the lock it already holds (self-deadlock).
func reentrant(sess *session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.mu.Lock() // want "inverts the lock hierarchy"
	sess.mu.Unlock()
}

// sleepy blocks with the session lock held.
func sleepy(sess *session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	time.Sleep(time.Millisecond) // want "is held across"
}

// writes sends the HTTP response with the session lock held.
func writes(sess *session, w http.ResponseWriter) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	w.Write([]byte("x")) // want "is held across"
}

// politeSleep releases the lock before blocking.
func politeSleep(sess *session) {
	sess.mu.Lock()
	sess.n++
	sess.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// slowHelper is opaque at call sites; the directive marks it blocking.
//
//mc:blocking
func slowHelper() {
	time.Sleep(time.Second)
}

// callsBlocking holds the lock across an //mc:blocking helper.
func callsBlocking(sess *session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	slowHelper() // want "is held across"
}

// leaky returns with the lock held on the error path.
func leaky(sess *session, fail bool) error {
	sess.mu.Lock()
	if fail {
		return errors.New("boom") // want "still locked"
	}
	sess.mu.Unlock()
	return nil
}

// balanced releases on every branch; the merge sees no held locks.
func balanced(sess *session, x bool) {
	sess.mu.Lock()
	if x {
		sess.n++
		sess.mu.Unlock()
	} else {
		sess.mu.Unlock()
	}
	time.Sleep(time.Millisecond)
}

// spawns starts a goroutine under the lock; the goroutine body is its
// own scope and blocks only itself.
func spawns(sess *session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// allowedInversion carries a reasoned suppression; the finding is
// counted as suppressed, not active, so no want comment here.
func allowedInversion(s *server, sess *session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	//lint:allow lockorder fixture: proves directives silence lockorder findings
	s.mu.Lock()
	s.mu.Unlock()
}

// unranked mutexes are out of scope entirely.
type leaf struct {
	mu sync.Mutex
}

func leafLock(l *leaf) {
	l.mu.Lock()
	defer l.mu.Unlock()
	time.Sleep(time.Millisecond)
}
