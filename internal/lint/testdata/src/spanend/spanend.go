// Package spanend is the golden fixture for the spanend analyzer:
// spans that never reach End() and redundant nil guards (bad) next to
// the defer-End, child-span, and escaping-span idioms (clean).
package spanend

import "matchcatcher/internal/telemetry"

// neverEnded starts a span, records on it, and leaks it.
func neverEnded(tr *telemetry.Tracer) {
	s := tr.Start("load") // want "never ended in this function"
	s.Event("begin")
}

// discarded drops the span on the floor; nothing can ever end it.
func discarded(tr *telemetry.Tracer) {
	tr.Start("load") // want "is discarded"
}

// blanked is the explicit version of discarding.
func blanked(tr *telemetry.Tracer) {
	_ = tr.Start("load") // want "assigned to _"
}

// deferred is the approved idiom.
func deferred(tr *telemetry.Tracer) {
	s := tr.Start("load")
	defer s.End()
	s.Event("begin")
}

// child spans follow the same discipline; an explicit End also counts.
func child(tr *telemetry.Tracer) {
	s := tr.Start("load")
	defer s.End()
	c := s.Child("parse")
	c.SetAttr("k", "v")
	c.End()
}

// escapes hands the span to another owner; its lifetime is managed
// elsewhere, so the analyzer must stay quiet.
func escapes(tr *telemetry.Tracer, sink func(*telemetry.TraceSpan)) {
	s := tr.Start("load")
	sink(s)
}

// stored escapes through a field write, also managed elsewhere.
type holder struct{ span *telemetry.TraceSpan }

func (h *holder) stored(tr *telemetry.Tracer) {
	s := tr.Start("load")
	h.span = s
}

// redundantGuard re-implements the nil check every telemetry method
// already performs.
func redundantGuard(s *telemetry.TraceSpan) {
	if s != nil { // want "redundant nil guard"
		s.End()
	}
}

// resetGuard is the guard-plus-reset form from PR 2's Finish().
func (h *holder) resetGuard() {
	if h.span != nil { // want "redundant nil guard"
		h.span.End()
		h.span = nil
	}
}

// meaningfulGuard does more than call nil-safe methods: the branch
// changes control flow, so the guard is load-bearing.
func meaningfulGuard(s *telemetry.TraceSpan) bool {
	if s != nil {
		s.End()
		return true
	}
	return false
}

// tracerGuard guards a *Tracer, which is NOT in the nil-safe method
// set (Start on a nil Tracer returns nil but the guard also protects
// non-span uses); the analyzer must stay quiet.
func tracerGuard(tr *telemetry.Tracer) {
	if tr != nil {
		tr.SetMaxSpans(16)
	}
}
