// Package seededrand is the golden fixture for the seededrand
// analyzer: global math/rand draws and wall-clock seeds (bad) next to
// the explicitly seeded generators the repo requires (clean).
package seededrand

import (
	"math/rand"
	"time"
)

// globalDraw pulls from the process-global math/rand state.
func globalDraw() int {
	return rand.Intn(10) // want "process-global math/rand state"
}

// globalShuffle mutates through the same global state.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global math/rand state"
}

// clockSeed differs on every run; the nested constructor chain must be
// reported exactly once, at the innermost seed consumer.
func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "differs on every run"
}

// seeded is the approved idiom: an explicit caller-provided seed
// threaded into a local generator, whose methods are all fine.
func seeded(seed int64, xs []int) *rand.Rand {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	_ = r.Intn(10)
	return r
}
