// Package hotalloc is the golden fixture for the hotalloc analyzer's
// syntactic layer: //mc:hotpath functions with map iteration, capturing
// closures, and interface boxing (bad) next to slice loops, static
// literals, and interface-to-interface passes (clean). The compiler
// escape-analysis layer needs real build output and is exercised by the
// cmd/mclint e2e tests instead.
package hotalloc

func take(v any)        {}
func variadic(vs ...any) {}

// sumMap iterates a map on the hot path.
//
//mc:hotpath
func sumMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration in hot path sumMap"
		total += v
	}
	return total
}

// counter returns a closure over a local.
//
//mc:hotpath
func counter() func() int {
	n := 0
	return func() int { // want "capturing closure in hot path counter"
		n++
		return n
	}
}

// boxesArg passes a concrete int where any is expected.
//
//mc:hotpath
func boxesArg(n int) {
	take(n) // want "boxes a concrete value into an interface in hot path boxesArg"
}

// boxesConv converts explicitly.
//
//mc:hotpath
func boxesConv(n int) any {
	return any(n) // want "conversion to interface type in hot path boxesConv"
}

// boxesVariadic boxes into a variadic any slot.
//
//mc:hotpath
func boxesVariadic(n int) {
	variadic(n) // want "boxes a concrete value into an interface in hot path boxesVariadic"
}

// sumSlice is the allocation-free shape of sumMap.
//
//mc:hotpath
func sumSlice(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// staticLit uses a non-capturing literal, which compiles to a static
// function and does not allocate.
//
//mc:hotpath
func staticLit() int {
	f := func(a int) int { return a + 1 }
	return f(41)
}

// passIface hands an interface value to an interface parameter: no box.
//
//mc:hotpath
func passIface(w any) {
	take(w)
}

// passThrough forwards a slice to a variadic without re-boxing.
//
//mc:hotpath
func passThrough(vs []any) {
	variadic(vs...)
}

// allowedBox documents a deliberate boxing; suppressed, not active.
//
//mc:hotpath
func allowedBox(n int) {
	//lint:allow hotalloc fixture: proves directives silence hotalloc findings
	take(n)
}

// coldMap is unannotated; nothing here is in scope.
func coldMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
