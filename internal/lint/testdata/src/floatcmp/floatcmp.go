// Package floatcmp is the golden fixture for the floatcmp analyzer:
// exact equality between two computed floats (bad) next to constant
// sentinels, integer comparisons, and ordering operators (clean).
package floatcmp

const eps = 1e-9

// exactEqual compares two computed scores exactly.
func exactEqual(a, b float64) bool {
	return a == b // want "exact == between computed floats"
}

// exactNotEqual is the negated form.
func exactNotEqual(a, b float64) bool {
	return a != b // want "exact != between computed floats"
}

// computed operands on both sides are still computed.
func exactDerived(a, b float64) bool {
	return a*0.5 == b/2 // want "exact == between computed floats"
}

// sentinel comparisons against compile-time constants are exact by
// construction and allowed.
func sentinel(a float64) bool {
	return a == 0 || a != 1 || a == eps
}

// ints compare exactly; only floats are in scope.
func ints(a, b int) bool {
	return a == b
}

// ordering operators are not equality; out of scope.
func ordered(a, b float64) bool {
	return a < b || a >= b
}

// float32 is covered too.
func narrow(a, b float32) bool {
	return a == b // want "exact == between computed floats"
}
