// Package atomicmix is the golden fixture for the atomicmix analyzer:
// a counter struct whose hits field is written via sync/atomic, making
// every plain read or write of it a race (bad), next to consistent
// atomic access and fields never touched atomically (clean).
package atomicmix

import "sync/atomic"

type counters struct {
	hits int64
	miss int64
}

// bump is the atomic writer that puts hits in atomic territory.
func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// atomicRead stays on the atomic side; fine.
func (c *counters) atomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// readPlain races with bump.
func (c *counters) readPlain() int64 {
	return c.hits // want "plain access to fixture/atomicmix.counters.hits"
}

// writePlain is the worse half of the same race.
func (c *counters) writePlain() {
	c.hits = 0 // want "plain access to fixture/atomicmix.counters.hits"
}

// missPlain touches a field nothing accesses atomically; out of scope.
func (c *counters) missPlain() int64 {
	return c.miss
}

// allowedRead documents a happens-before argument; suppressed, not
// active.
func (c *counters) allowedRead() int64 {
	//lint:allow atomicmix fixture: quiescent read after the writers are joined
	return c.hits
}
