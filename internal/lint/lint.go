// Package lint is MatchCatcher's custom static-analysis suite. It
// mechanically enforces the determinism, telemetry, and concurrency
// invariants the codebase relies on for exact, reproducible recall
// debugging: same seed, same candidate set, same top-k lists, same
// explain report.
//
// The suite is shaped after golang.org/x/tools/go/analysis (Analyzer /
// Pass / Diagnostic) but is built entirely on the standard library
// (go/ast, go/types, go/importer) so the module stays dependency-free:
// packages are loaded from `go list -export` metadata and type-checked
// against compiler export data, which works fully offline.
//
// Analyzers:
//
//   - mapiter:    order-dependent iteration over maps (appends, output
//     writes, metric/trace feeds, first-match-wins returns)
//   - seededrand: global math/rand state and time-derived seeds
//   - metricname: mc_<pkg>_<name> metric naming discipline
//   - spanend:    spans that are started but never ended, and redundant
//     nil-guards around nil-safe span methods
//   - floatcmp:   exact ==/!= on computed floats outside the approved
//     helpers in internal/floats
//   - lockorder:  the documented mutex hierarchy (`//mc:lockrank`):
//     inverted acquisition, ranked locks held across blocking calls,
//     and Lock() without a reachable Unlock on every path
//   - ctxflow:    request-scoped code must thread the incoming context
//     (no context.Background()/TODO() in the serve layer, no Options
//     literal that drops a live request context)
//   - statemachine: types marked `//mc:statemachine` change only inside
//     `//mc:statetransition` functions, and switches over them are
//     exhaustive
//   - atomicmix:  a struct field accessed via sync/atomic anywhere is
//     never read or written plainly elsewhere (cross-package, via
//     analysis facts)
//   - hotalloc:   functions marked `//mc:hotpath` stay allocation-free:
//     no map iteration, capturing closures, or interface boxing, and no
//     compiler escape diagnostics (`go build -gcflags=-m`, see
//     LoadEscapes)
//
// Findings can be suppressed at a call site with a
// `//lint:allow <analyzer> <reason>` comment on the same line or the
// line immediately above; suppressions are counted and reported by
// `mclint -summary`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static-analysis pass and the invariant it
// guards.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression comments.
	Name string

	// Doc is a one-paragraph description of the invariant.
	Doc string

	// Run inspects a single type-checked package and reports
	// diagnostics through pass.Report.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the syntax trees and type
// information of a single package, plus the Report sink.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Escapes holds the compiler escape diagnostics attached to this
	// package (see LoadEscapes/AttachEscapes), or nil when the run was
	// not given escape data. Only hotalloc consumes it.
	Escapes []EscapeDiag

	// Facts is the run-wide cross-package fact store. Packages are
	// analyzed in dependency order (go list -deps emits dependencies
	// before dependents), so facts a dependency publishes are visible
	// when its importers are analyzed.
	Facts *Facts

	// Report delivers one diagnostic. The runner attaches the
	// analyzer name and resolves suppression comments.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// All returns the full analyzer suite in deterministic (alphabetical)
// order. The multichecker, tests, and CI all run exactly this set.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMixAnalyzer,
		CtxFlowAnalyzer,
		FloatCmpAnalyzer,
		HotAllocAnalyzer,
		LockOrderAnalyzer,
		MapIterAnalyzer,
		MetricNameAnalyzer,
		SeededRandAnalyzer,
		SpanEndAnalyzer,
		StateMachineAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// --- shared type helpers -------------------------------------------------

// telemetryPath is the canonical import path of the telemetry package.
const telemetryPath = "matchcatcher/internal/telemetry"

// isTelemetryPkg reports whether path names the telemetry package.
// Besides the canonical in-module path it accepts any import path whose
// final element is "telemetry", so analyzer fixtures and downstream
// forks can stub the package without re-rooting the module.
func isTelemetryPkg(path string) bool {
	if path == telemetryPath {
		return true
	}
	return path == "telemetry" || strings.HasSuffix(path, "/telemetry")
}

// servePath is the canonical import path of the HTTP service package,
// the sole owner of the mc_serve_* metric namespace.
const servePath = "matchcatcher/internal/serve"

// isServePkg reports whether path names the serve package (same suffix
// rule as isTelemetryPkg, so fixtures can stub it).
func isServePkg(path string) bool {
	if path == servePath {
		return true
	}
	return path == "serve" || strings.HasSuffix(path, "/serve")
}

// floatsPath is the canonical import path of the approved float
// comparison helpers.
const floatsPath = "matchcatcher/internal/floats"

// isFloatsPkg reports whether path names the approved float-comparison
// helper package (same suffix rule as isTelemetryPkg, for fixtures).
func isFloatsPkg(path string) bool {
	if path == floatsPath {
		return true
	}
	return path == "floats" || strings.HasSuffix(path, "/floats")
}

// corePath is the canonical import path of the pipeline package.
const corePath = "matchcatcher/internal/core"

// isCorePkg reports whether path names the core pipeline package (same
// suffix rule as isTelemetryPkg, for fixtures).
func isCorePkg(path string) bool {
	if path == corePath {
		return true
	}
	return path == "core" || strings.HasSuffix(path, "/core")
}

// ssjoinPath is the canonical import path of the joint top-k executor.
const ssjoinPath = "matchcatcher/internal/ssjoin"

// isSSJoinPkg reports whether path names the joint executor package
// (same suffix rule as isTelemetryPkg, for fixtures).
func isSSJoinPkg(path string) bool {
	if path == ssjoinPath {
		return true
	}
	return path == "ssjoin" || strings.HasSuffix(path, "/ssjoin")
}

// isRunlogPkg reports whether path names the run-ledger package (same
// suffix rule as isTelemetryPkg, for fixtures).
func isRunlogPkg(path string) bool {
	if path == "matchcatcher/internal/runlog" {
		return true
	}
	return path == "runlog" || strings.HasSuffix(path, "/runlog")
}

// mcPrefix introduces the annotation directives the suite understands:
//
//	//mc:lockrank <n>     on a sync.Mutex/RWMutex struct field (lockorder)
//	//mc:blocking         on a function that blocks its caller (lockorder)
//	//mc:statemachine     on a state type declaration (statemachine)
//	//mc:statetransition  on the state type's transition function(s)
//	//mc:hotpath          on an allocation-free hot-path function (hotalloc)
const mcPrefix = "//mc:"

// mcDirective scans a comment group for a `//mc:<name>` directive and
// returns the directive's argument text (the rest of the line).
func mcDirective(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	want := mcPrefix + name
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, want) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, want)
		if rest == "" {
			return "", true
		}
		if rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and objects in the universe scope.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeOf resolves the object a call expression invokes: a *types.Func
// for plain and method calls, or nil for builtins, conversions, and
// indirect calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Qualified identifier (pkg.Func).
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvNamed returns the named type of a method's receiver, looking
// through pointers, or nil if f is not a method.
func recvNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isFloat reports whether t's underlying type (after unaliasing) is a
// floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t (after unaliasing) is a map type.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isConstExpr reports whether e evaluates to a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// identObj resolves an identifier (possibly parenthesized) to its
// object, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
