package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMixAnalyzer forbids mixing atomic and plain access to the same
// struct field. Once any code reaches a field through sync/atomic, a
// plain read elsewhere is a data race the race detector only catches if
// the schedule cooperates — and on weakly-ordered hardware a torn or
// stale read even when it looks benign. The analyzer records every
// field passed by address into a sync/atomic function (publishing it as
// a cross-package fact, so `ssjoin.Stats` counters written atomically in
// the join protect their readers in experiments and core too) and
// reports every plain selector read or write of such a field.
//
// Typed atomics (atomic.Int64 and friends) make this unrepresentable by
// construction and are the preferred fix; `//lint:allow atomicmix` with
// a happens-before argument is the escape hatch for provably quiescent
// reads (e.g. counters read after the worker pool has been joined).
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "a struct field accessed via sync/atomic anywhere must never be read or written plainly elsewhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	info := pass.TypesInfo

	// Phase A: find `atomic.Op(&x.f, ...)` calls; the selector nodes
	// used there are the legal atomic accesses, and their fields become
	// facts for this and every later package.
	atomicNodes := make(map[*ast.SelectorExpr]bool)
	localKeys := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(info, call)
			if callee == nil || pkgPathOf(callee) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				key, ok := fieldKey(info, sel)
				if !ok {
					continue
				}
				atomicNodes[sel] = true
				localKeys[key] = true
				pass.Facts.addAtomicField(key, pass.Fset.Position(call.Pos()))
			}
			return true
		})
	}

	// Phase B: every other selector touching an atomic field — locally
	// discovered or imported as a fact — is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicNodes[sel] {
				return true
			}
			key, ok := fieldKey(info, sel)
			if !ok {
				return true
			}
			site, known := pass.Facts.atomicFieldSite(key)
			if !known && !localKeys[key] {
				return true
			}
			if known {
				pass.Reportf(sel.Pos(),
					"plain access to %s, which is accessed atomically at %s; use sync/atomic (or a typed atomic) here too",
					key, site)
			} else {
				pass.Reportf(sel.Pos(),
					"plain access to %s, which is accessed atomically elsewhere in this package; use sync/atomic here too",
					key)
			}
			return true
		})
	}
	return nil
}

// fieldKey resolves a selector to its struct-field identity
// "pkgpath.Type.Field", the key shape shared by source-checked packages
// and export-data importers (whose *types.Object identities differ).
func fieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	field := s.Obj()
	if field.Pkg() == nil {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name(), true
}
