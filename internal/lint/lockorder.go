package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrderAnalyzer enforces the documented mutex hierarchy. Mutex
// struct fields annotated `//mc:lockrank <n>` form a total order
// (Server.mu = 1 → session.mu = 2 → Debugger.mu = 3 in this repo); the
// analyzer walks every function lexically, tracking which ranked locks
// each control-flow path holds, and reports
//
//   - acquiring a lock whose rank is not strictly greater than one
//     already held (hierarchy inversion — the deadlock shape),
//   - a ranked lock held across a call that can block (joins, ledger
//     appends, HTTP response writes, slog emission, time.Sleep, and any
//     same-package function annotated `//mc:blocking`),
//   - a path that returns with a ranked lock held and no deferred
//     Unlock (the leak that serializes a whole server).
//
// The walk is lexical and per-function: branches are explored
// separately and merged by intersection, loop bodies are walked once,
// and function literals are independent scopes (a deferred closure that
// re-locks is not "the same critical section"). Only annotated mutexes
// participate, so helper locks with their own local discipline (lock
// striping, leaf tables) stay out of scope.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the //mc:lockrank mutex hierarchy: no inversions, no blocking calls or leaked paths under a ranked lock",
	Run:  runLockOrder,
}

// A rankedMutex is one `//mc:lockrank` annotated field.
type rankedMutex struct {
	rank int
	name string // Type.field, for diagnostics
}

func runLockOrder(pass *Pass) error {
	lw := &lockWalker{
		pass:     pass,
		ranked:   collectRankedMutexes(pass),
		blocking: collectBlockingFuncs(pass),
	}
	if len(lw.ranked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lw.walkFunc(fd.Body)
			}
		}
	}
	return nil
}

// collectRankedMutexes finds `//mc:lockrank <n>` directives on
// sync.Mutex / sync.RWMutex struct fields and maps the field objects to
// their ranks.
func collectRankedMutexes(pass *Pass) map[types.Object]rankedMutex {
	out := make(map[types.Object]rankedMutex)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, ok := mcDirective(field.Doc, "lockrank")
				if !ok {
					arg, ok = mcDirective(field.Comment, "lockrank")
				}
				if !ok {
					continue
				}
				// The rank is the first token; anything after it is prose
				// ("//mc:lockrank 2 — the session's lock domain").
				num := arg
				if i := strings.IndexAny(num, " \t"); i >= 0 {
					num = num[:i]
				}
				rank := 0
				for _, c := range num {
					if c < '0' || c > '9' {
						rank = 0
						break
					}
					rank = rank*10 + int(c-'0')
				}
				if rank == 0 {
					pass.Reportf(field.Pos(), "//mc:lockrank needs a positive integer rank, got %q", arg)
					continue
				}
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || !isMutexType(obj.Type()) {
						pass.Reportf(name.Pos(), "//mc:lockrank annotates %s, which is not a sync.Mutex or sync.RWMutex", name.Name)
						continue
					}
					out[obj] = rankedMutex{rank: rank, name: ts.Name.Name + "." + name.Name}
				}
			}
			return true
		})
	}
	return out
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectBlockingFuncs maps same-package functions annotated
// `//mc:blocking` to true, so calls to them count as blocking even
// though the analyzer cannot see into their bodies from the call site.
func collectBlockingFuncs(pass *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := mcDirective(fd.Doc, "blocking"); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// A heldLock is one ranked lock a control-flow path currently holds.
type heldLock struct {
	path     string // lock expression, e.g. "sess.mu"
	field    rankedMutex
	pos      token.Pos // acquisition site
	deferred bool      // a `defer ...Unlock()` releases it at return
}

type lockState []heldLock

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	copy(out, st)
	return out
}

func (st lockState) find(path string) int {
	// Last match first: a (reported) reentrant re-acquisition makes the
	// path appear twice, and Unlock pairs with the innermost Lock.
	for i := len(st) - 1; i >= 0; i-- {
		if st[i].path == path {
			return i
		}
	}
	return -1
}

// intersect keeps the locks held on both merged paths, preserving
// st's acquisition order. A lock released on either branch is treated
// as released (the analyzer prefers missing a late report over flagging
// the branch that did release).
func (st lockState) intersect(other lockState) lockState {
	var out lockState
	for _, h := range st {
		if j := other.find(h.path); j >= 0 {
			m := h
			m.deferred = h.deferred || other[j].deferred
			out = append(out, m)
		}
	}
	return out
}

type lockWalker struct {
	pass     *Pass
	ranked   map[types.Object]rankedMutex
	blocking map[types.Object]bool
	queue    []*ast.FuncLit // literals to walk as independent scopes
}

// walkFunc analyzes one function body, then drains any function
// literals discovered inside it, each as its own empty-held scope.
func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	st, terminated := w.block(body, nil)
	if !terminated {
		w.checkReturn(st, body.End())
	}
	for len(w.queue) > 0 {
		lit := w.queue[0]
		w.queue = w.queue[1:]
		st, terminated := w.block(lit.Body, nil)
		if !terminated {
			w.checkReturn(st, lit.Body.End())
		}
	}
}

func (w *lockWalker) block(b *ast.BlockStmt, st lockState) (lockState, bool) {
	for _, s := range b.List {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *lockWalker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		return w.block(s, st)
	case *ast.ExprStmt:
		return w.exprs(st, s.X), false
	case *ast.AssignStmt:
		st = w.exprs(st, s.Rhs...)
		return w.exprs(st, s.Lhs...), false
	case *ast.IncDecStmt:
		return w.exprs(st, s.X), false
	case *ast.SendStmt:
		return w.exprs(st, s.Chan, s.Value), false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					st = w.exprs(st, vs.Values...)
				}
			}
		}
		return st, false
	case *ast.DeferStmt:
		return w.deferStmt(s, st), false
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; only argument evaluation
		// happens on this path.
		st = w.exprs(st, s.Call.Args...)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.queue = append(w.queue, lit)
		}
		return st, false
	case *ast.ReturnStmt:
		st = w.exprs(st, s.Results...)
		w.checkReturn(st, s.Pos())
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave this lexical path; the target path
		// is analyzed from its own statements.
		return st, true
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		st, _ = w.stmt(s.Init, st)
		st = w.exprs(st, s.Cond)
		thenSt, thenTerm := w.block(s.Body, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return thenSt.intersect(elseSt), false
		}
	case *ast.ForStmt:
		st, _ = w.stmt(s.Init, st)
		if s.Cond != nil {
			st = w.exprs(st, s.Cond)
		}
		// The body is walked once for its own diagnostics; the
		// post-loop state conservatively keeps the pre-loop locks.
		w.block(s.Body, st.clone())
		return st, false
	case *ast.RangeStmt:
		st = w.exprs(st, s.X)
		w.block(s.Body, st.clone())
		return st, false
	case *ast.SwitchStmt:
		st, _ = w.stmt(s.Init, st)
		if s.Tag != nil {
			st = w.exprs(st, s.Tag)
		}
		return w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		st, _ = w.stmt(s.Init, st)
		st, _ = w.stmt(s.Assign, st)
		return w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		return w.caseClauses(s.Body, st)
	default:
		return st, false
	}
}

// caseClauses merges the branches of a switch/select body. The zero-case
// fallthrough path (no default clause) keeps the incoming state.
func (w *lockWalker) caseClauses(body *ast.BlockStmt, st lockState) (lockState, bool) {
	var survivors []lockState
	hasDefault := false
	for _, cs := range body.List {
		var list []ast.Stmt
		in := st.clone()
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			in = w.exprs(in, cs.List...)
			list = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				in, _ = w.stmt(cs.Comm, in)
			}
			list = cs.Body
		default:
			continue
		}
		terminated := false
		for _, s := range list {
			in, terminated = w.stmt(s, in)
			if terminated {
				break
			}
		}
		if !terminated {
			survivors = append(survivors, in)
		}
	}
	if !hasDefault {
		survivors = append(survivors, st)
	}
	if len(survivors) == 0 {
		return st, true
	}
	out := survivors[0]
	for _, s := range survivors[1:] {
		out = out.intersect(s)
	}
	return out, false
}

// deferStmt handles `defer X.mu.Unlock()` (marks the lock released at
// return) and queues deferred function literals as independent scopes.
func (w *lockWalker) deferStmt(s *ast.DeferStmt, st lockState) lockState {
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		w.queue = append(w.queue, lit)
		return w.exprsNoCalls(st, s.Call.Args...)
	}
	if mu, op, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
		if i := st.find(mu.path); i >= 0 {
			st = st.clone()
			st[i].deferred = true
		}
		return st
	}
	return w.exprs(st, s.Call.Args...)
}

// exprsNoCalls evaluates expressions for held-state purposes without
// treating their calls as executing now (deferred-closure arguments).
func (w *lockWalker) exprsNoCalls(st lockState, exprs ...ast.Expr) lockState {
	return st
}

// lockedMutex describes one resolved ranked-mutex expression.
type lockedMutex struct {
	path  string
	field rankedMutex
}

// lockOp reports whether call is `<ranked mutex>.Lock/RLock/Unlock/
// RUnlock()` and which.
func (w *lockWalker) lockOp(call *ast.CallExpr) (lockedMutex, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockedMutex{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockedMutex{}, "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockedMutex{}, "", false
	}
	fieldSel, ok := w.pass.TypesInfo.Selections[inner]
	if !ok {
		return lockedMutex{}, "", false
	}
	rm, ok := w.ranked[fieldSel.Obj()]
	if !ok {
		return lockedMutex{}, "", false
	}
	path := exprPath(sel.X)
	if path == "" {
		path = rm.name
	}
	return lockedMutex{path: path, field: rm}, op, true
}

// exprs processes the calls inside the given expressions in source
// order: lock operations mutate the held set, blocking calls are
// checked against it. Function literals are queued, not descended into.
func (w *lockWalker) exprs(st lockState, exprs ...ast.Expr) lockState {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.queue = append(w.queue, lit)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if mu, op, ok := w.lockOp(call); ok {
				switch op {
				case "Lock", "RLock":
					for _, h := range st {
						if h.field.rank >= mu.field.rank {
							w.pass.Reportf(call.Pos(),
								"acquiring %s (lock rank %d) while holding %s (rank %d) inverts the lock hierarchy",
								mu.path, mu.field.rank, h.path, h.field.rank)
							break
						}
					}
					st = append(st.clone(), heldLock{path: mu.path, field: mu.field, pos: call.Pos()})
				case "Unlock", "RUnlock":
					if i := st.find(mu.path); i >= 0 {
						st = append(st[:i:i], st[i+1:]...)
					}
				}
				return true
			}
			if len(st) > 0 {
				if desc, ok := w.blockingCall(call); ok {
					h := st[len(st)-1]
					w.pass.Reportf(call.Pos(),
						"%s (lock rank %d) is held across %s, which can block; release the lock first",
						h.path, h.field.rank, desc)
				}
			}
			return true
		})
	}
	return st
}

// checkReturn reports ranked locks still held (with no deferred Unlock)
// when a path returns or the function ends.
func (w *lockWalker) checkReturn(st lockState, pos token.Pos) {
	for _, h := range st {
		if !h.deferred {
			w.pass.Reportf(pos,
				"this path returns with %s (lock rank %d) still locked and no deferred Unlock",
				h.path, h.field.rank)
		}
	}
}

// blockingCall reports whether call can block its goroutine long enough
// that holding a ranked lock across it is a serving hazard, returning a
// description for the diagnostic.
func (w *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	info := w.pass.TypesInfo
	// Any call handed an http.ResponseWriter may write the response —
	// a network write under a session lock stalls every other request.
	for _, arg := range call.Args {
		if t, ok := info.Types[arg]; ok && isResponseWriter(t.Type) {
			return "a call that writes the HTTP response", true
		}
	}
	// Method calls on a ResponseWriter value are response writes.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && isResponseWriter(s.Recv()) {
			return "an HTTP response write", true
		}
	}
	callee := calleeOf(info, call)
	if callee == nil {
		return "", false
	}
	if w.blocking[callee] {
		return "a call to " + callee.Name() + " (//mc:blocking)", true
	}
	name := callee.Name()
	pkg := pkgPathOf(callee)
	if recv := recvNamed(callee); recv != nil {
		// For methods, the receiver's package decides which rule
		// applies (runlog.Log.Append, slog.Logger.Info, ...).
		pkg = pkgPathOf(recv.Obj())
		switch {
		case pkg == "log/slog" && recv.Obj().Name() == "Logger":
			switch name {
			case "Debug", "Info", "Warn", "Error",
				"DebugContext", "InfoContext", "WarnContext", "ErrorContext",
				"Log", "LogAttrs":
				return "slog emission (" + name + ")", true
			}
			return "", false
		case pkg == "net/http" && recv.Obj().Name() == "Client":
			return "an outbound HTTP call", true
		}
	}
	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "io" && name == "ReadAll":
		return "io.ReadAll", true
	case pkg == "net/http" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return "an outbound HTTP call", true
	case isRunlogPkg(pkg) && name == "Append":
		return "the ledger append (runlog.Append does file I/O)", true
	case isSSJoinPkg(pkg) && (name == "JoinAll" || name == "JoinOne" || name == "SelectQ" || name == "BruteForce"):
		return "the join (" + name + ")", true
	case isCorePkg(pkg) && name == "New":
		return "pipeline construction (core.New runs the joins)", true
	}
	return "", false
}

// isResponseWriter reports whether t is the net/http.ResponseWriter
// interface.
func isResponseWriter(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}
