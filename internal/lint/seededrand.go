package lint

import (
	"go/ast"
	"go/types"
)

// SeededRandAnalyzer bans the global math/rand state and time-derived
// seeds. MatchCatcher's contract is same seed → same candidate set →
// same explain report, so every source of randomness must be an
// explicitly seeded *rand.Rand threaded through parameters or options
// (datagen.Params.Seed, Verifier seed, oracle seed). Top-level
// rand.Intn/Shuffle/... draws from process-global state shared across
// goroutines, and time.Now()-derived seeds differ on every run.
var SeededRandAnalyzer = &Analyzer{
	Name: "seededrand",
	Doc: "bans math/rand top-level functions (global state) and time.Now()-derived seeds; " +
		"thread an explicitly seeded *rand.Rand instead",
	Run: runSeededRand,
}

// randConstructors are the math/rand(/v2) package-level functions that
// are allowed: they build explicitly seeded generators rather than
// drawing from global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runSeededRand(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeOf(info, call)
			if f == nil {
				return true
			}
			isMethod := recvNamed(f) != nil

			// (1) Top-level math/rand functions draw from the global,
			// unseedable-per-run source.
			if !isMethod && isMathRand(pkgPathOf(f)) && !randConstructors[f.Name()] {
				pass.Reportf(call.Pos(),
					"rand.%s uses the process-global math/rand state, which breaks same-seed reproducibility; thread an explicitly seeded *rand.Rand", f.Name())
				return true
			}

			// (2) Seeding from the wall clock makes every run unique.
			// Nested constructor chains (rand.New(rand.NewSource(...)))
			// are reported once, at the innermost seed consumer.
			if seedSink(f) {
				for _, arg := range call.Args {
					if callsTimeNow(info, arg) {
						pass.Reportf(arg.Pos(),
							"seed derived from time.Now() differs on every run; use a fixed or caller-provided seed")
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// seedSink reports whether f consumes a seed: math/rand constructors
// and the (*rand.Rand).Seed / rand.Seed setters.
func seedSink(f *types.Func) bool {
	if n := recvNamed(f); n != nil {
		return f.Name() == "Seed" && isMathRand(pkgPathOf(n.Obj()))
	}
	if !isMathRand(pkgPathOf(f)) {
		return false
	}
	return randConstructors[f.Name()] || f.Name() == "Seed"
}

// callsTimeNow reports whether e lexically contains a call to time.Now,
// without descending into nested seed-sink calls (those are reported at
// their own call site).
func callsTimeNow(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeOf(info, call)
		if f == nil {
			return true
		}
		if f.Name() == "Now" && pkgPathOf(f) == "time" {
			found = true
			return false
		}
		if seedSink(f) {
			return false // inner constructor owns its own diagnostic
		}
		return true
	})
	return found
}
