package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// MetricNameAnalyzer enforces the repo's metric naming contract: every
// series registered through telemetry.Registry.Counter / Gauge /
// Histogram must be named with a compile-time constant string matching
// ^mc_<pkg>_<name>$ where <pkg> is the name of the registering
// package. The convention (established in PR 1, documented in
// DESIGN.md "Observability") is what keeps /metrics output greppable
// per subsystem and guarantees two packages never collide on a series.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc: "metric names must be compile-time constants matching mc_<pkg>_<name> " +
		"with <pkg> equal to the registering package's name; the mc_runtime_* " +
		"and mc_build_* namespaces are reserved for the telemetry package, and " +
		"mc_serve_* is scoped by import path to internal/serve",
	Run: runMetricName,
}

var metricNameRE = regexp.MustCompile(`^mc_([a-z0-9]+)_([a-z0-9_]+)$`)

// reservedMetricNamespaces are package segments that do not belong to
// any registering package: mc_runtime_* (process gauges) and mc_build_*
// (build-info series) are emitted by the telemetry package itself on
// behalf of the whole process. Only the telemetry package may register
// them — from anywhere else they would shadow the process-wide series.
var reservedMetricNamespaces = map[string]bool{
	"runtime": true,
	"build":   true,
}

// pathScopedMetricNamespaces are namespace segments tied to one
// specific package by import path, not merely by package name:
// mc_serve_* belongs to the HTTP service layer (internal/serve), whose
// series operational dashboards and alerts key on, so they must be
// emitted from exactly one place. The ordinary mc_<pkg>_<name> rule
// would admit any package that happens to be named "serve"; the path
// scope closes that hole.
var pathScopedMetricNamespaces = map[string]func(path string) bool{
	"serve": isServePkg,
}

// registrationMethods are the Registry methods (and same-named
// package-level conveniences) that create or look up a series by name.
var registrationMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runMetricName(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeOf(info, call)
			if f == nil || !registrationMethods[f.Name()] {
				return true
			}
			// Method on a telemetry-declared type (Registry), or a
			// telemetry package-level function.
			if n := recvNamed(f); n != nil {
				if !isTelemetryPkg(pkgPathOf(n.Obj())) {
					return true
				}
			} else if !isTelemetryPkg(pkgPathOf(f)) {
				return true
			}

			arg := call.Args[0]
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to %s must be a compile-time constant string so mclint can audit the mc_<pkg>_<name> convention", f.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			m := metricNameRE.FindStringSubmatch(name)
			if m == nil {
				pass.Reportf(arg.Pos(),
					"metric name %q does not match ^mc_<pkg>_<name>$ (lowercase [a-z0-9_], e.g. mc_%s_items_total)", name, pass.Pkg.Name())
				return true
			}
			if reservedMetricNamespaces[m[1]] {
				if !isTelemetryPkg(pass.Pkg.Path()) {
					pass.Reportf(arg.Pos(),
						"metric namespace mc_%s_* is reserved for the telemetry package's process-wide series; package %q must use mc_%s_*", m[1], pass.Pkg.Name(), pass.Pkg.Name())
				}
				return true
			}
			if owns, scoped := pathScopedMetricNamespaces[m[1]]; scoped {
				if !owns(pass.Pkg.Path()) {
					pass.Reportf(arg.Pos(),
						"metric namespace mc_%s_* is scoped to internal/%s by import path; package %q (%s) must use mc_%s_*",
						m[1], m[1], pass.Pkg.Name(), pass.Pkg.Path(), pass.Pkg.Name())
				}
				return true
			}
			if m[1] != pass.Pkg.Name() {
				pass.Reportf(arg.Pos(),
					"metric name %q claims package segment %q but is registered from package %q; use mc_%s_%s", name, m[1], pass.Pkg.Name(), pass.Pkg.Name(), m[2])
			}
			return true
		})
	}
	return nil
}
