package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// MetricNameAnalyzer enforces the repo's metric naming contract: every
// series registered through telemetry.Registry.Counter / Gauge /
// Histogram must be named with a compile-time constant string matching
// ^mc_<pkg>_<name>$ where <pkg> is the name of the registering
// package. The convention (established in PR 1, documented in
// DESIGN.md "Observability") is what keeps /metrics output greppable
// per subsystem and guarantees two packages never collide on a series.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc: "metric names must be compile-time constants matching mc_<pkg>_<name> " +
		"with <pkg> equal to the registering package's name; the mc_runtime_* " +
		"and mc_build_* namespaces are reserved for the telemetry package, " +
		"mc_serve_* / mc_ssjoin_* are scoped by import path to internal/serve " +
		"and internal/ssjoin, and labels on path-scoped series must be inline " +
		"telemetry.L calls with constant keys from the namespace's bounded " +
		"label vocabulary (cardinality guard)",
	Run: runMetricName,
}

var metricNameRE = regexp.MustCompile(`^mc_([a-z0-9]+)_([a-z0-9_]+)$`)

// reservedMetricNamespaces are package segments that do not belong to
// any registering package: mc_runtime_* (process gauges) and mc_build_*
// (build-info series) are emitted by the telemetry package itself on
// behalf of the whole process. Only the telemetry package may register
// them — from anywhere else they would shadow the process-wide series.
var reservedMetricNamespaces = map[string]bool{
	"runtime": true,
	"build":   true,
}

// pathScopedMetricNamespaces are namespace segments tied to one
// specific package by import path, not merely by package name:
// mc_serve_* belongs to the HTTP service layer (internal/serve) and
// mc_ssjoin_* (including the mc_ssjoin_progress_* / mc_ssjoin_shard_skew_*
// join-observability series) to the joint executor (internal/ssjoin).
// These series feed operational dashboards and alerts, so they must be
// emitted from exactly one place. The ordinary mc_<pkg>_<name> rule
// would admit any package that happens to share the name; the path
// scope closes that hole.
var pathScopedMetricNamespaces = map[string]func(path string) bool{
	"serve":  isServePkg,
	"ssjoin": isSSJoinPkg,
}

// pathScopedLabelKeys is the bounded label vocabulary per path-scoped
// namespace. Series in these namespaces feed operational dashboards
// and alerts, where an unbounded label (a session id, a client value)
// silently explodes series cardinality; restricting keys to this
// constant set — with values bounded by construction (route names are
// registration constants, codes are HTTP statuses, reasons are the
// eviction enum; the registry-side twin, TestServeLabelCardinality,
// checks the values at runtime) — keeps the surface finite.
var pathScopedLabelKeys = map[string]map[string]bool{
	"serve":  {"route": true, "code": true, "reason": true},
	"ssjoin": {"q": true, "tier": true},
}

// registrationMethods are the Registry methods (and same-named
// package-level conveniences) that create or look up a series by name.
var registrationMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runMetricName(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeOf(info, call)
			if f == nil || !registrationMethods[f.Name()] {
				return true
			}
			// Method on a telemetry-declared type (Registry), or a
			// telemetry package-level function.
			if n := recvNamed(f); n != nil {
				if !isTelemetryPkg(pkgPathOf(n.Obj())) {
					return true
				}
			} else if !isTelemetryPkg(pkgPathOf(f)) {
				return true
			}

			arg := call.Args[0]
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to %s must be a compile-time constant string so mclint can audit the mc_<pkg>_<name> convention", f.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			m := metricNameRE.FindStringSubmatch(name)
			if m == nil {
				pass.Reportf(arg.Pos(),
					"metric name %q does not match ^mc_<pkg>_<name>$ (lowercase [a-z0-9_], e.g. mc_%s_items_total)", name, pass.Pkg.Name())
				return true
			}
			if reservedMetricNamespaces[m[1]] {
				if !isTelemetryPkg(pass.Pkg.Path()) {
					pass.Reportf(arg.Pos(),
						"metric namespace mc_%s_* is reserved for the telemetry package's process-wide series; package %q must use mc_%s_*", m[1], pass.Pkg.Name(), pass.Pkg.Name())
				}
				return true
			}
			if owns, scoped := pathScopedMetricNamespaces[m[1]]; scoped {
				if !owns(pass.Pkg.Path()) {
					pass.Reportf(arg.Pos(),
						"metric namespace mc_%s_* is scoped to internal/%s by import path; package %q (%s) must use mc_%s_*",
						m[1], m[1], pass.Pkg.Name(), pass.Pkg.Path(), pass.Pkg.Name())
					return true
				}
				checkScopedLabels(pass, call, m[1])
				return true
			}
			if m[1] != pass.Pkg.Name() {
				pass.Reportf(arg.Pos(),
					"metric name %q claims package segment %q but is registered from package %q; use mc_%s_%s", name, m[1], pass.Pkg.Name(), pass.Pkg.Name(), m[2])
			}
			return true
		})
	}
	return nil
}

// checkScopedLabels is the cardinality guard for a path-scoped
// namespace: every label argument of the registration must be an
// inline telemetry.L call whose key is a compile-time constant from
// the namespace's bounded vocabulary. Anything mclint cannot prove
// bounded (a spread slice, a constructed Label, a computed key) is a
// finding — a dashboard-facing series must not be able to grow a label
// dimension by accident.
func checkScopedLabels(pass *Pass, call *ast.CallExpr, ns string) {
	allowed := pathScopedLabelKeys[ns]
	if allowed == nil {
		return
	}
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis,
			"labels on an mc_%s_* series must be inline telemetry.L calls so mclint can bound the label set; a spread argument cannot be audited", ns)
		return
	}
	info := pass.TypesInfo
	for _, arg := range call.Args[1:] {
		lc, ok := arg.(*ast.CallExpr)
		var f *types.Func
		if ok {
			f = calleeOf(info, lc)
		}
		if f == nil || f.Name() != "L" || !isTelemetryPkg(pkgPathOf(f)) {
			pass.Reportf(arg.Pos(),
				"label on an mc_%s_* series must be an inline telemetry.L call so mclint can bound the label set", ns)
			continue
		}
		if len(lc.Args) < 1 {
			continue
		}
		kv, ok := info.Types[lc.Args[0]]
		if !ok || kv.Value == nil || kv.Value.Kind() != constant.String {
			pass.Reportf(lc.Args[0].Pos(),
				"label key on an mc_%s_* series must be a compile-time constant string from the bounded label set", ns)
			continue
		}
		key := constant.StringVal(kv.Value)
		if !allowed[key] {
			keys := make([]string, 0, len(allowed))
			for k := range allowed {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pass.Reportf(lc.Args[0].Pos(),
				"label key %q is outside the bounded mc_%s_* label set (allowed: %s); new dashboard dimensions must be added to pathScopedLabelKeys deliberately", key, ns, strings.Join(keys, ", "))
		}
	}
}
