// Package linttest is the golden-file test harness for the mclint
// analyzer suite, shaped after golang.org/x/tools/go/analysis/
// analysistest but standard-library only.
//
// A fixture is one directory holding one package of .go files.
// Expected diagnostics are declared inline:
//
//	keys = append(keys, k) // want "append inside a map range"
//
// Each `// want "substr"` comment asserts that the analyzer under test
// reports, on that line, a diagnostic whose message contains substr
// (several quoted substrings assert several diagnostics). Lines
// without a want comment assert the absence of diagnostics — so every
// fixture doubles as its own clean counterexample, and the harness
// fails on both missed and surplus findings.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"matchcatcher/internal/lint"
)

// wantRE matches one quoted expectation inside a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture package in dir, runs the analyzer over it, and
// compares the resulting findings (after //lint:allow resolution)
// against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) *lint.Result {
	t.Helper()
	res := runAnalyzers(t, []*lint.Analyzer{a}, dir)

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	fset, files := parseFixture(t, dir)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := indexWant(text)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx:], -1) {
					s, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s: bad want string %q: %v", pos, m[1], err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], s)
				}
			}
		}
	}

	for _, f := range res.Active() {
		k := key{f.Pos.Filename, f.Pos.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	var leftover []string
	for k, ws := range wants {
		for _, w := range ws {
			leftover = append(leftover, fmt.Sprintf("%s:%d: missing diagnostic matching %q", k.file, k.line, w))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
	return res
}

// RunAll loads the fixture package in dir and runs the full analyzer
// suite over it, returning the raw result without want matching — for
// tests that assert on suppression accounting rather than positions.
func RunAll(t *testing.T, dir string) *lint.Result {
	t.Helper()
	return runAnalyzers(t, lint.All(), dir)
}

func runAnalyzers(t *testing.T, analyzers []*lint.Analyzer, dir string) *lint.Result {
	t.Helper()
	pkg := loadFixture(t, dir)
	res, err := lint.Run(analyzers, []*lint.Package{pkg})
	if err != nil {
		t.Fatalf("lint.Run(%s): %v", dir, err)
	}
	return res
}

// indexWant finds the start of a `want` clause inside a comment.
func indexWant(text string) int {
	re := regexp.MustCompile(`//\s*want\s+"`)
	loc := re.FindStringIndex(text)
	if loc == nil {
		return -1
	}
	return loc[0]
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// parseFixture parses every .go file in dir into one package's files.
func parseFixture(t *testing.T, dir string) (*token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s holds no .go files", dir)
	}
	return fset, files
}

// loadFixture parses and type-checks the fixture package in dir. Its
// imports (stdlib and matchcatcher/...) are resolved through compiler
// export data obtained from the enclosing module, so fixtures may
// import the real telemetry package even though testdata trees are
// invisible to the go tool.
func loadFixture(t *testing.T, dir string) *lint.Package {
	t.Helper()
	fset, files := parseFixture(t, dir)

	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			imports = append(imports, p)
		}
	}
	sort.Strings(imports)

	root := moduleRoot(t)
	exports, err := lint.ExportData(root, imports...)
	if err != nil {
		t.Fatalf("export data for fixture %s: %v", dir, err)
	}

	info := lint.NewInfo()
	conf := types.Config{Importer: lint.ExportImporter(fset, exports)}
	importPath := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &lint.Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
