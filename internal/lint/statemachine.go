package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StateMachineAnalyzer keeps annotated state types honest. A type
// declared with `//mc:statemachine` models a lifecycle whose legal
// transitions live in one place — functions annotated
// `//mc:statetransition`. The analyzer reports
//
//   - any assignment to a struct field of the state type outside a
//     transition function (scattered `sess.st = X` writes are how
//     lifecycle invariants rot), and
//   - any switch over a value of the state type that lacks a default
//     clause and does not cover every declared constant of the type —
//     adding a new state must fail the build-adjacent lint, not fall
//     through silently.
//
// Local variables of the type are not restricted: only the durable
// field writes define the machine's actual state.
var StateMachineAnalyzer = &Analyzer{
	Name: "statemachine",
	Doc:  "//mc:statemachine types advance only inside //mc:statetransition functions, and switches over them are exhaustive",
	Run:  runStateMachine,
}

func runStateMachine(pass *Pass) error {
	tracked := collectStateTypes(pass)
	if len(tracked) == 0 {
		return nil
	}
	constants := collectStateConsts(pass, tracked)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			_, isTransition := mcDirective(fd.Doc, "statetransition")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if !isTransition {
						checkStateWrite(pass, tracked, n)
					}
				case *ast.CompositeLit:
					if !isTransition {
						checkStateLit(pass, tracked, n)
					}
				case *ast.SwitchStmt:
					checkExhaustive(pass, tracked, constants, n)
				}
				return true
			})
		}
	}
	return nil
}

// collectStateTypes maps //mc:statemachine-annotated named types to
// their names.
func collectStateTypes(pass *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			_, onDecl := mcDirective(gd.Doc, "statemachine")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, onSpec := mcDirective(ts.Doc, "statemachine")
				if !onDecl && !onSpec {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// collectStateConsts gathers the package-scope constants of each tracked
// type, in source order, keyed by the type object.
func collectStateConsts(pass *Pass, tracked map[types.Object]bool) map[types.Object][]*types.Const {
	out := make(map[types.Object][]*types.Const)
	scope := pass.Pkg.Scope()
	var names []string
	for _, name := range scope.Names() {
		names = append(names, name)
	}
	sort.Strings(names)
	var consts []*types.Const
	for _, name := range names {
		if c, ok := scope.Lookup(name).(*types.Const); ok {
			consts = append(consts, c)
		}
	}
	// Re-sort by declaration position so diagnostics list missing
	// states in lifecycle order, not alphabetical order.
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
	for _, c := range consts {
		n, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		if tracked[n.Obj()] {
			out[n.Obj()] = append(out[n.Obj()], c)
		}
	}
	return out
}

// stateTypeOf returns the tracked type object of t, or nil.
func stateTypeOf(tracked map[types.Object]bool, t types.Type) types.Object {
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if tracked[n.Obj()] {
		return n.Obj()
	}
	return nil
}

// checkStateWrite reports assignments to struct fields of a tracked
// state type outside transition functions.
func checkStateWrite(pass *Pass, tracked map[types.Object]bool, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			continue
		}
		if obj := stateTypeOf(tracked, s.Obj().Type()); obj != nil {
			pass.Reportf(lhs.Pos(),
				"%s field written outside a //mc:statetransition function; route lifecycle changes through the transition function",
				obj.Name())
		}
	}
}

// checkStateLit reports composite-literal initialization of a tracked
// state field to a non-zero state (building a struct mid-lifecycle
// bypasses the transition function just like a field write).
func checkStateLit(pass *Pass, tracked map[types.Object]bool, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[kv.Value]
		if !ok {
			continue
		}
		obj := stateTypeOf(tracked, tv.Type)
		if obj == nil {
			continue
		}
		// The zero state in a literal is indistinguishable from the
		// implicit zero value; only flag explicit non-zero states.
		if tv.Value != nil && tv.Value.String() == "0" {
			continue
		}
		pass.Reportf(kv.Pos(),
			"%s field initialized to a non-zero state in a composite literal outside a //mc:statetransition function",
			obj.Name())
	}
}

// checkExhaustive reports switches over a tracked state type that lack a
// default clause and miss declared constants.
func checkExhaustive(pass *Pass, tracked map[types.Object]bool, constants map[types.Object][]*types.Const, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	obj := stateTypeOf(tracked, tv.Type)
	if obj == nil {
		return
	}
	covered := make(map[string]bool)
	for _, cs := range sw.Body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: exhaustive by construction
		}
		for _, e := range cc.List {
			if c := identObj(pass.TypesInfo, e); c != nil {
				covered[c.Name()] = true
			}
		}
	}
	var missing []string
	for _, c := range constants[obj] {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s (add the cases or a default clause)",
			obj.Name(), strings.Join(missing, ", "))
	}
}
