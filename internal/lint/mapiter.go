package lint

import (
	"go/ast"
	"go/types"
)

// MapIterAnalyzer flags `for range` over a map whose body makes the
// iteration order observable: appending to a slice that outlives the
// loop (without a later sort of that slice), writing output, feeding a
// telemetry metric or trace, or returning a value derived from the
// loop variables (first-match-wins). Go randomizes map iteration order
// on purpose, so each of these breaks the same-seed → same-output
// guarantee; PR 1 fixed this exact bug class three times (top-k flush,
// MedRank universe, forest training order).
var MapIterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration whose order leaks into slices, output, metrics/traces, " +
		"or first-match-wins returns; iterate a sorted slice of keys instead",
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncMapRanges(pass, fn.Body)
			return true
		})
	}
	return nil
}

// checkFuncMapRanges inspects one function body for map-range loops
// with order-sensitive sinks.
func checkFuncMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || !isMap(tv.Type) {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	loopVars := rangeLoopVars(info, rng)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := appendTarget(info, n); obj != nil && obj.Pos() < rng.Pos() {
				if !sortedAfter(info, funcBody, rng, obj) {
					pass.Reportf(n.Pos(),
						"map iteration order leaks into %q: append inside a map range without a later sort; collect and sort keys first", obj.Name())
				}
				return true
			}
			if isOutputCall(info, n) {
				pass.Reportf(n.Pos(),
					"output written inside a map range: emission order follows randomized map order; iterate sorted keys")
				return true
			}
			if isTelemetryFeed(info, n) {
				pass.Reportf(n.Pos(),
					"telemetry fed inside a map range: metric/trace event order follows randomized map order; iterate sorted keys")
				return true
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if referencesAny(info, res, loopVars) {
					pass.Reportf(n.Pos(),
						"first-match-wins return inside a map range: which entry wins depends on randomized map order; iterate a sorted/ordered slice")
					return true
				}
			}
		}
		return true
	})
}

// rangeLoopVars returns the objects bound by the range statement's key
// and value variables.
func rangeLoopVars(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true // `for k = range m` with pre-declared k
			}
		}
	}
	return vars
}

// appendTarget returns the variable being grown when call is
// `append(v, ...)` whose result is assigned back to v, else nil.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return identObj(info, call.Args[0])
}

// isOutputCall reports whether call writes user-visible output:
// fmt.Print*/Fprint* or an io.Writer-style Write* method.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	if f == nil {
		return false
	}
	name := f.Name()
	if pkgPathOf(f) == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
		return false
	}
	if recvNamed(f) != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// telemetryRecorders are the telemetry method names that append to an
// ordered stream (metric samples, trace events, provenance steps).
// Pure accessors (Value, Name, clone, ...) are order-insensitive and
// deliberately not listed.
var telemetryRecorders = map[string]bool{
	"Inc":        true,
	"Add":        true,
	"Set":        true,
	"Observe":    true,
	"Event":      true,
	"SetAttr":    true,
	"SetAttrInt": true,
}

// isTelemetryFeed reports whether call records a metric observation or
// trace event: a recording method on a type declared in the telemetry
// package, or the same-named telemetry package-level functions.
func isTelemetryFeed(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	if f == nil || !telemetryRecorders[f.Name()] {
		return false
	}
	if n := recvNamed(f); n != nil {
		return isTelemetryPkg(pkgPathOf(n.Obj()))
	}
	return isTelemetryPkg(pkgPathOf(f))
}

// sortedAfter reports whether, lexically after the range loop inside
// the same function, obj is passed to a sort call (sort.* or slices.*),
// which launders the nondeterministic append order.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := calleeOf(info, call)
		if f == nil {
			return true
		}
		if p := pkgPathOf(f); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if referencesAny(info, arg, map[types.Object]bool{obj: true}) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// referencesAny reports whether expression e mentions any of the given
// objects.
func referencesAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
