package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic resolved against the package's
// suppression comments.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	Reason     string // suppression reason, when Suppressed
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
	if f.Suppressed {
		s += " (suppressed: " + f.Reason + ")"
	}
	return s
}

// A Result aggregates the findings of a run across packages.
type Result struct {
	Findings []Finding // deterministic order: file, line, column, analyzer
}

// Active returns the findings that were not suppressed.
func (r *Result) Active() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Suppressed returns the findings silenced by //lint:allow directives.
func (r *Result) Suppressed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// CountByAnalyzer returns (active, suppressed) counts keyed by analyzer
// name, including zero entries for every analyzer in the run set so
// summaries are stable.
func (r *Result) CountByAnalyzer(analyzers []*Analyzer) (active, suppressed map[string]int) {
	active = make(map[string]int, len(analyzers))
	suppressed = make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = 0
		suppressed[a.Name] = 0
	}
	for _, f := range r.Findings {
		if f.Suppressed {
			suppressed[f.Analyzer]++
		} else {
			active[f.Analyzer]++
		}
	}
	return active, suppressed
}

// Run executes every analyzer over every package and resolves
// suppression comments. Analyzer errors (not diagnostics) abort the
// run.
//
// Unused //lint:allow directives are reported as diagnostics of the
// pseudo-analyzer "lint" so stale suppressions cannot accumulate. A
// directive is only judged stale when its analyzer actually ran: under
// -only filtering the other analyzers' directives are unverifiable,
// not stale, and flagging them would make every restricted run fail.
func Run(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	res := &Result{}
	facts := NewFacts()
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		var raw []struct {
			analyzer string
			diag     Diagnostic
		}
		report := func(name string) func(Diagnostic) {
			return func(d Diagnostic) {
				raw = append(raw, struct {
					analyzer string
					diag     Diagnostic
				}{name, d})
			}
		}

		allows := collectAllows(pkg.Fset, pkg.Syntax, report("lint"))

		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Escapes:   pkg.Escapes,
				Facts:     facts,
				Report:    report(a.Name),
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}

		for _, r := range raw {
			pos := pkg.Fset.Position(r.diag.Pos)
			f := Finding{Analyzer: r.analyzer, Pos: pos, Message: r.diag.Message}
			for _, d := range allows {
				if d.matches(r.analyzer, pos) {
					f.Suppressed = true
					f.Reason = d.Reason
					d.used = true
					break
				}
			}
			res.Findings = append(res.Findings, f)
		}

		for _, d := range allows {
			if !d.used && ran[d.Analyzer] {
				pos := pkg.Fset.Position(d.Pos)
				res.Findings = append(res.Findings, Finding{
					Analyzer: "lint",
					Pos:      pos,
					Message:  fmt.Sprintf("unused //lint:allow %s directive (nothing to suppress)", d.Analyzer),
				})
			}
		}
	}

	sort.SliceStable(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}
