package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Escapes holds the compiler escape diagnostics for this package's
	// files, when the caller attached them (see AttachEscapes). Nil
	// means the run has no escape data; hotalloc then performs only its
	// syntactic checks.
	Escapes []EscapeDiag
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load expands patterns with the go tool (run in dir), parses the
// matched packages, and type-checks them against compiler export data.
// It works fully offline: `go list -export` compiles against the local
// build cache and never touches the network for an up-to-date module.
//
// Test files are not loaded; the invariants mclint guards are
// production-code invariants (tests routinely use unseeded randomness
// and exact comparisons on purpose).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// cgo off: keeps file sets identical across dev machines and CI,
	// and avoids needing a C toolchain for export data.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Name = t.Name
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from its file list.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		GoFiles:    goFiles,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewInfo allocates the full types.Info map set the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiler export data files, as produced by
// `go list -export` (the exports map is importPath -> export file).
// Packages resolved once are cached, so diamond imports share one
// *types.Package identity.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// ExportData runs `go list -export -deps` over the given import paths
// (from dir) and returns the importPath -> export-file map. It is the
// building block linttest uses to type-check fixture packages that live
// outside any module (testdata trees).
func ExportData(dir string, importPaths ...string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Error", "--",
	}, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list -export %v: %v\n%s", importPaths, err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
