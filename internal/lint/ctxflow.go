package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces request-context plumbing. Cancellation is
// how the serving layer sheds abandoned work: a joined session whose
// client hung up must stop probing, and every log line must carry the
// request's trace attributes. Both break silently when code
// manufactures a fresh root context instead of threading the incoming
// one, so the analyzer reports
//
//  1. any context.Background() / context.TODO() call inside the serve
//     package — request-scoped code there always has r.Context() or the
//     session context in reach, and
//  2. in any package, a composite literal of an Options-style struct
//     (one with a `Ctx context.Context` field) built inside a function
//     that receives a context (directly or via *http.Request) but does
//     not set Ctx — the literal silently defaults the pipeline to
//     context.Background() while a live request context was available.
//
// A later `v.Ctx = ...` assignment on the same variable counts as
// setting it, so the two-step construction idiom stays legal.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "request-scoped code must thread the incoming context: no fresh root contexts in serve, no Options literals that drop a live request context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	inServe := isServePkg(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := funcHasContext(pass.TypesInfo, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if inServe {
						checkRootContext(pass, n)
					}
				case *ast.CompositeLit:
					if hasCtx {
						checkDroppedCtx(pass, fd, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkRootContext reports context.Background() / context.TODO() calls.
func checkRootContext(pass *Pass, call *ast.CallExpr) {
	callee := calleeOf(pass.TypesInfo, call)
	if callee == nil || pkgPathOf(callee) != "context" {
		return
	}
	switch callee.Name() {
	case "Background", "TODO":
		pass.Reportf(call.Pos(),
			"context.%s() in the serve layer severs request cancellation; thread the incoming request or session context instead",
			callee.Name())
	}
}

// funcHasContext reports whether fd receives a context.Context (or a
// *http.Request, whose Context() is one hop away) as a parameter.
func funcHasContext(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// checkDroppedCtx reports a struct literal with a context.Context field
// named Ctx that the literal leaves unset while the enclosing function
// has a live context to thread.
func checkDroppedCtx(pass *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	named, _ := tv.Type.(*types.Named)
	ctxField := -1
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Ctx" && isContextType(f.Type()) {
			ctxField = i
			break
		}
	}
	if ctxField < 0 {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: assume all fields set.
			return
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Ctx" {
			return
		}
	}
	if ctxAssignedLater(pass.TypesInfo, fd, lit) {
		return
	}
	typeName := "struct"
	if named != nil {
		typeName = named.Obj().Name()
	}
	pass.Reportf(lit.Pos(),
		"%s literal omits Ctx while %s has a request context in scope; the pipeline silently falls back to context.Background()",
		typeName, fd.Name.Name)
}

// ctxAssignedLater reports whether the literal is assigned to a variable
// whose Ctx field is later set (`opts := Options{...}; opts.Ctx = ctx`).
func ctxAssignedLater(info *types.Info, fd *ast.FuncDecl, lit *ast.CompositeLit) bool {
	// Find the variable the literal initializes, if any.
	var target types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || target != nil {
			return target == nil
		}
		for i, rhs := range as.Rhs {
			inner := ast.Unparen(rhs)
			if ue, ok := inner.(*ast.UnaryExpr); ok {
				inner = ast.Unparen(ue.X)
			}
			if inner == lit && i < len(as.Lhs) {
				target = identObj(info, as.Lhs[i])
			}
		}
		return target == nil
	})
	if target == nil {
		return false
	}
	set := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || set {
			return !set
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Ctx" {
				continue
			}
			if identObj(info, sel.X) == target {
				set = true
			}
		}
		return !set
	})
	return set
}
