package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// The hotalloc analyzer's escape-analysis feed. The compiler already
// knows exactly which expressions allocate — `go build -gcflags=-m`
// prints one diagnostic per escaping value — so instead of re-deriving
// escape analysis from the AST we parse the compiler's own verdicts and
// anchor them to source positions, the same spirit as the loader's use
// of `go list -export` compiler metadata. Go caches and replays compiler
// diagnostics with the build artifacts, so repeated runs are warm-cache
// fast and fully offline.

// An EscapeDiag is one compiler escape diagnostic ("escapes to heap" /
// "moved to heap") at a source position.
type EscapeDiag struct {
	File    string // absolute path
	Line    int
	Col     int
	Message string
}

// LoadEscapes compiles the given package patterns with -gcflags=-m (run
// in dir) and returns the heap-allocation diagnostics. Inlining chatter
// and leaking-param notes are dropped: only diagnostics that name an
// actual heap allocation ("escapes to heap", "moved to heap") survive,
// which is precisely the set hotalloc's zero-alloc contract forbids.
func LoadEscapes(dir string, patterns ...string) ([]EscapeDiag, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %v", dir, err)
	}
	args := append([]string{"build", "-gcflags=-m", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	// The diagnostics arrive on stderr, mixed with "# pkg" headers.
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m %v: %v\n%s", patterns, err, stderr.String())
	}
	return parseEscapes(stderr.String(), absDir), nil
}

// parseEscapes extracts heap-allocation diagnostics from -gcflags=-m
// output. Lines look like
//
//	# matchcatcher/internal/ssjoin
//	internal/ssjoin/topk.go:97:13: make([]ScoredPair, len(h.items)) escapes to heap
//
// with file paths relative to the directory the build ran in (absolute
// for packages outside it, e.g. GOROOT generics instantiations).
func parseEscapes(out, dir string) []EscapeDiag {
	var diags []EscapeDiag
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		rest := line
		var parts [3]string
		ok := true
		for i := 0; i < 3; i++ {
			idx := strings.Index(rest, ":")
			if idx < 0 {
				ok = false
				break
			}
			parts[i] = rest[:idx]
			rest = rest[idx+1:]
		}
		if !ok || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		diags = append(diags, EscapeDiag{
			File: file, Line: ln, Col: col,
			Message: strings.TrimSpace(rest),
		})
	}
	return diags
}

// AttachEscapes distributes escape diagnostics onto the packages whose
// files they belong to. Diagnostics for files outside the package set
// (dependencies, GOROOT) are dropped.
func AttachEscapes(pkgs []*Package, diags []EscapeDiag) {
	byFile := make(map[string]*Package)
	for _, pkg := range pkgs {
		for _, name := range pkg.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(pkg.Dir, name)
			}
			byFile[path] = pkg
		}
	}
	for _, d := range diags {
		if pkg := byFile[d.File]; pkg != nil {
			pkg.Escapes = append(pkg.Escapes, d)
		}
	}
}
