// Package config implements the Config Generator of Section 3 of the
// paper: it classifies attributes, selects the promising set T, and builds
// the config tree that the joint top-k string-similarity joins traverse.
// Each config is a subset of attributes; tuples are compared on the
// concatenation of a config's attribute values.
package config

import (
	"strconv"
	"strings"

	"matchcatcher/internal/table"
)

// AttrClass is the rule-based classification of an attribute.
type AttrClass int

// The attribute classes of Section 3.2.
const (
	ClassString AttrClass = iota
	ClassNumeric
	ClassCategorical
	ClassBoolean
)

// String returns the class name.
func (c AttrClass) String() string {
	switch c {
	case ClassString:
		return "string"
	case ClassNumeric:
		return "numeric"
	case ClassCategorical:
		return "categorical"
	case ClassBoolean:
		return "boolean"
	}
	return "unknown"
}

var boolTokens = map[string]bool{
	"true": true, "false": true, "t": true, "f": true,
	"yes": true, "no": true, "y": true, "n": true, "0": true, "1": true,
}

// classifyColumn applies the rule-based classifier to one attribute of one
// table: numeric if at least 90% of non-missing values parse as numbers,
// boolean if every value is a boolean token, categorical if values are
// short, repeat, and number at most maxUnique distinct, string otherwise.
func classifyColumn(t *table.Table, attr string, maxUnique int) AttrClass {
	j := t.AttrIndex(attr)
	if j < 0 {
		return ClassString
	}
	nonMissing, numeric, totalTokens := 0, 0, 0
	allBool := true
	uniq := make(map[string]struct{})
	for i := 0; i < t.NumRows(); i++ {
		v := t.Value(i, j)
		if v == table.Missing {
			continue
		}
		nonMissing++
		norm := strings.ToLower(strings.TrimSpace(v))
		uniq[norm] = struct{}{}
		totalTokens += len(strings.Fields(norm))
		if _, err := strconv.ParseFloat(norm, 64); err == nil {
			numeric++
		}
		if !boolTokens[norm] {
			allBool = false
		}
	}
	if nonMissing == 0 {
		return ClassString
	}
	if allBool {
		return ClassBoolean
	}
	if float64(numeric) >= 0.9*float64(nonMissing) {
		return ClassNumeric
	}
	avgTokens := float64(totalTokens) / float64(nonMissing)
	if len(uniq) <= maxUnique && len(uniq) < nonMissing && avgTokens <= 3 {
		return ClassCategorical
	}
	return ClassString
}

// Classify classifies an attribute across both tables, taking the "wider"
// class when they disagree (string > categorical > boolean; numeric wins
// only if both sides are numeric, since a column that is numeric in one
// table but texty in the other should be compared as text).
func Classify(a, b *table.Table, attr string, maxUnique int) AttrClass {
	ca := classifyColumn(a, attr, maxUnique)
	cb := classifyColumn(b, attr, maxUnique)
	if ca == cb {
		return ca
	}
	if ca == ClassString || cb == ClassString {
		return ClassString
	}
	if ca == ClassNumeric || cb == ClassNumeric {
		// numeric vs categorical/boolean: treat as categorical.
		return ClassCategorical
	}
	// categorical vs boolean.
	return ClassCategorical
}

// valueSetJaccard computes the Jaccard similarity of the sets of distinct
// normalized non-missing values of attr in the two tables (the Section 3.2
// test that drops categorical attributes whose appearances differ, like
// Gender = {Male, Female} vs {M, F, U}).
func valueSetJaccard(a, b *table.Table, attr string) float64 {
	setOf := func(t *table.Table) map[string]struct{} {
		j := t.AttrIndex(attr)
		s := make(map[string]struct{})
		if j < 0 {
			return s
		}
		for i := 0; i < t.NumRows(); i++ {
			if v := t.Value(i, j); v != table.Missing {
				s[strings.ToLower(strings.TrimSpace(v))] = struct{}{}
			}
		}
		return s
	}
	sa, sb := setOf(a), setOf(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	for v := range sa {
		if _, ok := sb[v]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}
