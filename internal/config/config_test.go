package config

import (
	"math/bits"
	"strings"
	"testing"

	"matchcatcher/internal/datagen"
	"matchcatcher/internal/table"
)

func mkTable(t *testing.T, name string, attrs []string, rows [][]string) *table.Table {
	t.Helper()
	tb := table.MustNew(name, attrs)
	for _, r := range rows {
		tb.MustAppend(r)
	}
	return tb
}

func TestClassify(t *testing.T) {
	a := mkTable(t, "A", []string{"name", "price", "gender", "active", "year"}, [][]string{
		{"dave smith lives here", "10.5", "Male", "true", "1999"},
		{"joe wilson somewhere else", "20", "Female", "false", "2001"},
		{"ann brown another place", "30.25", "Male", "yes", "2003"},
	})
	cases := map[string]AttrClass{
		"name":   ClassString,
		"price":  ClassNumeric,
		"gender": ClassCategorical,
		"active": ClassBoolean,
		"year":   ClassNumeric,
	}
	for attr, want := range cases {
		if got := classifyColumn(a, attr, 30); got != want {
			t.Errorf("classify(%s) = %v, want %v", attr, got, want)
		}
	}
	if got := classifyColumn(a, "name", 30).String(); got != "string" {
		t.Errorf("String() = %q", got)
	}
}

func TestClassifyDisagreement(t *testing.T) {
	a := mkTable(t, "A", []string{"x"}, [][]string{{"12"}, {"15"}})
	b := mkTable(t, "B", []string{"x"}, [][]string{{"twelve or so words that vary a lot across the rows"}, {"some other very long sentence appears right here now"}})
	if got := Classify(a, b, "x", 30); got != ClassString {
		t.Errorf("numeric-vs-string should widen to string, got %v", got)
	}
}

func TestValueSetJaccard(t *testing.T) {
	a := mkTable(t, "A", []string{"g"}, [][]string{{"Male"}, {"Female"}, {""}})
	b := mkTable(t, "B", []string{"g"}, [][]string{{"M"}, {"F"}, {"U"}})
	if got := valueSetJaccard(a, b, "g"); got != 0 {
		t.Errorf("disjoint sets jaccard = %g", got)
	}
	b2 := mkTable(t, "B2", []string{"g"}, [][]string{{"male"}, {"female"}})
	if got := valueSetJaccard(a, b2, "g"); got != 1 {
		t.Errorf("same sets (case-insensitive) jaccard = %g", got)
	}
}

// fourAttrTables builds tables with attributes n, c, s, d mirroring the
// paper's Figure 3 example: d is a long description, s (state) has few
// unique values, n (name) and c (city) are informative.
func fourAttrTables(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	attrs := []string{"n", "c", "s", "d"}
	long := strings.Repeat("lorem ipsum dolor sit amet consectetur adipiscing elit sed ", 2)
	rowsA := [][]string{
		{"dave smith", "atlanta", "ga", long + "alpha"},
		{"joe wilson", "new york", "ny", long + "beta"},
		{"ann brown", "chicago", "il", long + "gamma"},
		{"bob stone", "austin", "tx", long + "delta"},
		{"carol reyes", "boston", "ma", long + "epsilon"},
		{"dan green", "denver", "ga", long + "zeta"},
	}
	rowsB := [][]string{
		{"david smith", "atlanta", "ga", long + "one"},
		{"joseph wilson", "new york", "ny", long + "two"},
		{"anne brown", "chicago", "il", long + "three"},
		{"robert stone", "austin", "tx", long + "four"},
		{"carole reyes", "boston", "ma", long + "five"},
		{"daniel green", "denver", "tx", long + "six"},
	}
	return mkTable(t, "A", attrs, rowsA), mkTable(t, "B", attrs, rowsB)
}

func TestGenerateTreeShape(t *testing.T) {
	a, b := fourAttrTables(t)
	r, err := Generate(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Promising) != 4 {
		t.Fatalf("promising = %v", r.Promising)
	}
	configs := r.Configs()
	// |T|(|T|+1)/2 = 10 configs for |T| = 4.
	if len(configs) != 10 {
		t.Fatalf("config count = %d, want 10; configs: %v", len(configs), configs)
	}
	// Exactly one config per size at the expanded path, and sizes
	// 4,3,3,3,3,2,2,2,1... breadth-first: root(4), 4x size3, 3x size2, 2x size1.
	sizeCount := map[int]int{}
	for _, m := range configs {
		sizeCount[m.Size()]++
	}
	if sizeCount[4] != 1 || sizeCount[3] != 4 || sizeCount[2] != 3 || sizeCount[1] != 2 {
		t.Errorf("size histogram = %v", sizeCount)
	}
	// All configs distinct.
	seen := map[Mask]bool{}
	for _, m := range configs {
		if seen[m] {
			t.Errorf("duplicate config %s", r.String(m))
		}
		seen[m] = true
	}
	// Root is the full set.
	if r.Root.Mask.Size() != 4 {
		t.Errorf("root = %s", r.String(r.Root.Mask))
	}
}

func TestLongAttrExcludedEarly(t *testing.T) {
	a, b := fourAttrTables(t)
	r, err := Generate(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LongAttrs) == 0 || r.LongAttrs[0] != "d" {
		t.Fatalf("long attrs = %v, want d detected", r.LongAttrs)
	}
	// With long handling, the expanded child of the root must exclude d:
	// the size-3 config that is expanded (has children) lacks d.
	dBit := -1
	for i, attr := range r.Promising {
		if attr == "d" {
			dBit = i
		}
	}
	var expanded *Node
	for _, ch := range r.Root.Children {
		if len(ch.Children) > 0 {
			expanded = ch
		}
	}
	if expanded == nil {
		t.Fatal("no expanded child")
	}
	if expanded.Mask.Has(dBit) {
		t.Errorf("expanded child %s still contains long attribute d", r.String(expanded.Mask))
	}
	// Ablated: with DisableLongAttr the expanded child excludes the
	// lowest-e-score attribute instead (s, which has few unique values).
	r2, err := Generate(a, b, Options{DisableLongAttr: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.LongAttrs) != 0 {
		t.Errorf("ablated run recorded long attrs %v", r2.LongAttrs)
	}
	var expanded2 *Node
	for _, ch := range r2.Root.Children {
		if len(ch.Children) > 0 {
			expanded2 = ch
		}
	}
	sBit := -1
	for i, attr := range r2.Promising {
		if attr == "s" {
			sBit = i
		}
	}
	if expanded2.Mask.Has(sBit) {
		t.Errorf("default expansion should drop lowest-e-score attr s, got %s", r2.String(expanded2.Mask))
	}
}

func TestEScoreOrdering(t *testing.T) {
	a, b := fourAttrTables(t)
	r, err := Generate(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// s (2-3 unique values over 6 rows) must have the lowest e-score
	// among n, c, s.
	if !(r.EScores["s"] < r.EScores["n"] && r.EScores["s"] < r.EScores["c"]) {
		t.Errorf("e-scores = %v", r.EScores)
	}
}

func TestGenerateDropsNumericAndDissimilarCategorical(t *testing.T) {
	attrs := []string{"name", "price", "gender"}
	a := mkTable(t, "A", attrs, [][]string{
		{"dave smith", "10", "Male"},
		{"joe wilson", "20", "Female"},
		{"ann brown", "30", "Female"},
		{"bob stone", "40", "Male"},
	})
	b := mkTable(t, "B", attrs, [][]string{
		{"david smith", "12", "M"},
		{"joseph wilson", "22", "F"},
		{"anne brown", "32", "F"},
		{"robert stone", "42", "M"},
	})
	r, err := Generate(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Promising) != 1 || r.Promising[0] != "name" {
		t.Fatalf("promising = %v", r.Promising)
	}
	if r.Dropped["price"] != "numeric" {
		t.Errorf("price drop reason = %q", r.Dropped["price"])
	}
	if !strings.Contains(r.Dropped["gender"], "dissimilar") {
		t.Errorf("gender drop reason = %q", r.Dropped["gender"])
	}
	// Single-attribute tree: one config.
	if got := len(r.Configs()); got != 1 {
		t.Errorf("configs = %d, want 1", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	a := mkTable(t, "A", []string{"x"}, [][]string{{"1"}})
	b := mkTable(t, "B", []string{"y"}, [][]string{{"1"}})
	if _, err := Generate(a, b, Options{}); err == nil {
		t.Error("want error for disjoint schemas")
	}
	// Only numeric shared attributes -> nothing promising.
	c := mkTable(t, "C", []string{"x"}, [][]string{{"1"}, {"2"}})
	d := mkTable(t, "D", []string{"x"}, [][]string{{"3"}, {"4"}})
	if _, err := Generate(c, d, Options{}); err == nil {
		t.Error("want error when no attribute survives")
	}
}

func TestMaxPromisingTrims(t *testing.T) {
	attrs := []string{"a1", "a2", "a3", "a4", "a5"}
	rows := func(p string) [][]string {
		var out [][]string
		for i := 0; i < 6; i++ {
			row := make([]string, 5)
			for j := range row {
				row[j] = p + attrs[j] + string(rune('a'+i)) + " tail words"
			}
			out = append(out, row)
		}
		return out
	}
	a := mkTable(t, "A", attrs, rows("x"))
	b := mkTable(t, "B", attrs, rows("y"))
	r, err := Generate(a, b, Options{MaxPromising: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Promising) != 3 {
		t.Errorf("promising = %v", r.Promising)
	}
	if got := len(r.Configs()); got != 6 { // 3*4/2
		t.Errorf("configs = %d, want 6", got)
	}
}

func TestMaskOps(t *testing.T) {
	m := Mask(0b1011)
	if !m.Has(0) || m.Has(2) || m.Size() != 3 {
		t.Errorf("mask ops broken: %b", m)
	}
	if got := m.Without(1); got != 0b1001 {
		t.Errorf("Without = %b", got)
	}
	if bits.OnesCount64(uint64(m.Without(9))) != 3 {
		t.Error("Without of absent bit changed size")
	}
}

// TestGenerateOnRealProfiles smoke-tests the generator on every Table-1
// profile (small scales): it must produce a nonempty tree and place every
// promising attribute in the root config.
func TestGenerateOnRealProfiles(t *testing.T) {
	for _, p := range []datagen.Profile{
		datagen.AmazonGoogle().Scaled(0.15),
		datagen.ACMDBLP().Scaled(0.15),
		datagen.FodorsZagats(),
		datagen.Music1().Scaled(0.02),
	} {
		d := datagen.MustGenerate(p)
		r, err := Generate(d.A, d.B, Options{})
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if len(r.Promising) < 2 {
			t.Errorf("%s: promising = %v", p.Name, r.Promising)
		}
		n := len(r.Promising)
		if got, want := len(r.Configs()), n*(n+1)/2; got != want {
			t.Errorf("%s: %d configs, want %d", p.Name, got, want)
		}
		// Numeric attributes must never survive.
		for _, attr := range r.Promising {
			if r.Classes[attr] == ClassNumeric {
				t.Errorf("%s: numeric attribute %s in T", p.Name, attr)
			}
		}
	}
}

func TestTreeString(t *testing.T) {
	a, b := fourAttrTables(t)
	r, err := Generate(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.TreeString()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 10 { // |T|(|T|+1)/2 nodes
		t.Fatalf("tree lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "{") || !strings.HasSuffix(lines[0], "*") {
		t.Errorf("root line = %q", lines[0])
	}
}
