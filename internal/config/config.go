package config

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"matchcatcher/internal/table"
)

// Mask is a bitmask over the promising attribute list T (bit i set means
// T[i] is in the config). Masks keep configs cheap to compare and let the
// SSJ's overlap-reuse database answer sub-config overlaps with popcounts.
type Mask uint64

// Has reports whether bit i is set.
func (m Mask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Without clears bit i.
func (m Mask) Without(i int) Mask { return m &^ (1 << uint(i)) }

// Size returns the number of attributes in the config.
func (m Mask) Size() int { return bits.OnesCount64(uint64(m)) }

// Node is one config in the config tree. Children are the sub-configs
// generated when this node was expanded (only one node per level is
// expanded, per Section 3.2).
type Node struct {
	Mask     Mask
	Parent   *Node
	Children []*Node
}

// Options tunes the config generator. Zero values select the paper's
// defaults.
type Options struct {
	// CategoricalMaxUnique bounds the distinct-value count of categorical
	// attributes (default 30).
	CategoricalMaxUnique int
	// MinValueJaccard drops categorical/boolean attributes whose value
	// sets across the tables have Jaccard below it (default 0.3).
	MinValueJaccard float64
	// Delta is the δ of Condition 1 / Theorem 3.5 (default 0.2).
	Delta float64
	// DisableLongAttr turns off FindLongAttr, for the §6.5 ablation.
	DisableLongAttr bool
	// MaxPromising caps |T| (default 10; the config tree holds
	// |T|(|T|+1)/2 configs, so very wide schemas are trimmed to the
	// highest-e-score attributes).
	MaxPromising int
	// CuratedAttrs, when non-empty, is a manually curated promising set T
	// (Section 3.2 notes users may curate the schema instead of relying
	// on the classifier). Attributes must exist in both tables; the
	// classifier and drop rules are bypassed.
	CuratedAttrs []string
}

func (o Options) withDefaults() Options {
	if o.CategoricalMaxUnique == 0 {
		o.CategoricalMaxUnique = 30
	}
	if o.MinValueJaccard == 0 {
		o.MinValueJaccard = 0.3
	}
	if o.Delta == 0 {
		o.Delta = 0.2
	}
	if o.MaxPromising == 0 {
		o.MaxPromising = 10
	}
	return o
}

// Result is the config generator's output.
type Result struct {
	// Promising is T, the promising attributes; bit i of every Mask
	// refers to Promising[i].
	Promising []string
	// Root is the config tree's root (the config equal to T).
	Root *Node
	// Classes records each input attribute's classification.
	Classes map[string]AttrClass
	// Dropped records why attributes were excluded from T.
	Dropped map[string]string
	// EScores holds e(f) (Definition 3.1) for each promising attribute.
	EScores map[string]float64
	// LongAttrs lists attributes FindLongAttr judged too long (in the
	// order they were detected).
	LongAttrs []string
	// avgLen[t][i] is the average token length of Promising[i] in table t
	// (0 = A, 1 = B), kept for the R2 approximation.
	avgLen [2][]float64
	delta  float64
}

// Configs returns all configs in breadth-first order, the order the joint
// top-k SSJ processes them (Section 4.2).
func (r *Result) Configs() []Mask {
	var out []Mask
	queue := []*Node{r.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n.Mask)
		queue = append(queue, n.Children...)
	}
	return out
}

// Nodes returns all tree nodes in breadth-first order.
func (r *Result) Nodes() []*Node {
	var out []*Node
	queue := []*Node{r.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		queue = append(queue, n.Children...)
	}
	return out
}

// AttrsOf renders a mask as attribute names.
func (r *Result) AttrsOf(m Mask) []string {
	var out []string
	for i, a := range r.Promising {
		if m.Has(i) {
			out = append(out, a)
		}
	}
	return out
}

// String renders a mask like "{name,city}".
func (r *Result) String(m Mask) string {
	return "{" + strings.Join(r.AttrsOf(m), ",") + "}"
}

// Generate runs the full Section 3 pipeline: classify attributes, select
// the promising set T, compute e-scores, and build the config tree with
// long-attribute handling.
func Generate(a, b *table.Table, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	shared := sharedAttrs(a, b)
	if len(shared) == 0 {
		return nil, fmt.Errorf("config: tables %s and %s share no attributes", a.Name(), b.Name())
	}
	r := &Result{
		Classes: map[string]AttrClass{},
		Dropped: map[string]string{},
		EScores: map[string]float64{},
		delta:   opt.Delta,
	}
	if len(opt.CuratedAttrs) > 0 {
		for _, attr := range opt.CuratedAttrs {
			if !a.HasAttr(attr) || !b.HasAttr(attr) {
				return nil, fmt.Errorf("config: curated attribute %q is not in both schemas", attr)
			}
			r.Promising = append(r.Promising, attr)
			r.Classes[attr] = Classify(a, b, attr, opt.CategoricalMaxUnique)
			r.EScores[attr] = a.AttrStatsFor(attr).EScoreComponent() * b.AttrStatsFor(attr).EScoreComponent()
		}
		if len(r.Promising) > opt.MaxPromising {
			return nil, fmt.Errorf("config: %d curated attributes exceed MaxPromising %d", len(r.Promising), opt.MaxPromising)
		}
		r.fillAvgLens(a, b)
		r.buildTree(opt)
		return r, nil
	}
	// Select the most promising attributes T.
	type cand struct {
		attr   string
		escore float64
	}
	var cands []cand
	for _, attr := range shared {
		cl := Classify(a, b, attr, opt.CategoricalMaxUnique)
		r.Classes[attr] = cl
		switch cl {
		case ClassNumeric:
			r.Dropped[attr] = "numeric"
			continue
		case ClassCategorical, ClassBoolean:
			if j := valueSetJaccard(a, b, attr); j < opt.MinValueJaccard {
				r.Dropped[attr] = fmt.Sprintf("%s with dissimilar value sets (jaccard %.2f)", cl, j)
				continue
			}
		}
		e := a.AttrStatsFor(attr).EScoreComponent() * b.AttrStatsFor(attr).EScoreComponent()
		cands = append(cands, cand{attr, e})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("config: no promising attributes survive classification")
	}
	// Keep at most MaxPromising attributes, by e-score; preserve schema
	// order within T for readable reports.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].escore > cands[j].escore })
	if len(cands) > opt.MaxPromising {
		for _, c := range cands[opt.MaxPromising:] {
			r.Dropped[c.attr] = "trimmed: schema wider than MaxPromising"
		}
		cands = cands[:opt.MaxPromising]
	}
	keep := map[string]bool{}
	for _, c := range cands {
		keep[c.attr] = true
	}
	for _, attr := range shared {
		if keep[attr] {
			r.Promising = append(r.Promising, attr)
		}
	}
	for _, c := range cands {
		r.EScores[c.attr] = c.escore
	}
	r.fillAvgLens(a, b)
	r.buildTree(opt)
	return r, nil
}

// fillAvgLens records average token lengths for the R2 approximation.
func (r *Result) fillAvgLens(a, b *table.Table) {
	for i, t := range []*table.Table{a, b} {
		r.avgLen[i] = make([]float64, len(r.Promising))
		for j, attr := range r.Promising {
			st := t.AttrStatsFor(attr)
			// Mean over all tuples; missing contributes zero length.
			r.avgLen[i][j] = st.AvgTokenLen * st.NonMissingRatio
		}
	}
}

func sharedAttrs(a, b *table.Table) []string {
	var out []string
	for _, attr := range a.Attrs() {
		if b.HasAttr(attr) {
			out = append(out, attr)
		}
	}
	return out
}

// eScoreOf returns e(Promising[i]).
func (r *Result) eScoreOf(i int) float64 { return r.EScores[r.Promising[i]] }

// lowestEScoreAttr returns the in-config attribute index with the lowest
// e-score (ties broken by schema position for determinism).
func (r *Result) lowestEScoreAttr(m Mask) int {
	best, bestScore := -1, math.Inf(1)
	for i := range r.Promising {
		if !m.Has(i) {
			continue
		}
		if s := r.eScoreOf(i); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// buildTree generates the config tree top-down (Section 3.2): the root is
// T; each expansion produces every size-(k-1) sub-config as children, and
// exactly one child — the one without the excluded attribute — is expanded
// further. The excluded attribute is the long attribute when FindLongAttr
// detects one, else the attribute with the lowest e-score.
func (r *Result) buildTree(opt Options) {
	full := Mask(1)<<uint(len(r.Promising)) - 1
	r.Root = &Node{Mask: full}
	cur := r.Root
	for cur.Mask.Size() > 1 {
		for i := range r.Promising {
			if cur.Mask.Has(i) {
				cur.Children = append(cur.Children, &Node{Mask: cur.Mask.Without(i), Parent: cur})
			}
		}
		exclude := r.lowestEScoreAttr(cur.Mask)
		if !opt.DisableLongAttr {
			if f := r.findLongAttr(cur.Mask, exclude); f >= 0 {
				r.LongAttrs = append(r.LongAttrs, r.Promising[f])
				exclude = f
			}
		}
		next := cur.Mask.Without(exclude)
		for _, ch := range cur.Children {
			if ch.Mask == next {
				cur = ch
				break
			}
		}
	}
}

// findLongAttr implements the FindLongAttr procedure: given the current
// config and the default attribute s to exclude, it checks every other
// attribute f of the default next config q = cur \ {s}; f is judged too
// long when the R2 approximation holds for at least half of the configs in
// q's would-be default subtree that contain f. It returns the attribute
// index to exclude instead, or -1.
func (r *Result) findLongAttr(cur Mask, s int) int {
	q := cur.Without(s)
	if q.Size() < 2 {
		return -1
	}
	subtree := r.defaultSubtree(q)
	best, bestBeta := -1, -1.0
	for f := range r.Promising {
		if !q.Has(f) {
			continue
		}
		var inF []Mask
		for _, m := range subtree {
			if m.Has(f) {
				inF = append(inF, m)
			}
		}
		if len(inF) == 0 {
			continue
		}
		overwhelmed := 0
		beta := r.beta(f, q)
		for _, rm := range inF {
			if r.r2Holds(beta, q, rm) {
				overwhelmed++
			}
		}
		if overwhelmed*2 >= len(inF) && beta > bestBeta {
			best, bestBeta = f, beta
		}
	}
	return best
}

// defaultSubtree simulates default (e-score-only) generation from q and
// returns every config in the subtree rooted at q, q included.
func (r *Result) defaultSubtree(q Mask) []Mask {
	out := []Mask{q}
	cur := q
	for cur.Size() > 1 {
		for i := range r.Promising {
			if cur.Has(i) {
				out = append(out, cur.Without(i))
			}
		}
		cur = cur.Without(r.lowestEScoreAttr(cur))
	}
	return out
}

// beta approximates Theorem 3.5's length fraction:
// min(AL_f(A)/AL_q(A), AL_f(B)/AL_q(B)).
func (r *Result) beta(f int, q Mask) float64 {
	beta := math.Inf(1)
	for t := 0; t < 2; t++ {
		lq := r.avgConfigLen(t, q)
		if lq <= 0 {
			return 0
		}
		if v := r.avgLen[t][f] / lq; v < beta {
			beta = v
		}
	}
	return beta
}

func (r *Result) avgConfigLen(t int, q Mask) float64 {
	sum := 0.0
	for i := range r.Promising {
		if q.Has(i) {
			sum += r.avgLen[t][i]
		}
	}
	return sum
}

// r2Holds checks the R2 approximation of Theorem 3.5 for sub-config rm of
// q: beta >= 1 - ((|q|-1)/|q\rm|) * (δ/(1+δ)) * max(ALq(A),ALq(B)) / (ALq(A)+ALq(B)).
func (r *Result) r2Holds(beta float64, q, rm Mask) bool {
	removed := q.Size() - (q & rm).Size()
	if removed == 0 {
		return false
	}
	la, lb := r.avgConfigLen(0, q), r.avgConfigLen(1, q)
	if la+lb == 0 {
		return false
	}
	rhs := 1 - float64(q.Size()-1)/float64(removed)*(r.delta/(1+r.delta))*math.Max(la, lb)/(la+lb)
	return beta >= rhs
}

// TreeString renders the config tree, one node per line, children
// indented, the expanded path marked — a debugging aid for understanding
// which configs the joins will process.
func (r *Result) TreeString() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(r.String(n.Mask))
		if len(n.Children) > 0 {
			sb.WriteString(" *")
		}
		sb.WriteByte('\n')
		for _, ch := range n.Children {
			walk(ch, depth+1)
		}
	}
	walk(r.Root, 0)
	return sb.String()
}
