package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// formatValue renders a float the way the Prometheus text format expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders {k="v",...} or "" for an unlabeled series, with
// extra appended after the series' own labels.
func renderLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	n := 0
	for _, l := range append(append([]Label{}, labels...), extra...) {
		if n > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteString(`"`)
		n++
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeHelp escapes a HELP text for the exposition format: backslash
// and newline must be escaped (double quotes are fine in HELP).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by name then labels, with
// one HELP line (when registered via SetHelp) and one TYPE line per
// metric name. TestWritePrometheusGolden pins the exact bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	prevName := ""
	for _, s := range r.all() {
		if s.name != prevName {
			if help := r.helpFor(s.name); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, escapeHelp(help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			prevName = s.name
		}
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.name, renderLabels(s.labels), s.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.name, renderLabels(s.labels), formatValue(s.g.Value()))
		case kindHistogram:
			err = writeHistogram(w, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, s *series) error {
	counts := s.h.bucketCounts()
	var cum int64
	for i, c := range counts {
		cum += c
		// Compress the exposition: skip empty leading/intermediate
		// buckets except the ones that carry information (a count
		// change) and the mandatory +Inf bucket.
		if c == 0 && i != len(counts)-1 {
			continue
		}
		le := formatValue(s.h.UpperBound(i))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.name, renderLabels(s.labels, Label{Key: "le", Value: le}), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, renderLabels(s.labels), formatValue(s.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, renderLabels(s.labels), s.h.Count())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format. Every scrape first refreshes the mc_runtime_* process
// gauges and the mc_build_info identity gauge (CaptureRuntime), so
// exposition always carries current machine context.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.CaptureRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Serve starts an HTTP listener on addr exposing:
//
//	/metrics      Prometheus text exposition of this registry
//	/debug/vars   expvar
//	/debug/pprof  net/http/pprof profiles
//
// It returns the server (Close it to stop) and the bound address
// (useful with addr ":0"). The listener runs on its own goroutine.
func (r *Registry) Serve(addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
