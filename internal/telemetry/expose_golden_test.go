package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRegistry builds a registry exercising every exposition feature:
// HELP lines, one TYPE line per name across several labeled series,
// label escaping (quote, backslash, newline), histogram bucket
// compression, and deterministic name-then-labels ordering regardless
// of registration order (series are deliberately registered backwards).
func goldenRegistry() *Registry {
	r := New()

	// Registered last-name-first: exposition must sort.
	h := r.Histogram("mc_z_latency_seconds", L("stage", "join"))
	h.Observe(1e-6) // first bucket
	h.Observe(3e-6) // 4µs bucket
	h.Observe(3e-6)
	h.Observe(0.5) // high bucket
	r.SetHelp("mc_z_latency_seconds", "Stage latency in seconds.")

	r.Gauge("mc_y_queue_depth", L("path", `a"b\c`+"\n"+`d`)).Set(4)
	r.Gauge("mc_y_queue_depth", L("path", "plain")).Set(2.5)
	r.SetHelp("mc_y_queue_depth", `Escaped help: backslash \ and`+"\n"+`newline.`)

	r.Counter("mc_x_items_total", L("ds", "M2"), L("k", "1000")).Add(12)
	r.Counter("mc_x_items_total").Add(7)
	r.SetHelp("mc_x_items_total", "Items processed.")

	// No help registered: exposition emits TYPE only.
	r.Counter("mc_w_bare_total").Inc()
	return r
}

// TestWritePrometheusGolden pins the exact bytes of the Prometheus text
// exposition (HELP/TYPE lines, label escaping, series ordering, bucket
// compression) against testdata/expose.golden. Regenerate with
//
//	go test ./internal/telemetry -run WritePrometheusGolden -update
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "expose.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// The golden bytes must also be reproducible across a second render
	// of an independently built registry (fresh shard maps, same series).
	var again bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of identical registries differ")
	}
}

// TestCaptureRuntime checks the process gauges land under their
// reserved names with plausible values, and that mc_build_info carries
// the build identity in labels with value 1.
func TestCaptureRuntime(t *testing.T) {
	r := New()
	r.CaptureRuntime()
	snap := r.Snapshot()

	if g := snap.Gauges["mc_runtime_goroutines"]; g < 1 {
		t.Errorf("mc_runtime_goroutines = %g, want >= 1", g)
	}
	if g := snap.Gauges["mc_runtime_heap_bytes"]; g <= 0 {
		t.Errorf("mc_runtime_heap_bytes = %g, want > 0", g)
	}
	if _, ok := snap.Gauges["mc_runtime_gc_pause_total_seconds"]; !ok {
		t.Error("missing mc_runtime_gc_pause_total_seconds")
	}
	if g, ok := snap.Gauges["mc_runtime_uptime_seconds"]; !ok || g < 0 {
		t.Errorf("mc_runtime_uptime_seconds = %g present=%v", g, ok)
	}
	found := false
	for k, v := range snap.Gauges {
		if len(k) >= len("mc_build_info") && k[:len("mc_build_info")] == "mc_build_info" {
			found = true
			if v < 1 || v > 1 {
				t.Errorf("mc_build_info = %g, want 1", v)
			}
		}
	}
	if !found {
		t.Error("missing mc_build_info gauge")
	}

	// Snapshot stamps the same build identity.
	if snap.Build == nil || snap.Build.GoVersion == "" {
		t.Errorf("snapshot build stamp = %+v, want Go version set", snap.Build)
	}

	// Nil and disabled registries are no-ops.
	var nilReg *Registry
	nilReg.CaptureRuntime()
	Disabled().CaptureRuntime()
	if n := Disabled().Snapshot().NumSeries(); n != 0 {
		t.Errorf("disabled registry has %d series after CaptureRuntime", n)
	}
}
