package telemetry

import (
	"context"
	"time"
)

// StageHistogram is the shared histogram every stage span rolls up into,
// one series per stage label.
const StageHistogram = "mc_stage_seconds"

// Span is one in-flight stage timing. End observes the elapsed time into
// the registry's mc_stage_seconds{stage="<name>"} histogram. The zero
// Span (from a nil/disabled registry) is a no-op.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins timing a named stage against the registry.
//
//	defer reg.Start("ssjoin.flush").End()
func (r *Registry) Start(name string, labels ...Label) Span {
	if r == nil || r.off {
		return Span{}
	}
	ls := make([]Label, 0, len(labels)+1)
	ls = append(ls, Label{Key: "stage", Value: name})
	ls = append(ls, labels...)
	//lint:allow metricname mc_stage_seconds is the cross-package stage rollup; every package's spans share one series keyed by the stage label
	return Span{h: r.Histogram(StageHistogram, ls...), start: time.Now()}
}

// Start begins timing a named stage against the default registry.
func Start(name string, labels ...Label) Span { return std.Start(name, labels...) }

// End stops the span, records its latency, and returns the elapsed time.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

type ctxKey struct{}

// NewContext returns a context carrying the registry, for APIs that
// thread telemetry through call chains rather than options structs.
func NewContext(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the registry installed by NewContext, or the
// process default when none is installed.
func FromContext(ctx context.Context) *Registry {
	if r, ok := ctx.Value(ctxKey{}).(*Registry); ok && r != nil {
		return r
	}
	return std
}

// StartCtx begins timing a named stage against the context's registry.
func StartCtx(ctx context.Context, name string, labels ...Label) Span {
	return FromContext(ctx).Start(name, labels...)
}
