package telemetry

import (
	"math"
	"runtime/metrics"
)

// Runtime bridge: gauges backed by the runtime/metrics package,
// registered under the reserved mc_runtime_* namespace alongside the
// MemStats-derived gauges in runtime.go. CaptureRuntime samples them on
// every /metrics scrape, every ledger attach, and every stamped flight
// dump, so operational surfaces always carry current scheduler and GC
// state without the pipeline paying for continuous collection.
//
// Everything here is sample-on-demand: runtime/metrics reads are cheap
// (no stop-the-world), and the sample slice is rebuilt per call so
// concurrent captures never share mutable state.

// The runtime/metrics names we bridge. All are stable names documented
// by the runtime/metrics package; readRuntimeMetrics tolerates any of
// them missing (KindBad) so a toolchain that drops one cannot panic the
// scrape path.
const (
	rmHeapLive      = "/memory/classes/heap/objects:bytes"
	rmGCPauses      = "/gc/pauses:seconds"
	rmSchedLatency  = "/sched/latencies:seconds"
	rmGoroutines    = "/sched/goroutines:goroutines"
	rmGCCyclesTotal = "/gc/cycles/total:gc-cycles"
)

// The bridged gauge names (reserved namespace; see runtime.go).
const (
	runtimeHeapLive     = "mc_runtime_heap_live_bytes"
	runtimeGCPauseP99   = "mc_runtime_gc_pause_p99_seconds"
	runtimeSchedLatency = "mc_runtime_sched_latency_p99_seconds"
	runtimeGCCycles     = "mc_runtime_gc_cycles_total"
)

// captureRuntimeMetrics samples the runtime/metrics bridge into r.
// Called by CaptureRuntime; never on a hot path.
func (r *Registry) captureRuntimeMetrics() {
	samples := []metrics.Sample{
		{Name: rmHeapLive},
		{Name: rmGCPauses},
		{Name: rmSchedLatency},
		{Name: rmGoroutines},
		{Name: rmGCCyclesTotal},
	}
	metrics.Read(samples)
	for i := range samples {
		s := &samples[i]
		switch s.Name {
		case rmHeapLive:
			if v, ok := sampleFloat(s); ok {
				r.SetHelp(runtimeHeapLive, "Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects).")
				r.Gauge(runtimeHeapLive).Set(v)
			}
		case rmGCPauses:
			if v, ok := sampleHistQuantile(s, 0.99); ok {
				r.SetHelp(runtimeGCPauseP99, "p99 GC stop-the-world pause latency in seconds (runtime/metrics /gc/pauses).")
				r.Gauge(runtimeGCPauseP99).Set(v)
			}
		case rmSchedLatency:
			if v, ok := sampleHistQuantile(s, 0.99); ok {
				r.SetHelp(runtimeSchedLatency, "p99 goroutine scheduling latency in seconds (runtime/metrics /sched/latencies).")
				r.Gauge(runtimeSchedLatency).Set(v)
			}
		case rmGoroutines:
			// NumGoroutine already feeds mc_runtime_goroutines in
			// CaptureRuntime; the runtime/metrics reading would double it.
		case rmGCCyclesTotal:
			if v, ok := sampleFloat(s); ok {
				r.SetHelp(runtimeGCCycles, "Completed GC cycles since process start (runtime/metrics /gc/cycles/total).")
				r.Gauge(runtimeGCCycles).Set(v)
			}
		}
	}
}

// sampleFloat extracts a scalar sample as float64.
func sampleFloat(s *metrics.Sample) (float64, bool) {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64()), true
	case metrics.KindFloat64:
		return s.Value.Float64(), true
	default:
		return 0, false
	}
}

// sampleHistQuantile estimates quantile q of a runtime/metrics
// Float64Histogram as the upper bucket boundary where the cumulative
// count crosses q*total (the same bucket-bound estimate the registry's
// own histograms use). An empty or missing histogram reports (0, true)
// for present-but-empty and (0, false) for missing, so quiet processes
// still expose a zero gauge.
func sampleHistQuantile(s *metrics.Sample, q float64) (float64, bool) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0, false
	}
	h := s.Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0, false
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, true
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the upper
			// bound, substituting the highest finite boundary for +Inf.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			if math.IsInf(ub, -1) {
				ub = 0
			}
			return ub, true
		}
	}
	return h.Buckets[len(h.Buckets)-1], true
}
