package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve inside the goroutine: exercises the striped lookup.
			c := r.Counter("mc_test_ops_total", L("worker", "shared"))
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("mc_test_ops_total", L("worker", "shared")).Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterAddNegativeIgnored(t *testing.T) {
	r := New()
	c := r.Counter("mc_test_neg_total")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5 (negative adds ignored)", c.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := New()
	g := r.Gauge("mc_test_level")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); math.Abs(got-4000) > 1e-6 {
		t.Errorf("gauge = %v, want 4000", got)
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Errorf("gauge after Set = %v", g.Value())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("mc_test_latency_seconds")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(i+1) * 1e-4)
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	wantSum := 0.0
	for i := 1; i <= 8; i++ {
		wantSum += float64(i) * 1e-4 * 1000
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram(1e-6, 2, 30)
	// Exact bounds land in their own bucket; just-above lands one up.
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{1e-6, 0},
		{2e-6, 1},
		{2.1e-6, 2},
		{1e9, 30}, // overflow
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound covers it.
	for v := 1e-6; v < 100; v *= 1.37 {
		i := h.bucketIndex(v)
		if ub := h.UpperBound(i); ub < v {
			t.Errorf("value %v put in bucket %d with bound %v < value", v, i, ub)
		}
		if i > 0 {
			if lb := h.UpperBound(i - 1); lb >= v {
				t.Errorf("value %v put in bucket %d but bound %v of bucket %d already covers it", v, i, lb, i-1)
			}
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(1e-6, 2, 30)
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty quantile = %v", h.Quantile(0.5))
	}
	for i := 0; i < 90; i++ {
		h.Observe(1e-4) // bucket bound 1.28e-4
	}
	for i := 0; i < 10; i++ {
		h.Observe(1e-2) // bucket bound ~1.6e-2
	}
	if q := h.Quantile(0.5); q < 1e-4 || q > 2.56e-4 {
		t.Errorf("p50 = %v, want ~1.28e-4", q)
	}
	if q := h.Quantile(0.99); q < 1e-2 {
		t.Errorf("p99 = %v, want >= 1e-2", q)
	}
}

func TestExpositionGolden(t *testing.T) {
	r := New()
	r.Counter("mc_test_pairs_total", L("config", "root")).Add(42)
	r.Counter("mc_test_pairs_total", L("config", "child")).Add(7)
	r.Gauge("mc_test_e_size").Set(123)
	h := r.Histogram("mc_test_join_seconds")
	h.Observe(1.5e-6) // bucket le=2e-06
	h.Observe(1.5e-6)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE mc_test_e_size gauge
mc_test_e_size 123
# TYPE mc_test_join_seconds histogram
mc_test_join_seconds_bucket{le="2e-06"} 2
mc_test_join_seconds_bucket{le="+Inf"} 2
mc_test_join_seconds_sum 3e-06
mc_test_join_seconds_count 2
# TYPE mc_test_pairs_total counter
mc_test_pairs_total{config="child"} 7
mc_test_pairs_total{config="root"} 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelSortingAndEscaping(t *testing.T) {
	r := New()
	// Labels resolve to the same series regardless of argument order.
	a := r.Counter("mc_test_l_total", L("b", "2"), L("a", "1"))
	b := r.Counter("mc_test_l_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Error("label order created two series")
	}
	r.Counter("mc_test_esc_total", L("v", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `v="a\"b\\c\nd"`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("mc_test_kind")
	defer func() {
		if recover() == nil {
			t.Error("want panic on kind mismatch")
		}
	}()
	r.Gauge("mc_test_kind")
}

func TestNilAndDisabled(t *testing.T) {
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("y").Set(1)
	nilReg.Histogram("z").Observe(1)
	nilReg.Start("stage").End()
	nilReg.Reset()
	if s := nilReg.Snapshot(); s.NumSeries() != 0 {
		t.Errorf("nil registry snapshot has %d series", s.NumSeries())
	}
	d := Disabled()
	d.Counter("x").Inc()
	d.Start("stage").End()
	if s := d.Snapshot(); s.NumSeries() != 0 {
		t.Errorf("disabled registry snapshot has %d series", s.NumSeries())
	}
	if got := Or(nil); got != Default() {
		t.Error("Or(nil) != Default()")
	}
	if got := Or(d); got != d {
		t.Error("Or(d) != d")
	}
}

func TestSpanRollsUpIntoStageHistogram(t *testing.T) {
	r := New()
	sp := r.Start("ssjoin.flush")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("span duration = %v", d)
	}
	h := r.Histogram(StageHistogram, L("stage", "ssjoin.flush"))
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Errorf("stage histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestContextRegistry(t *testing.T) {
	r := New()
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != r {
		t.Error("FromContext lost the registry")
	}
	if FromContext(context.Background()) != Default() {
		t.Error("FromContext without registry should yield Default")
	}
	StartCtx(ctx, "ctx.stage").End()
	if r.Histogram(StageHistogram, L("stage", "ctx.stage")).Count() != 1 {
		t.Error("StartCtx did not record into the context registry")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("mc_test_a_total").Add(3)
	r.Gauge("mc_test_b", L("x", "1")).Set(2.5)
	r.Histogram("mc_test_c_seconds").Observe(0.25)
	snap := r.Snapshot()
	if snap.NumSeries() != 3 {
		t.Fatalf("snapshot series = %d, want 3", snap.NumSeries())
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["mc_test_a_total"] != 3 {
		t.Errorf("counter round-trip = %v", back.Counters)
	}
	if back.Gauges[`mc_test_b{x="1"}`] != 2.5 {
		t.Errorf("gauge round-trip = %v", back.Gauges)
	}
	hs := back.Histograms["mc_test_c_seconds"]
	if hs.Count != 1 || hs.Sum != 0.25 || hs.Mean != 0.25 {
		t.Errorf("histogram round-trip = %+v", hs)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("mc_test_served_total").Inc()
	srv, addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "mc_test_served_total 1") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body = get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code=%d", code)
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
}

// TestServeShutdownReleasesPort: graceful Shutdown must finish in-flight
// scrapes and release the listener so the address can be rebound — the
// property mcdebug's -metrics-addr cleanup (and any embedding process's
// exit path) relies on to not leak the socket.
func TestServeShutdownReleasesPort(t *testing.T) {
	r := New()
	srv, addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A completed scrape guarantees the serving goroutine has registered
	// the listener, so Shutdown will close it.
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	srv2, _, err := r.Serve(addr.String())
	if err != nil {
		t.Fatalf("rebinding %s after Shutdown: %v", addr, err)
	}
	srv2.Close()
}

func TestReset(t *testing.T) {
	r := New()
	r.Counter("mc_test_r_total").Inc()
	r.Reset()
	if s := r.Snapshot(); s.NumSeries() != 0 {
		t.Errorf("after Reset: %d series", s.NumSeries())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("mc_bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("mc_bench_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.23e-4)
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("mc_bench_lookup_total", L("config", "root"))
	}
}
