package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceTreeStructure(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("session", L("table", "A"))
	child := root.Child("join")
	grand := child.Child("probe")
	grand.SetAttrInt("events", 42)
	grand.Event("cancelled", L("why", "test"))
	grand.End()
	child.End()
	root.End()

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	spans := tr.Export()
	byName := map[string]ExportedSpan{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["join"].ParentID != byName["session"].ID {
		t.Errorf("join parent = %d, want %d", byName["join"].ParentID, byName["session"].ID)
	}
	if byName["probe"].ParentID != byName["join"].ID {
		t.Errorf("probe parent = %d, want %d", byName["probe"].ParentID, byName["join"].ID)
	}
	// All spans share the root's trace id.
	for _, s := range spans {
		if s.TraceID != byName["session"].ID {
			t.Errorf("span %s trace id = %d, want %d", s.Name, s.TraceID, byName["session"].ID)
		}
	}
	if byName["probe"].Attrs["events"] != "42" {
		t.Errorf("probe attrs = %v", byName["probe"].Attrs)
	}
	if len(byName["probe"].Events) != 1 || byName["probe"].Events[0].Name != "cancelled" {
		t.Errorf("probe events = %v", byName["probe"].Events)
	}
	if byName["session"].Attrs["table"] != "A" {
		t.Errorf("session attrs = %v", byName["session"].Attrs)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer Start should return nil span")
	}
	// Every method must be a no-op on a nil span.
	c := s.Child("y")
	if c != nil {
		t.Fatal("nil span Child should return nil")
	}
	s.Event("e")
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	if d := s.End(); d != 0 {
		t.Errorf("nil End = %v", d)
	}
	if s.Name() != "" || s.ID() != 0 || s.TraceID() != 0 || s.Tracer() != nil {
		t.Error("nil span accessors should return zero values")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer Len/Dropped should be 0")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetMaxSpans(4)
	root := tr.Start("root")
	for i := 0; i < 10; i++ {
		c := root.Child("c")
		c.End() // ending does not free retention
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4 (capped)", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", tr.Dropped())
	}
	// Dropped spans are nil and degrade to no-ops.
	over := root.Child("over")
	if over != nil {
		t.Error("span past cap should be nil")
	}
	over.SetAttr("k", "v") // must not panic
}

func TestTraceEndIdempotent(t *testing.T) {
	tr := NewTracer(nil)
	s := tr.Start("once")
	d1 := s.End()
	time.Sleep(2 * time.Millisecond)
	d2 := s.End()
	if d1 != d2 {
		t.Errorf("second End changed duration: %v vs %v", d1, d2)
	}
}

func TestTraceMetricBridge(t *testing.T) {
	reg := New()
	tr := NewTracer(reg)
	s := tr.Start("mystage")
	s.End()
	h := reg.Histogram(StageHistogram, L("stage", "mystage"))
	if h.Count() != 1 {
		t.Errorf("mc_stage_seconds{stage=mystage} count = %d, want 1", h.Count())
	}
}

// TestChromeTraceExport checks the trace_event JSON contract the Chrome
// about:tracing / Perfetto loaders expect, including >= 3 levels of span
// nesting (an ISSUE acceptance criterion).
func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("debug.session")
	join := root.Child("ssjoin.joinall")
	cfg := join.Child("ssjoin.config", L("config", "{name}"))
	probe := cfg.Child("ssjoin.probe")
	probe.Event("absorb", L("pairs", "7"))
	probe.End()
	cfg.End()
	join.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	depth := map[string]int{"debug.session": 1, "ssjoin.joinall": 2, "ssjoin.config": 3, "ssjoin.probe": 4}
	seen := map[string]bool{}
	var maxDepth int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			seen[ev.Name] = true
			if d := depth[ev.Name]; d > maxDepth {
				maxDepth = d
			}
			if ev.Dur < 0 {
				t.Errorf("negative duration on %s", ev.Name)
			}
		case "i":
			if ev.Name != "absorb" || ev.Args["pairs"] != "7" {
				t.Errorf("instant event = %+v", ev)
			}
		case "M": // process metadata
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	for name := range depth {
		if !seen[name] {
			t.Errorf("span %s missing from trace events", name)
		}
	}
	if maxDepth < 3 {
		t.Errorf("nesting depth %d, want >= 3", maxDepth)
	}
	// Time containment: a child's [ts, ts+dur] must lie within its
	// parent's on the same lane (that is what makes the nesting render).
	var sessTs, sessEnd, probeTs, probeEnd float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "debug.session" {
			sessTs, sessEnd = ev.Ts, ev.Ts+ev.Dur
		}
		if ev.Name == "ssjoin.probe" {
			probeTs, probeEnd = ev.Ts, ev.Ts+ev.Dur
		}
	}
	if probeTs < sessTs || probeEnd > sessEnd {
		t.Errorf("probe [%v,%v] not contained in session [%v,%v]", probeTs, probeEnd, sessTs, sessEnd)
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("session")
	c := root.Child("stage", L("k", "v"))
	c.Event("tick")
	c.End()
	root.Child("stage2").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"session", "stage", "stage2", "k=v", "tick"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree dump missing %q:\n%s", want, out)
		}
	}
	// Children are indented under the root.
	if strings.Index(out, "session") > strings.Index(out, "stage") {
		t.Errorf("root should print before children:\n%s", out)
	}
}

func TestContextSpanRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	s := tr.Start("x")
	ctx := ContextWithSpan(context.Background(), s)
	if got := SpanFromContext(ctx); got != s {
		t.Errorf("SpanFromContext = %v, want %v", got, s)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Errorf("SpanFromContext on bare ctx = %v, want nil", got)
	}
}
