package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

// TestSnapshotDeterministic guards the -report diff-stability contract:
// two registries fed the same series in different label and registration
// orders must marshal to byte-identical snapshot JSON.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(shuffle bool) []byte {
		r := New()
		type reg func()
		ops := []reg{
			func() { r.Counter("mc_a_total", L("x", "1"), L("y", "2")).Add(5) },
			func() { r.Counter("mc_b_total").Inc() },
			func() { r.Gauge("mc_g", L("ds", "M2")).Set(3.5) },
			func() {
				h := r.Histogram("mc_h", L("stage", "join"))
				for i := 1; i <= 32; i++ {
					h.Observe(float64(i) * 1e-5)
				}
			},
		}
		if shuffle {
			// Reverse registration order and swap label order on the
			// two-label counter; seriesKey must normalize both away.
			ops[0] = func() { r.Counter("mc_a_total", L("y", "2"), L("x", "1")).Add(5) }
			for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
				ops[i], ops[j] = ops[j], ops[i]
			}
		}
		for _, op := range ops {
			op()
		}
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ across registration orders:\n%s\nvs\n%s", a, b)
	}
	// And re-marshalling the same registry is stable too.
	if c := build(false); !bytes.Equal(a, c) {
		t.Errorf("snapshot not reproducible:\n%s\nvs\n%s", a, c)
	}
}

// TestConcurrentScrapeDuringRun hammers the /metrics endpoint while a
// simulated debug run mutates the registry — new series registration,
// counter increments, histogram observations — and requires every scrape
// to parse. Run under -race this is the regression test for the
// lock-striped registry's reader/writer interplay.
func TestConcurrentScrapeDuringRun(t *testing.T) {
	reg := New()
	srv, addr, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + addr.String() + "/metrics"

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: mutate existing series and mint fresh ones. Iterations are
	// capped so series count stays bounded — unbounded minting makes each
	// scrape O(series) and the test degenerates into a memory blow-up.
	const writerIters = 4000
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < writerIters; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("mc_run_total", L("worker", fmt.Sprint(w))).Inc()
				reg.Gauge("mc_run_gauge").Set(float64(i))
				reg.Histogram(StageHistogram, L("stage", fmt.Sprintf("s%d", i%7))).Observe(float64(i) * 1e-6)
				if i%100 == 0 {
					reg.Counter(fmt.Sprintf("mc_series_%d_%d_total", w, i)).Inc()
				}
			}
		}(w)
	}
	// Readers: scrape concurrently and check well-formedness.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("scrape failed: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || len(body) == 0 {
					t.Errorf("scrape status %d, %d bytes", resp.StatusCode, len(body))
				}
				// Snapshots must also be consistent mid-run.
				if snap := reg.Snapshot(); snap.NumSeries() == 0 && i > 5 {
					t.Error("empty snapshot while series exist")
				}
			}
		}()
	}
	// Writers keep mutating until every reader has finished its scrapes.
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestHistogramQuantileAccuracy drives the exponential-bucket quantile
// estimator with known distributions and checks p50/p90/p99 land within
// one bucket factor (×2) of the true quantile — the estimator's
// documented error bound.
func TestHistogramQuantileAccuracy(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(42))

	dists := []struct {
		name string
		gen  func() float64
		// true quantile function
		q func(p float64) float64
	}{
		{
			name: "uniform(0,1)",
			gen:  func() float64 { return rng.Float64() },
			q:    func(p float64) float64 { return p },
		},
		{
			name: "exponential(mean=0.01)",
			gen:  func() float64 { return rng.ExpFloat64() * 0.01 },
			q:    func(p float64) float64 { return -0.01 * math.Log(1-p) },
		},
		{
			name: "fixed(0.125)",
			gen:  func() float64 { return 0.125 },
			q:    func(p float64) float64 { return 0.125 },
		},
	}
	for _, d := range dists {
		h := newHistogram(defaultHistStart, defaultHistFactor, defaultHistBuckets)
		for i := 0; i < n; i++ {
			h.Observe(d.gen())
		}
		for _, p := range []float64{0.50, 0.90, 0.99} {
			got := h.Quantile(p)
			want := d.q(p)
			// The estimate reports a bucket upper bound: it can overshoot
			// the true quantile by at most one bucket (×factor) and can
			// undershoot only by sampling noise near bucket edges (allow
			// one factor down as well).
			lo := want / (defaultHistFactor * 1.05)
			hi := want * defaultHistFactor * 1.05
			if got < lo || got > hi {
				t.Errorf("%s p%.0f = %g, want within [%g, %g] (true %g)",
					d.name, p*100, got, lo, hi, want)
			}
		}
	}
}
