package telemetry

// HistogramSnapshot is a point-in-time summary of one histogram series.
// Quantiles are bucket-upper-bound estimates (exponential buckets, so
// within one ×factor of the true value).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max_bucket"` // upper bound of the highest occupied bucket
}

// Snapshot is a point-in-time, JSON-encodable view of a registry, keyed
// by fully qualified series (`name{k="v"}`). Embedded in mcdebug -report
// and mcbench -json output so every run carries its own metrics.
//
// Snapshots marshal deterministically: series keys carry their label
// sets pre-sorted by key (seriesKey sorts at registration, regardless of
// the order call sites pass labels), and encoding/json emits map keys in
// sorted order — so two identical runs produce byte-identical snapshot
// JSON and -report diffs stay stable. TestSnapshotDeterministic guards
// this property.
type Snapshot struct {
	// Build stamps the snapshot with the identity of the binary that
	// produced it (git revision, dirty flag, Go version). Constant within
	// a process, so it does not perturb snapshot determinism.
	Build      *BuildInfo                   `json:"build,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// NumSeries returns the total number of series across all sections.
func (s *Snapshot) NumSeries() int {
	if s == nil {
		return 0
	}
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Snapshot captures the registry's current state. A nil or disabled
// registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	build := ReadBuild()
	snap := &Snapshot{
		Build:      &build,
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range r.all() {
		key := seriesKey(s.name, s.labels)
		switch s.kind {
		case kindCounter:
			snap.Counters[key] = s.c.Value()
		case kindGauge:
			snap.Gauges[key] = s.g.Value()
		case kindHistogram:
			hs := HistogramSnapshot{
				Count: s.h.Count(),
				Sum:   s.h.Sum(),
				P50:   s.h.Quantile(0.50),
				P90:   s.h.Quantile(0.90),
				P99:   s.h.Quantile(0.99),
			}
			if hs.Count > 0 {
				hs.Mean = hs.Sum / float64(hs.Count)
			}
			counts := s.h.bucketCounts()
			for i := len(counts) - 1; i >= 0; i-- {
				if counts[i] > 0 {
					if i == len(counts)-1 {
						i-- // report the last finite bound for +Inf
					}
					if i >= 0 {
						hs.Max = s.h.UpperBound(i)
					}
					break
				}
			}
			snap.Histograms[key] = hs
		}
	}
	return snap
}
