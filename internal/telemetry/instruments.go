package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and safe on a nil receiver (no-op).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0; negative deltas are ignored to preserve
// monotonicity).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an arbitrary float64 metric that may go up and down. All
// methods are safe for concurrent use and safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Default exponential bucket layout: upper bounds start*factor^i for
// i in [0, buckets), i.e. 1µs, 2µs, 4µs, ... ~537s, plus a +Inf
// overflow bucket. Chosen for latencies expressed in seconds; counts
// and sizes fit too (they simply occupy the high buckets).
const (
	defaultHistStart   = 1e-6
	defaultHistFactor  = 2
	defaultHistBuckets = 30
)

// Histogram is a fixed-layout exponential-bucket histogram. Observations
// are lock-free atomic adds; bucket bounds are immutable after creation.
// All methods are safe for concurrent use and safe on a nil receiver.
type Histogram struct {
	start, factor float64
	logFactor     float64
	counts        []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sumBits       atomic.Uint64
	count         atomic.Int64
}

func newHistogram(start, factor float64, buckets int) *Histogram {
	return &Histogram{
		start:     start,
		factor:    factor,
		logFactor: math.Log(factor),
		counts:    make([]atomic.Int64, buckets+1),
	}
}

// UpperBound returns the inclusive upper bound of bucket i, or +Inf for
// the overflow bucket.
func (h *Histogram) UpperBound(i int) float64 {
	if i >= len(h.counts)-1 {
		return math.Inf(1)
	}
	return h.start * math.Pow(h.factor, float64(i))
}

// NumBuckets returns the bucket count including the +Inf overflow.
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.start {
		return 0
	}
	i := int(math.Ceil(math.Log(v/h.start) / h.logFactor))
	if i >= len(h.counts)-1 {
		return len(h.counts) - 1
	}
	// Guard against log rounding placing v just past its true bucket.
	if i > 0 && h.UpperBound(i-1) >= v {
		i--
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// bucketCounts returns a point-in-time copy of the per-bucket counts.
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q*Count. It returns 0
// for an empty histogram and the largest finite bound when the crossing
// lands in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.bucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i == len(counts)-1 {
				return h.UpperBound(i - 1)
			}
			return h.UpperBound(i)
		}
	}
	return h.UpperBound(len(counts) - 2)
}
