// Package telemetry is MatchCatcher's observability subsystem: a
// concurrency-safe metrics registry (atomic counters, gauges, and
// exponential-bucket histograms, all label-aware), a lightweight
// span/stage timer that rolls up into per-stage latency histograms, and
// Prometheus text-format exposition with an optional HTTP listener that
// also mounts expvar and net/http/pprof.
//
// The registry is lock-striped the way the ssjoin reuse database H is:
// series resolution hashes the fully-qualified series key onto one of a
// fixed number of shards, so concurrent instrument lookups from the join
// workers never contend on a single mutex. Instrument *updates* never
// take a lock at all — they are plain atomics.
//
// Metric naming convention: mc_<pkg>_<name>, with counters suffixed
// _total and latency histograms suffixed _seconds. Stage spans all roll
// up into the shared histogram mc_stage_seconds{stage="<name>"}.
//
// Hot paths resolve their instruments once (at run setup) and hold the
// returned pointers; per-event increments are then a single atomic add.
// A nil *Registry and nil instruments are safe no-ops, so callers can
// disable telemetry entirely (see Disabled) without branching at every
// call site.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	labels []Label // sorted by key
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// numShards is the lock-stripe width. 16 shards keep contention
// negligible for the worker counts the joint executor runs with.
const numShards = 16

type shard struct {
	mu sync.RWMutex
	m  map[string]*series
}

// Registry holds metric series. The zero value is NOT ready to use; call
// New. A nil *Registry is a valid no-op registry (every getter returns a
// nil instrument, and nil instruments ignore updates).
type Registry struct {
	off    bool
	shards [numShards]shard

	helpMu sync.RWMutex
	help   map[string]string // metric name -> # HELP text
}

// New creates an empty registry.
func New() *Registry {
	r := &Registry{help: make(map[string]string)}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*series)
	}
	return r
}

// SetHelp attaches a one-line description to a metric name. The
// Prometheus exposition emits it as the metric's # HELP line (before the
// # TYPE line). Setting again overwrites; empty text clears. Safe on a
// nil or disabled registry.
func (r *Registry) SetHelp(name, text string) {
	if r == nil || r.off {
		return
	}
	r.helpMu.Lock()
	if text == "" {
		delete(r.help, name)
	} else {
		r.help[name] = text
	}
	r.helpMu.Unlock()
}

// helpFor returns the HELP text registered for name, or "".
func (r *Registry) helpFor(name string) string {
	if r == nil || r.off {
		return ""
	}
	r.helpMu.RLock()
	defer r.helpMu.RUnlock()
	return r.help[name]
}

var std = New()

// Default returns the process-wide registry that instrumented packages
// fall back to when no registry is injected.
func Default() *Registry { return std }

var disabled = &Registry{off: true}

// Disabled returns a registry whose getters all return nil instruments:
// every update through it is a no-op. Used to measure instrumentation
// overhead and to switch telemetry off wholesale.
func Disabled() *Registry { return disabled }

// Or returns r, or the process default when r is nil. Instrumented
// packages use it to resolve an injected-or-default registry.
func Or(r *Registry) *Registry {
	if r == nil {
		return std
	}
	return r
}

// seriesKey renders the fully qualified series identity ("name" or
// `name{k="v",k2="v2"}` with keys sorted) used both as the registry map
// key and as the snapshot map key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % numShards)
}

// lookup resolves (creating on first use) the series for the key.
func (r *Registry) lookup(name string, k kind, labels []Label) *series {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	sh := &r.shards[shardFor(key)]
	sh.mu.RLock()
	s := sh.m[key]
	sh.mu.RUnlock()
	if s == nil {
		sh.mu.Lock()
		s = sh.m[key]
		if s == nil {
			s = &series{name: name, labels: labels, kind: k}
			switch k {
			case kindCounter:
				s.c = &Counter{}
			case kindGauge:
				s.g = &Gauge{}
			case kindHistogram:
				s.h = newHistogram(defaultHistStart, defaultHistFactor, defaultHistBuckets)
			}
			sh.m[key] = s
		}
		sh.mu.Unlock()
	}
	if s.kind != k {
		panic(fmt.Sprintf("telemetry: series %s registered as %s, requested as %s", key, s.kind, k))
	}
	return s
}

// Counter returns (registering on first use) the counter series.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil || r.off {
		return nil
	}
	return r.lookup(name, kindCounter, labels).c
}

// Gauge returns (registering on first use) the gauge series.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil || r.off {
		return nil
	}
	return r.lookup(name, kindGauge, labels).g
}

// Histogram returns (registering on first use) the histogram series,
// with the default exponential buckets (1µs growing ×2 up to ~9 min,
// sized for latencies in seconds but serviceable for any positive value).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil || r.off {
		return nil
	}
	return r.lookup(name, kindHistogram, labels).h
}

// all returns every registered series, sorted by name then label key,
// the order exposition and snapshots use.
func (r *Registry) all() []*series {
	if r == nil || r.off {
		return nil
	}
	var out []*series
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey(out[i].name, out[i].labels) < seriesKey(out[j].name, out[j].labels)
	})
	return out
}

// Reset removes every registered series. Pointers previously handed out
// keep working but are no longer reachable from the registry; intended
// for tests and per-run isolation.
func (r *Registry) Reset() {
	if r == nil || r.off {
		return
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]*series)
		sh.mu.Unlock()
	}
}
