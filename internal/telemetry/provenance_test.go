package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestProvenanceWatchAndRecord(t *testing.T) {
	p := NewProvenance([2]int{3, 7})
	p.Watch(1, 2)
	p.Watch(1, 2) // idempotent

	if !p.Active() {
		t.Fatal("Active = false with two watched pairs")
	}
	if !p.Watching(3, 7) || !p.Watching(1, 2) || p.Watching(9, 9) {
		t.Error("Watching misreports the watch list")
	}
	if got := p.WatchedPairs(); len(got) != 2 || got[0] != [2]int{1, 2} || got[1] != [2]int{3, 7} {
		t.Errorf("WatchedPairs = %v, want sorted [[1 2] [3 7]]", got)
	}

	p.Record(3, 7, "blocker", "dropped", L("blocker", "hash"))
	p.Record(3, 7, "ssjoin", "ranked", L("rank", "2"))
	p.Record(9, 9, "blocker", "dropped") // unwatched: ignored

	tr := p.Trace(3, 7)
	if tr == nil || len(tr.Events) != 2 {
		t.Fatalf("Trace(3,7) = %+v, want 2 events", tr)
	}
	if tr.Events[0].Stage != "blocker" || tr.Events[0].Event != "dropped" ||
		tr.Events[0].Attrs["blocker"] != "hash" {
		t.Errorf("event 0 = %+v", tr.Events[0])
	}
	if tr.Events[0].Seq >= tr.Events[1].Seq {
		t.Errorf("sequence numbers not increasing: %d, %d", tr.Events[0].Seq, tr.Events[1].Seq)
	}
	if p.Trace(9, 9) != nil {
		t.Error("Trace of unwatched pair should be nil")
	}

	traces := p.Traces()
	if len(traces) != 2 {
		t.Fatalf("Traces = %d entries, want 2", len(traces))
	}
	if traces[0].A != 1 || traces[0].B != 2 || traces[1].A != 3 || traces[1].B != 7 {
		t.Errorf("Traces not sorted by (A,B): %+v", traces)
	}
	// Traces returns deep copies: mutating them must not corrupt state.
	traces[1].Events[0].Attrs["blocker"] = "tampered"
	if p.Trace(3, 7).Events[0].Attrs["blocker"] != "hash" {
		t.Error("Traces copies share state with the recorder")
	}
}

func TestProvenanceNilSafety(t *testing.T) {
	var p *Provenance
	if p.Active() || p.Watching(1, 2) {
		t.Error("nil Provenance should be inactive")
	}
	p.Watch(1, 2)
	p.Record(1, 2, "stage", "event")
	if p.Trace(1, 2) != nil || p.Traces() != nil || p.WatchedPairs() != nil {
		t.Error("nil Provenance accessors should return nil")
	}
	// Inactive (empty) recorder is also a no-op.
	empty := NewProvenance()
	if empty.Active() {
		t.Error("empty Provenance should be inactive")
	}
}

func TestProvenanceTruncation(t *testing.T) {
	p := NewProvenance([2]int{0, 0})
	for i := 0; i < maxEventsPerPair+25; i++ {
		p.Record(0, 0, "stage", fmt.Sprintf("e%d", i))
	}
	tr := p.Trace(0, 0)
	if len(tr.Events) != maxEventsPerPair {
		t.Errorf("events retained = %d, want %d", len(tr.Events), maxEventsPerPair)
	}
	if tr.Truncated != 25 {
		t.Errorf("Truncated = %d, want 25", tr.Truncated)
	}
}

func TestProvenanceConcurrentRecord(t *testing.T) {
	p := NewProvenance([2]int{1, 1}, [2]int{2, 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Record(1, 1, "s", "e", L("g", fmt.Sprint(g)))
				p.Record(2, 2, "s", "e")
				p.Watching(1, 1)
				p.Trace(2, 2)
			}
		}(g)
	}
	wg.Wait()
	if n := len(p.Trace(1, 1).Events); n != 400 {
		t.Errorf("pair (1,1) events = %d, want 400", n)
	}
	if n := len(p.Trace(2, 2).Events); n != 400 {
		t.Errorf("pair (2,2) events = %d, want 400", n)
	}
}

func TestProvenanceNegativeRows(t *testing.T) {
	// Row ids are non-negative in practice, but the key packing must not
	// collide pairs like (0, -1) and (-1, 0) if they ever appear.
	p := NewProvenance([2]int{0, 5})
	if p.Watching(5, 0) {
		t.Error("(5,0) should not alias (0,5)")
	}
}
