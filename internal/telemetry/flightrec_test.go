package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderOrderAndBounds(t *testing.T) {
	fr := NewFlightRecorder(16)
	if got := fr.Capacity(); got != 16 {
		t.Fatalf("Capacity() = %d, want 16", got)
	}
	for i := 0; i < 40; i++ {
		fr.Record(FlightEvent{Time: int64(i + 1), Kind: "request"})
	}
	evs := fr.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	// Round-robin striping means the survivors are exactly the last 16
	// sequence numbers.
	if evs[0].Seq != 25 || evs[len(evs)-1].Seq != 40 {
		t.Errorf("retained seq range [%d, %d], want [25, 40]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	d := fr.Dump()
	if d.Recorded != 40 || d.Retained != 16 || d.Dropped != 24 {
		t.Errorf("dump accounting = %d/%d/%d, want 40/16/24", d.Recorded, d.Retained, d.Dropped)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	if seq := fr.Record(FlightEvent{Kind: "request"}); seq != 0 {
		t.Errorf("nil recorder assigned seq %d", seq)
	}
	if fr.Snapshot() != nil || fr.Recorded() != 0 || fr.Capacity() != 0 {
		t.Error("nil recorder is not a no-op")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fr.Record(FlightEvent{Time: 1, Kind: "request"})
			}
		}()
	}
	wg.Wait()
	evs := fr.Snapshot()
	if len(evs) != 800 {
		t.Fatalf("retained %d events, want 800", len(evs))
	}
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// TestFlightDumpGolden pins the dump encoding byte-for-byte: the dump
// is the post-mortem artifact operators diff and the smoke test greps,
// so its encoding must be deterministic for a given event set.
func TestFlightDumpGolden(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FlightEvent{
		Time: 1000, Kind: "request", Route: "join", Method: "POST",
		Status: 200, Session: "s000001", TraceID: 1, SpanID: 2,
		DurMicros: 1500, BytesIn: 10, BytesOut: 20,
	})
	fr.Record(FlightEvent{Time: 2000, Kind: "session", Route: "created", Session: "s000002"})

	const want = `{
  "schema": "mc.flightrecord/v1",
  "recorded": 2,
  "retained": 2,
  "dropped": 0,
  "events": [
    {
      "seq": 1,
      "time_unix_nano": 1000,
      "kind": "request",
      "route": "join",
      "method": "POST",
      "status": 200,
      "session": "s000001",
      "trace_id": 1,
      "span_id": 2,
      "dur_us": 1500,
      "bytes_in": 10,
      "bytes_out": 20
    },
    {
      "seq": 2,
      "time_unix_nano": 2000,
      "kind": "session",
      "route": "created",
      "session": "s000002"
    }
  ]
}
`
	var buf bytes.Buffer
	if err := fr.Dump().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Errorf("dump encoding drifted:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Same events, same bytes — encode again and byte-compare.
	var buf2 bytes.Buffer
	if err := fr.Dump().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two dumps of the same event set differ")
	}
}

func TestFlightDumpStampAndRead(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FlightEvent{Kind: "request", Route: "healthz", Status: 200})
	reg := New()
	d := fr.Dump().Stamp("sigquit", reg)
	if d.Reason != "sigquit" || d.Time == 0 || d.Build == nil {
		t.Fatalf("stamp incomplete: %+v", d)
	}
	if len(d.Runtime) == 0 {
		t.Fatal("stamped dump lacks mc_runtime_* context")
	}
	for _, key := range sortedGaugeKeys(d.Runtime) {
		if !strings.HasPrefix(key, "mc_runtime_") {
			t.Errorf("runtime section carries non-runtime key %q", key)
		}
	}

	path := filepath.Join(t.TempDir(), "flight.json")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadFlightDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "sigquit" || len(got.Events) != 1 || got.Events[0].Route != "healthz" {
		t.Errorf("roundtrip dump = %+v", got)
	}
}

func TestReadFlightDumpRejectsForeignSchema(t *testing.T) {
	_, err := ReadFlightDump(strings.NewReader(`{"schema":"mc.runlog/v1"}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("foreign schema accepted: %v", err)
	}
}

func TestExportSubtree(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("serve.session")
	req1 := root.Child("serve.request", L("route", "join"))
	j := req1.Child("ssjoin.joinall")
	j.End()
	req1.End()
	req2 := root.Child("serve.request", L("route", "report"))
	req2.End()

	sub := tr.ExportSubtree(req1.ID())
	if len(sub) != 2 {
		t.Fatalf("subtree has %d spans, want 2 (request + join):\n%+v", len(sub), sub)
	}
	names := map[string]bool{}
	for _, s := range sub {
		names[s.Name] = true
	}
	if !names["serve.request"] || !names["ssjoin.joinall"] {
		t.Errorf("subtree spans = %v", names)
	}
	if got := tr.ExportSubtree(99999); got != nil {
		t.Errorf("unknown root returned %d spans", len(got))
	}
	var nilT *Tracer
	if got := nilT.ExportSubtree(1); got != nil {
		t.Error("nil tracer subtree not nil")
	}
}

// TestRecordZeroAllocs is the dynamic half of Record's //mc:hotpath
// contract (the static half is mclint's hotalloc analyzer with
// -escapes): recording a pre-stamped event moves only value copies.
func TestRecordZeroAllocs(t *testing.T) {
	fr := NewFlightRecorder(64)
	ev := FlightEvent{Time: 1, Kind: "request", Route: "POST /v1/sessions", Session: "s000001"}
	allocs := testing.AllocsPerRun(1000, func() {
		fr.Record(ev)
	})
	if allocs != 0 {
		t.Errorf("Record allocated %.1f times per run, want 0", allocs)
	}
}
