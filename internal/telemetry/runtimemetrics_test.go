package telemetry

import (
	"math"
	"runtime/metrics"
	"testing"
)

func TestCaptureRuntimeBridgeGauges(t *testing.T) {
	r := New()
	r.CaptureRuntime()
	snap := r.Snapshot()
	// Scalar bridge gauges must always be present on a live runtime.
	for _, name := range []string{runtimeHeapLive, runtimeGCCycles} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("CaptureRuntime did not set %s", name)
		}
	}
	if v := snap.Gauges[runtimeHeapLive]; v <= 0 {
		t.Errorf("%s = %v, want > 0", runtimeHeapLive, v)
	}
	// The latency-histogram gauges may legitimately be absent only if the
	// runtime does not publish the histogram at all; verify presence
	// matches what runtime/metrics reports.
	samples := []metrics.Sample{{Name: rmGCPauses}, {Name: rmSchedLatency}}
	metrics.Read(samples)
	for i, gauge := range []string{runtimeGCPauseP99, runtimeSchedLatency} {
		published := samples[i].Value.Kind() == metrics.KindFloat64Histogram
		_, got := snap.Gauges[gauge]
		if published && !got {
			t.Errorf("runtime publishes %s but %s is unset", samples[i].Name, gauge)
		}
	}
}

func TestSampleHistQuantile(t *testing.T) {
	mk := func(h *metrics.Float64Histogram) *metrics.Sample {
		var s metrics.Sample
		// There is no public constructor for a histogram-kind Value, so
		// exercise the helper through a real runtime histogram below and
		// only test the non-histogram rejection here.
		_ = h
		return &s
	}
	if _, ok := sampleHistQuantile(mk(nil), 0.99); ok {
		t.Error("non-histogram sample accepted")
	}

	// Exercise the real path: /gc/pauses is a Float64Histogram.
	samples := []metrics.Sample{{Name: rmGCPauses}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindFloat64Histogram {
		v, ok := sampleHistQuantile(&samples[0], 0.99)
		if !ok {
			t.Fatal("real histogram rejected")
		}
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("p99 = %v, want finite non-negative", v)
		}
	}
}

func TestSampleFloatKinds(t *testing.T) {
	samples := []metrics.Sample{{Name: rmGCCyclesTotal}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		if v, ok := sampleFloat(&samples[0]); !ok || v < 0 {
			t.Errorf("uint64 sample = (%v, %v)", v, ok)
		}
	}
	var bad metrics.Sample
	if _, ok := sampleFloat(&bad); ok {
		t.Error("KindBad sample accepted")
	}
}
