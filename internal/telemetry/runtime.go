package telemetry

import (
	"runtime"
	"strconv"
	"time"
)

// processStart anchors mc_runtime_uptime_seconds. Set at package init,
// which for practical purposes is process start.
var processStart = time.Now()

// Reserved process-wide series. These deliberately break the
// mc_<pkg>_<name> convention — they describe the *process*, not a
// subsystem — so the metricname analyzer reserves the mc_runtime_* and
// mc_build_* namespaces for this package alone.
const (
	runtimeGoroutines   = "mc_runtime_goroutines"
	runtimeHeapBytes    = "mc_runtime_heap_bytes"
	runtimeGCPauseTotal = "mc_runtime_gc_pause_total_seconds"
	runtimeUptime       = "mc_runtime_uptime_seconds"
	buildInfoGauge      = "mc_build_info"
)

// CaptureRuntime samples process-level machine context into the
// registry: goroutine count, heap bytes in use, cumulative GC pause
// time, process uptime, and the constant mc_build_info gauge carrying
// the build identity in its labels. The /metrics handler calls it on
// every scrape and runlog calls it before snapshotting a ledger record,
// so both carry machine context for free.
//
// It is NOT called by Registry.Snapshot itself: snapshots of identical
// runs must stay byte-identical (TestSnapshotDeterministic), and uptime
// is not.
func (r *Registry) CaptureRuntime() {
	if r == nil || r.off {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	r.SetHelp(runtimeGoroutines, "Live goroutines at capture time.")
	r.Gauge(runtimeGoroutines).Set(float64(runtime.NumGoroutine()))

	r.SetHelp(runtimeHeapBytes, "Heap bytes in use (runtime.MemStats.HeapAlloc).")
	r.Gauge(runtimeHeapBytes).Set(float64(ms.HeapAlloc))

	r.SetHelp(runtimeGCPauseTotal, "Cumulative GC stop-the-world pause time in seconds.")
	r.Gauge(runtimeGCPauseTotal).Set(float64(ms.PauseTotalNs) / 1e9)

	r.SetHelp(runtimeUptime, "Seconds since process start.")
	r.Gauge(runtimeUptime).Set(time.Since(processStart).Seconds())

	// The runtime/metrics bridge: scheduler and GC latency gauges the
	// MemStats view cannot provide (see runtimemetrics.go).
	r.captureRuntimeMetrics()

	b := ReadBuild()
	r.SetHelp(buildInfoGauge, "Build identity; value is always 1, the identity lives in the labels.")
	r.Gauge(buildInfoGauge,
		L("revision", b.Revision),
		L("dirty", strconv.FormatBool(b.Dirty)),
		L("go", b.GoVersion),
	).Set(1)
}
