package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a bounded, lock-striped ring of recent *wide events*
// — one self-contained record per HTTP request or per session state
// transition, carrying everything an operator needs to reconstruct
// what a live server was doing (route, status, latency, session id,
// trace id, bytes, error, and for slow requests the full span tree).
//
// The design is the black-box-recorder layer production services rely
// on: recording is observe-only (a couple of atomic ops plus one
// striped mutex, never on the join hot path), retention is bounded so
// it can stay always-on, and the whole ring can be dumped on demand
// (/debug/flightrecord), on SIGQUIT, or when a drain begins — i.e.
// exactly when the evidence would otherwise be gone.
//
// Striping mirrors the metrics registry: events hash onto one of a
// fixed number of stripes by sequence number (round-robin), so
// concurrent request goroutines never contend on a single ring mutex.
// A global atomic sequence number totally orders events across
// stripes; Snapshot merges the stripes back into that order, which is
// what makes the dump encoding deterministic for a given event set
// (TestFlightDumpGolden pins the exact bytes).

// FlightRecordSchema identifies the dump layout.
const FlightRecordSchema = "mc.flightrecord/v1"

// DefaultFlightCapacity is the default ring capacity (events retained).
const DefaultFlightCapacity = 256

// FlightEvent is one wide event. Zero-valued fields are omitted from
// dumps, so request events and session-transition events share one
// shape. Times are UnixNano so the encoding never depends on the
// marshaling host's time zone database.
type FlightEvent struct {
	// Seq is the recorder-assigned total order (1-based). Zero until the
	// event is recorded.
	Seq uint64 `json:"seq,omitempty"`
	// Time is the event's wall-clock time in Unix nanoseconds (stamped
	// at Record when left zero).
	Time int64 `json:"time_unix_nano,omitempty"`
	// Kind is "request" (one per HTTP request, recorded at request end)
	// or "session" (one per session state transition).
	Kind string `json:"kind"`
	// Route is the request's route name, or the session transition
	// (created, finished, deleted, evicted_idle, evicted_lru, shutdown).
	Route  string `json:"route,omitempty"`
	Method string `json:"method,omitempty"`
	Status int    `json:"status,omitempty"`
	// Session is the session id the event belongs to, when any.
	Session string `json:"session,omitempty"`
	// TraceID / SpanID correlate the event with the session's trace tree
	// and the structured log stream.
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
	// DurMicros is the request latency in microseconds.
	DurMicros int64 `json:"dur_us,omitempty"`
	BytesIn   int64 `json:"bytes_in,omitempty"`
	BytesOut  int64 `json:"bytes_out,omitempty"`
	// Err is the error message answered to the client, if any.
	Err string `json:"error,omitempty"`
	// Slow marks a request that tripped the slow-request watchdog; such
	// events carry their span subtree in Spans.
	Slow bool `json:"slow,omitempty"`
	// Inflight marks a request that had not completed when the dump was
	// taken (Status/DurMicros are unset: the request is still running).
	Inflight bool `json:"inflight,omitempty"`
	// Spans is the request's exported span subtree (slow or errored
	// requests only — the watchdog copies it in so post-hoc debugging
	// does not depend on the tracer still holding the spans).
	Spans []ExportedSpan `json:"spans,omitempty"`
}

// flightStripes is the lock-stripe width of a FlightRecorder.
const flightStripes = 8

type flightStripe struct {
	mu   sync.Mutex
	ring []FlightEvent
	next int
	n    int // events currently held
}

// FlightRecorder retains the most recent events in a fixed-capacity
// ring. All methods are safe for concurrent use and safe on a nil
// receiver (no-ops), so callers never branch on "is recording enabled".
type FlightRecorder struct {
	seq      atomic.Uint64
	recorded atomic.Uint64
	perRing  int
	stripes  [flightStripes]flightStripe
}

// NewFlightRecorder creates a recorder retaining about capacity events
// (rounded up to a multiple of the stripe width; capacity <= 0 selects
// DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	per := (capacity + flightStripes - 1) / flightStripes
	fr := &FlightRecorder{perRing: per}
	for i := range fr.stripes {
		fr.stripes[i].ring = make([]FlightEvent, per)
	}
	return fr
}

// Capacity returns the number of events the ring retains.
func (fr *FlightRecorder) Capacity() int {
	if fr == nil {
		return 0
	}
	return fr.perRing * flightStripes
}

// Record assigns the event its sequence number and appends it,
// overwriting the stripe's oldest event at capacity. It returns the
// assigned sequence number (0 on a nil recorder). It runs on every
// request and every session transition, so it must never allocate: the
// ring slots are pre-sized FlightEvent values and the event moves by
// copy.
//
//mc:hotpath
func (fr *FlightRecorder) Record(ev FlightEvent) uint64 {
	if fr == nil {
		return 0
	}
	seq := fr.seq.Add(1)
	ev.Seq = seq
	if ev.Time == 0 {
		ev.Time = time.Now().UnixNano()
	}
	fr.recorded.Add(1)
	st := &fr.stripes[seq%flightStripes]
	st.mu.Lock()
	st.ring[st.next] = ev
	st.next = (st.next + 1) % len(st.ring)
	if st.n < len(st.ring) {
		st.n++
	}
	st.mu.Unlock()
	return seq
}

// Recorded returns the total number of events ever recorded.
func (fr *FlightRecorder) Recorded() uint64 {
	if fr == nil {
		return 0
	}
	return fr.recorded.Load()
}

// Snapshot returns the retained events in sequence order.
func (fr *FlightRecorder) Snapshot() []FlightEvent {
	if fr == nil {
		return nil
	}
	var out []FlightEvent
	for i := range fr.stripes {
		st := &fr.stripes[i]
		st.mu.Lock()
		for j := 0; j < st.n; j++ {
			out = append(out, st.ring[j])
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FlightDump is the on-demand serialization of a recorder: the retained
// events, any caller-supplied in-flight events, loss accounting, and
// the machine context sampled at dump time. Field order is fixed by the
// struct and maps marshal with sorted keys, so for a given event set
// the encoding is byte-deterministic.
type FlightDump struct {
	Schema string `json:"schema"`
	// Reason says what triggered the dump: "http" (/debug/flightrecord),
	// "sigquit", "drain", "close".
	Reason string `json:"reason,omitempty"`
	// Time is the dump's wall-clock time in Unix nanoseconds (0 when the
	// caller wants a deterministic dump).
	Time int64 `json:"time_unix_nano,omitempty"`
	// Recorded / Retained / Dropped account for ring overwrite loss:
	// Dropped = Recorded - Retained events have already been evicted.
	Recorded uint64     `json:"recorded"`
	Retained int        `json:"retained"`
	Dropped  uint64     `json:"dropped"`
	Build    *BuildInfo `json:"build,omitempty"`
	// Runtime carries the mc_runtime_* gauge values sampled at dump
	// time, so every dump records the machine state it was taken under.
	Runtime map[string]float64 `json:"runtime,omitempty"`
	// Inflight are requests still running at dump time, oldest first —
	// the evidence a post-mortem needs when a request never finished.
	Inflight []FlightEvent `json:"inflight,omitempty"`
	Events   []FlightEvent `json:"events"`
}

// Dump builds a FlightDump of the recorder's current state. The dump is
// bare (no timestamp, build, or runtime context): deterministic for a
// given event set, which is what the golden test and the serve-layer
// tests rely on. Callers wanting machine context call Stamp.
func (fr *FlightRecorder) Dump() *FlightDump {
	events := fr.Snapshot()
	if events == nil {
		events = []FlightEvent{}
	}
	recorded := fr.Recorded()
	return &FlightDump{
		Schema:   FlightRecordSchema,
		Recorded: recorded,
		Retained: len(events),
		Dropped:  recorded - uint64(len(events)),
		Events:   events,
	}
}

// Stamp attaches the nondeterministic machine context to a dump: the
// wall-clock time, the build identity, and the mc_runtime_* gauges
// captured into reg (nil reg skips the runtime section).
func (d *FlightDump) Stamp(reason string, reg *Registry) *FlightDump {
	d.Reason = reason
	d.Time = time.Now().UnixNano()
	b := ReadBuild()
	d.Build = &b
	if reg != nil {
		reg.CaptureRuntime()
		snap := reg.Snapshot()
		rt := map[string]float64{}
		for _, key := range sortedGaugeKeys(snap.Gauges) {
			if strings.HasPrefix(key, "mc_runtime_") {
				rt[key] = snap.Gauges[key]
			}
		}
		if len(rt) > 0 {
			d.Runtime = rt
		}
	}
	return d
}

// sortedGaugeKeys returns the map's keys sorted (deterministic
// iteration; the mapiter analyzer bans raw map-range appends).
func sortedGaugeKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the dump as indented JSON. Encoding is deterministic
// for a given dump value: struct field order is fixed and map keys
// marshal sorted.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile atomically writes the dump to path (temp file + rename), so
// a dump racing a reader — or a second dump overwriting the first —
// never leaves a torn file.
func (d *FlightDump) WriteFile(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("telemetry: flight dump %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, ".flight-*.json")
	if err != nil {
		return fmt.Errorf("telemetry: flight dump %s: %w", path, err)
	}
	if err := d.WriteJSON(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("telemetry: flight dump %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("telemetry: flight dump %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("telemetry: flight dump %s: %w", path, err)
	}
	return nil
}

// ReadFlightDump parses a dump previously written with WriteJSON or
// WriteFile (used by mctop and the smoke assertions).
func ReadFlightDump(r io.Reader) (*FlightDump, error) {
	var d FlightDump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("telemetry: flight dump: %w", err)
	}
	if !strings.HasPrefix(d.Schema, "mc.flightrecord/") {
		return nil, fmt.Errorf("telemetry: flight dump: schema %q is not a flight record", d.Schema)
	}
	return &d, nil
}
