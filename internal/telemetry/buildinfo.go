package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the binary that produced a run: the VCS revision
// it was built from, whether the working tree was dirty, and the Go
// toolchain version. It is stamped into every telemetry Snapshot, the
// mc_build_info exposition gauge, and every runlog ledger record, so a
// measurement can always be traced back to the code that produced it.
type BuildInfo struct {
	// Revision is the vcs.revision build setting (full commit hash), or
	// "unknown" when the binary was built without VCS stamping (e.g.
	// `go test` binaries). Ledger writers may substitute a revision
	// recovered from the working tree (see internal/runlog).
	Revision string `json:"revision"`
	// Dirty reports vcs.modified: the working tree had uncommitted
	// changes at build time, so Revision alone does not pin the code.
	Dirty bool `json:"dirty"`
	// GoVersion is the toolchain that built the binary (runtime.Version
	// when debug.ReadBuildInfo is unavailable).
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuild returns the process's build identity via
// debug.ReadBuildInfo, cached after the first call. It never fails:
// missing VCS stamping yields Revision "unknown" and Dirty false.
func ReadBuild() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Revision: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}
