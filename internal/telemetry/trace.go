package telemetry

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Tracing: hierarchical span trees on top of the flat metric registry.
//
// PR 1's Span rolls one duration into mc_stage_seconds and forgets the
// shape of the run. A Tracer additionally remembers *structure*: every
// TraceSpan records its parent, its children, typed events, and string
// attributes, so a finished run can be exported as a Chrome trace_event
// file (about:tracing / Perfetto) or dumped as a human-readable tree.
// Ending a TraceSpan still observes mc_stage_seconds{stage="<name>"} when
// the tracer carries a registry, so the flat latency histograms keep
// working unchanged for dashboards while the tree view gains structure.
//
// Memory is bounded: a tracer retains at most MaxSpans spans (default
// 65536); spans started beyond the cap are counted as dropped and become
// no-ops, so tracing can stay always-on without risking the heap on
// pathological workloads. A nil *Tracer and a nil *TraceSpan are valid
// no-op receivers for every method, mirroring the registry's nil
// discipline: call sites never branch on "is tracing enabled".

// DefaultMaxSpans is the default span-retention cap of a Tracer.
const DefaultMaxSpans = 1 << 16

// spanEvent is one typed, timestamped point event inside a span.
type spanEvent struct {
	at    time.Time
	name  string
	attrs []Label
}

// TraceSpan is one node of a trace tree: a named timed operation with a
// parent, attributes, and point events. Create roots with Tracer.Start
// and children with Child; always End spans (unfinished spans export with
// an end time of "export now").
type TraceSpan struct {
	tr     *Tracer
	id     uint64
	parent uint64
	root   uint64 // trace id: the id of the tree's root span
	name   string
	start  time.Time

	mu     sync.Mutex
	end    time.Time
	attrs  []Label
	events []spanEvent
}

// Tracer collects spans into trees. The zero value is not ready; use
// NewTracer. All methods are safe for concurrent use; a nil *Tracer is a
// no-op tracer (Start returns nil, and nil spans no-op everywhere).
type Tracer struct {
	reg *Registry // optional: End bridges into mc_stage_seconds

	mu       sync.Mutex
	epoch    time.Time
	spans    []*TraceSpan
	nextID   uint64
	dropped  int64
	maxSpans int
}

// NewTracer creates a tracer. reg may be nil; when non-nil, every ended
// span also observes mc_stage_seconds{stage="<span name>"} so the flat
// stage histograms stay populated alongside the tree.
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg, epoch: time.Now(), maxSpans: DefaultMaxSpans}
}

// SetMaxSpans bounds span retention (n <= 0 restores the default). Only
// meaningful before spans are started.
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.mu.Lock()
	t.maxSpans = n
	t.mu.Unlock()
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded by the retention cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// register allocates and retains a span, or returns nil at the cap.
func (t *Tracer) register(parent *TraceSpan, name string, attrs []Label) *TraceSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.nextID++
	s := &TraceSpan{tr: t, id: t.nextID, name: name, start: now, attrs: sortLabels(attrs)}
	if parent != nil {
		s.parent = parent.id
		s.root = parent.root
	} else {
		s.root = s.id
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Start begins a new root span (a new trace tree).
func (t *Tracer) Start(name string, attrs ...Label) *TraceSpan {
	return t.register(nil, name, attrs)
}

// Child begins a child span under s. A nil receiver returns nil, so call
// chains degrade to no-ops when tracing is off.
func (s *TraceSpan) Child(name string, attrs ...Label) *TraceSpan {
	if s == nil {
		return nil
	}
	return s.tr.register(s, name, attrs)
}

// Event records a typed point event on the span.
func (s *TraceSpan) Event(name string, attrs ...Label) {
	if s == nil {
		return
	}
	ev := spanEvent{at: time.Now(), name: name, attrs: sortLabels(attrs)}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// SetAttr sets (or overwrites) one attribute on the span.
func (s *TraceSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt is SetAttr for integer values.
func (s *TraceSpan) SetAttrInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// End finishes the span, bridges its latency into the tracer registry's
// mc_stage_seconds{stage="<name>"} histogram, and returns the elapsed
// time. Ending twice keeps the first end time.
func (s *TraceSpan) End() time.Duration {
	if s == nil {
		return 0
	}
	now := time.Now()
	s.mu.Lock()
	if !s.end.IsZero() {
		d := s.end.Sub(s.start)
		s.mu.Unlock()
		return d
	}
	s.end = now
	s.mu.Unlock()
	d := now.Sub(s.start)
	if s.tr != nil && s.tr.reg != nil {
		//lint:allow metricname mc_stage_seconds is the cross-package stage rollup shared by trace spans and stage timers
		s.tr.reg.Histogram(StageHistogram, Label{Key: "stage", Value: s.name}).Observe(d.Seconds())
	}
	return d
}

// Name returns the span's name ("" on nil).
func (s *TraceSpan) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's id (0 on nil).
func (s *TraceSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the id of the span's root (0 on nil), shared by every
// span of one tree — the correlation key structured logs attach.
func (s *TraceSpan) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.root
}

// Tracer returns the owning tracer (nil on nil).
func (s *TraceSpan) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span, for log/trace
// correlation across call chains (see NewLogger).
func ContextWithSpan(ctx context.Context, s *TraceSpan) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext extracts the span installed by ContextWithSpan, or nil.
func SpanFromContext(ctx context.Context) *TraceSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return s
}
