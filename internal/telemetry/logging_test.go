package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logg := NewLogger(&buf, slog.LevelInfo)

	tr := NewTracer(nil)
	root := tr.Start("debug.session")
	child := root.Child("ssjoin.joinall")
	ctx := ContextWithSpan(context.Background(), child)

	logg.InfoContext(ctx, "joins complete", "configs", 5)
	out := buf.String()
	for _, want := range []string{
		"msg=\"joins complete\"",
		"configs=5",
		fmt.Sprintf("trace_id=%d", root.ID()),
		fmt.Sprintf("span_id=%d", child.ID()),
		"span=ssjoin.joinall",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q:\n%s", want, out)
		}
	}

	// Without a span in context, no correlation attrs appear.
	buf.Reset()
	logg.Info("plain")
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("uncorrelated line should carry no trace_id: %s", buf.String())
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	logg := NewLogger(&buf, slog.LevelWarn)
	logg.Info("hidden")
	logg.Debug("hidden too")
	logg.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info/debug leaked through warn level: %s", out)
	}
	if !strings.Contains(out, "visible") {
		t.Errorf("warn record missing: %s", out)
	}
}

func TestLoggerHandlerComposition(t *testing.T) {
	var buf bytes.Buffer
	logg := NewLogger(&buf, slog.LevelInfo).With("component", "test").WithGroup("g")
	tr := NewTracer(nil)
	s := tr.Start("root")
	logg.InfoContext(ContextWithSpan(context.Background(), s), "msg", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "component=test") || !strings.Contains(out, "g.k=v") {
		t.Errorf("WithAttrs/WithGroup lost through the correlate handler: %s", out)
	}
	if !strings.Contains(out, "span=root") {
		t.Errorf("correlation lost after With/WithGroup: %s", out)
	}
}

func TestNopLogger(t *testing.T) {
	l := NopLogger()
	// Must swallow everything without panicking, at any level.
	l.Debug("x")
	l.Info("x")
	l.Error("x", "k", "v")
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Error("NopLogger should report disabled at every level")
	}
	if LoggerOr(nil) == nil {
		t.Fatal("LoggerOr(nil) returned nil")
	}
	real := NopLogger()
	if LoggerOr(real) != real {
		t.Error("LoggerOr should pass through non-nil loggers")
	}
}
