package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// Structured logging with trace correlation. NewLogger wraps a standard
// slog text handler so that any record logged with a context carrying a
// TraceSpan (ContextWithSpan) automatically gains trace_id/span_id/span
// attributes — grep a trace id in the logs and you have every line of
// that pipeline run, the same correlation discipline production agents
// use. The cmd binaries log to stderr (quiet by default, -v for debug)
// so stdout stays reserved for their actual output (tables, JSON,
// interactive prompts).

// correlateHandler decorates records with the context's span identity.
type correlateHandler struct {
	inner slog.Handler
}

func (h correlateHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h correlateHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := SpanFromContext(ctx); s != nil {
		r.AddAttrs(
			slog.Uint64("trace_id", s.TraceID()),
			slog.Uint64("span_id", s.ID()),
			slog.String("span", s.Name()),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h correlateHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return correlateHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h correlateHandler) WithGroup(name string) slog.Handler {
	return correlateHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger returns a logger writing logfmt-style text to w at the given
// level, with span correlation (see package comment). Use slog.LevelWarn
// for quiet-by-default tools and slog.LevelDebug under -v.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(correlateHandler{inner: slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})})
}

// noopHandler discards everything (slog.DiscardHandler predates our go
// directive, so we carry our own).
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }

// NopLogger returns a logger that discards every record — the default
// for library code when no logger is injected.
func NopLogger() *slog.Logger { return slog.New(noopHandler{}) }

// LoggerOr returns l, or a no-op logger when l is nil.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
