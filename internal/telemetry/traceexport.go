package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace exporters. Export takes a consistent snapshot of the span set;
// unfinished spans are exported as if they ended "now", so a live tracer
// can be dumped mid-run. Output order is deterministic for a given span
// set: spans sort by (start, id), and ids are assigned in Start order.

// ExportedEvent is one span event in exported form.
type ExportedEvent struct {
	Name string `json:"name"`
	// OffsetMicros is the event time relative to the tracer epoch.
	OffsetMicros int64             `json:"ts_us"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// ExportedSpan is one span in exported form.
type ExportedSpan struct {
	ID          uint64            `json:"id"`
	ParentID    uint64            `json:"parent_id,omitempty"`
	TraceID     uint64            `json:"trace_id"`
	Name        string            `json:"name"`
	StartMicros int64             `json:"start_us"` // relative to tracer epoch
	DurMicros   int64             `json:"dur_us"`
	Unfinished  bool              `json:"unfinished,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Events      []ExportedEvent   `json:"events,omitempty"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Export snapshots every retained span, sorted by (start, id).
func (t *Tracer) Export() []ExportedSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	epoch := t.epoch
	spans := make([]*TraceSpan, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	out := make([]ExportedSpan, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		end := s.end
		attrs := labelMap(s.attrs)
		events := make([]ExportedEvent, 0, len(s.events))
		for _, ev := range s.events {
			events = append(events, ExportedEvent{
				Name:         ev.name,
				OffsetMicros: ev.at.Sub(epoch).Microseconds(),
				Attrs:        labelMap(ev.attrs),
			})
		}
		s.mu.Unlock()
		es := ExportedSpan{
			ID:          s.id,
			ParentID:    s.parent,
			TraceID:     s.root,
			Name:        s.name,
			StartMicros: s.start.Sub(epoch).Microseconds(),
			Attrs:       attrs,
		}
		if len(events) > 0 {
			es.Events = events
		}
		if end.IsZero() {
			end = now
			es.Unfinished = true
		}
		es.DurMicros = end.Sub(s.start).Microseconds()
		if es.DurMicros < 0 {
			es.DurMicros = 0
		}
		out = append(out, es)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartMicros != out[j].StartMicros {
			return out[i].StartMicros < out[j].StartMicros
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ExportSubtree exports the span subtree rooted at the span with id
// rootID: the root plus every retained descendant, in Export's
// deterministic (start, id) order. An unknown id yields nil. This is
// the slow-request watchdog's copy path: the subtree is snapshotted
// into the flight event so it survives the tracer's retention cap.
func (t *Tracer) ExportSubtree(rootID uint64) []ExportedSpan {
	if t == nil || rootID == 0 {
		return nil
	}
	spans := t.Export()
	children := make(map[uint64][]int, len(spans))
	byID := make(map[uint64]int, len(spans))
	for i := range spans {
		byID[spans[i].ID] = i
		children[spans[i].ParentID] = append(children[spans[i].ParentID], i)
	}
	if _, ok := byID[rootID]; !ok {
		return nil
	}
	keep := map[uint64]bool{}
	stack := []uint64{rootID}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if keep[id] {
			continue
		}
		keep[id] = true
		for _, ci := range children[id] {
			stack = append(stack, spans[ci].ID)
		}
	}
	out := make([]ExportedSpan, 0, len(keep))
	for i := range spans { // spans is sorted; preserve that order
		if keep[spans[i].ID] {
			out = append(out, spans[i])
		}
	}
	return out
}

// spanNode is an ExportedSpan with resolved children, for tree walks.
type spanNode struct {
	ExportedSpan
	children []*spanNode
}

// buildForest links exported spans into root trees. Spans whose parent
// was dropped by the retention cap are promoted to roots.
func buildForest(spans []ExportedSpan) []*spanNode {
	nodes := make(map[uint64]*spanNode, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &spanNode{ExportedSpan: spans[i]}
	}
	var roots []*spanNode
	for _, es := range spans { // spans is sorted; preserve that order
		n := nodes[es.ID]
		if p, ok := nodes[n.ParentID]; ok && n.ParentID != 0 {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// chromeEvent is one trace_event entry (the subset we emit).
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// assignLanes maps spans onto Chrome "thread" lanes such that every
// lane's slices are properly nested (Chrome's X events nest by time
// containment within one tid). A child takes its parent's lane when the
// lane is free at its start (sequential children stack under the
// parent); concurrent siblings spill onto fresh lanes. Greedy and
// deterministic over the sorted span set.
func assignLanes(roots []*spanNode) map[uint64]int {
	lanes := map[uint64]int{}
	var frontier []int64 // per-lane: end of the last completed subtree
	grab := func(start int64) int {
		for i, f := range frontier {
			if f <= start {
				return i
			}
		}
		frontier = append(frontier, 0)
		return len(frontier) - 1
	}
	var place func(n *spanNode, preferred int)
	place = func(n *spanNode, preferred int) {
		lane := preferred
		if lane < 0 || frontier[lane] > n.StartMicros {
			lane = grab(n.StartMicros)
		}
		lanes[n.ID] = lane
		frontier[lane] = n.StartMicros // entering: children may nest inside
		sort.Slice(n.children, func(i, j int) bool {
			if n.children[i].StartMicros != n.children[j].StartMicros {
				return n.children[i].StartMicros < n.children[j].StartMicros
			}
			return n.children[i].ID < n.children[j].ID
		})
		for _, c := range n.children {
			place(c, lane)
		}
		end := n.StartMicros + n.DurMicros
		if end > frontier[lane] {
			frontier[lane] = end
		}
	}
	for _, r := range roots {
		place(r, -1)
	}
	return lanes
}

// WriteChromeTrace writes the span set in the Chrome trace_event JSON
// format (load in about:tracing or https://ui.perfetto.dev). Spans become
// complete ("X") events with microsecond timestamps; span events become
// thread-scoped instant ("i") events; lanes are assigned so nesting in
// the viewer mirrors the parent/child tree.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Export()
	roots := buildForest(spans)
	lanes := assignLanes(roots)

	events := []chromeEvent{{
		Name: "process_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "matchcatcher"},
	}}
	var walk func(n *spanNode)
	walk = func(n *spanNode) {
		lane := lanes[n.ID]
		args := map[string]string{}
		for k, v := range n.Attrs {
			args[k] = v
		}
		args["span_id"] = fmt.Sprint(n.ID)
		args["trace_id"] = fmt.Sprint(n.TraceID)
		events = append(events, chromeEvent{
			Name: n.Name, Phase: "X", TS: n.StartMicros, Dur: n.DurMicros,
			PID: 1, TID: lane, Args: args,
		})
		for _, ev := range n.Events {
			events = append(events, chromeEvent{
				Name: ev.Name, Phase: "i", TS: ev.OffsetMicros,
				PID: 1, TID: lane, Scope: "t", Args: labelArgsCopy(ev.Attrs),
			})
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

func labelArgsCopy(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WriteTree writes a human-readable dump of the trace forest:
//
//	debug.session 128ms
//	├─ config.generate 1.8ms
//	└─ ssjoin.joinall 104ms
//	   ├─ ssjoin.config 31ms {config={name}}
//	   │  ├─ tokenize 2.1ms
//	   ...
func (t *Tracer) WriteTree(w io.Writer) error {
	spans := t.Export()
	roots := buildForest(spans)
	var wr func(n *spanNode, prefix string, last bool, depth int) error
	wr = func(n *spanNode, prefix string, last bool, depth int) error {
		connector := ""
		childPrefix := prefix
		if depth > 0 {
			if last {
				connector = prefix + "└─ "
				childPrefix = prefix + "   "
			} else {
				connector = prefix + "├─ "
				childPrefix = prefix + "│  "
			}
		}
		line := fmt.Sprintf("%s%s %s", connector, n.Name,
			time.Duration(n.DurMicros)*time.Microsecond)
		if n.Unfinished {
			line += " (unfinished)"
		}
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var sb strings.Builder
			for i, k := range keys {
				if i > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%s=%s", k, n.Attrs[k])
			}
			line += " {" + sb.String() + "}"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, ev := range n.Events {
			evLine := childPrefix
			if len(n.children) > 0 {
				evLine += "│"
			}
			if _, err := fmt.Fprintf(w, "%s  · %s\n", evLine, ev.Name); err != nil {
				return err
			}
		}
		for i, c := range n.children {
			if err := wr(c, childPrefix, i == len(n.children)-1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := wr(r, "", true, 0); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d spans dropped by the retention cap)\n", d); err != nil {
			return err
		}
	}
	return nil
}
