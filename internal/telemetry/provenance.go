package telemetry

import (
	"sort"
	"sync"
)

// Per-pair provenance: MatchCatcher explains why a blocker killed a true
// match, so its own pipeline should be able to explain what *it* did to
// any given pair. A Provenance recorder holds a small watch-list of
// (a_row, b_row) pairs — typically the -explain flags or a handful of
// gold matches — and every pipeline stage that makes a decision about a
// watched pair appends a typed event: the blocker rule that kept or
// dropped it, its exact similarity score and rank under each config, when
// the verifier showed it to the user and what label came back.
//
// Memory is bounded per pair (maxEventsPerPair); recording past the bound
// counts truncated events instead of growing. A nil *Provenance is a
// valid no-op recorder, and Active() lets hot paths skip watch checks
// entirely when nothing is watched.

// maxEventsPerPair bounds the event list of one watched pair.
const maxEventsPerPair = 512

// ProvEvent is one recorded decision about a watched pair. Attrs is a
// plain map so JSON encoding is deterministically key-sorted.
type ProvEvent struct {
	Seq   uint64            `json:"seq"`
	Stage string            `json:"stage"`
	Event string            `json:"event"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// PairTrace is the full recorded lineage of one watched pair.
type PairTrace struct {
	A         int         `json:"a_row"`
	B         int         `json:"b_row"`
	Events    []ProvEvent `json:"events"`
	Truncated int         `json:"truncated_events,omitempty"`
}

// Provenance records decision lineages for a watch-list of pairs.
type Provenance struct {
	mu    sync.RWMutex
	seq   uint64
	pairs map[int64]*PairTrace
	order [][2]int // watch insertion order is irrelevant; kept sorted on read
}

func provKey(a, b int) int64 { return int64(a)<<32 | int64(uint32(b)) }

// NewProvenance creates a recorder watching the given pairs.
func NewProvenance(pairs ...[2]int) *Provenance {
	p := &Provenance{pairs: map[int64]*PairTrace{}}
	for _, pr := range pairs {
		p.Watch(pr[0], pr[1])
	}
	return p
}

// Watch adds one pair to the watch-list (idempotent). Call during setup,
// before the pipeline runs.
func (p *Provenance) Watch(a, b int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	k := provKey(a, b)
	if _, dup := p.pairs[k]; !dup {
		p.pairs[k] = &PairTrace{A: a, B: b}
		p.order = append(p.order, [2]int{a, b})
	}
	p.mu.Unlock()
}

// Active reports whether anything is watched (false on nil), so call
// sites can skip per-pair work wholesale.
func (p *Provenance) Active() bool {
	if p == nil {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pairs) > 0
}

// Watching reports whether (a, b) is on the watch-list.
func (p *Provenance) Watching(a, b int) bool {
	if p == nil {
		return false
	}
	p.mu.RLock()
	_, ok := p.pairs[provKey(a, b)]
	p.mu.RUnlock()
	return ok
}

// WatchedPairs returns the watch-list sorted by (a, b).
func (p *Provenance) WatchedPairs() [][2]int {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	out := make([][2]int, len(p.order))
	copy(out, p.order)
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Record appends one event to (a, b)'s lineage; a no-op when the pair is
// not watched (or the recorder is nil), so callers can record
// unconditionally for candidate pairs they touch.
func (p *Provenance) Record(a, b int, stage, event string, attrs ...Label) {
	if p == nil {
		return
	}
	p.mu.Lock()
	pt := p.pairs[provKey(a, b)]
	if pt == nil {
		p.mu.Unlock()
		return
	}
	if len(pt.Events) >= maxEventsPerPair {
		pt.Truncated++
		p.mu.Unlock()
		return
	}
	p.seq++
	pt.Events = append(pt.Events, ProvEvent{
		Seq:   p.seq,
		Stage: stage,
		Event: event,
		Attrs: labelMap(sortLabels(attrs)),
	})
	p.mu.Unlock()
}

// Trace returns a deep copy of (a, b)'s lineage, or nil if not watched.
func (p *Provenance) Trace(a, b int) *PairTrace {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	pt := p.pairs[provKey(a, b)]
	if pt == nil {
		return nil
	}
	return pt.clone()
}

// Traces returns deep copies of every watched pair's lineage, sorted by
// (a, b) — the deterministic order reports embed.
func (p *Provenance) Traces() []*PairTrace {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	out := make([]*PairTrace, 0, len(p.pairs))
	for _, pt := range p.pairs {
		out = append(out, pt.clone())
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func (pt *PairTrace) clone() *PairTrace {
	cp := &PairTrace{A: pt.A, B: pt.B, Truncated: pt.Truncated}
	cp.Events = make([]ProvEvent, len(pt.Events))
	copy(cp.Events, pt.Events)
	// Attrs maps are reference types: give each copied event its own so
	// callers mutating a returned trace cannot corrupt recorder state.
	for i := range cp.Events {
		if src := cp.Events[i].Attrs; src != nil {
			dst := make(map[string]string, len(src))
			for k, v := range src {
				dst[k] = v
			}
			cp.Events[i].Attrs = dst
		}
	}
	return cp
}
