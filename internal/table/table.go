// Package table provides the tabular data model used throughout
// MatchCatcher: schemas, tuples, tables, attribute statistics, and CSV
// input/output.
//
// Values are stored as strings; the empty string denotes a missing value.
// Typing (string vs. numeric vs. categorical vs. boolean) is inferred where
// it is needed, by the config generator's attribute classifier.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// Missing is the in-table representation of a missing value.
const Missing = ""

// Table is an in-memory relation: a schema plus rows of string values.
// The zero value is an empty table with no schema; use New to create one
// with a schema.
type Table struct {
	name  string
	attrs []string
	index map[string]int // attribute name -> column position
	rows  [][]string
}

// New creates an empty table with the given name and schema. Attribute
// names must be unique and non-empty.
func New(name string, attrs []string) (*Table, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("table %q: schema must have at least one attribute", name)
	}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("table %q: attribute %d has empty name", name, i)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("table %q: duplicate attribute %q", name, a)
		}
		idx[a] = i
	}
	return &Table{name: name, attrs: append([]string(nil), attrs...), index: idx}, nil
}

// MustNew is like New but panics on error. It is intended for tests and
// examples with literal schemas.
func MustNew(name string, attrs []string) *Table {
	t, err := New(name, attrs)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Attrs returns the schema as a copy.
func (t *Table) Attrs() []string { return append([]string(nil), t.attrs...) }

// NumAttrs returns the number of attributes.
func (t *Table) NumAttrs() int { return len(t.attrs) }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.rows) }

// AttrIndex returns the column position of the named attribute, or -1 if
// the attribute is not in the schema.
func (t *Table) AttrIndex(attr string) int {
	if i, ok := t.index[attr]; ok {
		return i
	}
	return -1
}

// HasAttr reports whether the named attribute is in the schema.
func (t *Table) HasAttr(attr string) bool { return t.AttrIndex(attr) >= 0 }

// Append adds a tuple. The row must have exactly one value per attribute.
func (t *Table) Append(row []string) error {
	if len(row) != len(t.attrs) {
		return fmt.Errorf("table %q: row has %d values, schema has %d attributes", t.name, len(row), len(t.attrs))
	}
	t.rows = append(t.rows, append([]string(nil), row...))
	return nil
}

// MustAppend is like Append but panics on error.
func (t *Table) MustAppend(row []string) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Row returns the i-th tuple. The returned slice is owned by the table and
// must not be modified.
func (t *Table) Row(i int) []string { return t.rows[i] }

// Value returns the value of attribute column j in tuple i.
func (t *Table) Value(i, j int) string { return t.rows[i][j] }

// ValueByName returns the value of the named attribute in tuple i, and
// whether the attribute exists.
func (t *Table) ValueByName(i int, attr string) (string, bool) {
	j, ok := t.index[attr]
	if !ok {
		return "", false
	}
	return t.rows[i][j], true
}

// Column returns all values of attribute column j as a copy.
func (t *Table) Column(j int) []string {
	col := make([]string, len(t.rows))
	for i, r := range t.rows {
		col[i] = r[j]
	}
	return col
}

// Slice returns a new table holding the first n tuples (or all tuples if n
// exceeds the table size). Rows are shared, not copied; the result must be
// treated as read-only. It is used by the scaling experiments (Figure 9).
func (t *Table) Slice(n int) *Table {
	if n > len(t.rows) {
		n = len(t.rows)
	}
	return &Table{name: t.name, attrs: t.attrs, index: t.index, rows: t.rows[:n]}
}

// Range returns a read-only view of rows [lo, hi). Rows are shared, not
// copied. It backs the concurrent blocker driver, which partitions one
// table across workers.
func (t *Table) Range(lo, hi int) *Table {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.rows) {
		hi = len(t.rows)
	}
	if lo > hi {
		lo = hi
	}
	return &Table{name: t.name, attrs: t.attrs, index: t.index, rows: t.rows[lo:hi]}
}

// String returns a short description of the table.
func (t *Table) String() string {
	return fmt.Sprintf("%s(%s)[%d rows]", t.name, strings.Join(t.attrs, ","), len(t.rows))
}

// ReadCSV reads a table from CSV data. The first record is the header
// (the schema).
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %q: reading header: %w", name, err)
	}
	t, err := New(name, header)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %q: reading row %d: %w", name, len(t.rows)+1, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("table %q: row %d has %d fields, header has %d", name, len(t.rows)+1, len(rec), len(header))
		}
		t.rows = append(t.rows, rec)
	}
	return t, nil
}

// ReadCSVFile reads a table from the CSV file at path, using the file's
// base name (without extension) as the table name.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".csv")
	return ReadCSV(name, f)
}

// WriteCSV writes the table as CSV with a header record.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.attrs); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the CSV file at path.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
