package table

import (
	"strings"
)

// AttrStats summarizes one attribute of one table. These statistics drive
// the e-score (Definition 3.1 of the paper) and the long-attribute check
// (Section 3.2).
type AttrStats struct {
	Attr        string  // attribute name
	NonMissing  int     // number of tuples with a non-missing value
	Unique      int     // number of distinct non-missing values
	AvgTokenLen float64 // average number of word tokens over non-missing values

	// NonMissingRatio is n(f) of Definition 3.1: NonMissing / NumRows.
	NonMissingRatio float64
	// UniqueRatio is u(f) of Definition 3.1: Unique / NonMissing
	// (zero when every value is missing).
	UniqueRatio float64
}

// EScoreComponent returns e_T(f) = 2·n(f)·u(f) / (n(f)+u(f)), the harmonic
// mean of the non-missing and unique ratios (Definition 3.1). It is zero
// when both ratios are zero.
func (s AttrStats) EScoreComponent() float64 {
	n, u := s.NonMissingRatio, s.UniqueRatio
	if n+u == 0 {
		return 0
	}
	return 2 * n * u / (n + u)
}

// Stats computes per-attribute statistics for the whole table. Values are
// word-tokenized by whitespace for the length statistic.
func (t *Table) Stats() []AttrStats {
	out := make([]AttrStats, len(t.attrs))
	for j, a := range t.attrs {
		out[j] = t.AttrStatsFor(a)
		_ = a
	}
	return out
}

// AttrStatsFor computes statistics for the single named attribute. It
// returns a zero AttrStats if the attribute is not in the schema.
func (t *Table) AttrStatsFor(attr string) AttrStats {
	j := t.AttrIndex(attr)
	if j < 0 {
		return AttrStats{Attr: attr}
	}
	seen := make(map[string]struct{})
	s := AttrStats{Attr: attr}
	totalTokens := 0
	for _, row := range t.rows {
		v := row[j]
		if v == Missing {
			continue
		}
		s.NonMissing++
		seen[v] = struct{}{}
		totalTokens += len(strings.Fields(v))
	}
	s.Unique = len(seen)
	if n := len(t.rows); n > 0 {
		s.NonMissingRatio = float64(s.NonMissing) / float64(n)
	}
	if s.NonMissing > 0 {
		s.UniqueRatio = float64(s.Unique) / float64(s.NonMissing)
		s.AvgTokenLen = float64(totalTokens) / float64(s.NonMissing)
	}
	return s
}

// AvgTupleTokenLen returns the average total number of word tokens per
// tuple, summed over the given attributes (all attributes if attrs is nil).
// It gates the overlap-reuse optimization (Section 4.2: reuse triggers only
// when tuples average at least t tokens).
func (t *Table) AvgTupleTokenLen(attrs []string) float64 {
	if t.NumRows() == 0 {
		return 0
	}
	cols := make([]int, 0, len(t.attrs))
	if attrs == nil {
		for j := range t.attrs {
			cols = append(cols, j)
		}
	} else {
		for _, a := range attrs {
			if j := t.AttrIndex(a); j >= 0 {
				cols = append(cols, j)
			}
		}
	}
	total := 0
	for _, row := range t.rows {
		for _, j := range cols {
			if row[j] != Missing {
				total += len(strings.Fields(row[j]))
			}
		}
	}
	return float64(total) / float64(t.NumRows())
}
