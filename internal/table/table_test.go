package table

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNewValidatesSchema(t *testing.T) {
	if _, err := New("t", nil); err == nil {
		t.Fatal("want error for empty schema")
	}
	if _, err := New("t", []string{"a", ""}); err == nil {
		t.Fatal("want error for empty attribute name")
	}
	if _, err := New("t", []string{"a", "a"}); err == nil {
		t.Fatal("want error for duplicate attribute")
	}
	tb, err := New("t", []string{"name", "city"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := tb.NumAttrs(); got != 2 {
		t.Errorf("NumAttrs = %d, want 2", got)
	}
}

func TestAppendAndAccess(t *testing.T) {
	tb := MustNew("A", []string{"name", "city", "age"})
	if err := tb.Append([]string{"Dave Smith", "Altanta", "18"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := tb.Append([]string{"too", "short"}); err == nil {
		t.Fatal("want error for short row")
	}
	if got := tb.NumRows(); got != 1 {
		t.Fatalf("NumRows = %d, want 1", got)
	}
	if got := tb.Value(0, 1); got != "Altanta" {
		t.Errorf("Value(0,1) = %q, want Altanta", got)
	}
	v, ok := tb.ValueByName(0, "age")
	if !ok || v != "18" {
		t.Errorf("ValueByName(0,age) = %q,%v", v, ok)
	}
	if _, ok := tb.ValueByName(0, "nope"); ok {
		t.Error("ValueByName should report missing attribute")
	}
	if got := tb.AttrIndex("city"); got != 1 {
		t.Errorf("AttrIndex(city) = %d, want 1", got)
	}
	if got := tb.AttrIndex("nope"); got != -1 {
		t.Errorf("AttrIndex(nope) = %d, want -1", got)
	}
}

func TestAppendCopiesRow(t *testing.T) {
	tb := MustNew("A", []string{"x"})
	row := []string{"v"}
	tb.MustAppend(row)
	row[0] = "mutated"
	if got := tb.Value(0, 0); got != "v" {
		t.Errorf("table row aliased caller slice: got %q", got)
	}
}

func TestAttrsReturnsCopy(t *testing.T) {
	tb := MustNew("A", []string{"x", "y"})
	attrs := tb.Attrs()
	attrs[0] = "mutated"
	if got := tb.Attrs()[0]; got != "x" {
		t.Errorf("Attrs aliased internal schema: got %q", got)
	}
}

func TestSlice(t *testing.T) {
	tb := MustNew("A", []string{"x"})
	for _, v := range []string{"1", "2", "3"} {
		tb.MustAppend([]string{v})
	}
	s := tb.Slice(2)
	if s.NumRows() != 2 {
		t.Fatalf("Slice(2).NumRows = %d", s.NumRows())
	}
	if s.Value(1, 0) != "2" {
		t.Errorf("Slice value = %q", s.Value(1, 0))
	}
	if got := tb.Slice(99).NumRows(); got != 3 {
		t.Errorf("Slice(99).NumRows = %d, want 3", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := MustNew("A", []string{"name", "city"})
	tb.MustAppend([]string{"Dave, Jr.", "New York"})
	tb.MustAppend([]string{"", "LA"})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV("A", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRows() != 2 || got.NumAttrs() != 2 {
		t.Fatalf("round trip shape: %v", got)
	}
	if got.Value(0, 0) != "Dave, Jr." {
		t.Errorf("quoted value lost: %q", got.Value(0, 0))
	}
	if got.Value(1, 0) != Missing {
		t.Errorf("missing value lost: %q", got.Value(1, 0))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("A", strings.NewReader("")); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := ReadCSV("A", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("want error for ragged row")
	}
}

func TestAttrStats(t *testing.T) {
	tb := MustNew("A", []string{"name", "city"})
	tb.MustAppend([]string{"Dave Smith", "Atlanta"})
	tb.MustAppend([]string{"Dan Brown", ""})
	tb.MustAppend([]string{"Dave Smith", "Chicago"})
	tb.MustAppend([]string{"", "Atlanta"})

	s := tb.AttrStatsFor("name")
	if s.NonMissing != 3 {
		t.Errorf("name NonMissing = %d, want 3", s.NonMissing)
	}
	if s.Unique != 2 {
		t.Errorf("name Unique = %d, want 2", s.Unique)
	}
	if want := 3.0 / 4.0; s.NonMissingRatio != want {
		t.Errorf("name NonMissingRatio = %g, want %g", s.NonMissingRatio, want)
	}
	if want := 2.0 / 3.0; math.Abs(s.UniqueRatio-want) > 1e-12 {
		t.Errorf("name UniqueRatio = %g, want %g", s.UniqueRatio, want)
	}
	if want := 2.0; s.AvgTokenLen != want {
		t.Errorf("name AvgTokenLen = %g, want %g", s.AvgTokenLen, want)
	}

	c := tb.AttrStatsFor("city")
	if c.NonMissing != 3 || c.Unique != 2 {
		t.Errorf("city stats = %+v", c)
	}
	if z := tb.AttrStatsFor("nope"); z.NonMissing != 0 || z.EScoreComponent() != 0 {
		t.Errorf("missing attr stats = %+v", z)
	}
}

func TestEScoreComponentIsHarmonicMean(t *testing.T) {
	s := AttrStats{NonMissingRatio: 0.5, UniqueRatio: 1.0}
	want := 2 * 0.5 * 1.0 / 1.5
	if got := s.EScoreComponent(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EScoreComponent = %g, want %g", got, want)
	}
}

func TestAvgTupleTokenLen(t *testing.T) {
	tb := MustNew("A", []string{"name", "desc"})
	tb.MustAppend([]string{"a b", "c d e"})
	tb.MustAppend([]string{"f", ""})
	if got, want := tb.AvgTupleTokenLen(nil), 3.0; got != want {
		t.Errorf("AvgTupleTokenLen(all) = %g, want %g", got, want)
	}
	if got, want := tb.AvgTupleTokenLen([]string{"name"}), 1.5; got != want {
		t.Errorf("AvgTupleTokenLen(name) = %g, want %g", got, want)
	}
	empty := MustNew("E", []string{"x"})
	if got := empty.AvgTupleTokenLen(nil); got != 0 {
		t.Errorf("empty table AvgTupleTokenLen = %g", got)
	}
}

func TestStatsAllAttrs(t *testing.T) {
	tb := MustNew("A", []string{"x", "y"})
	tb.MustAppend([]string{"1", "2"})
	all := tb.Stats()
	if len(all) != 2 || all[0].Attr != "x" || all[1].Attr != "y" {
		t.Errorf("Stats = %+v", all)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/people.csv"
	tb := MustNew("people", []string{"name", "city"})
	tb.MustAppend([]string{"Dave", "Atlanta"})
	if err := tb.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "people" {
		t.Errorf("name from path = %q", got.Name())
	}
	if got.NumRows() != 1 || got.Value(0, 1) != "Atlanta" {
		t.Errorf("round trip lost data: %v", got)
	}
	if _, err := ReadCSVFile(dir + "/missing.csv"); err == nil {
		t.Error("want error for missing file")
	}
	if err := tb.WriteCSVFile(dir + "/nodir/x.csv"); err == nil {
		t.Error("want error for unwritable path")
	}
}

func TestTableString(t *testing.T) {
	tb := MustNew("T", []string{"a", "b"})
	tb.MustAppend([]string{"1", "2"})
	if got := tb.String(); !strings.Contains(got, "T(a,b)[1 rows]") {
		t.Errorf("String = %q", got)
	}
	if !tb.HasAttr("a") || tb.HasAttr("zz") {
		t.Error("HasAttr wrong")
	}
	col := tb.Column(1)
	if len(col) != 1 || col[0] != "2" {
		t.Errorf("Column = %v", col)
	}
	row := tb.Row(0)
	if len(row) != 2 || row[0] != "1" {
		t.Errorf("Row = %v", row)
	}
}
