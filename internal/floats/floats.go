// Package floats is the approved home for floating-point equality in
// MatchCatcher. The floatcmp analyzer (internal/lint) bans raw ==/!=
// between computed float64s everywhere else, so every score comparison
// is forced through one of these helpers and is therefore (a) named,
// (b) documented, and (c) auditable in one place.
//
// Background: similarity scores reach comparisons via different code
// paths (scratch vs. reused score caches, different summation orders),
// and an exact == that "usually" holds turns into platform- and
// schedule-dependent tie-breaking. PR 1's top-k total order exists
// because of exactly that bug.
package floats

import "math"

// Equal reports whether a and b are exactly equal. It is deliberately
// identical to a == b (NaN != NaN, -0 == +0); its value is the name:
// call sites assert they want an exact tie — e.g. the deterministic
// total-order tie-break over (score, idA, idB) — rather than a
// tolerance check.
func Equal(a, b float64) bool { return a == b }

// EqualWithin reports whether a and b differ by at most eps in
// absolute value. NaNs are never within any tolerance. Use this for
// threshold and convergence checks where scores come from different
// computation orders.
func EqualWithin(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// Less orders a before b in the NaN-total order: NaN sorts before all
// numbers, and -0 before +0 is not distinguished. It gives sorts over
// scores a deterministic order even when scores contain NaN (which a
// raw < comparator would shuffle nondeterministically, since NaN
// comparisons are always false).
func Less(a, b float64) bool {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	if aNaN || bNaN {
		return aNaN && !bNaN
	}
	return a < b
}
