package floats

import (
	"math"
	"sort"
	"testing"
)

func TestEqualIsExact(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1.5, 1.5, true},
		{0, math.Copysign(0, -1), true}, // -0 == +0, same as ==
		{1, math.Nextafter(1, 2), false},
		{math.NaN(), math.NaN(), false}, // NaN != NaN, same as ==
		{math.Inf(1), math.Inf(1), true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualWithin(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1.0, 1.0 + 1e-12, 1e-9, true},
		{1.0, 1.0 + 1e-6, 1e-9, false},
		{-1, 1, 2, true},                    // boundary: |a-b| == eps
		{math.NaN(), 1, math.Inf(1), false}, // NaN within nothing
		{1, math.NaN(), math.Inf(1), false},
	}
	for _, c := range cases {
		if got := EqualWithin(c.a, c.b, c.eps); got != c.want {
			t.Errorf("EqualWithin(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

// TestLessNaNTotalOrder pins the property Less exists for: sorting a
// slice containing NaNs is deterministic (NaNs first), where a raw <
// comparator would leave them wherever the sort's pivots happened to
// put them.
func TestLessNaNTotalOrder(t *testing.T) {
	if !Less(math.NaN(), -math.MaxFloat64) {
		t.Error("Less(NaN, -max) = false, want true (NaN sorts first)")
	}
	if Less(1, math.NaN()) {
		t.Error("Less(1, NaN) = true, want false")
	}
	if Less(math.NaN(), math.NaN()) {
		t.Error("Less(NaN, NaN) = true, want false (irreflexive)")
	}
	if !Less(1, 2) || Less(2, 1) || Less(1, 1) {
		t.Error("Less must agree with < on ordinary numbers")
	}

	xs := []float64{3, math.NaN(), 1, math.Inf(-1), math.NaN(), 2}
	sort.Slice(xs, func(i, j int) bool { return Less(xs[i], xs[j]) })
	for i := 0; i < 2; i++ {
		if !math.IsNaN(xs[i]) {
			t.Fatalf("after sort, xs[%d] = %v, want NaN first; xs = %v", i, xs[i], xs)
		}
	}
	want := []float64{math.Inf(-1), 1, 2, 3}
	for i, w := range want {
		if xs[i+2] != w {
			t.Fatalf("after sort, xs[%d] = %v, want %v; xs = %v", i+2, xs[i+2], w, xs)
		}
	}
}
