package ranker

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/floats"
	"matchcatcher/internal/rforest"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/telemetry"
)

// Mode selects the verifier's ranking strategy.
type Mode int

// The verifier modes.
const (
	// ModeLearning is the paper's hybrid strategy: MedRank bootstrap,
	// then three hybrid active-learning iterations (n/4 controversial +
	// 3n/4 high-confidence pairs), then pure online learning.
	ModeLearning Mode = iota
	// ModeWMR is the weighted-median-ranking baseline the paper compares
	// against in §6.5.
	ModeWMR
)

// Options tunes the verifier. Zero values select the paper's settings.
type Options struct {
	N int // pairs shown per iteration (default 20)
	// ALIterations is the number of hybrid active-learning iterations
	// (default 3; negative disables the hybrid phase entirely, for the
	// §6.5 sensitivity sweep).
	ALIterations   int
	StopAfterEmpty int // stop after this many consecutive matchless iterations (default 2)
	MaxIterations  int // safety cap; 0 = none
	Mode           Mode
	Seed           int64
	Forest         rforest.Options
	// Metrics receives the verifier's telemetry (iteration counters,
	// forest fit/predict latency, hybrid split sizes). Nil selects
	// telemetry.Default(); telemetry.Disabled() switches it off.
	Metrics *telemetry.Registry
	// Trace is the parent span forest-fit/predict spans hang under. The
	// core debugger re-parents it every iteration (SetTraceParent) so the
	// spans nest inside the iteration span. Nil disables tracing.
	Trace *telemetry.TraceSpan
	// Provenance records each watched pair's verifier lineage: candidate
	// pool entry and aggregate rank, when it was shown, and its label.
	Provenance *telemetry.Provenance
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 20
	}
	switch {
	case o.ALIterations == 0:
		o.ALIterations = 3
	case o.ALIterations < 0:
		o.ALIterations = 0
	}
	if o.StopAfterEmpty == 0 {
		o.StopAfterEmpty = 2
	}
	if o.Forest.Trees == 0 {
		o.Forest.Trees = 10
	}
	return o
}

// FeatureFunc computes a pair's feature vector (feature.Extractor.Vector).
type FeatureFunc func(a, b int32) []float64

// Verifier drives the interactive loop over E, the union of the top-k
// lists. Call Next for the pairs to show, label them, pass the labels to
// Feedback, and repeat until Done.
type Verifier struct {
	opt   Options
	lists []ssjoin.TopKList
	feats FeatureFunc

	ids     []int64
	byID    map[int64]int
	vecs    [][]float64
	labeled map[int]bool // item index -> label
	matches []blocker.Pair

	iter        int
	emptyStreak int
	alRounds    int
	haveMatch   bool
	haveNon     bool

	order   []blocker.Pair // bootstrap/WMR global order
	cursor  int
	weights []float64 // WMR per-list weights
	rng     *rand.Rand

	pending []int // item indices returned by the last Next
	forest  *rforest.Forest
	stale   bool

	vm    verifierMetrics
	trace *telemetry.TraceSpan
	prov  *telemetry.Provenance
}

// verifierMetrics holds the resolved telemetry instruments (one registry
// lookup at construction; hot calls are plain atomic updates).
type verifierMetrics struct {
	iterations     *telemetry.Counter
	alIterations   *telemetry.Counter
	matches        *telemetry.Counter
	labelsGiven    *telemetry.Counter
	controversial  *telemetry.Counter
	confident      *telemetry.Counter
	fitSeconds     *telemetry.Histogram
	predictSeconds *telemetry.Histogram
	labeledGauge   *telemetry.Gauge
	candidates     *telemetry.Gauge
}

func newVerifierMetrics(reg *telemetry.Registry) verifierMetrics {
	reg = telemetry.Or(reg)
	return verifierMetrics{
		iterations:     reg.Counter("mc_ranker_iterations_total"),
		alIterations:   reg.Counter("mc_ranker_al_iterations_total"),
		matches:        reg.Counter("mc_ranker_matches_total"),
		labelsGiven:    reg.Counter("mc_ranker_labels_total"),
		controversial:  reg.Counter("mc_ranker_controversial_pairs_total"),
		confident:      reg.Counter("mc_ranker_confident_pairs_total"),
		fitSeconds:     reg.Histogram("mc_ranker_forest_fit_seconds"),
		predictSeconds: reg.Histogram("mc_ranker_forest_predict_seconds"),
		labeledGauge:   reg.Gauge("mc_ranker_labeled_pairs"),
		candidates:     reg.Gauge("mc_ranker_candidates"),
	}
}

// NewVerifier builds a verifier over the per-config top-k lists.
func NewVerifier(lists []ssjoin.TopKList, feats FeatureFunc, opt Options) *Verifier {
	opt = opt.withDefaults()
	v := &Verifier{
		opt:     opt,
		lists:   lists,
		feats:   feats,
		byID:    map[int64]int{},
		labeled: map[int]bool{},
		rng:     rand.New(rand.NewSource(opt.Seed)),
		stale:   true,
		vm:      newVerifierMetrics(opt.Metrics),
		trace:   opt.Trace,
		prov:    opt.Provenance,
	}
	for _, l := range lists {
		for _, p := range l.Pairs {
			id := pairID(p.A, p.B)
			if _, ok := v.byID[id]; !ok {
				v.byID[id] = len(v.ids)
				v.ids = append(v.ids, id)
			}
		}
	}
	v.vecs = make([][]float64, len(v.ids))
	v.weights = make([]float64, len(lists))
	for i := range v.weights {
		v.weights[i] = 1
	}
	v.order = aggregate(lists, v.weights, v.rng)
	v.vm.candidates.Set(float64(len(v.ids)))
	if v.prov.Active() {
		for _, w := range v.prov.WatchedPairs() {
			idx, inPool := v.byID[pairID(int32(w[0]), int32(w[1]))]
			_ = idx
			if !inPool {
				v.prov.Record(w[0], w[1], "verifier", "not_in_pool",
					telemetry.L("e_size", strconv.Itoa(len(v.ids))))
				continue
			}
			pos := 0
			for i, p := range v.order {
				if p.A == w[0] && p.B == w[1] {
					pos = i + 1
					break
				}
			}
			v.prov.Record(w[0], w[1], "verifier", "in_pool",
				telemetry.L("aggregate_rank", strconv.Itoa(pos)),
				telemetry.L("e_size", strconv.Itoa(len(v.ids))))
		}
	}
	return v
}

// SetTraceParent re-parents the verifier's fit/predict trace spans —
// the core debugger points it at each iteration's span so the forest
// spans nest under the iteration they belong to.
func (v *Verifier) SetTraceParent(s *telemetry.TraceSpan) { v.trace = s }

// NumCandidates returns |E|, the number of distinct candidate pairs.
func (v *Verifier) NumCandidates() int { return len(v.ids) }

// Ranking returns the current ranked view of the unlabeled candidate
// pool. Before the learner has seen both classes (and always in WMR
// mode) it is the aggregated bootstrap order; afterwards pairs are
// ordered by the forest's positive confidence, ties broken by pool
// index — the same order Next's confident phase consumes. Its only
// side effect is lazily training the seed-deterministic forest that
// the next Next would train anyway, so a caller may page through the
// ranking between iterations without perturbing the session's
// trajectory (the same-seed report stays byte-identical whether or not
// Ranking was ever called).
func (v *Verifier) Ranking() []blocker.Pair {
	if v.opt.Mode == ModeWMR || !v.haveMatch || !v.haveNon {
		out := make([]blocker.Pair, 0, len(v.ids)-len(v.labeled))
		for _, p := range v.order {
			idx := v.byID[pairID(int32(p.A), int32(p.B))]
			if _, done := v.labeled[idx]; !done {
				out = append(out, p)
			}
		}
		return out
	}
	v.ensureForest()
	type scored struct {
		idx  int
		conf float64
	}
	ranked := make([]scored, 0, len(v.ids)-len(v.labeled))
	for i := range v.ids {
		if _, done := v.labeled[i]; done {
			continue
		}
		ranked = append(ranked, scored{i, v.forest.Confidence(v.vec(i))})
	}
	sort.Slice(ranked, func(x, y int) bool {
		if !floats.Equal(ranked[x].conf, ranked[y].conf) {
			return ranked[x].conf > ranked[y].conf
		}
		return ranked[x].idx < ranked[y].idx
	})
	out := make([]blocker.Pair, len(ranked))
	for i, s := range ranked {
		out[i] = idPair(v.ids[s.idx])
	}
	return out
}

// Iterations returns the number of completed Feedback rounds.
func (v *Verifier) Iterations() int { return v.iter }

// Matches returns the confirmed matches so far (in confirmation order).
func (v *Verifier) Matches() []blocker.Pair { return v.matches }

// Done reports the paper's stopping condition: no new matches in
// StopAfterEmpty consecutive iterations, every candidate labeled, or the
// iteration cap reached.
func (v *Verifier) Done() bool {
	if len(v.labeled) >= len(v.ids) {
		return true
	}
	if v.iter > 0 && v.emptyStreak >= v.opt.StopAfterEmpty {
		return true
	}
	if v.opt.MaxIterations > 0 && v.iter >= v.opt.MaxIterations {
		return true
	}
	return false
}

func (v *Verifier) vec(i int) []float64 {
	if v.vecs[i] == nil {
		id := v.ids[i]
		v.vecs[i] = v.feats(int32(id>>32), int32(uint32(id)))
	}
	return v.vecs[i]
}

// Next returns up to N unlabeled pairs to show the user. It returns nil
// when the verifier is done. Every Next must be followed by Feedback.
func (v *Verifier) Next() []blocker.Pair {
	if v.Done() {
		return nil
	}
	var idxs []int
	switch {
	case v.opt.Mode == ModeWMR, !v.haveMatch || !v.haveNon:
		idxs = v.nextFromOrder()
	case v.alRounds < v.opt.ALIterations:
		idxs = v.nextHybrid()
	default:
		idxs = v.nextConfident(v.opt.N, nil)
	}
	v.pending = idxs
	out := make([]blocker.Pair, len(idxs))
	for i, idx := range idxs {
		out[i] = idPair(v.ids[idx])
		if v.prov.Watching(out[i].A, out[i].B) {
			v.prov.Record(out[i].A, out[i].B, "verifier", "shown",
				telemetry.L("iteration", strconv.Itoa(v.iter+1)),
				telemetry.L("position", strconv.Itoa(i+1)))
		}
	}
	return out
}

// nextFromOrder walks the aggregated global list.
func (v *Verifier) nextFromOrder() []int {
	var idxs []int
	for v.cursor < len(v.order) && len(idxs) < v.opt.N {
		idx := v.byID[pairID(int32(v.order[v.cursor].A), int32(v.order[v.cursor].B))]
		v.cursor++
		if _, done := v.labeled[idx]; !done {
			idxs = append(idxs, idx)
		}
	}
	return idxs
}

// nextHybrid picks n/4 controversial pairs (confidence nearest 0.5) and
// fills the rest with the highest-confidence pairs (Section 5's hybrid
// that serves both the learner and the user's hunt for matches).
func (v *Verifier) nextHybrid() []int {
	v.ensureForest()
	nContro := v.opt.N / 4
	type scored struct {
		idx  int
		conf float64
	}
	var unlabeled []scored
	predStart := time.Now()
	psp := v.trace.Child("verifier.predict")
	for i := range v.ids {
		if _, done := v.labeled[i]; done {
			continue
		}
		unlabeled = append(unlabeled, scored{i, v.forest.Confidence(v.vec(i))})
	}
	psp.SetAttrInt("pairs", int64(len(unlabeled)))
	psp.End()
	v.vm.predictSeconds.Observe(time.Since(predStart).Seconds())
	sort.Slice(unlabeled, func(x, y int) bool {
		dx := math.Abs(unlabeled[x].conf - 0.5)
		dy := math.Abs(unlabeled[y].conf - 0.5)
		if !floats.Equal(dx, dy) {
			return dx < dy
		}
		return unlabeled[x].idx < unlabeled[y].idx
	})
	taken := map[int]bool{}
	var idxs []int
	for _, s := range unlabeled {
		if len(idxs) >= nContro {
			break
		}
		idxs = append(idxs, s.idx)
		taken[s.idx] = true
	}
	v.vm.controversial.Add(int64(len(idxs)))
	return append(idxs, v.nextConfident(v.opt.N-len(idxs), taken)...)
}

// nextConfident returns the n unlabeled pairs with the highest positive
// prediction confidence, skipping any in taken.
func (v *Verifier) nextConfident(n int, taken map[int]bool) []int {
	v.ensureForest()
	type scored struct {
		idx  int
		conf float64
	}
	var unlabeled []scored
	predStart := time.Now()
	psp := v.trace.Child("verifier.predict")
	for i := range v.ids {
		if _, done := v.labeled[i]; done {
			continue
		}
		if taken[i] {
			continue
		}
		unlabeled = append(unlabeled, scored{i, v.forest.Confidence(v.vec(i))})
	}
	psp.SetAttrInt("pairs", int64(len(unlabeled)))
	psp.End()
	v.vm.predictSeconds.Observe(time.Since(predStart).Seconds())
	sort.Slice(unlabeled, func(x, y int) bool {
		if !floats.Equal(unlabeled[x].conf, unlabeled[y].conf) {
			return unlabeled[x].conf > unlabeled[y].conf
		}
		return unlabeled[x].idx < unlabeled[y].idx
	})
	var idxs []int
	for _, s := range unlabeled {
		if len(idxs) >= n {
			break
		}
		idxs = append(idxs, s.idx)
	}
	v.vm.confident.Add(int64(len(idxs)))
	return idxs
}

func (v *Verifier) ensureForest() {
	if !v.stale && v.forest != nil {
		return
	}
	// Train on the labeled set in sorted index order: map iteration order
	// is randomized, and the forest's bootstrap draws examples by slice
	// position, so the build order must be fixed for the seeded training
	// to be reproducible.
	idxs := make([]int, 0, len(v.labeled))
	for idx := range v.labeled {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	exs := make([]rforest.Example, 0, len(idxs))
	for _, idx := range idxs {
		exs = append(exs, rforest.Example{X: v.vec(idx), Y: v.labeled[idx]})
	}
	fopt := v.opt.Forest
	fopt.Seed = v.opt.Seed + int64(v.iter)
	fitStart := time.Now()
	fsp := v.trace.Child("verifier.fit")
	f, err := rforest.Train(exs, fopt)
	fsp.SetAttrInt("examples", int64(len(exs)))
	fsp.SetAttrInt("trees", int64(fopt.Trees))
	fsp.End()
	v.vm.fitSeconds.Observe(time.Since(fitStart).Seconds())
	if err != nil {
		// No labels yet; callers only reach here after bootstrap, but be
		// safe and fall back to a trivial forest via a single negative.
		f, _ = rforest.Train([]rforest.Example{{X: make([]float64, len(v.vec(0))), Y: false}}, fopt)
	}
	v.forest = f
	v.stale = false
}

// Feedback records the user's labels for the pairs of the last Next call
// (aligned by position) and reranks for the next iteration.
func (v *Verifier) Feedback(labels []bool) error {
	if len(labels) != len(v.pending) {
		return fmt.Errorf("ranker: %d labels for %d pending pairs", len(labels), len(v.pending))
	}
	wasHybrid := v.opt.Mode == ModeLearning && v.haveMatch && v.haveNon && v.alRounds < v.opt.ALIterations
	newMatches := 0
	roundPairs := make(map[int64]bool, len(labels))
	for i, y := range labels {
		idx := v.pending[i]
		if _, dup := v.labeled[idx]; dup {
			continue
		}
		v.labeled[idx] = y
		p := idPair(v.ids[idx])
		if v.prov.Watching(p.A, p.B) {
			v.prov.Record(p.A, p.B, "verifier", "labeled",
				telemetry.L("label", strconv.FormatBool(y)),
				telemetry.L("iteration", strconv.Itoa(v.iter+1)))
		}
		if y {
			v.haveMatch = true
			newMatches++
			v.matches = append(v.matches, p)
			roundPairs[v.ids[idx]] = true
			if v.prov.Watching(p.A, p.B) {
				v.prov.Record(p.A, p.B, "verifier", "confirmed_match",
					telemetry.L("match_number", strconv.Itoa(len(v.matches))))
			}
		} else {
			v.haveNon = true
		}
	}
	v.pending = nil
	v.iter++
	v.stale = true
	v.vm.iterations.Inc()
	v.vm.labelsGiven.Add(int64(len(labels)))
	v.vm.matches.Add(int64(newMatches))
	v.vm.labeledGauge.Set(float64(len(v.labeled)))
	if wasHybrid {
		v.alRounds++
		v.vm.alIterations.Inc()
	}
	if newMatches == 0 {
		v.emptyStreak++
	} else {
		v.emptyStreak = 0
	}
	if v.opt.Mode == ModeWMR {
		// w_i <- w_i * (1 + log(1 + r_i)), r_i = matches of this round
		// appearing in list i; then renormalize and re-aggregate.
		total := 0.0
		for i, l := range v.lists {
			r := 0
			for _, p := range l.Pairs {
				if roundPairs[pairID(p.A, p.B)] {
					r++
				}
			}
			v.weights[i] *= 1 + math.Log(1+float64(r))
			total += v.weights[i]
		}
		for i := range v.weights {
			v.weights[i] /= total
		}
		v.order = aggregate(v.lists, v.weights, v.rng)
		v.cursor = 0
	}
	return nil
}

// RunResult summarizes a completed verifier run.
type RunResult struct {
	Matches            []blocker.Pair
	Iterations         int
	LabelsGiven        int
	MatchesByIteration []int
}

// Session is the verifier-loop surface Run drives: both *Verifier and
// the core Debugger (which wraps each round with iteration telemetry)
// satisfy it.
type Session interface {
	Done() bool
	Next() []blocker.Pair
	Feedback(labels []bool) error
	Matches() []blocker.Pair
	Iterations() int
}

// Run drives a session to its stopping condition with the given labeler
// (typically the synthetic user oracle).
func Run(v Session, label func(a, b int) bool) RunResult {
	var res RunResult
	for !v.Done() {
		pairs := v.Next()
		if len(pairs) == 0 {
			break
		}
		labels := make([]bool, len(pairs))
		found := 0
		for i, p := range pairs {
			labels[i] = label(p.A, p.B)
			if labels[i] {
				found++
			}
		}
		if err := v.Feedback(labels); err != nil {
			panic(err) // programming error: labels always align with Next
		}
		res.LabelsGiven += len(labels)
		res.MatchesByIteration = append(res.MatchesByIteration, found)
	}
	res.Matches = v.Matches()
	res.Iterations = v.Iterations()
	return res
}
