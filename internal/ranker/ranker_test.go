package ranker

import (
	"math/rand"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/ssjoin"
)

// lists51 encodes Example 5.1 / Figure 8 of the paper: items a,b,c,d as
// pairs (0,0),(1,1),(2,2),(3,3) across three top-k lists.
func lists51() []ssjoin.TopKList {
	mk := func(pairs ...ssjoin.ScoredPair) ssjoin.TopKList {
		return ssjoin.TopKList{Pairs: pairs}
	}
	a := func(s float64) ssjoin.ScoredPair { return ssjoin.ScoredPair{A: 0, B: 0, Score: s} }
	b := func(s float64) ssjoin.ScoredPair { return ssjoin.ScoredPair{A: 1, B: 1, Score: s} }
	c := func(s float64) ssjoin.ScoredPair { return ssjoin.ScoredPair{A: 2, B: 2, Score: s} }
	d := func(s float64) ssjoin.ScoredPair { return ssjoin.ScoredPair{A: 3, B: 3, Score: s} }
	return []ssjoin.TopKList{
		mk(a(1.0), b(0.8), c(0.8), d(0.6)),
		mk(a(0.9), c(0.7), d(0.6)),
		mk(b(0.8), a(0.5), c(0.3), d(0.2)),
	}
}

func TestCompetitionRanks(t *testing.T) {
	l := lists51()[0]
	r := competitionRanks(l)
	want := map[int64]int{pairID(0, 0): 1, pairID(1, 1): 2, pairID(2, 2): 2, pairID(3, 3): 4}
	for id, w := range want {
		if r[id] != w {
			t.Errorf("rank[%d] = %d, want %d", id, r[id], w)
		}
	}
}

// TestMedRankExample51 reproduces Figure 8: global order a(1), {b,c}(2), d(4).
func TestMedRankExample51(t *testing.T) {
	order := MedRank(lists51(), 1)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != (blocker.Pair{A: 0, B: 0}) {
		t.Errorf("first = %v, want a", order[0])
	}
	if order[3] != (blocker.Pair{A: 3, B: 3}) {
		t.Errorf("last = %v, want d", order[3])
	}
	mid := map[blocker.Pair]bool{order[1]: true, order[2]: true}
	if !mid[blocker.Pair{A: 1, B: 1}] || !mid[blocker.Pair{A: 2, B: 2}] {
		t.Errorf("middle = %v, want {b,c}", order[1:3])
	}
}

func TestMedRankEmptyAndWeightless(t *testing.T) {
	if got := MedRank(nil, 1); len(got) != 0 {
		t.Errorf("empty lists order = %v", got)
	}
	if got := aggregate(lists51(), []float64{0, 0, 0}, rand.New(rand.NewSource(1))); got != nil {
		t.Errorf("zero weights order = %v", got)
	}
}

func TestWeightedAggregationShifts(t *testing.T) {
	// Weighting list 3 heavily must put b (rank 1 in L3) first.
	order := aggregate(lists51(), []float64{0.05, 0.05, 0.9}, rand.New(rand.NewSource(1)))
	if order[0] != (blocker.Pair{A: 1, B: 1}) {
		t.Errorf("first = %v, want b under L3-heavy weights", order[0])
	}
}

// syntheticSetup builds a verifier scenario: candidates (i,j) for i,j<n;
// gold matches are the diagonal; features separate them cleanly except for
// a band of ambiguous pairs.
func syntheticSetup(n int, seed int64, mode Mode) (*Verifier, func(a, b int) bool, int) {
	rng := rand.New(rand.NewSource(seed))
	var pairs []ssjoin.ScoredPair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			score := rng.Float64() * 0.5
			if i == j {
				score = 0.5 + rng.Float64()*0.5
			}
			pairs = append(pairs, ssjoin.ScoredPair{A: int32(i), B: int32(j), Score: score})
		}
	}
	// Two lists with slightly different orders.
	l1 := ssjoin.TopKList{Pairs: append([]ssjoin.ScoredPair(nil), pairs...)}
	l2 := ssjoin.TopKList{Pairs: append([]ssjoin.ScoredPair(nil), pairs...)}
	for i := range l2.Pairs {
		l2.Pairs[i].Score = l2.Pairs[i].Score*0.8 + 0.1
	}
	sortList := func(l *ssjoin.TopKList) {
		for i := 0; i < len(l.Pairs); i++ {
			for j := i + 1; j < len(l.Pairs); j++ {
				if l.Pairs[j].Score > l.Pairs[i].Score {
					l.Pairs[i], l.Pairs[j] = l.Pairs[j], l.Pairs[i]
				}
			}
		}
	}
	sortList(&l1)
	sortList(&l2)
	feats := func(a, b int32) []float64 {
		same := 0.0
		if a == b {
			same = 1
		}
		return []float64{same*0.6 + rng.Float64()*0.4, rng.Float64()}
	}
	v := NewVerifier([]ssjoin.TopKList{l1, l2}, feats, Options{N: 8, Seed: seed, Mode: mode})
	label := func(a, b int) bool { return a == b }
	return v, label, n
}

func TestVerifierFindsMatches(t *testing.T) {
	v, label, n := syntheticSetup(12, 3, ModeLearning)
	if v.NumCandidates() != n*n {
		t.Fatalf("candidates = %d", v.NumCandidates())
	}
	res := Run(v, label)
	if len(res.Matches) < n*3/4 {
		t.Errorf("found %d/%d matches", len(res.Matches), n)
	}
	if res.Iterations == 0 || res.LabelsGiven == 0 {
		t.Error("no iterations recorded")
	}
	// All reported matches must be true.
	for _, p := range res.Matches {
		if p.A != p.B {
			t.Errorf("false match reported: %v", p)
		}
	}
	// MatchesByIteration sums to total matches.
	sum := 0
	for _, m := range res.MatchesByIteration {
		sum += m
	}
	if sum != len(res.Matches) {
		t.Errorf("per-iteration sum %d != %d", sum, len(res.Matches))
	}
}

func TestVerifierWMRMode(t *testing.T) {
	v, label, n := syntheticSetup(10, 5, ModeWMR)
	res := Run(v, label)
	if len(res.Matches) == 0 {
		t.Error("WMR found nothing")
	}
	for _, p := range res.Matches {
		if p.A != p.B {
			t.Errorf("false match: %v", p)
		}
	}
	_ = n
}

func TestVerifierStopsAfterEmptyIterations(t *testing.T) {
	// No true matches at all: the verifier must stop after
	// StopAfterEmpty iterations.
	var pairs []ssjoin.ScoredPair
	for i := 0; i < 30; i++ {
		pairs = append(pairs, ssjoin.ScoredPair{A: int32(i), B: int32(i + 100), Score: 1 - float64(i)/100})
	}
	v := NewVerifier(
		[]ssjoin.TopKList{{Pairs: pairs}},
		func(a, b int32) []float64 { return []float64{float64(a) / 30} },
		Options{N: 5, StopAfterEmpty: 2, Seed: 1},
	)
	res := Run(v, func(a, b int) bool { return false })
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2 (stop after 2 empty)", res.Iterations)
	}
	if len(res.Matches) != 0 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestVerifierMaxIterations(t *testing.T) {
	v, label, _ := syntheticSetup(12, 7, ModeLearning)
	v.opt.MaxIterations = 3
	res := Run(v, label)
	if res.Iterations > 3 {
		t.Errorf("iterations = %d, cap 3", res.Iterations)
	}
}

func TestVerifierEmptyLists(t *testing.T) {
	v := NewVerifier(nil, func(a, b int32) []float64 { return []float64{0} }, Options{})
	if !v.Done() {
		t.Error("empty verifier should be done")
	}
	if got := v.Next(); got != nil {
		t.Errorf("Next on empty = %v", got)
	}
}

func TestFeedbackValidation(t *testing.T) {
	v, _, _ := syntheticSetup(5, 9, ModeLearning)
	pairs := v.Next()
	if err := v.Feedback(make([]bool, len(pairs)+1)); err == nil {
		t.Error("want error for misaligned labels")
	}
	if err := v.Feedback(make([]bool, len(pairs))); err != nil {
		t.Errorf("aligned labels: %v", err)
	}
}

func TestVerifierDeterministic(t *testing.T) {
	run := func() RunResult {
		v, label, _ := syntheticSetup(10, 11, ModeLearning)
		return Run(v, label)
	}
	r1, r2 := run(), run()
	if r1.Iterations != r2.Iterations || len(r1.Matches) != len(r2.Matches) {
		t.Errorf("nondeterministic: %d/%d vs %d/%d matches/iters",
			len(r1.Matches), r1.Iterations, len(r2.Matches), r2.Iterations)
	}
}

// TestLearningBeatsWMR mirrors the §6.5 finding: with informative features
// and ambiguous list scores, the learning verifier should find at least as
// many matches within a bounded number of iterations as WMR.
func TestLearningBeatsWMR(t *testing.T) {
	found := func(mode Mode) int {
		v, label, _ := syntheticSetup(20, 13, mode)
		v.opt.MaxIterations = 10
		return len(Run(v, label).Matches)
	}
	l, w := found(ModeLearning), found(ModeWMR)
	if l < w {
		t.Errorf("learning found %d, WMR found %d", l, w)
	}
}

// Property: MedRank output is a permutation of the union of list items,
// and an item ranked first in every list comes out first overall.
func TestMedRankProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		nLists := 1 + rng.Intn(4)
		nItems := 1 + rng.Intn(15)
		universe := map[int64]bool{}
		var lists []ssjoin.TopKList
		for l := 0; l < nLists; l++ {
			var pairs []ssjoin.ScoredPair
			// Item 0 always scores highest in every list.
			pairs = append(pairs, ssjoin.ScoredPair{A: 0, B: 0, Score: 1})
			universe[pairID(0, 0)] = true
			for i := 1; i < nItems; i++ {
				if rng.Intn(3) == 0 {
					continue // item missing from this list
				}
				p := ssjoin.ScoredPair{A: int32(i), B: int32(i), Score: rng.Float64() * 0.9}
				pairs = append(pairs, p)
				universe[pairID(p.A, p.B)] = true
			}
			// Sort desc by score.
			for i := 0; i < len(pairs); i++ {
				for j := i + 1; j < len(pairs); j++ {
					if pairs[j].Score > pairs[i].Score {
						pairs[i], pairs[j] = pairs[j], pairs[i]
					}
				}
			}
			lists = append(lists, ssjoin.TopKList{Pairs: pairs})
		}
		order := MedRank(lists, int64(trial))
		if len(order) != len(universe) {
			t.Fatalf("trial %d: order has %d items, universe %d", trial, len(order), len(universe))
		}
		seen := map[blocker.Pair]bool{}
		for _, p := range order {
			if seen[p] {
				t.Fatalf("trial %d: duplicate %v", trial, p)
			}
			seen[p] = true
			if !universe[pairID(int32(p.A), int32(p.B))] {
				t.Fatalf("trial %d: invented item %v", trial, p)
			}
		}
		if order[0] != (blocker.Pair{A: 0, B: 0}) {
			t.Fatalf("trial %d: universally-top item not first: %v", trial, order[0])
		}
	}
}
