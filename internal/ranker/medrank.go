// Package ranker implements the Match Verifier of Section 5 of the paper:
// MedRank rank aggregation over the per-config top-k lists, the weighted
// median ranking (WMR) baseline, and the hybrid active/online learning
// loop that engages the user to surface killed-off matches.
package ranker

import (
	"math/rand"
	"slices"
	"sort"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/floats"
	"matchcatcher/internal/ssjoin"
)

// competitionRanks assigns 1-based competition ranks ("1224" style: items
// with equal score share a rank) to one sorted top-k list.
func competitionRanks(l ssjoin.TopKList) map[int64]int {
	out := make(map[int64]int, len(l.Pairs))
	rank := 0
	for i, p := range l.Pairs {
		// Exact tie on purpose: equal-scored neighbors in one sorted
		// list share a competition rank.
		if i == 0 || !floats.Equal(p.Score, l.Pairs[i-1].Score) {
			rank = i + 1
		}
		out[pairID(p.A, p.B)] = rank
	}
	return out
}

func pairID(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

func idPair(id int64) blocker.Pair {
	return blocker.Pair{A: int(id >> 32), B: int(int32(uint32(id)))}
}

// aggregate computes the weighted-median-rank order of every pair in the
// lists. An item missing from a list receives rank len(list)+1 there (the
// paper's Example 5.1). Ties in global rank break randomly via rng.
func aggregate(lists []ssjoin.TopKList, weights []float64, rng *rand.Rand) []blocker.Pair {
	ranks := make([]map[int64]int, len(lists))
	universe := map[int64]struct{}{}
	for i, l := range lists {
		ranks[i] = competitionRanks(l)
		for id := range ranks[i] {
			universe[id] = struct{}{}
		}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil
	}

	type scored struct {
		id     int64
		global float64
		tie    int
	}
	// Visit the universe in sorted id order: map iteration order is
	// randomized, and the tiebreak permutation below is assigned by slice
	// position, so a deterministic build order is what lets the seeded
	// rng actually decide ties (same seed, same order).
	ids := make([]int64, 0, len(universe))
	for id := range universe {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	items := make([]scored, 0, len(universe))
	type rw struct {
		r int
		w float64
	}
	rws := make([]rw, 0, len(lists))
	for _, id := range ids {
		rws = rws[:0]
		for i := range lists {
			r, ok := ranks[i][id]
			if !ok {
				r = len(lists[i].Pairs) + 1
			}
			rws = append(rws, rw{r: r, w: weights[i]})
		}
		sort.Slice(rws, func(x, y int) bool { return rws[x].r < rws[y].r })
		// Weighted median: the smallest rank whose cumulative weight
		// reaches half the total.
		cum := 0.0
		med := rws[len(rws)-1].r
		for _, x := range rws {
			cum += x.w
			if cum*2 >= total {
				med = x.r
				break
			}
		}
		items = append(items, scored{id: id, global: float64(med)})
	}
	// Random tie-breaking (seeded): assign tiebreak numbers, then sort.
	perm := rng.Perm(len(items))
	for i := range items {
		items[i].tie = perm[i]
	}
	sort.Slice(items, func(x, y int) bool {
		if !floats.Equal(items[x].global, items[y].global) {
			return items[x].global < items[y].global
		}
		return items[x].tie < items[y].tie
	})
	out := make([]blocker.Pair, len(items))
	for i, it := range items {
		out[i] = idPair(it.id)
	}
	return out
}

// MedRank aggregates the top-k lists into a single global order using the
// median of per-list competition ranks (Fagin et al.'s MedRank), breaking
// ties randomly with the seeded rng.
func MedRank(lists []ssjoin.TopKList, seed int64) []blocker.Pair {
	w := make([]float64, len(lists))
	for i := range w {
		w[i] = 1
	}
	return aggregate(lists, w, rand.New(rand.NewSource(seed)))
}
