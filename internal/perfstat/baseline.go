package perfstat

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"matchcatcher/internal/runlog"
	"matchcatcher/internal/telemetry"
)

// BaselineSchema identifies the committed baseline file layout
// (BENCH_perf_gate.json). The file is generated mechanically by
// `mcperf report -format json` from a runlog ledger — never edited by
// hand — and consumed by `mcperf check`.
const BaselineSchema = "mc.perfstat.baseline/v1"

// BaselineMetric is one metric's sample arm in a baseline file. Samples
// are kept raw (not just the median) so future checks can rerun the
// full rank test against them.
type BaselineMetric struct {
	Direction string    `json:"direction"`
	Samples   []float64 `json:"samples"`
	N         int       `json:"n"`
	Median    float64   `json:"median"`
	CILo      float64   `json:"ci_lo"`
	CIHi      float64   `json:"ci_hi"`
}

// BaselineSource records where the baseline's samples came from, so a
// reviewer can regenerate and compare.
type BaselineSource struct {
	Records      int            `json:"records"`
	Tools        map[string]int `json:"tools"`
	Exps         []string       `json:"exps"`
	Seeds        []int64        `json:"seeds"`
	ConfigHashes []string       `json:"config_hashes"`
}

// Baseline is the machine-generated replacement for the repo's
// hand-written BENCH_*.json files: a self-describing snapshot of a
// workload's sample distributions, pinned to the environment and build
// that produced them.
type Baseline struct {
	Schema      string                    `json:"schema"`
	Description string                    `json:"description,omitempty"`
	GeneratedBy string                    `json:"generated_by"`
	// Date is the timestamp of the newest contributing record — a pure
	// function of the ledger, so regenerating from the same ledger is
	// byte-identical.
	Date        string                    `json:"date"`
	Environment runlog.Fingerprint        `json:"environment"`
	Build       telemetry.BuildInfo       `json:"build"`
	Source      BaselineSource            `json:"source"`
	Metrics     map[string]BaselineMetric `json:"metrics"`
}

// BuildBaseline aggregates a ledger into a baseline: per-metric sample
// arms pooled across records, summarized; environment and build taken
// from the newest record (with a sanity requirement that all records
// share a comparable environment is NOT enforced here — mixed ledgers
// are the caller's lookout and visible in Source).
func BuildBaseline(recs []runlog.Record, desc string) (Baseline, error) {
	if len(recs) == 0 {
		return Baseline{}, fmt.Errorf("perfstat: empty ledger")
	}
	b := Baseline{
		Schema:      BaselineSchema,
		Description: desc,
		GeneratedBy: "mcperf report",
		Metrics:     map[string]BaselineMetric{},
		Source: BaselineSource{
			Records: len(recs),
			Tools:   map[string]int{},
		},
	}
	seedSet := map[int64]bool{}
	hashSet := map[string]bool{}
	expSet := map[string]bool{}
	latest := recs[0]
	for _, r := range recs {
		b.Source.Tools[r.Tool]++
		seedSet[r.Seed] = true
		hashSet[r.ConfigHash] = true
		if r.Exp != "" {
			expSet[r.Exp] = true
		}
		if r.Time >= latest.Time {
			latest = r
		}
	}
	b.Date = latest.Time
	b.Environment = latest.Env
	b.Build = latest.Build
	for s := range seedSet {
		b.Source.Seeds = append(b.Source.Seeds, s)
	}
	sort.Slice(b.Source.Seeds, func(i, j int) bool { return b.Source.Seeds[i] < b.Source.Seeds[j] })
	for h := range hashSet {
		b.Source.ConfigHashes = append(b.Source.ConfigHashes, h)
	}
	sort.Strings(b.Source.ConfigHashes)
	for e := range expSet {
		b.Source.Exps = append(b.Source.Exps, e)
	}
	sort.Strings(b.Source.Exps)

	for metric, samples := range runlog.Samples(recs) {
		s := Summarize(samples)
		b.Metrics[metric] = BaselineMetric{
			Direction: DirectionFor(metric).String(),
			Samples:   samples,
			N:         s.N,
			Median:    s.Median,
			CILo:      s.CILo,
			CIHi:      s.CIHi,
		}
	}
	return b, nil
}

// SampleMap extracts the per-metric sample arms, the CompareAll input
// shape.
func (b Baseline) SampleMap() map[string][]float64 {
	out := make(map[string][]float64, len(b.Metrics))
	for k, m := range b.Metrics {
		out[k] = m.Samples
	}
	return out
}

// ReadBaselineFile loads and validates a baseline file.
func ReadBaselineFile(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("perfstat: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("perfstat: parsing baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return Baseline{}, fmt.Errorf("perfstat: %s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	if len(b.Metrics) == 0 {
		return Baseline{}, fmt.Errorf("perfstat: %s: baseline has no metrics", path)
	}
	return b, nil
}

// MarshalIndent renders the baseline as committed-file JSON
// (deterministic: map keys sort, sample order is record order).
func (b Baseline) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
