// Package perfstat implements benchstat-style statistics over repeated
// measurement runs: order-statistic summaries (median with a ~95%
// binomial confidence interval), the Mann–Whitney U significance test
// (exact small-sample distribution, normal approximation with tie
// correction otherwise), and direction-aware regression verdicts with
// configurable thresholds.
//
// The methodology follows Go's benchstat tool: never trust a single
// run; compare arms of repeated samples; call a difference real only
// when a rank test says the arms are distinguishable AND the median
// delta clears a practical threshold. Samples come from the
// internal/runlog ledger (see runlog.Samples) and verdicts surface
// through cmd/mcperf diff/check.
//
// Deterministic workloads get a sharper rule: when BOTH arms have zero
// within-arm spread (same-seed recall counts, iteration counts), any
// median difference is significant outright (p=0) — rank tests are
// powerless at tiny n, but a deterministic quantity that moved, moved.
package perfstat

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"matchcatcher/internal/floats"
	"matchcatcher/internal/metrics"
)

// Direction says which way "worse" points for a metric.
type Direction int

const (
	// None: informational metric; never a regression (e.g. iterations).
	None Direction = iota
	// LowerIsBetter: latencies, sizes — an increase is a regression.
	LowerIsBetter
	// HigherIsBetter: recall — a decrease is a regression.
	HigherIsBetter
)

func (d Direction) String() string {
	switch d {
	case LowerIsBetter:
		return "lower"
	case HigherIsBetter:
		return "higher"
	default:
		return "none"
	}
}

// MarshalJSON serializes the direction as its String form, so JSON
// consumers (diff -json, baseline files) see "lower"/"higher"/"none"
// rather than an opaque enum ordinal.
func (d Direction) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// UnmarshalJSON inverts MarshalJSON; unknown strings parse as None.
func (d *Direction) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*d = ParseDirection(s)
	return nil
}

// ParseDirection inverts Direction.String (for baseline files).
func ParseDirection(s string) Direction {
	switch s {
	case "lower":
		return LowerIsBetter
	case "higher":
		return HigherIsBetter
	default:
		return None
	}
}

// DirectionFor infers a metric's direction from its key. Ledger keys
// are "<workload...>:<quantity>"; the quantity decides:
//
//	recall*                          -> higher is better
//	*_seconds, *_ns, *_bytes         -> lower is better
//	anything else                    -> informational
func DirectionFor(metric string) Direction {
	q := metric
	if i := strings.LastIndex(metric, ":"); i >= 0 {
		q = metric[i+1:]
	}
	switch {
	case strings.HasPrefix(q, "recall"):
		return HigherIsBetter
	case strings.HasSuffix(q, "_seconds") || strings.HasSuffix(q, "_ns") || strings.HasSuffix(q, "_bytes"):
		return LowerIsBetter
	default:
		return None
	}
}

// Summary is an order-statistic view of one sample arm.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// CILo/CIHi bound the median at ~95% confidence via the binomial
	// order-statistic interval (benchstat's method). For N < 6 the
	// interval degenerates to [Min, Max].
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
}

// Summarize computes the summary of one arm. Empty input yields the
// zero Summary.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	out := Summary{
		N:      n,
		Mean:   sum / float64(n),
		Median: median(s),
		Min:    s[0],
		Max:    s[n-1],
	}
	lo, hi := medianCIIndices(n)
	out.CILo, out.CIHi = s[lo], s[hi]
	return out
}

// median of a sorted slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// medianCIIndices returns the sorted-sample indices [lo, hi] of the
// ~95% binomial confidence interval on the median: the widest central
// interval whose coverage sum_{i=lo..hi-1} C(n-1? ...) — concretely,
// the standard order-statistic interval where P(X_lo <= median <=
// X_hi) >= 0.95 under Binomial(n, 1/2). Small n degenerates to the
// full range.
func medianCIIndices(n int) (int, int) {
	if n < 2 {
		return 0, n - 1
	}
	// Walk inward symmetrically while the discarded tail mass stays
	// under 2.5% per side.
	const tail = 0.025
	lo := 0
	var mass float64
	for lo < n/2 {
		mass += binomPMF(n, lo)
		if mass > tail {
			break
		}
		lo++
	}
	if lo > 0 {
		lo-- // last index whose cumulative tail stayed within bounds
	}
	hi := n - 1 - lo
	return lo, hi
}

// binomPMF is C(n,k) / 2^n.
func binomPMF(n, k int) float64 {
	return math.Exp(lchoose(n, k) - float64(n)*math.Ln2)
}

func lchoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// SpreadPct renders the CI half-width as a percentage of the median
// (the ±x% column of benchstat tables). Zero when the median is ~0.
func (s Summary) SpreadPct() float64 {
	if s.N < 2 || math.Abs(s.Median) < 1e-300 {
		return 0
	}
	return (s.CIHi - s.CILo) / 2 / math.Abs(s.Median) * 100
}

// UTest returns the two-sided p-value of the Mann–Whitney U test for
// samples x and y. Ties get midranks. With no ties and small arms the
// exact permutation distribution is used; otherwise the normal
// approximation with tie correction and continuity correction. Arms
// with fewer than one sample each, or completely tied data, return 1.
func UTest(x, y []float64) float64 {
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return 1
	}
	type obs struct {
		v    float64
		army bool
	}
	all := make([]obs, 0, m+n)
	for _, v := range x {
		all = append(all, obs{v, false})
	}
	for _, v := range y {
		all = append(all, obs{v, true})
	}
	sort.Slice(all, func(i, j int) bool { return floats.Less(all[i].v, all[j].v) })

	// Midranks and tie bookkeeping.
	ranks := make([]float64, m+n)
	hasTies := false
	var tieTerm float64 // sum of t^3 - t over tie groups
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && floats.Equal(all[j].v, all[i].v) {
			j++
		}
		t := j - i
		if t > 1 {
			hasTies = true
			tieTerm += float64(t*t*t - t)
		}
		mid := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var rx float64
	for i, o := range all {
		if !o.army {
			rx += ranks[i]
		}
	}
	u := rx - float64(m*(m+1))/2 // U statistic for arm x

	if !hasTies && m*n <= 400 && m+n <= 40 {
		return exactUTestP(m, n, u)
	}
	N := m + n
	mu := float64(m*n) / 2
	sigma2 := float64(m*n) / 12 * (float64(N+1) - tieTerm/float64(N*(N-1)))
	if sigma2 <= 0 {
		return 1 // everything tied
	}
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return math.Erfc(z / math.Sqrt2)
}

// exactUTestP computes the exact two-sided p-value for integral U with
// arm sizes m, n (no ties): p = 2 * P(U <= min(u, mn-u)), capped at 1.
// The null distribution is counted with the standard recurrence
// f(i,j,u) = f(i-1,j,u-j) + f(i,j-1,u).
func exactUTestP(m, n int, u float64) float64 {
	maxU := m * n
	uInt := int(math.Round(u))
	uSmall := uInt
	if maxU-uInt < uSmall {
		uSmall = maxU - uInt
	}
	// dp[j][u] = number of arrangements of i x's and j y's with statistic
	// u, rolled over i.
	dp := make([][]float64, n+1)
	for j := range dp {
		dp[j] = make([]float64, maxU+1)
		dp[j][0] = 1 // zero x's: only u=0 is reachable
	}
	for i := 1; i <= m; i++ {
		next := make([][]float64, n+1)
		for j := 0; j <= n; j++ {
			next[j] = make([]float64, maxU+1)
			for uu := 0; uu <= i*j; uu++ {
				// f(i,j,u) = f(i-1,j,u-j) + f(i,j-1,u): the largest
				// observation is either the i-th x (beating all j y's)
				// or the j-th y (beating none of the x's).
				var v float64
				if uu >= j {
					v = dp[j][uu-j]
				}
				if j > 0 {
					v += next[j-1][uu]
				}
				next[j][uu] = v
			}
		}
		dp = next
	}
	total := math.Exp(lchoose(m+n, m))
	var cum float64
	for uu := 0; uu <= uSmall && uu <= maxU; uu++ {
		cum += dp[n][uu]
	}
	p := 2 * cum / total
	if p > 1 {
		p = 1
	}
	return p
}

// Thresholds tune when a statistically distinguishable difference is
// *reported* as a regression.
type Thresholds struct {
	// Alpha is the significance level for the U test (default 0.05).
	Alpha float64
	// MinDeltaPct is the practical-significance floor on the absolute
	// median delta, as a fraction (default 0.05 = 5%). Differences
	// smaller than this are noise-level even when statistically real.
	MinDeltaPct float64
	// MinSamples is the per-arm floor below which verdicts are
	// indeterminate (default 2).
	MinSamples int
}

// WithDefaults fills zero fields with the defaults.
func (t Thresholds) WithDefaults() Thresholds {
	if t.Alpha <= 0 {
		t.Alpha = 0.05
	}
	if t.MinDeltaPct <= 0 {
		t.MinDeltaPct = 0.05
	}
	if t.MinSamples <= 0 {
		t.MinSamples = 2
	}
	return t
}

// Comparison is the verdict on one metric across two arms.
type Comparison struct {
	Metric    string    `json:"metric"`
	Direction Direction `json:"direction"`
	Old       Summary   `json:"old"`
	New       Summary   `json:"new"`
	// DeltaPct is (new.Median - old.Median) / old.Median * 100.
	DeltaPct float64 `json:"delta_pct"`
	// P is the two-sided Mann–Whitney p-value (0 in exact mode with a
	// real difference, 1 in exact mode without).
	P float64 `json:"p"`
	// Exact marks the deterministic fast path: both arms had zero
	// within-arm spread, so the medians compare outright.
	Exact bool `json:"exact,omitempty"`
	// Significant: the arms are statistically distinguishable at Alpha.
	Significant bool `json:"significant"`
	// Regression / Improvement: significant, direction-adjusted, and the
	// delta clears MinDeltaPct.
	Regression  bool `json:"regression"`
	Improvement bool `json:"improvement"`
	// Indeterminate: too few samples (or a missing arm) to say anything.
	Indeterminate bool `json:"indeterminate,omitempty"`
}

// Outcome renders the verdict as one word for tables and summaries.
func (c Comparison) Outcome() string {
	switch {
	case c.Indeterminate:
		return "indeterminate"
	case c.Regression:
		return "REGRESSION"
	case c.Improvement:
		return "improvement"
	default:
		return "ok"
	}
}

// Compare runs the full benchstat-style comparison of one metric's two
// arms. The metric's direction is inferred with DirectionFor unless the
// caller overrides it afterwards.
func Compare(metric string, old, cur []float64, th Thresholds) Comparison {
	th = th.WithDefaults()
	c := Comparison{
		Metric:    metric,
		Direction: DirectionFor(metric),
		Old:       Summarize(old),
		New:       Summarize(cur),
	}
	c.DeltaPct = deltaPct(c.Old.Median, c.New.Median)
	if c.Old.N == 0 || c.New.N == 0 {
		c.Indeterminate = true
		c.P = 1
		return c
	}

	// The deterministic fast path needs at least two samples per arm:
	// a single measurement is trivially "flat" and must not promote
	// noise into a verdict.
	oldFlat := c.Old.Max-c.Old.Min <= 0 && c.Old.N >= 2
	newFlat := c.New.Max-c.New.Min <= 0 && c.New.N >= 2
	switch {
	case oldFlat && newFlat:
		// Deterministic fast path: a flat quantity that moved, moved.
		c.Exact = true
		if floats.Equal(c.Old.Median, c.New.Median) {
			c.P = 1
		} else {
			c.P = 0
			c.Significant = true
		}
	case c.Old.N < th.MinSamples || c.New.N < th.MinSamples:
		c.Indeterminate = true
		c.P = 1
		return c
	default:
		c.P = UTest(old, cur)
		c.Significant = c.P < th.Alpha
	}

	if c.Significant && math.Abs(c.DeltaPct) >= th.MinDeltaPct*100 {
		worse := (c.Direction == LowerIsBetter && c.DeltaPct > 0) ||
			(c.Direction == HigherIsBetter && c.DeltaPct < 0)
		better := (c.Direction == LowerIsBetter && c.DeltaPct < 0) ||
			(c.Direction == HigherIsBetter && c.DeltaPct > 0)
		c.Regression = worse
		c.Improvement = better
	}
	return c
}

// deltaPct guards the zero-baseline cases.
func deltaPct(oldMed, newMed float64) float64 {
	if math.Abs(oldMed) < 1e-300 {
		if math.Abs(newMed) < 1e-300 {
			return 0
		}
		return math.Copysign(100, newMed)
	}
	return (newMed - oldMed) / math.Abs(oldMed) * 100
}

// CompareAll compares every metric present in the baseline arm against
// the current arm, in sorted metric order. Metrics only in the current
// arm are not gated (new metrics are not regressions); metrics missing
// from the current arm come back indeterminate so the caller can warn.
func CompareAll(baseline, current map[string][]float64, th Thresholds) []Comparison {
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Comparison, 0, len(keys))
	for _, k := range keys {
		out = append(out, Compare(k, baseline[k], current[k], th))
	}
	return out
}

// FormatTable renders comparisons as a benchstat-like text table.
func FormatTable(cs []Comparison) string {
	t := &metrics.Table{Headers: []string{"metric", "dir", "old", "new", "delta", "p", "verdict"}}
	for _, c := range cs {
		t.Add(c.Metric, c.Direction.String(),
			formatArm(c.Old), formatArm(c.New),
			fmt.Sprintf("%+.1f%%", c.DeltaPct),
			fmt.Sprintf("%.3f", c.P),
			c.Outcome())
	}
	return t.String()
}

func formatArm(s Summary) string {
	if s.N == 0 {
		return "—"
	}
	return fmt.Sprintf("%.4g ±%.0f%% (n=%d)", s.Median, s.SpreadPct(), s.N)
}
