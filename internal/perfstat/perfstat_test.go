package perfstat

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 5, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Median < 3 || s.Median > 3 {
		t.Errorf("median = %g, want 3", s.Median)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("mean = %g, want 3", s.Mean)
	}
	// n=5: the median CI degenerates to [min, max].
	if s.CILo > 1 || s.CIHi < 5 {
		t.Errorf("CI = [%g, %g], want [1, 5]", s.CILo, s.CIHi)
	}

	even := Summarize([]float64{1, 2, 3, 4})
	if math.Abs(even.Median-2.5) > 1e-12 {
		t.Errorf("even median = %g, want 2.5", even.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestMedianCIIndicesShrinkWithN(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		lo, hi := medianCIIndices(n)
		if lo != 0 || hi != n-1 {
			t.Errorf("n=%d: CI indices [%d,%d], want full range", n, lo, hi)
		}
	}
	lo, hi := medianCIIndices(10)
	if lo != 1 || hi != 8 {
		t.Errorf("n=10: CI indices [%d,%d], want [1,8]", lo, hi)
	}
	lo, hi = medianCIIndices(30)
	if lo <= 5 || hi >= 24 || lo >= hi {
		t.Errorf("n=30: CI indices [%d,%d], want a strict central interval", lo, hi)
	}
}

func TestUTest(t *testing.T) {
	// Identical arms: completely tied, p = 1.
	if p := UTest([]float64{1, 1, 1}, []float64{1, 1, 1}); p < 1 {
		t.Errorf("tied p = %g, want 1", p)
	}
	// Clearly separated small arms (exact path): p = 2/C(10,5) = 0.0079...
	x := []float64{1.00, 1.01, 1.02, 1.03, 1.04}
	y := []float64{2.00, 2.01, 2.02, 2.03, 2.04}
	p := UTest(x, y)
	if p > 0.01 {
		t.Errorf("separated p = %g, want <= 0.01", p)
	}
	want := 2.0 / 252.0 // exact two-sided p for complete separation, 5v5
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("exact p = %g, want %g", p, want)
	}
	// Symmetry.
	if q := UTest(y, x); math.Abs(p-q) > 1e-12 {
		t.Errorf("asymmetric: %g vs %g", p, q)
	}
	// Overlapping arms from the same distribution: not significant.
	a := []float64{1.0, 1.2, 0.9, 1.1, 1.05}
	b := []float64{1.1, 0.95, 1.15, 1.0, 1.08}
	if p := UTest(a, b); p < 0.3 {
		t.Errorf("same-distribution p = %g, want large", p)
	}
	// Empty arm.
	if p := UTest(nil, []float64{1}); p < 1 {
		t.Errorf("empty-arm p = %g, want 1", p)
	}
	// 3v3 perfect separation: exact two-sided p = 2/C(6,3) = 0.1 — the
	// rank test structurally cannot reach 0.05 at this size.
	if p := UTest([]float64{1, 2, 3}, []float64{10, 11, 12}); math.Abs(p-0.1) > 1e-9 {
		t.Errorf("3v3 exact p = %g, want 0.1", p)
	}
}

// TestUTestNormalApproxAgreesWithExact cross-checks the two code paths
// on a mid-sized no-tie input.
func TestUTestNormalApproxAgreesWithExact(t *testing.T) {
	x := make([]float64, 15)
	y := make([]float64, 15)
	for i := range x {
		x[i] = float64(i) * 1.000001 // no ties, interleaved with y
		y[i] = float64(i) + 0.5
	}
	pExact := UTest(x, y) // 15+15=30 <= 40, exact path
	// Force the approximation by exceeding the exact-size gate.
	xBig := append(append([]float64(nil), x...), 100.25, 101.25, 102.25, 103.25, 104.25, 105.25)
	yBig := append(append([]float64(nil), y...), 100.75, 101.75, 102.75, 103.75, 104.75, 105.75)
	pApprox := UTest(xBig, yBig)
	if pExact < 0.2 || pApprox < 0.2 {
		t.Errorf("interleaved arms should be indistinguishable: exact=%g approx=%g", pExact, pApprox)
	}
}

func TestDirectionFor(t *testing.T) {
	cases := map[string]Direction{
		"fig9/M2/HASH1/k1000/pct100:join_seconds": LowerIsBetter,
		"perfgate/m2/HASH1:topk_seconds":          LowerIsBetter,
		"x:heap_bytes":                            LowerIsBetter,
		"table3/M2/HASH1:recall_f":                HigherIsBetter,
		"mcdebug:recall":                          HigherIsBetter,
		"table3/M2/HASH1:iterations":              None,
		"bare_seconds":                            LowerIsBetter,
		"whatever":                                None,
	}
	for k, want := range cases {
		if got := DirectionFor(k); got != want {
			t.Errorf("DirectionFor(%q) = %v, want %v", k, got, want)
		}
	}
	if ParseDirection(LowerIsBetter.String()) != LowerIsBetter ||
		ParseDirection(HigherIsBetter.String()) != HigherIsBetter ||
		ParseDirection("none") != None {
		t.Error("ParseDirection does not invert String")
	}
}

// TestCompareFlagsInjectedSlowdown is the acceptance check: a ~10%
// slowdown injected over a tight baseline must come back REGRESSION.
func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	base := []float64{1.00, 1.01, 0.99, 1.02, 0.98}
	slow := []float64{1.10, 1.11, 1.09, 1.12, 1.08} // +10%
	c := Compare("perfgate/m2/HASH1/k1000:join_seconds", base, slow, Thresholds{})
	if !c.Significant || !c.Regression {
		t.Errorf("injected 10%% slowdown not flagged: %+v", c)
	}
	if c.DeltaPct < 5 || c.DeltaPct > 15 {
		t.Errorf("delta = %g%%, want ~10%%", c.DeltaPct)
	}
	// The mirror image is an improvement, not a regression.
	c = Compare("perfgate/m2/HASH1/k1000:join_seconds", slow, base, Thresholds{})
	if c.Regression || !c.Improvement {
		t.Errorf("speedup misclassified: %+v", c)
	}
}

// TestCompareSameDistributionPasses is the other half of the
// acceptance check: same-seed repeat runs must not flag.
func TestCompareSameDistributionPasses(t *testing.T) {
	a := []float64{1.00, 1.02, 0.99, 1.01, 0.98}
	b := []float64{1.01, 0.99, 1.00, 1.02, 0.97}
	c := Compare("x:join_seconds", a, b, Thresholds{})
	if c.Regression || c.Improvement {
		t.Errorf("noise flagged as a verdict: %+v", c)
	}
}

func TestCompareDeterministicRecall(t *testing.T) {
	// Same-seed recall counts are exactly repeatable: zero spread per
	// arm. A drop must flag even at n=2 where rank tests are powerless.
	base := []float64{12, 12, 12}
	drop := []float64{11, 11, 11}
	c := Compare("table3/M2/HASH1:recall_f", base, drop, Thresholds{})
	if !c.Exact || !c.Significant || !c.Regression {
		t.Errorf("deterministic recall drop not flagged: %+v", c)
	}
	// Unchanged recall: exact pass.
	c = Compare("table3/M2/HASH1:recall_f", base, []float64{12, 12}, Thresholds{})
	if !c.Exact || c.Significant || c.Regression || c.P < 1 {
		t.Errorf("unchanged recall misflagged: %+v", c)
	}
	// A recall *increase* is an improvement.
	c = Compare("table3/M2/HASH1:recall_f", base, []float64{14, 14}, Thresholds{})
	if !c.Improvement || c.Regression {
		t.Errorf("recall increase misclassified: %+v", c)
	}
	// Informational metrics never regress.
	c = Compare("table3/M2/HASH1:iterations", []float64{3, 3}, []float64{9, 9}, Thresholds{})
	if c.Regression || c.Improvement {
		t.Errorf("informational metric produced a verdict: %+v", c)
	}
	if !c.Significant {
		t.Errorf("informational change should still be significant: %+v", c)
	}
}

func TestCompareGuards(t *testing.T) {
	// Single samples: indeterminate, never a verdict.
	c := Compare("x:join_seconds", []float64{1}, []float64{2}, Thresholds{})
	if !c.Indeterminate || c.Regression {
		t.Errorf("n=1 arms = %+v, want indeterminate", c)
	}
	// Missing arm: indeterminate.
	c = Compare("x:join_seconds", []float64{1, 2, 3}, nil, Thresholds{})
	if !c.Indeterminate {
		t.Errorf("missing arm = %+v, want indeterminate", c)
	}
	// Below MinDeltaPct: significant but no verdict.
	base := []float64{1.000, 1.001, 0.999, 1.002, 0.998}
	tiny := []float64{1.020, 1.021, 1.019, 1.022, 1.018} // +2% < 5% floor
	c = Compare("x:join_seconds", base, tiny, Thresholds{})
	if c.Regression {
		t.Errorf("sub-threshold delta flagged: %+v", c)
	}
	// ... unless the caller lowers the floor.
	c = Compare("x:join_seconds", base, tiny, Thresholds{MinDeltaPct: 0.01})
	if !c.Regression {
		t.Errorf("1%% floor should flag a 2%% slowdown: %+v", c)
	}
}

func TestCompareAllAndFormat(t *testing.T) {
	baseline := map[string][]float64{
		"a:join_seconds": {1.00, 1.01, 0.99, 1.02, 0.98},
		"b:recall_f":     {12, 12, 12},
		"c:gone_seconds": {5, 5, 5},
	}
	current := map[string][]float64{
		"a:join_seconds": {1.10, 1.11, 1.09, 1.12, 1.08},
		"b:recall_f":     {12, 12, 12},
		"d:new_seconds":  {1, 2},
	}
	cs := CompareAll(baseline, current, Thresholds{})
	if len(cs) != 3 {
		t.Fatalf("comparisons = %d, want 3 (baseline keys only)", len(cs))
	}
	// Sorted metric order.
	if cs[0].Metric != "a:join_seconds" || cs[1].Metric != "b:recall_f" || cs[2].Metric != "c:gone_seconds" {
		t.Errorf("order = %v", []string{cs[0].Metric, cs[1].Metric, cs[2].Metric})
	}
	if !cs[0].Regression || cs[1].Regression || !cs[2].Indeterminate {
		t.Errorf("verdicts = %s / %s / %s", cs[0].Outcome(), cs[1].Outcome(), cs[2].Outcome())
	}
	table := FormatTable(cs)
	for _, want := range []string{"REGRESSION", "ok", "indeterminate", "a:join_seconds"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
