package runlog

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"matchcatcher/internal/telemetry"
)

// The env-fingerprinting contract for ledger records on hosts without
// VCS stamping: a stamped binary's identity passes through untouched
// (git is never consulted), an unstamped binary falls back to the git
// CLI, and on a host without git the fallback degrades to the stamped
// "unknown" identity instead of failing. PATH manipulation stands in
// for "host without git" / "host with git" so the test does not depend
// on how the test binary itself was built.

func TestBuildFromStampedNeverShellsOut(t *testing.T) {
	// An empty PATH would make any git invocation fail loudly, so a
	// stamped identity surviving proves git was never consulted.
	t.Setenv("PATH", t.TempDir())
	in := telemetry.BuildInfo{Revision: "abc123", Dirty: true, GoVersion: "go1.22"}
	if got := buildFrom(in); got != in {
		t.Errorf("stamped identity rewritten: %+v -> %+v", in, got)
	}
}

func TestBuildFromNoGitHost(t *testing.T) {
	t.Setenv("PATH", t.TempDir()) // host without git
	in := telemetry.BuildInfo{Revision: "unknown", GoVersion: "go1.22"}
	got := buildFrom(in)
	if got.Revision != "unknown" || got.Dirty {
		t.Errorf("no-git fallback = %+v, want the unstamped identity unchanged", got)
	}
	// The full Record path must also survive a gitless host.
	rec := New("mcbench", "smoke", 1, map[string]any{"k": 10})
	if rec.Build.GoVersion == "" {
		t.Errorf("record build lacks the Go version: %+v", rec.Build)
	}
	if rec.ConfigHash == "" || rec.Env.GOOS == "" {
		t.Errorf("record fingerprint incomplete: hash=%q env=%+v", rec.ConfigHash, rec.Env)
	}
}

func TestBuildFromFakeGit(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("fake git is a shell script")
	}
	dir := t.TempDir()
	script := "#!/bin/sh\n" +
		"case \"$1\" in\n" +
		"rev-parse) echo deadbeefcafe ;;\n" +
		"status) echo ' M file.go' ;;\n" +
		"esac\n"
	if err := os.WriteFile(filepath.Join(dir, "git"), []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	t.Setenv("PATH", dir)
	got := buildFrom(telemetry.BuildInfo{Revision: "unknown", GoVersion: "go1.22"})
	if got.Revision != "deadbeefcafe" {
		t.Errorf("revision = %q, want the fake git's answer", got.Revision)
	}
	if !got.Dirty {
		t.Error("porcelain output not reflected in Dirty")
	}
	if got.GoVersion != "go1.22" {
		t.Errorf("GoVersion clobbered: %q", got.GoVersion)
	}
}

func TestBuildFromFakeGitCleanTree(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("fake git is a shell script")
	}
	dir := t.TempDir()
	script := "#!/bin/sh\n" +
		"case \"$1\" in\n" +
		"rev-parse) echo deadbeefcafe ;;\n" +
		"status) : ;;\n" +
		"esac\n"
	if err := os.WriteFile(filepath.Join(dir, "git"), []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	t.Setenv("PATH", dir)
	got := buildFrom(telemetry.BuildInfo{Revision: ""})
	if got.Revision != "deadbeefcafe" || got.Dirty {
		t.Errorf("clean tree = %+v, want revision set and Dirty false", got)
	}
}
