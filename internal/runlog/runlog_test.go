package runlog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"matchcatcher/internal/telemetry"
)

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")

	r1 := New("mcbench", "perf-gate", 1, map[string]any{"scale": 0.1, "k": 1000})
	r1.Metrics = map[string]float64{"perfgate/m2/HASH1/k1000:join_seconds": 0.31}
	r1.Series = map[string][]float64{"recall_by_iteration": {0.2, 0.5, 0.8}}

	reg := telemetry.New()
	reg.Counter("mc_runlog_test_total").Add(3)
	r1.AttachTelemetry(reg)

	if err := Append(path, r1); err != nil {
		t.Fatal(err)
	}
	// A second Append grows the ledger; nothing is overwritten.
	r2 := New("mcdebug", "session", 7, map[string]any{"n": 20})
	r2.Metrics = map[string]float64{"mcdebug:iterations": 4}
	if err := Append(path, r2); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	got := recs[0]
	if got.Schema != Schema || got.Tool != "mcbench" || got.Exp != "perf-gate" || got.Seed != 1 {
		t.Errorf("record 0 header = %+v", got)
	}
	if got.ConfigHash == "" || got.ConfigHash != r1.ConfigHash {
		t.Errorf("config hash %q != %q", got.ConfigHash, r1.ConfigHash)
	}
	if got.Env.GOOS == "" || got.Env.GoVersion == "" || got.Env.NumCPU < 1 {
		t.Errorf("fingerprint not captured: %+v", got.Env)
	}
	if got.Build.GoVersion == "" {
		t.Errorf("build not stamped: %+v", got.Build)
	}
	if len(got.Series["recall_by_iteration"]) != 3 {
		t.Errorf("series = %v", got.Series)
	}
	if got.Telemetry == nil {
		t.Fatal("telemetry snapshot missing")
	}
	if got.Telemetry.Counters["mc_runlog_test_total"] != 3 {
		t.Errorf("snapshot counters = %v", got.Telemetry.Counters)
	}
	// AttachTelemetry captured machine context into the snapshot.
	if _, ok := got.Telemetry.Gauges["mc_runtime_goroutines"]; !ok {
		t.Error("snapshot lacks mc_runtime_goroutines (CaptureRuntime not wired)")
	}
	if recs[1].Tool != "mcdebug" || recs[1].Metrics["mcdebug:iterations"] < 4 {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestConfigHashStable(t *testing.T) {
	a := ConfigHash(map[string]any{"exp": "fig9", "scale": 0.1, "k": 1000})
	b := ConfigHash(map[string]any{"k": 1000, "scale": 0.1, "exp": "fig9"})
	if a != b {
		t.Errorf("hash depends on insertion order: %s vs %s", a, b)
	}
	if len(a) != 12 {
		t.Errorf("hash %q, want 12 hex digits", a)
	}
	if c := ConfigHash(map[string]any{"exp": "fig9", "scale": 0.2, "k": 1000}); c == a {
		t.Error("different configs hash equal")
	}
}

func TestReadRejectsCorruptAndForeignLines(t *testing.T) {
	recs, err := Read(strings.NewReader(`{"schema":"mc.runlog/v1","tool":"x"}` + "\n" + `not json` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 parse error", err)
	}
	if len(recs) != 1 {
		t.Errorf("prefix records = %d, want 1", len(recs))
	}

	_, err = Read(strings.NewReader(`{"schema":"something.else/v9"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("err = %v, want schema rejection", err)
	}

	// Future minor revisions of the runlog schema stay readable, and
	// unknown fields are ignored.
	recs, err = Read(strings.NewReader(
		`{"schema":"mc.runlog/v2","tool":"future","novel_field":{"x":1}}` + "\n\n"))
	if err != nil || len(recs) != 1 || recs[0].Tool != "future" {
		t.Errorf("forward-compat read = %v, %v", recs, err)
	}

	// Missing trailing newline on the last record still parses.
	recs, err = Read(strings.NewReader(`{"schema":"mc.runlog/v1","tool":"tail"}`))
	if err != nil || len(recs) != 1 || recs[0].Tool != "tail" {
		t.Errorf("no-final-newline read = %v, %v", recs, err)
	}
}

func TestSamplesPoolsAcrossRecords(t *testing.T) {
	recs := []Record{
		{Metrics: map[string]float64{"a:x_seconds": 1, "b:y_seconds": 10}},
		{Metrics: map[string]float64{"a:x_seconds": 2}},
		{Metrics: map[string]float64{"a:x_seconds": 3, "b:y_seconds": 30}},
	}
	s := Samples(recs)
	if len(s["a:x_seconds"]) != 3 || len(s["b:y_seconds"]) != 2 {
		t.Fatalf("samples = %v", s)
	}
	// Record order is preserved per key.
	want := []float64{1, 2, 3}
	for i, v := range s["a:x_seconds"] {
		if v < want[i] || v > want[i] {
			t.Errorf("a:x_seconds[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestAppendCreatesAndIsAppendOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	for i := 0; i < 3; i++ {
		if err := Append(path, Record{Tool: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 3 {
		t.Errorf("ledger lines = %d, want 3", n)
	}
	if err := Append(path); err != nil { // zero records: no-op
		t.Fatal(err)
	}
}
