// Package runlog is MatchCatcher's flight recorder: an append-only,
// self-describing JSONL ledger of measurement runs. Every mcbench and
// mcdebug invocation (and anything else that wants its numbers to
// count) appends one Record per run carrying the git revision, seed,
// config hash, environment fingerprint, the run's telemetry Snapshot,
// and per-iteration recall/latency series.
//
// The ledger is the raw-sample substrate for internal/perfstat:
// repeated runs of the same workload accumulate as records sharing a
// config hash, and benchstat-style comparisons (cmd/mcperf diff/check)
// group samples by metric key across records. Records are one JSON
// object per line; the file is only ever appended to, so interrupted
// runs lose at most the record being written and two processes
// appending concurrently interleave whole lines (O_APPEND).
//
// Format stability: every record carries Schema ("mc.runlog/v1").
// Readers accept any "mc.runlog/*" schema and ignore unknown fields, so
// old ledgers stay readable as the record grows.
package runlog

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"matchcatcher/internal/telemetry"
)

// Schema identifies the current record layout.
const Schema = "mc.runlog/v1"

// Fingerprint captures the machine a record was measured on. Two
// fingerprints are Comparable when GOOS, GOARCH, and CPU model agree —
// the precondition for cross-ledger latency comparisons to mean
// anything (benchstat methodology: never compare nanoseconds across
// machines).
type Fingerprint struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	CPU       string `json:"cpu,omitempty"` // model string, best effort
	GoVersion string `json:"go_version"`
	Hostname  string `json:"hostname,omitempty"`
}

// Comparable reports whether latency samples measured under f and g can
// be meaningfully compared: same OS, architecture, and CPU model.
// Scale-free quantities (recall, counts, iterations) are comparable
// regardless.
func (f Fingerprint) Comparable(g Fingerprint) bool {
	return f.GOOS == g.GOOS && f.GOARCH == g.GOARCH && f.CPU == g.CPU
}

// Record is one measured run. Metrics holds scalar samples (one
// measurement of each key in this run — repeated runs append repeated
// records, and perfstat pools the per-key samples across records).
// Series holds ordered per-iteration values, e.g. the debugger's
// cumulative recall after each verifier iteration.
type Record struct {
	Schema string `json:"schema"`
	// Time is the RFC3339 wall-clock time the record was built.
	Time string `json:"time"`
	// Tool names the producer: "mcbench", "mcdebug", "mcperf", ...
	Tool string `json:"tool"`
	// Exp labels the workload (experiment name or session label).
	Exp  string `json:"exp,omitempty"`
	Seed int64  `json:"seed"`
	// Config is the full knob set of the run; ConfigHash is the first 12
	// hex digits of the SHA-256 of its canonical JSON, so "same workload"
	// is machine-checkable without field-by-field comparison.
	Config     map[string]any      `json:"config,omitempty"`
	ConfigHash string              `json:"config_hash"`
	Env        Fingerprint         `json:"env"`
	Build      telemetry.BuildInfo `json:"build"`
	// Metrics are this run's scalar samples, keyed
	// "<workload...>:<quantity>" where the quantity suffix determines the
	// regression direction (see perfstat.DirectionFor).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Series are ordered per-iteration values, e.g. "recall_by_iteration".
	Series map[string][]float64 `json:"series,omitempty"`
	// Telemetry is the run's full metrics snapshot (with mc_runtime_*
	// machine context captured just before the snapshot).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	Notes     string              `json:"notes,omitempty"`
}

// New builds a Record stamped with schema, time, environment
// fingerprint, build identity, and the config's hash. Metrics/Series/
// Telemetry start empty for the caller to fill.
func New(tool, exp string, seed int64, cfg map[string]any) Record {
	return Record{
		Schema:     Schema,
		Time:       time.Now().UTC().Format(time.RFC3339),
		Tool:       tool,
		Exp:        exp,
		Seed:       seed,
		Config:     cfg,
		ConfigHash: ConfigHash(cfg),
		Env:        CaptureFingerprint(),
		Build:      Build(),
	}
}

// AttachTelemetry captures machine context into reg (mc_runtime_*
// gauges, mc_build_info) and stores its snapshot on the record.
func (r *Record) AttachTelemetry(reg *telemetry.Registry) {
	reg = telemetry.Or(reg)
	reg.CaptureRuntime()
	r.Telemetry = reg.Snapshot()
}

// ConfigHash hashes a config to a short stable identifier: the first 12
// hex digits of the SHA-256 of the canonical (sorted-key) JSON
// encoding. encoding/json already emits map keys sorted, so the hash is
// independent of insertion order.
func ConfigHash(cfg map[string]any) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		// Unmarshalable configs (channels, funcs) are programmer error;
		// hash the error text so the record still carries *something*
		// stable rather than panicking inside a measurement run.
		data = []byte("unmarshalable:" + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:12]
}

// CaptureFingerprint samples the current machine.
func CaptureFingerprint() Fingerprint {
	f := Fingerprint{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		CPU:       cpuModel(),
	}
	if h, err := os.Hostname(); err == nil {
		f.Hostname = h
	}
	return f
}

// cpuModel returns the CPU model string, best effort (linux
// /proc/cpuinfo; "" elsewhere).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Build returns the build identity for ledger records:
// telemetry.ReadBuild when the binary carries VCS stamping, otherwise a
// best-effort `git rev-parse HEAD` / `git status --porcelain` from the
// working directory (go run / go test binaries are not stamped).
func Build() telemetry.BuildInfo {
	return buildFrom(telemetry.ReadBuild())
}

// buildFrom applies the git fallback to a ReadBuild result. Split out
// so tests can exercise both halves of the contract — stamped binaries
// never shell out, and unstamped binaries on hosts without git keep
// the "unknown" identity rather than failing — without needing to
// control how the test binary itself was built.
func buildFrom(b telemetry.BuildInfo) telemetry.BuildInfo {
	if b.Revision != "unknown" && b.Revision != "" {
		return b
	}
	rev, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return b
	}
	b.Revision = strings.TrimSpace(string(rev))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		b.Dirty = len(strings.TrimSpace(string(st))) > 0
	}
	return b
}

// Append appends records to the JSONL ledger at path, one compact JSON
// object per line, creating the file (and parent directory) on first
// use. O_APPEND keeps concurrent appenders line-atomic on POSIX
// filesystems.
func Append(path string, recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runlog: open %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w) // Encode appends the newline
	for i := range recs {
		if recs[i].Schema == "" {
			recs[i].Schema = Schema
		}
		if err := enc.Encode(&recs[i]); err != nil {
			f.Close()
			return fmt.Errorf("runlog: encode record: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("runlog: flush %s: %w", path, err)
	}
	return f.Close()
}

// Read decodes every record from r. Blank lines are skipped; a
// malformed line or a record from a non-runlog schema fails with its
// line number, because silently dropping measurements is how a
// regression gate rots.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var recs []Record
	for line := 1; ; line++ {
		raw, err := br.ReadString('\n')
		if raw == "" && err == io.EOF {
			return recs, nil
		}
		if err != nil && err != io.EOF {
			return recs, fmt.Errorf("runlog: line %d: %w", line, err)
		}
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" {
			if err == io.EOF {
				return recs, nil
			}
			continue
		}
		var rec Record
		if derr := json.Unmarshal([]byte(trimmed), &rec); derr != nil {
			return recs, fmt.Errorf("runlog: line %d: %w", line, derr)
		}
		if !strings.HasPrefix(rec.Schema, "mc.runlog/") {
			return recs, fmt.Errorf("runlog: line %d: schema %q is not a runlog record", line, rec.Schema)
		}
		recs = append(recs, rec)
		if err == io.EOF {
			return recs, nil
		}
	}
}

// ReadFile reads the ledger at path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Samples pools scalar metric samples across records, keyed by metric
// name, preserving record order. This is the perfstat input shape.
func Samples(recs []Record) map[string][]float64 {
	out := map[string][]float64{}
	for _, r := range recs {
		for _, k := range sortedKeys(r.Metrics) {
			out[k] = append(out[k], r.Metrics[k])
		}
	}
	return out
}

// sortedKeys returns m's keys in sorted order (deterministic iteration;
// the mapiter analyzer bans raw map-range appends).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
