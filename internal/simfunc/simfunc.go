// Package simfunc implements the string similarity measures used by
// blockers and by the top-k string similarity join: the set-based measures
// Jaccard, cosine, Dice, and normalized overlap (with the overlap-count and
// prefix-extension bounds the join's branch-and-bound needs), plus
// Levenshtein edit distance and absolute numeric difference for blocker
// predicates.
package simfunc

import (
	"fmt"
	"math"
	"strconv"
)

// SetMeasure identifies a set-based similarity measure over token sets or
// multisets. All four measures are defined from the overlap o = |x ∩ y| and
// the sizes lx = |x|, ly = |y|, and all are monotone increasing in o, which
// the join's bounds rely on (Theorem 4.2 of the paper covers exactly these
// four measures).
type SetMeasure int

// The supported set-based measures.
const (
	Jaccard SetMeasure = iota // o / (lx + ly - o)
	Cosine                    // o / sqrt(lx*ly)
	Dice                      // 2o / (lx + ly)
	Overlap                   // o / min(lx, ly)
)

// String returns the measure's name as used in blocker expressions
// ("jac", "cos", "dice", "overlap").
func (m SetMeasure) String() string {
	switch m {
	case Jaccard:
		return "jac"
	case Cosine:
		return "cos"
	case Dice:
		return "dice"
	case Overlap:
		return "overlap"
	}
	return fmt.Sprintf("SetMeasure(%d)", int(m))
}

// errUnknownMeasure is the pre-boxed panic value for an out-of-range
// SetMeasure. FromOverlap and ExtendCap inline into //mc:hotpath probe
// loops; panicking with a string literal would box it into an interface
// at every call site, which the hotalloc escape gate counts as a hot
// path allocation. A package-level any carries no per-call allocation.
var errUnknownMeasure any = "simfunc: unknown measure"

// MeasureByName returns the SetMeasure for a blocker-expression name.
func MeasureByName(name string) (SetMeasure, bool) {
	switch name {
	case "jac", "jaccard":
		return Jaccard, true
	case "cos", "cosine":
		return Cosine, true
	case "dice":
		return Dice, true
	case "overlap":
		return Overlap, true
	}
	return 0, false
}

// FromOverlap computes the similarity score given the overlap o and set
// sizes lx, ly. It returns 0 when either set is empty.
func (m SetMeasure) FromOverlap(o, lx, ly int) float64 {
	if lx == 0 || ly == 0 {
		return 0
	}
	fo := float64(o)
	switch m {
	case Jaccard:
		return fo / float64(lx+ly-o)
	case Cosine:
		return fo / math.Sqrt(float64(lx)*float64(ly))
	case Dice:
		return 2 * fo / float64(lx+ly)
	case Overlap:
		return fo / float64(min(lx, ly))
	}
	panic(errUnknownMeasure)
}

// ExtendCap bounds the score of any pair first discovered when the prefix
// of a string x of size lx is extended past position i (0-based): such a
// pair shares at most rem = lx - i tokens. For Jaccard this is the paper's
// cap (lx-i)/lx (Section 4.1's worked example: 3/4 = 0.75 for a 4-token
// string at i=1). The partner's size is unknown, so each measure uses the
// partner size that maximizes the score subject to containing the overlap.
// Overlap similarity admits no nontrivial cap (a tiny partner fully
// contained in x scores 1), so it returns 1 and simply prunes less.
func (m SetMeasure) ExtendCap(i, lx int) float64 {
	if lx == 0 {
		return 0
	}
	rem := lx - i
	if rem <= 0 {
		return 0
	}
	switch m {
	case Jaccard:
		// o <= rem, union >= lx.
		return float64(rem) / float64(lx)
	case Cosine:
		// o <= rem, ly >= o  =>  o/sqrt(lx*ly) <= sqrt(rem/lx).
		return math.Sqrt(float64(rem) / float64(lx))
	case Dice:
		// o <= rem, ly >= o  =>  2o/(lx+ly) <= 2rem/(lx+rem).
		return 2 * float64(rem) / float64(lx+rem)
	case Overlap:
		return 1
	}
	panic(errUnknownMeasure)
}

// PairBound bounds the final score of a specific candidate pair of which c
// common tokens have been seen so far and remX, remY tokens remain unseen
// on each side: the final overlap is at most c + min(remX, remY).
func (m SetMeasure) PairBound(c, remX, remY, lx, ly int) float64 {
	o := c + min(remX, remY)
	if o > min(lx, ly) {
		o = min(lx, ly)
	}
	return m.FromOverlap(o, lx, ly)
}

// OverlapCount returns |x ∩ y| treating the slices as sets (callers pass
// deduplicated token slices).
func OverlapCount(x, y []string) int {
	if len(x) > len(y) {
		x, y = y, x
	}
	set := make(map[string]struct{}, len(x))
	for _, t := range x {
		set[t] = struct{}{}
	}
	o := 0
	for _, t := range y {
		if _, ok := set[t]; ok {
			o++
		}
	}
	return o
}

// Score computes the measure over two token sets.
func (m SetMeasure) Score(x, y []string) float64 {
	return m.FromOverlap(OverlapCount(x, y), len(x), len(y))
}

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions) between a and b, operating on runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditSim returns a normalized edit similarity in [0,1]:
// 1 - Levenshtein(a,b)/max(|a|,|b|). Two empty strings score 1.
func EditSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(max(la, lb))
}

// AbsDiff parses a and b as floats and returns |a-b|. It returns
// +Inf when either value is missing or unparseable, so that
// "absdiff > t" kill-rules drop pairs with missing numerics
// conservatively only when the caller wants that; blockers treat
// +Inf explicitly.
func AbsDiff(a, b string) float64 {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil {
		return math.Inf(1)
	}
	return math.Abs(fa - fb)
}
