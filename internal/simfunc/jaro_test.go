package simfunc

import (
	"math/rand"
	"strings"
	"testing"
)

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"same", "same", 1},
		{"martha", "marhta", 0.944444444444},
		{"dixon", "dicksonx", 0.766666666667},
		{"jellyfish", "smellyfish", 0.896296296296},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); !almost6(got, c.want) {
			t.Errorf("Jaro(%q,%q) = %.9f, want %.9f", c.a, c.b, got, c.want)
		}
	}
}

func almost6(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.961111111111},
		{"dwayne", "duane", 0.84},
		{"dixon", "dicksonx", 0.813333333333},
		{"same", "same", 1},
		{"abc", "xyz", 0}, // below the 0.7 boost threshold: plain Jaro
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !almost6(got, c.want) {
			t.Errorf("JaroWinkler(%q,%q) = %.9f, want %.9f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	randStr := func() string {
		n := rng.Intn(10)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('a' + rng.Intn(5)))
		}
		return sb.String()
	}
	for trial := 0; trial < 1000; trial++ {
		a, b := randStr(), randStr()
		j := Jaro(a, b)
		if j < 0 || j > 1 {
			t.Fatalf("Jaro(%q,%q) = %g out of range", a, b, j)
		}
		if Jaro(b, a) != j {
			t.Fatalf("Jaro not symmetric on (%q,%q)", a, b)
		}
		jw := JaroWinkler(a, b)
		if jw < j-1e-12 || jw > 1 {
			t.Fatalf("JaroWinkler(%q,%q) = %g not in [jaro,1]", a, b, jw)
		}
		if Jaro(a, a) != 1 {
			t.Fatalf("Jaro identity failed for %q", a)
		}
	}
}
