package simfunc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMeasureByNameAndString(t *testing.T) {
	for _, name := range []string{"jac", "cos", "dice", "overlap"} {
		m, ok := MeasureByName(name)
		if !ok || m.String() != name {
			t.Errorf("MeasureByName(%q) = %v,%v (String=%q)", name, m, ok, m.String())
		}
	}
	if m, ok := MeasureByName("jaccard"); !ok || m != Jaccard {
		t.Error("jaccard alias broken")
	}
	if _, ok := MeasureByName("hamming"); ok {
		t.Error("unknown measure accepted")
	}
}

func TestFromOverlap(t *testing.T) {
	// x and y of sizes 4 and 5 sharing 4 tokens (paper's s(x,w)=0.8 case).
	if got := Jaccard.FromOverlap(4, 5, 4); !almost(got, 0.8) {
		t.Errorf("Jaccard = %g, want 0.8", got)
	}
	if got := Cosine.FromOverlap(4, 5, 4); !almost(got, 4/math.Sqrt(20)) {
		t.Errorf("Cosine = %g", got)
	}
	if got := Dice.FromOverlap(4, 5, 4); !almost(got, 8.0/9.0) {
		t.Errorf("Dice = %g", got)
	}
	if got := Overlap.FromOverlap(4, 5, 4); !almost(got, 1.0) {
		t.Errorf("Overlap = %g", got)
	}
	for _, m := range []SetMeasure{Jaccard, Cosine, Dice, Overlap} {
		if got := m.FromOverlap(0, 0, 5); got != 0 {
			t.Errorf("%v empty-set score = %g", m, got)
		}
	}
}

func TestExtendCapMatchesPaperExample(t *testing.T) {
	// Section 4.1: extending a 4-token string's prefix at position 1 caps
	// new pairs at 0.75; a 5-token string at position 1 caps at 0.8 and at
	// position 2 caps at 0.6.
	if got := Jaccard.ExtendCap(1, 4); !almost(got, 0.75) {
		t.Errorf("cap(1,4) = %g, want 0.75", got)
	}
	if got := Jaccard.ExtendCap(1, 5); !almost(got, 0.8) {
		t.Errorf("cap(1,5) = %g, want 0.8", got)
	}
	if got := Jaccard.ExtendCap(2, 5); !almost(got, 0.6) {
		t.Errorf("cap(2,5) = %g, want 0.6", got)
	}
	if got := Jaccard.ExtendCap(5, 5); got != 0 {
		t.Errorf("exhausted cap = %g, want 0", got)
	}
	if got := Overlap.ExtendCap(3, 5); got != 1 {
		t.Errorf("overlap cap = %g, want 1", got)
	}
}

// Property: ExtendCap really bounds the score of any pair whose first
// common token is at position >= i of x.
func TestExtendCapIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for trial := 0; trial < 2000; trial++ {
		lx := 1 + rng.Intn(8)
		x := append([]string(nil), universe[:lx]...) // tokens in global order
		i := rng.Intn(lx)
		// Partner shares tokens only from x[i:], plus its own extras.
		var y []string
		for _, tok := range x[i:] {
			if rng.Intn(2) == 0 {
				y = append(y, tok)
			}
		}
		extras := rng.Intn(4)
		for e := 0; e < extras; e++ {
			y = append(y, universe[9-e%3]+"_z")
		}
		if len(y) == 0 {
			continue
		}
		for _, m := range []SetMeasure{Jaccard, Cosine, Dice, Overlap} {
			score := m.Score(x, y)
			cap := m.ExtendCap(i, lx)
			if score > cap+1e-12 {
				t.Fatalf("%v: score %g exceeds cap %g (lx=%d i=%d y=%v)", m, score, cap, lx, i, y)
			}
		}
	}
}

// Property: PairBound dominates the final score for any completion of the
// unseen suffixes.
func TestPairBoundIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		lx := 1 + rng.Intn(8)
		ly := 1 + rng.Intn(8)
		px := rng.Intn(lx + 1) // seen prefix lengths
		py := rng.Intn(ly + 1)
		c := rng.Intn(min(px, py) + 1) // common tokens seen
		// Final overlap can add at most min of unseen suffixes.
		oFinal := c + rng.Intn(min(lx-px, ly-py)+1)
		for _, m := range []SetMeasure{Jaccard, Cosine, Dice, Overlap} {
			bound := m.PairBound(c, lx-px, ly-py, lx, ly)
			score := m.FromOverlap(oFinal, lx, ly)
			if score > bound+1e-12 {
				t.Fatalf("%v: score %g exceeds bound %g (c=%d lx=%d ly=%d px=%d py=%d)",
					m, score, bound, c, lx, ly, px, py)
			}
		}
	}
}

func TestOverlapCount(t *testing.T) {
	x := []string{"a", "b", "c"}
	y := []string{"b", "c", "d", "e"}
	if got := OverlapCount(x, y); got != 2 {
		t.Errorf("OverlapCount = %d, want 2", got)
	}
	if got := OverlapCount(nil, y); got != 0 {
		t.Errorf("OverlapCount(nil) = %d", got)
	}
}

func TestScoreSymmetry(t *testing.T) {
	f := func(xs, ys []string) bool {
		x := dedupe(xs)
		y := dedupe(ys)
		for _, m := range []SetMeasure{Jaccard, Cosine, Dice, Overlap} {
			a, b := m.Score(x, y), m.Score(y, x)
			if !almost(a, b) {
				return false
			}
			if a < 0 || a > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreIdentity(t *testing.T) {
	x := []string{"a", "b", "c"}
	for _, m := range []SetMeasure{Jaccard, Cosine, Dice, Overlap} {
		if got := m.Score(x, x); !almost(got, 1) {
			t.Errorf("%v self-score = %g, want 1", m, got)
		}
	}
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"welson", "wilson", 1},
		{"altanta", "atlanta", 2},
		{"same", "same", 0},
		{"日本", "日本語", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties of edit distance: symmetry, identity, triangle inequality on
// random short strings.
func TestLevenshteinProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randStr := func() string {
		n := rng.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('a' + rng.Intn(4)))
		}
		return sb.String()
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := randStr(), randStr(), randStr()
		if Levenshtein(a, b) != Levenshtein(b, a) {
			t.Fatalf("not symmetric: %q %q", a, b)
		}
		if Levenshtein(a, a) != 0 {
			t.Fatalf("not identity: %q", a)
		}
		if Levenshtein(a, c) > Levenshtein(a, b)+Levenshtein(b, c) {
			t.Fatalf("triangle violated: %q %q %q", a, b, c)
		}
	}
}

func TestEditSim(t *testing.T) {
	if got := EditSim("", ""); got != 1 {
		t.Errorf("EditSim empty = %g", got)
	}
	if got := EditSim("abcd", "abcd"); got != 1 {
		t.Errorf("EditSim same = %g", got)
	}
	if got := EditSim("abcd", "wxyz"); got != 0 {
		t.Errorf("EditSim disjoint = %g", got)
	}
	if got := EditSim("welson", "wilson"); !almost(got, 1-1.0/6.0) {
		t.Errorf("EditSim = %g", got)
	}
}

func TestAbsDiff(t *testing.T) {
	if got := AbsDiff("18", "25"); got != 7 {
		t.Errorf("AbsDiff = %g", got)
	}
	if got := AbsDiff("1.5", "1.25"); !almost(got, 0.25) {
		t.Errorf("AbsDiff = %g", got)
	}
	if got := AbsDiff("x", "1"); !math.IsInf(got, 1) {
		t.Errorf("AbsDiff unparseable = %g, want +Inf", got)
	}
	if got := AbsDiff("", ""); !math.IsInf(got, 1) {
		t.Errorf("AbsDiff missing = %g, want +Inf", got)
	}
}
