package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"matchcatcher/internal/blocker"
)

func TestVocabDeterministicAndDistinct(t *testing.T) {
	v1 := NewVocab(rand.New(rand.NewSource(1)), 500, 1.3)
	v2 := NewVocab(rand.New(rand.NewSource(1)), 500, 1.3)
	if v1.Size() != 500 {
		t.Fatalf("size = %d", v1.Size())
	}
	seen := map[string]bool{}
	for _, w := range v1.words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
	for i := range v1.words {
		if v1.words[i] != v2.words[i] {
			t.Fatal("vocab not deterministic")
		}
	}
}

func TestVocabZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewVocab(rng, 1000, 1.3)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[v.Word()]++
	}
	// The most frequent word should dominate: Zipf(1.3) puts a large
	// share of mass on the head.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/20 {
		t.Errorf("top word frequency %d too small for Zipf sampling", max)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct words sampled; tail too thin", len(counts))
	}
}

func TestPoolVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := NewVocab(rng, 500, 1.3)
	p := NewPool(rng, v, 40, 1.0) // every value has a variant
	variants := 0
	for i := 0; i < 40; i++ {
		if p.Value(i) == "" {
			t.Fatalf("empty pool value at %d", i)
		}
		if p.Variant(i) != p.Value(i) {
			variants++
		}
	}
	if variants < 30 {
		t.Errorf("only %d/40 values have distinct variants", variants)
	}
	for i := 0; i < 100; i++ {
		idx := p.Pick()
		if idx < 0 || idx >= 40 {
			t.Fatalf("Pick out of range: %d", idx)
		}
	}
}

func TestDirtMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := NewVocab(rng, 100, 1.3)
	d := Dirt{Missing: 1}
	if got := d.apply(rng, v, "hello world"); got != "" {
		t.Errorf("Missing=1 should blank the value, got %q", got)
	}
	if got := (Dirt{}).apply(rng, v, "clean"); got != "clean" {
		t.Errorf("zero dirt should preserve value, got %q", got)
	}
	if got := (Dirt{Typo: 1}).apply(rng, v, ""); got != "" {
		t.Errorf("dirt on missing value should stay missing, got %q", got)
	}
}

func TestDirtTypoChangesString(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := NewVocab(rng, 100, 1.3)
	d := Dirt{Typo: 1}
	changed := 0
	for i := 0; i < 50; i++ {
		if d.apply(rng, v, "abcdefgh") != "abcdefgh" {
			changed++
		}
	}
	if changed < 45 {
		t.Errorf("typo fired only %d/50 times", changed)
	}
}

func TestDirtTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := NewVocab(rng, 100, 1.3)
	d := Dirt{Truncate: 2}
	got := d.apply(rng, v, "one two three four")
	if got != "one two" {
		t.Errorf("Truncate: got %q", got)
	}
}

func TestDirtNumJitterPreservesIntegerFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewVocab(rng, 100, 1.3)
	d := Dirt{NumJitter: 0.1}
	for i := 0; i < 40; i++ {
		got := d.apply(rng, v, "1995")
		if strings.Contains(got, ".") {
			t.Fatalf("integer input produced decimal output %q", got)
		}
	}
	sawDecimal := false
	for i := 0; i < 40; i++ {
		if strings.Contains(d.apply(rng, v, "19.95"), ".") {
			sawDecimal = true
		}
	}
	if !sawDecimal {
		t.Error("float input never produced decimal output")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Profile{Name: "x", RowsA: 1, RowsB: 1, Matches: 5,
		Fields: []FieldSpec{{Name: "f", Kind: FieldPhrase, MinWords: 1}}}); err == nil {
		t.Error("want error when matches exceed rows")
	}
	if _, err := Generate(Profile{Name: "x", RowsA: 1, RowsB: 1}); err == nil {
		t.Error("want error for empty fields")
	}
}

func smallProfile() Profile {
	p := FodorsZagats()
	p.RowsA, p.RowsB, p.Matches = 120, 90, 40
	return p
}

func TestGenerateShapeAndGold(t *testing.T) {
	d := MustGenerate(smallProfile())
	if d.A.NumRows() != 120 || d.B.NumRows() != 90 {
		t.Fatalf("rows = %d, %d", d.A.NumRows(), d.B.NumRows())
	}
	if d.GoldCount() != 40 {
		t.Fatalf("gold = %d, want 40", d.GoldCount())
	}
	if d.A.NumAttrs() != 7 || d.B.NumAttrs() != 7 {
		t.Errorf("attrs = %d, %d", d.A.NumAttrs(), d.B.NumAttrs())
	}
	// Gold pairs index valid rows and are 1:1 on both sides.
	seenA := map[int]bool{}
	seenB := map[int]bool{}
	d.Gold.ForEach(func(a, b int) {
		if a < 0 || a >= 120 || b < 0 || b >= 90 {
			t.Errorf("gold pair (%d,%d) out of range", a, b)
		}
		if seenA[a] || seenB[b] {
			t.Errorf("gold pair (%d,%d) reuses a row", a, b)
		}
		seenA[a], seenB[b] = true, true
	})
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := MustGenerate(smallProfile())
	d2 := MustGenerate(smallProfile())
	for i := 0; i < d1.A.NumRows(); i++ {
		for j := 0; j < d1.A.NumAttrs(); j++ {
			if d1.A.Value(i, j) != d2.A.Value(i, j) {
				t.Fatalf("A[%d][%d] differs: %q vs %q", i, j, d1.A.Value(i, j), d2.A.Value(i, j))
			}
		}
	}
	p1 := d1.Gold.SortedPairs()
	p2 := d2.Gold.SortedPairs()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("gold not deterministic")
		}
	}
}

func TestGenerateMatchesAreSimilar(t *testing.T) {
	// Matched tuples should be recognizably similar: name-token overlap
	// for most gold pairs.
	d := MustGenerate(smallProfile())
	nameA := d.A.AttrIndex("name")
	nameB := d.B.AttrIndex("name")
	similar := 0
	d.Gold.ForEach(func(a, b int) {
		ta := strings.Fields(d.A.Value(a, nameA))
		tb := strings.Fields(d.B.Value(b, nameB))
		set := map[string]bool{}
		for _, x := range ta {
			set[x] = true
		}
		for _, y := range tb {
			if set[y] {
				similar++
				return
			}
		}
	})
	if similar < d.GoldCount()*6/10 {
		t.Errorf("only %d/%d gold pairs share a name token", similar, d.GoldCount())
	}
}

func TestRecallAndKilledMatches(t *testing.T) {
	d := MustGenerate(smallProfile())
	// A perfect candidate set has recall 1 and no killed matches.
	c := blocker.NewPairSet()
	c.Union(d.Gold)
	if got := d.Recall(c); got != 1 {
		t.Errorf("recall of gold = %g", got)
	}
	if km := d.KilledMatches(c); len(km) != 0 {
		t.Errorf("killed matches of gold = %d", len(km))
	}
	// An empty candidate set kills everything.
	empty := blocker.NewPairSet()
	if got := d.Recall(empty); got != 0 {
		t.Errorf("recall of empty = %g", got)
	}
	if km := d.KilledMatches(empty); len(km) != d.GoldCount() {
		t.Errorf("killed = %d, want %d", len(km), d.GoldCount())
	}
}

func TestProfilesMatchTable1Shape(t *testing.T) {
	wantAttrs := map[string]int{
		"A-G": 5, "W-A": 7, "A-D": 5, "F-Z": 7, "M1": 8, "M2": 8, "Papers": 7,
	}
	for _, p := range AllProfiles() {
		if got := len(p.Fields); got != wantAttrs[p.Name] {
			t.Errorf("%s: %d attrs, want %d", p.Name, got, wantAttrs[p.Name])
		}
		if p.RowsA <= 0 || p.RowsB <= 0 || p.Matches <= 0 {
			t.Errorf("%s: degenerate sizes %+v", p.Name, p)
		}
		if p.Name == "Papers" && p.GoldKnown {
			t.Error("Papers profile must have GoldKnown=false")
		}
	}
}

func TestScaled(t *testing.T) {
	p := Music1()
	s := p.Scaled(0.1)
	if s.RowsA != p.RowsA/10 || s.Matches != p.Matches/10 {
		t.Errorf("Scaled: %d/%d", s.RowsA, s.Matches)
	}
	tiny := p.Scaled(0.000001)
	if tiny.RowsA < 1 || tiny.Matches > tiny.RowsA {
		t.Errorf("Scaled floor broken: %+v", tiny)
	}
}

func TestFodorsZagatsBlockerRecallVaries(t *testing.T) {
	// Sanity: on the F-Z profile, an attribute-equivalence blocker on
	// city kills some matches (variants + typos) but keeps most.
	d := MustGenerate(FodorsZagats())
	c, err := blocker.NewAttrEquivalence("city").Block(d.A, d.B)
	if err != nil {
		t.Fatal(err)
	}
	r := d.Recall(c)
	if r < 0.2 || r > 0.99 {
		t.Errorf("city-AE recall = %g; dirt profile should land between", r)
	}
}
