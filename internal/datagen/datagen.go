package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/table"
)

// FieldKind selects how a field's clean value is generated.
type FieldKind int

// The supported field kinds.
const (
	// FieldPhrase is MinWords..MaxWords Zipf-sampled words (titles,
	// descriptions, author lists).
	FieldPhrase FieldKind = iota
	// FieldPool draws from a categorical pool (brand, city, venue). Table
	// B renders the pool value's variant form with probability
	// BVariantProb, modeling systematic cross-table variations such as
	// "new york" vs "ny".
	FieldPool
	// FieldInt is a uniform integer in [Lo, Hi].
	FieldInt
	// FieldFloat is a uniform float in [Lo, Hi] with two decimals.
	FieldFloat
	// FieldTag is a rare identifying token (model numbers): a uniform
	// vocabulary word plus a numeric suffix.
	FieldTag
)

// FieldSpec declares one attribute of a dataset profile.
type FieldSpec struct {
	Name         string
	Kind         FieldKind
	MinWords     int     // FieldPhrase
	MaxWords     int     // FieldPhrase
	RareWords    float64 // FieldPhrase: fraction of uniformly-drawn (rare) words
	PoolSize     int     // FieldPool
	PoolVariants float64 // FieldPool: fraction of pool values with variant forms
	PoolMinWords int     // FieldPool: words per pool value (default 1)
	PoolMaxWords int     // FieldPool
	BVariantProb float64 // FieldPool: probability B renders the variant form
	// Long-tail knob (FieldPhrase): LongTailPct of entities get
	// LongTailWords extra words, producing a few token-heavy "monster"
	// records whose probe cost dwarfs the rest. Used by the shard-skew
	// observability experiment; zero disables it.
	LongTailPct   float64
	LongTailWords int
	Lo, Hi        float64 // FieldInt / FieldFloat
	DirtA        Dirt    // error model for table A renderings
	DirtB        Dirt    // error model for table B renderings
}

// Profile declares a synthetic dataset: sizes, schema, and dirt. The
// standard profiles replicating the paper's Table 1 are in profiles.go.
type Profile struct {
	Name      string
	RowsA     int
	RowsB     int
	Matches   int // number of entities present in both tables
	VocabSize int
	Seed      int64
	Fields    []FieldSpec
	// GoldKnown is false for the Papers dataset, whose full gold set the
	// paper did not have either; the generator still records gold so the
	// synthetic user can label.
	GoldKnown bool
}

// Attrs returns the schema of the profile.
func (p Profile) Attrs() []string {
	out := make([]string, len(p.Fields))
	for i, f := range p.Fields {
		out[i] = f.Name
	}
	return out
}

// Dataset is a generated table pair with its gold matches.
type Dataset struct {
	Profile Profile
	A, B    *table.Table
	// Gold holds the true matches as (A-row, B-row) pairs.
	Gold *blocker.PairSet
}

// GoldCount returns |M|, the number of true matches.
func (d *Dataset) GoldCount() int { return d.Gold.Len() }

// Recall returns |M ∩ C| / |M| for a candidate set C (Definition 2.1).
func (d *Dataset) Recall(c *blocker.PairSet) float64 {
	if d.Gold.Len() == 0 {
		return 0
	}
	kept := 0
	d.Gold.ForEach(func(a, b int) {
		if c.Contains(a, b) {
			kept++
		}
	})
	return float64(kept) / float64(d.Gold.Len())
}

// KilledMatches returns the gold matches not in C — the set M ∩ D the
// debugger hunts for — sorted for determinism.
func (d *Dataset) KilledMatches(c *blocker.PairSet) []blocker.Pair {
	var out []blocker.Pair
	for _, p := range d.Gold.SortedPairs() {
		if !c.Contains(p.A, p.B) {
			out = append(out, p)
		}
	}
	return out
}

// cleanField holds one generated clean field: either a literal string or a
// pool index to be rendered per side.
type cleanField struct {
	s    string
	pool int // -1 when s is authoritative
}

// Generate builds the dataset for a profile. Generation is fully
// deterministic in Profile.Seed.
func Generate(p Profile) (*Dataset, error) {
	if p.Matches > p.RowsA || p.Matches > p.RowsB {
		return nil, fmt.Errorf("datagen %s: matches (%d) exceed table size (%d, %d)", p.Name, p.Matches, p.RowsA, p.RowsB)
	}
	if len(p.Fields) == 0 {
		return nil, fmt.Errorf("datagen %s: profile has no fields", p.Name)
	}
	if p.VocabSize <= 0 {
		p.VocabSize = 1500
	}
	rng := rand.New(rand.NewSource(p.Seed))
	vocab := NewVocab(rng, p.VocabSize, 1.3)
	pools := make([]*Pool, len(p.Fields))
	for i, f := range p.Fields {
		if f.Kind == FieldPool {
			size := f.PoolSize
			if size <= 0 {
				size = 20
			}
			pools[i] = NewPhrasePool(rng, vocab, size, f.PoolVariants, f.PoolMinWords, f.PoolMaxWords)
		}
	}

	numEntities := p.RowsA + p.RowsB - p.Matches
	entities := make([][]cleanField, numEntities)
	for e := range entities {
		ent := make([]cleanField, len(p.Fields))
		for i, f := range p.Fields {
			switch f.Kind {
			case FieldPhrase:
				k := f.MinWords
				if f.MaxWords > f.MinWords {
					k += rng.Intn(f.MaxWords - f.MinWords + 1)
				}
				// The guard keeps the rng draw sequence — and so every
				// existing profile's bytes — unchanged when the knob is off.
				if f.LongTailPct > 0 && rng.Float64() < f.LongTailPct {
					k += f.LongTailWords
				}
				ent[i] = cleanField{s: vocab.MixedPhrase(k, f.RareWords), pool: -1}
			case FieldPool:
				ent[i] = cleanField{pool: pools[i].Pick()}
			case FieldInt:
				ent[i] = cleanField{s: strconv.Itoa(int(f.Lo) + rng.Intn(int(f.Hi-f.Lo)+1)), pool: -1}
			case FieldFloat:
				v := f.Lo + rng.Float64()*(f.Hi-f.Lo)
				ent[i] = cleanField{s: strconv.FormatFloat(v, 'f', 2, 64), pool: -1}
			case FieldTag:
				ent[i] = cleanField{s: fmt.Sprintf("%s%03d", vocab.UniformWord(), rng.Intn(1000)), pool: -1}
			default:
				return nil, fmt.Errorf("datagen %s: field %s has unknown kind %d", p.Name, f.Name, f.Kind)
			}
		}
		entities[e] = ent
	}

	render := func(ent []cleanField, sideB bool) []string {
		row := make([]string, len(p.Fields))
		for i, f := range p.Fields {
			var clean string
			if ent[i].pool >= 0 {
				if sideB && rng.Float64() < f.BVariantProb {
					clean = pools[i].Variant(ent[i].pool)
				} else {
					clean = pools[i].Value(ent[i].pool)
				}
			} else {
				clean = ent[i].s
			}
			d := f.DirtA
			if sideB {
				d = f.DirtB
			}
			row[i] = d.apply(rng, vocab, clean)
		}
		return row
	}

	// Entities [0, Matches) appear in both tables; [Matches, RowsA) only
	// in A; [RowsA, numEntities) only in B. Row orders are shuffled so
	// row index carries no signal.
	aEnt := rng.Perm(p.RowsA)
	bEnt := make([]int, p.RowsB)
	for i := range bEnt {
		if i < p.Matches {
			bEnt[i] = i
		} else {
			bEnt[i] = p.RowsA + (i - p.Matches)
		}
	}
	rng.Shuffle(len(bEnt), func(i, j int) { bEnt[i], bEnt[j] = bEnt[j], bEnt[i] })

	a, err := table.New(p.Name+"-A", p.Attrs())
	if err != nil {
		return nil, err
	}
	b, err := table.New(p.Name+"-B", p.Attrs())
	if err != nil {
		return nil, err
	}
	aRowOf := make(map[int]int, p.RowsA)
	for row, e := range aEnt {
		if err := a.Append(render(entities[e], false)); err != nil {
			return nil, err
		}
		aRowOf[e] = row
	}
	gold := blocker.NewPairSet()
	for row, e := range bEnt {
		if err := b.Append(render(entities[e], true)); err != nil {
			return nil, err
		}
		if e < p.Matches {
			gold.Add(aRowOf[e], row)
		}
	}
	return &Dataset{Profile: p, A: a, B: b, Gold: gold}, nil
}

// MustGenerate is Generate panicking on error, for tests and benchmarks
// over the built-in profiles.
func MustGenerate(p Profile) *Dataset {
	d, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return d
}
