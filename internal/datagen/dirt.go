package datagen

import (
	"math/rand"
	"strconv"
	"strings"
)

// Dirt configures the per-attribute error model applied when rendering an
// entity into a tuple. Probabilities are independent per rendered value, so
// the two sides of a match accumulate different errors — exactly the
// misspellings, abbreviations, and missing values that kill matches at
// blocking time (the paper's Example 1.1 and Table 4).
type Dirt struct {
	Missing   float64 // value replaced by ""
	Typo      float64 // one character-level edit per firing
	WordDrop  float64 // one word removed
	WordSwap  float64 // two adjacent words transposed
	Abbrev    float64 // one word abbreviated ("york" -> "yk")
	ExtraWord float64 // one vocabulary word inserted
	NumJitter float64 // numeric value scaled by up to ±this fraction
	Truncate  int     // keep at most this many words (0 = unlimited); models
	// asymmetric value lengths across tables (e.g. Amazon's long
	// descriptions vs Google's short ones)
	Passes int // number of independent dirt passes (default 1); higher
	// values model heavily-editorialized fields where several errors
	// accumulate in one value
}

// apply renders one dirty copy of the clean value.
func (d Dirt) apply(rng *rand.Rand, v *Vocab, clean string) string {
	passes := d.Passes
	if passes < 1 {
		passes = 1
	}
	s := clean
	for i := 0; i < passes; i++ {
		s = d.applyOnce(rng, v, s)
	}
	return s
}

func (d Dirt) applyOnce(rng *rand.Rand, v *Vocab, clean string) string {
	if clean == "" {
		return clean
	}
	if rng.Float64() < d.Missing {
		return ""
	}
	s := clean
	if d.NumJitter > 0 {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			if rng.Float64() < 0.5 {
				jitter := 1 + (rng.Float64()*2-1)*d.NumJitter
				if strings.ContainsRune(s, '.') {
					s = strconv.FormatFloat(f*jitter, 'f', 2, 64)
				} else {
					s = strconv.Itoa(int(f*jitter + 0.5))
				}
			}
			return s
		}
	}
	if d.Truncate > 0 {
		if w := strings.Fields(s); len(w) > d.Truncate {
			s = strings.Join(w[:d.Truncate], " ")
		}
	}
	if rng.Float64() < d.WordDrop {
		s = dropWord(rng, s)
	}
	if rng.Float64() < d.WordSwap {
		s = swapWords(rng, s)
	}
	if rng.Float64() < d.Abbrev {
		s = abbrevWord(rng, s)
	}
	if rng.Float64() < d.ExtraWord {
		s = insertWord(rng, s, v.Word())
	}
	if rng.Float64() < d.Typo {
		s = typo(rng, s)
	}
	return s
}

func dropWord(rng *rand.Rand, s string) string {
	w := strings.Fields(s)
	if len(w) < 2 {
		return s
	}
	i := rng.Intn(len(w))
	return strings.Join(append(w[:i], w[i+1:]...), " ")
}

func swapWords(rng *rand.Rand, s string) string {
	w := strings.Fields(s)
	if len(w) < 2 {
		return s
	}
	i := rng.Intn(len(w) - 1)
	w[i], w[i+1] = w[i+1], w[i]
	return strings.Join(w, " ")
}

func abbrevWord(rng *rand.Rand, s string) string {
	w := strings.Fields(s)
	if len(w) == 0 {
		return s
	}
	i := rng.Intn(len(w))
	w[i] = abbreviateWord(w[i])
	return strings.Join(w, " ")
}

func insertWord(rng *rand.Rand, s, extra string) string {
	w := strings.Fields(s)
	i := rng.Intn(len(w) + 1)
	out := make([]string, 0, len(w)+1)
	out = append(out, w[:i]...)
	out = append(out, extra)
	out = append(out, w[i:]...)
	return strings.Join(out, " ")
}

// typo applies one random character edit: substitution, deletion,
// insertion, or transposition.
func typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) == 0 {
		return s
	}
	const letters = "abcdefghijklmnopqrstuvwxyz"
	switch rng.Intn(4) {
	case 0: // substitute
		i := rng.Intn(len(r))
		r[i] = rune(letters[rng.Intn(len(letters))])
	case 1: // delete
		if len(r) > 1 {
			i := rng.Intn(len(r))
			r = append(r[:i], r[i+1:]...)
		}
	case 2: // insert
		i := rng.Intn(len(r) + 1)
		c := rune(letters[rng.Intn(len(letters))])
		r = append(r[:i], append([]rune{c}, r[i:]...)...)
	default: // transpose
		if len(r) > 1 {
			i := rng.Intn(len(r) - 1)
			r[i], r[i+1] = r[i+1], r[i]
		}
	}
	return string(r)
}
