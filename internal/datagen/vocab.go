// Package datagen generates the synthetic datasets that stand in for the
// paper's seven evaluation datasets (Table 1). Each generator is seeded and
// reproduces the shape that matters to a blocking debugger: table sizes,
// attribute counts, average value lengths, match counts, Zipfian token
// distributions, and a dirt profile (typos, abbreviations, word drops,
// missing values, numeric jitter) that defeats blockers in the same ways
// real dirt does. Gold matches are known by construction.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocab is a deterministic pseudo-word vocabulary with Zipfian sampling,
// so token document frequencies are skewed the way natural text is (which
// is what prefix filtering and the config generator's statistics react to).
type Vocab struct {
	words []string
	zipf  *rand.Zipf
	rng   *rand.Rand
}

var syllables = []string{
	"ka", "ri", "ton", "mel", "sor", "vin", "da", "lo", "pex", "tra",
	"ban", "cu", "dor", "fi", "gal", "hem", "jin", "kor", "lum", "mar",
	"nev", "oso", "pra", "qui", "ras", "sel", "tur", "ulm", "vor", "wex",
	"yan", "zor", "che", "bri", "sta", "gro", "pla", "dre", "fla", "sni",
}

// NewVocab builds a vocabulary of n distinct pseudo-words using the given
// random source. Sampling follows a Zipf distribution with exponent s
// (s must be > 1; 1.3 gives a natural-language-like skew).
func NewVocab(rng *rand.Rand, n int, s float64) *Vocab {
	if n < 1 {
		panic("datagen: vocabulary size must be positive")
	}
	seen := make(map[string]struct{}, n)
	words := make([]string, 0, n)
	for len(words) < n {
		k := 2 + rng.Intn(3)
		var sb strings.Builder
		for i := 0; i < k; i++ {
			sb.WriteString(syllables[rng.Intn(len(syllables))])
		}
		w := sb.String()
		if _, dup := seen[w]; dup {
			// Disambiguate collisions instead of rejecting, so
			// construction terminates for any n.
			w = fmt.Sprintf("%s%d", w, len(words))
		}
		seen[w] = struct{}{}
		words = append(words, w)
	}
	return &Vocab{
		words: words,
		zipf:  rand.NewZipf(rng, s, 1, uint64(n-1)),
		rng:   rng,
	}
}

// Word samples one word Zipfianly.
func (v *Vocab) Word() string { return v.words[v.zipf.Uint64()] }

// Words samples k words (duplicates possible, as in natural titles).
func (v *Vocab) Words(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = v.Word()
	}
	return out
}

// Phrase samples k words joined by spaces.
func (v *Vocab) Phrase(k int) string { return strings.Join(v.Words(k), " ") }

// MixedPhrase samples k words, each drawn uniformly (rare) with
// probability rare and Zipfianly otherwise. Identifying fields like
// product titles are mostly rare tokens with a few stop-word-like common
// ones; the rare fraction keeps spurious cross-tuple token collisions at
// realistic rates.
func (v *Vocab) MixedPhrase(k int, rare float64) string {
	words := make([]string, k)
	for i := range words {
		if v.rng.Float64() < rare {
			words[i] = v.UniformWord()
		} else {
			words[i] = v.Word()
		}
	}
	return strings.Join(words, " ")
}

// UniformWord samples a word uniformly (for rare/identifying tokens such
// as model numbers, where Zipf skew is undesirable).
func (v *Vocab) UniformWord() string { return v.words[v.rng.Intn(len(v.words))] }

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.words) }

// Pool is a small categorical value pool (brands, cities, venues) with a
// skewed popularity distribution and an optional per-value variant (e.g.
// "new york" vs "ny") used to inject natural variations across tables.
type Pool struct {
	values   []string
	variants []string // variants[i] is an alternate surface form of values[i]
	rng      *rand.Rand
}

// NewPool builds a categorical pool of n single-word values. variantRate
// controls how many values get a distinct alternate surface form.
func NewPool(rng *rand.Rand, v *Vocab, n int, variantRate float64) *Pool {
	return NewPhrasePool(rng, v, n, variantRate, 1, 1)
}

// NewPhrasePool builds a pool of n values of minWords..maxWords uniform
// words each (artist names, venues). A value's variant abbreviates one of
// its words.
func NewPhrasePool(rng *rand.Rand, v *Vocab, n int, variantRate float64, minWords, maxWords int) *Pool {
	if minWords < 1 {
		minWords = 1
	}
	if maxWords < minWords {
		maxWords = minWords
	}
	p := &Pool{rng: rng}
	seen := make(map[string]struct{}, n)
	for len(p.values) < n {
		k := minWords
		if maxWords > minWords {
			k += rng.Intn(maxWords - minWords + 1)
		}
		words := make([]string, k)
		for i := range words {
			words[i] = v.UniformWord()
		}
		w := strings.Join(words, " ")
		if _, dup := seen[w]; dup {
			w = fmt.Sprintf("%s%d", w, len(p.values))
		}
		seen[w] = struct{}{}
		p.values = append(p.values, w)
		variant := w
		if rng.Float64() < variantRate {
			i := rng.Intn(len(words))
			words[i] = abbreviateWord(words[i])
			variant = strings.Join(words, " ")
		}
		p.variants = append(p.variants, variant)
	}
	return p
}

// Pick returns the index of a pool value with popularity skew (low indices
// are more popular).
func (p *Pool) Pick() int {
	// Squaring a uniform variate skews toward 0.
	f := p.rng.Float64()
	return int(f * f * float64(len(p.values)))
}

// Value returns the canonical surface form of pool entry i.
func (p *Pool) Value(i int) string { return p.values[i] }

// Variant returns the alternate surface form of pool entry i (equal to
// Value(i) when the entry has no variant).
func (p *Pool) Variant(i int) string { return p.variants[i] }

// abbreviateWord derives an "NY"-style abbreviation: the first and last
// letters for long words, or the first letter plus a period.
func abbreviateWord(w string) string {
	if len(w) >= 4 {
		return string(w[0]) + string(w[len(w)-1])
	}
	if len(w) > 0 {
		return string(w[0]) + "."
	}
	return w
}
