package datagen

// The seven standard profiles replicate the shape of the paper's Table 1
// datasets. The two largest (Music2, Papers) are scaled down from the
// paper's 500-600K tuples per table to sizes a single-core pure-Go run can
// sweep repeatedly; scale factors are recorded here and in EXPERIMENTS.md.
// Attribute names match the blocker expressions of Table 2.

// AmazonGoogle replicates A-G: software products, 1363 x 3226 tuples,
// 1300 matches, 5 attributes, asymmetric value lengths (long Amazon
// descriptions vs short Google ones).
func AmazonGoogle() Profile {
	return Profile{
		Name: "A-G", RowsA: 1363, RowsB: 3226, Matches: 1300,
		VocabSize: 1200, Seed: 101, GoldKnown: true,
		Fields: []FieldSpec{
			{Name: "title", Kind: FieldPhrase, MinWords: 4, MaxWords: 9, RareWords: 0.7,
				DirtA: Dirt{Typo: 0.25, WordDrop: 0.35, WordSwap: 0.10, ExtraWord: 0.15, Passes: 2},
				DirtB: Dirt{Typo: 0.25, WordDrop: 0.35, Abbrev: 0.15, Passes: 2}},
			{Name: "description", Kind: FieldPhrase, MinWords: 22, MaxWords: 34, RareWords: 0.3,
				DirtA: Dirt{Typo: 0.20, WordDrop: 0.30, ExtraWord: 0.20},
				DirtB: Dirt{Truncate: 5, Typo: 0.20, WordDrop: 0.30}},
			{Name: "manuf", Kind: FieldPool, PoolSize: 200, PoolVariants: 0.8, BVariantProb: 0.7,
				DirtA: Dirt{Missing: 0.30},
				DirtB: Dirt{Missing: 0.60, Typo: 0.20}},
			{Name: "price", Kind: FieldFloat, Lo: 5, Hi: 500,
				DirtA: Dirt{NumJitter: 0.10},
				DirtB: Dirt{NumJitter: 0.30, Missing: 0.10}},
			{Name: "category", Kind: FieldPool, PoolSize: 12, PoolVariants: 0.2, BVariantProb: 0.25,
				DirtA: Dirt{Missing: 0.05},
				DirtB: Dirt{Missing: 0.15}},
		},
	}
}

// WalmartAmazon replicates W-A: electronic products, 2554 x 22074 tuples,
// 1154 matches, 7 attributes; the Amazon side carries long descriptions.
func WalmartAmazon() Profile {
	return Profile{
		Name: "W-A", RowsA: 2554, RowsB: 22074, Matches: 1154,
		VocabSize: 5000, Seed: 102, GoldKnown: true,
		Fields: []FieldSpec{
			{Name: "title", Kind: FieldPhrase, MinWords: 5, MaxWords: 10, RareWords: 0.7,
				DirtA: Dirt{Typo: 0.22, WordDrop: 0.32, WordSwap: 0.10, Passes: 2},
				DirtB: Dirt{Typo: 0.22, WordDrop: 0.32, ExtraWord: 0.22, Passes: 2}},
			{Name: "brand", Kind: FieldPool, PoolSize: 80, PoolVariants: 0.15, BVariantProb: 0.15,
				DirtA: Dirt{Missing: 0.03},
				DirtB: Dirt{Missing: 0.08, Typo: 0.03}},
			{Name: "modelno", Kind: FieldTag,
				DirtA: Dirt{Missing: 0.20, Typo: 0.15},
				DirtB: Dirt{Missing: 0.35, Typo: 0.15}},
			{Name: "price", Kind: FieldFloat, Lo: 5, Hi: 900,
				DirtA: Dirt{NumJitter: 0.05},
				DirtB: Dirt{NumJitter: 0.12, Missing: 0.06}},
			{Name: "category", Kind: FieldPool, PoolSize: 15, PoolVariants: 0.2, BVariantProb: 0.2,
				DirtA: Dirt{Missing: 0.05}, DirtB: Dirt{Missing: 0.10}},
			{Name: "shortdescr", Kind: FieldPhrase, MinWords: 6, MaxWords: 12, RareWords: 0.5,
				DirtA: Dirt{Truncate: 8, Typo: 0.2, WordDrop: 0.3},
				DirtB: Dirt{Typo: 0.2, WordDrop: 0.3, ExtraWord: 0.2}},
			{Name: "longdescr", Kind: FieldPhrase, MinWords: 18, MaxWords: 30, RareWords: 0.5,
				DirtA: Dirt{Truncate: 6, Typo: 0.2, WordDrop: 0.3, Missing: 0.25},
				DirtB: Dirt{Typo: 0.2, WordDrop: 0.3, ExtraWord: 0.25}},
		},
	}
}

// ACMDBLP replicates A-D: bibliographic records, 2294 x 2616 tuples, 2224
// matches, 5 attributes; values are clean relative to the product data, so
// blockers reach high recall (the paper's A-D rows have M_E at 96-100%).
func ACMDBLP() Profile {
	return Profile{
		Name: "A-D", RowsA: 2294, RowsB: 2616, Matches: 2224,
		VocabSize: 2000, Seed: 103, GoldKnown: true,
		Fields: []FieldSpec{
			{Name: "title", Kind: FieldPhrase, MinWords: 6, MaxWords: 11, RareWords: 0.6,
				DirtA: Dirt{Typo: 0.06, WordDrop: 0.06},
				DirtB: Dirt{Typo: 0.06, WordDrop: 0.08, ExtraWord: 0.08}},
			{Name: "authors", Kind: FieldPhrase, MinWords: 3, MaxWords: 7, RareWords: 0.6,
				DirtA: Dirt{Typo: 0.08, WordDrop: 0.10, WordSwap: 0.20},
				DirtB: Dirt{Typo: 0.08, WordDrop: 0.15, Abbrev: 0.25}},
			{Name: "venue", Kind: FieldPool, PoolSize: 25, PoolVariants: 0.45, BVariantProb: 0.45,
				DirtA: Dirt{}, DirtB: Dirt{Missing: 0.05}},
			{Name: "year", Kind: FieldInt, Lo: 1980, Hi: 2005,
				DirtA: Dirt{}, DirtB: Dirt{Missing: 0.03}},
			{Name: "pages", Kind: FieldTag,
				DirtA: Dirt{Missing: 0.15}, DirtB: Dirt{Missing: 0.30, Typo: 0.10}},
		},
	}
}

// FodorsZagats replicates F-Z: restaurants, 533 x 331 tuples, 112 matches,
// 7 attributes; small and relatively clean, so most blockers retain nearly
// all matches in E.
func FodorsZagats() Profile {
	return Profile{
		Name: "F-Z", RowsA: 533, RowsB: 331, Matches: 112,
		VocabSize: 800, Seed: 104, GoldKnown: true,
		Fields: []FieldSpec{
			{Name: "name", Kind: FieldPhrase, MinWords: 2, MaxWords: 4, RareWords: 0.6,
				DirtA: Dirt{Typo: 0.18, WordDrop: 0.18, Abbrev: 0.12},
				DirtB: Dirt{Typo: 0.18, WordDrop: 0.12, ExtraWord: 0.18, Abbrev: 0.12}},
			{Name: "addr", Kind: FieldPhrase, MinWords: 3, MaxWords: 5, RareWords: 0.5,
				DirtA: Dirt{Typo: 0.22, Abbrev: 0.30, WordDrop: 0.20},
				DirtB: Dirt{Typo: 0.22, WordDrop: 0.25, Abbrev: 0.30}},
			{Name: "city", Kind: FieldPool, PoolSize: 30, PoolVariants: 0.50, BVariantProb: 0.45,
				DirtA: Dirt{}, DirtB: Dirt{Typo: 0.06}},
			{Name: "phone", Kind: FieldTag,
				DirtA: Dirt{Typo: 0.10}, DirtB: Dirt{Typo: 0.10, Missing: 0.10}},
			{Name: "type", Kind: FieldPool, PoolSize: 14, PoolVariants: 0.50, BVariantProb: 0.50,
				DirtA: Dirt{Missing: 0.05}, DirtB: Dirt{Missing: 0.10}},
			{Name: "class", Kind: FieldInt, Lo: 1, Hi: 5,
				DirtA: Dirt{}, DirtB: Dirt{}},
			{Name: "notes", Kind: FieldPhrase, MinWords: 4, MaxWords: 8,
				DirtA: Dirt{Missing: 0.30, Typo: 0.2}, DirtB: Dirt{Missing: 0.40, Typo: 0.2}},
		},
	}
}

// musicProfile parameterizes Music1/Music2: short song records with heavy
// artist/release repetition.
func musicProfile(name string, rows, matches int, seed int64) Profile {
	return Profile{
		Name: name, RowsA: rows, RowsB: rows, Matches: matches,
		VocabSize: 4000, Seed: seed, GoldKnown: true,
		Fields: []FieldSpec{
			{Name: "title", Kind: FieldPhrase, MinWords: 2, MaxWords: 5, RareWords: 0.6,
				DirtA: Dirt{Typo: 0.06, WordDrop: 0.05},
				DirtB: Dirt{Typo: 0.06, WordDrop: 0.06, ExtraWord: 0.05}},
			// Artist names are 1-3 words; the single-word ones are what
			// makes overlap>=2 blocking kill matches that exact equality
			// keeps (the paper's M1 OL row kills 4x more than HASH).
			{Name: "artist_name", Kind: FieldPool, PoolSize: 1500, PoolVariants: 0.08,
				PoolMinWords: 1, PoolMaxWords: 3, BVariantProb: 0.3,
				DirtA: Dirt{Typo: 0.015},
				DirtB: Dirt{Typo: 0.015, Missing: 0.02}},
			{Name: "release", Kind: FieldPool, PoolSize: 2500, PoolVariants: 0.20,
				PoolMinWords: 1, PoolMaxWords: 3, BVariantProb: 0.2,
				DirtA: Dirt{Missing: 0.10},
				DirtB: Dirt{Missing: 0.15, Typo: 0.06}},
			{Name: "year", Kind: FieldInt, Lo: 1960, Hi: 2015,
				DirtA: Dirt{Missing: 0.02},
				DirtB: Dirt{Missing: 0.03}},
			{Name: "duration", Kind: FieldInt, Lo: 90, Hi: 600,
				DirtA: Dirt{NumJitter: 0.02}, DirtB: Dirt{NumJitter: 0.02}},
			{Name: "genre", Kind: FieldPool, PoolSize: 18, PoolVariants: 0.3, BVariantProb: 0.3,
				DirtA: Dirt{Missing: 0.10}, DirtB: Dirt{Missing: 0.15}},
			{Name: "label", Kind: FieldPool, PoolSize: 120, PoolVariants: 0.2, BVariantProb: 0.2,
				DirtA: Dirt{Missing: 0.20}, DirtB: Dirt{Missing: 0.25}},
			{Name: "track", Kind: FieldInt, Lo: 1, Hi: 20,
				DirtA: Dirt{}, DirtB: Dirt{}},
		},
	}
}

// Music1 replicates the shape of Music1 at 1/5 the paper's row count
// (20K x 20K vs 100K x 100K; matches scaled with it).
func Music1() Profile { return musicProfile("M1", 20000, 600, 105) }

// Music2 replicates the shape of Music2 at 1/10 the paper's row count
// (50K x 50K vs 500K x 500K; matches scaled with it) so that the Figure 9
// size sweeps stay tractable on a single core.
func Music2() Profile { return musicProfile("M2", 50000, 7400, 106) }

// Papers replicates the Papers dataset's shape at roughly 1/11 the paper's
// size (456K x 628K -> 40K x 55K). As in the paper, the full gold set is
// treated as unknown (GoldKnown=false); the generator still records gold
// so the synthetic user can label pairs.
func Papers() Profile {
	return Profile{
		Name: "Papers", RowsA: 40000, RowsB: 55000, Matches: 7000,
		VocabSize: 6000, Seed: 107, GoldKnown: false,
		Fields: []FieldSpec{
			// Two dirt passes: the crowdsource-learned blockers of §6.2
			// still kill a visible population of matches only when the
			// bibliographic text is messy enough to slip under their
			// sample-tuned thresholds.
			{Name: "title", Kind: FieldPhrase, MinWords: 5, MaxWords: 10, RareWords: 0.6,
				DirtA: Dirt{Typo: 0.12, WordDrop: 0.15, Passes: 2},
				DirtB: Dirt{Typo: 0.12, WordDrop: 0.15, ExtraWord: 0.12, Passes: 2}},
			{Name: "authors", Kind: FieldPhrase, MinWords: 3, MaxWords: 8, RareWords: 0.6,
				DirtA: Dirt{Typo: 0.10, WordSwap: 0.20, Abbrev: 0.20, WordDrop: 0.10, Passes: 2},
				DirtB: Dirt{Typo: 0.10, WordDrop: 0.20, Abbrev: 0.20, Passes: 2}},
			{Name: "venue", Kind: FieldPool, PoolSize: 60, PoolVariants: 0.40, BVariantProb: 0.40,
				DirtA: Dirt{Missing: 0.05}, DirtB: Dirt{Missing: 0.10}},
			{Name: "year", Kind: FieldInt, Lo: 1975, Hi: 2017,
				DirtA: Dirt{Missing: 0.05}, DirtB: Dirt{Missing: 0.12}},
			{Name: "keywords", Kind: FieldPhrase, MinWords: 3, MaxWords: 6,
				DirtA: Dirt{Missing: 0.25, WordDrop: 0.2}, DirtB: Dirt{Missing: 0.35, WordDrop: 0.2}},
			{Name: "pages", Kind: FieldTag,
				DirtA: Dirt{Missing: 0.20}, DirtB: Dirt{Missing: 0.35}},
			{Name: "publisher", Kind: FieldPool, PoolSize: 25, PoolVariants: 0.3, BVariantProb: 0.3,
				DirtA: Dirt{Missing: 0.15}, DirtB: Dirt{Missing: 0.25}},
		},
	}
}

// Skewed is not a Table-1 profile: it drives the shard-skew
// observability experiment. A handful of entities carry monster titles
// of ~3000 words vs the usual 3-7, so per-shard probe work under the
// rec-modulo-shards split is dominated by where those few records
// happen to land and the join's shard-skew telemetry has something
// real to report. The shape is deliberate: the join shards the larger
// side and replays the smaller side's prefix events in every shard, so
// the tables are asymmetric (monsters concentrate on the sharded A
// side), and the tail is sparse-but-huge rather than dense-but-mild —
// many small monsters would average out across shards, while a few
// huge ones leave some shards without any.
func Skewed() Profile {
	return Profile{
		// Seed 151 is chosen so every monster lands on the (sharded) A
		// side: a monster on the replayed B side would inflate every
		// shard equally and mask the imbalance the profile exists to show.
		Name: "SKEW", RowsA: 2000, RowsB: 400, Matches: 100,
		VocabSize: 4000, Seed: 151, GoldKnown: true,
		Fields: []FieldSpec{
			{Name: "title", Kind: FieldPhrase, MinWords: 3, MaxWords: 7, RareWords: 0.5,
				LongTailPct: 0.008, LongTailWords: 3000,
				DirtA: Dirt{Typo: 0.10, WordDrop: 0.10},
				DirtB: Dirt{Typo: 0.10, WordDrop: 0.10, ExtraWord: 0.10}},
			{Name: "city", Kind: FieldPool, PoolSize: 25, PoolVariants: 0.3, BVariantProb: 0.3,
				DirtA: Dirt{}, DirtB: Dirt{Missing: 0.05}},
			{Name: "year", Kind: FieldInt, Lo: 1990, Hi: 2020,
				DirtA: Dirt{}, DirtB: Dirt{Missing: 0.03}},
		},
	}
}

// AllProfiles returns the seven Table-1 profiles in the paper's order.
func AllProfiles() []Profile {
	return []Profile{
		AmazonGoogle(), WalmartAmazon(), ACMDBLP(), FodorsZagats(),
		Music1(), Music2(), Papers(),
	}
}

// Scaled returns a copy of p with row and match counts multiplied by
// frac (at least 1 row/match kept), used by the Figure 9 scaling sweeps.
func (p Profile) Scaled(frac float64) Profile {
	s := p
	s.RowsA = scaleInt(p.RowsA, frac)
	s.RowsB = scaleInt(p.RowsB, frac)
	s.Matches = scaleInt(p.Matches, frac)
	if s.Matches > s.RowsA {
		s.Matches = s.RowsA
	}
	if s.Matches > s.RowsB {
		s.Matches = s.RowsB
	}
	return s
}

func scaleInt(n int, frac float64) int {
	v := int(float64(n) * frac)
	if v < 1 {
		v = 1
	}
	return v
}
