package ssjoin

import (
	"strconv"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/telemetry"
)

// Provenance derivation for the join stage. The QJoin hot loop touches
// tens of millions of pairs, so it records nothing; instead, once a
// config's join has finished, the watched pairs' facts are recomputed
// directly — suppression by C, the exact similarity score under the
// config (a single token-list merge per watched pair), and the rank in
// the final top-k list. This is exact (scoring is deterministic) and
// costs O(|watch| x (tokens + k)) per config, entirely off the hot path.

// recordSuppressionProvenance records, once per executor run, which
// watched pairs are in the blocker output C and therefore excluded from
// D = A x B − C (Definition 2.2): the join will never emit them.
func recordSuppressionProvenance(prov *telemetry.Provenance, c *blocker.PairSet) {
	if !prov.Active() {
		return
	}
	for _, w := range prov.WatchedPairs() {
		if c.Contains(w[0], w[1]) {
			prov.Record(w[0], w[1], "ssjoin", "excluded",
				telemetry.L("reason", "pair is in blocker output C; joins search D = AxB - C"))
		}
	}
}

// recordJoinProvenance records each watched pair's exact score and rank
// under one finished config join.
func recordJoinProvenance(prov *telemetry.Provenance, cor *Corpus, mask config.Mask, c *blocker.PairSet, list TopKList, m simfunc.SetMeasure) {
	if !prov.Active() {
		return
	}
	cfg := cor.Res.String(mask)
	for _, w := range prov.WatchedPairs() {
		a, b := w[0], w[1]
		if a < 0 || a >= cor.NumA() || b < 0 || b >= cor.NumB() {
			prov.Record(a, b, "ssjoin", "out_of_range", telemetry.L("config", cfg))
			continue
		}
		if c.Contains(a, b) {
			continue // recorded once by recordSuppressionProvenance
		}
		score := cor.Sim(int32(a), int32(b), mask, m)
		rank := 0
		for i, p := range list.Pairs {
			if int(p.A) == a && int(p.B) == b {
				rank = i + 1
				break
			}
		}
		attrs := []telemetry.Label{
			telemetry.L("config", cfg),
			telemetry.L("score", strconv.FormatFloat(score, 'f', 4, 64)),
		}
		if rank > 0 {
			attrs = append(attrs,
				telemetry.L("rank", strconv.Itoa(rank)),
				telemetry.L("of", strconv.Itoa(len(list.Pairs))))
			prov.Record(a, b, "ssjoin", "ranked", attrs...)
		} else {
			if n := len(list.Pairs); n > 0 {
				attrs = append(attrs, telemetry.L("kth_score",
					strconv.FormatFloat(list.Pairs[n-1].Score, 'f', 4, 64)))
			}
			prov.Record(a, b, "ssjoin", "below_topk", attrs...)
		}
	}
}
