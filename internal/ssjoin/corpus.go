// Package ssjoin implements Section 4 of the paper: top-k string
// similarity joins over the config tree. It contains the improved
// single-config algorithm QJoin (prefix-event branch-and-bound with
// q-common-token score deferral), its TopKJoin baseline (q = 1), and the
// joint executor that processes all configs of a tree in parallel while
// reusing similarity-score computations (the overlap database H) and
// top-k lists from parent to child configs.
//
// Token model: each attribute value contributes its distinct word tokens;
// a config's token bag is the disjoint union over its attributes, so a
// token appearing in m attributes of the config has multiplicity m.
// Similarity is the multiset form of Jaccard/cosine/Dice/overlap over
// those bags. This makes overlap reuse exact: for every scored pair the
// common tokens' attribute bitmasks are recorded, and the overlap under
// any sub-config γ is Σ_t min(popcount(maskA∧γ), popcount(maskB∧γ)).
package ssjoin

import (
	"math/bits"
	"sort"

	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// tokenEntry is one distinct token of a tuple with the bitmask of
// promising attributes containing it. Entries are sorted by the global
// token order (rarest first).
type tokenEntry struct {
	tok  int32  // global token rank (0 = rarest)
	mask uint16 // attribute bitmask over config.Result.Promising
}

// record is a tokenized tuple.
type record struct {
	entries []tokenEntry
	// attrLen[i] is the number of distinct tokens of attribute i, so the
	// multiset length under config γ is Σ_{i∈γ} attrLen[i].
	attrLen []uint16
}

// lenUnder returns the multiset token length of the record under γ.
func (r *record) lenUnder(m config.Mask) int {
	n := 0
	for i, l := range r.attrLen {
		if m.Has(i) {
			n += int(l)
		}
	}
	return n
}

// Corpus is the tokenized view of two tables under the promising
// attributes of a config generation result. Building it once up front
// shares tokenization across every config's join.
type Corpus struct {
	Res   *config.Result
	recsA []record
	recsB []record
	// AvgTokens is the average multiset token length per tuple under the
	// full config, across both tables; it gates overlap reuse
	// (Section 4.2: reuse only pays off for long tuples).
	AvgTokens float64
}

// NewCorpus tokenizes both tables under res.Promising. Tokens are ranked
// globally by increasing document frequency so that string prefixes hold
// the rarest tokens.
func NewCorpus(a, b *table.Table, res *config.Result) *Corpus {
	dict := map[string]int32{}
	var df []int32
	type rawRec struct {
		toks  []int32
		masks []uint16
		attrs []uint16
	}
	build := func(t *table.Table) []rawRec {
		cols := make([]int, len(res.Promising))
		for i, attr := range res.Promising {
			cols[i] = t.AttrIndex(attr)
		}
		recs := make([]rawRec, t.NumRows())
		maskOf := map[int32]uint16{}
		for row := range recs {
			clear(maskOf)
			attrLen := make([]uint16, len(res.Promising))
			for i, col := range cols {
				if col < 0 {
					continue
				}
				toks := tokenize.WordSet(t.Value(row, col))
				attrLen[i] = uint16(len(toks))
				for _, s := range toks {
					id, ok := dict[s]
					if !ok {
						id = int32(len(df))
						dict[s] = id
						df = append(df, 0)
					}
					maskOf[id] |= 1 << uint(i)
				}
			}
			r := rawRec{attrs: attrLen}
			for id, m := range maskOf {
				r.toks = append(r.toks, id)
				r.masks = append(r.masks, m)
				df[id]++
			}
			recs[row] = r
		}
		return recs
	}
	rawA := build(a)
	rawB := build(b)

	// Global order: rarest token gets rank 0.
	ids := make([]int32, len(df))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(x, y int) bool {
		if df[ids[x]] != df[ids[y]] {
			return df[ids[x]] < df[ids[y]]
		}
		return ids[x] < ids[y]
	})
	rank := make([]int32, len(df))
	for r, id := range ids {
		rank[id] = int32(r)
	}

	finish := func(raw []rawRec) []record {
		recs := make([]record, len(raw))
		for i, rr := range raw {
			entries := make([]tokenEntry, len(rr.toks))
			for j, id := range rr.toks {
				entries[j] = tokenEntry{tok: rank[id], mask: rr.masks[j]}
			}
			sort.Slice(entries, func(x, y int) bool { return entries[x].tok < entries[y].tok })
			recs[i] = record{entries: entries, attrLen: rr.attrs}
		}
		return recs
	}
	c := &Corpus{Res: res, recsA: finish(rawA), recsB: finish(rawB)}
	full := config.Mask(1)<<uint(len(res.Promising)) - 1
	total := 0
	for i := range c.recsA {
		total += c.recsA[i].lenUnder(full)
	}
	for i := range c.recsB {
		total += c.recsB[i].lenUnder(full)
	}
	if n := len(c.recsA) + len(c.recsB); n > 0 {
		c.AvgTokens = float64(total) / float64(n)
	}
	return c
}

// NumA and NumB return the table sizes.
func (c *Corpus) NumA() int { return len(c.recsA) }

// NumB returns the B-side table size.
func (c *Corpus) NumB() int { return len(c.recsB) }

// maskPair packs the two attribute bitmasks of one common token.
type maskPair uint32

func packMasks(ma, mb uint16) maskPair { return maskPair(uint32(ma)<<16 | uint32(mb)) }

func (p maskPair) overlapUnder(m config.Mask) int {
	ma := uint16(p>>16) & uint16(m)
	mb := uint16(p) & uint16(m)
	return min(bits.OnesCount16(ma), bits.OnesCount16(mb))
}

// overlapUnder computes the multiset overlap of two records under γ by
// merging their rank-sorted token entries, and optionally captures the
// common tokens' mask pairs for the reuse database. Masks are stored
// unrestricted, so they remain valid for any sub-config.
func overlapUnder(x, y *record, m config.Mask, capture bool) (int, []maskPair) {
	var pairs []maskPair
	o := 0
	i, j := 0, 0
	mm := uint16(m)
	for i < len(x.entries) && j < len(y.entries) {
		ex, ey := x.entries[i], y.entries[j]
		switch {
		case ex.tok < ey.tok:
			i++
		case ex.tok > ey.tok:
			j++
		default:
			ca := bits.OnesCount16(ex.mask & mm)
			cb := bits.OnesCount16(ey.mask & mm)
			if ca > 0 && cb > 0 {
				o += min(ca, cb)
				if capture {
					pairs = append(pairs, packMasks(ex.mask, ey.mask))
				}
			}
			i++
			j++
		}
	}
	return o, pairs
}

// Sim computes a pair's multiset similarity under any config mask — the
// feature extractor uses this with single-attribute masks to build the
// verifier's per-attribute similarity features.
func (c *Corpus) Sim(a, b int32, m config.Mask, meas simfunc.SetMeasure) float64 {
	ra, rb := &c.recsA[a], &c.recsB[b]
	lx, ly := ra.lenUnder(m), rb.lenUnder(m)
	if lx == 0 || ly == 0 {
		return 0
	}
	o, _ := overlapUnder(ra, rb, m, false)
	return meas.FromOverlap(o, lx, ly)
}

// LenUnder returns a record's multiset token length under a config mask;
// side 0 is table A, side 1 is table B.
func (c *Corpus) LenUnder(side int, rec int32, m config.Mask) int {
	if side == 0 {
		return c.recsA[rec].lenUnder(m)
	}
	return c.recsB[rec].lenUnder(m)
}
