package ssjoin

// The flat-arena probe kernel (DESIGN.md "Flat-arena join kernel"): the
// QJoin prefix-event loop of join.go's runJoin with every map lookup
// replaced by a slice index, plus the ShallowBlocker-style length and
// positional prefix filters as two additional strict prunes. The kernel
// computes the same pure function as the legacy map kernel in
// join_legacy.go — identical top-k bytes AND identical runStats counter
// stream (canonical reports embed the counters, and the differential
// harness byte-compares reports across the kernel seam), so every
// branch here mirrors the legacy loop's structure and increment order
// exactly. The only intended differences are data layout and the probe
// buffers' pooled lifetime.
//
// Layout recap (arena.go holds the structures):
//
//	posting arena   offX[id], fillX[id] index a postEntry slab per side;
//	                the index-phase count pass sizes each id's region, so
//	                the probe loop appends with one store + one increment.
//	pair state      pairs[rowOff[sharded]+other], an epoch stamp packed
//	                with a signed state byte; reset between probes is one
//	                epoch bump, never a clear.
//
// Everything on the pop→touch→score path carries //mc:hotpath: mclint's
// hotalloc analyzer plus the -escapes compile prove the loop stays
// allocation-free statically, and TestFlatProbePathZeroAllocs pins it
// dynamically over the whole probe (index build excluded).

import (
	"slices"
	"strconv"

	"matchcatcher/internal/telemetry"
)

// wire binds the probe to one shard's run and sizes the pooled buffers:
// geometry normalization, pair-state epoch reset, position/arena-table
// sizing, and the pair-state row bases for the owned sharded-side
// records. It runs before the seed absorb (seeds must warm the top-k
// heap before event seeding so the push-cap prune sees them, exactly as
// the legacy kernel orders it). May allocate, but only on buffer
// growth — steady-state reuse through the pool allocates nothing.
func (p *flatProbe) wire(opt runOpts, view shardView, ids denseInstances,
	rs *runStats, score scorer, top *topkHeap, pc *shardCounters,
	mergeCh <-chan []ScoredPair, span *telemetry.TraceSpan) {

	nA, nB := len(ids.a), len(ids.b)
	p.q = opt.q
	p.m = opt.m
	p.c = opt.c
	p.score = score
	p.rs = rs
	p.top = top
	p.cur = progCursor{slot: pc}
	p.cancel = opt.cancel
	p.mergeCh = mergeCh
	p.span = span
	p.idsA, p.idsB = ids.a, ids.b

	// Normalize the geometry: an unsharded probe is "side A dealt to one
	// shard", so the state layout has a single shape everywhere.
	p.side, p.shard, p.div = 0, 0, 1
	if view.shards > 1 {
		p.side = view.side
		p.shard = int32(view.shard)
		p.div = int32(view.shards)
	}
	sideLen, otherLen := nA, nB
	if p.side == 1 {
		sideLen, otherLen = nB, nA
	}
	p.otherLen = int32(otherLen)
	owned := sideLen
	if p.div > 1 {
		owned = (sideLen - int(p.shard) + int(p.div) - 1) / int(p.div)
	}
	p.resetPairs(owned * otherLen)

	p.posA = growInt32(p.posA, nA)
	clear(p.posA)
	p.posB = growInt32(p.posB, nB)
	clear(p.posB)
	p.rowOff = growInt32(p.rowOff, sideLen)
	p.offA = growInt32(p.offA, ids.n)
	p.fillA = growInt32(p.fillA, ids.n)
	clear(p.fillA)
	p.offB = growInt32(p.offB, ids.n)
	p.fillB = growInt32(p.fillB, ids.n)
	clear(p.fillB)
	p.events.items = p.events.items[:0]
	p.touched = p.touched[:0]

	local := int32(0)
	for i := p.shard; i < int32(sideLen); i += p.div {
		p.rowOff[i] = local * p.otherLen
		local++
	}
}

// seed is the index phase: one pass over each side counting owned
// instances per dense id (into the fill tables, converted to slab
// offsets below) and pushing each owned record's first prefix event —
// the same owned-record visit order as the legacy kernel (A ascending,
// then B ascending). Returns the owned-instance total for the progress
// tracker.
func (p *flatProbe) seed() int64 {
	var ownedInstances int64
	for i := int32(0); i < int32(len(p.idsA)); i++ {
		if p.side == 0 && p.div > 1 && i%p.div != p.shard {
			continue
		}
		for _, id := range p.idsA[i] {
			p.fillA[id]++
		}
		ownedInstances += int64(len(p.idsA[i]))
		p.push(0, i)
	}
	for i := int32(0); i < int32(len(p.idsB)); i++ {
		if p.side == 1 && p.div > 1 && i%p.div != p.shard {
			continue
		}
		for _, id := range p.idsB[i] {
			p.fillB[id]++
		}
		ownedInstances += int64(len(p.idsB[i]))
		p.push(1, i)
	}
	p.slabA = growEntries(p.slabA, sumToOffsets(p.offA, p.fillA))
	p.slabB = growEntries(p.slabB, sumToOffsets(p.offB, p.fillB))
	return ownedInstances
}

// sumToOffsets turns per-id counts into exclusive-prefix-sum offsets,
// zeroing the counts so they can serve as the probe loop's fill cursors.
// Returns the slab size.
func sumToOffsets(off, cnt []int32) int {
	total := int32(0)
	for i, c := range cnt {
		off[i] = total
		total += c
		cnt[i] = 0
	}
	return int(total)
}

// push queues a record's next prefix-extension event unless its score
// cap proves no new top-k pair can come from the remaining tail. Mirror
// of the legacy kernel's push closure.
//
//mc:hotpath
func (p *flatProbe) push(side int8, rec int32) {
	var pos int32
	var l int
	if side == 0 {
		pos, l = p.posA[rec], len(p.idsA[rec])
	} else {
		pos, l = p.posB[rec], len(p.idsB[rec])
	}
	if int(pos) >= l {
		return
	}
	cap := p.m.ExtendCap(int(pos), l)
	if p.top.full() && cap < p.top.kthScore() {
		p.rs.pruneKills++
		p.rs.killsPushCap++
		// The record's remaining tail dies with the kill: it is never
		// re-pushed, so those instances are accounted as skipped.
		p.rs.probesSkipped += int64(l - int(pos))
		return // this string can never produce a new top-k pair
	}
	p.events.push(event{cap: cap, side: side, rec: rec})
}

// touch advances pair (a, b) by one common instance, met at prefix
// positions (pa, pb) of the respective records. First touch runs the
// blocker-suppression check and the two strict pair filters; q common
// instances trigger the exact score.
//
// Filter soundness (why killing here cannot change the output): both
// records list their instances in the one global rare-first rank order,
// so for any instance common to a and b, its list positions advance in
// lockstep — a common instance before (pa, pb) in BOTH lists would have
// been touched already (each side pops positions sequentially; the
// touch fires at the later pop), contradicting first touch, and order
// preservation puts every other common instance strictly after pa in
// a's list AND after pb in b's. Hence at first touch
//
//	overlap(a, b) <= 1 + min(lx-pa-1, ly-pb-1)   (positional prefix)
//	overlap(a, b) <= min(lx, ly)                 (length, trivially)
//
// and FromOverlap is monotone in the overlap, so each bound caps the
// pair's final score. Both prunes are strict (< the current k-th score,
// which only ever rises): a killed pair scores strictly below every
// future k-th score, so it could never be retained — not even via the
// equal-score id tie-break — and the heap evolves bit-identically to a
// run without the filters. The kill just skips the merge-scoring work.
//
//mc:hotpath
func (p *flatProbe) touch(a, b, pa, pb int32) {
	var idx int32
	if p.side == 0 {
		idx = p.rowOff[a] + b
	} else {
		idx = p.rowOff[b] + a
	}
	v := p.pairs[idx]
	st := int32(pairState(v))
	if pairEpoch(v) != p.epoch {
		st = 0
		if p.c.Contains(int(a), int(b)) {
			p.pairs[idx] = pairPack(p.epoch, pairSuppressed)
			p.rs.suppressedPairs++
			return
		}
		if p.top.full() {
			lx, ly := len(p.idsA[a]), len(p.idsB[b])
			kth := p.top.kthScore()
			mo := min(lx, ly)
			if p.m.FromOverlap(mo, lx, ly) < kth {
				p.pairs[idx] = pairPack(p.epoch, pairKilled)
				p.rs.killsLengthFilter++
				if filterKillHook != nil {
					filterKillHook(a, b, tierLengthFilter)
				}
				return
			}
			if rem := 1 + min(lx-int(pa)-1, ly-int(pb)-1); rem < mo {
				if p.m.FromOverlap(rem, lx, ly) < kth {
					p.pairs[idx] = pairPack(p.epoch, pairKilled)
					p.rs.killsPrefixPos++
					if filterKillHook != nil {
						filterKillHook(a, b, tierPrefixPos)
					}
					return
				}
			}
		}
	} else if st < 0 {
		return
	}
	st++
	if int(st) >= p.q {
		p.pairs[idx] = pairPack(p.epoch, pairScored)
		p.top.offer(ScoredPair{A: a, B: b, Score: p.score(a, b)})
		return
	}
	p.pairs[idx] = pairPack(p.epoch, int8(st))
	if st == 1 {
		// First positive count: remember the pair for the exactness
		// flush (states never return to zero within an epoch, so each
		// deferred pair is recorded exactly once). Amortized append into
		// a pooled buffer — steady state allocates nothing.
		p.touched = append(p.touched, idx)
	}
}

// absorb folds a parent config's top-k pairs into this run, rescoring
// each pair under this config (scores do not transfer across configs;
// the scorer answers from the parent's overlap DB when reuse is on).
// Mirror of the legacy kernel's absorb closure, including the silent
// suppression of unseen C pairs.
func (p *flatProbe) absorb(list []ScoredPair) {
	if len(list) > 0 {
		p.span.Event("absorb", telemetry.L("pairs", strconv.Itoa(len(list))))
	}
	for _, pr := range list {
		var idx int32
		if p.side == 0 {
			idx = p.rowOff[pr.A] + pr.B
		} else {
			idx = p.rowOff[pr.B] + pr.A
		}
		v := p.pairs[idx]
		if pairEpoch(v) != p.epoch {
			if p.c.Contains(int(pr.A), int(pr.B)) {
				p.pairs[idx] = pairPack(p.epoch, pairSuppressed)
				continue
			}
		} else if pairState(v) < 0 {
			continue
		}
		p.pairs[idx] = pairPack(p.epoch, pairScored)
		p.top.offer(ScoredPair{A: pr.A, B: pr.B, Score: p.score(pr.A, pr.B)})
	}
}

// probe runs the prefix-event loop to completion (or cancellation —
// returns true). Pop the highest-cap extension, join the new instance
// against the opposite side's arena region, append self, requeue. The
// stride-1023 checkpoint carries progress flushes, cancellation, and
// mid-run merge arrivals, exactly like the legacy loop.
//
//mc:hotpath
func (p *flatProbe) probe() bool {
	steps := 0
	for p.events.Len() > 0 {
		if steps++; steps&1023 == 0 {
			// Progress sampling rides the loop's existing stride
			// checkpoint: one delta flush per progressStride pops.
			p.cur.flush(p.rs, p.events.Len(), p.top.Len())
			if p.cancel != nil && p.cancel.Load() {
				return true
			}
			if p.mergeCh != nil {
				select {
				case list := <-p.mergeCh:
					p.absorb(list)
				default:
				}
			}
		}
		ev := p.events.items[0]
		if p.top.full() && ev.cap < p.top.kthScore() {
			p.rs.pruneKills += int64(p.events.Len())
			p.rs.killsLoopBreak += int64(p.events.Len())
			// Every record still in the heap dies here; account its
			// unpopped tail so done+skipped still converges to the
			// owned-instance total. One pass over the heap, once per shard.
			for _, dead := range p.events.items {
				if dead.side == 0 {
					p.rs.probesSkipped += int64(len(p.idsA[dead.rec]) - int(p.posA[dead.rec]))
				} else {
					p.rs.probesSkipped += int64(len(p.idsB[dead.rec]) - int(p.posB[dead.rec]))
				}
			}
			return false
		}
		p.events.pop()
		p.rs.prefixEvents++
		if ev.side == 0 {
			pos := p.posA[ev.rec]
			inst := p.idsA[ev.rec][pos]
			p.posA[ev.rec] = pos + 1
			off, n := p.offB[inst], p.fillB[inst]
			for _, pe := range p.slabB[off : off+n] {
				p.touch(ev.rec, pe.rec, pos, pe.pos)
			}
			p.slabA[p.offA[inst]+p.fillA[inst]] = postEntry{rec: ev.rec, pos: pos}
			p.fillA[inst]++
		} else {
			pos := p.posB[ev.rec]
			inst := p.idsB[ev.rec][pos]
			p.posB[ev.rec] = pos + 1
			off, n := p.offA[inst], p.fillA[inst]
			for _, pe := range p.slabA[off : off+n] {
				p.touch(pe.rec, ev.rec, pe.pos, pos)
			}
			p.slabB[p.offB[inst]+p.fillB[inst]] = postEntry{rec: ev.rec, pos: pos}
			p.fillB[inst]++
		}
		p.push(ev.side, ev.rec)
	}
	return false
}

// flushPair bound-checks one deferred pair (st common instances seen,
// exact score still unknown) and scores it if the optimistic bound ties
// or beats the k-th score. Every uncounted common instance lies beyond
// at least one final prefix, so overlap <= count + (lx-px) + (ly-py).
//
//mc:hotpath
func (p *flatProbe) flushPair(a, b, idx, st int32) {
	p.rs.deferredPairs++
	lx, ly := len(p.idsA[a]), len(p.idsB[b])
	oMax := int(st) + (lx - int(p.posA[a])) + (ly - int(p.posB[b]))
	if m := min(lx, ly); oMax > m {
		oMax = m
	}
	if p.top.full() && p.m.FromOverlap(oMax, lx, ly) < p.top.kthScore() {
		p.rs.killsFlushBound++
		return
	}
	p.rs.flushedPairs++
	p.pairs[idx] = pairPack(p.epoch, pairScored)
	p.top.offer(ScoredPair{A: a, B: b, Score: p.score(a, b)})
}

// finish is the exactness flush: pending pairs (seen < q common
// instances) may still belong in the top-k. The deterministic visit
// order both kernels share is the dense storage order — (owned
// sharded-side record asc, other record asc), i.e. ascending pair-state
// index (the k-th score rises as flushed pairs are admitted, so the
// visit order shapes the counters; the list itself is order-independent
// by the total-order retention). When few pairs were touched relative
// to the pair space, sorting the touched-index list reproduces that
// exact order without scanning the table; dense probes fall back to the
// straight scan, which needs no sort because the scan IS the order.
//
//mc:hotpath
func (p *flatProbe) finish() {
	n := int32(len(p.pairs))
	if p.otherLen == 0 {
		return
	}
	// Crossover: the dense scan is sequential 2-byte loads (memory
	// bandwidth), the sparse path pays a sort plus scattered loads —
	// roughly two orders of magnitude more per entry visited.
	if int64(len(p.touched))*64 < int64(n) {
		slices.Sort(p.touched)
		for _, idx := range p.touched {
			v := p.pairs[idx]
			st := int32(pairState(v))
			if pairEpoch(v) != p.epoch || st <= 0 {
				continue
			}
			row := idx / p.otherLen
			o := idx - row*p.otherLen
			rec := p.shard + row*p.div
			var a, b int32
			if p.side == 0 {
				a, b = rec, o
			} else {
				a, b = o, rec
			}
			p.flushPair(a, b, idx, st)
		}
		return
	}
	rec := p.shard
	for base := int32(0); base < n; base += p.otherLen {
		for o := int32(0); o < p.otherLen; o++ {
			idx := base + o
			v := p.pairs[idx]
			if pairEpoch(v) != p.epoch {
				continue
			}
			st := int32(pairState(v))
			if st <= 0 {
				continue
			}
			var a, b int32
			if p.side == 0 {
				a, b = rec, o
			} else {
				a, b = o, rec
			}
			p.flushPair(a, b, idx, st)
		}
		rec += p.div
	}
}

// joinShardFlat is the flat-arena counterpart of joinShardLegacy: one
// shard's exact QJoin (Section 4.1) restricted to the records the view
// owns, probing through the pooled arena kernel. Span structure,
// progress flushes, and counter increments mirror the legacy kernel so
// the two are interchangeable bit-for-bit.
func joinShardFlat(opt runOpts, view shardView, ids denseInstances,
	rs *runStats, score scorer, seeds []ScoredPair,
	mergeCh <-chan []ScoredPair, span *telemetry.TraceSpan,
	pc *shardCounters) *topkHeap {

	top := newTopkHeap(opt.k)
	p := getFlatProbe()
	p.wire(opt, view, ids, rs, score, top, pc, mergeCh, span)
	p.absorb(seeds)

	idxSpan := span.Child("ssjoin.index")
	owned := p.seed()
	if pc != nil {
		pc.probesTotal.Add(owned)
	}
	idxSpan.SetAttrInt("events_seeded", int64(p.events.Len()))
	idxSpan.End()

	probeSpan := span.Child("ssjoin.probe")
	if cancelled := p.probe(); cancelled {
		probeSpan.Event("cancelled")
		probeSpan.End()
		p.cur.flush(rs, p.events.Len(), top.Len())
		putFlatProbe(p)
		return top
	}
	probeSpan.SetAttrInt("prefix_events", rs.prefixEvents)
	probeSpan.SetAttrInt("prune_kills", rs.pruneKills)
	probeSpan.End()

	// Drain any merge list that arrived after the loop ended.
	if mergeCh != nil {
		select {
		case list := <-mergeCh:
			p.absorb(list)
		default:
		}
	}

	topkSpan := span.Child("ssjoin.topk")
	p.finish()
	topkSpan.SetAttrInt("deferred_pairs", rs.deferredPairs)
	topkSpan.SetAttrInt("flushed_pairs", rs.flushedPairs)
	topkSpan.End()
	// Terminal flush: publish the final counters and zero the live heap
	// gauge (the shard is done; residual dead events are not a live heap).
	p.cur.flush(rs, 0, top.Len())
	putFlatProbe(p)
	return top
}
