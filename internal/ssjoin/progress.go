package ssjoin

import (
	"sort"
	"sync/atomic"
	"time"
	"unsafe"
)

// Progress is the live observability side-channel of a join run: a fixed
// array of per-shard counter slots the probe loops flush into every
// progressStride heap pops, plus run-level config counters. It only ever
// observes — nothing in the join reads it back — so attaching one cannot
// change a single output bit (TestProgressDeterminismGrid holds the
// join to that).
//
// Ownership & cost model: every counter is an atomic in a slot padded
// out to two cache lines, so concurrent shards never false-share; the
// probe loop itself keeps plain local counters (runStats) and a
// progCursor flushes deltas at the existing stride-1024 checkpoint, so
// the per-pop cost of tracking is zero and the per-stride cost is a
// handful of uncontended atomic adds. A nil *Progress disables
// everything: the only residue is a nil check per stride.
//
// One Progress observes one run (JoinOne or JoinAll call). Shard slots
// are cumulative per shard index across the run's configs — probe
// sharding deals records round-robin (rec mod shards), so shard i of
// every config owns the same residue class and the per-slot totals are
// the run-wide work distribution of that class.
type Progress struct {
	startNanos     atomic.Int64 // wall clock at run begin (for ETA only)
	configsTotal   atomic.Int64
	configsStarted atomic.Int64
	configsDone    atomic.Int64
	finished       atomic.Bool
	cancelled      atomic.Bool
	shards         [progressShardSlots]paddedShardCounters
}

// progressShardSlots caps the tracked shard indexes. Shard counts come
// from ProbeWorkers (a small CPU-bound knob); indexes at or above the
// cap fold into their residue slot, keeping the array fixed-size so
// Progress never allocates after construction.
const progressShardSlots = 64

// progressStride is the probe-loop flush cadence in heap pops. It
// matches the loop's existing stride-1023 cancellation checkpoint, so
// sampling rides a branch the loop already takes.
const progressStride = 1024

// shardCounters is one shard slot. probesTotal counts the token
// instances the shard's owned records can pop; every instance is
// eventually accounted as popped (probesDone) or written off by a prune
// (probesSkipped), which is what makes Fraction converge to 1.
type shardCounters struct {
	probesDone      atomic.Int64 // prefix events popped off the event heap
	probesSkipped   atomic.Int64 // instances written off by pruning
	probesTotal     atomic.Int64 // instances owned (set once per config at seeding)
	killsPushCap      atomic.Int64 // prune tier a: extension cap < k-th at push
	killsLoopBreak    atomic.Int64 // prune tier b: root cap < k-th ends the loop
	killsFlushBound   atomic.Int64 // prune tier c: deferred pair's bound < k-th at flush
	killsLengthFilter atomic.Int64 // pair filter: length bound < k-th at first touch
	killsPrefixPos    atomic.Int64 // pair filter: positional prefix bound < k-th at first touch
	mergeOffers     atomic.Int64 // shard-heap pairs offered to the top-k merge
	heapLive        atomic.Int64 // event-heap size at the last sample
	topkLive        atomic.Int64 // top-k heap size at the last sample
	samples         atomic.Int64 // stride flushes taken
}

// paddedShardCounters pads each slot to a 128-byte multiple (two cache
// lines: the adjacent-line prefetcher makes 64 too small) so concurrent
// shard flushes never contend on a line.
type paddedShardCounters struct {
	shardCounters
	_ [(128 - unsafe.Sizeof(shardCounters{})%128) % 128]byte
}

// NewProgress builds a tracker for one run. Attach it via
// Options.Progress before calling JoinOne or JoinAll.
func NewProgress() *Progress { return &Progress{} }

// beginRun stamps the start time (first caller wins) and raises the
// config total. JoinOne/JoinAll call it on entry.
func (p *Progress) beginRun(configs int) {
	if p == nil {
		return
	}
	p.startNanos.CompareAndSwap(0, time.Now().UnixNano())
	p.configsTotal.Add(int64(configs))
}

func (p *Progress) configStarted() {
	if p == nil {
		return
	}
	p.configsStarted.Add(1)
}

func (p *Progress) configDone() {
	if p == nil {
		return
	}
	p.configsDone.Add(1)
}

// finishRun marks the run complete (or cancelled). JoinOne/JoinAll call
// it on every return path.
func (p *Progress) finishRun(cancelled bool) {
	if p == nil {
		return
	}
	if cancelled {
		p.cancelled.Store(true)
	}
	p.finished.Store(true)
}

// slot returns the padded counter block for a shard index (nil receiver
// → nil, which disables the cursor downstream).
func (p *Progress) slot(shard int) *shardCounters {
	if p == nil {
		return nil
	}
	return &p.shards[shard%progressShardSlots].shardCounters
}

// progCursor carries the probe loop's last-flushed view of its runStats
// counters, so each stride flush publishes only the delta. It lives on
// joinShard's stack; a nil slot turns every flush into a nil check.
type progCursor struct {
	slot              *shardCounters
	probesDone        int64
	probesSkipped     int64
	killsPushCap      int64
	killsLoopBreak    int64
	killsFlushBound   int64
	killsLengthFilter int64
	killsPrefixPos    int64
}

// flush publishes the counters accumulated since the previous flush,
// plus the live heap sizes. It runs once per progressStride pops (and
// at loop exit), never per pop, and performs no allocation.
//
//mc:hotpath
func (c *progCursor) flush(rs *runStats, heapLive, topkLive int) {
	if c.slot == nil {
		return
	}
	if d := rs.prefixEvents - c.probesDone; d != 0 {
		c.slot.probesDone.Add(d)
		c.probesDone = rs.prefixEvents
	}
	if d := rs.probesSkipped - c.probesSkipped; d != 0 {
		c.slot.probesSkipped.Add(d)
		c.probesSkipped = rs.probesSkipped
	}
	if d := rs.killsPushCap - c.killsPushCap; d != 0 {
		c.slot.killsPushCap.Add(d)
		c.killsPushCap = rs.killsPushCap
	}
	if d := rs.killsLoopBreak - c.killsLoopBreak; d != 0 {
		c.slot.killsLoopBreak.Add(d)
		c.killsLoopBreak = rs.killsLoopBreak
	}
	if d := rs.killsFlushBound - c.killsFlushBound; d != 0 {
		c.slot.killsFlushBound.Add(d)
		c.killsFlushBound = rs.killsFlushBound
	}
	if d := rs.killsLengthFilter - c.killsLengthFilter; d != 0 {
		c.slot.killsLengthFilter.Add(d)
		c.killsLengthFilter = rs.killsLengthFilter
	}
	if d := rs.killsPrefixPos - c.killsPrefixPos; d != 0 {
		c.slot.killsPrefixPos.Add(d)
		c.killsPrefixPos = rs.killsPrefixPos
	}
	c.slot.heapLive.Store(int64(heapLive))
	c.slot.topkLive.Store(int64(topkLive))
	c.slot.samples.Add(1)
	rs.progressSamples++
}

// ShardProgress is one shard slot's view in a snapshot.
type ShardProgress struct {
	Shard         int   `json:"shard"`
	ProbesDone    int64 `json:"probes_done"`
	ProbesSkipped int64 `json:"probes_skipped"`
	ProbesTotal   int64 `json:"probes_total"`
	HeapLive      int64 `json:"heap_live"`
	TopKLive      int64 `json:"topk_live"`
}

// ShardSkew summarizes the work distribution across shard slots: work
// units are popped prefix events, the ratio is max over mean (1 =
// perfectly balanced).
type ShardSkew struct {
	Shards         int     `json:"shards"`
	WorkMin        int64   `json:"work_min"`
	WorkMax        int64   `json:"work_max"`
	WorkP50        int64   `json:"work_p50"`
	ImbalanceRatio float64 `json:"imbalance_ratio"`
}

// ProgressSnapshot is a consistent-enough cut of a running join for
// dashboards and meters: monotone counters plus derived completion and
// ETA estimates. Individual counters are loaded independently (no
// global lock — the join must not stall for observers), so totals can
// be one stride apart across shards; every derived value is an
// estimate, never an exactness claim.
type ProgressSnapshot struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ConfigsTotal   int64   `json:"configs_total"`
	ConfigsStarted int64   `json:"configs_started"`
	ConfigsDone    int64   `json:"configs_done"`
	// Probe accounting over the configs started so far: every owned token
	// instance ends up popped (done) or pruned away (skipped), so
	// done+skipped converges to total as configs finish.
	ProbesDone    int64 `json:"probes_done"`
	ProbesSkipped int64 `json:"probes_skipped"`
	ProbesTotal   int64 `json:"probes_total"`
	// Candidates killed per prune tier (DESIGN.md "Join progress & skew
	// observability").
	PruneKillPushCap    int64 `json:"prune_kill_push_cap"`
	PruneKillLoopBreak  int64 `json:"prune_kill_loop_break"`
	PruneKillFlushBound int64 `json:"prune_kill_flush_bound"`
	// The strict pair-filter tiers (length_filter / prefix_pos in the
	// telemetry tier vocabulary): pairs whose score bound at first touch
	// proved they can never reach the running top-k.
	PruneKillLengthFilter int64 `json:"prune_kill_length_filter"`
	PruneKillPrefixPos    int64 `json:"prune_kill_prefix_pos"`
	MergeOffers         int64 `json:"merge_offers"`
	EventHeapLive       int64 `json:"event_heap_live"`
	TopKLive            int64 `json:"topk_live"`
	Samples             int64 `json:"samples"`
	// Fraction estimates run completion in [0, 1]; ETASeconds is -1 until
	// enough work has been accounted to extrapolate.
	Fraction   float64         `json:"fraction"`
	ETASeconds float64         `json:"eta_seconds"`
	Done       bool            `json:"done"`
	Cancelled  bool            `json:"cancelled"`
	Shards     []ShardProgress `json:"shards,omitempty"`
	Skew       ShardSkew       `json:"skew"`
}

// Snapshot derives the run's current view. It is safe to call from any
// goroutine at any time, including after the run finished; it allocates
// (the shard slice) and so must never be called from the probe loop.
func (p *Progress) Snapshot() ProgressSnapshot {
	var snap ProgressSnapshot
	if p == nil {
		snap.ETASeconds = -1
		return snap
	}
	if start := p.startNanos.Load(); start != 0 {
		snap.ElapsedSeconds = time.Since(time.Unix(0, start)).Seconds()
	}
	snap.ConfigsTotal = p.configsTotal.Load()
	snap.ConfigsStarted = p.configsStarted.Load()
	snap.ConfigsDone = p.configsDone.Load()
	snap.Done = p.finished.Load()
	snap.Cancelled = p.cancelled.Load()

	works := make([]int64, 0, progressShardSlots)
	for i := range p.shards {
		c := &p.shards[i].shardCounters
		total := c.probesTotal.Load()
		done := c.probesDone.Load()
		skipped := c.probesSkipped.Load()
		if total == 0 && done == 0 && skipped == 0 {
			continue // slot never activated
		}
		snap.ProbesDone += done
		snap.ProbesSkipped += skipped
		snap.ProbesTotal += total
		snap.PruneKillPushCap += c.killsPushCap.Load()
		snap.PruneKillLoopBreak += c.killsLoopBreak.Load()
		snap.PruneKillFlushBound += c.killsFlushBound.Load()
		snap.PruneKillLengthFilter += c.killsLengthFilter.Load()
		snap.PruneKillPrefixPos += c.killsPrefixPos.Load()
		snap.MergeOffers += c.mergeOffers.Load()
		snap.EventHeapLive += c.heapLive.Load()
		snap.TopKLive += c.topkLive.Load()
		snap.Samples += c.samples.Load()
		snap.Shards = append(snap.Shards, ShardProgress{
			Shard:         i,
			ProbesDone:    done,
			ProbesSkipped: skipped,
			ProbesTotal:   total,
			HeapLive:      c.heapLive.Load(),
			TopKLive:      c.topkLive.Load(),
		})
		works = append(works, done)
	}
	snap.Skew = skewOf(works)
	snap.Fraction, snap.ETASeconds = estimate(&snap)
	return snap
}

// skewOf summarizes a work distribution (one value per active shard).
func skewOf(works []int64) ShardSkew {
	sk := ShardSkew{Shards: len(works)}
	if len(works) == 0 {
		return sk
	}
	sorted := append([]int64(nil), works...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sk.WorkMin = sorted[0]
	sk.WorkMax = sorted[len(sorted)-1]
	sk.WorkP50 = sorted[len(sorted)/2]
	var sum int64
	for _, w := range sorted {
		sum += w
	}
	if sum > 0 {
		mean := float64(sum) / float64(len(sorted))
		sk.ImbalanceRatio = float64(sk.WorkMax) / mean
	}
	return sk
}

// estimate derives (fraction, eta). The per-config probe fraction
// (done+skipped over total) covers only the configs started, so it is
// scaled down by started/total; unstarted configs are extrapolated at
// the average cost of the started ones. ETA is a straight-line
// extrapolation of elapsed time over the remaining fraction.
func estimate(s *ProgressSnapshot) (float64, float64) {
	if s.Done {
		return 1, 0
	}
	if s.ConfigsTotal == 0 || s.ConfigsStarted == 0 || s.ProbesTotal == 0 {
		return 0, -1
	}
	accounted := float64(s.ProbesDone + s.ProbesSkipped)
	estTotal := float64(s.ProbesTotal) * float64(s.ConfigsTotal) / float64(s.ConfigsStarted)
	f := accounted / estTotal
	if f > 1 {
		f = 1
	}
	if f <= 0 {
		return 0, -1
	}
	eta := s.ElapsedSeconds * (1 - f) / f
	return f, eta
}
