package ssjoin

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/table"
)

// corpusFor builds a corpus from string-valued tables, generating configs.
func corpusFor(t *testing.T, attrs []string, rowsA, rowsB [][]string) (*Corpus, *config.Result) {
	t.Helper()
	a := table.MustNew("A", attrs)
	for _, r := range rowsA {
		a.MustAppend(r)
	}
	b := table.MustNew("B", attrs)
	for _, r := range rowsB {
		b.MustAppend(r)
	}
	res, err := config.Generate(a, b, config.Options{})
	if err != nil {
		t.Fatalf("config.Generate: %v", err)
	}
	return NewCorpus(a, b, res), res
}

// TestFigure6Example reproduces the worked example of Section 4.1: strings
// w = {a,b,c,e}, x = {a,b,c,e,f}, y = {b,c,d,e,f}, z = {b,c,f,g,h} with
// pair scores s(x,w) = 0.8, s(x,y) = 0.67, s(z,y) = 0.43. With A = {w,y}
// and B = {x,z}, the top-2 must be (w,x) and (y,x).
func TestFigure6Example(t *testing.T) {
	cor, res := corpusFor(t, []string{"v"},
		[][]string{{"a b c e"}, {"b c d e f"}},
		[][]string{{"a b c e f"}, {"b c f g h"}},
	)
	for _, q := range []int{1, 2, 3} {
		list := JoinOne(cor, res.Root.Mask, nil, Options{K: 2, Q: q})
		if len(list.Pairs) != 2 {
			t.Fatalf("q=%d: got %d pairs", q, len(list.Pairs))
		}
		p0, p1 := list.Pairs[0], list.Pairs[1]
		if p0.A != 0 || p0.B != 0 || math.Abs(p0.Score-0.8) > 1e-12 {
			t.Errorf("q=%d: top pair = %+v, want (w,x)=0.8", q, p0)
		}
		if p1.A != 1 || p1.B != 0 || math.Abs(p1.Score-2.0/3.0) > 1e-12 {
			t.Errorf("q=%d: second pair = %+v, want (y,x)=0.67", q, p1)
		}
	}
}

func TestCFilteringDropsBlockedPairs(t *testing.T) {
	cor, res := corpusFor(t, []string{"v"},
		[][]string{{"a b c e"}, {"b c d e f"}},
		[][]string{{"a b c e f"}, {"b c f g h"}},
	)
	c := blocker.NewPairSet()
	c.Add(0, 0) // suppress the best pair (w,x)
	list := JoinOne(cor, res.Root.Mask, c, Options{K: 2, Q: 1})
	for _, p := range list.Pairs {
		if p.A == 0 && p.B == 0 {
			t.Fatal("pair in C leaked into the top-k list")
		}
	}
	if len(list.Pairs) == 0 || list.Pairs[0].A != 1 || list.Pairs[0].B != 0 {
		t.Errorf("top pair after suppression = %+v", list.Pairs)
	}
}

func TestMultisetSemantics(t *testing.T) {
	// A token appearing in two attributes counts twice: tuple a has
	// "smith" in both name and city-ish attr; the multiset length is 4.
	cor, res := corpusFor(t, []string{"name", "addr"},
		[][]string{{"jim smith", "smith ville"}},
		[][]string{{"jim smith", "smith ville"}},
	)
	full := res.Root.Mask
	ra := &cor.recsA[0]
	if got := ra.lenUnder(full); got != 4 {
		t.Fatalf("multiset length = %d, want 4 (smith counted per attribute)", got)
	}
	o, _ := overlapUnder(ra, &cor.recsB[0], full, false)
	if o != 4 {
		t.Errorf("self overlap = %d, want 4", o)
	}
	list := JoinOne(cor, full, nil, Options{K: 1, Q: 1})
	if len(list.Pairs) != 1 || math.Abs(list.Pairs[0].Score-1) > 1e-12 {
		t.Errorf("identical tuples should score 1: %+v", list.Pairs)
	}
}

func TestOverlapUnderCapturesMasks(t *testing.T) {
	cor, res := corpusFor(t, []string{"name", "addr"},
		[][]string{{"alpha beta", "gamma"}},
		[][]string{{"alpha", "beta gamma"}},
	)
	full := res.Root.Mask
	o, mp := overlapUnder(&cor.recsA[0], &cor.recsB[0], full, true)
	if o != 3 {
		t.Fatalf("overlap = %d, want 3", o)
	}
	if len(mp) != 3 {
		t.Fatalf("captured %d mask pairs, want 3", len(mp))
	}
	// Restricting to a single attribute must reproduce that attribute's
	// overlap: under {name} only "alpha" matches in both name columns...
	// a.name = {alpha,beta}, b.name = {alpha}: overlap 1.
	var nameMask config.Mask
	for i, attr := range res.Promising {
		if attr == "name" {
			nameMask = config.Mask(1) << uint(i)
		}
	}
	sub := 0
	for _, p := range mp {
		sub += p.overlapUnder(nameMask)
	}
	oRef, _ := overlapUnder(&cor.recsA[0], &cor.recsB[0], nameMask, false)
	if sub != oRef {
		t.Errorf("mask-pair sub-config overlap = %d, direct = %d", sub, oRef)
	}
}

// randomCorpus builds random multi-attribute tables for property tests.
func randomCorpus(t *testing.T, rng *rand.Rand, nA, nB int) (*Corpus, *config.Result, *blocker.PairSet) {
	words := []string{"ka", "ri", "ton", "mel", "sor", "vin", "da", "lo", "pex", "tra", "ban", "cu", "dor", "fi"}
	phrase := func(min, max int) string {
		n := min + rng.Intn(max-min+1)
		var sb []string
		for i := 0; i < n; i++ {
			sb = append(sb, words[rng.Intn(len(words))])
		}
		return strings.Join(sb, " ")
	}
	row := func() []string {
		return []string{phrase(1, 4), phrase(2, 6), phrase(1, 3)}
	}
	var rowsA, rowsB [][]string
	for i := 0; i < nA; i++ {
		rowsA = append(rowsA, row())
	}
	for i := 0; i < nB; i++ {
		rowsB = append(rowsB, row())
	}
	cor, res := corpusFor(t, []string{"x", "y", "z"}, rowsA, rowsB)
	c := blocker.NewPairSet()
	for i := 0; i < nA*nB/10; i++ {
		c.Add(rng.Intn(nA), rng.Intn(nB))
	}
	return cor, res, c
}

func scoresOf(l TopKList) []float64 {
	out := make([]float64, len(l.Pairs))
	for i, p := range l.Pairs {
		out[i] = p.Score
	}
	return out
}

// sameTopK compares two top-k lists as score sequences (ties at the
// boundary may legitimately hold different pairs) and verifies that every
// pair strictly above the boundary appears in both.
func sameTopK(t *testing.T, label string, got, want TopKList) {
	t.Helper()
	gs, ws := scoresOf(got), scoresOf(want)
	if len(gs) != len(ws) {
		t.Errorf("%s: got %d pairs, want %d", label, len(gs), len(ws))
		return
	}
	for i := range gs {
		if math.Abs(gs[i]-ws[i]) > 1e-9 {
			t.Errorf("%s: score[%d] = %.12f, want %.12f", label, i, gs[i], ws[i])
			return
		}
	}
	if len(ws) == 0 {
		return
	}
	boundary := ws[len(ws)-1]
	wantSet := map[int64]bool{}
	for _, p := range want.Pairs {
		if p.Score > boundary+1e-9 {
			wantSet[pairKey(p.A, p.B)] = true
		}
	}
	gotSet := map[int64]bool{}
	for _, p := range got.Pairs {
		gotSet[pairKey(p.A, p.B)] = true
	}
	for k := range wantSet {
		if !gotSet[k] {
			t.Errorf("%s: missing above-boundary pair %d", label, k)
			return
		}
	}
}

// TestQJoinMatchesBruteForce is the core correctness property: for every
// q, measure, and k, QJoin's output equals the exact top-k over A×B−C.
func TestQJoinMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cor, res, c := randomCorpus(t, rng, 30, 40)
		for _, mask := range res.Configs() {
			for _, m := range []simfunc.SetMeasure{simfunc.Jaccard, simfunc.Cosine, simfunc.Dice} {
				for _, k := range []int{5, 25} {
					want := BruteForce(cor, mask, c, k, m)
					for q := 1; q <= 4; q++ {
						got := JoinOne(cor, mask, c, Options{K: k, Q: q, Measure: m})
						sameTopK(t, fmt.Sprintf("seed=%d mask=%b m=%v k=%d q=%d", seed, mask, m, k, q), got, want)
					}
				}
			}
		}
	}
}

// TestJoinAllMatchesIndividual is Theorem 4.2: the joint executor's lists
// equal the per-config QJoin outputs, with reuse on and off, serial and
// parallel.
func TestJoinAllMatchesIndividual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cor, res, c := randomCorpus(t, rng, 40, 40)
	variants := []Options{
		{K: 20, Q: 2},
		{K: 20, Q: 2, Workers: 4},
		{K: 20, Q: 2, DisableScoreReuse: true},
		{K: 20, Q: 2, DisableListReuse: true},
		{K: 20, Q: 2, ReuseMinAvgTokens: 1}, // force reuse on despite short tuples
		{K: 20, Q: 1, ReuseMinAvgTokens: 1, Workers: 3},
	}
	for vi, opt := range variants {
		jr := JoinAll(cor, c, opt)
		if len(jr.Lists) != len(res.Configs()) {
			t.Fatalf("variant %d: %d lists, want %d", vi, len(jr.Lists), len(res.Configs()))
		}
		for li, list := range jr.Lists {
			want := BruteForce(cor, list.Config, c, opt.K, opt.Measure)
			sameTopK(t, fmt.Sprintf("variant=%d list=%d mask=%b", vi, li, list.Config), list, want)
		}
	}
}

func TestJoinAllReuseGate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cor, _, c := randomCorpus(t, rng, 20, 20)
	// Short tuples: default gate (20 tokens) keeps reuse off.
	jr := JoinAll(cor, c, Options{K: 10, Q: 2})
	if jr.Stats.ReuseActive {
		t.Error("reuse should be gated off for short tuples")
	}
	if jr.Stats.ReusedScores != 0 {
		t.Error("no reused scores expected with gate off")
	}
	// Forcing the gate low activates reuse and some scores come from H.
	jr2 := JoinAll(cor, c, Options{K: 10, Q: 2, ReuseMinAvgTokens: 1})
	if !jr2.Stats.ReuseActive {
		t.Fatal("reuse should be active")
	}
	if jr2.Stats.ReusedScores == 0 {
		t.Error("expected some scores answered from the overlap DB")
	}
}

func TestSelectQReturnsValidQ(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cor, res, c := randomCorpus(t, rng, 25, 25)
	q := SelectQ(cor, res.Root.Mask, c, Options{})
	if q < 1 || q > 4 {
		t.Errorf("SelectQ = %d", q)
	}
	jr := JoinAll(cor, c, Options{K: 10, Q: AutoQ})
	if jr.Stats.QUsed < 1 || jr.Stats.QUsed > 4 {
		t.Errorf("QUsed = %d", jr.Stats.QUsed)
	}
}

func TestEmptyAndMissingValues(t *testing.T) {
	cor, res := corpusFor(t, []string{"v"},
		[][]string{{""}, {"a b"}},
		[][]string{{"a b"}, {""}},
	)
	list := JoinOne(cor, res.Root.Mask, nil, Options{K: 5, Q: 1})
	if len(list.Pairs) != 1 {
		t.Fatalf("pairs = %+v", list.Pairs)
	}
	if list.Pairs[0].A != 1 || list.Pairs[0].B != 0 || list.Pairs[0].Score != 1 {
		t.Errorf("pair = %+v", list.Pairs[0])
	}
}

func TestTopkHeapOrderingAndTies(t *testing.T) {
	h := newTopkHeap(3)
	h.offer(ScoredPair{A: 1, B: 1, Score: 0.5})
	h.offer(ScoredPair{A: 2, B: 2, Score: 0.9})
	h.offer(ScoredPair{A: 3, B: 3, Score: 0.7})
	if h.kthScore() != 0.5 {
		t.Errorf("kth = %g", h.kthScore())
	}
	h.offer(ScoredPair{A: 4, B: 4, Score: 0.6})
	l := h.list(0)
	if len(l.Pairs) != 3 || l.Pairs[0].Score != 0.9 || l.Pairs[2].Score != 0.6 {
		t.Errorf("list = %+v", l.Pairs)
	}
	// Zero scores are never retained.
	h2 := newTopkHeap(2)
	h2.offer(ScoredPair{A: 1, B: 1, Score: 0})
	if h2.Len() != 0 {
		t.Error("zero-score pair retained")
	}
}

func TestListReuseSeedsDoNotCorrupt(t *testing.T) {
	// Run the joint executor many times with different worker counts; the
	// per-config score sequences must be identical every time.
	rng := rand.New(rand.NewSource(17))
	cor, _, c := randomCorpus(t, rng, 30, 30)
	ref := JoinAll(cor, c, Options{K: 15, Q: 2, Workers: 1})
	for trial := 0; trial < 4; trial++ {
		got := JoinAll(cor, c, Options{K: 15, Q: 2, Workers: 1 + trial})
		for i := range ref.Lists {
			rs, gs := scoresOf(ref.Lists[i]), scoresOf(got.Lists[i])
			if len(rs) != len(gs) {
				t.Fatalf("trial %d list %d: len %d vs %d", trial, i, len(gs), len(rs))
			}
			for j := range rs {
				if math.Abs(rs[j]-gs[j]) > 1e-9 {
					t.Fatalf("trial %d list %d score %d: %g vs %g", trial, i, j, gs[j], rs[j])
				}
			}
		}
	}
}

func TestCorpusAvgTokens(t *testing.T) {
	cor, _ := corpusFor(t, []string{"v"},
		[][]string{{"a b c d"}},
		[][]string{{"e f"}},
	)
	if math.Abs(cor.AvgTokens-3) > 1e-12 {
		t.Errorf("AvgTokens = %g, want 3", cor.AvgTokens)
	}
	if cor.NumA() != 1 || cor.NumB() != 1 {
		t.Error("sizes wrong")
	}
}

func TestGlobalOrderIsRareFirst(t *testing.T) {
	// "common" appears in every tuple; "rare" once. The rare token must
	// sort before the common one in every record's entry list.
	cor, _ := corpusFor(t, []string{"v"},
		[][]string{{"common rare"}, {"common x1"}, {"common x2"}},
		[][]string{{"common y1"}, {"common y2"}},
	)
	r := cor.recsA[0]
	if len(r.entries) != 2 {
		t.Fatalf("entries = %d", len(r.entries))
	}
	if !sort.SliceIsSorted(r.entries, func(i, j int) bool { return r.entries[i].tok < r.entries[j].tok }) {
		t.Error("entries not sorted by rank")
	}
	// The last entry (highest rank = most frequent) must be "common",
	// i.e. the token shared with every other record. Verify via overlap:
	// dropping the last entry should kill overlap with A[1].
	full := config.Mask(1)
	o, _ := overlapUnder(&cor.recsA[0], &cor.recsA[1], full, false)
	if o != 1 {
		t.Fatalf("overlap = %d", o)
	}
}
