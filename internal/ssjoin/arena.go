package ssjoin

// Flat-arena buffers for the map-free probe path (DESIGN.md "Flat-arena
// join kernel"). The QJoin probe loop used to route every candidate
// through two hash maps — map[int64]*postings posting-list lookups and a
// map[int64]int32 pair-state table — which dominated the join's cache
// misses and allocation once the heaps were de-boxed. This file holds
// the replacement substrate:
//
//   - denseInstances: token instances remapped from sparse int64 keys
//     (tok<<4|occ) to dense int32 ids, once per config, so every
//     per-instance table downstream is a plain slice indexed by id.
//   - flatProbe: the pooled per-shard buffer block — posting-list arena
//     (one contiguous postEntry slab per side plus per-id offset/fill
//     tables), dense epoch-stamped pair states, event-heap and position
//     scratch — reused across probes and configs through probePool with
//     no clearing of the pair-state table (the epoch stamp makes stale
//     entries invisible).
//
// Sizing (ensure/grow) and the arena count pass allocate; they run in
// the index phase of each probe. The probe loop itself only indexes
// into these buffers — see join_flat.go for the //mc:hotpath methods.

import (
	"sync"
	"sync/atomic"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/telemetry"
)

// denseInstances is one config's token-instance lists remapped to dense
// int32 ids (0..n-1, first-occurrence order over A's records then B's).
// The remap is a pure function of (corpus, mask), so every shard of a
// sharded probe shares one denseInstances read-only.
type denseInstances struct {
	a, b [][]int32
	n    int // distinct instance count
}

// buildDenseInstances remaps the int64 instance keys produced by
// tokenizeInstances to dense int32 ids. It runs once per config join, in
// the index phase: the map lives and dies here so the probe loop that
// follows never touches one. Ids are assigned in first-occurrence order
// scanning A's records then B's, each list front to back — deterministic
// for a fixed corpus and mask.
func buildDenseInstances(instA, instB [][]int64) denseInstances {
	total := 0
	for _, l := range instA {
		total += len(l)
	}
	for _, l := range instB {
		total += len(l)
	}
	ids := make(map[int64]int32, total)
	backing := make([]int32, total)
	remap := func(lists [][]int64) [][]int32 {
		out := make([][]int32, len(lists))
		for i, l := range lists {
			dst := backing[:len(l):len(l)]
			backing = backing[len(l):]
			for j, key := range l {
				id, ok := ids[key]
				if !ok {
					id = int32(len(ids))
					ids[key] = id
				}
				dst[j] = id
			}
			out[i] = dst
		}
		return out
	}
	a := remap(instA)
	b := remap(instB)
	return denseInstances{a: a, b: b, n: len(ids)}
}

// postEntry is one posting-list entry: a record plus the prefix position
// at which it popped the instance. The position feeds the positional
// prefix filter — token instances are globally rank-sorted in every
// record, so a pair first meeting at positions (i, j) shares at most
// 1 + min(lxRem, lyRem) instances (see flatProbe.touch).
type postEntry struct {
	rec, pos int32
}

// Candidate pair-state sentinels shared by both probe paths: non-negative
// values count common prefix instances; the sentinels mark pairs already
// scored, present in C, or killed by a strict pair filter. Untyped so
// they fit both the legacy map's int32 states and the arena's packed
// int8 states.
const (
	pairScored     = -1
	pairSuppressed = -2
	pairKilled     = -3
)

// Strict pair-filter tiers (Progress / Stats vocabulary).
const (
	tierLengthFilter int8 = iota
	tierPrefixPos
)

// filterKillHook, when non-nil, observes every pair killed by a strict
// pair filter. Test instrumentation only (the filter property tests
// replay killed pairs against the brute-force oracle); production runs
// pay one nil check per kill.
var filterKillHook func(a, b int32, tier int8)

// Probe-path selection. probeAuto picks the flat arena kernel unless the
// config's full pair space exceeds denseStateLimit (the dense pair-state
// table is the one structure that scales with |A|×|B| rather than with
// work done, so huge corpora keep the paper's flat-memory map path).
// The force values are the temporary build seam the differential harness
// flips to prove the two kernels compute the identical pure function.
const (
	probeAuto = iota
	probeForceFlat
	probeForceLegacy
)

// probePathOverride is written only by tests, between runs.
var probePathOverride = probeAuto

// denseStateLimit bounds the dense pair-state table: a config whose full
// pair space (sharded-side length × other-side length) exceeds this many
// pairs probes through the legacy map kernel instead. At one packed byte
// per pair, 32Mi pairs keep the table at 32 MiB for the whole config
// regardless of shard count (the per-shard tables tile the pair space) —
// small enough to stay largely cache-resident, which is what makes the
// flat path win. The perf-gate M2 workload (25M pairs at scale 0.1)
// fits; the paper's full-scale corpora (billions of pairs) stay on the
// flat-memory map kernel. Var, not const: the differential tests shrink
// it to drive both kernels over the same corpora.
var denseStateLimit = 32 << 20

// flatProbeMaxQ bounds q on the flat path: packed states count common
// prefix instances in four bits (three sentinels plus counts up to 12),
// so runs deferring more than 12 common instances per pair fall back to
// the map kernel (q beyond the auto-selection range is a hand-tuned
// corner, not the hot path).
const flatProbeMaxQ = 12

// useFlatProbe decides the kernel for one config join.
func useFlatProbe(sideLen, otherLen, q int) bool {
	switch probePathOverride {
	case probeForceFlat:
		return true
	case probeForceLegacy:
		return false
	}
	if q > flatProbeMaxQ {
		return false
	}
	if sideLen == 0 || otherLen == 0 {
		return true
	}
	return sideLen <= denseStateLimit/otherLen
}

// flatProbe is one shard's map-free probe state: every lookup the event
// loop performs is a slice index. The struct doubles as the pooled
// scratch block — ensure() grows the buffers to the probe's sizes and
// resets per-probe state, and release() drops the per-probe references
// (corpus lists, scorer, heaps) while keeping the buffers and the pair
// epoch for the next probe.
type flatProbe struct {
	// Per-probe wiring (cleared on release).
	q       int
	m       simfunc.SetMeasure
	c       *blocker.PairSet
	score   scorer
	rs      *runStats
	top     *topkHeap
	cur     progCursor
	cancel  *atomic.Bool
	mergeCh <-chan []ScoredPair
	span    *telemetry.TraceSpan
	idsA    [][]int32
	idsB    [][]int32

	// Shard geometry: the sharded side's records are dealt round-robin
	// (rec mod div == shard owns it); rowOff maps an owned sharded-side
	// record to its dense pair-state row base (local index × otherLen).
	side     int8
	shard    int32
	div      int32
	otherLen int32

	// Pooled buffers (kept across probes). touched records the pair-state
	// index of every pair that reached a positive common-instance count,
	// so the exactness flush can visit candidates directly instead of
	// scanning the whole pair space when few pairs were touched (sorted
	// ascending, the list reproduces the dense scan order exactly).
	posA, posB   []int32
	rowOff       []int32
	touched      []int32
	events       eventHeap
	offA, fillA  []int32
	offB, fillB  []int32
	slabA, slabB []postEntry

	// Dense pair state, one packed byte per pair: the high nibble is the
	// epoch stamp, the low nibble a signed state (common-instance count
	// or a pair* sentinel, offset-encoded). One byte per pair keeps the
	// whole table cache-resident for the corpora the flat path accepts —
	// the probe loop's one random load per touch is the kernel's
	// bottleneck. An entry is meaningful only while its stamp equals
	// epoch, so reuse across probes never clears the table — resetPairs
	// bumps the epoch and every stale entry reads as unseen. A nibble of
	// epoch means a real wraparound every 15 probes; the wrap path
	// (clear + restart at 1) is therefore exercised constantly, not just
	// in the white-box test.
	pairs []uint8
	epoch uint8
}

// probePool recycles flatProbe buffer blocks across probes and configs
// (the zero-alloc hot-loop discipline of the ssdeep-style kernels):
// steady-state joins of similar size never reallocate position arrays,
// arena tables, slabs, or pair-state tables.
var probePool = sync.Pool{New: func() any { return &flatProbe{} }}

func getFlatProbe() *flatProbe  { return probePool.Get().(*flatProbe) }
func putFlatProbe(p *flatProbe) { p.release(); probePool.Put(p) }

// release drops everything probe-specific so the pool never pins a
// corpus, scorer, or result heap. Buffers and the pair epoch survive.
func (p *flatProbe) release() {
	p.c = nil
	p.score = nil
	p.rs = nil
	p.top = nil
	p.cur = progCursor{}
	p.cancel = nil
	p.mergeCh = nil
	p.span = nil
	p.idsA = nil
	p.idsB = nil
}

// growInt32 returns s resized to n, reusing capacity when it suffices.
// Contents are unspecified — callers clear or overwrite what they read.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growEntries(s []postEntry, n int) []postEntry {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]postEntry, n)
}

// resetPairs prepares the dense pair-state table for a probe over
// pairSpace pairs. The normal path is O(1): bump the epoch so every
// stale entry reads as unseen. Growth and epoch wraparound are the two
// slow paths that must re-zero the table — the classic dense-reset bug
// is forgetting one of them (TestEpochReset pins both). A fresh table is
// all zeros, which no live entry ever aliases because the epoch restarts
// at 1, never 0.
func (p *flatProbe) resetPairs(pairSpace int) {
	if cap(p.pairs) < pairSpace {
		p.pairs = make([]uint8, pairSpace)
		p.epoch = 1
		return
	}
	p.pairs = p.pairs[:pairSpace]
	p.epoch++
	if p.epoch == 16 { // nibble wraparound: stale stamps would alias epoch 0
		clear(p.pairs[:cap(p.pairs)])
		p.epoch = 1
	}
}

// pairPack encodes an epoch stamp and a signed state into one table
// byte: epoch in the high nibble, state offset by pairKilled (the most
// negative sentinel) in the low nibble, so states span -3..12. A zero
// byte decodes to epoch 0, which is never current — fresh tables need no
// initialization beyond the runtime's zeroing. pairState decodes the
// state half (callers compare the stamp half against the current epoch
// themselves).
func pairPack(ep uint8, st int8) uint8 { return ep<<4 | uint8(st-pairKilled) }
func pairState(v uint8) int8           { return int8(v&15) + pairKilled }
func pairEpoch(v uint8) uint8          { return v >> 4 }
