package ssjoin

import (
	"fmt"
	"math"
	"testing"
)

// decodeMergeInput turns raw fuzz bytes into a merge-test instance: a k, a
// shard count, and a pair multiset. Scores are small rationals (i/8), so
// exact float64 ties — the case that historically flipped with scheduling —
// occur constantly rather than almost never. Duplicate (A, B) keys are kept
// on purpose: offer's retention is a pure function of the offered multiset,
// and the shard partition routes duplicates of a pair to the same shard, so
// the merge must absorb them identically to the serial path.
func decodeMergeInput(data []byte) (k, shards int, pairs []ScoredPair) {
	if len(data) < 2 {
		return 1, 1, nil
	}
	k = int(data[0]%32) + 1
	shards = int(data[1]%8) + 1
	data = data[2:]
	for i := 0; i+2 < len(data); i += 3 {
		pairs = append(pairs, ScoredPair{
			A:     int32(data[i] % 16),
			B:     int32(data[i+1] % 16),
			Score: float64(data[i+2]%9) / 8,
		})
	}
	return k, shards, pairs
}

// FuzzMergeTopK is the differential fuzz target for the shard-heap merge:
// for any pair multiset, partitioning by A-record, building per-shard
// bounded heaps, and merging through mergeTopK must reproduce — bit for bit
// — the heap produced by serially offering every pair. This is the exact
// algebraic property the sharded probe path stands on (per-shard top-k of a
// disjoint partition, merged under the same total order, equals the global
// top-k), minimized to the data structure so the fuzzer can hammer the tie
// and boundary cases directly.
func FuzzMergeTopK(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{4, 2, 1, 2, 8, 3, 4, 8, 5, 6, 8})          // exact ties at the boundary
	f.Add([]byte{0, 7, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4}) // k=1, 8 shards
	f.Add([]byte{31, 3, 9, 9, 0, 1, 1, 0})                  // zero scores (rejected by offer)
	f.Add([]byte{15, 4, 1, 2, 8, 1, 2, 8, 1, 2, 8})         // duplicate pairs
	f.Fuzz(func(t *testing.T, data []byte) {
		k, shards, pairs := decodeMergeInput(data)

		serial := newTopkHeap(k)
		for _, p := range pairs {
			serial.offer(p)
		}

		lists := make([][]ScoredPair, shards)
		for s := 0; s < shards; s++ {
			h := newTopkHeap(k)
			for _, p := range pairs {
				if int(p.A)%shards == s {
					h.offer(p)
				}
			}
			lists[s] = h.items
		}
		merged := mergeTopK(k, lists...)

		got, want := merged.list(0), serial.list(0)
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("k=%d shards=%d: merged %d pairs, serial %d",
				k, shards, len(got.Pairs), len(want.Pairs))
		}
		for i := range got.Pairs {
			g, w := got.Pairs[i], want.Pairs[i]
			if g.A != w.A || g.B != w.B || math.Float64bits(g.Score) != math.Float64bits(w.Score) {
				t.Fatalf("k=%d shards=%d: pair[%d] = %s, want %s",
					k, shards, i, fmtPair(g), fmtPair(w))
			}
		}
	})
}

func fmtPair(p ScoredPair) string {
	return fmt.Sprintf("(%d,%d,%x)", p.A, p.B, math.Float64bits(p.Score))
}
