package ssjoin

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"matchcatcher/internal/simfunc"
)

// TestMergeChannelAbsorbsParentList drives runJoin directly with a primed
// merge channel, the path a child takes when its parent config finishes
// mid-run (Section 4.2's "merge the parent's list when it arrives").
func TestMergeChannelAbsorbsParentList(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cor, res, c := randomCorpus(t, rng, 30, 30)
	mask := res.Root.Mask
	score := makeScorer(cor, mask, nil, nil, simfunc.Jaccard)

	// The "parent list" here is just the true top-k itself; absorbing it
	// must not corrupt the result (rescoring + dedup are exercised).
	parent := BruteForce(cor, mask, c, 10, simfunc.Jaccard)
	ch := make(chan []ScoredPair, 1)
	ch <- parent.Pairs

	got := runJoin(cor, mask, runOpts{
		k: 10, q: 2, m: simfunc.Jaccard, c: c,
		score:   score,
		mergeCh: ch,
	})
	want := BruteForce(cor, mask, c, 10, simfunc.Jaccard)
	gs, ws := scoresOf(got), scoresOf(want)
	if len(gs) != len(ws) {
		t.Fatalf("len %d vs %d", len(gs), len(ws))
	}
	for i := range gs {
		if math.Abs(gs[i]-ws[i]) > 1e-9 {
			t.Fatalf("score[%d] = %g, want %g", i, gs[i], ws[i])
		}
	}
}

// TestSeedsIdenticalToMerge: seeding up front and merging mid-run must
// produce the same score sequence.
func TestSeedsIdenticalToMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cor, res, c := randomCorpus(t, rng, 25, 25)
	mask := res.Root.Mask
	parent := BruteForce(cor, mask, c, 8, simfunc.Jaccard)

	seeded := runJoin(cor, mask, runOpts{
		k: 8, q: 2, m: simfunc.Jaccard, c: c,
		score: makeScorer(cor, mask, nil, nil, simfunc.Jaccard),
		seeds: parent.Pairs,
	})
	ch := make(chan []ScoredPair, 1)
	ch <- parent.Pairs
	merged := runJoin(cor, mask, runOpts{
		k: 8, q: 2, m: simfunc.Jaccard, c: c,
		score:   makeScorer(cor, mask, nil, nil, simfunc.Jaccard),
		mergeCh: ch,
	})
	ss, ms := scoresOf(seeded), scoresOf(merged)
	if len(ss) != len(ms) {
		t.Fatalf("len %d vs %d", len(ss), len(ms))
	}
	for i := range ss {
		if math.Abs(ss[i]-ms[i]) > 1e-9 {
			t.Fatalf("score[%d]: seeded %g merged %g", i, ss[i], ms[i])
		}
	}
}

// TestCancelStopsRun: the q-selection race relies on cancellation.
func TestCancelStopsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cor, res, c := randomCorpus(t, rng, 40, 40)
	opts := runOpts{
		k: 20, q: 2, m: simfunc.Jaccard, c: c,
		score: makeScorer(cor, res.Root.Mask, nil, nil, simfunc.Jaccard),
	}
	var cancel atomic.Bool
	cancel.Store(true)
	opts.cancel = &cancel
	got := runJoin(cor, res.Root.Mask, opts)
	// A cancelled run returns early with whatever it has; it must not
	// panic and must return a valid (possibly short) list.
	if len(got.Pairs) > 20 {
		t.Errorf("cancelled run returned %d pairs", len(got.Pairs))
	}
}

// TestHDBCap: the overlap database stops growing at its cap but keeps
// answering stored pairs.
func TestHDBCap(t *testing.T) {
	h := newHDB()
	h.put(1, []maskPair{packMasks(1, 1)})
	if v, ok := h.get(1); !ok || len(v) != 1 {
		t.Fatal("stored pair not retrievable")
	}
	if _, ok := h.get(2); ok {
		t.Fatal("phantom pair")
	}
	// Duplicate puts do not overwrite.
	h.put(1, nil)
	if v, ok := h.get(1); !ok || len(v) != 1 {
		t.Error("duplicate put overwrote entry")
	}
}
