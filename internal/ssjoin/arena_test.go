package ssjoin

// The flat-arena kernel's differential and white-box harness. The
// kernel seam (probePathOverride) is the load-bearing test surface: the
// flat-arena and legacy map kernels must compute the identical pure
// function — same top-k bytes AND same runStats counter stream — so the
// harness byte-compares both across kernel × pool-state × worker grids,
// with BruteForce as the filter-free third oracle (the legacy kernel
// carries the same strict pair filters, so only brute force proves the
// filters themselves sound end to end). The white-box half pins the
// dense pair-state machinery directly: epoch-stamped reset (growth,
// bump, nibble wraparound), poisoned pool reuse, and the zero-alloc
// probe path.

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"matchcatcher/internal/simfunc"
)

// forceProbePath pins the kernel seam for one test and restores it on
// cleanup. Tests in this package run sequentially, so the package-level
// override is safe to flip here.
func forceProbePath(t *testing.T, mode int) {
	t.Helper()
	prev := probePathOverride
	probePathOverride = mode
	t.Cleanup(func() { probePathOverride = prev })
}

// TestKernelSeamDifferential is the core arena-axis oracle: over a
// seeds × configs × q × k grid, the flat-arena kernel, the legacy map
// kernel, and BruteForce must return bit-identical lists. Brute force
// is the essential third leg — both kernels implement the strict pair
// filters, so only a filter-free oracle can prove the filters never
// drop a retained pair.
func TestKernelSeamDifferential(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		cor, res, c := randomCorpus(t, rng, 35, 30)
		for _, mask := range res.Configs() {
			for _, q := range []int{1, 2, 3} {
				for _, k := range []int{5, 20} {
					label := fmt.Sprintf("seed=%d mask=%b q=%d k=%d", seed, mask, q, k)
					want := BruteForce(cor, mask, c, k, simfunc.Jaccard)
					forceProbePath(t, probeForceLegacy)
					legacy := JoinOne(cor, mask, c, Options{K: k, Q: q})
					forceProbePath(t, probeForceFlat)
					flat := JoinOne(cor, mask, c, Options{K: k, Q: q})
					requireIdentical(t, label+" legacy vs brute", legacy, want)
					requireIdentical(t, label+" flat vs legacy", flat, legacy)
				}
			}
		}
	}
}

// TestKernelSeamStatsIdentical extends the differential to the counter
// stream: canonical reports embed the ssjoin.Stats counters, so the two
// kernels must agree on every count, not just on the lists. Checked
// end to end through JoinAll across the Workers × ProbeWorkers grid
// (sharded probes fold per-shard stats; the kernels must agree shard by
// shard for the folded totals to match).
func TestKernelSeamStatsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cor, _, c := randomCorpus(t, rng, 32, 28)
	run := func(mode, w, pw int) ([]TopKList, Stats) {
		forceProbePath(t, mode)
		res := JoinAll(cor, c, Options{K: 12, Q: 2, Workers: w, ProbeWorkers: pw})
		return res.Lists, res.Stats
	}
	for _, w := range []int{1, 3} {
		for _, pw := range []int{1, 4} {
			label := fmt.Sprintf("workers=%d probeworkers=%d", w, pw)
			legacyLists, legacyStats := run(probeForceLegacy, w, pw)
			flatLists, flatStats := run(probeForceFlat, w, pw)
			requireIdenticalLists(t, label, flatLists, legacyLists)
			if !reflect.DeepEqual(flatStats, legacyStats) {
				t.Errorf("%s: counter streams diverge across the kernel seam:\nflat:   %+v\nlegacy: %+v",
					label, flatStats, legacyStats)
			}
		}
	}
}

// TestPoolReusePoisonInvisible proves pooled probe reuse cannot leak
// state between probes: the pool is pre-seeded with probes whose
// buffers hold adversarial garbage — pair-state bytes stamped at every
// nibble epoch (including the probe's next epoch), stale slabs, stale
// heaps — and the join must still match the cold-pool reference bit for
// bit. This is the "pool warm vs cold" axis in its strongest form.
func TestPoolReusePoisonInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	cor, res, c := randomCorpus(t, rng, 30, 30)
	mask := res.Root.Mask
	forceProbePath(t, probeForceFlat)
	ref := JoinOne(cor, mask, c, Options{K: 10, Q: 2})

	for trial := 0; trial < 4; trial++ {
		for i := 0; i < 3; i++ {
			p := &flatProbe{}
			p.resetPairs(64 * 1024)
			p.epoch = uint8(1 + rng.Intn(15))
			// Stamps stay <= the probe's epoch: that is the table's
			// invariant (a stamp equal to a FUTURE epoch is unreachable —
			// the bump strictly outruns every written stamp and the
			// wraparound clears), and it is exactly what the next wire()'s
			// epoch bump must render invisible.
			for j := range p.pairs {
				p.pairs[j] = pairPack(uint8(rng.Intn(int(p.epoch)+1)), int8(rng.Intn(16)+pairKilled))
			}
			p.events.items = append(p.events.items, event{cap: 9, side: 0, rec: 7})
			p.slabA = append(p.slabA, postEntry{rec: 3, pos: 3})
			p.touched = append(p.touched, 11, 7, 5)
			p.posA = append(p.posA, 42)
			probePool.Put(p)
		}
		got := JoinOne(cor, mask, c, Options{K: 10, Q: 2})
		requireIdentical(t, fmt.Sprintf("poisoned pool trial %d", trial), got, ref)
	}
}

// TestRowPermutationMetamorphic: permuting the rows of both tables
// permutes record ids but cannot change the retained score multiset
// (the top-k boundary may swap which equal-scoring pairs it keeps — ids
// break those ties — so the pair sets are compared only above the
// boundary, via the score multiset invariant plus the permutation map
// on strictly-retained pairs).
func TestRowPermutationMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	words := []string{"ka", "ri", "ton", "mel", "sor", "vin", "da", "lo"}
	row := func() []string {
		n := 1 + rng.Intn(5)
		var s string
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return []string{s}
	}
	var rowsA, rowsB [][]string
	for i := 0; i < 25; i++ {
		rowsA = append(rowsA, row())
	}
	for i := 0; i < 25; i++ {
		rowsB = append(rowsB, row())
	}
	cor, res := corpusFor(t, []string{"v"}, rowsA, rowsB)
	mask := res.Root.Mask
	forceProbePath(t, probeForceFlat)
	const k = 10
	ref := JoinOne(cor, mask, nil, Options{K: k, Q: 2})

	for trial := 0; trial < 3; trial++ {
		permA := rng.Perm(len(rowsA))
		permB := rng.Perm(len(rowsB))
		pRowsA := make([][]string, len(rowsA))
		pRowsB := make([][]string, len(rowsB))
		for i, j := range permA {
			pRowsA[j] = rowsA[i]
		}
		for i, j := range permB {
			pRowsB[j] = rowsB[i]
		}
		pCor, pRes := corpusFor(t, []string{"v"}, pRowsA, pRowsB)
		got := JoinOne(pCor, pRes.Root.Mask, nil, Options{K: k, Q: 2})

		refScores, gotScores := scoresOf(ref), scoresOf(got)
		slices.Sort(refScores)
		slices.Sort(gotScores)
		if !reflect.DeepEqual(refScores, gotScores) {
			t.Fatalf("trial %d: score multiset changed under row permutation:\n%v\n%v",
				trial, refScores, gotScores)
		}
		// Strictly above the boundary the retained pairs are unique, so
		// they must map exactly through the permutation.
		boundary := ref.Pairs[len(ref.Pairs)-1].Score
		want := map[int64]bool{}
		for _, p := range ref.Pairs {
			if p.Score > boundary {
				want[pairKey(int32(permA[p.A]), int32(permB[p.B]))] = true
			}
		}
		for _, p := range got.Pairs {
			if p.Score > boundary && !want[pairKey(p.A, p.B)] {
				t.Fatalf("trial %d: pair (%d,%d) above the tie boundary has no preimage", trial, p.A, p.B)
			}
		}
	}
}

// TestFilterKillsStrictlyBelowKth is the filter property test: every
// pair killed by a strict pair filter must (a) score strictly below the
// final k-th score — the kill compared against a running k-th bound
// that only rises, so a violation here means a filter was not strict —
// and (b) never appear in the final list. Scores come from the
// brute-force oracle over the full pair space.
func TestFilterKillsStrictlyBelowKth(t *testing.T) {
	type kill struct {
		a, b int32
		tier int8
	}
	var kills []kill
	filterKillHook = func(a, b int32, tier int8) {
		kills = append(kills, kill{a, b, tier})
	}
	t.Cleanup(func() { filterKillHook = nil })
	forceProbePath(t, probeForceFlat)

	tierTotals := map[int8]int{}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		cor, res, c := randomCorpus(t, rng, 35, 35)
		for _, mask := range res.Configs() {
			for _, k := range []int{3, 8} {
				kills = kills[:0]
				got := JoinOne(cor, mask, c, Options{K: k, Q: 2})
				if len(got.Pairs) < k || len(kills) == 0 {
					continue
				}
				kth := got.Pairs[k-1].Score
				all := BruteForce(cor, mask, c, 1<<20, simfunc.Jaccard)
				scores := make(map[int64]float64, len(all.Pairs))
				for _, p := range all.Pairs {
					scores[pairKey(p.A, p.B)] = p.Score
				}
				retained := make(map[int64]bool, len(got.Pairs))
				for _, p := range got.Pairs {
					retained[pairKey(p.A, p.B)] = true
				}
				for _, kl := range kills {
					tierTotals[kl.tier]++
					if retained[pairKey(kl.a, kl.b)] {
						t.Fatalf("seed=%d mask=%b k=%d: killed pair (%d,%d) retained",
							seed, mask, k, kl.a, kl.b)
					}
					// Absent from the brute list means the exact score is 0.
					if s := scores[pairKey(kl.a, kl.b)]; s >= kth {
						t.Fatalf("seed=%d mask=%b k=%d tier=%d: killed pair (%d,%d) scores %v >= kth %v",
							seed, mask, k, kl.tier, kl.a, kl.b, s, kth)
					}
				}
			}
		}
	}
	if tierTotals[tierLengthFilter] == 0 {
		t.Error("length filter never fired across the property grid")
	}
	if tierTotals[tierPrefixPos] == 0 {
		t.Error("positional prefix filter never fired across the property grid")
	}
}

// TestPrefixFilterKillsCraftedPair pins the positional filter on a
// constructed corpus where the only shared token of a long pair sits at
// the tail of both prefix orders: the pair must be killed by the
// prefix_pos tier specifically (the length filter cannot — the records
// have equal lengths, so the length bound is 1.0).
func TestPrefixFilterKillsCraftedPair(t *testing.T) {
	var tiers []int8
	filterKillHook = func(a, b int32, tier int8) { tiers = append(tiers, tier) }
	t.Cleanup(func() { filterKillHook = nil })
	forceProbePath(t, probeForceFlat)

	// Pair (A0, B0) scores 2/4 = 0.5 and fills the k=1 list. A1 and B1
	// (12 tokens each) share cc plus the f-fillers; their rank orders put
	// six unique tokens (rarer than cc) first, then cc at position 6 —
	// cap exactly (12-6)/12 = 0.5, which survives the strict push-cap
	// prune as a tie — then the f-fillers (more frequent, so
	// prefix-later; their extensions cap below 0.5 and die at push). At
	// the touch, the length bound is FromOverlap(12,12,12) = 1.0 (equal
	// lengths — the length filter cannot fire), but the positional bound
	// is FromOverlap(1+min(5,5),12,12) = 6/18 < 0.5: only the prefix_pos
	// tier can kill it.
	cor, res := corpusFor(t, []string{"v"},
		[][]string{
			{"m n"},
			{"g1 g2 g3 g4 g5 g6 cc f1 f2 f3 f4 f5"},
			{"f1 f2 f3 f4 f5"},
			{"f1 f2 f3 f4 f5"},
		},
		[][]string{
			{"o p m n"},
			{"h1 h2 h3 h4 h5 h6 cc f1 f2 f3 f4 f5"},
		})
	got := JoinOne(cor, res.Root.Mask, nil, Options{K: 1, Q: 1})
	if len(got.Pairs) != 1 || got.Pairs[0].A != 0 || got.Pairs[0].B != 0 || got.Pairs[0].Score != 0.5 {
		t.Fatalf("expected (A0,B0)=0.5 to win: %+v", got.Pairs)
	}
	if !slices.Contains(tiers, tierPrefixPos) {
		t.Errorf("positional prefix filter did not fire; tiers seen: %v", tiers)
	}
	want := BruteForce(cor, res.Root.Mask, nil, 1, simfunc.Jaccard)
	requireIdentical(t, "crafted corpus vs brute force", got, want)
}

// TestEpochReset white-boxes resetPairs across its three paths: growth
// (fresh zeroed table, epoch restarts at 1), the O(1) bump (stale
// entries become invisible without a clear), and the nibble wraparound
// (the table must be cleared or epoch-1 garbage would alias as live).
func TestEpochReset(t *testing.T) {
	p := &flatProbe{}
	p.resetPairs(100)
	if p.epoch != 1 || len(p.pairs) != 100 {
		t.Fatalf("growth path: epoch=%d len=%d", p.epoch, len(p.pairs))
	}
	p.pairs[7] = pairPack(p.epoch, 3)
	p.pairs[8] = pairPack(p.epoch, pairSuppressed)

	p.resetPairs(100)
	if p.epoch != 2 {
		t.Fatalf("bump path: epoch=%d", p.epoch)
	}
	for _, i := range []int{7, 8} {
		if pairEpoch(p.pairs[i]) == p.epoch {
			t.Fatalf("stale entry %d reads as live after epoch bump", i)
		}
	}
	p.pairs[7] = pairPack(p.epoch, 5)
	if pairState(p.pairs[7]) != 5 || pairEpoch(p.pairs[7]) != 2 {
		t.Fatalf("roundtrip: state=%d epoch=%d", pairState(p.pairs[7]), pairEpoch(p.pairs[7]))
	}

	// Drive to the wraparound: epochs 3..15, then the 16th reset wraps.
	for p.epoch < 15 {
		p.pairs[9] = pairPack(p.epoch, 1) // garbage at every epoch
		p.resetPairs(100)
	}
	if p.epoch != 15 {
		t.Fatalf("pre-wrap epoch=%d", p.epoch)
	}
	p.pairs[3] = pairPack(15, 7)
	p.resetPairs(100)
	if p.epoch != 1 {
		t.Fatalf("wrap path: epoch=%d, want 1", p.epoch)
	}
	for i, v := range p.pairs {
		if v != 0 {
			t.Fatalf("wrap path left pairs[%d]=%#x uncleared", i, v)
		}
	}

	// Shrink+regrow within capacity must keep the epoch discipline.
	p.pairs[0] = pairPack(p.epoch, 2)
	p.resetPairs(10)
	if len(p.pairs) != 10 || pairEpoch(p.pairs[0]) == p.epoch {
		t.Fatalf("shrink: len=%d epoch0=%d cur=%d", len(p.pairs), pairEpoch(p.pairs[0]), p.epoch)
	}
	p.resetPairs(4096)
	if len(p.pairs) != 4096 || p.epoch != 1 {
		t.Fatalf("regrow: len=%d epoch=%d", len(p.pairs), p.epoch)
	}
}

// TestEpochWraparoundEndToEnd runs enough joins through one process to
// cross the nibble wraparound many times (every 15 probes), comparing
// each run against the first: any stale-state leak across the wrap
// shows up as a flipped bit. The pool is also pre-seeded with a probe
// parked one reset away from wrapping.
func TestEpochWraparoundEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	cor, res, c := randomCorpus(t, rng, 25, 25)
	mask := res.Root.Mask
	forceProbePath(t, probeForceFlat)

	parked := &flatProbe{}
	parked.resetPairs(25 * 25)
	parked.epoch = 15
	for j := range parked.pairs {
		parked.pairs[j] = pairPack(15, int8(j%16+pairKilled))
	}
	probePool.Put(parked)

	ref := JoinOne(cor, mask, c, Options{K: 8, Q: 2})
	for i := 0; i < 40; i++ {
		got := JoinOne(cor, mask, c, Options{K: 8, Q: 2})
		requireIdentical(t, fmt.Sprintf("run %d", i), got, ref)
	}
}

// TestAutoKernelSelection pins useFlatProbe's auto policy: the dense
// path only when the pair space fits denseStateLimit and q fits the
// packed state nibble — and the choice must be invisible in the output
// (auto vs both forced kernels agree on a corpus near the boundary).
func TestAutoKernelSelection(t *testing.T) {
	if !useFlatProbe(100, 100, 2) {
		t.Error("small corpus should take the flat path")
	}
	if useFlatProbe(100, 100, flatProbeMaxQ+1) {
		t.Error("q beyond the packed-state range must fall back to the map kernel")
	}
	prev := denseStateLimit
	t.Cleanup(func() { denseStateLimit = prev })
	denseStateLimit = 64
	if useFlatProbe(9, 9, 2) { // 81 pairs > 64
		t.Error("pair space beyond denseStateLimit must fall back")
	}
	if !useFlatProbe(8, 8, 2) {
		t.Error("pair space within denseStateLimit should take the flat path")
	}

	rng := rand.New(rand.NewSource(800))
	cor, res, cset := randomCorpus(t, rng, 20, 20)
	mask := res.Root.Mask
	forceProbePath(t, probeAuto)
	auto := JoinOne(cor, mask, cset, Options{K: 10, Q: 2}) // 400 pairs: legacy under the shrunken limit
	denseStateLimit = prev
	auto2 := JoinOne(cor, mask, cset, Options{K: 10, Q: 2}) // flat under the real limit
	requireIdentical(t, "auto across the limit boundary", auto2, auto)
}

// TestFlatProbePathZeroAllocs pins the tentpole's allocation contract
// dynamically: with warm pooled buffers, the whole probe path —
// wire, absorb, seed, probe, finish — allocates nothing. (The static
// half is mclint's hotalloc/-escapes gate; testing.AllocsPerRun catches
// what escape analysis can't, e.g. amortized append growth would show
// up here as a fractional count.)
func TestFlatProbePathZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(900))
	cor, res, c := randomCorpus(t, rng, 40, 40)
	mask := res.Root.Mask
	instA, instB := tokenizeInstances(cor, mask, 1)
	ids := buildDenseInstances(instA, instB)

	rs := &runStats{}
	opt := runOpts{k: 10, q: 2, m: simfunc.Jaccard, c: c}
	score := makeScorer(cor, mask, nil, nil, simfunc.Jaccard)(rs)
	top := newTopkHeap(opt.k)
	p := &flatProbe{}
	runProbe := func() {
		top.items = top.items[:0]
		p.wire(opt, shardView{}, ids, rs, score, top, nil, nil, nil)
		p.absorb(nil)
		p.seed()
		p.probe()
		p.finish()
	}
	runProbe() // warm the buffers (growth is index-phase, allowed to allocate)
	if allocs := testing.AllocsPerRun(20, runProbe); allocs != 0 {
		t.Errorf("warm probe path allocated %.2f times per run, want 0", allocs)
	}
	if top.Len() == 0 {
		t.Fatal("probe produced no pairs — the zero-alloc run measured nothing")
	}
}

// FuzzPrefixFilter feeds arbitrary corpora through the flat kernel
// (filters live) against BruteForce (no filters): any input where the
// length or positional prefix filter kills a pair that belonged in the
// top-k — tie boundaries, equal scores, degenerate records — shows up
// as a list mismatch. Registered in the Makefile fuzz-smoke target.
func FuzzPrefixFilter(f *testing.F) {
	f.Add(uint8(1), uint8(2), []byte("abc\ndef g\nhij"))
	f.Add(uint8(3), uint8(1), []byte("a b c d e f g h i\nz\na b\nq r s"))
	f.Add(uint8(2), uint8(3), []byte("aa bb\naa bb\naa bb\ncc"))
	f.Add(uint8(1), uint8(1), []byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, kRaw, qRaw uint8, data []byte) {
		k := int(kRaw%8) + 1
		q := int(qRaw%4) + 1
		rows := decodeFuzzRows(data)
		if len(rows) < 2 {
			return
		}
		half := len(rows) / 2
		cor, res := corpusFor(t, []string{"v"}, rows[:half], rows[half:])
		mask := res.Root.Mask
		want := BruteForce(cor, mask, nil, k, simfunc.Jaccard)
		forceProbePath(t, probeForceFlat)
		flat := JoinOne(cor, mask, nil, Options{K: k, Q: q})
		forceProbePath(t, probeForceLegacy)
		legacy := JoinOne(cor, mask, nil, Options{K: k, Q: q})
		requireIdentical(t, fmt.Sprintf("flat vs brute k=%d q=%d", k, q), flat, want)
		requireIdentical(t, fmt.Sprintf("flat vs legacy k=%d q=%d", k, q), flat, legacy)
	})
}

// decodeFuzzRows turns raw fuzz bytes into single-attribute rows:
// newline-separated token phrases over a compressed alphabet (tokens
// collide constantly, which is where the filters and tie-breaks live).
func decodeFuzzRows(data []byte) [][]string {
	var rows [][]string
	var cur []byte
	flush := func() {
		if len(rows) < 16 {
			rows = append(rows, []string{string(cur)})
		}
		cur = cur[:0]
	}
	for _, b := range data {
		switch {
		case b == '\n':
			flush()
		case b == ' ':
			cur = append(cur, ' ')
		default:
			cur = append(cur, 'a'+b%7)
		}
		if len(cur) > 64 {
			flush()
		}
	}
	flush()
	return rows
}

// sink guards against dead-code elimination in benchmarks below.
var sinkList TopKList

// BenchmarkJoinOneKernel compares the two kernels on the same corpus
// (run with -bench to see the arena speedup on a mid-size join).
func BenchmarkJoinOneKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := []string{"ka", "ri", "ton", "mel", "sor", "vin", "da", "lo", "pex", "tra"}
	row := func() []string {
		n := 2 + rng.Intn(6)
		var s string
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return []string{s}
	}
	var rowsA, rowsB [][]string
	for i := 0; i < 400; i++ {
		rowsA = append(rowsA, row())
		rowsB = append(rowsB, row())
	}
	cor, res := corpusFor(&testing.T{}, []string{"v"}, rowsA, rowsB)
	for _, bench := range []struct {
		name string
		mode int
	}{{"flat", probeForceFlat}, {"legacy", probeForceLegacy}} {
		b.Run(bench.name, func(b *testing.B) {
			prev := probePathOverride
			probePathOverride = bench.mode
			defer func() { probePathOverride = prev }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkList = JoinOne(cor, res.Root.Mask, nil, Options{K: 50, Q: 2})
			}
		})
	}
}
