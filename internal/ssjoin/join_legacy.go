package ssjoin

// The map-based probe kernel: the original QJoin probe core, kept as
// the flat-memory fallback for pair spaces too large for the dense
// state table (|sharded side| × |other side| > denseStateLimit — the
// paper's W-A-scale workloads) and as the differential seam the test
// harness flips to prove the flat-arena kernel in join_flat.go computes
// the identical pure function. The two kernels must stay mirror images:
// same counter increment order, same strict prunes (including the
// ShallowBlocker length/positional-prefix filters — see
// flatProbe.touch for the soundness argument), same deterministic
// flush visit order. Canonical reports embed the runStats counters, so
// any divergence is a byte diff in the differential suite.

import (
	"slices"
	"strconv"

	"matchcatcher/internal/telemetry"
)

// postings is one token instance's inverted-index entry in the map
// kernel: the records whose popped prefixes contain the instance, in
// pop order, each with the prefix position it popped at (feeding the
// positional prefix filter, mirroring the arena's postEntry slabs).
type postings struct {
	a, b []postEntry
}

// joinShardLegacy is the probe core shared by the serial and sharded
// paths: the prefix-event loop of Section 4.1 restricted to the records
// the view owns. Only event seeding consults the view — a record the
// shard does not own never enters the event heap, so its instances
// never reach the shard's inverted index and the shard only ever
// touches pairs whose sharded-side record it owns.
//
// Every prune in this loop is strict (bound < k-th score). A bound equal
// to the k-th score must survive: the pair behind it could tie the
// boundary score and win the (idA, idB) tie-break, and pruning it is
// exactly the schedule-dependent tie-flip the old Workers caveat
// documented. With strict prunes the shard's heap is the exact top-k of
// its pair subspace under the total order, which is what the shard merge
// and the differential suite rely on.
func joinShardLegacy(opt runOpts, view shardView, ids denseInstances,
	rs *runStats, score scorer, seeds []ScoredPair,
	mergeCh <-chan []ScoredPair, span *telemetry.TraceSpan,
	pc *shardCounters) *topkHeap {

	cur := progCursor{slot: pc}
	instA, instB := ids.a, ids.b
	nA, nB := len(instA), len(instB)
	posA := make([]int32, nA)
	posB := make([]int32, nB)

	// Normalized shard geometry, shared with the flat kernel: serial
	// probes are "side A dealt to one shard" so the flush visit order
	// below has a single definition.
	side := int8(0)
	if view.shards > 1 {
		side = view.side
	}

	top := newTopkHeap(opt.k)
	pairs := make(map[int64]int32)
	index := make(map[int32]*postings)

	admit := func(key int64, a, b int32) {
		pairs[key] = pairScored
		top.offer(ScoredPair{A: a, B: b, Score: score(a, b)})
	}
	// absorb folds a parent config's top-k pairs into this run, rescoring
	// each pair under this config (scores do not transfer across configs;
	// the scorer answers from the parent's overlap DB when reuse is on).
	absorb := func(list []ScoredPair) {
		if len(list) > 0 {
			span.Event("absorb", telemetry.L("pairs", strconv.Itoa(len(list))))
		}
		for _, p := range list {
			key := pairKey(p.A, p.B)
			st, seen := pairs[key]
			if !seen && opt.c.Contains(int(p.A), int(p.B)) {
				pairs[key] = pairSuppressed
				continue
			}
			if st < 0 {
				continue
			}
			admit(key, p.A, p.B)
		}
	}
	absorb(seeds)

	var events eventHeap
	push := func(side int8, rec int32) {
		var pos int32
		var l int
		if side == 0 {
			pos, l = posA[rec], len(instA[rec])
		} else {
			pos, l = posB[rec], len(instB[rec])
		}
		if int(pos) >= l {
			return
		}
		cap := opt.m.ExtendCap(int(pos), l)
		if top.full() && cap < top.kthScore() {
			rs.pruneKills++
			rs.killsPushCap++
			// The record's remaining tail dies with the kill: it is never
			// re-pushed, so those instances are accounted as skipped.
			rs.probesSkipped += int64(l - int(pos))
			return // this string can never produce a new top-k pair
		}
		events.push(event{cap: cap, side: side, rec: rec})
	}
	idxSpan := span.Child("ssjoin.index")
	var ownedInstances int64
	for i := int32(0); i < int32(nA); i++ {
		if view.owns(0, i) {
			ownedInstances += int64(len(instA[i]))
			push(0, i)
		}
	}
	for i := int32(0); i < int32(nB); i++ {
		if view.owns(1, i) {
			ownedInstances += int64(len(instB[i]))
			push(1, i)
		}
	}
	if pc != nil {
		pc.probesTotal.Add(ownedInstances)
	}
	idxSpan.SetAttrInt("events_seeded", int64(events.Len()))
	idxSpan.End()

	// touch advances pair (a, b) by one common instance met at prefix
	// positions (pa, pb); first touch runs the C suppression and the two
	// strict pair filters, exactly as flatProbe.touch does.
	touch := func(a, b, pa, pb int32) {
		key := pairKey(a, b)
		st, seen := pairs[key]
		if !seen {
			if opt.c.Contains(int(a), int(b)) {
				pairs[key] = pairSuppressed
				rs.suppressedPairs++
				return
			}
			if top.full() {
				lx, ly := len(instA[a]), len(instB[b])
				kth := top.kthScore()
				mo := min(lx, ly)
				if opt.m.FromOverlap(mo, lx, ly) < kth {
					pairs[key] = pairKilled
					rs.killsLengthFilter++
					if filterKillHook != nil {
						filterKillHook(a, b, tierLengthFilter)
					}
					return
				}
				if rem := 1 + min(lx-int(pa)-1, ly-int(pb)-1); rem < mo {
					if opt.m.FromOverlap(rem, lx, ly) < kth {
						pairs[key] = pairKilled
						rs.killsPrefixPos++
						if filterKillHook != nil {
							filterKillHook(a, b, tierPrefixPos)
						}
						return
					}
				}
			}
		} else if st < 0 {
			return
		}
		st++
		if int(st) >= opt.q {
			admit(key, a, b)
			return
		}
		pairs[key] = st
	}

	probeSpan := span.Child("ssjoin.probe")
	steps := 0
	for events.Len() > 0 {
		if steps++; steps&1023 == 0 {
			// Progress sampling rides the loop's existing stride
			// checkpoint: one delta flush per progressStride pops.
			cur.flush(rs, events.Len(), top.Len())
			if opt.cancel != nil && opt.cancel.Load() {
				probeSpan.Event("cancelled")
				probeSpan.End()
				cur.flush(rs, events.Len(), top.Len())
				return top
			}
			if mergeCh != nil {
				select {
				case list := <-mergeCh:
					absorb(list)
				default:
				}
			}
		}
		ev := events.items[0]
		if top.full() && ev.cap < top.kthScore() {
			rs.pruneKills += int64(events.Len())
			rs.killsLoopBreak += int64(events.Len())
			// Every record still in the heap dies here; account its
			// unpopped tail so done+skipped still converges to the
			// owned-instance total. One pass over the heap, once per shard.
			for _, dead := range events.items {
				if dead.side == 0 {
					rs.probesSkipped += int64(len(instA[dead.rec]) - int(posA[dead.rec]))
				} else {
					rs.probesSkipped += int64(len(instB[dead.rec]) - int(posB[dead.rec]))
				}
			}
			break
		}
		events.pop()
		rs.prefixEvents++
		if ev.side == 0 {
			pos := posA[ev.rec]
			inst := instA[ev.rec][pos]
			posA[ev.rec] = pos + 1
			p := index[inst]
			if p == nil {
				p = &postings{}
				index[inst] = p
			}
			for _, pe := range p.b {
				touch(ev.rec, pe.rec, pos, pe.pos)
			}
			p.a = append(p.a, postEntry{rec: ev.rec, pos: pos})
		} else {
			pos := posB[ev.rec]
			inst := instB[ev.rec][pos]
			posB[ev.rec] = pos + 1
			p := index[inst]
			if p == nil {
				p = &postings{}
				index[inst] = p
			}
			for _, pe := range p.a {
				touch(pe.rec, ev.rec, pe.pos, pos)
			}
			p.b = append(p.b, postEntry{rec: ev.rec, pos: pos})
		}
		push(ev.side, ev.rec)
	}
	probeSpan.SetAttrInt("prefix_events", rs.prefixEvents)
	probeSpan.SetAttrInt("prune_kills", rs.pruneKills)
	probeSpan.End()

	// Drain any merge list that arrived after the loop ended.
	if mergeCh != nil {
		select {
		case list := <-mergeCh:
			absorb(list)
		default:
		}
	}

	// Flush: pending pairs (seen < q common instances) may still belong
	// in the top-k; score those whose optimistic bound ties or beats the
	// k-th score. Every uncounted common instance lies beyond at least one
	// final prefix, so overlap <= count + (lx-px) + (ly-py). The pending
	// keys are sorted first: map iteration order is randomized, and the
	// k-th score rises as flushed pairs are admitted, so a deterministic
	// visit order is what makes reruns reproduce the same counters (the
	// list itself is order-independent by the total-order retention).
	// The order is (owned sharded-side record asc, other record asc) —
	// the flat kernel's storage-scan order — so the two kernels' counter
	// streams match byte for byte. For side A that is plain key order;
	// for a B-sharded probe the key halves swap.
	topkSpan := span.Child("ssjoin.topk")
	pending := make([]int64, 0, len(pairs))
	for key, st := range pairs {
		if st > 0 {
			pending = append(pending, key)
		}
	}
	if side == 1 {
		slices.SortFunc(pending, func(x, y int64) int {
			xs := int64(uint32(x))<<32 | x>>32
			ys := int64(uint32(y))<<32 | y>>32
			if xs < ys {
				return -1
			}
			if xs > ys {
				return 1
			}
			return 0
		})
	} else {
		slices.Sort(pending)
	}
	for _, key := range pending {
		st := pairs[key]
		rs.deferredPairs++
		a := int32(key >> 32)
		b := int32(uint32(key))
		lx, ly := len(instA[a]), len(instB[b])
		oMax := int(st) + (lx - int(posA[a])) + (ly - int(posB[b]))
		if m := min(lx, ly); oMax > m {
			oMax = m
		}
		if top.full() && opt.m.FromOverlap(oMax, lx, ly) < top.kthScore() {
			rs.killsFlushBound++
			continue
		}
		rs.flushedPairs++
		admit(key, a, b)
	}
	topkSpan.SetAttrInt("deferred_pairs", rs.deferredPairs)
	topkSpan.SetAttrInt("flushed_pairs", rs.flushedPairs)
	topkSpan.End()
	// Terminal flush: publish the final counters and zero the live heap
	// gauge (the shard is done; residual dead events are not a live heap).
	cur.flush(rs, 0, top.Len())
	return top
}
