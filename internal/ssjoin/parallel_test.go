package ssjoin

// The intra-join parallelism correctness harness: a differential oracle
// (serial reference vs. sharded-parallel runs, byte-compared TopKLists
// over seeded corpora × {Q, K, reuse on/off} grids), metamorphic
// properties (the probe worker count and the shard count are invisible in
// the output; so is the Workers × ProbeWorkers grid end to end), and a
// race-detector stress test driving concurrent probes with live
// telemetry, tracing, and provenance attached. The underlying invariant
// is that every single-config join — serial or sharded — returns the
// exact top-k of D = A×B−C under the total order (score desc, idA, idB),
// so BruteForce doubles as a third, independent oracle.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/telemetry"
)

// requireIdentical compares two top-k lists bit for bit: same config
// mask, same pairs in the same order, and scores equal as raw float64
// bit patterns — stricter than an epsilon compare, which is the point of
// the determinism contract.
func requireIdentical(t *testing.T, label string, got, want TopKList) {
	t.Helper()
	if got.Config != want.Config {
		t.Fatalf("%s: config %b vs %b", label, got.Config, want.Config)
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		g, w := got.Pairs[i], want.Pairs[i]
		if g.A != w.A || g.B != w.B || math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("%s: pair[%d] = (%d,%d,%x) want (%d,%d,%x)",
				label, i, g.A, g.B, math.Float64bits(g.Score), w.A, w.B, math.Float64bits(w.Score))
		}
	}
}

func requireIdenticalLists(t *testing.T, label string, got, want []TopKList) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lists, want %d", label, len(got), len(want))
	}
	for i := range got {
		requireIdentical(t, fmt.Sprintf("%s list=%d", label, i), got[i], want[i])
	}
}

// TestSerialJoinIsExactTopK pins the invariant the whole parallel design
// rests on: the serial join's list equals the brute-force exact top-k
// under the total order, bit for bit, ties at the k-th boundary included,
// for every q. (The pre-parallelism code allowed boundary ties to flip
// with scheduling; strict pruning removed that.)
func TestSerialJoinIsExactTopK(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cor, res, c := randomCorpus(t, rng, 30, 40)
		for _, k := range []int{5, 25} {
			want := BruteForce(cor, res.Root.Mask, c, k, simfunc.Jaccard)
			for q := 1; q <= 4; q++ {
				got := JoinOne(cor, res.Root.Mask, c, Options{K: k, Q: q})
				requireIdentical(t, fmt.Sprintf("seed=%d k=%d q=%d", seed, k, q), got, want)
			}
		}
	}
}

// TestJoinOneDifferentialAcrossProbeWorkers is the single-config
// differential oracle: the parallel join's output must be bit-identical
// to the serial reference over a {seed} × {Q} × {K} grid for every probe
// worker count in {2, 3, 8}.
func TestJoinOneDifferentialAcrossProbeWorkers(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		cor, res, c := randomCorpus(t, rng, 35, 30)
		for _, mask := range res.Configs() {
			for _, q := range []int{1, 2, 3} {
				for _, k := range []int{5, 20} {
					ref := JoinOne(cor, mask, c, Options{K: k, Q: q, ProbeWorkers: 1})
					for _, pw := range []int{2, 3, 8} {
						got := JoinOne(cor, mask, c, Options{K: k, Q: q, ProbeWorkers: pw})
						requireIdentical(t,
							fmt.Sprintf("seed=%d mask=%b q=%d k=%d pw=%d", seed, mask, q, k, pw),
							got, ref)
					}
				}
			}
		}
	}
}

// TestJoinAllDifferentialWorkerGrid is the acceptance-grade end-to-end
// differential: JoinAll's full output (every config's list) is
// byte-identical across Workers × ProbeWorkers ∈ {1,2,3,8}² on three
// seeds, with list reuse both on (forced) and off — the grid the stale
// "Workers: 1 for bit-reproducible runs" caveat used to exclude.
func TestJoinAllDifferentialWorkerGrid(t *testing.T) {
	grid := []int{1, 2, 3, 8}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		cor, _, c := randomCorpus(t, rng, 30, 30)
		for _, reuse := range []bool{false, true} {
			base := Options{K: 15, Q: 2, Workers: 1, ProbeWorkers: 1}
			if reuse {
				base.ReuseMinAvgTokens = 1 // force overlap+list reuse on short tuples
			} else {
				base.DisableScoreReuse = true
				base.DisableListReuse = true
			}
			ref := JoinAll(cor, c, base)
			for _, w := range grid {
				for _, pw := range grid {
					opt := base
					opt.Workers, opt.ProbeWorkers = w, pw
					got := JoinAll(cor, c, opt)
					requireIdenticalLists(t,
						fmt.Sprintf("seed=%d reuse=%v workers=%d probeworkers=%d", seed, reuse, w, pw),
						got.Lists, ref.Lists)
				}
			}
		}
	}
}

// TestShardCountInvisible is the metamorphic property on the shard count
// itself, decoupled from the worker pool: overriding probeShards to any
// value — more shards than workers, more shards than records, a prime
// count — must not change a single output bit, whether the shards run
// serially (probeWorkers=1) or concurrently.
func TestShardCountInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cor, res, c := randomCorpus(t, rng, 25, 30)
	mask := res.Root.Mask
	run := func(workers, shards int) TopKList {
		rs := &runStats{}
		return runJoin(cor, mask, runOpts{
			k: 12, q: 2, m: simfunc.Jaccard, c: c,
			score:        makeScorer(cor, mask, nil, nil, simfunc.Jaccard),
			stats:        rs,
			probeWorkers: workers,
			probeShards:  shards,
		})
	}
	ref := run(1, 1)
	for _, workers := range []int{1, 3} {
		for _, shards := range []int{2, 3, 5, 8, 64} {
			got := run(workers, shards)
			requireIdentical(t, fmt.Sprintf("workers=%d shards=%d", workers, shards), got, ref)
		}
	}
}

// TestShardSeedHandoffInvisible extends the differential to the
// list-reuse handoff: a sharded join given parent seeds, or a late
// parent list on the merge channel, returns the same bits as the unfed
// serial join.
func TestShardSeedHandoffInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cor, res, c := randomCorpus(t, rng, 25, 25)
	mask := res.Root.Mask
	parent := BruteForce(cor, mask, c, 10, simfunc.Jaccard)
	ref := JoinOne(cor, mask, c, Options{K: 10, Q: 2})

	run := func(seeds []ScoredPair, mergeCh <-chan []ScoredPair, shards int) TopKList {
		rs := &runStats{}
		return runJoin(cor, mask, runOpts{
			k: 10, q: 2, m: simfunc.Jaccard, c: c,
			score:        makeScorer(cor, mask, nil, nil, simfunc.Jaccard),
			stats:        rs,
			seeds:        seeds,
			mergeCh:      mergeCh,
			probeWorkers: 3,
			probeShards:  shards,
		})
	}
	requireIdentical(t, "seeded", run(parent.Pairs, nil, 3), ref)
	ch := make(chan []ScoredPair, 1)
	ch <- parent.Pairs
	requireIdentical(t, "merge-channel", run(nil, ch, 4), ref)
}

// degenerate corpora for the edge table below.
func identicalRowsCorpus(t *testing.T, n int) (*Corpus, *config.Result) {
	t.Helper()
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = []string{"alpha beta gamma"}
	}
	return corpusFor(t, []string{"v"}, rows, rows)
}

// TestDegenerateShards is the table-driven edge suite: empty probe side,
// fewer records than workers, all-identical scores (every retained pair
// ties, so the whole list is boundary), and k larger than the candidate
// space. Each case must be bit-identical between the serial join, the
// sharded join at several worker counts, and brute force.
func TestDegenerateShards(t *testing.T) {
	type tc struct {
		name  string
		build func(t *testing.T) (*Corpus, *config.Result)
		k     int
	}
	cases := []tc{
		{
			name: "empty probe side",
			build: func(t *testing.T) (*Corpus, *config.Result) {
				// Every B tuple tokenizes to nothing: the B side seeds no
				// events and no pair can score above zero.
				return corpusFor(t, []string{"v"},
					[][]string{{"a b"}, {"c d"}, {"e f"}},
					[][]string{{""}, {""}})
			},
			k: 5,
		},
		{
			name: "fewer records than workers",
			build: func(t *testing.T) (*Corpus, *config.Result) {
				return corpusFor(t, []string{"v"},
					[][]string{{"a b c"}, {"b c d"}},
					[][]string{{"a c"}, {"b d"}, {"c d e"}})
			},
			k: 4,
		},
		{
			name: "all-identical scores",
			build: func(t *testing.T) (*Corpus, *config.Result) {
				cor, res := identicalRowsCorpus(t, 6)
				return cor, res
			},
			k: 7, // 36 candidate pairs, all scoring exactly 1.0
		},
		{
			name: "k larger than candidates",
			build: func(t *testing.T) (*Corpus, *config.Result) {
				return corpusFor(t, []string{"v"},
					[][]string{{"a b"}, {"x y"}},
					[][]string{{"a b"}, {"p q"}})
			},
			k: 100,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cor, res := c.build(t)
			mask := res.Root.Mask
			want := BruteForce(cor, mask, nil, c.k, simfunc.Jaccard)
			for _, q := range []int{1, 2} {
				serial := JoinOne(cor, mask, nil, Options{K: c.k, Q: q, ProbeWorkers: 1})
				requireIdentical(t, fmt.Sprintf("serial vs brute force q=%d", q), serial, want)
				for _, pw := range []int{2, 8} {
					got := JoinOne(cor, mask, nil, Options{K: c.k, Q: q, ProbeWorkers: pw})
					requireIdentical(t, fmt.Sprintf("pw=%d q=%d", pw, q), got, serial)
				}
			}
		})
	}
}

// TestDegenerateShardsTieBoundary pins the specific bug the old Workers
// caveat documented: when more pairs tie the k-th score than fit, the
// retained set must be the ids-smallest ones — identically in the serial
// join, the sharded join, and brute force.
func TestDegenerateShardsTieBoundary(t *testing.T) {
	cor, res := identicalRowsCorpus(t, 5) // 25 pairs, every score exactly 1.0
	mask := res.Root.Mask
	want := BruteForce(cor, mask, nil, 6, simfunc.Jaccard)
	if len(want.Pairs) != 6 {
		t.Fatalf("brute force returned %d pairs", len(want.Pairs))
	}
	for i, p := range want.Pairs {
		// Total order at a full tie is (idA, idB) ascending.
		if int(p.A) != i/5 || int(p.B) != i%5 {
			t.Fatalf("brute-force tie order broken at %d: %+v", i, p)
		}
	}
	for _, pw := range []int{1, 2, 5, 8} {
		got := JoinOne(cor, mask, nil, Options{K: 6, Q: 2, ProbeWorkers: pw})
		requireIdentical(t, fmt.Sprintf("pw=%d", pw), got, want)
	}
}

// TestParallelStatsDeterministic: for a fixed shard count the folded
// telemetry counters are deterministic too (shard stats fold in index
// order), so reruns reproduce the same mc_ssjoin_* stream.
func TestParallelStatsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cor, _, c := randomCorpus(t, rng, 30, 30)
	run := func() Stats {
		return JoinAll(cor, c, Options{K: 10, Q: 2, Workers: 3, ProbeWorkers: 4}).Stats
	}
	s1, s2 := run(), run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if s1.ProbeShards == 0 {
		t.Error("expected sharded probes to report ProbeShards > 0")
	}
	if s1.ShardMergePairs == 0 {
		t.Error("expected shard merges to offer pairs")
	}
}

// TestParallelRaceStress drives concurrent probes with the full
// observability stack attached — live registry, trace spans, provenance
// watches — from several JoinAll invocations at once. Its assertions are
// weak (the differential tests own correctness); its job is to give the
// race detector every cross-shard interaction the production path has.
func TestParallelRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	cor, _, c := randomCorpus(t, rng, 30, 30)
	reg := telemetry.New()
	tracer := telemetry.NewTracer(reg)
	var wg sync.WaitGroup
	results := make([]*JoinResult, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prov := telemetry.NewProvenance([2]int{0, 0}, [2]int{1, 2}, [2]int{3, 1})
			root := tracer.Start("stress.joinall")
			results[i] = JoinAll(cor, c, Options{
				K: 10, Q: 2,
				Workers: 3, ProbeWorkers: 4,
				ReuseMinAvgTokens: 1,
				Metrics:           reg,
				Trace:             root,
				Provenance:        prov,
			})
			root.End()
		}(i)
	}
	wg.Wait()
	for i := 1; i < 4; i++ {
		requireIdenticalLists(t, fmt.Sprintf("run %d vs 0", i), results[i].Lists, results[0].Lists)
	}
	if reg.Snapshot() == nil {
		t.Fatal("registry snapshot unavailable after stress")
	}
}

// TestMergeTopKAgainstSerialInsert is the deterministic unit companion
// to FuzzMergeTopK: partition a pair set by A-record, build per-shard
// heaps, and check the merge equals serial insertion — including a block
// of exact score ties straddling the boundary.
func TestMergeTopKAgainstSerialInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	var pairs []ScoredPair
	for a := int32(0); a < 12; a++ {
		for b := int32(0); b < 9; b++ {
			// Rational scores with tiny denominators force exact ties.
			pairs = append(pairs, ScoredPair{A: a, B: b, Score: float64(rng.Intn(5)) / 4})
		}
	}
	for _, k := range []int{1, 7, 30, 200} {
		for _, shards := range []int{1, 2, 3, 5} {
			serial := newTopkHeap(k)
			for _, p := range pairs {
				serial.offer(p)
			}
			lists := make([][]ScoredPair, shards)
			for s := 0; s < shards; s++ {
				h := newTopkHeap(k)
				for _, p := range pairs {
					if int(p.A)%shards == s {
						h.offer(p)
					}
				}
				lists[s] = h.items
			}
			merged := mergeTopK(k, lists...)
			requireIdentical(t, fmt.Sprintf("k=%d shards=%d", k, shards),
				merged.list(0), serial.list(0))
		}
	}
}

// TestTokenizeInstancesParallelIdentical: the parallel tokenizer is a
// pure fan-out; its output must match the inline path slot for slot.
func TestTokenizeInstancesParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cor, res, _ := randomCorpus(t, rng, 300, 280)
	for _, mask := range res.Configs() {
		a1, b1 := tokenizeInstances(cor, mask, 1)
		for _, workers := range []int{2, 4, 7} {
			aw, bw := tokenizeInstances(cor, mask, workers)
			if !reflect.DeepEqual(a1, aw) || !reflect.DeepEqual(b1, bw) {
				t.Fatalf("mask=%b workers=%d: tokenize output differs", mask, workers)
			}
		}
	}
}

// TestJoinAllCancelSafety: a cancelled sharded run must return promptly
// and without panic (the q-race path), even with many shards in flight.
func TestShardedCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	cor, res, c := randomCorpus(t, rng, 40, 40)
	var cancel atomic.Bool
	cancel.Store(true)
	rs := &runStats{}
	got := runJoin(cor, res.Root.Mask, runOpts{
		k: 20, q: 2, m: simfunc.Jaccard, c: c,
		score:        makeScorer(cor, res.Root.Mask, nil, nil, simfunc.Jaccard),
		stats:        rs,
		cancel:       &cancel,
		probeWorkers: 4,
	})
	if len(got.Pairs) > 20 {
		t.Errorf("cancelled sharded run returned %d pairs", len(got.Pairs))
	}
}
