package ssjoin

import (
	"strconv"
	"sync/atomic"
	"time"

	"matchcatcher/internal/telemetry"
)

// runStats collects one config-join's event counts. It is owned by a
// single runJoin goroutine, so increments are plain (non-atomic) adds —
// the join's hot loop pays no synchronization for instrumentation. The
// counts are flushed exactly once when the join finishes, into both the
// per-run Stats aggregate and the telemetry registry, so the two always
// report through the same stream.
type runStats struct {
	scratchScores   int64 // pair scores computed by merging token lists
	reusedScores    int64 // pair scores answered by a parent's H_γ (hit)
	reuseMisses     int64 // scratch scores taken while a parent H_γ existed
	prefixEvents    int64 // prefix-extension events popped off the heap
	pruneKills      int64 // extensions pruned because their cap < k-th score
	deferredPairs   int64 // pairs still pending (< q common instances) at flush
	flushedPairs    int64 // deferred pairs whose bound forced an exact score
	suppressedPairs int64 // pairs skipped because they are in C
	probeShards     int64 // probe shards executed (0 on the serial path)
	shardMergePairs int64 // shard-heap pairs offered to the top-k merge

	// Prune-tier split of pruneKills (pruneKills stays the grand total),
	// plus the progress tracker's probe accounting: probesSkipped counts
	// token instances written off by a prune (so done+skipped converges
	// to the owned-instance total), progressSamples counts stride
	// flushes into the shard's Progress slot.
	killsPushCap    int64 // tier a: extension cap < k-th score at push
	killsLoopBreak  int64 // tier b: root cap < k-th score ended the event loop
	killsFlushBound int64 // tier c: deferred pair's optimistic bound < k-th at flush
	probesSkipped   int64 // token instances a prune wrote off unpopped
	progressSamples int64 // progress flushes taken at the stride checkpoint

	// ShallowBlocker-style strict pair filters (first touch only; see
	// flatProbe.touch). Like killsFlushBound, these skip scoring work on
	// pairs, not prefix extensions, so they are separate tiers and not
	// part of the pruneKills grand total.
	killsLengthFilter int64 // length filter: min(lx,ly) overlap can't reach k-th
	killsPrefixPos    int64 // positional prefix filter: remaining overlap can't reach k-th

	// Per-config shard-skew summary, set by runJoinSharded after the
	// shard pool joins (never set on shard-level blocks, so fold must not
	// sum it): work units are popped prefix events per shard.
	shardWorkMin   int64
	shardWorkMax   int64
	shardWorkP50   int64
	shardImbalance float64 // max shard work over mean shard work (0 = serial)
}

// fold adds one probe shard's counts into the parent run's block. It is
// called after the shard pool has joined, in shard-index order, so the
// folded totals are deterministic for a fixed shard count no matter which
// worker ran which shard when.
func (rs *runStats) fold(s *runStats) {
	rs.scratchScores += s.scratchScores
	rs.reusedScores += s.reusedScores
	rs.reuseMisses += s.reuseMisses
	rs.prefixEvents += s.prefixEvents
	rs.pruneKills += s.pruneKills
	rs.deferredPairs += s.deferredPairs
	rs.flushedPairs += s.flushedPairs
	rs.suppressedPairs += s.suppressedPairs
	rs.probeShards += s.probeShards
	rs.shardMergePairs += s.shardMergePairs
	rs.killsPushCap += s.killsPushCap
	rs.killsLoopBreak += s.killsLoopBreak
	rs.killsFlushBound += s.killsFlushBound
	rs.probesSkipped += s.probesSkipped
	rs.progressSamples += s.progressSamples
	rs.killsLengthFilter += s.killsLengthFilter
	rs.killsPrefixPos += s.killsPrefixPos
}

// sink holds the resolved telemetry instruments for one executor run.
// Instruments are resolved once (registry lookups off the hot path) and
// a nil-registry sink degrades to no-ops via nil instruments.
type sink struct {
	scratch, reused        *telemetry.Counter
	reuseHits, reuseMisses *telemetry.Counter
	prefixEvents           *telemetry.Counter
	pruneKills             *telemetry.Counter
	deferred, flushed      *telemetry.Counter
	suppressed             *telemetry.Counter
	probeShards            *telemetry.Counter
	shardMergePairs        *telemetry.Counter
	configJoins            *telemetry.Counter
	joinSeconds            *telemetry.Histogram
	// Progress/prune-tier counters and the shard-skew gauges (DESIGN.md
	// "Join progress & skew observability"). The tier label is the
	// bounded three-value prune vocabulary; skew gauges report the most
	// recently finished sharded config's work distribution.
	killsPushCap      *telemetry.Counter
	killsLoopBreak    *telemetry.Counter
	killsFlushBound   *telemetry.Counter
	killsLengthFilter *telemetry.Counter
	killsPrefixPos    *telemetry.Counter
	probesSkipped     *telemetry.Counter
	progressSamples *telemetry.Counter
	skewConfigs     *telemetry.Counter
	skewWorkMin     *telemetry.Gauge
	skewWorkMax     *telemetry.Gauge
	skewWorkP50     *telemetry.Gauge
	skewImbalance   *telemetry.Gauge
	reg             *telemetry.Registry
}

func newSink(reg *telemetry.Registry) *sink {
	return &sink{
		scratch:         reg.Counter("mc_ssjoin_scratch_scores_total"),
		reused:          reg.Counter("mc_ssjoin_reused_scores_total"),
		reuseHits:       reg.Counter("mc_ssjoin_reuse_hits_total"),
		reuseMisses:     reg.Counter("mc_ssjoin_reuse_misses_total"),
		prefixEvents:    reg.Counter("mc_ssjoin_prefix_events_total"),
		pruneKills:      reg.Counter("mc_ssjoin_prune_kills_total"),
		deferred:        reg.Counter("mc_ssjoin_deferred_pairs_total"),
		flushed:         reg.Counter("mc_ssjoin_flushed_pairs_total"),
		suppressed:      reg.Counter("mc_ssjoin_suppressed_pairs_total"),
		probeShards:     reg.Counter("mc_ssjoin_probe_shards_total"),
		shardMergePairs: reg.Counter("mc_ssjoin_shard_merge_pairs_total"),
		configJoins:     reg.Counter("mc_ssjoin_config_joins_total"),
		joinSeconds:     reg.Histogram("mc_ssjoin_join_seconds"),
		killsPushCap:      reg.Counter("mc_ssjoin_progress_prune_kills_total", telemetry.L("tier", "push_cap")),
		killsLoopBreak:    reg.Counter("mc_ssjoin_progress_prune_kills_total", telemetry.L("tier", "loop_break")),
		killsFlushBound:   reg.Counter("mc_ssjoin_progress_prune_kills_total", telemetry.L("tier", "flush_bound")),
		killsLengthFilter: reg.Counter("mc_ssjoin_progress_prune_kills_total", telemetry.L("tier", "length_filter")),
		killsPrefixPos:    reg.Counter("mc_ssjoin_progress_prune_kills_total", telemetry.L("tier", "prefix_pos")),
		probesSkipped:   reg.Counter("mc_ssjoin_progress_skipped_instances_total"),
		progressSamples: reg.Counter("mc_ssjoin_progress_samples_total"),
		skewConfigs:     reg.Counter("mc_ssjoin_shard_skew_configs_total"),
		skewWorkMin:     reg.Gauge("mc_ssjoin_shard_skew_work_min"),
		skewWorkMax:     reg.Gauge("mc_ssjoin_shard_skew_work_max"),
		skewWorkP50:     reg.Gauge("mc_ssjoin_shard_skew_work_p50"),
		skewImbalance:   reg.Gauge("mc_ssjoin_shard_skew_imbalance_ratio"),
		reg:             reg,
	}
}

// record flushes one finished config join into the registry.
func (s *sink) record(rs *runStats, dur time.Duration) {
	s.scratch.Add(rs.scratchScores)
	s.reused.Add(rs.reusedScores)
	s.reuseHits.Add(rs.reusedScores) // a reused score is exactly an H_γ hit
	s.reuseMisses.Add(rs.reuseMisses)
	s.prefixEvents.Add(rs.prefixEvents)
	s.pruneKills.Add(rs.pruneKills)
	s.deferred.Add(rs.deferredPairs)
	s.flushed.Add(rs.flushedPairs)
	s.suppressed.Add(rs.suppressedPairs)
	s.probeShards.Add(rs.probeShards)
	s.shardMergePairs.Add(rs.shardMergePairs)
	s.killsPushCap.Add(rs.killsPushCap)
	s.killsLoopBreak.Add(rs.killsLoopBreak)
	s.killsFlushBound.Add(rs.killsFlushBound)
	s.killsLengthFilter.Add(rs.killsLengthFilter)
	s.killsPrefixPos.Add(rs.killsPrefixPos)
	s.probesSkipped.Add(rs.probesSkipped)
	s.progressSamples.Add(rs.progressSamples)
	if rs.shardImbalance > 0 {
		s.skewConfigs.Inc()
		s.skewWorkMin.Set(float64(rs.shardWorkMin))
		s.skewWorkMax.Set(float64(rs.shardWorkMax))
		s.skewWorkP50.Set(float64(rs.shardWorkP50))
		s.skewImbalance.Set(rs.shardImbalance)
	}
	s.configJoins.Inc()
	s.joinSeconds.Observe(dur.Seconds())
}

// recordQ records the outcome of the empirical q-selection race.
func (s *sink) recordQ(q int) {
	s.reg.Counter("mc_ssjoin_q_selected_total", telemetry.L("q", strconv.Itoa(q))).Inc()
}

// add folds one config join's counts into the per-run aggregate
// (workers run concurrently, so this side uses atomics).
func (st *Stats) add(rs *runStats) {
	atomic.AddInt64(&st.ScratchScores, rs.scratchScores)
	atomic.AddInt64(&st.ReusedScores, rs.reusedScores)
	atomic.AddInt64(&st.ReuseMisses, rs.reuseMisses)
	atomic.AddInt64(&st.PrefixEvents, rs.prefixEvents)
	atomic.AddInt64(&st.PruneKills, rs.pruneKills)
	atomic.AddInt64(&st.DeferredPairs, rs.deferredPairs)
	atomic.AddInt64(&st.FlushedPairs, rs.flushedPairs)
	atomic.AddInt64(&st.SuppressedPairs, rs.suppressedPairs)
	atomic.AddInt64(&st.ProbeShards, rs.probeShards)
	atomic.AddInt64(&st.ShardMergePairs, rs.shardMergePairs)
	atomic.AddInt64(&st.PruneKillsPushCap, rs.killsPushCap)
	atomic.AddInt64(&st.PruneKillsLoopBreak, rs.killsLoopBreak)
	atomic.AddInt64(&st.PruneKillsFlushBound, rs.killsFlushBound)
	atomic.AddInt64(&st.PruneKillsLengthFilter, rs.killsLengthFilter)
	atomic.AddInt64(&st.PruneKillsPrefixPos, rs.killsPrefixPos)
	atomic.AddInt64(&st.SkippedInstances, rs.probesSkipped)
}

// mergeSkew folds one config's shard-skew summary into the aggregate,
// keeping the worst-imbalance config's distribution. It is called after
// the worker pool has joined, in node order, so the winner is
// deterministic (plain writes — no concurrent adders remain).
func (st *Stats) mergeSkew(rs *runStats) {
	if rs.shardImbalance > st.ShardImbalance {
		st.ShardImbalance = rs.shardImbalance
		st.ShardWorkMin = rs.shardWorkMin
		st.ShardWorkMax = rs.shardWorkMax
		st.ShardWorkP50 = rs.shardWorkP50
	}
}
