package ssjoin

// Tests for the join progress tracker: the determinism contract
// (attaching a Progress changes no output bit at any Workers ×
// ProbeWorkers), the accounting invariant (every owned token instance
// ends up popped or skipped, so the completion fraction converges to
// 1), the prune-tier split, the skew summaries, and the zero-alloc
// discipline of the stride flush.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestProgressDeterminismGrid: the tracker is observe-only — JoinAll
// with a Progress attached must be byte-identical to the untracked
// reference at every Workers × ProbeWorkers.
func TestProgressDeterminismGrid(t *testing.T) {
	grid := []int{1, 2, 4}
	for seed := int64(0); seed < 2; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		cor, _, c := randomCorpus(t, rng, 30, 40)
		ref := JoinAll(cor, c, Options{K: 15, Q: 2, Workers: 1, ProbeWorkers: 1})
		for _, w := range grid {
			for _, pw := range grid {
				got := JoinAll(cor, c, Options{
					K: 15, Q: 2, Workers: w, ProbeWorkers: pw,
					Progress: NewProgress(),
				})
				requireIdenticalLists(t,
					fmt.Sprintf("seed=%d workers=%d probeworkers=%d", seed, w, pw),
					got.Lists, ref.Lists)
			}
		}
	}
}

// TestProgressAccountingConverges: when the run finishes, every owned
// token instance has been accounted — popped (done) or written off by a
// prune (skipped) — and the derived fraction reads exactly 1.
func TestProgressAccountingConverges(t *testing.T) {
	for _, pw := range []int{1, 3} {
		rng := rand.New(rand.NewSource(42))
		cor, _, c := randomCorpus(t, rng, 40, 50)
		prog := NewProgress()
		res := JoinAll(cor, c, Options{K: 10, Q: 2, ProbeWorkers: pw, Progress: prog})
		snap := prog.Snapshot()
		if !snap.Done {
			t.Fatalf("pw=%d: run finished but snapshot not Done", pw)
		}
		if snap.Cancelled {
			t.Fatalf("pw=%d: uncancelled run marked cancelled", pw)
		}
		if snap.Fraction != 1 {
			t.Fatalf("pw=%d: fraction = %v, want 1", pw, snap.Fraction)
		}
		if snap.ProbesTotal == 0 {
			t.Fatalf("pw=%d: no probes accounted", pw)
		}
		if got := snap.ProbesDone + snap.ProbesSkipped; got != snap.ProbesTotal {
			t.Fatalf("pw=%d: done %d + skipped %d = %d, want total %d",
				pw, snap.ProbesDone, snap.ProbesSkipped, got, snap.ProbesTotal)
		}
		if snap.ConfigsDone != snap.ConfigsTotal || snap.ConfigsStarted != snap.ConfigsTotal {
			t.Fatalf("pw=%d: configs done/started/total = %d/%d/%d",
				pw, snap.ConfigsDone, snap.ConfigsStarted, snap.ConfigsTotal)
		}
		if snap.EventHeapLive != 0 {
			t.Fatalf("pw=%d: finished run reports live event heap %d", pw, snap.EventHeapLive)
		}
		// The tracker and Stats report through the same counter stream.
		if snap.ProbesDone != res.Stats.PrefixEvents {
			t.Fatalf("pw=%d: snapshot pops %d != Stats.PrefixEvents %d",
				pw, snap.ProbesDone, res.Stats.PrefixEvents)
		}
		if snap.ProbesSkipped != res.Stats.SkippedInstances {
			t.Fatalf("pw=%d: snapshot skipped %d != Stats.SkippedInstances %d",
				pw, snap.ProbesSkipped, res.Stats.SkippedInstances)
		}
	}
}

// TestProgressPruneTierSplit: the per-tier kill counters partition the
// legacy PruneKills total (tiers a and b; the flush bound is counted
// separately because flush skips were never in PruneKills).
func TestProgressPruneTierSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cor, _, c := randomCorpus(t, rng, 40, 50)
	prog := NewProgress()
	res := JoinAll(cor, c, Options{K: 5, Q: 2, ProbeWorkers: 2, Progress: prog})
	st := res.Stats
	if st.PruneKillsPushCap+st.PruneKillsLoopBreak != st.PruneKills {
		t.Fatalf("tier split %d + %d != PruneKills %d",
			st.PruneKillsPushCap, st.PruneKillsLoopBreak, st.PruneKills)
	}
	if st.PruneKillsFlushBound != st.DeferredPairs-st.FlushedPairs {
		t.Fatalf("flush-bound kills %d != deferred %d - flushed %d",
			st.PruneKillsFlushBound, st.DeferredPairs, st.FlushedPairs)
	}
	snap := prog.Snapshot()
	if snap.PruneKillPushCap != st.PruneKillsPushCap ||
		snap.PruneKillLoopBreak != st.PruneKillsLoopBreak ||
		snap.PruneKillFlushBound != st.PruneKillsFlushBound {
		t.Fatalf("snapshot tiers (%d,%d,%d) != Stats tiers (%d,%d,%d)",
			snap.PruneKillPushCap, snap.PruneKillLoopBreak, snap.PruneKillFlushBound,
			st.PruneKillsPushCap, st.PruneKillsLoopBreak, st.PruneKillsFlushBound)
	}
}

// TestProgressShardSkew: sharded runs produce a well-formed skew
// summary in both the Stats aggregate and the snapshot, and the
// summary is deterministic across reruns at a fixed shard count.
func TestProgressShardSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cor, _, c := randomCorpus(t, rng, 60, 80)
	run := func() (Stats, ProgressSnapshot) {
		prog := NewProgress()
		res := JoinAll(cor, c, Options{K: 10, Q: 2, ProbeWorkers: 4, Progress: prog})
		return res.Stats, prog.Snapshot()
	}
	st, snap := run()
	if st.ShardImbalance < 1 {
		t.Fatalf("sharded run has imbalance %v < 1 (min %d max %d)",
			st.ShardImbalance, st.ShardWorkMin, st.ShardWorkMax)
	}
	if st.ShardWorkMin > st.ShardWorkP50 || st.ShardWorkP50 > st.ShardWorkMax {
		t.Fatalf("skew order violated: min %d p50 %d max %d",
			st.ShardWorkMin, st.ShardWorkP50, st.ShardWorkMax)
	}
	if snap.Skew.Shards != 4 {
		t.Fatalf("snapshot skew over %d shards, want 4", snap.Skew.Shards)
	}
	if snap.Skew.WorkMin > snap.Skew.WorkP50 || snap.Skew.WorkP50 > snap.Skew.WorkMax {
		t.Fatalf("snapshot skew order violated: %+v", snap.Skew)
	}
	st2, _ := run()
	if st != st2 {
		t.Fatalf("skew stats not deterministic across reruns:\n%+v\n%+v", st, st2)
	}
}

// TestProgressMidRunSnapshot drives a join on one goroutine and
// snapshots from another: snapshots must be safe concurrently, the
// fraction must stay within [0, 1], and counters must be monotone.
func TestProgressMidRunSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cor, _, c := randomCorpus(t, rng, 120, 150)
	prog := NewProgress()
	done := make(chan struct{})
	go func() {
		defer close(done)
		JoinAll(cor, c, Options{K: 25, Q: 1, ProbeWorkers: 2, Progress: prog})
	}()
	var lastDone int64
	for {
		snap := prog.Snapshot()
		if snap.Fraction < 0 || snap.Fraction > 1 {
			t.Errorf("fraction %v out of [0,1]", snap.Fraction)
		}
		// The fraction itself may dip when a new config starts (the
		// denominator estimate grows), but raw pops only accumulate.
		if snap.ProbesDone < lastDone {
			t.Errorf("probesDone went backwards: %d -> %d", lastDone, snap.ProbesDone)
		}
		lastDone = snap.ProbesDone
		select {
		case <-done:
			final := prog.Snapshot()
			if !final.Done || final.Fraction != 1 {
				t.Fatalf("final snapshot: done=%v fraction=%v", final.Done, final.Fraction)
			}
			return
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// TestProgressNilSafe: the nil tracker is a full no-op — Snapshot
// answers zeros and the hooks never panic.
func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.beginRun(3)
	p.configStarted()
	p.configDone()
	p.finishRun(false)
	if s := p.slot(0); s != nil {
		t.Fatalf("nil Progress returned a slot")
	}
	snap := p.Snapshot()
	if snap.Done || snap.ProbesTotal != 0 || snap.ETASeconds != -1 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
}

// TestProgressSlotSharing: shard indexes at or above the slot cap fold
// into their residue slot instead of walking off the array.
func TestProgressSlotSharing(t *testing.T) {
	p := NewProgress()
	if p.slot(progressShardSlots) != p.slot(0) {
		t.Fatalf("slot %d should alias slot 0", progressShardSlots)
	}
	if p.slot(progressShardSlots+3) != p.slot(3) {
		t.Fatalf("slot %d should alias slot 3", progressShardSlots+3)
	}
}

// TestProgressCancelMark: a cancelled run is flagged in the snapshot.
func TestProgressCancelMark(t *testing.T) {
	p := NewProgress()
	p.beginRun(2)
	p.configStarted()
	p.finishRun(true)
	snap := p.Snapshot()
	if !snap.Done || !snap.Cancelled {
		t.Fatalf("cancelled run: done=%v cancelled=%v", snap.Done, snap.Cancelled)
	}
}

// TestProgressFlushAllocs is the AllocsPerRun twin of the hotalloc
// static gate: the stride flush must not allocate.
func TestProgressFlushAllocs(t *testing.T) {
	p := NewProgress()
	cur := progCursor{slot: p.slot(0)}
	rs := &runStats{}
	allocs := testing.AllocsPerRun(1000, func() {
		rs.prefixEvents += 17
		rs.probesSkipped += 3
		rs.killsPushCap++
		cur.flush(rs, 5, 9)
	})
	if allocs != 0 {
		t.Fatalf("progress flush allocates %v times per run, want 0", allocs)
	}
}

// TestProgressConcurrentFlushers: many goroutines flushing into the
// same and different slots (the Workers > 1, serial-probe shape where
// every config shares slot 0) must race-cleanly accumulate.
func TestProgressConcurrentFlushers(t *testing.T) {
	p := NewProgress()
	p.beginRun(8)
	var wg sync.WaitGroup
	const perG = 100
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p.configStarted()
			slot := p.slot(g % 2)
			slot.probesTotal.Add(perG)
			cur := progCursor{slot: slot}
			rs := &runStats{}
			for i := 0; i < perG; i++ {
				rs.prefixEvents++
				cur.flush(rs, i, i)
			}
			p.configDone()
		}(g)
	}
	wg.Wait()
	p.finishRun(false)
	snap := p.Snapshot()
	if snap.ProbesDone != 8*perG || snap.ProbesTotal != 8*perG {
		t.Fatalf("done/total = %d/%d, want %d/%d", snap.ProbesDone, snap.ProbesTotal, 8*perG, 8*perG)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("%d active slots, want 2", len(snap.Shards))
	}
}
