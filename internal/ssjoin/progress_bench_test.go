package ssjoin

import (
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/datagen"
)

// The paired progress-overhead benchmarks: the same JoinAll workload
// with and without a Progress tracker attached. They exist for the
// blocking CI gate (scripts/progress_overhead_bench.sh pairs each On
// invocation with its Off twin and bounds the median ratio at 5%), so
// their names must keep the On/Off suffix convention the pairing
// script keys on.

var progressBenchState struct {
	cor *Corpus
	c   *blocker.PairSet
}

// progressBenchCorpus builds a mid-sized corpus once per process: big
// enough that a JoinAll runs tens of milliseconds (so the sampled
// progress flushes are exercised thousands of times per iteration),
// small enough that -benchtime .5s still yields several iterations to
// average over.
func progressBenchCorpus(b *testing.B) (*Corpus, *blocker.PairSet) {
	if progressBenchState.cor == nil {
		d := datagen.MustGenerate(datagen.Profile{
			Name: "bench", RowsA: 900, RowsB: 900, Matches: 200,
			VocabSize: 400, Seed: 9, GoldKnown: true,
			Fields: []datagen.FieldSpec{
				{Name: "title", Kind: datagen.FieldPhrase, MinWords: 5, MaxWords: 10, RareWords: 0.5,
					DirtA: datagen.Dirt{Typo: 0.1, WordDrop: 0.1},
					DirtB: datagen.Dirt{Typo: 0.1, WordDrop: 0.1, ExtraWord: 0.1}},
				{Name: "city", Kind: datagen.FieldPool, PoolSize: 12, PoolVariants: 0.3, BVariantProb: 0.3},
				{Name: "age", Kind: datagen.FieldInt, Lo: 18, Hi: 80},
			},
		})
		res, err := config.Generate(d.A, d.B, config.Options{})
		if err != nil {
			b.Fatal(err)
		}
		c, err := blocker.NewAttrEquivalence("city").Block(d.A, d.B)
		if err != nil {
			b.Fatal(err)
		}
		progressBenchState.cor = NewCorpus(d.A, d.B, res)
		progressBenchState.c = c
	}
	return progressBenchState.cor, progressBenchState.c
}

func benchJoinProgress(b *testing.B, track bool) {
	cor, c := progressBenchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh tracker per join, as real callers attach them.
		opt := Options{K: 500, ProbeWorkers: 2}
		if track {
			opt.Progress = NewProgress()
		}
		out := JoinAll(cor, c, opt)
		if len(out.Lists) == 0 {
			b.Fatal("join produced no lists")
		}
	}
}

func BenchmarkJoinProgressOn(b *testing.B)  { benchJoinProgress(b, true) }
func BenchmarkJoinProgressOff(b *testing.B) { benchJoinProgress(b, false) }
