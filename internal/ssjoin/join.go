package ssjoin

import (
	"container/heap"
	"math/bits"
	"slices"
	"strconv"
	"sync/atomic"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/telemetry"
)

// scorer computes the exact similarity of a record pair under the config
// being joined. The joint executor supplies reuse-aware scorers that
// consult the parent's overlap database before falling back to a merge.
type scorer func(a, b int32) float64

// runOpts parameterizes one single-config join run.
type runOpts struct {
	k     int
	q     int // compute a pair's score once it has q common prefix tokens
	m     simfunc.SetMeasure
	c     *blocker.PairSet // blocker output: pairs to exclude (may be nil)
	score scorer
	// seeds are pre-scored pairs (scores already under THIS config,
	// already C-filtered) used to initialize the top-k list.
	seeds []ScoredPair
	// mergeCh optionally delivers a late parent top-k list (adjusted to
	// this config) while the join runs; drained periodically.
	mergeCh <-chan []ScoredPair
	// cancel aborts the run when set (used by the q-selection race).
	cancel *atomic.Bool
	// stats collects this run's event counts (single-goroutine, plain
	// increments). Always non-nil in real runs; runJoin tolerates nil.
	stats *runStats
	// span is this config join's trace span; runJoin opens tokenize /
	// probe / flush child spans under it. Nil disables tracing (all the
	// sub-span calls degrade to no-ops).
	span *telemetry.TraceSpan
}

// Candidate-pair states are packed into a map[int64]int32 to keep the
// join's memory footprint flat on workloads that touch tens of millions of
// pairs (the paper's W-A dataset): non-negative values count common prefix
// instances; the sentinels mark pairs already scored or present in C.
const (
	pairScored     int32 = -1
	pairSuppressed int32 = -2
)

type postings struct {
	a, b []int32
}

// instKey packs a token rank and a duplicate-occurrence number.
func instKey(tok int32, occ int) int64 { return int64(tok)<<4 | int64(occ) }

// instances renders a record's token-instance list under the config:
// entries with popcount(mask∧γ) = m expand into m instances, preserving
// the global rare-first order.
func instances(r *record, m config.Mask) []int64 {
	mm := uint16(m)
	out := make([]int64, 0, len(r.entries))
	for _, e := range r.entries {
		pc := bits.OnesCount16(e.mask & mm)
		for occ := 0; occ < pc; occ++ {
			out = append(out, instKey(e.tok, occ))
		}
	}
	return out
}

// runJoin executes QJoin (Section 4.1) for one config: an event heap pops
// the prefix extension with the highest score cap; each extension joins
// the new token instance against the opposite side's current prefixes via
// an inverted index; pairs are scored exactly once they accumulate q
// common instances; at termination every pending pair whose optimistic
// bound beats the k-th score is scored (the flush that keeps q-deferral
// exact). Pairs present in the blocker output C are tracked but never
// emitted (Definition 2.2 searches D = A×B − C).
func runJoin(cor *Corpus, mask config.Mask, opt runOpts) TopKList {
	if opt.q < 1 {
		opt.q = 1
	}
	if opt.stats == nil {
		opt.stats = &runStats{}
	}
	rs := opt.stats
	nA, nB := len(cor.recsA), len(cor.recsB)
	tokSpan := opt.span.Child("ssjoin.tokenize")
	instA := make([][]int64, nA)
	instB := make([][]int64, nB)
	for i := range cor.recsA {
		instA[i] = instances(&cor.recsA[i], mask)
	}
	for i := range cor.recsB {
		instB[i] = instances(&cor.recsB[i], mask)
	}
	tokSpan.SetAttrInt("records", int64(nA+nB))
	tokSpan.End()
	posA := make([]int32, nA)
	posB := make([]int32, nB)

	top := newTopkHeap(opt.k)
	pairs := make(map[int64]int32)
	index := make(map[int64]*postings)

	admit := func(key int64, a, b int32) {
		pairs[key] = pairScored
		top.offer(ScoredPair{A: a, B: b, Score: opt.score(a, b)})
	}
	// absorb folds a parent config's top-k pairs into this run, rescoring
	// each pair under this config (scores do not transfer across configs;
	// the scorer answers from the parent's overlap DB when reuse is on).
	absorb := func(list []ScoredPair) {
		if len(list) > 0 {
			opt.span.Event("absorb", telemetry.L("pairs", strconv.Itoa(len(list))))
		}
		for _, p := range list {
			key := pairKey(p.A, p.B)
			st, seen := pairs[key]
			if !seen && opt.c.Contains(int(p.A), int(p.B)) {
				pairs[key] = pairSuppressed
				continue
			}
			if st == pairScored || st == pairSuppressed {
				continue
			}
			admit(key, p.A, p.B)
		}
	}
	absorb(opt.seeds)

	var events eventHeap
	push := func(side int8, rec int32) {
		var pos int32
		var l int
		if side == 0 {
			pos, l = posA[rec], len(instA[rec])
		} else {
			pos, l = posB[rec], len(instB[rec])
		}
		if int(pos) >= l {
			return
		}
		cap := opt.m.ExtendCap(int(pos), l)
		if top.full() && cap <= top.kthScore() {
			rs.pruneKills++
			return // this string can never produce a new top-k pair
		}
		heap.Push(&events, event{cap: cap, side: side, rec: rec})
	}
	idxSpan := opt.span.Child("ssjoin.index")
	for i := int32(0); i < int32(nA); i++ {
		push(0, i)
	}
	for i := int32(0); i < int32(nB); i++ {
		push(1, i)
	}
	idxSpan.SetAttrInt("events_seeded", int64(events.Len()))
	idxSpan.End()

	touch := func(a, b int32) {
		key := pairKey(a, b)
		st, seen := pairs[key]
		if !seen && opt.c.Contains(int(a), int(b)) {
			pairs[key] = pairSuppressed
			rs.suppressedPairs++
			return
		}
		if st < 0 {
			return
		}
		st++
		if int(st) >= opt.q {
			admit(key, a, b)
			return
		}
		pairs[key] = st
	}

	probeSpan := opt.span.Child("ssjoin.probe")
	steps := 0
	for events.Len() > 0 {
		if steps++; steps&1023 == 0 {
			if opt.cancel != nil && opt.cancel.Load() {
				probeSpan.Event("cancelled")
				probeSpan.End()
				return top.list(mask)
			}
			if opt.mergeCh != nil {
				select {
				case list := <-opt.mergeCh:
					absorb(list)
				default:
				}
			}
		}
		ev := events.items[0]
		if top.full() && ev.cap <= top.kthScore() {
			rs.pruneKills += int64(events.Len())
			break
		}
		heap.Pop(&events)
		rs.prefixEvents++
		var inst int64
		if ev.side == 0 {
			inst = instA[ev.rec][posA[ev.rec]]
			posA[ev.rec]++
		} else {
			inst = instB[ev.rec][posB[ev.rec]]
			posB[ev.rec]++
		}
		p := index[inst]
		if p == nil {
			p = &postings{}
			index[inst] = p
		}
		if ev.side == 0 {
			for _, rb := range p.b {
				touch(ev.rec, rb)
			}
			p.a = append(p.a, ev.rec)
		} else {
			for _, ra := range p.a {
				touch(ra, ev.rec)
			}
			p.b = append(p.b, ev.rec)
		}
		push(ev.side, ev.rec)
	}
	probeSpan.SetAttrInt("prefix_events", rs.prefixEvents)
	probeSpan.SetAttrInt("prune_kills", rs.pruneKills)
	probeSpan.End()

	// Drain any merge list that arrived after the loop ended.
	if opt.mergeCh != nil {
		select {
		case list := <-opt.mergeCh:
			absorb(list)
		default:
		}
	}

	// Flush: pending pairs (seen < q common instances) may still belong
	// in the top-k; score those whose optimistic bound beats the k-th
	// score. Every uncounted common instance lies beyond at least one
	// final prefix, so overlap <= count + (lx-px) + (ly-py). The pending
	// keys are sorted first: map iteration order is randomized, and the
	// k-th score rises as flushed pairs are admitted, so a deterministic
	// visit order is what makes reruns reproduce the same list (and the
	// same mc_ssjoin_flushed_pairs_total count).
	topkSpan := opt.span.Child("ssjoin.topk")
	pending := make([]int64, 0, len(pairs))
	for key, st := range pairs {
		if st > 0 {
			pending = append(pending, key)
		}
	}
	slices.Sort(pending)
	for _, key := range pending {
		st := pairs[key]
		rs.deferredPairs++
		a := int32(key >> 32)
		b := int32(uint32(key))
		lx, ly := len(instA[a]), len(instB[b])
		oMax := int(st) + (lx - int(posA[a])) + (ly - int(posB[b]))
		if m := min(lx, ly); oMax > m {
			oMax = m
		}
		if top.full() && opt.m.FromOverlap(oMax, lx, ly) <= top.kthScore() {
			continue
		}
		rs.flushedPairs++
		admit(key, a, b)
	}
	topkSpan.SetAttrInt("deferred_pairs", rs.deferredPairs)
	topkSpan.SetAttrInt("flushed_pairs", rs.flushedPairs)
	topkSpan.End()
	return top.list(mask)
}
