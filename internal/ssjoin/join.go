package ssjoin

import (
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/telemetry"
)

// scorer computes the exact similarity of a record pair under the config
// being joined. The joint executor supplies reuse-aware scorers that
// consult the parent's overlap database before falling back to a merge.
type scorer func(a, b int32) float64

// scorerFactory builds a scorer bound to one shard's private runStats.
// Shards run concurrently and runStats increments are plain (non-atomic)
// adds, so every shard needs its own scorer; the factory is how runJoin
// hands each one a scorer wired to the right counter block. Reused state
// behind the scorer (the overlap databases) is internally synchronized.
type scorerFactory func(rs *runStats) scorer

// runOpts parameterizes one single-config join run.
type runOpts struct {
	k     int
	q     int // compute a pair's score once it has q common prefix tokens
	m     simfunc.SetMeasure
	c     *blocker.PairSet // blocker output: pairs to exclude (may be nil)
	score scorerFactory
	// seeds are pre-scored pairs (scores already under THIS config,
	// already C-filtered) used to initialize the top-k list.
	seeds []ScoredPair
	// mergeCh optionally delivers a late parent top-k list (adjusted to
	// this config) while the join runs; drained periodically. The join is
	// exact (see joinShard), so whether and when the list arrives changes
	// only the work done, never the result.
	mergeCh <-chan []ScoredPair
	// cancel aborts the run when set (used by the q-selection race).
	cancel *atomic.Bool
	// stats collects this run's event counts. Always non-nil in real
	// runs; runJoin tolerates nil. With probe sharding the per-shard
	// counts are folded in deterministically after the pool joins.
	stats *runStats
	// span is this config join's trace span; runJoin opens tokenize /
	// index / probe / topk child spans under it (per shard when the probe
	// is sharded). Nil disables tracing (all the sub-span calls degrade
	// to no-ops).
	span *telemetry.TraceSpan
	// probeWorkers bounds the goroutines running probe shards (and the
	// parallel tokenize). <= 1 selects the serial single-shard path. The
	// result is bit-identical for every value; see DESIGN.md "Intra-join
	// parallelism & determinism".
	probeWorkers int
	// probeShards overrides the shard count (0 = one shard per probe
	// worker). Exposed for the metamorphic tests, which prove the shard
	// count is invisible in the output.
	probeShards int
	// prog is the run's live progress tracker; nil disables sampling
	// entirely (the probe loop's only residue is a nil check per stride).
	// The tracker is observe-only — it never feeds back into the join,
	// so attaching it cannot change any output bit.
	prog *Progress
}

// instKey packs a token rank and a duplicate-occurrence number.
func instKey(tok int32, occ int) int64 { return int64(tok)<<4 | int64(occ) }

// instances renders a record's token-instance list under the config:
// entries with popcount(mask∧γ) = m expand into m instances, preserving
// the global rare-first order.
func instances(r *record, m config.Mask) []int64 {
	mm := uint16(m)
	out := make([]int64, 0, len(r.entries))
	for _, e := range r.entries {
		pc := bits.OnesCount16(e.mask & mm)
		for occ := 0; occ < pc; occ++ {
			out = append(out, instKey(e.tok, occ))
		}
	}
	return out
}

// tokenizeInstances materializes both sides' token-instance lists. Each
// record's list is a pure function of the record and the mask, so the
// work parallelizes over contiguous record ranges with no effect on the
// output; workers <= 1 runs inline.
func tokenizeInstances(cor *Corpus, mask config.Mask, workers int) (instA, instB [][]int64) {
	instA = make([][]int64, len(cor.recsA))
	instB = make([][]int64, len(cor.recsB))
	fill := func(lo, hi int) {
		// Records are numbered A first, then B, so one range covers both.
		for i := lo; i < hi; i++ {
			if i < len(instA) {
				instA[i] = instances(&cor.recsA[i], mask)
			} else {
				instB[i-len(instA)] = instances(&cor.recsB[i-len(instA)], mask)
			}
		}
	}
	n := len(instA) + len(instB)
	if workers <= 1 || n < 2*minParallelTokenize {
		fill(0, n)
		return instA, instB
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			fill(lo, hi)
		}()
	}
	wg.Wait()
	return instA, instB
}

// minParallelTokenize is the per-worker record count under which spawning
// tokenize goroutines costs more than it saves.
const minParallelTokenize = 256

// shardView restricts which records seed probe events in one shard. The
// sharded side's records are dealt round-robin (rec mod shards); the
// other side participates fully in every shard, so each candidate pair
// belongs to exactly one shard — the invariant that makes the shard-heap
// merge a disjoint union. The zero view (shards == 0) owns everything.
type shardView struct {
	side   int8 // which side is sharded: 0 = A, 1 = B
	shard  int  // this shard's index
	shards int  // total shard count; <= 1 disables sharding
}

func (v shardView) owns(side int8, rec int32) bool {
	if v.shards <= 1 || side != v.side {
		return true
	}
	return int(rec)%v.shards == v.shard
}

// runJoin executes QJoin (Section 4.1) for one config: an event heap pops
// the prefix extension with the highest score cap; each extension joins
// the new token instance against the opposite side's current prefixes via
// an inverted index; pairs are scored exactly once they accumulate q
// common instances; at termination every pending pair whose optimistic
// bound beats the k-th score is scored (the flush that keeps q-deferral
// exact). Pairs present in the blocker output C are tracked but never
// emitted (Definition 2.2 searches D = A×B − C).
//
// All pruning is strict (a bound must fall below the k-th retained score
// before anything is skipped), so the returned list is the exact top-k of
// D under the total order (score desc, idA asc, idB asc) — a pure
// function of (corpus, mask, k, C, measure). Seeds, mid-run merges, q,
// and the probe worker/shard counts change only how much work the join
// does, never its output; that invariance is what lets runJoin shard the
// probe side across probeWorkers goroutines (one bounded heap per shard,
// merged under the same total order) and still return bytes identical to
// the serial join.
func runJoin(cor *Corpus, mask config.Mask, opt runOpts) TopKList {
	if opt.q < 1 {
		opt.q = 1
	}
	if opt.stats == nil {
		opt.stats = &runStats{}
	}
	if opt.probeWorkers < 1 {
		opt.probeWorkers = 1
	}
	shards := opt.probeShards
	if shards == 0 {
		shards = opt.probeWorkers
	}
	if shards < 1 {
		shards = 1
	}
	nA, nB := len(cor.recsA), len(cor.recsB)
	// Shard the larger side: the unsharded side's prefix events replay in
	// every shard, so replicating the smaller side minimizes the
	// duplicated heap work. Pair touches, scoring, and the flush — the
	// join's real costs — partition with the sharded side.
	side := int8(0)
	sideLen := nA
	if nB > nA {
		side, sideLen = 1, nB
	}
	if shards > sideLen {
		shards = sideLen // empty shards would only replay the other side
	}
	if shards < 1 {
		shards = 1
	}

	tokSpan := opt.span.Child("ssjoin.tokenize")
	instA, instB := tokenizeInstances(cor, mask, opt.probeWorkers)
	tokSpan.SetAttrInt("records", int64(nA+nB))
	tokSpan.End()

	// Dense instance ids are built once per config (the only map work
	// left in the join) and shared read-only by every shard; both probe
	// kernels consume them. Kernel choice is a pure function of the
	// corpus shape (plus the test seam), identical across shards, so the
	// output and the counter stream never depend on it.
	ids := buildDenseInstances(instA, instB)
	useFlat := useFlatProbe(sideLen, nA+nB-sideLen, opt.q)

	opt.prog.configStarted()
	defer opt.prog.configDone()
	if shards <= 1 {
		top := joinShard(opt, shardView{}, ids, useFlat,
			opt.stats, opt.score(opt.stats), opt.seeds, opt.mergeCh,
			opt.span, opt.prog.slot(0))
		return top.list(mask)
	}
	return runJoinSharded(mask, opt, side, shards, ids, useFlat)
}

// runJoinSharded fans one config's probe out over a bounded worker pool:
// each shard runs the full exact join restricted to its slice of the
// sharded side (per-shard posting lists, per-shard top-k heap), and the
// shard heaps are merged under the same total-order tie-break the serial
// insert path uses. Because every shard is exact on its (disjoint) slice
// of the pair space, the merged list is the exact global top-k — bytes
// identical to the serial join for every worker and shard count.
func runJoinSharded(mask config.Mask, opt runOpts, side int8, shards int, ids denseInstances, useFlat bool) TopKList {
	rs := opt.stats
	seeds := opt.seeds
	// Fold an already-delivered parent list into the seeds. Later
	// arrivals are ignored: exactness makes the handoff invisible to the
	// result, so a missed merge costs only the list-reuse speedup.
	if opt.mergeCh != nil {
		select {
		case list := <-opt.mergeCh:
			seeds = append(append([]ScoredPair(nil), seeds...), list...)
		default:
		}
	}
	seedsFor := make([][]ScoredPair, shards)
	for _, p := range seeds {
		rec := p.A
		if side == 1 {
			rec = p.B
		}
		s := int(rec) % shards
		seedsFor[s] = append(seedsFor[s], p)
	}

	heaps := make([]*topkHeap, shards)
	shardStats := make([]runStats, shards)
	workers := opt.probeWorkers
	if workers > shards {
		workers = shards
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				srs := &shardStats[s]
				ssp := opt.span.Child("ssjoin.shard",
					telemetry.L("shard", strconv.Itoa(s)),
					telemetry.L("shards", strconv.Itoa(shards)))
				view := shardView{side: side, shard: s, shards: shards}
				heaps[s] = joinShard(opt, view, ids, useFlat,
					srs, opt.score(srs), seedsFor[s], nil, ssp, opt.prog.slot(s))
				ssp.End()
			}
		}()
	}
	for s := 0; s < shards; s++ {
		jobs <- s
	}
	close(jobs)
	wg.Wait()

	// Fold shard counters in shard-index order — deterministic totals
	// regardless of which worker ran which shard when.
	for s := range shardStats {
		rs.fold(&shardStats[s])
	}
	rs.probeShards += int64(shards)

	// Per-config shard-skew summary: work units are popped prefix
	// events, which partition with the sharded side and so expose any
	// imbalance the round-robin deal left. Deterministic for a fixed
	// shard count — the counts are fold-order-independent per shard.
	works := make([]int64, shards)
	for s := range shardStats {
		works[s] = shardStats[s].prefixEvents
	}
	sk := skewOf(works)
	rs.shardWorkMin = sk.WorkMin
	rs.shardWorkMax = sk.WorkMax
	rs.shardWorkP50 = sk.WorkP50
	rs.shardImbalance = sk.ImbalanceRatio

	msp := opt.span.Child("ssjoin.merge")
	lists := make([][]ScoredPair, shards)
	merged := 0
	for s, h := range heaps {
		lists[s] = h.items
		merged += len(h.items)
		if slot := opt.prog.slot(s); slot != nil {
			slot.mergeOffers.Add(int64(len(h.items)))
		}
	}
	top := mergeTopK(opt.k, lists...)
	rs.shardMergePairs += int64(merged)
	msp.SetAttrInt("pairs", int64(merged))
	msp.SetAttrInt("shards", int64(shards))
	msp.End()
	return top.list(mask)
}

// mergeTopK merges per-shard top-k candidate lists into one bounded heap
// through the same total-order offer path serial inserts use, so the
// merged result never depends on shard order or arrival order. Callers
// guarantee a pair appears in at most one list (shards partition the pair
// space); FuzzMergeTopK checks the merge against serial insertion of the
// concatenated pairs, exact float ties included.
func mergeTopK(k int, lists ...[]ScoredPair) *topkHeap {
	top := newTopkHeap(k)
	for _, l := range lists {
		for _, p := range l {
			top.offer(p)
		}
	}
	return top
}

// joinShard dispatches one shard's exact probe to a kernel: the
// flat-arena kernel (join_flat.go) whenever the dense pair-state table
// fits the memory budget, the map kernel (join_legacy.go) otherwise.
// Both are exact on the shard's (disjoint) slice of the pair space and
// mirror each other's counter stream, so the choice is invisible in the
// output — a property the differential harness enforces by forcing each
// side of the seam in turn.
func joinShard(opt runOpts, view shardView, ids denseInstances, useFlat bool,
	rs *runStats, score scorer, seeds []ScoredPair,
	mergeCh <-chan []ScoredPair, span *telemetry.TraceSpan,
	pc *shardCounters) *topkHeap {
	if useFlat {
		return joinShardFlat(opt, view, ids, rs, score, seeds, mergeCh, span, pc)
	}
	return joinShardLegacy(opt, view, ids, rs, score, seeds, mergeCh, span, pc)
}
