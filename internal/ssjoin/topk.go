package ssjoin

import (
	"sort"

	"matchcatcher/internal/config"
	"matchcatcher/internal/floats"
)

// ScoredPair is a candidate tuple pair with its similarity score under one
// config.
type ScoredPair struct {
	A, B  int32
	Score float64
}

// TopKList is the result of one config's top-k join, sorted by decreasing
// score (ties by pair for determinism).
type TopKList struct {
	Config config.Mask
	Pairs  []ScoredPair
}

func pairKey(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

// topkHeap is a bounded min-heap holding the current top-k pairs; the root
// is the k-th (worst retained) score.
type topkHeap struct {
	k     int
	items []ScoredPair
}

func newTopkHeap(k int) *topkHeap { return &topkHeap{k: k} }

func (h *topkHeap) Len() int { return len(h.items) }
func (h *topkHeap) Less(i, j int) bool {
	// floats.Equal: the exact-tie arm of PR 1's total order over
	// (score, idA, idB); see DESIGN.md "Static Analysis & Invariants".
	if !floats.Equal(h.items[i].Score, h.items[j].Score) {
		return h.items[i].Score < h.items[j].Score
	}
	// Deterministic tie order: larger pair ids are "worse", so equal-score
	// boundaries resolve the same way regardless of arrival order.
	if h.items[i].A != h.items[j].A {
		return h.items[i].A > h.items[j].A
	}
	return h.items[i].B > h.items[j].B
}
func (h *topkHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

// push/up/down replicate container/heap's sift algorithm over the
// concrete element type. container/heap moves elements through
// interface{} methods, boxing every ScoredPair onto the heap at Push;
// these run in the probe inner loop, so the boxing was pure GC pressure.
// Less is a strict total order (score, then ids — no ties), so the sift
// path is uniquely determined and the results are bit-identical to the
// stdlib's.

//mc:hotpath
func (h *topkHeap) push(p ScoredPair) {
	h.items = append(h.items, p)
	h.up(len(h.items) - 1)
}

//mc:hotpath
func (h *topkHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

//mc:hotpath
func (h *topkHeap) down(i0 int) {
	n := len(h.items)
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2 // right child
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}

// kthScore returns the score a new pair must strictly beat to be retained,
// or 0 while the heap is not yet full.
func (h *topkHeap) kthScore() float64 {
	if len(h.items) < h.k {
		return 0
	}
	return h.items[0].Score
}

func (h *topkHeap) full() bool { return len(h.items) >= h.k }

// offer inserts the pair if it belongs in the top-k. Retention is a pure
// function of the offered set, not of arrival order: when a new pair ties
// the k-th score exactly, the pair with the smaller ids wins, matching
// the total order list() sorts by. This keeps identically-seeded runs
// byte-identical even though scoring order varies (flush, list reuse).
//
//mc:hotpath
func (h *topkHeap) offer(p ScoredPair) {
	if p.Score <= 0 {
		return
	}
	if len(h.items) < h.k {
		h.push(p)
		return
	}
	r := h.items[0]
	if p.Score < r.Score {
		return
	}
	if floats.Equal(p.Score, r.Score) && (p.A > r.A || (p.A == r.A && p.B >= r.B)) {
		return
	}
	// Replace the root and re-sift: heap.Fix(h, 0) minus the interface.
	h.items[0] = p
	h.down(0)
}

// list extracts the sorted TopKList.
func (h *topkHeap) list(m config.Mask) TopKList {
	out := make([]ScoredPair, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool {
		if !floats.Equal(out[i].Score, out[j].Score) {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return TopKList{Config: m, Pairs: out}
}

// eventHeap is a max-heap of prefix-extension events, keyed by the cap on
// the score of any new pair the extension can produce (Section 4.1).
type eventHeap struct {
	items []event
}

type event struct {
	cap  float64
	side int8 // 0 = A, 1 = B
	rec  int32
}

func (h *eventHeap) Len() int { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool {
	if !floats.Equal(h.items[i].cap, h.items[j].cap) {
		return h.items[i].cap > h.items[j].cap
	}
	if h.items[i].side != h.items[j].side {
		return h.items[i].side < h.items[j].side
	}
	return h.items[i].rec < h.items[j].rec
}
func (h *eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

// Typed sift operations, same shape as topkHeap's: events are pushed
// and popped once per posting-list extension in the probe loop, and the
// stdlib heap's interface{} methods boxed every event. Less is a strict
// total order (cap, side, rec), so the de-boxed sift is bit-identical.

//mc:hotpath
func (h *eventHeap) push(ev event) {
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

// pop removes and returns the max-cap event (heap.Pop minus the
// interface): swap the root to the end, sift the new root down over the
// shortened prefix, then shrink.
//
//mc:hotpath
func (h *eventHeap) pop() event {
	n := len(h.items) - 1
	h.Swap(0, n)
	h.down(0, n)
	it := h.items[n]
	h.items = h.items[:n]
	return it
}

//mc:hotpath
func (h *eventHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

// down sifts index i0 down within the first n elements (pop shortens
// the live prefix before sifting).
//
//mc:hotpath
func (h *eventHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2 // right child
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}
