package ssjoin

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: topkHeap retains exactly the k highest-scoring pairs (compared
// against a reference sort), for random inputs.
func TestTopkHeapMatchesReferenceSort(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		h := newTopkHeap(k)
		var ref []ScoredPair
		for i, s := range scores {
			if s != s { // scores are never NaN in the join
				continue
			}
			if s < 0 {
				s = -s
			}
			s = math.Mod(s, 1) // wrap into [0,1)
			p := ScoredPair{A: int32(i), B: int32(i), Score: s}
			h.offer(p)
			if s > 0 {
				ref = append(ref, p)
			}
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].Score > ref[j].Score })
		if len(ref) > k {
			ref = ref[:k]
		}
		got := h.list(0).Pairs
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i].Score != ref[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: kthScore is 0 until the heap fills, then equals the smallest
// retained score and never decreases.
func TestTopkHeapKthScoreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	h := newTopkHeap(5)
	prev := 0.0
	for i := 0; i < 200; i++ {
		if h.Len() < 5 && h.kthScore() != 0 {
			t.Fatal("kthScore nonzero before full")
		}
		h.offer(ScoredPair{A: int32(i), B: int32(i), Score: rng.Float64()})
		if h.full() {
			if k := h.kthScore(); k < prev {
				t.Fatalf("kthScore decreased: %g -> %g", prev, k)
			} else {
				prev = k
			}
		}
	}
}

// Property: the event heap pops events in non-increasing cap order.
func TestEventHeapOrder(t *testing.T) {
	f := func(caps []float64) bool {
		var h eventHeap
		for i, c := range caps {
			if c != c { // NaN caps cannot occur; skip them in generation
				continue
			}
			if c < 0 {
				c = -c
			}
			c = math.Mod(c, 1) // wrap into [0,1)
			h.items = append(h.items, event{cap: c, rec: int32(i)})
		}
		initHeap(&h)
		prev := 2.0
		for h.Len() > 0 {
			ev := popEvent(&h)
			if ev.cap > prev {
				return false
			}
			prev = ev.cap
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func initHeap(h *eventHeap) {
	for i := h.Len()/2 - 1; i >= 0; i-- {
		h.down(i, h.Len())
	}
}

func popEvent(h *eventHeap) event { return h.pop() }
