package ssjoin

import "testing"

// The //mc:hotpath contract, checked dynamically: the static half is
// hotalloc (mclint -escapes proves the compiler moves nothing to the
// heap); this half proves it at runtime with the allocation counter.
// Together they pin the de-boxed heap operations at zero allocations —
// the whole point of dropping container/heap's interface{} methods from
// the probe inner loop.

func TestOfferZeroAllocs(t *testing.T) {
	h := newTopkHeap(64)
	// Fill the heap so offer exercises the replace-root + down path.
	for i := int32(0); i < 64; i++ {
		h.offer(ScoredPair{A: i, B: i, Score: 0.1 + float64(i)*0.01})
	}
	if !h.full() {
		t.Fatal("heap should be full")
	}
	var n int32 = 64
	allocs := testing.AllocsPerRun(1000, func() {
		// Strictly improving scores keep every offer on the hot
		// replace path.
		h.offer(ScoredPair{A: n, B: n, Score: 1 + float64(n)*0.01})
		n++
	})
	if allocs != 0 {
		t.Errorf("topkHeap.offer allocated %.1f times per run, want 0", allocs)
	}
}

func TestEventHeapZeroAllocs(t *testing.T) {
	var h eventHeap
	// Pre-grow the backing array; steady-state push/pop in the probe
	// loop runs within capacity.
	h.items = make([]event, 0, 128)
	for i := int32(0); i < 64; i++ {
		h.push(event{cap: float64(i), side: int8(i % 2), rec: i})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.push(event{cap: 0.5, side: 0, rec: 99})
		h.pop()
	})
	if allocs != 0 {
		t.Errorf("eventHeap push+pop allocated %.1f times per run, want 0", allocs)
	}
}
