package ssjoin

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/telemetry"
)

// AutoQ requests the empirical q selection of Section 4.1: QJoin runs for
// q = 1..4 concurrently at k = 50, and the first run to finish decides q.
const AutoQ = -1

// Options tunes the joins.
type Options struct {
	// Ctx, when non-nil, cancels the run: once the context is done every
	// in-flight probe loop aborts at its next cancellation check and
	// JoinAll/JoinOne return promptly. A cancelled run's lists are
	// partial garbage — callers must check Ctx.Err() before using the
	// result (core.New does). This is how a server threads request
	// timeouts into the join without polluting the exact hot path: the
	// cancellation flag is the same atomic the q-selection race uses.
	Ctx context.Context
	// K is the per-config list size (the paper's experiments use 1000).
	K int
	// Measure is the set similarity (default Jaccard, the paper's choice).
	Measure simfunc.SetMeasure
	// Q is the common-token count that triggers exact scoring. 0 selects
	// the default (2); AutoQ runs the empirical selection race; 1
	// reproduces the TopKJoin baseline's eager scoring.
	Q int
	// Workers bounds the number of configs processed concurrently
	// (default GOMAXPROCS). Every single-config join returns the exact
	// top-k of its config under the total order (score desc, idA, idB),
	// so neither Workers nor the list-reuse handoff (seed vs. mid-run
	// merge) can change any output bit: runs are bit-reproducible at
	// every worker count.
	Workers int
	// ProbeWorkers shards the inside of each single-config join across a
	// bounded worker pool (per-shard posting lists and top-k heaps,
	// merged under the same total order). Default 1 (serial probe) —
	// cross-config Workers already saturate cores on full-tree joins;
	// raise ProbeWorkers to cut the latency of a single config's join
	// (the interactive loop's critical path). The output is bit-identical
	// to the serial join for every value; see DESIGN.md "Intra-join
	// parallelism & determinism".
	ProbeWorkers int
	// ReuseMinAvgTokens gates overlap reuse: reuse only pays off for long
	// tuples, so it triggers only when the average tuple length is at
	// least this many tokens (default 20, the paper's t).
	ReuseMinAvgTokens float64
	// DisableScoreReuse and DisableListReuse turn off the two Section 4.2
	// reuse mechanisms (for the §6.5 joint-vs-individual ablation).
	DisableScoreReuse bool
	DisableListReuse  bool
	// Metrics receives the executor's telemetry (counters, per-config
	// join latency, q-race outcome). Nil selects telemetry.Default();
	// telemetry.Disabled() switches instrumentation off.
	Metrics *telemetry.Registry
	// Trace is the parent trace span the executor hangs its per-config
	// spans under (each config join opens an ssjoin.config span with
	// tokenize/index/probe/topk children). Nil disables tracing.
	Trace *telemetry.TraceSpan
	// Provenance records decision lineage (suppression by C, exact score,
	// rank) for its watched pairs under every config joined. Nil or an
	// empty watch-list costs nothing on the hot path: provenance is
	// derived after each config join finishes, never inside it.
	Provenance *telemetry.Provenance
	// Progress, when non-nil, receives live per-shard work counters the
	// probe loops flush every progressStride pops; observers call
	// Progress.Snapshot from any goroutine for completion/ETA/skew
	// estimates while the run is in flight. Observe-only: attaching it
	// never changes an output bit, and its overhead is bounded by the
	// progress-overhead CI gate (<5%, BENCH_progress_overhead.json).
	// One Progress tracks one JoinOne/JoinAll call; the q-selection
	// race's throwaway joins are never tracked.
	Progress *Progress
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 1000
	}
	if o.Q == 0 {
		o.Q = 2
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ProbeWorkers < 1 {
		o.ProbeWorkers = 1
	}
	if o.ReuseMinAvgTokens == 0 {
		o.ReuseMinAvgTokens = 20
	}
	return o
}

// Stats reports how the joint executor behaved, for the ablation benches
// and run reports. It is a per-run view over the same counter stream that
// feeds the telemetry registry (every config join's runStats flushes into
// both), so JoinAll/JoinOne report through one mechanism; the telemetry
// side additionally carries the per-config latency histogram and the
// q-race outcome under the mc_ssjoin_* names.
type Stats struct {
	ScratchScores   int64 // pair scores computed by merging token lists
	ReusedScores    int64 // pair scores answered by a parent's overlap DB (H_γ hits)
	ReuseMisses     int64 // scratch scores taken while a parent H_γ existed
	PrefixEvents    int64 // prefix-extension events processed
	PruneKills      int64 // extensions pruned by the score-cap bound
	DeferredPairs   int64 // pairs still below q common instances at flush time
	FlushedPairs    int64 // deferred pairs the exactness flush had to score
	SuppressedPairs int64 // pairs skipped because they are in C
	ProbeShards     int64 // probe shards executed across configs (0 = serial probes)
	ShardMergePairs int64 // shard-heap pairs offered to the top-k merges
	// Prune-tier split of PruneKills: push-cap kills at event push,
	// event-loop breaks, and flush-bound skips of deferred pairs.
	PruneKillsPushCap    int64
	PruneKillsLoopBreak  int64
	PruneKillsFlushBound int64
	// ShallowBlocker-style strict pair filters (first-touch kills; see
	// the "Flat-arena join kernel" DESIGN.md section). Like
	// PruneKillsFlushBound these count pairs, not prefix extensions, so
	// they are not part of the PruneKills grand total.
	PruneKillsLengthFilter int64
	PruneKillsPrefixPos    int64
	// SkippedInstances counts token instances pruning wrote off unpopped
	// (the complement of PrefixEvents in the progress accounting).
	SkippedInstances int64
	// Shard-skew summary of the worst-imbalance sharded config: per-shard
	// probe work (popped prefix events) min/max/p50 and the max/mean
	// ratio. Zero when every probe ran serially. Deterministic for a
	// fixed Workers × ProbeWorkers, like ProbeShards above.
	ShardWorkMin   int64
	ShardWorkMax   int64
	ShardWorkP50   int64
	ShardImbalance float64
	QUsed          int  // the q QJoin ran with
	ReuseActive    bool // whether the avg-length gate enabled reuse
}

// JoinResult holds one top-k list per config, in the tree's breadth-first
// order, plus executor statistics.
type JoinResult struct {
	Lists []TopKList
	Stats Stats
}

// hdb is one config's overlap database H_γ (Section 4.2): pair key -> the
// attribute-bitmask pairs of the pair's common tokens. Each writer config
// owns its own database; writes are insert-only and reads may race with
// writes (a miss merely falls back to a from-scratch score), which the
// paper handles with an atomic hashmap and we handle with a mutex.
type hdb struct {
	mu sync.RWMutex
	m  map[int64][]maskPair
}

// hdbMaxEntries bounds each overlap database. Reuse is best-effort — a
// miss just means the child scores from scratch — so capping keeps memory
// flat on workloads that score tens of millions of pairs (the paper's W-A)
// while still answering the hot pairs that dominate child joins.
const hdbMaxEntries = 2_000_000

func newHDB() *hdb { return &hdb{m: make(map[int64][]maskPair)} }

func (h *hdb) get(key int64) ([]maskPair, bool) {
	h.mu.RLock()
	v, ok := h.m[key]
	h.mu.RUnlock()
	return v, ok
}

func (h *hdb) put(key int64, v []maskPair) {
	h.mu.Lock()
	if _, dup := h.m[key]; !dup && len(h.m) < hdbMaxEntries {
		h.m[key] = v
	}
	h.mu.Unlock()
}

// makeScorer builds the scorer factory for one config: consult the
// parent's overlap DB first, fall back to a token-list merge, and record
// common token masks into the config's own DB when it has children of its
// own. runJoin instantiates one scorer per probe shard, each bound to
// that shard's private runStats, so the increments stay plain adds; the
// overlap databases behind the scorer are internally synchronized.
func makeScorer(cor *Corpus, mask config.Mask, parentH, ownH *hdb, m simfunc.SetMeasure) scorerFactory {
	return func(rs *runStats) scorer {
		return makeShardScorer(cor, mask, parentH, ownH, m, rs)
	}
}

// makeShardScorer is one shard's scorer, bound to its runStats block.
func makeShardScorer(cor *Corpus, mask config.Mask, parentH, ownH *hdb, m simfunc.SetMeasure, rs *runStats) scorer {
	return func(a, b int32) float64 {
		ra, rb := &cor.recsA[a], &cor.recsB[b]
		lx, ly := ra.lenUnder(mask), rb.lenUnder(mask)
		if lx == 0 || ly == 0 {
			return 0
		}
		key := pairKey(a, b)
		if parentH != nil {
			if mp, ok := parentH.get(key); ok {
				o := 0
				for _, p := range mp {
					o += p.overlapUnder(mask)
				}
				if ownH != nil {
					ownH.put(key, mp)
				}
				rs.reusedScores++
				return m.FromOverlap(o, lx, ly)
			}
			rs.reuseMisses++
		}
		o, mp := overlapUnder(ra, rb, mask, ownH != nil)
		if ownH != nil {
			ownH.put(key, mp)
		}
		rs.scratchScores++
		return m.FromOverlap(o, lx, ly)
	}
}

// watchCancel bridges a context into the join's atomic cancellation
// flag. It returns the flag (nil when ctx is nil: never cancelled) and
// a release func that must be called once the run is over to free the
// watcher goroutine.
func watchCancel(ctx context.Context) (*atomic.Bool, func()) {
	if ctx == nil {
		return nil, func() {}
	}
	flag := &atomic.Bool{}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			flag.Store(true)
		case <-stop:
		}
	}()
	return flag, func() { close(stop) }
}

// JoinOne runs QJoin on a single config with no cross-config reuse; it is
// the per-config unit the joint executor schedules, and doubles as the
// individual-execution baseline of the §6.5 ablation and the single-config
// baseline of [29] when given the root config.
func JoinOne(cor *Corpus, mask config.Mask, c *blocker.PairSet, opt Options) TopKList {
	opt = opt.withDefaults()
	snk := newSink(telemetry.Or(opt.Metrics))
	if opt.Q == AutoQ {
		opt.Q = SelectQ(cor, mask, c, opt)
		snk.recordQ(opt.Q)
	}
	recordSuppressionProvenance(opt.Provenance, c)
	cancel, release := watchCancel(opt.Ctx)
	defer release()
	opt.Progress.beginRun(1)
	defer func() {
		opt.Progress.finishRun(cancel != nil && cancel.Load())
	}()
	rs := &runStats{}
	csp := opt.Trace.Child("ssjoin.config",
		telemetry.L("config", cor.Res.String(mask)),
		telemetry.L("q", strconv.Itoa(opt.Q)))
	start := time.Now()
	list := runJoin(cor, mask, runOpts{
		k:            opt.K,
		q:            opt.Q,
		m:            opt.Measure,
		c:            c,
		score:        makeScorer(cor, mask, nil, nil, opt.Measure),
		cancel:       cancel,
		stats:        rs,
		span:         csp,
		probeWorkers: opt.ProbeWorkers,
		prog:         opt.Progress,
	})
	csp.End()
	snk.record(rs, time.Since(start))
	recordJoinProvenance(opt.Provenance, cor, mask, c, list, opt.Measure)
	return list
}

// SelectQ implements the empirical q selection: QJoin runs for q = 1..4
// concurrently with k = 50; whichever finishes first decides q (the paper
// then keeps that run going; we rerun at full k, which costs one small
// extra join and keeps the scheduler simple).
func SelectQ(cor *Corpus, mask config.Mask, c *blocker.PairSet, opt Options) int {
	opt = opt.withDefaults()
	var cancel atomic.Bool
	var once sync.Once
	winner := 2
	var wg sync.WaitGroup
	for q := 1; q <= 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			// The race's joins are throwaway measurements at k = 50; their
			// runStats stay local so they do not pollute the run counters.
			// They run with a serial probe: the four q arms already occupy
			// one goroutine each, and what the race measures is the serial
			// cost profile of each q.
			rs := &runStats{}
			runJoin(cor, mask, runOpts{
				k:      50,
				q:      q,
				m:      opt.Measure,
				c:      c,
				score:  makeScorer(cor, mask, nil, nil, opt.Measure),
				cancel: &cancel,
				stats:  rs,
			})
			if !cancel.Load() {
				once.Do(func() {
					winner = q
					cancel.Store(true)
				})
			}
		}(q)
	}
	wg.Wait()
	return winner
}

// JoinAll processes every config of the tree jointly (Section 4.2):
// configs are scheduled to workers in breadth-first order; writer configs
// (those with children) populate overlap databases their children reuse;
// a child seeds its top-k list from its parent's finished list, or starts
// empty and merges the parent's list when it arrives mid-run.
func JoinAll(cor *Corpus, c *blocker.PairSet, opt Options) *JoinResult {
	opt = opt.withDefaults()
	snk := newSink(telemetry.Or(opt.Metrics))
	res := &JoinResult{}
	res.Stats.ReuseActive = !opt.DisableScoreReuse && cor.AvgTokens >= opt.ReuseMinAvgTokens

	nodes := cor.Res.Nodes()
	q := opt.Q
	if q == AutoQ {
		q = SelectQ(cor, nodes[0].Mask, c, opt)
		snk.recordQ(q)
	}
	res.Stats.QUsed = q

	recordSuppressionProvenance(opt.Provenance, c)

	cancel, release := watchCancel(opt.Ctx)
	defer release()
	opt.Progress.beginRun(len(nodes))
	defer func() {
		opt.Progress.finishRun(cancel != nil && cancel.Load())
	}()

	idxOf := make(map[*config.Node]int, len(nodes))
	for i, n := range nodes {
		idxOf[n] = i
	}
	lists := make([]TopKList, len(nodes))
	// Per-node runStats survive the pool so the shard-skew summaries can
	// be folded deterministically (node order) after the workers join.
	nodeStats := make([]*runStats, len(nodes))
	done := make([]atomic.Bool, len(nodes))
	dbs := make([]*hdb, len(nodes))
	mergeChs := make([]chan []ScoredPair, len(nodes))
	for i, n := range nodes {
		if len(n.Children) > 0 && res.Stats.ReuseActive {
			dbs[i] = newHDB()
		}
		if n.Parent != nil && !opt.DisableListReuse {
			mergeChs[i] = make(chan []ScoredPair, 1)
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				n := nodes[i]
				var parentH *hdb
				if n.Parent != nil && res.Stats.ReuseActive {
					parentH = dbs[idxOf[n.Parent]]
				}
				rs := &runStats{}
				nodeStats[i] = rs
				csp := opt.Trace.Child("ssjoin.config",
					telemetry.L("config", cor.Res.String(n.Mask)),
					telemetry.L("q", strconv.Itoa(q)))
				ro := runOpts{
					k:            opt.K,
					q:            q,
					m:            opt.Measure,
					c:            c,
					score:        makeScorer(cor, n.Mask, parentH, dbs[i], opt.Measure),
					cancel:       cancel,
					stats:        rs,
					span:         csp,
					probeWorkers: opt.ProbeWorkers,
					prog:         opt.Progress,
				}
				if n.Parent != nil && !opt.DisableListReuse {
					if pi := idxOf[n.Parent]; done[pi].Load() {
						ro.seeds = lists[pi].Pairs
						csp.SetAttr("list_reuse", "seed")
					} else {
						ro.mergeCh = mergeChs[i]
						csp.SetAttr("list_reuse", "merge")
					}
				}
				start := time.Now()
				lists[i] = runJoin(cor, n.Mask, ro)
				csp.SetAttrInt("scratch_scores", rs.scratchScores)
				csp.SetAttrInt("reused_scores", rs.reusedScores)
				csp.End()
				snk.record(rs, time.Since(start))
				res.Stats.add(rs)
				recordJoinProvenance(opt.Provenance, cor, n.Mask, c, lists[i], opt.Measure)
				done[i].Store(true)
				for _, ch := range n.Children {
					ci := idxOf[ch]
					if mergeChs[ci] == nil {
						continue
					}
					select {
					case mergeChs[ci] <- lists[i].Pairs:
					default:
					}
				}
			}
		}()
	}
	for i := range nodes {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Skew summaries merge after the pool joins, in node order, keeping
	// the worst-imbalance config — deterministic however the workers
	// interleaved.
	for _, rs := range nodeStats {
		if rs != nil {
			res.Stats.mergeSkew(rs)
		}
	}
	res.Lists = lists
	return res
}

// BruteForce computes a config's exact top-k list by scoring every pair
// not in C — the reference implementation the property tests compare
// QJoin against, and a usable fallback for tiny tables.
func BruteForce(cor *Corpus, mask config.Mask, c *blocker.PairSet, k int, m simfunc.SetMeasure) TopKList {
	top := newTopkHeap(k)
	for a := range cor.recsA {
		ra := &cor.recsA[a]
		lx := ra.lenUnder(mask)
		if lx == 0 {
			continue
		}
		for b := range cor.recsB {
			if c.Contains(a, b) {
				continue
			}
			rb := &cor.recsB[b]
			ly := rb.lenUnder(mask)
			if ly == 0 {
				continue
			}
			o, _ := overlapUnder(ra, rb, mask, false)
			top.offer(ScoredPair{A: int32(a), B: int32(b), Score: m.FromOverlap(o, lx, ly)})
		}
	}
	return top.list(mask)
}
