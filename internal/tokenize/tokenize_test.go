package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"  Dave   SMITH ", "dave smith"},
		{"New\tYork\nNY", "new york ny"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Dave Smith", []string{"dave", "smith"}},
		{"O'Brien, J.R.", []string{"o", "brien", "j", "r"}},
		{"  x  ", []string{"x"}},
		{"MP3 player v2", []string{"mp3", "player", "v2"}},
		{"---", nil},
	}
	for _, c := range cases {
		if got := Words(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWordSetDedups(t *testing.T) {
	got := WordSet("the cat and the hat")
	want := []string{"the", "cat", "and", "hat"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WordSet = %v, want %v", got, want)
	}
}

func TestQGrams(t *testing.T) {
	if got := QGrams("", 3); got != nil {
		t.Errorf("QGrams empty = %v", got)
	}
	if got, want := QGrams("ab", 3), []string{"ab"}; !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams short = %v, want %v", got, want)
	}
	if got, want := QGrams("ABCD", 3), []string{"abc", "bcd"}; !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams = %v, want %v", got, want)
	}
	if got, want := QGramSet("aaaa", 3), []string{"aaa"}; !reflect.DeepEqual(got, want) {
		t.Errorf("QGramSet = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("QGrams with q=0 should panic")
		}
	}()
	QGrams("x", 0)
}

func TestQGramsUnicode(t *testing.T) {
	got := QGrams("日本語x", 3)
	want := []string{"日本語", "本語x"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams unicode = %v, want %v", got, want)
	}
}

func TestFirstLastWord(t *testing.T) {
	if got := LastWord("Dave Smith"); got != "smith" {
		t.Errorf("LastWord = %q", got)
	}
	if got := FirstWord("Dave Smith"); got != "dave" {
		t.Errorf("FirstWord = %q", got)
	}
	if LastWord("") != "" || FirstWord("  ") != "" {
		t.Error("empty-string words should be empty")
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("word")
	if !ok || w.Name() != "word" {
		t.Errorf("ByName(word) = %v,%v", w, ok)
	}
	g, ok := ByName("3gram")
	if !ok || g.Name() != "3gram" {
		t.Errorf("ByName(3gram) = %v,%v", g, ok)
	}
	if got := g.Tokens("abcd"); !reflect.DeepEqual(got, []string{"abc", "bcd"}) {
		t.Errorf("3gram tokens = %v", got)
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName(bogus) should fail")
	}
}

// Property: every token Words returns is non-empty, lowercase, and appears
// in the lowercased input; tokens contain no separator characters.
func TestWordsProperties(t *testing.T) {
	f := func(s string) bool {
		low := strings.ToLower(s)
		for _, tok := range Words(s) {
			if tok == "" || tok != strings.ToLower(tok) {
				return false
			}
			if !strings.Contains(low, tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WordSet returns distinct tokens and a subset of Words.
func TestWordSetProperties(t *testing.T) {
	f := func(s string) bool {
		set := WordSet(s)
		seen := map[string]bool{}
		for _, tok := range set {
			if seen[tok] {
				return false
			}
			seen[tok] = true
		}
		for _, tok := range Words(s) {
			if !seen[tok] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: number of q-grams of a normalized string of rune length n>q is
// n-q+1, and every gram has rune length q.
func TestQGramsProperties(t *testing.T) {
	f := func(s string) bool {
		const q = 3
		n := []rune(Normalize(s))
		grams := QGrams(s, q)
		if len(n) == 0 {
			return grams == nil
		}
		if len(n) <= q {
			return len(grams) == 1
		}
		if len(grams) != len(n)-q+1 {
			return false
		}
		for _, g := range grams {
			if len([]rune(g)) != q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
