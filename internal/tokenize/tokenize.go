// Package tokenize provides the string tokenizers used by blockers and by
// the top-k string similarity join: whitespace/punctuation word tokens and
// character q-grams, with optional normalization.
package tokenize

import (
	"strings"
	"unicode"
)

// Normalize lowercases s and collapses runs of whitespace into single
// spaces. Blockers and the SSJ normalize values before tokenizing so that
// case noise does not defeat set-based similarity (the paper's Table 4
// lists "input tables are not lower-cased" as a real blocker problem the
// debugger surfaced; the debugger itself is robust to it).
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Words splits s into word tokens: maximal runs of letters and digits,
// lowercased. Punctuation separates tokens ("O'Brien" -> ["o", "brien"]).
func Words(s string) []string {
	var toks []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, lower[start:])
	}
	return toks
}

// WordSet returns the distinct word tokens of s in first-occurrence order.
func WordSet(s string) []string {
	return dedup(Words(s))
}

// QGrams returns the character q-grams of the normalized form of s,
// including duplicates, in order. Strings shorter than q yield a single
// gram holding the whole string (if non-empty). q must be positive.
func QGrams(s string, q int) []string {
	if q <= 0 {
		panic("tokenize: QGrams requires q > 0")
	}
	n := Normalize(s)
	if n == "" {
		return nil
	}
	runes := []rune(n)
	if len(runes) <= q {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+q]))
	}
	return grams
}

// QGramSet returns the distinct q-grams of s in first-occurrence order.
func QGramSet(s string, q int) []string {
	return dedup(QGrams(s, q))
}

// LastWord returns the final word token of s, or "" if s has none. It
// backs hash blockers such as lastword(a.Name) = lastword(b.Name) from the
// paper's running example.
func LastWord(s string) string {
	w := Words(s)
	if len(w) == 0 {
		return ""
	}
	return w[len(w)-1]
}

// FirstWord returns the first word token of s, or "" if s has none.
func FirstWord(s string) string {
	w := Words(s)
	if len(w) == 0 {
		return ""
	}
	return w[0]
}

// A Tokenizer converts a string into tokens. The two standard tokenizers
// are word-level and 3-gram; blocker predicates name them "word" and
// "3gram" (Table 2 of the paper).
type Tokenizer interface {
	// Tokens returns the token set (distinct tokens) of s.
	Tokens(s string) []string
	// Name returns the tokenizer's name as used in blocker expressions.
	Name() string
}

// WordTokenizer tokenizes into distinct word tokens.
type WordTokenizer struct{}

// Tokens implements Tokenizer.
func (WordTokenizer) Tokens(s string) []string { return WordSet(s) }

// Name implements Tokenizer.
func (WordTokenizer) Name() string { return "word" }

// QGramTokenizer tokenizes into distinct character q-grams.
type QGramTokenizer struct{ Q int }

// Tokens implements Tokenizer.
func (g QGramTokenizer) Tokens(s string) []string { return QGramSet(s, g.Q) }

// Name implements Tokenizer.
func (g QGramTokenizer) Name() string {
	switch g.Q {
	case 3:
		return "3gram"
	default:
		return "qgram"
	}
}

// ByName returns the tokenizer for a name used in blocker expressions:
// "word" or "3gram" (or "qgram", an alias for 3-gram). It returns false
// for unknown names.
func ByName(name string) (Tokenizer, bool) {
	switch name {
	case "word":
		return WordTokenizer{}, true
	case "3gram", "qgram":
		return QGramTokenizer{Q: 3}, true
	}
	return nil, false
}

func dedup(toks []string) []string {
	if len(toks) < 2 {
		return toks
	}
	seen := make(map[string]struct{}, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
