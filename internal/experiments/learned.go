package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
)

// LearnedRow reports one §6.2 learned-blocker debugging session on the
// Papers dataset: the rules the learner picked and the killed-off matches
// MatchCatcher surfaced in 5 iterations (the paper found 76, 61, and 65
// for its three crowdsource-trained blockers).
type LearnedRow struct {
	SampleID     int
	Rules        []string
	C            int
	MatchesFound int
	TopProblems  []string
}

// learnerPool is the candidate rule space the greedy learner searches —
// equality rules plus thresholded similarity rules over the Papers schema.
func learnerPool() []*blocker.Rule {
	keep := blocker.MustParseKeepRule
	return []*blocker.Rule{
		keep("eq-title", "attr_equal_title"),
		keep("eq-authors", "attr_equal_authors"),
		keep("eq-venue-year", "attr_equal_venue AND attr_equal_year"),
		keep("title-cos-05", "title_cos_word>=0.5"),
		keep("title-cos-06", "title_cos_word>=0.6"),
		keep("title-cos-07", "title_cos_word>=0.7"),
		keep("title-cos-08", "title_cos_word>=0.8"),
		keep("authors-jac-04", "authors_jac_word>=0.4"),
		keep("authors-jac-06", "authors_jac_word>=0.6"),
		keep("title-ov-2", "title_overlap_word>=2"),
		keep("title-ov-3", "title_overlap_word>=3"),
	}
}

// drawSample simulates one crowdsourced labeled sample: nPos gold matches
// and nNeg random non-matches.
func drawSample(d *datagen.Dataset, nPos, nNeg int, seed int64) []blocker.LabeledPair {
	rng := rand.New(rand.NewSource(seed))
	gold := d.Gold.SortedPairs()
	rng.Shuffle(len(gold), func(i, j int) { gold[i], gold[j] = gold[j], gold[i] })
	var sample []blocker.LabeledPair
	for i := 0; i < nPos && i < len(gold); i++ {
		sample = append(sample, blocker.LabeledPair{A: gold[i].A, B: gold[i].B, Match: true})
	}
	for len(sample) < nPos+nNeg {
		a, b := rng.Intn(d.A.NumRows()), rng.Intn(d.B.NumRows())
		if d.Gold.Contains(a, b) {
			continue
		}
		sample = append(sample, blocker.LabeledPair{A: a, B: b, Match: false})
	}
	return sample
}

// RunLearned learns nBlockers blockers on independent samples of the
// Papers dataset and debugs each for five verifier iterations.
func (e *Env) RunLearned(nBlockers int, opt DebugOptions) ([]LearnedRow, error) {
	d, err := e.Dataset("Papers")
	if err != nil {
		return nil, err
	}
	var rows []LearnedRow
	for i := 0; i < nBlockers; i++ {
		sample := drawSample(d, 150, 150, opt.Seed+int64(100+i))
		learned, err := blocker.Learn(fmt.Sprintf("papers-learned-%d", i+1),
			d.A, d.B, sample, learnerPool(), 3, 0.02)
		if err != nil {
			return rows, err
		}
		c, err := learned.Block(d.A, d.B)
		if err != nil {
			return rows, err
		}
		copt := opt.core()
		copt.Verifier.MaxIterations = 5
		dbg, err := core.New(d.A, d.B, c, copt)
		if err != nil {
			return rows, err
		}
		u := oracle.New(d.Gold, 0, opt.Seed+int64(200+i))
		res := dbg.Run(u.Label)
		var ruleNames []string
		for _, m := range learned.Members {
			ruleNames = append(ruleNames, m.Name())
		}
		rows = append(rows, LearnedRow{
			SampleID:     i + 1,
			Rules:        ruleNames,
			C:            c.Len(),
			MatchesFound: len(res.Matches),
			TopProblems:  dbg.TopProblems(res.Matches, 3),
		})
	}
	return rows, nil
}

// LearnedBlockers returns the learned blockers themselves (for Figure 9's
// Papers sweep, which reruns them at several dataset sizes).
func (e *Env) LearnedBlockers(n int, seed int64) ([]Spec, error) {
	d, err := e.Dataset("Papers")
	if err != nil {
		return nil, err
	}
	var specs []Spec
	for i := 0; i < n; i++ {
		sample := drawSample(d, 150, 150, seed+int64(100+i))
		learned, err := blocker.Learn(fmt.Sprintf("papers-learned-%d", i+1),
			d.A, d.B, sample, learnerPool(), 3, 0.02)
		if err != nil {
			return nil, err
		}
		specs = append(specs, Spec{Dataset: "Papers", Label: fmt.Sprintf("R%d", i+1), Blocker: learned})
	}
	return specs, nil
}

// FormatLearned renders the learned-blocker rows.
func FormatLearned(rows []LearnedRow) string {
	t := &metrics.Table{Headers: []string{"blocker", "rules", "C", "matches (5 iters)", "problems"}}
	for _, r := range rows {
		t.Add(fmt.Sprintf("R%d", r.SampleID), strings.Join(r.Rules, " OR "), r.C,
			r.MatchesFound, strings.Join(r.TopProblems, "; "))
	}
	return t.String()
}
