package experiments

import (
	"strings"
	"testing"
)

// Experiments run at a small scale in tests; the full-scale runs are
// driven by cmd/mcbench and the root benchmarks.
func smallEnv() *Env { return NewEnv(0.08) }

func TestEnvCachesDatasets(t *testing.T) {
	e := smallEnv()
	d1, err := e.Dataset("F-Z")
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := e.Dataset("F-Z")
	if d1 != d2 {
		t.Error("dataset not cached")
	}
	if _, err := e.Dataset("nope"); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestTable2BlockersCoverPaper(t *testing.T) {
	specs := Table2Blockers()
	if len(specs) != 25 {
		t.Fatalf("specs = %d, want 25", len(specs))
	}
	byDataset := map[string]int{}
	for _, s := range specs {
		byDataset[s.Dataset]++
	}
	want := map[string]int{"A-G": 4, "W-A": 4, "A-D": 4, "F-Z": 4, "M1": 4, "M2": 5}
	for ds, n := range want {
		if byDataset[ds] != n {
			t.Errorf("%s: %d blockers, want %d", ds, byDataset[ds], n)
		}
	}
	if got := len(SpecsFor("M2")); got != 5 {
		t.Errorf("SpecsFor(M2) = %d", got)
	}
}

func TestRunTable1(t *testing.T) {
	e := smallEnv()
	rows, err := e.RunTable1([]string{"F-Z", "Papers"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Attrs != 7 || rows[0].Matches <= 0 {
		t.Errorf("F-Z row = %+v", rows[0])
	}
	if rows[1].Matches != -1 {
		t.Errorf("Papers matches should be unknown, got %d", rows[1].Matches)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "unknown") || !strings.Contains(out, "F-Z") {
		t.Errorf("format:\n%s", out)
	}
}

func TestRunTable3RowFZ(t *testing.T) {
	e := NewEnv(1) // F-Z is tiny even at full scale
	var spec Spec
	for _, s := range SpecsFor("F-Z") {
		if s.Label == "HASH" {
			spec = s
		}
	}
	row, err := e.RunTable3Row(spec, DebugOptions{K: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if row.C == 0 {
		t.Error("C empty")
	}
	if row.MD <= 0 {
		t.Errorf("M_D = %d; the city hash blocker should kill some matches", row.MD)
	}
	if row.ME <= 0 || row.ME > row.MD {
		t.Errorf("M_E = %d of M_D %d", row.ME, row.MD)
	}
	if row.F <= 0 || row.F > row.ME {
		t.Errorf("F = %d of M_E %d", row.F, row.ME)
	}
	if row.I <= 0 {
		t.Errorf("I = %d", row.I)
	}
	out := FormatTable3([]Table3Row{row})
	if !strings.Contains(out, "F-Z") || !strings.Contains(out, "HASH") {
		t.Errorf("format:\n%s", out)
	}
}

func TestRunTable4(t *testing.T) {
	e := smallEnv()
	specs := Table4Specs()
	if len(specs) != 5 {
		t.Fatalf("table 4 specs = %d", len(specs))
	}
	row, err := e.RunTable4Row(specs[3], 3, DebugOptions{K: 100, Seed: 2}) // F-Z R
	if err != nil {
		t.Fatal(err)
	}
	if row.Iters == 0 || row.Iters > 3 {
		t.Errorf("iters = %d", row.Iters)
	}
	if row.LabelTime <= 0 {
		t.Error("label time missing")
	}
	out := FormatTable4([]Table4Row{row})
	if !strings.Contains(out, "mins") {
		t.Errorf("format:\n%s", out)
	}
}

func TestRunHashDebugImprovesRecall(t *testing.T) {
	e := NewEnv(1)
	var spec Spec
	for _, s := range BestHashBlockers() {
		if s.Dataset == "F-Z" {
			spec = s
		}
	}
	row, err := e.RunHashDebug(spec, DebugOptions{K: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if row.RecallAfter < row.RecallBefore {
		t.Errorf("repair decreased recall: %.3f -> %.3f", row.RecallBefore, row.RecallAfter)
	}
	if row.Rounds > 0 && len(row.AddedRules) == 0 {
		t.Error("rounds ran but no rules recorded")
	}
	out := FormatHashDebug([]HashDebugRow{row})
	if !strings.Contains(out, "F-Z") {
		t.Errorf("format:\n%s", out)
	}
}

func TestRunLearned(t *testing.T) {
	e := smallEnv()
	rows, err := e.RunLearned(2, DebugOptions{K: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Rules) == 0 || r.C == 0 {
			t.Errorf("degenerate learned row %+v", r)
		}
	}
	specs, err := e.LearnedBlockers(2, 4)
	if err != nil || len(specs) != 2 {
		t.Fatalf("LearnedBlockers: %v %d", err, len(specs))
	}
	out := FormatLearned(rows)
	if !strings.Contains(out, "R1") {
		t.Errorf("format:\n%s", out)
	}
}

func TestRunFig9SmallSweep(t *testing.T) {
	e := NewEnv(0.02)
	specs := SpecsFor("M2")[:1]
	points, err := e.RunFig9("M2", specs, []int{50}, []int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Seconds < 0 || p.K != 50 {
			t.Errorf("point = %+v", p)
		}
	}
	out := FormatFig9(points)
	if !strings.Contains(out, "50%") {
		t.Errorf("format:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	e := NewEnv(1)
	spec := SpecsFor("F-Z")[1] // HASH

	mc, err := e.RunMultiConfigAblation([]Spec{spec}, DebugOptions{K: 150})
	if err != nil {
		t.Fatal(err)
	}
	if mc[0].MEMulti < mc[0].MESingle {
		t.Errorf("multi-config found fewer matches: %+v", mc[0])
	}
	if s := FormatMultiConfig(mc); !strings.Contains(s, "F-Z") {
		t.Errorf("format:\n%s", s)
	}

	la, err := e.RunLongAttrAblation([]Spec{spec}, DebugOptions{K: 150})
	if err != nil {
		t.Fatal(err)
	}
	if la[0].MEHandled < 0 || la[0].MD < 0 {
		t.Errorf("long attr row = %+v", la[0])
	}
	_ = FormatLongAttr(la)

	jt, err := e.RunJointAblation([]Spec{spec}, DebugOptions{K: 150})
	if err != nil {
		t.Fatal(err)
	}
	if jt[0].ConfigsRun == 0 || jt[0].JointSec < 0 {
		t.Errorf("joint row = %+v", jt[0])
	}
	_ = FormatJoint(jt)

	vr, err := e.RunVerifierAblation([]Spec{spec}, 5, DebugOptions{K: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if vr[0].FoundAL < 0 || vr[0].FoundWMR < 0 {
		t.Errorf("verifier row = %+v", vr[0])
	}
	_ = FormatVerifierAblation(vr)

	sk, err := e.RunSensitivityK(spec, []int{50, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(sk) != 2 || sk[1].ME < sk[0].ME {
		t.Errorf("k sweep not monotone: %+v", sk)
	}
	_ = FormatSensitivityK(sk)

	sa, err := e.RunSensitivityAL(spec, []int{0, 3}, 6, DebugOptions{K: 150, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 2 {
		t.Errorf("AL sweep = %+v", sa)
	}
	_ = FormatSensitivityAL(sa)
}
