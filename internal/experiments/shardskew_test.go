package experiments

import "testing"

func TestRunShardSkew(t *testing.T) {
	// Full scale: the SKEW profile is already small (2000 x 400), and
	// scaling it down would shed the handful of monster records the
	// experiment exists to observe.
	e := NewEnv(1)
	points, err := e.RunShardSkew(ShardSkewSpec(), 500, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	one, four := points[0], points[1]
	if one.Shards != 1 || four.Shards != 4 {
		t.Fatalf("shard counts = %d, %d", one.Shards, four.Shards)
	}
	if len(one.ShardWork) != 1 || len(four.ShardWork) != 4 {
		t.Fatalf("shard work lengths = %d, %d", len(one.ShardWork), len(four.ShardWork))
	}
	// The single-shard run is balanced by definition; the 4-shard run
	// must see the monster records' lumpy placement.
	if one.Imbalance != 1 {
		t.Errorf("1-shard imbalance = %g, want 1", one.Imbalance)
	}
	if four.Imbalance < 1.05 {
		t.Errorf("4-shard imbalance = %g; SKEW profile should produce real skew", four.Imbalance)
	}
	if four.WorkMin > four.WorkP50 || four.WorkP50 > four.WorkMax {
		t.Errorf("work order stats out of order: %d/%d/%d", four.WorkMin, four.WorkP50, four.WorkMax)
	}
	for i, w := range four.ShardWork {
		if w <= 0 {
			t.Errorf("shard %d did no work", i)
		}
	}
	if FormatShardSkew(points) == "" {
		t.Error("empty table")
	}
}
