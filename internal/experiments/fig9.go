package experiments

import (
	"fmt"
	"time"

	"matchcatcher/internal/config"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/ssjoin"
)

// Fig9Point is one measurement of Figure 9: the top-k module's runtime
// for one dataset fraction, blocker, and k.
type Fig9Point struct {
	Dataset string
	Blocker string
	K       int
	Pct     int // dataset percentage (10..100)
	Seconds float64
}

// RunFig9 sweeps the top-k module's runtime over dataset fractions (the
// paper's 10%..100%) for the given blockers and k values. Timing covers
// the joint top-k joins only — config generation and corpus building are
// separate pipeline stages (§6.4 times "the top-k module").
func (e *Env) RunFig9(dataset string, specs []Spec, ks []int, pcts []int) ([]Fig9Point, error) {
	base, err := profileByName(dataset)
	if err != nil {
		return nil, err
	}
	if e.Scale != 1 {
		base = base.Scaled(e.Scale)
	}
	var points []Fig9Point
	for _, pct := range pcts {
		prof := base.Scaled(float64(pct) / 100)
		d, err := datagen.Generate(prof)
		if err != nil {
			return nil, err
		}
		res, err := config.Generate(d.A, d.B, config.Options{})
		if err != nil {
			return nil, err
		}
		cor := ssjoin.NewCorpus(d.A, d.B, res)
		for _, s := range specs {
			c, err := s.Blocker.Block(d.A, d.B)
			if err != nil {
				return nil, err
			}
			for _, k := range ks {
				start := time.Now()
				ssjoin.JoinAll(cor, c, ssjoin.Options{K: k})
				points = append(points, Fig9Point{
					Dataset: dataset, Blocker: s.Label, K: k, Pct: pct,
					Seconds: time.Since(start).Seconds(),
				})
			}
		}
	}
	return points, nil
}

// FormatFig9 renders the sweep as one series per (blocker, k).
func FormatFig9(points []Fig9Point) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Blocker", "k", "pct", "runtime(s)"}}
	for _, p := range points {
		t.Add(p.Dataset, p.Blocker, p.K, fmt.Sprintf("%d%%", p.Pct), fmt.Sprintf("%.2f", p.Seconds))
	}
	return t.String()
}
