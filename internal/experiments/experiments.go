// Package experiments regenerates every table and figure of the paper's
// Section 6 evaluation on the synthetic Table-1-shaped datasets: Table 3
// (accuracy retrieving killed-off matches), Table 4 (first iterations and
// explanations), the §6.2 hash-blocker and learned-blocker debugging
// studies, Figure 9 (top-k module scaling), and the §6.5 ablations and
// sensitivity analyses.
package experiments

import (
	"fmt"
	"sync"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/datagen"
)

// Env caches generated datasets and blocker outputs so that sweeps over
// many blockers and k values do not regenerate or reblock. Scale < 1
// shrinks every profile (rows and matches) for quick runs; results keep
// the paper's shape at reduced size.
type Env struct {
	Scale float64

	mu       sync.Mutex
	datasets map[string]*datagen.Dataset
	outputs  map[string]*blocker.PairSet
}

// NewEnv creates an experiment environment at the given scale (1 = the
// profiles' recorded sizes).
func NewEnv(scale float64) *Env {
	if scale <= 0 {
		scale = 1
	}
	return &Env{
		Scale:    scale,
		datasets: map[string]*datagen.Dataset{},
		outputs:  map[string]*blocker.PairSet{},
	}
}

// profileByName returns the named Table-1 profile, or the synthetic
// SKEW profile used by the shard-skew experiment.
func profileByName(name string) (datagen.Profile, error) {
	for _, p := range datagen.AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	if name == "SKEW" {
		return datagen.Skewed(), nil
	}
	return datagen.Profile{}, fmt.Errorf("experiments: unknown dataset %q", name)
}

// Dataset returns (generating and caching) the named dataset at the
// environment's scale.
func (e *Env) Dataset(name string) (*datagen.Dataset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.datasets[name]; ok {
		return d, nil
	}
	p, err := profileByName(name)
	if err != nil {
		return nil, err
	}
	if e.Scale != 1 {
		p = p.Scaled(e.Scale)
	}
	d, err := datagen.Generate(p)
	if err != nil {
		return nil, err
	}
	e.datasets[name] = d
	return d, nil
}

// Block returns (computing and caching) the blocker's output on the named
// dataset.
func (e *Env) Block(dataset string, q blocker.Blocker) (*datagen.Dataset, *blocker.PairSet, error) {
	d, err := e.Dataset(dataset)
	if err != nil {
		return nil, nil, err
	}
	key := dataset + "/" + q.Name()
	e.mu.Lock()
	c, ok := e.outputs[key]
	e.mu.Unlock()
	if ok {
		return d, c, nil
	}
	c, err = q.Block(d.A, d.B)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: blocking %s with %s: %w", dataset, q.Name(), err)
	}
	e.mu.Lock()
	e.outputs[key] = c
	e.mu.Unlock()
	return d, c, nil
}
