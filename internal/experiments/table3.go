package experiments

import (
	"fmt"
	"time"

	"matchcatcher/internal/core"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/telemetry"
)

// Table3Row is one row of the paper's Table 3: for one dataset and
// blocker, the candidate-set size C, the killed-off matches M_D, the
// candidate pool |E| (union of top-k lists), the matches in E (M_E), the
// matches the verifier retrieves when run to its natural stopping point
// with a synthetic user (F), and the iterations it needed (I).
type Table3Row struct {
	Dataset string
	Blocker string
	C       int
	MD      int
	E       int
	ME      int
	F       int
	I       int
	// TopKTime is the joint top-k module's runtime (the §6.4 numbers).
	TopKTime time.Duration
}

// DebugOptions bundles the pipeline options for experiment runs.
type DebugOptions struct {
	K            int // per-config top-k (paper: 1000)
	N            int // pairs per verifier iteration (paper: 20)
	Seed         int64
	VerifierMode ranker.Mode
	// ProbeWorkers bounds the goroutines inside each single-config join
	// (ssjoin.Options.ProbeWorkers). Any value produces bit-identical
	// results; it changes only wall time.
	ProbeWorkers int
	// Trace, when non-nil, collects every debug session's span tree
	// (mcbench -trace-out); sessions from different rows land as sibling
	// trees in one tracer.
	Trace *telemetry.Tracer
}

func (o DebugOptions) core() core.Options {
	opt := core.Options{}
	opt.Join.K = o.K
	opt.Join.ProbeWorkers = o.ProbeWorkers
	opt.Verifier.N = o.N
	opt.Verifier.Seed = o.Seed + 7
	opt.Verifier.Mode = o.VerifierMode
	opt.Trace = o.Trace
	return opt
}

// RunTable3Row debugs one blocker and computes its Table 3 row.
func (e *Env) RunTable3Row(s Spec, opt DebugOptions) (Table3Row, error) {
	d, c, err := e.Block(s.Dataset, s.Blocker)
	if err != nil {
		return Table3Row{}, err
	}
	row := Table3Row{Dataset: s.Dataset, Blocker: s.Label, C: c.Len()}
	row.MD = d.GoldCount() - metrics.Intersection(d.Gold, c)

	start := time.Now()
	dbg, err := core.New(d.A, d.B, c, opt.core())
	if err != nil {
		return Table3Row{}, fmt.Errorf("debugging %s/%s: %w", s.Dataset, s.Label, err)
	}
	row.TopKTime = time.Since(start)
	eSet := dbg.Candidates()
	row.E = eSet.Len()
	row.ME = metrics.Intersection(d.Gold, eSet)

	u := oracle.New(d.Gold, 0, opt.Seed+13)
	res := dbg.Run(u.Label)
	row.F = len(res.Matches)
	row.I = res.Iterations

	// Mirror the paper's Table-3 counters (M_D, M_E, F) as gauges so the
	// §6 quantities are scrapeable alongside the pipeline metrics.
	reg := telemetry.Default()
	ls := []telemetry.Label{telemetry.L("dataset", s.Dataset), telemetry.L("blocker", s.Label)}
	reg.Gauge("mc_experiments_md", ls...).Set(float64(row.MD))
	reg.Gauge("mc_experiments_me", ls...).Set(float64(row.ME))
	reg.Gauge("mc_experiments_f", ls...).Set(float64(row.F))
	reg.Gauge("mc_experiments_iterations", ls...).Set(float64(row.I))
	return row, nil
}

// RunTable3 computes Table 3 rows for the given blockers.
func (e *Env) RunTable3(specs []Spec, opt DebugOptions) ([]Table3Row, error) {
	var rows []Table3Row
	for _, s := range specs {
		row, err := e.RunTable3Row(s, opt)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders rows as the paper formats Table 3: M_E and F carry
// their percentages (of M_D and M_E respectively) in parentheses.
func FormatTable3(rows []Table3Row) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Q", "C", "M_D", "E", "M_E", "F", "I", "topk(s)"}}
	for _, r := range rows {
		t.Add(r.Dataset, r.Blocker, r.C, r.MD, r.E,
			fmt.Sprintf("%d (%s)", r.ME, metrics.Pct(r.ME, r.MD)),
			fmt.Sprintf("%d (%s)", r.F, metrics.Pct(r.F, r.ME)),
			r.I,
			fmt.Sprintf("%.1f", r.TopKTime.Seconds()))
	}
	return t.String()
}
