package experiments

import (
	"fmt"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/core"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/ssjoin"
)

// MultiConfigRow compares multiple configs against the single-config
// baseline of [29] (§6.5: multiple configs retrieve 10-74% more matches).
type MultiConfigRow struct {
	Dataset     string
	Blocker     string
	MESingle    int // matches in E with one concatenate-everything config
	MEMulti     int // matches in E with the config tree
	IncreasePct float64
}

// RunMultiConfigAblation measures M_E with the full config tree vs the
// single root config.
func (e *Env) RunMultiConfigAblation(specs []Spec, opt DebugOptions) ([]MultiConfigRow, error) {
	var rows []MultiConfigRow
	for _, s := range specs {
		d, c, err := e.Block(s.Dataset, s.Blocker)
		if err != nil {
			return rows, err
		}
		res, err := config.Generate(d.A, d.B, config.Options{})
		if err != nil {
			return rows, err
		}
		cor := ssjoin.NewCorpus(d.A, d.B, res)
		k := opt.K
		if k == 0 {
			k = 1000
		}
		multi := ssjoin.JoinAll(cor, c, ssjoin.Options{K: k})
		meMulti := matchesInLists(d.Gold, multi.Lists)
		single := ssjoin.JoinOne(cor, res.Root.Mask, c, ssjoin.Options{K: k})
		meSingle := matchesInLists(d.Gold, []ssjoin.TopKList{single})
		row := MultiConfigRow{Dataset: s.Dataset, Blocker: s.Label, MESingle: meSingle, MEMulti: meMulti}
		if meSingle > 0 {
			row.IncreasePct = 100 * float64(meMulti-meSingle) / float64(meSingle)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func matchesInLists(gold *blocker.PairSet, lists []ssjoin.TopKList) int {
	e := blocker.NewPairSet()
	for _, l := range lists {
		for _, p := range l.Pairs {
			e.Add(int(p.A), int(p.B))
		}
	}
	return metrics.Intersection(gold, e)
}

// LongAttrRow compares E-recall with and without long-attribute handling
// (§6.5: handling long attributes improves recall of E by up to 11%).
type LongAttrRow struct {
	Dataset    string
	Blocker    string
	MD         int
	MEHandled  int
	MEDisabled int
}

// RunLongAttrAblation measures M_E with FindLongAttr on vs off.
func (e *Env) RunLongAttrAblation(specs []Spec, opt DebugOptions) ([]LongAttrRow, error) {
	var rows []LongAttrRow
	for _, s := range specs {
		d, c, err := e.Block(s.Dataset, s.Blocker)
		if err != nil {
			return rows, err
		}
		k := opt.K
		if k == 0 {
			k = 1000
		}
		me := func(disable bool) (int, error) {
			res, err := config.Generate(d.A, d.B, config.Options{DisableLongAttr: disable})
			if err != nil {
				return 0, err
			}
			cor := ssjoin.NewCorpus(d.A, d.B, res)
			jr := ssjoin.JoinAll(cor, c, ssjoin.Options{K: k})
			return matchesInLists(d.Gold, jr.Lists), nil
		}
		handled, err := me(false)
		if err != nil {
			return rows, err
		}
		disabled, err := me(true)
		if err != nil {
			return rows, err
		}
		rows = append(rows, LongAttrRow{
			Dataset: s.Dataset, Blocker: s.Label,
			MD:        d.GoldCount() - metrics.Intersection(d.Gold, c),
			MEHandled: handled, MEDisabled: disabled,
		})
	}
	return rows, nil
}

// JointRow compares joint execution against one-config-at-a-time
// execution (§6.5: joint processing is up to 3.5x faster).
type JointRow struct {
	Dataset    string
	Blocker    string
	JointSec   float64
	IndivSec   float64
	SpeedupX   float64
	ReusedPct  float64 // share of scores answered from the overlap DB
	ConfigsRun int
}

// RunJointAblation times JoinAll vs per-config JoinOne runs.
func (e *Env) RunJointAblation(specs []Spec, opt DebugOptions) ([]JointRow, error) {
	var rows []JointRow
	for _, s := range specs {
		d, c, err := e.Block(s.Dataset, s.Blocker)
		if err != nil {
			return rows, err
		}
		res, err := config.Generate(d.A, d.B, config.Options{})
		if err != nil {
			return rows, err
		}
		cor := ssjoin.NewCorpus(d.A, d.B, res)
		k := opt.K
		if k == 0 {
			k = 1000
		}
		start := time.Now()
		jr := ssjoin.JoinAll(cor, c, ssjoin.Options{K: k, ReuseMinAvgTokens: 1})
		joint := time.Since(start).Seconds()
		start = time.Now()
		for _, m := range res.Configs() {
			ssjoin.JoinOne(cor, m, c, ssjoin.Options{K: k})
		}
		indiv := time.Since(start).Seconds()
		row := JointRow{
			Dataset: s.Dataset, Blocker: s.Label,
			JointSec: joint, IndivSec: indiv, ConfigsRun: len(res.Configs()),
		}
		if joint > 0 {
			row.SpeedupX = indiv / joint
		}
		//lint:allow atomicmix JoinAll's worker pool is joined before it returns; the counters are quiescent here
		reused, scratch := jr.Stats.ReusedScores, jr.Stats.ScratchScores
		if total := reused + scratch; total > 0 {
			row.ReusedPct = 100 * float64(reused) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// VerifierRow compares the learning verifier against the WMR baseline
// within a bounded number of iterations (§6.5: active/online learning
// significantly outperforms WMR).
type VerifierRow struct {
	Dataset    string
	Blocker    string
	Iterations int
	FoundAL    int
	FoundWMR   int
}

// RunVerifierAblation runs both verifier modes for a fixed number of
// iterations on the same lists.
func (e *Env) RunVerifierAblation(specs []Spec, iters int, opt DebugOptions) ([]VerifierRow, error) {
	var rows []VerifierRow
	for _, s := range specs {
		d, c, err := e.Block(s.Dataset, s.Blocker)
		if err != nil {
			return rows, err
		}
		run := func(mode ranker.Mode) (int, error) {
			copt := opt.core()
			copt.Verifier.Mode = mode
			copt.Verifier.MaxIterations = iters
			copt.Verifier.StopAfterEmpty = iters // compare at equal label budgets
			dbg, err := core.New(d.A, d.B, c, copt)
			if err != nil {
				return 0, err
			}
			u := oracle.New(d.Gold, 0, opt.Seed+23)
			return len(dbg.Run(u.Label).Matches), nil
		}
		al, err := run(ranker.ModeLearning)
		if err != nil {
			return rows, err
		}
		wmr, err := run(ranker.ModeWMR)
		if err != nil {
			return rows, err
		}
		rows = append(rows, VerifierRow{Dataset: s.Dataset, Blocker: s.Label, Iterations: iters, FoundAL: al, FoundWMR: wmr})
	}
	return rows, nil
}

// SensitivityPoint is one k-sensitivity measurement (§6.5: larger k
// retrieves more matches up to a point, at higher runtime).
type SensitivityPoint struct {
	Dataset string
	Blocker string
	K       int
	ME      int
	Seconds float64
}

// RunSensitivityK sweeps k for one blocker.
func (e *Env) RunSensitivityK(s Spec, ks []int) ([]SensitivityPoint, error) {
	d, c, err := e.Block(s.Dataset, s.Blocker)
	if err != nil {
		return nil, err
	}
	res, err := config.Generate(d.A, d.B, config.Options{})
	if err != nil {
		return nil, err
	}
	cor := ssjoin.NewCorpus(d.A, d.B, res)
	var points []SensitivityPoint
	for _, k := range ks {
		start := time.Now()
		jr := ssjoin.JoinAll(cor, c, ssjoin.Options{K: k})
		points = append(points, SensitivityPoint{
			Dataset: s.Dataset, Blocker: s.Label, K: k,
			ME:      matchesInLists(d.Gold, jr.Lists),
			Seconds: time.Since(start).Seconds(),
		})
	}
	return points, nil
}

// ALSensitivityPoint measures matches found in a fixed iteration budget
// as the number of hybrid active-learning iterations varies (§6.5: 3 is a
// good balance).
type ALSensitivityPoint struct {
	Dataset string
	Blocker string
	ALIters int
	Found   int
}

// RunSensitivityAL sweeps the hybrid AL iteration count.
func (e *Env) RunSensitivityAL(s Spec, alIters []int, budget int, opt DebugOptions) ([]ALSensitivityPoint, error) {
	d, c, err := e.Block(s.Dataset, s.Blocker)
	if err != nil {
		return nil, err
	}
	var points []ALSensitivityPoint
	for _, al := range alIters {
		copt := opt.core()
		copt.Verifier.ALIterations = al
		if al == 0 {
			copt.Verifier.ALIterations = -1 // 0 means "no hybrid phase" here
		}
		copt.Verifier.MaxIterations = budget
		copt.Verifier.StopAfterEmpty = budget
		dbg, err := core.New(d.A, d.B, c, copt)
		if err != nil {
			return points, err
		}
		u := oracle.New(d.Gold, 0, opt.Seed+29)
		points = append(points, ALSensitivityPoint{
			Dataset: s.Dataset, Blocker: s.Label, ALIters: al,
			Found: len(dbg.Run(u.Label).Matches),
		})
	}
	return points, nil
}

// Formatting helpers for the ablation reports.

// FormatMultiConfig renders the multi-config ablation.
func FormatMultiConfig(rows []MultiConfigRow) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Q", "M_E single", "M_E multi", "increase"}}
	for _, r := range rows {
		t.Add(r.Dataset, r.Blocker, r.MESingle, r.MEMulti, fmt.Sprintf("%.0f%%", r.IncreasePct))
	}
	return t.String()
}

// FormatLongAttr renders the long-attribute ablation.
func FormatLongAttr(rows []LongAttrRow) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Q", "M_D", "M_E handled", "M_E disabled", "delta"}}
	for _, r := range rows {
		t.Add(r.Dataset, r.Blocker, r.MD, r.MEHandled, r.MEDisabled,
			fmt.Sprintf("%+d", r.MEHandled-r.MEDisabled))
	}
	return t.String()
}

// FormatJoint renders the joint-execution ablation.
func FormatJoint(rows []JointRow) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Q", "configs", "joint(s)", "individual(s)", "speedup", "reused"}}
	for _, r := range rows {
		t.Add(r.Dataset, r.Blocker, r.ConfigsRun,
			fmt.Sprintf("%.2f", r.JointSec), fmt.Sprintf("%.2f", r.IndivSec),
			fmt.Sprintf("%.2fx", r.SpeedupX), fmt.Sprintf("%.0f%%", r.ReusedPct))
	}
	return t.String()
}

// FormatVerifierAblation renders the AL-vs-WMR comparison.
func FormatVerifierAblation(rows []VerifierRow) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Q", "iters", "found (AL)", "found (WMR)"}}
	for _, r := range rows {
		t.Add(r.Dataset, r.Blocker, r.Iterations, r.FoundAL, r.FoundWMR)
	}
	return t.String()
}

// FormatSensitivityK renders the k sweep.
func FormatSensitivityK(points []SensitivityPoint) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Q", "k", "M_E", "time(s)"}}
	for _, p := range points {
		t.Add(p.Dataset, p.Blocker, p.K, p.ME, fmt.Sprintf("%.2f", p.Seconds))
	}
	return t.String()
}

// FormatSensitivityAL renders the AL-iterations sweep.
func FormatSensitivityAL(points []ALSensitivityPoint) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Q", "AL iters", "found"}}
	for _, p := range points {
		t.Add(p.Dataset, p.Blocker, p.ALIters, p.Found)
	}
	return t.String()
}
