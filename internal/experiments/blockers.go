package experiments

import (
	"strconv"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// Spec names one blocker of the paper's Table 2 (or §6.2) on one dataset.
type Spec struct {
	Dataset string
	Label   string // OL / HASH / SIM / R / HASH1 / ...
	Blocker blocker.Blocker
}

// Table2Blockers returns the 23 blockers of Table 2, adapted verbatim to
// the synthetic datasets' schemas (attribute names match the paper's
// expressions). OL/SIM/R entries are Magellan-style kill rules; HASH
// entries are keep conditions.
func Table2Blockers() []Spec {
	drop := blocker.MustParseDropRule
	keep := blocker.MustParseKeepRule
	return []Spec{
		// A-G (Table 2 row 1).
		{"A-G", "OL", drop("ag-ol", "title_overlap_word<3")},
		{"A-G", "HASH", keep("ag-hash", "attr_equal_manuf")},
		{"A-G", "SIM", drop("ag-sim", "title_cos_word<0.4")},
		{"A-G", "R", drop("ag-r", "title_jac_word<0.2 AND manuf_jac_3gram<0.4")},
		// W-A.
		{"W-A", "OL", drop("wa-ol", "title_overlap_word<3")},
		{"W-A", "HASH", keep("wa-hash", "attr_equal_brand")},
		{"W-A", "SIM", drop("wa-sim", "title_cos_word<0.4")},
		{"W-A", "R", drop("wa-r", "price_absdiff>20 OR title_jac_word<0.5")},
		// A-D.
		{"A-D", "OL", drop("ad-ol", "authors_overlap_word<2")},
		{"A-D", "SIM", drop("ad-sim", "title_jac_3gram<0.7")},
		{"A-D", "R1", drop("ad-r1", "title_cos_word<0.8 AND authors_jac_3gram<0.8")},
		{"A-D", "R2", drop("ad-r2", "year_absdiff>0.5 OR title_jac_word<0.7")},
		// F-Z.
		{"F-Z", "OL", drop("fz-ol", "name_overlap_word<2")},
		{"F-Z", "HASH", keep("fz-hash", "attr_equal_city")},
		{"F-Z", "SIM", drop("fz-sim", "addr_jac_3gram<0.3")},
		{"F-Z", "R", drop("fz-r", "(name_cos_word<0.5 AND type_jac_3gram<0.7) OR addr_jac_3gram<0.3")},
		// M1.
		{"M1", "OL", drop("m1-ol", "artist_name_overlap_word<2")},
		{"M1", "HASH", keep("m1-hash", "attr_equal_artist_name")},
		{"M1", "SIM", drop("m1-sim", "title_cos_word<0.5")},
		{"M1", "R", drop("m1-r", "year_absdiff>0.5 OR title_cos_word<0.7")},
		// M2.
		{"M2", "HASH1", keep("m2-hash1", "attr_equal_artist_name")},
		{"M2", "HASH2", keep("m2-hash2", "attr_equal_release OR attr_equal_artist_name")},
		{"M2", "SIM1", drop("m2-sim1", "title_cos_word<0.6")},
		{"M2", "SIM2", drop("m2-sim2", "title_cos_word<0.7")},
		{"M2", "SIM3", drop("m2-sim3", "title_cos_word<0.8")},
	}
}

// SpecsFor filters the Table 2 blockers to one dataset.
func SpecsFor(dataset string) []Spec {
	var out []Spec
	for _, s := range Table2Blockers() {
		if s.Dataset == dataset {
			out = append(out, s)
		}
	}
	return out
}

// priceBucketKey hashes a numeric attribute into coarse buckets (the
// "hash of price" component of §6.2's best manual hash blockers).
func priceBucketKey(attr string, width float64) blocker.KeyFunc {
	return func(t *table.Table, row int) string {
		v, _ := t.ValueByName(row, attr)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return ""
		}
		return strconv.Itoa(int(f / width))
	}
}

// compositeKey concatenates normalized attribute values into one blocking
// key (tuples must agree on every component).
func compositeKey(attrs ...string) blocker.KeyFunc {
	return func(t *table.Table, row int) string {
		key := ""
		for _, a := range attrs {
			v, _ := t.ValueByName(row, a)
			n := tokenize.Normalize(v)
			if n == "" {
				return ""
			}
			key += n + "\x1f"
		}
		return key
	}
}

// BestHashBlockers returns the §6.2 "best possible hash blockers" a
// well-trained user developed for the first five datasets: unions of hash
// blockers over the most identifying attributes (e.g. for A-G: equality
// on manufacturer, or on a hash of price, or on title).
func BestHashBlockers() []Spec {
	return []Spec{
		{"A-G", "BESTHASH", blocker.NewUnion("ag-besthash",
			blocker.NewAttrEquivalence("manuf"),
			&blocker.Hash{ID: "price_bucket", Key: priceBucketKey("price", 10)},
			blocker.NewAttrEquivalence("title"),
		)},
		{"W-A", "BESTHASH", blocker.NewUnion("wa-besthash",
			blocker.NewAttrEquivalence("brand"),
			blocker.NewAttrEquivalence("modelno"),
			blocker.NewAttrEquivalence("title"),
		)},
		{"A-D", "BESTHASH", blocker.NewUnion("ad-besthash",
			blocker.NewAttrEquivalence("title"),
			blocker.NewAttrEquivalence("authors"),
			&blocker.Hash{ID: "venue_year", Key: compositeKey("venue", "year")},
		)},
		{"F-Z", "BESTHASH", blocker.NewUnion("fz-besthash",
			blocker.NewAttrEquivalence("name"),
			blocker.NewAttrEquivalence("phone"),
			blocker.NewAttrEquivalence("addr"),
		)},
		{"M1", "BESTHASH", blocker.NewUnion("m1-besthash",
			blocker.NewAttrEquivalence("title"),
			blocker.NewAttrEquivalence("artist_name"),
			&blocker.Hash{ID: "release_year", Key: compositeKey("release", "year")},
		)},
	}
}
