package experiments

import (
	"fmt"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/tokenize"
)

// HashDebugRow reports one §6.2 debugging session: the best manual hash
// blocker's recall, and the recall after MatchCatcher-guided repair
// rounds (the paper improved A-G 75.6→99.7, W-A 95.1→99.6, F-Z 97.3→100,
// and terminated early on the already-perfect A-D and M1 blockers).
type HashDebugRow struct {
	Dataset      string
	RecallBefore float64
	RecallAfter  float64
	Rounds       int
	MatchesFound int
	AddedRules   []string
}

// RunHashDebug debugs one best-hash blocker with an automated version of
// the paper's repair loop: run the verifier a few iterations; if it
// surfaces killed-off matches, derive a similarity rule that would keep
// them (the attribute whose values stay most similar across the found
// matches, thresholded just below their weakest similarity) and union it
// into the blocker; repeat until the debugger comes back empty.
func (e *Env) RunHashDebug(s Spec, opt DebugOptions) (HashDebugRow, error) {
	d, c, err := e.Block(s.Dataset, s.Blocker)
	if err != nil {
		return HashDebugRow{}, err
	}
	row := HashDebugRow{Dataset: s.Dataset, RecallBefore: metrics.Recall(d.Gold, c)}
	current := blocker.Blocker(s.Blocker)

	for round := 0; round < 4; round++ {
		copt := opt.core()
		copt.Verifier.MaxIterations = 5
		dbg, err := core.New(d.A, d.B, c, copt)
		if err != nil {
			return row, err
		}
		u := oracle.New(d.Gold, 0, opt.Seed+int64(round))
		res := dbg.Run(u.Label)
		if len(res.Matches) == 0 {
			break // the debugger finds nothing more: stop, as the paper's users did
		}
		row.Rounds++
		row.MatchesFound += len(res.Matches)
		repair := deriveRepairRule(dbg, res.Matches, fmt.Sprintf("%s-repair%d", s.Dataset, round))
		if repair == nil {
			break
		}
		row.AddedRules = append(row.AddedRules, repair.Name())
		current = blocker.NewUnion(s.Blocker.Name()+"+repairs", current, repair)
		c, err = current.Block(d.A, d.B)
		if err != nil {
			return row, err
		}
	}
	row.RecallAfter = metrics.Recall(d.Gold, c)
	if row.Rounds == 0 {
		row.RecallAfter = row.RecallBefore
	}
	return row, nil
}

// deriveRepairRule picks the attribute whose word-level Jaccard stays
// highest across the confirmed killed-off matches and returns a
// similarity blocker keeping pairs at least as similar as the weakest
// found match (floored at 0.3 so the rule stays selective).
func deriveRepairRule(dbg *core.Debugger, matches []blocker.Pair, id string) *blocker.Rule {
	res := dbg.Configs()
	bestAttr, bestMin := "", -1.0
	for i, attr := range res.Promising {
		minSim := 1.0
		for _, p := range matches {
			s := attrJaccard(dbg, i, p)
			if s < minSim {
				minSim = s
			}
		}
		if minSim > bestMin {
			bestAttr, bestMin = attr, minSim
		}
	}
	if bestAttr == "" || bestMin <= 0 {
		return nil
	}
	threshold := bestMin * 0.95
	if threshold < 0.3 {
		threshold = 0.3
	}
	r := blocker.NewSim(bestAttr, simfunc.Jaccard, tokenize.WordTokenizer{}, threshold)
	r.ID = id + ":" + r.ID
	return r
}

func attrJaccard(dbg *core.Debugger, attrIdx int, p blocker.Pair) float64 {
	for _, diag := range dbg.Explain(p).Diags {
		if diag.Attr == dbg.Configs().Promising[attrIdx] {
			return diag.Jaccard
		}
	}
	return 0
}

// RunHashDebugAll runs the §6.2 study over every best-hash blocker.
func (e *Env) RunHashDebugAll(opt DebugOptions) ([]HashDebugRow, error) {
	var rows []HashDebugRow
	for _, s := range BestHashBlockers() {
		row, err := e.RunHashDebug(s, opt)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHashDebug renders the §6.2 hash-blocker rows.
func FormatHashDebug(rows []HashDebugRow) string {
	t := &metrics.Table{Headers: []string{"Dataset", "recall before", "recall after", "rounds", "matches found", "added rules"}}
	for _, r := range rows {
		t.Add(r.Dataset,
			fmt.Sprintf("%.1f%%", 100*r.RecallBefore),
			fmt.Sprintf("%.1f%%", 100*r.RecallAfter),
			r.Rounds, r.MatchesFound, fmt.Sprintf("%v", r.AddedRules))
	}
	return t.String()
}
