package experiments

import (
	"fmt"

	"matchcatcher/internal/metrics"
)

// PerfGateResult is the output of the pinned CI perf-gate workload: a
// small, deterministic slice of the paper's evaluation that exercises
// the hot paths (joint top-k join over three M2 blockers, one full debug
// session for recall, and one intra-join parallelism sweep) in well
// under a minute at -scale 0.1.
//
// The workload is intentionally frozen: `mcperf check` compares its
// metrics against the committed BENCH_perf_gate.json baseline, so any
// change to the blocker list, k, or dataset fraction invalidates the
// baseline and must regenerate it (make perf-baseline).
type PerfGateResult struct {
	// Fig9 holds one joint top-k join timing per M2 blocker
	// (HASH1/HASH2/SIM1, k=1000, full fraction of the scaled dataset) —
	// the latency arm of the gate.
	Fig9 []Fig9Point
	// Recall is one Table-3 debug session on M2/HASH1 — the scale-free
	// accuracy arm of the gate (F, M_E, iterations are deterministic for
	// a fixed seed, so any drop flags exactly).
	Recall Table3Row
	// Parallel is the intra-join parallelism arm: the M2/HASH1 k=1000
	// join at 1 and 4 probe workers. The 1-worker point guards the serial
	// path's latency against sharding overhead creeping in; the 4-worker
	// point tracks the parallel path (advisory on single-core runners,
	// where it measures scheduling overhead rather than speedup).
	Parallel []ParallelJoinPoint
}

// RunPerfGate runs the pinned perf-gate workload: the Figure-9 M2 join
// sweep restricted to its three blockers at k=1000 on the full (scaled)
// dataset, then a single M2/HASH1 debug session.
func (e *Env) RunPerfGate(opt DebugOptions) (PerfGateResult, error) {
	specs := SpecsFor("M2")[:3] // HASH1, HASH2, SIM1 — as in Figure 9
	fig9, err := e.RunFig9("M2", specs, []int{1000}, []int{100})
	if err != nil {
		return PerfGateResult{}, err
	}
	recall, err := e.RunTable3Row(specs[0], opt)
	if err != nil {
		return PerfGateResult{}, err
	}
	parallel, err := e.RunParallelJoin("M2", specs[:1], 1000, []int{1, 4})
	if err != nil {
		return PerfGateResult{}, err
	}
	return PerfGateResult{Fig9: fig9, Recall: recall, Parallel: parallel}, nil
}

// FormatPerfGate renders the gate workload as its two arms.
func FormatPerfGate(r PerfGateResult) string {
	t := &metrics.Table{Headers: []string{"arm", "workload", "value"}}
	for _, p := range r.Fig9 {
		t.Add("latency", p.Dataset+"/"+p.Blocker+" k=1000 join", fmt.Sprintf("%.2fs", p.Seconds))
	}
	t.Add("latency", r.Recall.Dataset+"/"+r.Recall.Blocker+" topk", fmt.Sprintf("%.2fs", r.Recall.TopKTime.Seconds()))
	for _, p := range r.Parallel {
		t.Add("join_parallel", fmt.Sprintf("%s/%s k=%d pw=%d join", p.Dataset, p.Blocker, p.K, p.Workers),
			fmt.Sprintf("%.2fs (%.2fx)", p.Seconds, p.SpeedupX))
	}
	t.Add("recall", r.Recall.Dataset+"/"+r.Recall.Blocker+" F", r.Recall.F)
	t.Add("recall", r.Recall.Dataset+"/"+r.Recall.Blocker+" M_E", r.Recall.ME)
	t.Add("recall", r.Recall.Dataset+"/"+r.Recall.Blocker+" iterations", r.Recall.I)
	return t.String()
}
