package experiments

import (
	"fmt"
	"strings"
	"time"

	"matchcatcher/internal/core"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/oracle"
)

// Table4Row is one row of the paper's Table 4: matches found and problems
// identified within the first three verifier iterations, plus the modeled
// labeling time.
type Table4Row struct {
	Dataset   string
	Blocker   string
	Iters     int
	Matches   int
	LabelTime time.Duration
	Problems  []string // most pervasive blocker problems, Table 4 style
}

// RunTable4Row runs the first `iters` verifier iterations for one blocker
// and summarizes the problems behind the matches found.
func (e *Env) RunTable4Row(s Spec, iters int, opt DebugOptions) (Table4Row, error) {
	d, c, err := e.Block(s.Dataset, s.Blocker)
	if err != nil {
		return Table4Row{}, err
	}
	copt := opt.core()
	copt.Verifier.MaxIterations = iters
	dbg, err := core.New(d.A, d.B, c, copt)
	if err != nil {
		return Table4Row{}, err
	}
	u := oracle.New(d.Gold, 0, opt.Seed+17)
	res := dbg.Run(u.Label)
	return Table4Row{
		Dataset:   s.Dataset,
		Blocker:   s.Label,
		Iters:     res.Iterations,
		Matches:   len(res.Matches),
		LabelTime: u.LabelTime(),
		Problems:  dbg.TopProblems(res.Matches, 3),
	}, nil
}

// Table4Specs returns the five dataset/blocker combinations Table 4
// reports: OL (A-G), HASH (W-A), SIM (A-D), R (F-Z), R (M1).
func Table4Specs() []Spec {
	want := map[string]string{"A-G": "OL", "W-A": "HASH", "A-D": "SIM", "F-Z": "R", "M1": "R"}
	var out []Spec
	for _, s := range Table2Blockers() {
		if want[s.Dataset] == s.Label {
			out = append(out, s)
		}
	}
	return out
}

// RunTable4 regenerates Table 4 (3 iterations per blocker).
func (e *Env) RunTable4(opt DebugOptions) ([]Table4Row, error) {
	var rows []Table4Row
	for _, s := range Table4Specs() {
		row, err := e.RunTable4Row(s, 3, opt)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders the rows.
func FormatTable4(rows []Table4Row) string {
	t := &metrics.Table{Headers: []string{"Blocker", "iters", "matches", "label time", "problems"}}
	for _, r := range rows {
		t.Add(fmt.Sprintf("%s (%s)", r.Blocker, r.Dataset), r.Iters, r.Matches,
			fmt.Sprintf("%.0f mins", r.LabelTime.Minutes()),
			strings.Join(r.Problems, "; "))
	}
	return t.String()
}
