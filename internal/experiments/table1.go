package experiments

import (
	"fmt"
	"strings"

	"matchcatcher/internal/metrics"
	"matchcatcher/internal/table"
)

// Table1Row summarizes one dataset as the paper's Table 1 does.
type Table1Row struct {
	Dataset   string
	RowsA     int
	RowsB     int
	Matches   int // -1 when gold is treated as unknown (Papers)
	Attrs     int
	AvgLenA   float64 // average tokens per tuple, table A
	AvgLenB   float64
	AvgCharsA float64 // average characters per tuple
	AvgCharsB float64
}

// RunTable1 regenerates Table 1's dataset statistics.
func (e *Env) RunTable1(datasets []string) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range datasets {
		d, err := e.Dataset(name)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Dataset: name,
			RowsA:   d.A.NumRows(),
			RowsB:   d.B.NumRows(),
			Matches: d.GoldCount(),
			Attrs:   d.A.NumAttrs(),
			AvgLenA: d.A.AvgTupleTokenLen(nil),
			AvgLenB: d.B.AvgTupleTokenLen(nil),
		}
		if !d.Profile.GoldKnown {
			row.Matches = -1
		}
		row.AvgCharsA = avgTupleChars(d.A)
		row.AvgCharsB = avgTupleChars(d.B)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders the rows as a report table.
func FormatTable1(rows []Table1Row) string {
	t := &metrics.Table{Headers: []string{"Dataset", "|A|", "|B|", "#matches", "#attrs", "avg chars A,B"}}
	for _, r := range rows {
		matches := fmt.Sprintf("%d", r.Matches)
		if r.Matches < 0 {
			matches = "unknown"
		}
		t.Add(r.Dataset, r.RowsA, r.RowsB, matches, r.Attrs,
			fmt.Sprintf("%.0f, %.0f", r.AvgCharsA, r.AvgCharsB))
	}
	return t.String()
}

func avgTupleChars(t *table.Table) float64 {
	if t.NumRows() == 0 {
		return 0
	}
	total := 0
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumAttrs(); j++ {
			total += len(strings.TrimSpace(t.Value(i, j)))
		}
	}
	return float64(total) / float64(t.NumRows())
}
