package experiments

import (
	"fmt"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/ssjoin"
)

// ShardSkewPoint is one measurement of the shard-skew experiment: a
// full joint top-k join of the long-tail SKEW dataset at one probe
// shard count, with the progress tracker's per-shard work distribution
// read back after completion. Work units are popped prefix events.
type ShardSkewPoint struct {
	Dataset string
	Blocker string
	K       int
	Shards  int // ssjoin ProbeWorkers for this point
	Seconds float64
	// The tracker's post-run skew summary over shard slots.
	WorkMin   int64
	WorkMax   int64
	WorkP50   int64
	Imbalance float64 // max work over mean work; 1 = perfectly balanced
	// ShardWork is the raw per-shard pop count, one entry per active
	// shard slot in slot order.
	ShardWork []int64
}

// ShardSkewSpec is the experiment's canonical blocker: attribute
// equivalence on SKEW's city pool, which keeps the candidate set large
// enough that the monster records' probe cost dominates their shard.
func ShardSkewSpec() Spec {
	return Spec{Dataset: "SKEW", Label: "AE-city", Blocker: blocker.NewAttrEquivalence("city")}
}

// RunShardSkew joins the dataset once per shard count with a progress
// tracker attached and records each run's per-shard work distribution.
// The SKEW profile plants a few token-heavy monster records, so the
// rec-modulo-shards split produces genuinely uneven shards and the
// recorded imbalance ratios exercise the telemetry on real skew rather
// than noise.
//
// Like RunParallelJoin, every multi-shard output is bit-compared
// against the first run's as it is timed: shard count and the attached
// tracker may move work and counters around, never the result.
func (e *Env) RunShardSkew(spec Spec, k int, shardCounts []int) ([]ShardSkewPoint, error) {
	d, err := e.Dataset(spec.Dataset)
	if err != nil {
		return nil, err
	}
	res, err := config.Generate(d.A, d.B, config.Options{})
	if err != nil {
		return nil, err
	}
	cor := ssjoin.NewCorpus(d.A, d.B, res)
	_, c, err := e.Block(spec.Dataset, spec.Blocker)
	if err != nil {
		return nil, err
	}
	var ref *ssjoin.JoinResult
	var points []ShardSkewPoint
	for _, shards := range shardCounts {
		prog := ssjoin.NewProgress()
		start := time.Now()
		out := ssjoin.JoinAll(cor, c, ssjoin.Options{K: k, ProbeWorkers: shards, Progress: prog})
		secs := time.Since(start).Seconds()
		if ref == nil {
			ref = out
		} else if err := sameLists(ref.Lists, out.Lists); err != nil {
			return nil, fmt.Errorf("shard-skew %s/%s k=%d shards=%d diverged from shards=%d: %w",
				spec.Dataset, spec.Label, k, shards, shardCounts[0], err)
		}
		snap := prog.Snapshot()
		work := make([]int64, 0, len(snap.Shards))
		for _, sh := range snap.Shards {
			work = append(work, sh.ProbesDone)
		}
		points = append(points, ShardSkewPoint{
			Dataset: spec.Dataset, Blocker: spec.Label, K: k, Shards: shards,
			Seconds: secs,
			WorkMin: snap.Skew.WorkMin, WorkMax: snap.Skew.WorkMax, WorkP50: snap.Skew.WorkP50,
			Imbalance: snap.Skew.ImbalanceRatio,
			ShardWork: work,
		})
	}
	return points, nil
}

// FormatShardSkew renders the work-distribution table, one row per
// shard count.
func FormatShardSkew(points []ShardSkewPoint) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Blocker", "k", "shards", "runtime(s)", "work min/p50/max", "imbalance", "per-shard pops"}}
	for _, p := range points {
		t.Add(p.Dataset, p.Blocker, p.K, p.Shards,
			fmt.Sprintf("%.2f", p.Seconds),
			fmt.Sprintf("%d/%d/%d", p.WorkMin, p.WorkP50, p.WorkMax),
			fmt.Sprintf("%.2f", p.Imbalance),
			fmt.Sprint(p.ShardWork))
	}
	return t.String()
}
