package experiments

import (
	"fmt"
	"math"
	"time"

	"matchcatcher/internal/config"
	"matchcatcher/internal/metrics"
	"matchcatcher/internal/ssjoin"
)

// ParallelJoinPoint is one measurement of the intra-join parallelism
// speedup curve: the joint top-k module's runtime for one blocker and k at
// a given probe worker count, normalized against the 1-worker run of the
// same sweep.
type ParallelJoinPoint struct {
	Dataset string
	Blocker string
	K       int
	Workers int // ssjoin ProbeWorkers for this point
	Seconds float64
	// SpeedupX is baseline-seconds / this-point-seconds, where the
	// baseline is the Workers=1 point of the same (dataset, blocker, k)
	// series. 1.0 for the baseline itself by construction.
	SpeedupX float64
}

// RunParallelJoin sweeps the joint top-k join over probe worker counts and
// records the speedup curve. The corpus and each blocker's output are
// built once, so the points time only ssjoin.JoinAll — the code the probe
// sharding parallelizes.
//
// The sweep double-checks the determinism contract while it measures:
// every multi-worker run's output is compared bit for bit against the
// 1-worker reference, so a speedup number can never come from a run that
// silently returned different pairs. (The real enforcement lives in the
// internal/ssjoin differential suite; this is a seatbelt on the benchmark
// path, where corpora are largest.)
func (e *Env) RunParallelJoin(dataset string, specs []Spec, k int, workerCounts []int) ([]ParallelJoinPoint, error) {
	d, err := e.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	res, err := config.Generate(d.A, d.B, config.Options{})
	if err != nil {
		return nil, err
	}
	cor := ssjoin.NewCorpus(d.A, d.B, res)
	var points []ParallelJoinPoint
	for _, s := range specs {
		_, c, err := e.Block(dataset, s.Blocker)
		if err != nil {
			return nil, err
		}
		var ref *ssjoin.JoinResult
		var baseSeconds float64
		for _, w := range workerCounts {
			start := time.Now()
			out := ssjoin.JoinAll(cor, c, ssjoin.Options{K: k, ProbeWorkers: w})
			secs := time.Since(start).Seconds()
			if ref == nil {
				ref, baseSeconds = out, secs
			} else if err := sameLists(ref.Lists, out.Lists); err != nil {
				return nil, fmt.Errorf("parallel-join %s/%s k=%d workers=%d diverged from workers=%d: %w",
					dataset, s.Label, k, w, workerCounts[0], err)
			}
			points = append(points, ParallelJoinPoint{
				Dataset: dataset, Blocker: s.Label, K: k, Workers: w,
				Seconds: secs, SpeedupX: baseSeconds / secs,
			})
		}
	}
	return points, nil
}

// sameLists compares two JoinAll outputs bit for bit (raw float64 bit
// patterns, not epsilon) — the same comparison the differential tests use.
func sameLists(a, b []ssjoin.TopKList) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d lists vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Config != b[i].Config || len(a[i].Pairs) != len(b[i].Pairs) {
			return fmt.Errorf("list %d: config/len mismatch", i)
		}
		for j := range a[i].Pairs {
			p, q := a[i].Pairs[j], b[i].Pairs[j]
			if p.A != q.A || p.B != q.B || math.Float64bits(p.Score) != math.Float64bits(q.Score) {
				return fmt.Errorf("list %d pair %d: (%d,%d,%x) vs (%d,%d,%x)",
					i, j, p.A, p.B, math.Float64bits(p.Score), q.A, q.B, math.Float64bits(q.Score))
			}
		}
	}
	return nil
}

// FormatParallelJoin renders the speedup curve, one row per worker count.
func FormatParallelJoin(points []ParallelJoinPoint) string {
	t := &metrics.Table{Headers: []string{"Dataset", "Blocker", "k", "probe workers", "runtime(s)", "speedup"}}
	for _, p := range points {
		t.Add(p.Dataset, p.Blocker, p.K, p.Workers,
			fmt.Sprintf("%.2f", p.Seconds), fmt.Sprintf("%.2fx", p.SpeedupX))
	}
	return t.String()
}
