package blocker

import (
	"fmt"

	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/tokenize"
)

// BuildFromRules assembles the blocker a CLI or API request describes:
// each drops entry parses as a Magellan-style kill rule (named drop0,
// drop1, ...), each keeps entry as a keep rule (keep0, ...), each
// equals entry as an attribute-equivalence blocker, and multiple
// members combine as a union named "union". It is the one construction
// path mcdebug and mcserve share, so a scripted HTTP session and a CLI
// session given the same rule strings build blockers with the same
// names — names the canonical session report embeds.
func BuildFromRules(drops, keeps, equals []string) (Blocker, error) {
	var members []Blocker
	for i, src := range drops {
		e, err := Parse(src)
		if err != nil {
			return nil, err
		}
		members = append(members, DropRule(fmt.Sprintf("drop%d", i), e))
	}
	for i, src := range keeps {
		e, err := Parse(src)
		if err != nil {
			return nil, err
		}
		members = append(members, KeepRule(fmt.Sprintf("keep%d", i), e))
	}
	for _, attr := range equals {
		members = append(members, NewAttrEquivalence(attr))
	}
	switch len(members) {
	case 0:
		return nil, fmt.Errorf("no blocker given; use a drop, keep, or attr-equal rule")
	case 1:
		return members[0], nil
	default:
		return NewUnion("union", members...), nil
	}
}

// NewOverlap returns an overlap blocker keeping pairs whose values of attr
// share at least minCount tokens under tok.
func NewOverlap(attr string, tok tokenize.Tokenizer, minCount int) *Rule {
	return KeepRule(
		fmt.Sprintf("%s_overlap_%s>=%d", attr, tok.Name(), minCount),
		Atom{
			Feature: Feature{Attr: attr, Kind: FeatOverlapCount, Tok: tok},
			Op:      OpGE,
			Value:   float64(minCount),
		})
}

// NewSim returns a similarity-based blocker keeping pairs whose values of
// attr score at least threshold under the measure and tokenizer.
func NewSim(attr string, m simfunc.SetMeasure, tok tokenize.Tokenizer, threshold float64) *Rule {
	return KeepRule(
		fmt.Sprintf("%s_%s_%s>=%g", attr, m, tok.Name(), threshold),
		Atom{
			Feature: Feature{Attr: attr, Kind: FeatSetSim, Measure: m, Tok: tok},
			Op:      OpGE,
			Value:   threshold,
		})
}

// NewEditDistance returns a similarity-based blocker keeping pairs whose
// (optionally transformed) values of attr are within edit distance d —
// e.g. the paper's Q3 rule ed(lastword(a.Name), lastword(b.Name)) <= 2 is
// NewEditDistance("Name", TransformLastWord, 2).
func NewEditDistance(attr string, tr Transform, d int) *Rule {
	name := attr
	if tr != TransformNone {
		name = tr.String() + "(" + attr + ")"
	}
	return KeepRule(
		fmt.Sprintf("%s_ed<=%d", name, d),
		Atom{
			Feature: Feature{Attr: attr, Transform: tr, Kind: FeatEditDist},
			Op:      OpLE,
			Value:   float64(d),
		})
}
