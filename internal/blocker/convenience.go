package blocker

import (
	"fmt"

	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/tokenize"
)

// NewOverlap returns an overlap blocker keeping pairs whose values of attr
// share at least minCount tokens under tok.
func NewOverlap(attr string, tok tokenize.Tokenizer, minCount int) *Rule {
	return KeepRule(
		fmt.Sprintf("%s_overlap_%s>=%d", attr, tok.Name(), minCount),
		Atom{
			Feature: Feature{Attr: attr, Kind: FeatOverlapCount, Tok: tok},
			Op:      OpGE,
			Value:   float64(minCount),
		})
}

// NewSim returns a similarity-based blocker keeping pairs whose values of
// attr score at least threshold under the measure and tokenizer.
func NewSim(attr string, m simfunc.SetMeasure, tok tokenize.Tokenizer, threshold float64) *Rule {
	return KeepRule(
		fmt.Sprintf("%s_%s_%s>=%g", attr, m, tok.Name(), threshold),
		Atom{
			Feature: Feature{Attr: attr, Kind: FeatSetSim, Measure: m, Tok: tok},
			Op:      OpGE,
			Value:   threshold,
		})
}

// NewEditDistance returns a similarity-based blocker keeping pairs whose
// (optionally transformed) values of attr are within edit distance d —
// e.g. the paper's Q3 rule ed(lastword(a.Name), lastword(b.Name)) <= 2 is
// NewEditDistance("Name", TransformLastWord, 2).
func NewEditDistance(attr string, tr Transform, d int) *Rule {
	name := attr
	if tr != TransformNone {
		name = tr.String() + "(" + attr + ")"
	}
	return KeepRule(
		fmt.Sprintf("%s_ed<=%d", name, d),
		Atom{
			Feature: Feature{Attr: attr, Transform: tr, Kind: FeatEditDist},
			Op:      OpLE,
			Value:   float64(d),
		})
}
