package blocker

import (
	"strings"
	"testing"

	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

func TestFeatureEval(t *testing.T) {
	a := table.MustNew("A", []string{"name", "city", "price"})
	a.MustAppend([]string{"Dave Smith", "Atlanta", "10.5"})
	b := table.MustNew("B", []string{"name", "city", "price"})
	b.MustAppend([]string{"David Smith", "atlanta", "12.5"})

	eq := Feature{Attr: "city", Kind: FeatEqual}
	if got := eq.Eval(a, 0, b, 0); got != 1 {
		t.Errorf("city equal = %g, want 1 (normalization)", got)
	}
	eqName := Feature{Attr: "name", Kind: FeatEqual}
	if got := eqName.Eval(a, 0, b, 0); got != 0 {
		t.Errorf("name equal = %g, want 0", got)
	}
	lw := Feature{Attr: "name", Transform: TransformLastWord, Kind: FeatEqual}
	if got := lw.Eval(a, 0, b, 0); got != 1 {
		t.Errorf("lastword(name) equal = %g, want 1", got)
	}
	jac := Feature{Attr: "name", Kind: FeatSetSim, Measure: simfunc.Jaccard, Tok: tokenize.WordTokenizer{}}
	if got, want := jac.Eval(a, 0, b, 0), 1.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("name jaccard = %g, want %g", got, want)
	}
	ov := Feature{Attr: "name", Kind: FeatOverlapCount, Tok: tokenize.WordTokenizer{}}
	if got := ov.Eval(a, 0, b, 0); got != 1 {
		t.Errorf("name overlap = %g, want 1", got)
	}
	ad := Feature{Attr: "price", Kind: FeatAbsDiff}
	if got := ad.Eval(a, 0, b, 0); got != 2 {
		t.Errorf("price absdiff = %g, want 2", got)
	}
	ed := Feature{Attr: "city", Kind: FeatEditDist}
	if got := ed.Eval(a, 0, b, 0); got != 0 {
		t.Errorf("city editdist = %g, want 0", got)
	}
}

func TestEqualOnMissingIsFalse(t *testing.T) {
	a := table.MustNew("A", []string{"x"})
	a.MustAppend([]string{""})
	b := table.MustNew("B", []string{"x"})
	b.MustAppend([]string{""})
	f := Feature{Attr: "x", Kind: FeatEqual}
	if got := f.Eval(a, 0, b, 0); got != 0 {
		t.Errorf("missing==missing should be 0, got %g", got)
	}
}

func TestAbsDiffMissingIsInfinite(t *testing.T) {
	// Missing numerics evaluate as +Inf: "absdiff > t" fires (the kill
	// rule drops the pair — the missing-value aggressiveness the debugger
	// surfaces), "absdiff <= t" does not, and negation stays exact.
	a := table.MustNew("A", []string{"p"})
	a.MustAppend([]string{""})
	b := table.MustNew("B", []string{"p"})
	b.MustAppend([]string{"5"})
	gt := Atom{Feature: Feature{Attr: "p", Kind: FeatAbsDiff}, Op: OpGT, Value: 20}
	le := Atom{Feature: Feature{Attr: "p", Kind: FeatAbsDiff}, Op: OpLE, Value: 20}
	if !gt.Holds(a, 0, b, 0) {
		t.Error("absdiff>t on missing must hold (+Inf)")
	}
	if le.Holds(a, 0, b, 0) {
		t.Error("absdiff<=t on missing must not hold")
	}
	if gt.Holds(a, 0, b, 0) == (Not{E: gt}).Holds(a, 0, b, 0) {
		t.Error("negation must be exact on missing values")
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		x, v float64
		want bool
	}{
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpGE, 2, 2, true}, {OpGE, 1, 2, false},
		{OpEQ, 2, 2, true}, {OpEQ, 1, 2, false},
		{OpNE, 1, 2, true}, {OpNE, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.holds(c.x, c.v); got != c.want {
			t.Errorf("%v.holds(%g,%g) = %v, want %v", c.op, c.x, c.v, got, c.want)
		}
	}
}

func TestNegate(t *testing.T) {
	pairs := map[CmpOp]CmpOp{OpLT: OpGE, OpLE: OpGT, OpGT: OpLE, OpGE: OpLT, OpEQ: OpNE, OpNE: OpEQ}
	for op, want := range pairs {
		if got := op.negate(); got != want {
			t.Errorf("negate(%v) = %v, want %v", op, got, want)
		}
		// Negation must be an involution.
		if got := op.negate().negate(); got != op {
			t.Errorf("double negate(%v) = %v", op, got)
		}
	}
}

func atomNamed(name string, op CmpOp, v float64) Atom {
	return Atom{Feature: Feature{Attr: name, Kind: FeatAbsDiff}, Op: op, Value: v}
}

func TestDNFShapes(t *testing.T) {
	a := atomNamed("a", OpLT, 1)
	b := atomNamed("b", OpLT, 2)
	c := atomNamed("c", OpLT, 3)

	// (a AND b) OR c -> two conjuncts.
	e := Or{And{a, b}, c}
	d := DNF(e)
	if len(d) != 2 || len(d[0]) != 2 || len(d[1]) != 1 {
		t.Fatalf("DNF shape = %v", d)
	}

	// a AND (b OR c) -> distribute: (a,b), (a,c).
	e2 := And{a, Or{b, c}}
	d2 := DNF(e2)
	if len(d2) != 2 || len(d2[0]) != 2 || len(d2[1]) != 2 {
		t.Fatalf("DNF distribute shape = %v", d2)
	}

	// NOT (a OR b) -> single conjunct of flipped atoms.
	e3 := Not{Or{a, b}}
	d3 := DNF(e3)
	if len(d3) != 1 || len(d3[0]) != 2 {
		t.Fatalf("DNF De Morgan shape = %v", d3)
	}
	if d3[0][0].Op != OpGE || d3[0][1].Op != OpGE {
		t.Errorf("negated atoms = %v", d3[0])
	}

	// Double negation.
	e4 := Not{Not{a}}
	d4 := DNF(e4)
	if len(d4) != 1 || len(d4[0]) != 1 || d4[0][0].Op != OpLT {
		t.Fatalf("double negation = %v", d4)
	}
}

// TestDNFEquivalence checks semantic equivalence of DNF and the original
// expression on a truth-table of feature values.
func TestDNFEquivalence(t *testing.T) {
	// Build tables where attribute values make each atom independently
	// true/false: atoms are "x_absdiff < 5" etc. on three numeric attrs.
	attrs := []string{"p", "q", "r"}
	exprs := []Expr{
		Or{And{atomNamed("p", OpLT, 5), atomNamed("q", OpGE, 5)}, Not{atomNamed("r", OpLT, 5)}},
		Not{Or{atomNamed("p", OpLT, 5), And{atomNamed("q", OpLT, 5), atomNamed("r", OpGE, 5)}}},
		And{Or{atomNamed("p", OpLT, 5), atomNamed("q", OpLT, 5)}, Or{atomNamed("q", OpGE, 5), Not{atomNamed("r", OpLT, 5)}}},
	}
	for _, e := range exprs {
		d := DNF(e)
		for bits := 0; bits < 8; bits++ {
			a := table.MustNew("A", attrs)
			b := table.MustNew("B", attrs)
			rowA := make([]string, 3)
			rowB := make([]string, 3)
			for i := 0; i < 3; i++ {
				rowA[i] = "0"
				if bits&(1<<i) != 0 {
					rowB[i] = "1" // absdiff 1 -> "<5" true
				} else {
					rowB[i] = "10" // absdiff 10 -> "<5" false
				}
			}
			a.MustAppend(rowA)
			b.MustAppend(rowB)
			want := e.Holds(a, 0, b, 0)
			got := false
			for _, conj := range d {
				all := true
				for _, at := range conj {
					if !at.Holds(a, 0, b, 0) {
						all = false
						break
					}
				}
				if all {
					got = true
					break
				}
			}
			if got != want {
				t.Errorf("expr %s bits %03b: DNF=%v, expr=%v", e, bits, got, want)
			}
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := Or{And{atomNamed("p", OpLT, 5), Not{atomNamed("q", OpGE, 2)}}, atomNamed("r", OpEQ, 1)}
	s := e.String()
	for _, want := range []string{"AND", "OR", "NOT", "p_absdiff<5", "q_absdiff>=2", "r_absdiff==1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	f := Feature{Attr: "name", Transform: TransformLastWord, Kind: FeatEqual}
	if got := f.String(); got != "attr_equal_lastword(name)" {
		t.Errorf("feature string = %q", got)
	}
	fs := Feature{Attr: "title", Kind: FeatSetSim, Measure: simfunc.Cosine, Tok: tokenize.WordTokenizer{}}
	if got := fs.String(); got != "title_cos_word" {
		t.Errorf("feature string = %q", got)
	}
}
