package blocker

import (
	"fmt"
	"sort"

	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// A Blocker produces the candidate set C for two tables. Implementations
// cover the blocker types of Section 2 of the paper: attribute equivalence,
// hash, sorted neighborhood, overlap, similarity-based, and rule-based.
type Blocker interface {
	// Name returns a short human-readable identifier for reports.
	Name() string
	// Block applies the blocker to tables a and b and returns the
	// surviving candidate pairs.
	Block(a, b *table.Table) (*PairSet, error)
}

// KeyFunc extracts a blocking key from one tuple (given as the row values
// and the owning table, for schema lookups). Returning "" means the tuple
// has no key and joins with nothing.
type KeyFunc func(t *table.Table, row int) string

// AttrKey returns a KeyFunc that uses the normalized value of the named
// attribute.
func AttrKey(attr string) KeyFunc {
	return func(t *table.Table, row int) string {
		v, _ := t.ValueByName(row, attr)
		return tokenize.Normalize(v)
	}
}

// LastWordKey returns a KeyFunc hashing on the last word of the named
// attribute (the paper's lastword(a.Name) running example).
func LastWordKey(attr string) KeyFunc {
	return func(t *table.Table, row int) string {
		v, _ := t.ValueByName(row, attr)
		return tokenize.LastWord(v)
	}
}

// Hash is a hash (key-based) blocker: it keeps a pair iff both tuples have
// the same non-missing key under Key. Attribute equivalence is the special
// case Key = AttrKey(attr).
type Hash struct {
	// ID names the blocker in reports.
	ID string
	// Key extracts the blocking key.
	Key KeyFunc
}

// NewAttrEquivalence returns an attribute-equivalence blocker on attr
// (e.g., Q1: a.City = b.City from the paper's Figure 1).
func NewAttrEquivalence(attr string) *Hash {
	return &Hash{ID: "attr_equal_" + attr, Key: AttrKey(attr)}
}

// Name implements Blocker.
func (h *Hash) Name() string { return h.ID }

// Block implements Blocker by partitioning both tables into key buckets
// and emitting the cross product within each bucket.
func (h *Hash) Block(a, b *table.Table) (*PairSet, error) {
	if h.Key == nil {
		return nil, fmt.Errorf("blocker %s: nil key function", h.ID)
	}
	obs := startBlock(h.ID)
	buckets := make(map[string][]int)
	for i := 0; i < a.NumRows(); i++ {
		if k := h.Key(a, i); k != "" {
			buckets[k] = append(buckets[k], i)
		}
	}
	out := NewPairSet()
	for j := 0; j < b.NumRows(); j++ {
		k := h.Key(b, j)
		if k == "" {
			continue
		}
		for _, i := range buckets[k] {
			out.Add(i, j)
		}
	}
	obs.done(out)
	return out, nil
}

// Union is a blocker whose output is the union of its members' outputs —
// the standard way to combine blockers to maximize recall, and the shape of
// the paper's Q2 and Q3.
type Union struct {
	ID      string
	Members []Blocker
}

// NewUnion combines blockers into a union blocker.
func NewUnion(id string, members ...Blocker) *Union {
	return &Union{ID: id, Members: members}
}

// Name implements Blocker.
func (u *Union) Name() string { return u.ID }

// Block implements Blocker.
func (u *Union) Block(a, b *table.Table) (*PairSet, error) {
	obs := startBlock(u.ID)
	out := NewPairSet()
	for _, m := range u.Members {
		c, err := m.Block(a, b)
		if err != nil {
			return nil, fmt.Errorf("union %s: member %s: %w", u.ID, m.Name(), err)
		}
		out.Union(c)
	}
	obs.done(out)
	return out, nil
}

// SortedNeighborhood keeps a pair when the tuples' keys fall within a
// sliding window of size Window in the merged key-sorted order of both
// tables (Section 2's sorted-neighborhood blocking).
type SortedNeighborhood struct {
	ID     string
	Key    KeyFunc
	Window int
}

// Name implements Blocker.
func (s *SortedNeighborhood) Name() string { return s.ID }

type snRec struct {
	key   string
	row   int
	fromA bool
}

// Block implements Blocker.
func (s *SortedNeighborhood) Block(a, b *table.Table) (*PairSet, error) {
	if s.Key == nil {
		return nil, fmt.Errorf("blocker %s: nil key function", s.ID)
	}
	if s.Window < 2 {
		return nil, fmt.Errorf("blocker %s: window must be at least 2, got %d", s.ID, s.Window)
	}
	recs := make([]snRec, 0, a.NumRows()+b.NumRows())
	for i := 0; i < a.NumRows(); i++ {
		if k := s.Key(a, i); k != "" {
			recs = append(recs, snRec{key: k, row: i, fromA: true})
		}
	}
	for j := 0; j < b.NumRows(); j++ {
		if k := s.Key(b, j); k != "" {
			recs = append(recs, snRec{key: k, row: j})
		}
	}
	sortStable(recs)
	out := NewPairSet()
	for i := range recs {
		hi := i + s.Window
		if hi > len(recs) {
			hi = len(recs)
		}
		for j := i + 1; j < hi; j++ {
			x, y := recs[i], recs[j]
			switch {
			case x.fromA && !y.fromA:
				out.Add(x.row, y.row)
			case !x.fromA && y.fromA:
				out.Add(y.row, x.row)
			}
		}
	}
	return out, nil
}

func sortStable(recs []snRec) {
	// Stable by key, then table, then row for determinism.
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		if recs[i].fromA != recs[j].fromA {
			return recs[i].fromA
		}
		return recs[i].row < recs[j].row
	})
}
