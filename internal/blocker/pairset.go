// Package blocker implements the blocking substrate MatchCatcher debugs:
// the standard blocker types (attribute equivalence, hash, sorted
// neighborhood, overlap, similarity-based, and rule-based), efficient
// index-driven execution for each, the candidate-set representation, and a
// parser for the rule mini-language used to encode the paper's Table 2
// blockers.
//
// A blocker maps two tables A and B to a candidate set C ⊆ A×B of tuple
// pairs that survive blocking; all other pairs are "killed off". The
// debugger is blocker independent: it consumes only A, B, and C.
package blocker

import (
	"sort"
)

// Pair identifies a candidate tuple pair by row indices into tables A and B.
type Pair struct {
	A, B int
}

// PairSet is a set of tuple pairs with O(1) membership, the representation
// of a blocker's output C. The zero value is not ready to use; call
// NewPairSet.
type PairSet struct {
	m map[int64]struct{}
}

// NewPairSet returns an empty pair set.
func NewPairSet() *PairSet {
	return &PairSet{m: make(map[int64]struct{})}
}

func key(a, b int) int64 { return int64(a)<<32 | int64(uint32(b)) }

// Add inserts the pair (a, b).
func (s *PairSet) Add(a, b int) {
	s.m[key(a, b)] = struct{}{}
}

// Contains reports whether the pair (a, b) is in the set.
func (s *PairSet) Contains(a, b int) bool {
	if s == nil || s.m == nil {
		return false
	}
	_, ok := s.m[key(a, b)]
	return ok
}

// Len returns the number of pairs.
func (s *PairSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Union adds every pair of other into s and returns s.
func (s *PairSet) Union(other *PairSet) *PairSet {
	if other != nil {
		for k := range other.m {
			s.m[k] = struct{}{}
		}
	}
	return s
}

// ForEach calls fn for every pair in unspecified order.
func (s *PairSet) ForEach(fn func(a, b int)) {
	if s == nil {
		return
	}
	for k := range s.m {
		fn(int(k>>32), int(int32(uint32(k))))
	}
}

// SortedPairs returns all pairs sorted by (A, B), for deterministic output.
func (s *PairSet) SortedPairs() []Pair {
	if s == nil {
		return nil
	}
	out := make([]Pair, 0, len(s.m))
	for k := range s.m {
		out = append(out, Pair{A: int(k >> 32), B: int(int32(uint32(k)))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
