package blocker

import (
	"fmt"
	"strconv"
	"strings"

	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/tokenize"
)

// Parse parses the blocker rule mini-language used throughout the paper's
// Table 2 into an expression tree. The grammar:
//
//	expr  := term ("OR" term)*
//	term  := unary ("AND" unary)*
//	unary := "NOT" unary | "(" expr ")" | atom
//	atom  := feature cmp number | feature
//
// Features:
//
//	attr_equal_<attr>            equality (boolean; bare atom means "equal")
//	<attr>_jac_<tok>             Jaccard over tokens        (tok: word|3gram)
//	<attr>_cos_<tok>             cosine over tokens
//	<attr>_dice_<tok>            Dice over tokens
//	<attr>_overlapcoeff_<tok>    overlap coefficient over tokens
//	<attr>_overlap_<tok>         raw common-token count
//	<attr>_absdiff               |x-y| of numeric values (alias: _abs_diff)
//	<attr>_editdist              Levenshtein distance (alias: _ed)
//
// <attr> may be a plain attribute name (underscores allowed) or a transform
// application lastword(<attr>) / firstword(<attr>), so the paper's blocker
// ed(lastword(a.Name), lastword(b.Name)) <= 2 is written
// "lastword(name)_ed <= 2".
//
// Whether the parsed expression keeps or drops pairs is decided by wrapping
// it in KeepRule or DropRule; Table 2's OL/SIM/R entries are drop rules
// (the Magellan convention: a firing rule blocks the pair), while its HASH
// entries are keep conditions.
func Parse(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("blocker: unexpected trailing input %q", p.peek().text)
	}
	return e, nil
}

// MustParse is like Parse but panics on error; for literal rules in tests
// and experiment definitions.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokOp
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
)

type token struct {
	kind tokKind
	text string
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			op := string(c)
			if i+1 < len(s) && s[i+1] == '=' {
				op += "="
				i++
			}
			i++
			if op == "!" {
				return nil, fmt.Errorf("blocker: stray '!' at offset %d", i-1)
			}
			toks = append(toks, token{tokOp, op})
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(s) {
				if isIdentChar(s[j]) {
					j++
					continue
				}
				// Allow one parenthesized argument inside an identifier,
				// for transform syntax like lastword(name).
				if s[j] == '(' {
					k := j + 1
					for k < len(s) && isIdentChar(s[k]) {
						k++
					}
					if k < len(s) && s[k] == ')' && k > j+1 {
						j = k + 1
						continue
					}
				}
				break
			}
			word := s[i:j]
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, token{tokAnd, word})
			case "OR":
				toks = append(toks, token{tokOr, word})
			case "NOT":
				toks = append(toks, token{tokNot, word})
			default:
				toks = append(toks, token{tokIdent, word})
			}
			i = j
		default:
			return nil, fmt.Errorf("blocker: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.done() {
		return token{kind: -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for !p.done() && p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for !p.done() && p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{inner}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("blocker: expected ')', got %q", p.peek().text)
		}
		p.next()
		return inner, nil
	case tokIdent:
		return p.parseAtom()
	}
	return nil, fmt.Errorf("blocker: expected expression, got %q", p.peek().text)
}

func (p *parser) parseAtom() (Expr, error) {
	ident := p.next().text
	feat, err := parseFeature(ident)
	if err != nil {
		return nil, err
	}
	if p.done() || p.peek().kind != tokOp {
		// Bare boolean atom: equality features default to "is equal".
		if feat.Kind == FeatEqual {
			return Atom{Feature: feat, Op: OpEQ, Value: 1}, nil
		}
		return nil, fmt.Errorf("blocker: feature %q needs a comparison", ident)
	}
	opTok := p.next().text
	var op CmpOp
	switch opTok {
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	case "=", "==":
		op = OpEQ
	case "!=":
		op = OpNE
	default:
		return nil, fmt.Errorf("blocker: unknown operator %q", opTok)
	}
	if p.peek().kind != tokNumber {
		return nil, fmt.Errorf("blocker: expected number after %q %s", ident, opTok)
	}
	v, err := strconv.ParseFloat(p.next().text, 64)
	if err != nil {
		return nil, fmt.Errorf("blocker: bad number in atom %q: %w", ident, err)
	}
	return Atom{Feature: feat, Op: op, Value: v}, nil
}

// suffixKinds maps feature-name suffixes to similarity kinds. The
// slice is ordered longest (most specific) suffix first and is
// iterated in that fixed order, so matching is deterministic no matter
// how the table grows — a map here would make first-match-wins parsing
// depend on randomized iteration order (mclint's mapiter analyzer now
// rejects that shape).
var suffixKinds = []struct {
	suf  string
	kind FeatureKind
}{
	{"_jaro", FeatJaro},
	{"_jw", FeatJaroWinkler},
}

// attrTransforms maps transform spellings to transforms, ordered
// longest name first for the same deterministic first-match-wins
// reason as suffixKinds.
var attrTransforms = []struct {
	name string
	tr   Transform
}{
	{"firstword", TransformFirstWord},
	{"lastword", TransformLastWord},
}

// parseFeature decodes a feature identifier. Attribute names may contain
// underscores, so suffixes are matched from the right.
func parseFeature(ident string) (Feature, error) {
	if rest, ok := strings.CutPrefix(ident, "attr_equal_"); ok {
		attr, tr, err := parseAttrRef(rest)
		if err != nil {
			return Feature{}, err
		}
		return Feature{Attr: attr, Transform: tr, Kind: FeatEqual}, nil
	}
	for _, suf := range []string{"_absdiff", "_abs_diff"} {
		if rest, ok := strings.CutSuffix(ident, suf); ok {
			attr, tr, err := parseAttrRef(rest)
			if err != nil {
				return Feature{}, err
			}
			return Feature{Attr: attr, Transform: tr, Kind: FeatAbsDiff}, nil
		}
	}
	for _, suf := range []string{"_editdist", "_ed"} {
		if rest, ok := strings.CutSuffix(ident, suf); ok {
			attr, tr, err := parseAttrRef(rest)
			if err != nil {
				return Feature{}, err
			}
			return Feature{Attr: attr, Transform: tr, Kind: FeatEditDist}, nil
		}
	}
	for _, sk := range suffixKinds {
		if rest, ok := strings.CutSuffix(ident, sk.suf); ok {
			attr, tr, err := parseAttrRef(rest)
			if err != nil {
				return Feature{}, err
			}
			return Feature{Attr: attr, Transform: tr, Kind: sk.kind}, nil
		}
	}
	// <attr>_<measure>_<tok>
	lastUnd := strings.LastIndexByte(ident, '_')
	if lastUnd < 0 {
		return Feature{}, fmt.Errorf("blocker: unrecognized feature %q", ident)
	}
	tok, tokOK := tokenize.ByName(ident[lastUnd+1:])
	if !tokOK {
		return Feature{}, fmt.Errorf("blocker: unrecognized feature %q (unknown tokenizer %q)", ident, ident[lastUnd+1:])
	}
	head := ident[:lastUnd]
	midUnd := strings.LastIndexByte(head, '_')
	if midUnd < 0 {
		return Feature{}, fmt.Errorf("blocker: feature %q is missing a measure", ident)
	}
	measureName := head[midUnd+1:]
	attrRef := head[:midUnd]
	attr, tr, err := parseAttrRef(attrRef)
	if err != nil {
		return Feature{}, err
	}
	if measureName == "overlap" {
		return Feature{Attr: attr, Transform: tr, Kind: FeatOverlapCount, Tok: tok}, nil
	}
	if measureName == "overlapcoeff" {
		return Feature{Attr: attr, Transform: tr, Kind: FeatSetSim, Measure: simfunc.Overlap, Tok: tok}, nil
	}
	m, ok := simfunc.MeasureByName(measureName)
	if !ok {
		return Feature{}, fmt.Errorf("blocker: unknown measure %q in feature %q", measureName, ident)
	}
	return Feature{Attr: attr, Transform: tr, Kind: FeatSetSim, Measure: m, Tok: tok}, nil
}

// parseAttrRef decodes "attr", "lastword(attr)", or "firstword(attr)".
func parseAttrRef(s string) (attr string, tr Transform, err error) {
	for _, at := range attrTransforms {
		if inner, ok := strings.CutPrefix(s, at.name+"("); ok {
			inner, ok = strings.CutSuffix(inner, ")")
			if !ok || inner == "" {
				return "", TransformNone, fmt.Errorf("blocker: malformed transform in %q", s)
			}
			return inner, at.tr, nil
		}
	}
	if s == "" || strings.ContainsAny(s, "()") {
		return "", TransformNone, fmt.Errorf("blocker: malformed attribute reference %q", s)
	}
	return s, TransformNone, nil
}
