package blocker

import (
	"strings"
	"testing"

	"matchcatcher/internal/simfunc"
)

func TestParseTable2Blockers(t *testing.T) {
	// Every blocker expression from the paper's Table 2 must parse.
	exprs := []string{
		"title_overlap_word<3",
		"attr_equal_manuf",
		"title_cos_word<0.4",
		"title_jac_word<0.2 AND manuf_jac_3gram<0.4",
		"attr_equal_brand",
		"price_absdiff>20 OR title_jac_word<0.5",
		"authors_overlap_word<2",
		"title_jac_3gram<0.7",
		"title_cos_word<0.8 AND authors_jac_3gram<0.8",
		"year_abs_diff>0.5 OR title_jac_word<0.7",
		"name_overlap_word<2",
		"attr_equal_city",
		"addr_jac_3gram<0.3",
		"(name_cos_word<0.5 AND type_jac_3gram<0.7) OR addr_jac_3gram<0.3",
		"artist_name_overlap_word<2",
		"attr_equal_artist_name",
		"title_cos_word<0.5",
		"year_absdiff>0.5 OR title_cos_word<0.7",
		"attr_equal_release OR attr_equal_artist_name",
		"title_cos_word<0.6",
		"title_cos_word<0.7",
		"title_cos_word<0.8",
	}
	for _, src := range exprs {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseFeatureDecoding(t *testing.T) {
	cases := []struct {
		src       string
		attr      string
		kind      FeatureKind
		measure   simfunc.SetMeasure
		tokName   string
		transform Transform
	}{
		{"title_jac_word<0.2", "title", FeatSetSim, simfunc.Jaccard, "word", TransformNone},
		{"manuf_jac_3gram<0.4", "manuf", FeatSetSim, simfunc.Jaccard, "3gram", TransformNone},
		{"artist_name_overlap_word<2", "artist_name", FeatOverlapCount, 0, "word", TransformNone},
		{"name_overlapcoeff_word>0.5", "name", FeatSetSim, simfunc.Overlap, "word", TransformNone},
		{"release_dice_word>=0.3", "release", FeatSetSim, simfunc.Dice, "word", TransformNone},
		{"price_absdiff>20", "price", FeatAbsDiff, 0, "", TransformNone},
		{"year_abs_diff>0.5", "year", FeatAbsDiff, 0, "", TransformNone},
		{"name_editdist<=2", "name", FeatEditDist, 0, "", TransformNone},
		{"lastword(name)_ed<=2", "name", FeatEditDist, 0, "", TransformLastWord},
		{"attr_equal_artist_name", "artist_name", FeatEqual, 0, "", TransformNone},
		{"attr_equal_lastword(name)", "name", FeatEqual, 0, "", TransformLastWord},
		{"attr_equal_firstword(name)", "name", FeatEqual, 0, "", TransformFirstWord},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		at, ok := e.(Atom)
		if !ok {
			t.Errorf("Parse(%q) = %T, want Atom", c.src, e)
			continue
		}
		f := at.Feature
		if f.Attr != c.attr || f.Kind != c.kind || f.Transform != c.transform {
			t.Errorf("Parse(%q) feature = %+v", c.src, f)
		}
		if c.kind == FeatSetSim && f.Measure != c.measure {
			t.Errorf("Parse(%q) measure = %v, want %v", c.src, f.Measure, c.measure)
		}
		if c.tokName != "" && f.Tok.Name() != c.tokName {
			t.Errorf("Parse(%q) tokenizer = %v, want %v", c.src, f.Tok.Name(), c.tokName)
		}
	}
}

func TestParsePrecedenceAndGrouping(t *testing.T) {
	// AND binds tighter than OR.
	e, err := Parse("a_absdiff<1 OR b_absdiff<2 AND c_absdiff<3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(Or)
	if !ok {
		t.Fatalf("top node = %T, want Or", e)
	}
	if _, ok := or.R.(And); !ok {
		t.Errorf("right of OR = %T, want And", or.R)
	}
	// Parentheses override.
	e2, err := Parse("(a_absdiff<1 OR b_absdiff<2) AND c_absdiff<3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(And); !ok {
		t.Fatalf("top node = %T, want And", e2)
	}
	// NOT.
	e3, err := Parse("NOT a_absdiff<1 AND b_absdiff<2")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e3.(And)
	if !ok {
		t.Fatalf("top = %T", e3)
	}
	if _, ok := and.L.(Not); !ok {
		t.Errorf("left = %T, want Not", and.L)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("a_absdiff<1 or b_absdiff<2 and not c_absdiff<3"); err != nil {
		t.Errorf("lowercase keywords: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"title_jac_word",          // sim feature needs comparison
		"title_jac_word <",        // missing number
		"title_jac_word < x",      // non-numeric
		"bogus",                   // unknown feature, no comparison
		"title_jac_bogus < 1",     // unknown tokenizer
		"title_hamming_word < 1",  // unknown measure
		"(a_absdiff<1",            // unbalanced paren
		"a_absdiff<1 b_absdiff<2", // missing connective
		"AND a_absdiff<1",         // dangling keyword
		"a_absdiff ! 1",           // stray bang
		"attr_equal_lastword()",   // malformed transform
		"title_jac_word << 1",     // bad op (lexes <, < then fails)
		"@title_jac_word<1",       // bad char
		"a_absdiff<1 AND",         // trailing connective
		"lastword(x)y_jac_word<1", // attr ref with stray parens
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestParseRoundTripsThroughString(t *testing.T) {
	srcs := []string{
		"price_absdiff>20 OR title_jac_word<0.5",
		"(name_cos_word<0.5 AND type_jac_3gram<0.7) OR addr_jac_3gram<0.3",
		"NOT attr_equal_city",
		"lastword(name)_ed<=2",
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, e1.String(), err)
		}
		if !strings.EqualFold(normalizeStr(e1.String()), normalizeStr(e2.String())) {
			t.Errorf("round trip changed: %q -> %q", e1.String(), e2.String())
		}
	}
}

func normalizeStr(s string) string { return strings.Join(strings.Fields(s), " ") }

func TestParseJaroFeatures(t *testing.T) {
	e, err := Parse("name_jw>=0.9")
	if err != nil {
		t.Fatal(err)
	}
	at := e.(Atom)
	if at.Feature.Kind != FeatJaroWinkler || at.Feature.Attr != "name" {
		t.Errorf("feature = %+v", at.Feature)
	}
	e2, err := Parse("lastword(name)_jaro<0.8")
	if err != nil {
		t.Fatal(err)
	}
	at2 := e2.(Atom)
	if at2.Feature.Kind != FeatJaro || at2.Feature.Transform != TransformLastWord {
		t.Errorf("feature = %+v", at2.Feature)
	}
	// String round trip.
	if got := at.String(); got != "name_jw>=0.9" {
		t.Errorf("String = %q", got)
	}
}
