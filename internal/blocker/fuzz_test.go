package blocker

import (
	"strings"
	"testing"
)

// FuzzParse asserts the rule parser never panics and that anything it
// accepts round-trips: the String() rendering of a parsed expression must
// parse again to an expression with the same rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"title_overlap_word<3",
		"attr_equal_manuf",
		"price_absdiff>20 OR title_jac_word<0.5",
		"(name_cos_word<0.5 AND type_jac_3gram<0.7) OR addr_jac_3gram<0.3",
		"NOT attr_equal_city",
		"lastword(name)_ed<=2",
		"name_jw>=0.9",
		"a_absdiff<1 AND NOT (b_absdiff>2 OR c_dice_word<0.3)",
		"((", "x", "_", "attr_equal_", ">=1", "a_jac_word< ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		rendered := e.String()
		e2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not reparse: %v", src, rendered, err)
		}
		if got := e2.String(); got != rendered {
			t.Fatalf("rendering not stable: %q -> %q", rendered, got)
		}
	})
}

// FuzzSoundex asserts Soundex output is always "" or letter+3 digits.
func FuzzSoundex(f *testing.F) {
	for _, s := range []string{"Robert", "smith", "", "123", "Ashcraft", "O'Brien", "日本語", "a", "pf"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c := Soundex(s)
		if c == "" {
			return
		}
		if len(c) != 4 {
			t.Fatalf("Soundex(%q) = %q (len %d)", s, c, len(c))
		}
		if c[0] < 'A' || c[0] > 'Z' {
			t.Fatalf("Soundex(%q) = %q: first char not a letter", s, c)
		}
		for i := 1; i < 4; i++ {
			if !strings.ContainsRune("0123456", rune(c[i])) {
				t.Fatalf("Soundex(%q) = %q: digit %q invalid", s, c, c[i])
			}
		}
	})
}
