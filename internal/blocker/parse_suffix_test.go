package blocker

import "testing"

// TestSuffixParsingOrderIndependent is the regression test for the
// map-iteration parse ambiguity fixed alongside mclint's mapiter
// analyzer: the _jw/_jaro suffix table and the lastword/firstword
// transform table used to live in maps and were resolved
// first-match-wins under randomized map iteration order. The tables
// are now fixed-order slices (longest/most-specific entry first), so
// every ident must resolve to exactly one feature kind on every run.
func TestSuffixParsingOrderIndependent(t *testing.T) {
	cases := []struct {
		ident string
		kind  FeatureKind
		attr  string
		tr    Transform
	}{
		{"title_jaro", FeatJaro, "title", TransformNone},
		{"title_jw", FeatJaroWinkler, "title", TransformNone},
		// Attribute names that themselves end in suffix-like tails:
		// the suffix must be cut from the right exactly once.
		{"a_jaro_jw", FeatJaroWinkler, "a_jaro", TransformNone},
		{"a_jw_jaro", FeatJaro, "a_jw", TransformNone},
		{"lastword(name)_jw", FeatJaroWinkler, "name", TransformLastWord},
		{"firstword(name)_jaro", FeatJaro, "name", TransformFirstWord},
	}
	// Repeat enough times that, were matching still map-ordered, the
	// randomized order would flip at least one outcome with
	// overwhelming probability.
	for run := 0; run < 64; run++ {
		for _, c := range cases {
			f, err := parseFeature(c.ident)
			if err != nil {
				t.Fatalf("run %d: parseFeature(%q): %v", run, c.ident, err)
			}
			if f.Kind != c.kind || f.Attr != c.attr || f.Transform != c.tr {
				t.Fatalf("run %d: parseFeature(%q) = kind %v attr %q tr %v; want kind %v attr %q tr %v",
					run, c.ident, f.Kind, f.Attr, f.Transform, c.kind, c.attr, c.tr)
			}
		}
	}
}

// TestSuffixTableMostSpecificFirst pins the table discipline itself:
// the _jaro entry must precede _jw (longest suffix first), and the
// transform table must be ordered the same way, so that growing either
// table cannot silently introduce shadowing.
func TestSuffixTableMostSpecificFirst(t *testing.T) {
	for i := 1; i < len(suffixKinds); i++ {
		if len(suffixKinds[i-1].suf) < len(suffixKinds[i].suf) {
			t.Errorf("suffixKinds[%d]=%q is longer than its predecessor %q; keep longest-first order",
				i, suffixKinds[i].suf, suffixKinds[i-1].suf)
		}
	}
	for i := 1; i < len(attrTransforms); i++ {
		if len(attrTransforms[i-1].name) < len(attrTransforms[i].name) {
			t.Errorf("attrTransforms[%d]=%q is longer than its predecessor %q; keep longest-first order",
				i, attrTransforms[i].name, attrTransforms[i-1].name)
		}
	}
	// And the expression parser must agree end to end.
	for _, expr := range []string{"name_jw>=0.9", "name_jaro>=0.9"} {
		if _, err := Parse(expr); err != nil {
			t.Errorf("Parse(%q): %v", expr, err)
		}
	}
}
