package blocker

import (
	"math"
	"sort"
	"strconv"

	"matchcatcher/internal/floats"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// Rule is a rule-based blocker defined by a keep condition: a pair survives
// blocking iff Keep holds. Build one with KeepRule (keep semantics) or
// DropRule (Magellan-style kill rules, as in the paper's Table 2). Block
// executes the rule with index-driven candidate generation: the keep
// condition is normalized to DNF and each conjunct is driven by its most
// selective indexable atom (equality > set similarity > overlap count >
// edit distance > numeric range), falling back to a nested loop only when
// a conjunct has no indexable atom. Atoms are compiled once per Block call
// so per-pair verification never re-tokenizes values.
type Rule struct {
	ID   string
	Keep Expr
}

// KeepRule returns a blocker that keeps exactly the pairs satisfying e.
func KeepRule(id string, e Expr) *Rule { return &Rule{ID: id, Keep: e} }

// DropRule returns a blocker that drops pairs satisfying e (and keeps the
// rest) — the convention of the paper's Table 2 OL/SIM/R blockers.
func DropRule(id string, e Expr) *Rule { return &Rule{ID: id, Keep: Not{e}} }

// MustParseDropRule parses src as a kill-rule expression and wraps it.
func MustParseDropRule(id, src string) *Rule { return DropRule(id, MustParse(src)) }

// MustParseKeepRule parses src as a keep expression and wraps it.
func MustParseKeepRule(id, src string) *Rule { return KeepRule(id, MustParse(src)) }

// Name implements Blocker.
func (r *Rule) Name() string { return r.ID }

// Block implements Blocker.
func (r *Rule) Block(a, b *table.Table) (*PairSet, error) {
	obs := startBlock(r.ID)
	out := NewPairSet()
	comp := newCompiler(a, b)
	for _, conj := range DNF(r.Keep) {
		blockConjunct(comp, conj, out)
	}
	obs.done(out)
	return out, nil
}

// compiler caches per-column derived data (token sets, normalized strings,
// parsed floats) shared by every atom over the same feature.
type compiler struct {
	a, b  *table.Table
	cache map[Feature]*columnData
}

type columnData struct {
	aToks, bToks [][]string // FeatSetSim / FeatOverlapCount
	aNorm, bNorm []string   // FeatEqual / FeatEditDist
	aNum, bNum   []float64  // FeatAbsDiff (NaN when missing)
	haveTok      bool
	haveNorm     bool
	haveNum      bool
}

func newCompiler(a, b *table.Table) *compiler {
	return &compiler{a: a, b: b, cache: map[Feature]*columnData{}}
}

// featKey strips the measure so that e.g. jac and cos atoms over the same
// attr/tokenizer/transform share token columns, and all normalized-string
// kinds (equality, edit distance, Jaro, Jaro-Winkler) share norm columns.
func featKey(f Feature) Feature {
	f.Measure = 0
	switch f.Kind {
	case FeatSetSim:
		f.Kind = FeatOverlapCount
	case FeatEditDist, FeatJaro, FeatJaroWinkler:
		f.Kind = FeatEqual
	}
	return f
}

func (c *compiler) data(f Feature) *columnData {
	k := featKey(f)
	d := c.cache[k]
	if d == nil {
		d = &columnData{}
		c.cache[k] = d
	}
	switch f.Kind {
	case FeatSetSim, FeatOverlapCount:
		if !d.haveTok {
			d.aToks = tokenizeColumn(c.a, f)
			d.bToks = tokenizeColumn(c.b, f)
			d.haveTok = true
		}
	case FeatEqual, FeatEditDist, FeatJaro, FeatJaroWinkler:
		if !d.haveNorm {
			d.aNorm = normColumn(c.a, f)
			d.bNorm = normColumn(c.b, f)
			d.haveNorm = true
		}
	case FeatAbsDiff:
		if !d.haveNum {
			d.aNum = numColumn(c.a, f)
			d.bNum = numColumn(c.b, f)
			d.haveNum = true
		}
	}
	return d
}

// compiled is an atom with a fast Holds over precomputed columns.
type compiled struct {
	at    Atom
	data  *columnData
	holds func(ra, rb int) bool
}

func (c *compiler) compile(at Atom) compiled {
	d := c.data(at.Feature)
	var holds func(ra, rb int) bool
	switch at.Feature.Kind {
	case FeatEqual:
		holds = func(ra, rb int) bool {
			x := 0.0
			if d.aNorm[ra] != "" && d.aNorm[ra] == d.bNorm[rb] {
				x = 1
			}
			return at.Op.holds(x, at.Value)
		}
	case FeatSetSim:
		m := at.Feature.Measure
		holds = func(ra, rb int) bool {
			return at.Op.holds(m.Score(d.aToks[ra], d.bToks[rb]), at.Value)
		}
	case FeatOverlapCount:
		holds = func(ra, rb int) bool {
			return at.Op.holds(float64(simfunc.OverlapCount(d.aToks[ra], d.bToks[rb])), at.Value)
		}
	case FeatEditDist:
		holds = func(ra, rb int) bool {
			return at.Op.holds(float64(simfunc.Levenshtein(d.aNorm[ra], d.bNorm[rb])), at.Value)
		}
	case FeatJaro:
		holds = func(ra, rb int) bool {
			return at.Op.holds(simfunc.Jaro(d.aNorm[ra], d.bNorm[rb]), at.Value)
		}
	case FeatJaroWinkler:
		holds = func(ra, rb int) bool {
			return at.Op.holds(simfunc.JaroWinkler(d.aNorm[ra], d.bNorm[rb]), at.Value)
		}
	case FeatAbsDiff:
		holds = func(ra, rb int) bool {
			x := math.Abs(d.aNum[ra] - d.bNum[rb])
			if math.IsNaN(x) {
				x = math.Inf(1)
			}
			return at.Op.holds(x, at.Value)
		}
	default:
		panic("blocker: unknown feature kind")
	}
	return compiled{at: at, data: d, holds: holds}
}

func tokenizeColumn(t *table.Table, f Feature) [][]string {
	out := make([][]string, t.NumRows())
	for i := range out {
		out[i] = f.Tok.Tokens(featValue(t, i, f))
	}
	return out
}

func normColumn(t *table.Table, f Feature) []string {
	out := make([]string, t.NumRows())
	for i := range out {
		out[i] = tokenize.Normalize(featValue(t, i, f))
	}
	return out
}

func numColumn(t *table.Table, f Feature) []float64 {
	out := make([]float64, t.NumRows())
	for i := range out {
		v, err := strconv.ParseFloat(featValue(t, i, f), 64)
		if err != nil {
			v = math.NaN()
		}
		out[i] = v
	}
	return out
}

func featValue(t *table.Table, row int, f Feature) string {
	v, _ := t.ValueByName(row, f.Attr)
	return f.Transform.apply(v)
}

// driverRank orders atom drivability; lower is better. Returns a large
// value for atoms that cannot drive candidate generation.
func driverRank(at Atom) int {
	switch at.Feature.Kind {
	case FeatEqual:
		if (at.Op == OpEQ || at.Op == OpGE) && at.Value == 1 || at.Op == OpGT && at.Value < 1 && at.Value >= 0 || at.Op == OpNE && at.Value == 0 {
			return 0
		}
	case FeatSetSim:
		if (at.Op == OpGE || at.Op == OpGT) && at.Value > 0 && at.Feature.Measure != simfunc.Overlap {
			return 1
		}
	case FeatOverlapCount:
		if at.Op == OpGE && at.Value >= 1 || at.Op == OpGT && at.Value >= 0 {
			return 2
		}
	case FeatEditDist:
		if at.Op == OpLE || at.Op == OpLT {
			return 3
		}
	case FeatAbsDiff:
		if at.Op == OpLE || at.Op == OpLT {
			return 4
		}
	}
	return 100
}

// blockConjunct emits every pair satisfying all atoms of conj into out.
func blockConjunct(c *compiler, conj []Atom, out *PairSet) {
	if len(conj) == 0 {
		return
	}
	comps := make([]compiled, len(conj))
	for i, at := range conj {
		comps[i] = c.compile(at)
	}
	best, bestRank := 0, driverRank(conj[0])
	for i := 1; i < len(conj); i++ {
		if r := driverRank(conj[i]); r < bestRank {
			best, bestRank = i, r
		}
	}
	verify := func(ra, rb int) {
		for i := range comps {
			if !comps[i].holds(ra, rb) {
				return
			}
		}
		out.Add(ra, rb)
	}
	if bestRank >= 100 {
		// No indexable atom: nested loop. Correct on any input; intended
		// for small tables or conjuncts like "absdiff > t" alone.
		for ra := 0; ra < c.a.NumRows(); ra++ {
			for rb := 0; rb < c.b.NumRows(); rb++ {
				verify(ra, rb)
			}
		}
		return
	}
	drv := comps[best]
	at := drv.at
	switch at.Feature.Kind {
	case FeatEqual:
		driveEquality(drv, verify)
	case FeatSetSim:
		t := at.Value
		if at.Op == OpGT {
			t = math.Nextafter(t, 1)
		}
		drivePrefixFilter(drv, t, verify)
	case FeatOverlapCount:
		cnt := int(math.Ceil(at.Value))
		// Exact on purpose: cnt is an integer-valued float and the rule
		// threshold must flip strictly-greater to at-least on the boundary.
		if at.Op == OpGT && floats.Equal(float64(cnt), at.Value) {
			cnt++
		}
		if cnt < 1 {
			cnt = 1
		}
		driveOverlapCount(drv, cnt, verify)
	case FeatEditDist:
		d := int(math.Floor(at.Value))
		// Exact on purpose: same integer-boundary flip as overlap counts.
		if at.Op == OpLT && floats.Equal(float64(d), at.Value) {
			d--
		}
		driveEditDistance(drv, d, verify)
	case FeatAbsDiff:
		driveNumericRange(drv, at.Value, verify)
	}
}

func driveEquality(drv compiled, emit func(ra, rb int)) {
	buckets := make(map[string][]int)
	for ra, k := range drv.data.aNorm {
		if k != "" {
			buckets[k] = append(buckets[k], ra)
		}
	}
	for rb, k := range drv.data.bNorm {
		if k == "" {
			continue
		}
		for _, ra := range buckets[k] {
			emit(ra, rb)
		}
	}
}

// minOverlap returns the minimum overlap a set of size lx must share with
// any partner for the measure to reach threshold t (prefix filtering: the
// first common token of a qualifying pair lies within the first
// lx - minOverlap + 1 tokens).
func minOverlap(m simfunc.SetMeasure, t float64, lx int) int {
	var o float64
	switch m {
	case simfunc.Jaccard:
		o = t * float64(lx)
	case simfunc.Cosine:
		o = t * t * float64(lx)
	case simfunc.Dice:
		o = t / (2 - t) * float64(lx)
	default:
		o = 1
	}
	mo := int(math.Ceil(o - 1e-9))
	if mo < 1 {
		mo = 1
	}
	if mo > lx {
		mo = lx
	}
	return mo
}

// tokenOrder assigns each token a global rank by increasing document
// frequency across both token lists, so prefixes hold the rarest tokens.
func tokenOrder(lists ...[][]string) map[string]int {
	freq := make(map[string]int)
	for _, ls := range lists {
		for _, toks := range ls {
			for _, t := range toks {
				freq[t]++
			}
		}
	}
	toks := make([]string, 0, len(freq))
	for t := range freq {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool {
		if freq[toks[i]] != freq[toks[j]] {
			return freq[toks[i]] < freq[toks[j]]
		}
		return toks[i] < toks[j]
	})
	order := make(map[string]int, len(toks))
	for i, t := range toks {
		order[t] = i
	}
	return order
}

// drivePrefixFilter generates candidates for measure(f) >= t using prefix
// filtering, then verifies exactly via emit. It sorts copies of the token
// columns so the shared cache keeps its original order.
func drivePrefixFilter(drv compiled, t float64, emit func(ra, rb int)) {
	m := drv.at.Feature.Measure
	order := tokenOrder(drv.data.aToks, drv.data.bToks)
	sortToks := func(col [][]string) [][]string {
		out := make([][]string, len(col))
		for i, toks := range col {
			cp := append([]string(nil), toks...)
			sort.Slice(cp, func(x, y int) bool { return order[cp[x]] < order[cp[y]] })
			out[i] = cp
		}
		return out
	}
	aToks := sortToks(drv.data.aToks)
	bToks := sortToks(drv.data.bToks)
	idx := make(map[string][]int)
	for ra, toks := range aToks {
		lx := len(toks)
		if lx == 0 {
			continue
		}
		p := lx - minOverlap(m, t, lx) + 1
		for _, tok := range toks[:p] {
			idx[tok] = append(idx[tok], ra)
		}
	}
	seen := make(map[int]int) // candidate ra -> stamp of last rb processed
	for rb, toks := range bToks {
		ly := len(toks)
		if ly == 0 {
			continue
		}
		p := ly - minOverlap(m, t, ly) + 1
		for _, tok := range toks[:p] {
			for _, ra := range idx[tok] {
				if seen[ra] == rb+1 {
					continue
				}
				seen[ra] = rb + 1
				emit(ra, rb)
			}
		}
	}
}

// driveOverlapCount generates candidates sharing at least cnt tokens via
// an inverted index with per-candidate counting.
func driveOverlapCount(drv compiled, cnt int, emit func(ra, rb int)) {
	idx := make(map[string][]int)
	for ra, toks := range drv.data.aToks {
		for _, tok := range toks {
			idx[tok] = append(idx[tok], ra)
		}
	}
	counts := make(map[int]int)
	for rb, toks := range drv.data.bToks {
		clear(counts)
		for _, tok := range toks {
			for _, ra := range idx[tok] {
				counts[ra]++
			}
		}
		for ra, n := range counts {
			if n >= cnt {
				emit(ra, rb)
			}
		}
	}
}

// driveEditDistance generates candidates within edit distance d using
// 3-gram count filtering with a length filter, falling back to a
// length-filtered scan for strings too short for the gram filter.
func driveEditDistance(drv compiled, d int, emit func(ra, rb int)) {
	if d < 0 {
		return
	}
	const q = 3
	aNorm, bNorm := drv.data.aNorm, drv.data.bNorm
	aGrams := make([][]string, len(aNorm))
	idx := make(map[string][]int)
	for ra, n := range aNorm {
		g := tokenize.QGramSet(n, q)
		aGrams[ra] = g
		for _, gram := range g {
			idx[gram] = append(idx[gram], ra)
		}
	}
	counts := make(map[int]int)
	for rb, nb := range bNorm {
		gb := tokenize.QGramSet(nb, q)
		// Each edit destroys at most q grams of b's gram set.
		need := len(gb) - q*d
		if need >= 1 {
			clear(counts)
			for _, gram := range gb {
				for _, ra := range idx[gram] {
					counts[ra]++
				}
			}
			for ra, n := range counts {
				if n >= need && lenDiffOK(aNorm[ra], nb, d) {
					emit(ra, rb)
				}
			}
			continue
		}
		// Too short to filter by grams: scan with the length filter only.
		for ra := range aNorm {
			if lenDiffOK(aNorm[ra], nb, d) {
				emit(ra, rb)
			}
		}
	}
}

func lenDiffOK(x, y string, d int) bool {
	dx := len(x) - len(y)
	if dx < 0 {
		dx = -dx
	}
	return dx <= d
}

// driveNumericRange generates candidates with |x-y| <= v by sorting A's
// numeric values and range-scanning per tuple of B.
func driveNumericRange(drv compiled, v float64, emit func(ra, rb int)) {
	type num struct {
		val float64
		row int
	}
	var nums []num
	for ra, x := range drv.data.aNum {
		if !math.IsNaN(x) {
			nums = append(nums, num{x, ra})
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i].val < nums[j].val })
	for rb, y := range drv.data.bNum {
		if math.IsNaN(y) {
			continue
		}
		lo := sort.Search(len(nums), func(i int) bool { return nums[i].val >= y-v })
		for i := lo; i < len(nums) && nums[i].val <= y+v; i++ {
			emit(nums[i].row, rb)
		}
	}
}
