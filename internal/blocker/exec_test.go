package blocker

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// bruteForceKeep computes the keep set by evaluating the expression on
// every pair — the reference for the index-driven executor.
func bruteForceKeep(a, b *table.Table, e Expr) *PairSet {
	out := NewPairSet()
	for ra := 0; ra < a.NumRows(); ra++ {
		for rb := 0; rb < b.NumRows(); rb++ {
			if e.Holds(a, ra, b, rb) {
				out.Add(ra, rb)
			}
		}
	}
	return out
}

func samePairSet(x, y *PairSet) bool {
	if x.Len() != y.Len() {
		return false
	}
	same := true
	x.ForEach(func(a, b int) {
		if !y.Contains(a, b) {
			same = false
		}
	})
	return same
}

// randomProductTable builds a small dirty product table.
func randomProductTable(name string, n int, rng *rand.Rand) *table.Table {
	brands := []string{"acme", "globex", "initech", "umbrella", ""}
	words := []string{"usb", "cable", "fast", "pro", "mini", "charger", "hub", "adapter", "hd", "wireless"}
	t := table.MustNew(name, []string{"title", "brand", "price", "year"})
	for i := 0; i < n; i++ {
		nw := 1 + rng.Intn(4)
		var title []string
		for w := 0; w < nw; w++ {
			title = append(title, words[rng.Intn(len(words))])
		}
		price := fmt.Sprintf("%d", rng.Intn(60))
		if rng.Intn(8) == 0 {
			price = ""
		}
		t.MustAppend([]string{
			strings.Join(title, " "),
			brands[rng.Intn(len(brands))],
			price,
			fmt.Sprintf("%d", 2000+rng.Intn(10)),
		})
	}
	return t
}

// TestRuleExecutionMatchesBruteForce is the core soundness property of the
// index-driven executor: for a zoo of rules spanning every driver kind,
// Block produces exactly the brute-force keep set.
func TestRuleExecutionMatchesBruteForce(t *testing.T) {
	rules := []string{
		"title_overlap_word<2",
		"title_jac_word<0.4",
		"title_cos_word<0.5",
		"title_dice_word<0.5",
		"brand_jac_3gram<0.6",
		"attr_equal_brand",
		"price_absdiff>20",
		"price_absdiff>20 OR title_jac_word<0.5",
		"title_jac_word<0.2 AND brand_jac_3gram<0.4",
		"(title_cos_word<0.5 AND brand_jac_3gram<0.7) OR title_jac_word<0.3",
		"year_absdiff>2 OR title_cos_word<0.7",
		"title_editdist>4",
		"lastword(title)_ed>1",
		"NOT attr_equal_brand AND title_overlap_word<1",
		"title_overlapcoeff_word<0.5",
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := randomProductTable("A", 40, rng)
		b := randomProductTable("B", 50, rng)
		for _, src := range rules {
			expr := MustParse(src)
			for _, mode := range []string{"drop", "keep"} {
				var r *Rule
				if mode == "drop" {
					r = DropRule(mode+":"+src, expr)
				} else {
					r = KeepRule(mode+":"+src, expr)
				}
				got, err := r.Block(a, b)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, r.Name(), err)
				}
				want := bruteForceKeep(a, b, r.Keep)
				if !samePairSet(got, want) {
					t.Errorf("seed %d rule %s: got %d pairs, want %d",
						seed, r.Name(), got.Len(), want.Len())
				}
			}
		}
	}
}

func TestConvenienceBlockers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomProductTable("A", 30, rng)
	b := randomProductTable("B", 30, rng)

	ov := NewOverlap("title", wordTok(), 2)
	got, err := ov.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceKeep(a, b, ov.Keep)
	if !samePairSet(got, want) {
		t.Errorf("NewOverlap: got %d, want %d", got.Len(), want.Len())
	}

	sim := NewSim("title", jacMeasure(), wordTok(), 0.5)
	got, err = sim.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want = bruteForceKeep(a, b, sim.Keep)
	if !samePairSet(got, want) {
		t.Errorf("NewSim: got %d, want %d", got.Len(), want.Len())
	}

	ed := NewEditDistance("brand", TransformNone, 2)
	got, err = ed.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want = bruteForceKeep(a, b, ed.Keep)
	if !samePairSet(got, want) {
		t.Errorf("NewEditDistance: got %d, want %d", got.Len(), want.Len())
	}
	if !strings.Contains(ed.Name(), "ed<=2") {
		t.Errorf("name = %q", ed.Name())
	}
}

func TestRuleNamesAndParseHelpers(t *testing.T) {
	r := MustParseDropRule("ol", "title_overlap_word<3")
	if r.Name() != "ol" {
		t.Errorf("name = %q", r.Name())
	}
	k := MustParseKeepRule("keep", "attr_equal_brand")
	if k.Name() != "keep" {
		t.Errorf("name = %q", k.Name())
	}
}

func TestEditDistanceShortStringsFallback(t *testing.T) {
	// Strings shorter than the gram filter threshold exercise the
	// length-filtered scan path.
	a := table.MustNew("A", []string{"x"})
	for _, v := range []string{"ab", "cd", "a", ""} {
		a.MustAppend([]string{v})
	}
	b := table.MustNew("B", []string{"x"})
	for _, v := range []string{"ac", "c", "zzzzzzzz"} {
		b.MustAppend([]string{v})
	}
	r := NewEditDistance("x", TransformNone, 1)
	got, err := r.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceKeep(a, b, r.Keep)
	if !samePairSet(got, want) {
		t.Errorf("short-string ed: got %v, want %v", got.SortedPairs(), want.SortedPairs())
	}
}

func wordTok() tokenize.Tokenizer { return tokenize.WordTokenizer{} }

func jacMeasure() simfunc.SetMeasure { return simfunc.Jaccard }

func TestJaroRulesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomProductTable("A", 25, rng)
	b := randomProductTable("B", 25, rng)
	for _, src := range []string{"title_jw<0.85", "brand_jaro<0.9", "lastword(title)_jw>=0.8"} {
		r := DropRule(src, MustParse(src))
		got, err := r.Block(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceKeep(a, b, r.Keep)
		if !samePairSet(got, want) {
			t.Errorf("rule %s: got %d pairs, want %d", src, got.Len(), want.Len())
		}
	}
}
