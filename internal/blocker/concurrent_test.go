package blocker

import (
	"math/rand"
	"testing"

	"matchcatcher/internal/table"
)

func TestConcurrentMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := randomProductTable("A", 60, rng)
	b := randomProductTable("B", 90, rng)
	inner := []Blocker{
		NewAttrEquivalence("brand"),
		MustParseDropRule("r", "price_absdiff>20 OR title_jac_word<0.5"),
		NewUnion("u", NewAttrEquivalence("brand"), MustParseKeepRule("k", "title_overlap_word>=2")),
	}
	for _, q := range inner {
		serial, err := q.Block(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7, 1000} {
			par := &Concurrent{Inner: q, Workers: workers}
			got, err := par.Block(a, b)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", q.Name(), workers, err)
			}
			if !samePairSet(got, serial) {
				t.Errorf("%s workers=%d: %d pairs, serial %d", q.Name(), workers, got.Len(), serial.Len())
			}
		}
	}
}

func TestConcurrentRejectsContextDependent(t *testing.T) {
	a := table.MustNew("A", []string{"x"})
	b := table.MustNew("B", []string{"x"})
	for _, inner := range []Blocker{
		&SortedNeighborhood{ID: "sn", Key: AttrKey("x"), Window: 2},
		NewCanopy("x"),
		NewSuffixArray("x"),
		NewUnion("u", NewCanopy("x")),
	} {
		if _, err := NewConcurrent(inner).Block(a, b); err == nil {
			t.Errorf("%s should be rejected by the concurrent driver", inner.Name())
		}
	}
	// Nested Concurrent over a safe blocker is fine.
	ok := NewConcurrent(NewConcurrent(NewAttrEquivalence("x")))
	if _, err := ok.Block(a, b); err != nil {
		t.Errorf("nested concurrent: %v", err)
	}
}

func TestConcurrentName(t *testing.T) {
	c := NewConcurrent(NewAttrEquivalence("x"))
	if c.Name() != "attr_equal_x+parallel" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestTableRange(t *testing.T) {
	tb := table.MustNew("T", []string{"x"})
	for i := 0; i < 5; i++ {
		tb.MustAppend([]string{string(rune('a' + i))})
	}
	r := tb.Range(1, 3)
	if r.NumRows() != 2 || r.Value(0, 0) != "b" {
		t.Errorf("Range view wrong: %d rows, first %q", r.NumRows(), r.Value(0, 0))
	}
	if tb.Range(-5, 99).NumRows() != 5 {
		t.Error("Range clamping broken")
	}
	if tb.Range(4, 2).NumRows() != 0 {
		t.Error("inverted Range should be empty")
	}
}
