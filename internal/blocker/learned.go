package blocker

import (
	"fmt"

	"matchcatcher/internal/table"
)

// LabeledPair is one sample pair labeled match/no-match (the stand-in for
// the crowdsourced samples that state-of-the-art blocker learners such as
// Falcon [8] train on; see §6.2 of the paper).
type LabeledPair struct {
	A, B  int
	Match bool
}

// Learn greedily builds a union-of-rules blocker from a candidate pool:
// at each step it adds the rule that keeps the most not-yet-covered sample
// matches while keeping at most maxFPRate of the sample non-matches, and
// stops after maxRules rules or when no rule improves coverage. Like the
// sample-trained learners it models, the result can look excellent on the
// sample yet kill unseen matches — exactly the failure mode MatchCatcher
// is then used to expose.
func Learn(id string, a, b *table.Table, sample []LabeledPair, pool []*Rule, maxRules int, maxFPRate float64) (*Union, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("blocker: Learn needs a labeled sample")
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("blocker: Learn needs a candidate rule pool")
	}
	var matches, nons []LabeledPair
	for _, p := range sample {
		if p.Match {
			matches = append(matches, p)
		} else {
			nons = append(nons, p)
		}
	}
	// keeps[r][i] caches rule r's verdict on sample matches.
	keeps := make([][]bool, len(pool))
	fpRate := make([]float64, len(pool))
	for ri, r := range pool {
		keeps[ri] = make([]bool, len(matches))
		for i, p := range matches {
			keeps[ri][i] = r.Keep.Holds(a, p.A, b, p.B)
		}
		fp := 0
		for _, p := range nons {
			if r.Keep.Holds(a, p.A, b, p.B) {
				fp++
			}
		}
		if len(nons) > 0 {
			fpRate[ri] = float64(fp) / float64(len(nons))
		}
	}
	covered := make([]bool, len(matches))
	u := &Union{ID: id}
	for len(u.Members) < maxRules {
		best, bestGain := -1, 0
		for ri := range pool {
			if fpRate[ri] > maxFPRate {
				continue
			}
			gain := 0
			for i := range matches {
				if !covered[i] && keeps[ri][i] {
					gain++
				}
			}
			// Prefer higher gain; break ties toward more selective rules.
			if gain > bestGain || gain == bestGain && gain > 0 && best >= 0 && fpRate[ri] < fpRate[best] {
				best, bestGain = ri, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		u.Members = append(u.Members, pool[best])
		for i := range matches {
			if keeps[best][i] {
				covered[i] = true
			}
		}
	}
	if len(u.Members) == 0 {
		return nil, fmt.Errorf("blocker: Learn found no rule within the false-positive budget")
	}
	return u, nil
}
