package blocker

import (
	"testing"

	"matchcatcher/internal/table"
)

func TestSoundexKnownCodes(t *testing.T) {
	// Classic reference values for American Soundex.
	cases := map[string]string{
		"Robert":   "R163",
		"Rupert":   "R163",
		"Ashcraft": "A261", // H transparent between S and C
		"Ashcroft": "A261",
		"Tymczak":  "T522",
		"Pfister":  "P236",
		"Honeyman": "H555",
		"Smith":    "S530",
		"Smyth":    "S530",
		"Williams": "W452",
		"William":  "W450",
		"Lee":      "L000",
		"":         "",
		"123":      "",
		"  Gauss ": "G200",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPhoneticBlocker(t *testing.T) {
	a := table.MustNew("A", []string{"name"})
	a.MustAppend([]string{"John Smith"})
	a.MustAppend([]string{"Mary Jones"})
	a.MustAppend([]string{""})
	b := table.MustNew("B", []string{"name"})
	b.MustAppend([]string{"Jon Smyth"}) // sounds like John Smith
	b.MustAppend([]string{"Marie Johnson"})
	p := NewPhonetic("name")
	got := pairsOf(t, p, a, b)
	if !got[(Pair{0, 0})] {
		t.Error("phonetic blocker should pair John Smith with Jon Smyth")
	}
	if got[(Pair{1, 0})] || got[(Pair{2, 0})] {
		t.Errorf("unexpected pairs: %v", got)
	}
}

func TestSuffixArrayBlocker(t *testing.T) {
	a := table.MustNew("A", []string{"name"})
	a.MustAppend([]string{"megastore downtown"}) // suffixes include "town"
	a.MustAppend([]string{"xy"})                 // too short
	b := table.MustNew("B", []string{"name"})
	b.MustAppend([]string{"store downtown"}) // shares long suffix
	b.MustAppend([]string{"unrelated"})
	s := NewSuffixArray("name")
	got := pairsOf(t, s, a, b)
	if !got[(Pair{0, 0})] {
		t.Errorf("suffix blocker missed the shared-suffix pair: %v", got)
	}
	if got[(Pair{0, 1})] {
		t.Error("unrelated pair blocked")
	}
}

func TestSuffixArrayBucketPrune(t *testing.T) {
	// Every tuple ends in the same common suffix; a small MaxBucket must
	// prune that bucket entirely.
	a := table.MustNew("A", []string{"name"})
	b := table.MustNew("B", []string{"name"})
	for i := 0; i < 10; i++ {
		a.MustAppend([]string{string(rune('a'+i)) + "zzcommon"})
		b.MustAppend([]string{string(rune('p'+i)) + "yycommon"})
	}
	s := &SuffixArray{ID: "s", Key: AttrKey("name"), MinSuffix: 4, MaxBucket: 5}
	c, err := s.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Errorf("common-suffix bucket not pruned: %d pairs", c.Len())
	}
	// With a large budget the pairs appear.
	s.MaxBucket = 1000
	c, err = s.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Error("no pairs despite shared suffix and large budget")
	}
}

func TestSuffixArrayValidation(t *testing.T) {
	a := table.MustNew("A", []string{"x"})
	b := table.MustNew("B", []string{"x"})
	if _, err := (&SuffixArray{ID: "s"}).Block(a, b); err == nil {
		t.Error("want error for nil key")
	}
}

func TestCanopyBlocker(t *testing.T) {
	a := table.MustNew("A", []string{"name"})
	a.MustAppend([]string{"alpha beta gamma"})
	a.MustAppend([]string{"delta epsilon zeta"})
	b := table.MustNew("B", []string{"name"})
	b.MustAppend([]string{"alpha beta gamma extra"}) // same canopy as a0
	b.MustAppend([]string{"delta epsilon eta"})      // same canopy as a1
	b.MustAppend([]string{"omega psi chi"})          // its own canopy
	c := NewCanopy("name")
	got := pairsOf(t, c, a, b)
	if !got[(Pair{0, 0})] {
		t.Error("canopy missed (a0,b0)")
	}
	if !got[(Pair{1, 1})] {
		t.Error("canopy missed (a1,b1)")
	}
	if got[(Pair{0, 2})] || got[(Pair{1, 2})] {
		t.Errorf("cross-canopy pair blocked: %v", got)
	}
}

func TestCanopyValidation(t *testing.T) {
	a := table.MustNew("A", []string{"x"})
	b := table.MustNew("B", []string{"x"})
	bad := &Canopy{ID: "c", Attr: "x", Tight: 0.2, Loose: 0.5}
	if _, err := bad.Block(a, b); err == nil {
		t.Error("want error when loose > tight")
	}
	missing := NewCanopy("nope")
	if _, err := missing.Block(a, b); err == nil {
		t.Error("want error for missing attribute")
	}
}

// TestNewBlockerTypesWithDebugger: the debugger is blocker independent, so
// the new types plug straight in.
func TestNewBlockerTypesWithDebugger(t *testing.T) {
	a := table.MustNew("A", []string{"name"})
	a.MustAppend([]string{"john smith"})
	a.MustAppend([]string{"mary jones"})
	b := table.MustNew("B", []string{"name"})
	b.MustAppend([]string{"jon smyth"})
	b.MustAppend([]string{"marie johnson"})
	for _, q := range []Blocker{NewPhonetic("name"), NewSuffixArray("name"), NewCanopy("name")} {
		if _, err := q.Block(a, b); err != nil {
			t.Errorf("%s: %v", q.Name(), err)
		}
	}
}
