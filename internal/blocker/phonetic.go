package blocker

import (
	"strings"

	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// Soundex computes the American Soundex code of a word (the classic
// phonetic hash: first letter plus three digits, e.g. "robert" -> "R163").
// Non-ASCII-letter input yields "" (no code, joins with nothing).
func Soundex(word string) string {
	w := strings.ToUpper(strings.TrimSpace(word))
	// Find the first letter.
	start := -1
	for i := 0; i < len(w); i++ {
		if w[i] >= 'A' && w[i] <= 'Z' {
			start = i
			break
		}
	}
	if start < 0 {
		return ""
	}
	code := func(c byte) byte {
		switch c {
		case 'B', 'F', 'P', 'V':
			return '1'
		case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
			return '2'
		case 'D', 'T':
			return '3'
		case 'L':
			return '4'
		case 'M', 'N':
			return '5'
		case 'R':
			return '6'
		}
		return 0 // vowels, H, W, Y, and non-letters
	}
	out := []byte{w[start]}
	prev := code(w[start])
	for i := start + 1; i < len(w) && len(out) < 4; i++ {
		c := w[i]
		if c < 'A' || c > 'Z' {
			prev = 0
			continue
		}
		d := code(c)
		// H and W are transparent: they do not reset the previous code.
		if c == 'H' || c == 'W' {
			continue
		}
		if d == 0 {
			prev = 0
			continue
		}
		if d != prev {
			out = append(out, d)
		}
		prev = d
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexKey returns a KeyFunc hashing on the Soundex codes of the words
// of attr, enabling phonetic blocking (Section 2's "phonetic (e.g.,
// soundex)" blocker type): tuples block together when their names sound
// alike, e.g. "Smith" and "Smyth".
func SoundexKey(attr string) KeyFunc {
	return func(t *table.Table, row int) string {
		v, _ := t.ValueByName(row, attr)
		words := tokenize.Words(v)
		if len(words) == 0 {
			return ""
		}
		codes := make([]string, 0, len(words))
		for _, w := range words {
			if c := Soundex(w); c != "" {
				codes = append(codes, c)
			}
		}
		return strings.Join(codes, " ")
	}
}

// NewPhonetic returns a phonetic (Soundex) blocker on attr.
func NewPhonetic(attr string) *Hash {
	return &Hash{ID: "soundex_" + attr, Key: SoundexKey(attr)}
}
