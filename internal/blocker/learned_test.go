package blocker

import (
	"math/rand"
	"testing"

	"matchcatcher/internal/table"
)

// learnFixture builds tables where two rules are each needed to cover all
// sample matches: half the matches agree on brand, the other half have
// highly similar titles but missing brands.
func learnFixture(t *testing.T) (*table.Table, *table.Table, []LabeledPair) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	a := table.MustNew("A", []string{"title", "brand"})
	b := table.MustNew("B", []string{"title", "brand"})
	var sample []LabeledPair
	words := []string{"kor", "mel", "vin", "tra", "sel", "dor", "pla", "che"}
	phrase := func(n int) string {
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))] + words[rng.Intn(len(words))]
		}
		return s
	}
	for i := 0; i < 40; i++ {
		title := phrase(4)
		if i%2 == 0 {
			brand := words[i%len(words)]
			a.MustAppend([]string{phrase(4), brand})
			b.MustAppend([]string{phrase(4), brand})
		} else {
			a.MustAppend([]string{title, ""})
			b.MustAppend([]string{title, ""})
		}
		sample = append(sample, LabeledPair{A: i, B: i, Match: true})
	}
	// Non-matches: random cross pairs.
	for i := 0; i < 40; i++ {
		x, y := rng.Intn(40), rng.Intn(40)
		if x == y {
			continue
		}
		sample = append(sample, LabeledPair{A: x, B: y, Match: false})
	}
	return a, b, sample
}

func TestLearnCoversWithMultipleRules(t *testing.T) {
	a, b, sample := learnFixture(t)
	pool := []*Rule{
		MustParseKeepRule("eq-brand", "attr_equal_brand"),
		MustParseKeepRule("title-cos", "title_cos_word>=0.9"),
		MustParseKeepRule("useless", "title_overlap_word>=100"),
	}
	u, err := Learn("learned", a, b, sample, pool, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Members) < 2 {
		t.Fatalf("learned only %v; both rules are needed", u.Members)
	}
	// The learned blocker must keep every sample match.
	c, err := u.Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sample {
		if p.Match && !c.Contains(p.A, p.B) {
			t.Errorf("learned blocker kills sample match (%d,%d)", p.A, p.B)
		}
	}
}

func TestLearnRespectsMaxRules(t *testing.T) {
	a, b, sample := learnFixture(t)
	pool := []*Rule{
		MustParseKeepRule("eq-brand", "attr_equal_brand"),
		MustParseKeepRule("title-cos", "title_cos_word>=0.9"),
	}
	u, err := Learn("learned", a, b, sample, pool, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Members) != 1 {
		t.Errorf("members = %d, want 1", len(u.Members))
	}
}

func TestLearnRejectsHighFalsePositiveRules(t *testing.T) {
	a, b, sample := learnFixture(t)
	// A rule that keeps everything has fpRate 1 and must be excluded.
	pool := []*Rule{
		MustParseKeepRule("keep-all", "title_overlap_word>=0"),
	}
	if _, err := Learn("learned", a, b, sample, pool, 3, 0.1); err == nil {
		t.Error("want error when only rule violates the FP budget")
	}
}

func TestLearnValidation(t *testing.T) {
	a, b, sample := learnFixture(t)
	pool := []*Rule{MustParseKeepRule("eq", "attr_equal_brand")}
	if _, err := Learn("x", a, b, nil, pool, 3, 0.1); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := Learn("x", a, b, sample, nil, 3, 0.1); err == nil {
		t.Error("want error for empty pool")
	}
}
