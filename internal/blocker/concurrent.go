package blocker

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"matchcatcher/internal/table"
)

// Concurrent wraps a blocker with a multicore driver: table B is split
// into Workers chunks, the inner blocker runs on each (A, chunk) pair
// concurrently, and the outputs are merged with B-row indices remapped.
// This is sound for every blocker whose semantics are a predicate over
// individual tuple pairs (hash, overlap, similarity, and rule blockers —
// all of this package except SortedNeighborhood and Canopy, whose output
// depends on the whole table; Block rejects those). Section 2 of the
// paper notes blockers are routinely parallelized this way.
type Concurrent struct {
	Inner   Blocker
	Workers int // default GOMAXPROCS
}

// NewConcurrent wraps inner with the default worker count.
func NewConcurrent(inner Blocker) *Concurrent { return &Concurrent{Inner: inner} }

// Name implements Blocker.
func (c *Concurrent) Name() string { return c.Inner.Name() + "+parallel" }

// pairLocal marks blockers whose output is a pure per-pair predicate, so
// partitioning a table cannot change the result. SuffixArray is excluded:
// its bucket-size prune depends on whole-table frequencies.
func pairLocal(b Blocker) bool {
	switch t := b.(type) {
	case *Hash, *Rule:
		return true
	case *Union:
		for _, m := range t.Members {
			if !pairLocal(m) {
				return false
			}
		}
		return true
	case *Concurrent:
		return pairLocal(t.Inner)
	}
	return false
}

// Block implements Blocker.
func (c *Concurrent) Block(a, b *table.Table) (*PairSet, error) {
	if !pairLocal(c.Inner) {
		return nil, fmt.Errorf("blocker %s: %T is not safe to partition (its output depends on whole-table context)", c.Name(), c.Inner)
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := b.NumRows()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return c.Inner.Block(a, b)
	}
	obs := startBlock(c.Name())
	reg := metrics()
	partSeconds := reg.Histogram("mc_blocker_partition_seconds")
	reg.Gauge("mc_blocker_partitions").Set(float64(workers))
	type result struct {
		lo    int
		pairs *PairSet
		err   error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			start := time.Now()
			ps, err := c.Inner.Block(a, b.Range(lo, hi))
			partSeconds.Observe(time.Since(start).Seconds())
			results[w] = result{lo: lo, pairs: ps, err: err}
		}(w, lo, hi)
	}
	wg.Wait()
	out := NewPairSet()
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.pairs == nil {
			continue
		}
		lo := r.lo
		r.pairs.ForEach(func(ra, rb int) { out.Add(ra, rb+lo) })
	}
	obs.done(out)
	return out, nil
}
