package blocker

import (
	"testing"
	"testing/quick"
)

func TestPairSetBasics(t *testing.T) {
	s := NewPairSet()
	if s.Len() != 0 || s.Contains(1, 2) {
		t.Fatal("new set not empty")
	}
	s.Add(1, 2)
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(1, 2) || !s.Contains(3, 4) || s.Contains(2, 1) {
		t.Error("membership wrong")
	}
}

func TestPairSetNilSafety(t *testing.T) {
	var s *PairSet
	if s.Contains(0, 0) {
		t.Error("nil Contains should be false")
	}
	if s.Len() != 0 {
		t.Error("nil Len should be 0")
	}
	if s.SortedPairs() != nil {
		t.Error("nil SortedPairs should be nil")
	}
	s.ForEach(func(a, b int) { t.Error("nil ForEach should not call") })
}

func TestPairSetUnionAndForEach(t *testing.T) {
	s := NewPairSet()
	s.Add(0, 0)
	o := NewPairSet()
	o.Add(0, 0)
	o.Add(5, 6)
	s.Union(o)
	if s.Len() != 2 {
		t.Errorf("union Len = %d, want 2", s.Len())
	}
	s.Union(nil) // must not panic
	count := 0
	s.ForEach(func(a, b int) { count++ })
	if count != 2 {
		t.Errorf("ForEach visited %d, want 2", count)
	}
}

func TestPairSetSortedPairs(t *testing.T) {
	s := NewPairSet()
	s.Add(2, 1)
	s.Add(0, 9)
	s.Add(2, 0)
	got := s.SortedPairs()
	want := []Pair{{0, 9}, {2, 0}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SortedPairs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: Add/Contains behave like a reference map implementation, and
// key packing never confuses distinct pairs (within int32 row ranges).
func TestPairSetMatchesReference(t *testing.T) {
	f := func(pairs [][2]uint16, probes [][2]uint16) bool {
		s := NewPairSet()
		ref := map[[2]int]bool{}
		for _, p := range pairs {
			a, b := int(p[0]), int(p[1])
			s.Add(a, b)
			ref[[2]int{a, b}] = true
		}
		if s.Len() != len(ref) {
			return false
		}
		for _, p := range probes {
			a, b := int(p[0]), int(p[1])
			if s.Contains(a, b) != ref[[2]int{a, b}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
