package blocker

import (
	"fmt"
	"strings"

	"matchcatcher/internal/floats"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// FeatureKind identifies how a pair feature is computed.
type FeatureKind int

// The supported pair-feature kinds.
const (
	// FeatEqual is 1 when the (transformed, normalized) values are equal
	// and non-missing, else 0.
	FeatEqual FeatureKind = iota
	// FeatSetSim is a set similarity (Jaccard/cosine/Dice/overlap
	// coefficient) over tokenized values.
	FeatSetSim
	// FeatOverlapCount is the raw number of common tokens.
	FeatOverlapCount
	// FeatEditDist is the Levenshtein distance between the (transformed,
	// normalized) values.
	FeatEditDist
	// FeatAbsDiff is |x-y| of the numeric values (+Inf if unparseable).
	FeatAbsDiff
	// FeatJaro is the Jaro similarity of the normalized values.
	FeatJaro
	// FeatJaroWinkler is the Jaro-Winkler similarity of the normalized
	// values.
	FeatJaroWinkler
)

// Transform names a value transform applied before comparing.
type Transform int

// The supported value transforms.
const (
	TransformNone Transform = iota
	TransformLastWord
	TransformFirstWord
)

func (tr Transform) apply(v string) string {
	switch tr {
	case TransformLastWord:
		return tokenize.LastWord(v)
	case TransformFirstWord:
		return tokenize.FirstWord(v)
	}
	return v
}

func (tr Transform) String() string {
	switch tr {
	case TransformLastWord:
		return "lastword"
	case TransformFirstWord:
		return "firstword"
	}
	return ""
}

// Feature computes a numeric feature of a tuple pair.
type Feature struct {
	Attr      string
	Transform Transform
	Kind      FeatureKind
	Measure   simfunc.SetMeasure // for FeatSetSim
	Tok       tokenize.Tokenizer // for FeatSetSim and FeatOverlapCount
}

// Eval computes the feature for tuple ra of table a and tuple rb of table b.
func (f Feature) Eval(a *table.Table, ra int, b *table.Table, rb int) float64 {
	va, _ := a.ValueByName(ra, f.Attr)
	vb, _ := b.ValueByName(rb, f.Attr)
	va, vb = f.Transform.apply(va), f.Transform.apply(vb)
	switch f.Kind {
	case FeatEqual:
		na, nb := tokenize.Normalize(va), tokenize.Normalize(vb)
		if na != "" && na == nb {
			return 1
		}
		return 0
	case FeatSetSim:
		return f.Measure.Score(f.Tok.Tokens(va), f.Tok.Tokens(vb))
	case FeatOverlapCount:
		return float64(simfunc.OverlapCount(f.Tok.Tokens(va), f.Tok.Tokens(vb)))
	case FeatEditDist:
		return float64(simfunc.Levenshtein(tokenize.Normalize(va), tokenize.Normalize(vb)))
	case FeatAbsDiff:
		return simfunc.AbsDiff(strings.TrimSpace(va), strings.TrimSpace(vb))
	case FeatJaro:
		return simfunc.Jaro(tokenize.Normalize(va), tokenize.Normalize(vb))
	case FeatJaroWinkler:
		return simfunc.JaroWinkler(tokenize.Normalize(va), tokenize.Normalize(vb))
	}
	panic("blocker: unknown feature kind")
}

// String renders the feature in the mini-language syntax.
func (f Feature) String() string {
	attr := f.Attr
	if f.Transform != TransformNone {
		attr = f.Transform.String() + "(" + attr + ")"
	}
	switch f.Kind {
	case FeatEqual:
		return "attr_equal_" + attr
	case FeatSetSim:
		return fmt.Sprintf("%s_%s_%s", attr, f.Measure, f.Tok.Name())
	case FeatOverlapCount:
		return fmt.Sprintf("%s_overlap_%s", attr, f.Tok.Name())
	case FeatEditDist:
		return attr + "_editdist"
	case FeatAbsDiff:
		return attr + "_absdiff"
	case FeatJaro:
		return attr + "_jaro"
	case FeatJaroWinkler:
		return attr + "_jw"
	}
	return attr + "_?"
}

// CmpOp is a comparison operator in an atom.
type CmpOp int

// The comparison operators.
const (
	OpLT CmpOp = iota
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

func (op CmpOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "=="
	case OpNE:
		return "!="
	}
	return "?"
}

func (op CmpOp) negate() CmpOp {
	switch op {
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	}
	panic("blocker: unknown op")
}

func (op CmpOp) holds(x, v float64) bool {
	switch op {
	case OpLT:
		return x < v
	case OpLE:
		return x <= v
	case OpGT:
		return x > v
	case OpGE:
		return x >= v
	case OpEQ:
		// Exact by rule-language definition: "feature == value" in a
		// Magellan-style rule means bitwise float equality.
		return floats.Equal(x, v)
	case OpNE:
		return !floats.Equal(x, v)
	}
	panic("blocker: unknown op")
}

// Atom is a single comparison "feature op value".
type Atom struct {
	Feature Feature
	Op      CmpOp
	Value   float64
}

// Holds evaluates the atom on a tuple pair. Missing or unparseable
// numerics make FeatAbsDiff evaluate to +Inf, so "absdiff > t" kill rules
// fire on them (dropping the pair) while "absdiff <= t" keep rules do not —
// a deliberate, self-consistent choice: it is precisely the kind of
// missing-value blocker aggressiveness the debugger exists to surface
// (Table 4 of the paper), and it keeps atom negation exact so DNF
// normalization preserves semantics.
func (at Atom) Holds(a *table.Table, ra int, b *table.Table, rb int) bool {
	return at.Op.holds(at.Feature.Eval(a, ra, b, rb), at.Value)
}

func (at Atom) String() string {
	return fmt.Sprintf("%s%s%g", at.Feature, at.Op, at.Value)
}

// Expr is a boolean expression over atoms: an Atom leaf or an AND/OR/NOT
// node. Expressions describe either keep conditions or kill rules; see
// KeepRule and DropRule.
type Expr interface {
	// Holds evaluates the expression on a tuple pair.
	Holds(a *table.Table, ra int, b *table.Table, rb int) bool
	// String renders the expression in the mini-language syntax.
	String() string
}

// And is conjunction.
type And struct{ L, R Expr }

// Holds implements Expr.
func (e And) Holds(a *table.Table, ra int, b *table.Table, rb int) bool {
	return e.L.Holds(a, ra, b, rb) && e.R.Holds(a, ra, b, rb)
}

func (e And) String() string { return "(" + e.L.String() + " AND " + e.R.String() + ")" }

// Or is disjunction.
type Or struct{ L, R Expr }

// Holds implements Expr.
func (e Or) Holds(a *table.Table, ra int, b *table.Table, rb int) bool {
	return e.L.Holds(a, ra, b, rb) || e.R.Holds(a, ra, b, rb)
}

func (e Or) String() string { return "(" + e.L.String() + " OR " + e.R.String() + ")" }

// Not is negation.
type Not struct{ E Expr }

// Holds implements Expr.
func (e Not) Holds(a *table.Table, ra int, b *table.Table, rb int) bool {
	return !e.E.Holds(a, ra, b, rb)
}

func (e Not) String() string { return "NOT " + e.E.String() }

// DNF converts an expression into disjunctive normal form: a slice of
// conjunctions of atoms. Negations are pushed into the atoms by flipping
// comparison operators (every leaf is a comparison, so the result is
// negation-free).
func DNF(e Expr) [][]Atom {
	return dnf(pushNot(e, false))
}

// pushNot applies De Morgan's laws, flipping atoms when neg is true.
func pushNot(e Expr, neg bool) Expr {
	switch t := e.(type) {
	case Atom:
		if neg {
			return Atom{Feature: t.Feature, Op: t.Op.negate(), Value: t.Value}
		}
		return t
	case Not:
		return pushNot(t.E, !neg)
	case And:
		if neg {
			return Or{pushNot(t.L, true), pushNot(t.R, true)}
		}
		return And{pushNot(t.L, false), pushNot(t.R, false)}
	case Or:
		if neg {
			return And{pushNot(t.L, true), pushNot(t.R, true)}
		}
		return Or{pushNot(t.L, false), pushNot(t.R, false)}
	}
	panic(fmt.Sprintf("blocker: unknown expression node %T", e))
}

// dnf assumes a negation-free tree.
func dnf(e Expr) [][]Atom {
	switch t := e.(type) {
	case Atom:
		return [][]Atom{{t}}
	case Or:
		return append(dnf(t.L), dnf(t.R)...)
	case And:
		left, right := dnf(t.L), dnf(t.R)
		out := make([][]Atom, 0, len(left)*len(right))
		for _, l := range left {
			for _, r := range right {
				conj := make([]Atom, 0, len(l)+len(r))
				conj = append(conj, l...)
				conj = append(conj, r...)
				out = append(out, conj)
			}
		}
		return out
	}
	panic(fmt.Sprintf("blocker: dnf on non-normalized node %T", e))
}
